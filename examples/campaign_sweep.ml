(* Campaign sweep: declare an f × t grid over the Fig. 3 protocol, run
   it through the parallel campaign engine, kill it halfway, resume, and
   read the report — the full artifact lifecycle in one sitting.

     dune exec examples/campaign_sweep.exe

   Everything lands under _campaigns/fig3-sweep-example/: a manifest
   (the spec), a JSONL journal (one flushed line per trial — the
   durable source of truth), and report.md/report.json. *)

module Campaign = Ffault_campaign
module Spec = Campaign.Spec
module Pool = Campaign.Pool
module Checkpoint = Campaign.Checkpoint
module Journal = Campaign.Journal
module Report = Campaign.Report

let root = "_campaigns"

let spec =
  (* The same grid you'd write in a spec file:
       name     = fig3-sweep-example
       protocol = fig3
       f        = 1..3
       t        = 1,2
       n        = 4
       kinds    = overriding
       rates    = 0.4
       trials   = 50
     or pass as flags to `ffault campaign run`. *)
  Spec.v ~name:"fig3-sweep-example" ~protocol:"fig3" ~f:[ 1; 2; 3 ]
    ~t:[ Some 1; Some 2 ] ~n:[ 4 ] ~rates:[ 0.4 ] ~trials:50 ~seed:31337L ()

let dir = Checkpoint.campaign_dir ~root spec

let rm_rf d =
  if Sys.file_exists d then ignore (Sys.command (Filename.quote_command "rm" [ "-rf"; d ]))

let () =
  rm_rf dir;
  Fmt.pr "== 1. run the campaign ==@.%a@.@." Spec.pp spec;
  (match Pool.run_dir ~domains:2 ~root spec with
  | Error m -> failwith m
  | Ok s -> Fmt.pr "%a@.@." Pool.pp_summary s);

  (* Simulate a mid-run kill: throw away the tail of the journal. A real
     interruption (Ctrl-C, OOM, power) leaves exactly this state — a
     prefix of flushed records, possibly plus one torn line, which the
     reader skips. *)
  Fmt.pr "== 2. simulate a kill: truncate the journal to 100 records ==@.";
  let path = Checkpoint.journal_path ~dir in
  let keep =
    In_channel.with_open_text path In_channel.input_lines
    |> List.filteri (fun i _ -> i < 100)
  in
  Out_channel.with_open_text path (fun oc ->
      List.iter (fun l -> Out_channel.output_string oc (l ^ "\n")) keep);
  Fmt.pr "journal now holds %d records@.@." (Journal.count ~path);

  (* Resume: the manifest defines the grid, the journal says which trial
     ids are done; only the missing 200 run. Trial outcomes depend only
     on (spec, trial id), so the repaired journal is indistinguishable
     from an uninterrupted run. *)
  Fmt.pr "== 3. resume ==@.";
  (match Pool.run_dir ~domains:2 ~resume:true ~root spec with
  | Error m -> failwith m
  | Ok s -> Fmt.pr "%a@.@." Pool.pp_summary s);
  Fmt.pr "journal now holds %d records@.@." (Journal.count ~path);

  Fmt.pr "== 4. report ==@.";
  match Report.of_dir ~dir with
  | Error m -> failwith m
  | Ok report ->
      Report.write ~dir report;
      Fmt.pr "%s@." (Report.to_markdown report);
      Fmt.pr "artifacts: %s/{manifest.json,journal.jsonl,report.md,report.json}@." dir
