(* Bechamel benchmarks — one group per paper artifact (figures and
   theorems, mirroring experiments E1..E9) plus the performance series
   B1..B3 from DESIGN.md. Each benchmark times one complete adversarial
   run of the relevant construction or analysis, so the series show how
   the cost of consensus (and of defeating it) scales with f, t and n.

   Run: dune exec bench/main.exe            (all groups)
        dune exec bench/main.exe -- e3 b3   (selected groups) *)

open Bechamel
module Consensus = Ffault_consensus
module Protocol = Consensus.Protocol
module Check = Ffault_verify.Consensus_check
module Dfs = Ffault_verify.Dfs
module Fault = Ffault_fault
module Sim = Ffault_sim
module R = Ffault_runtime

(* ---- workload constructors; each returns a thunk that performs one run ---- *)

let sim_consensus ?(always_fault = true) ~protocol ~f ?t ~n ~seed () =
  let params = Protocol.params ?t ~n_procs:n ~f () in
  let setup = Check.setup protocol params in
  fun () ->
    let injector =
      if always_fault then Fault.Injector.always Fault.Fault_kind.Overriding
      else Fault.Injector.never
    in
    let report =
      Check.run setup ~scheduler:(Sim.Scheduler.random ~seed) ~injector ()
    in
    if not (Check.ok report) then failwith "bench: unexpected violation"

let fig1_run = sim_consensus ~protocol:Consensus.Single_cas.two_process ~f:1 ~n:2 ~seed:1L ()

let fig2_run ~f ~n = sim_consensus ~protocol:Consensus.F_tolerant.protocol ~f ~n ~seed:2L ()

let fig3_run ~f ~t ~n =
  sim_consensus ~protocol:Consensus.Bounded_faults.protocol ~f ~t ~n ~seed:3L ()

let dfs_run ~objects ~n =
  let setup =
    Check.setup (Consensus.F_tolerant.with_objects objects)
      (Protocol.params ~n_procs:n ~f:objects ())
  in
  fun () -> ignore (Dfs.explore ~max_executions:100_000 ~max_witnesses:max_int setup)

let covering_run ~f =
  let setup =
    Check.setup Consensus.Bounded_faults.protocol
      (Protocol.params ~t:1 ~n_procs:(f + 2) ~f ())
  in
  fun () ->
    let o = Ffault_impossibility.Covering.run setup in
    if not o.Ffault_impossibility.Covering.violation_found then
      failwith "bench: covering failed to produce its witness"

let hierarchy_row ~f () =
  ignore (Ffault_impossibility.Hierarchy.compute_row ~runs:20 ~t:1 ~f ())

let silent_retry_run ~t =
  let params = Protocol.params ~t ~n_procs:3 ~f:1 () in
  let setup =
    Check.setup ~allowed_faults:[ Fault.Fault_kind.Silent ] Consensus.Silent_retry.protocol
      params
  in
  fun () ->
    let report =
      Check.run setup
        ~scheduler:(Sim.Scheduler.random ~seed:8L)
        ~injector:(Fault.Injector.always Fault.Fault_kind.Silent)
        ()
    in
    if not (Check.ok report) then failwith "bench: silent retry failed"

let universal_counter_run ~n ~ops ~f =
  let module Universal = Consensus.Universal in
  let open Ffault_objects in
  let cfg =
    Universal.config ~f ~slots:((n * ops) + 2) ~kind:Kind.Fetch_and_add
      ~init:(Value.Int 0) ()
  in
  let world = Sim.World.make ~n_procs:n (Universal.world_objects cfg) in
  fun () ->
    let body me () =
      let h = Universal.create cfg ~me in
      for _ = 1 to ops do
        ignore (Universal.apply h (Op.Fetch_and_add 1))
      done;
      Value.Int 0
    in
    let budget = Fault.Budget.create ~max_faulty_objects:f ~max_faults_per_object:None () in
    let engine_cfg = Sim.Engine.config ~max_steps_per_proc:50_000 ~world ~budget () in
    ignore
      (Sim.Engine.run engine_cfg
         ~scheduler:(Sim.Scheduler.random ~seed:9L)
         ~injector:(Fault.Injector.probabilistic ~seed:10L ~p:0.5 Fault.Fault_kind.Overriding)
         ~bodies:(Array.init n body) ())

(* E7: the forged-corruption run that separates the fault models. *)
let forge_run =
  let params = Protocol.params ~t:1 ~n_procs:3 ~f:2 () in
  let setup = Check.setup Consensus.Bounded_faults.protocol params in
  let max_stage = Consensus.Bounded_faults.max_stage ~f:2 ~t:1 in
  fun () ->
    let fired = ref false in
    let data_faults =
      Fault.Data_fault.custom ~name:"stage-forger" (fun ctx ->
          if !fired then []
          else
            match ctx.Fault.Data_fault.state_of (Ffault_objects.Obj_id.of_int 0) with
            | Ffault_objects.Value.Staged { stage; value }
              when stage = max_stage
                   && not (Ffault_objects.Value.equal value (Ffault_objects.Value.Int 101)) ->
                fired := true;
                [
                  {
                    Fault.Data_fault.obj = Ffault_objects.Obj_id.of_int 0;
                    value =
                      Ffault_objects.Value.Staged
                        { value = Ffault_objects.Value.Int 101; stage = max_stage };
                  };
                ]
            | _ -> [])
    in
    let report =
      Check.run setup
        ~scheduler:(Sim.Scheduler.solo_runs ~order:[ 0; 1; 2 ])
        ~injector:Fault.Injector.never ~data_faults ()
    in
    if Check.ok report then failwith "bench: forged corruption failed to break fig3"

(* E10: one degradation profile (over-budget overriding runs). *)
let degradation_run =
  let setup =
    Check.setup (Consensus.F_tolerant.with_objects 2) (Protocol.params ~n_procs:3 ~f:2 ())
  in
  fun () ->
    let p =
      Ffault_verify.Degradation.measure ~runs:50 ~seed:4L
        ~injector:(fun rng ->
          Fault.Injector.probabilistic
            ~seed:(Ffault_prng.Rng.next_seed rng)
            ~p:0.5 Fault.Fault_kind.Overriding)
        setup
    in
    if not (Ffault_verify.Degradation.graceful p) then failwith "bench: degradation not graceful"

(* E11: a mixed-fault mass run. *)
let mixed_run =
  let setup =
    Check.setup
      ~allowed_faults:[ Fault.Fault_kind.Overriding; Fault.Fault_kind.Silent ]
      Consensus.F_tolerant.protocol
      (Protocol.params ~n_procs:4 ~f:2 ())
  in
  fun () ->
    let s =
      Ffault_verify.Mass.run
        ~injector:(fun rng ->
          Fault.Injector.mixed
            ~seed:(Ffault_prng.Rng.next_seed rng)
            [ (Fault.Fault_kind.Overriding, 0.3); (Fault.Fault_kind.Silent, 0.3) ])
        ~n_runs:50 ~base_seed:9L setup
    in
    if s.Ffault_verify.Mass.failure_count > 0 then failwith "bench: mixed-fault violation"

(* E12: one failure-rate measurement point. *)
let curve_point_run =
  let setup = Check.setup Consensus.Single_cas.herlihy (Protocol.params ~n_procs:3 ~f:1 ()) in
  fun () ->
    ignore
      (Ffault_verify.Mass.run
         ~injector:(fun rng ->
           Fault.Injector.probabilistic
             ~seed:(Ffault_prng.Rng.next_seed rng)
             ~p:0.4 Fault.Fault_kind.Overriding)
         ~n_runs:100 ~base_seed:2L setup)

let tas_dfs_run ~silent =
  let allowed = if silent then [ Fault.Fault_kind.Silent ] else [] in
  let f = if silent then 1 else 0 in
  let t = if silent then Some 1 else None in
  let victims = if silent then Some [ Consensus.Tas_consensus.tas_object ] else None in
  let setup =
    Check.setup ~allowed_faults:allowed ?victims Consensus.Tas_consensus.protocol
      (Protocol.params ?t ~n_procs:2 ~f ())
  in
  fun () -> ignore (Dfs.explore ~max_executions:10_000 ~max_witnesses:max_int setup)

let relaxed_queue_run ~k ~p =
  let open Ffault_objects in
  let world = Sim.World.make ~n_procs:3 [ Sim.World.obj ~label:"Q" Kind.Queue ] in
  let q = Obj_id.of_int 0 in
  fun () ->
    let body me () =
      for j = 1 to 3 do
        Sim.Proc.enqueue q (Value.Int ((100 * me) + j))
      done;
      let taken = ref 0 in
      while !taken < 3 do
        if not (Value.is_bottom (Sim.Proc.dequeue q)) then incr taken
      done;
      Value.Int 0
    in
    let budget =
      Fault.Budget.create ~max_faulty_objects:1 ~max_faults_per_object:None ()
    in
    let cfg =
      Sim.Engine.config ~allowed_faults:[ Fault.Fault_kind.Relaxation ]
        ~max_steps_per_proc:1000 ~world ~budget ()
    in
    let rng = Ffault_prng.Rng.make ~seed:55L in
    let injector =
      Fault.Injector.custom ~name:"relaxer" (fun ctx ->
          if
            Ffault_objects.Op.equal ctx.Fault.Injector.op Ffault_objects.Op.Dequeue
            && Ffault_prng.Rng.bernoulli rng ~p
          then
            Fault.Injector.Fault
              {
                kind = Fault.Fault_kind.Relaxation;
                payload = Some (Value.Int (1 + Ffault_prng.Rng.int rng (k - 1)));
              }
          else Fault.Injector.No_fault)
    in
    ignore
      (Sim.Engine.run cfg
         ~scheduler:(Sim.Scheduler.random ~seed:56L)
         ~injector ~bodies:(Array.init 3 body) ())

(* Campaign engine: the same 256-trial fig3 grid pushed through the
   work-stealing pool at increasing domain counts. Records are
   discarded, so the series isolates pool + trial cost — the speedup
   over campaign/1dom is the acceptance number for the orchestrator. *)
let campaign_run ~domains =
  let spec =
    Ffault_campaign.Spec.v ~name:"bench" ~protocol:"fig3" ~f:[ 2 ] ~t:[ Some 1 ] ~n:[ 3 ]
      ~rates:[ 0.3 ] ~trials:256 ~seed:77L ()
  in
  fun () ->
    let s = Ffault_campaign.Pool.run_trials ~domains ~on_record:(fun _ -> ()) spec in
    if s.Ffault_campaign.Pool.failures > 0 then failwith "bench: campaign violation"

(* Recover: overhead of the crash-restart machinery — the campaign pool
   workload with the crash axes live. The recoverable protocols must
   stay clean under a crash-only schedule (asserted, so the bench
   doubles as a smoke check); naive-tas is measured without the
   assertion because its violations are the point of the baseline. *)
let recover_run ~protocol ~expect_clean ~domains =
  let spec =
    Ffault_campaign.Spec.v ~name:"bench-recover" ~protocol ~f:[ 0 ] ~n:[ 2 ] ~rates:[ 0.0 ]
      ~crashes:[ 1 ] ~crash_rates:[ 0.4 ]
      ~persistence:[ Ffault_recover.Persistence.Persist_all ] ~trials:256 ~seed:77L ()
  in
  fun () ->
    let s =
      Ffault_campaign.Pool.run_trials ~domains ~max_shrinks_per_cell:0
        ~on_record:(fun _ -> ())
        spec
    in
    if expect_clean && s.Ffault_campaign.Pool.failures > 0 then
      failwith "bench: recoverable protocol violated under crash-only schedule"

(* B1: raw simulator throughput — a tight CAS ping-pong between n
   processes for a fixed number of steps. *)
let sim_throughput ~n ~steps =
  let open Ffault_objects in
  let world = Sim.World.cas_world ~n_procs:n ~objects:1 in
  let per_proc = steps / n in
  fun () ->
    let body me () =
      let o = Obj_id.of_int 0 in
      for k = 0 to per_proc - 1 do
        ignore
          (Sim.Proc.cas o ~expected:(Value.Int ((k * n) + me)) ~desired:(Value.Int me))
      done;
      Value.Int me
    in
    let cfg =
      Sim.Engine.config ~max_steps_per_proc:(per_proc + 1)
        ~max_total_steps:(steps + n) ~world ~budget:(Fault.Budget.none ()) ()
    in
    ignore
      (Sim.Engine.run cfg
         ~scheduler:(Sim.Scheduler.round_robin ())
         ~injector:Fault.Injector.never
         ~bodies:(Array.init n body) ())

(* B3: the real-multicore substrate. *)
let multicore_run ~protocol ~domains ~p ~seed =
  fun () ->
    let cfg =
      R.Consensus_mc.config
        ~plan_for:(fun o ->
          R.Faulty_cas.plan_probabilistic ~seed:(Int64.add seed (Int64.of_int o)) ~p)
        ~n_domains:domains protocol
    in
    ignore (R.Consensus_mc.execute cfg)

(* Netsim: one complete simulated distributed campaign — coordinator
   engine + workers + fault schedule in virtual time — per run. The
   rate here is what bounds `ffault netsim --schedules N`. *)
let netsim_run ~workers ~trials ~seed =
  let cfg = Ffault_netsim.Sim.config ~workers ~trials ~lease_trials:32 () in
  fun () -> ignore (Ffault_netsim.Sim.run cfg ~seed)

(* Dist: one complete real distributed campaign per run — coordinator
   thread + worker threads over a Unix socket in a throwaway dir. The
   [status] variant attaches the HTTP endpoint; [scrape] additionally
   polls /status from a client thread throughout the run. The spread
   across the three variants is the endpoint's overhead — the
   acceptance bar is "within noise". *)
module Dist = Ffault_dist

let dist_rm_rf root =
  let rec rm p =
    if Sys.is_directory p then begin
      Array.iter (fun e -> rm (Filename.concat p e)) (Sys.readdir p);
      Unix.rmdir p
    end
    else Sys.remove p
  in
  if Sys.file_exists root then rm root

let dist_tmp =
  let n = ref 0 in
  fun () ->
    incr n;
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Fmt.str "ffault-bench-dist-%d-%d" (Unix.getpid ()) !n)

let dist_run ~workers ~status ~scrape =
  let spec =
    Ffault_campaign.Spec.v ~name:"bench-dist" ~protocol:"fig3" ~f:[ 2 ] ~t:[ Some 1 ]
      ~n:[ 3 ] ~rates:[ 0.3 ] ~trials:128 ~seed:0xD157L ()
  in
  fun () ->
    let root = dist_tmp () in
    Unix.mkdir root 0o755;
    Fun.protect ~finally:(fun () -> dist_rm_rf root) @@ fun () ->
    let sock = Filename.concat root "coord.sock" in
    let status_ep =
      if status then Some (Dist.Transport.Unix_sock (Filename.concat root "status.sock"))
      else None
    in
    let cfg =
      (* tight lease timeout: Wait backoff is timeout/4, and a worker
         napping through the campaign's tail would swamp the timing *)
      Dist.Coordinator.config ~lease_trials:32 ~lease_timeout_s:1.0 ~hb_interval_s:0.2
        (Dist.Transport.Unix_sock sock)
    in
    let serve_result = ref (Error "never ran") in
    let coordinator =
      Thread.create
        (fun () -> serve_result := Dist.Coordinator.serve ?status:status_ep ~root cfg spec)
        ()
    in
    let rec await n =
      if not (Sys.file_exists sock) then
        if n = 0 then failwith "bench: coordinator never listened"
        else begin
          Thread.delay 0.005;
          await (n - 1)
        end
    in
    await 400;
    let stop_scraper = Atomic.make false in
    let scraper =
      match (scrape, status_ep) with
      | true, Some ep ->
          Some
            (Thread.create
               (fun () ->
                 while not (Atomic.get stop_scraper) do
                   ignore (Dist.Http.get ep ~path:"/status");
                   Thread.delay 0.005
                 done)
               ())
      | _ -> None
    in
    let threads =
      List.init workers (fun i ->
          Thread.create
            (fun () ->
              ignore
                (Dist.Worker.run
                   (Dist.Worker.config ~name:(Fmt.str "bw%d" i) ~domains:1 ~chunk:32
                      (Dist.Transport.Unix_sock sock))))
            ())
    in
    List.iter Thread.join threads;
    Thread.join coordinator;
    Atomic.set stop_scraper true;
    Option.iter Thread.join scraper;
    match !serve_result with
    | Ok _ -> ()
    | Error m -> failwith ("bench: dist serve: " ^ m)

(* ---- benchmark groups ---- *)

let group name tests = (name, Test.make_grouped ~name (List.map (fun (n, f) -> Test.make ~name:n (Staged.stage f)) tests))

let groups =
  [
    group "e1" [ ("fig1/n=2/always-faults", fig1_run) ];
    group "e2"
      [
        ("fig2/f=1/n=4", fig2_run ~f:1 ~n:4);
        ("fig2/f=2/n=4", fig2_run ~f:2 ~n:4);
        ("fig2/f=4/n=4", fig2_run ~f:4 ~n:4);
        ("fig2/f=8/n=4", fig2_run ~f:8 ~n:4);
        ("fig2/f=2/n=2", fig2_run ~f:2 ~n:2);
        ("fig2/f=2/n=8", fig2_run ~f:2 ~n:8);
      ];
    group "e3"
      [
        ("fig3/f=1/t=1/n=2", fig3_run ~f:1 ~t:1 ~n:2);
        ("fig3/f=2/t=1/n=3", fig3_run ~f:2 ~t:1 ~n:3);
        ("fig3/f=2/t=2/n=3", fig3_run ~f:2 ~t:2 ~n:3);
        ("fig3/f=3/t=1/n=4", fig3_run ~f:3 ~t:1 ~n:4);
        ("fig3/f=3/t=2/n=4", fig3_run ~f:3 ~t:2 ~n:4);
      ];
    group "e4"
      [
        ("dfs/sweep1/n=3", dfs_run ~objects:1 ~n:3);
        ("dfs/sweep2/n=3", dfs_run ~objects:2 ~n:3);
      ];
    group "e5"
      [
        ("covering/f=1", covering_run ~f:1);
        ("covering/f=2", covering_run ~f:2);
        ("covering/f=4", covering_run ~f:4);
      ];
    group "e6" [ ("hierarchy-row/f=1", hierarchy_row ~f:1); ("hierarchy-row/f=2", hierarchy_row ~f:2) ];
    group "e8"
      [
        ("silent-retry/t=1", silent_retry_run ~t:1);
        ("silent-retry/t=5", silent_retry_run ~t:5);
      ];
    group "e9"
      [
        ("universal/n=3/ops=2/f=1", universal_counter_run ~n:3 ~ops:2 ~f:1);
        ("universal/n=4/ops=3/f=2", universal_counter_run ~n:4 ~ops:3 ~f:2);
      ];
    group "e7" [ ("forged-corruption-vs-fig3", forge_run) ];
    group "e10" [ ("degradation-profile/50-runs", degradation_run) ];
    group "e11" [ ("mixed-faults/50-runs", mixed_run) ];
    group "e12" [ ("failure-rate-point/100-runs", curve_point_run) ];
    group "e13"
      [
        ("tas-dfs/fault-free", tas_dfs_run ~silent:false);
        ("tas-dfs/silent", tas_dfs_run ~silent:true);
      ];
    group "e14"
      [
        ("relaxed-queue/k=2/p=0.3", relaxed_queue_run ~k:2 ~p:0.3);
        ("relaxed-queue/k=8/p=0.5", relaxed_queue_run ~k:8 ~p:0.5);
      ];
    group "campaign"
      [
        ("campaign/fig3-256/1dom", campaign_run ~domains:1);
        ("campaign/fig3-256/2dom", campaign_run ~domains:2);
        ("campaign/fig3-256/4dom", campaign_run ~domains:4);
      ];
    group "netsim"
      [
        ("netsim/3w-200t", netsim_run ~workers:3 ~trials:200 ~seed:0x11L);
        ("netsim/3w-200t/seed2", netsim_run ~workers:3 ~trials:200 ~seed:0x22L);
        ("netsim/6w-400t", netsim_run ~workers:6 ~trials:400 ~seed:0x33L);
      ];
    group "dist"
      [
        ("dist/2w-128t", dist_run ~workers:2 ~status:false ~scrape:false);
        ("dist/2w-128t/status", dist_run ~workers:2 ~status:true ~scrape:false);
        ("dist/2w-128t/status+scrape", dist_run ~workers:2 ~status:true ~scrape:true);
      ];
    group "recover"
      [
        ("recover/rec-tas-256/1dom", recover_run ~protocol:"rec-tas" ~expect_clean:true ~domains:1);
        ("recover/rec-tas-256/4dom", recover_run ~protocol:"rec-tas" ~expect_clean:true ~domains:4);
        ("recover/rec-cas-256/1dom", recover_run ~protocol:"rec-cas" ~expect_clean:true ~domains:1);
        ( "recover/naive-tas-256/1dom",
          recover_run ~protocol:"naive-tas" ~expect_clean:false ~domains:1 );
      ];
    group "b1"
      [
        ("sim-steps/n=2/10k", sim_throughput ~n:2 ~steps:10_000);
        ("sim-steps/n=8/10k", sim_throughput ~n:8 ~steps:10_000);
      ];
    group "b3"
      [
        ( "mc/single-cas/4dom",
          multicore_run ~protocol:R.Consensus_mc.Single_cas ~domains:4 ~p:0.0 ~seed:1L );
        ( "mc/sweep3/4dom/p=0.3",
          multicore_run ~protocol:(R.Consensus_mc.Sweep 3) ~domains:4 ~p:0.3 ~seed:2L );
        ( "mc/staged-f2-t1/2dom/p=0.3",
          multicore_run ~protocol:(R.Consensus_mc.Staged { f = 2; t = 1 }) ~domains:2 ~p:0.3
            ~seed:3L );
        ( "mc/staged-f2-t1/4dom/p=0.3",
          multicore_run ~protocol:(R.Consensus_mc.Staged { f = 2; t = 1 }) ~domains:4 ~p:0.3
            ~seed:4L );
      ];
  ]

(* ---- runner ---- *)

(* Smoke mode (--smoke, used by `make bench-smoke` in CI): one
   measurement per test under a tiny quota — enough to prove every
   workload still runs and the JSON pipeline works, useless as a
   timing. *)
let smoke = ref false

let benchmark test =
  let instance = Toolkit.Instance.monotonic_clock in
  let cfg =
    if !smoke then Benchmark.cfg ~limit:1 ~quota:(Time.second 0.001) ~stabilize:false ()
    else Benchmark.cfg ~limit:2000 ~quota:(Time.second 1.0) ~kde:(Some 1000) ~stabilize:false ()
  in
  let raw = Benchmark.all cfg [ instance ] test in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]
  in
  (raw, Analyze.all ols instance raw)

let ns_per_run ols =
  match Analyze.OLS.estimates ols with Some (e :: _) -> e | Some [] | None -> nan

let pretty ns =
  if Float.is_nan ns then "n/a"
  else if ns >= 1e9 then Fmt.str "%.2f s" (ns /. 1e9)
  else if ns >= 1e6 then Fmt.str "%.2f ms" (ns /. 1e6)
  else if ns >= 1e3 then Fmt.str "%.2f \xc2\xb5s" (ns /. 1e3)
  else Fmt.str "%.0f ns" ns

(* Machine-readable sibling of the printed table: BENCH_<group>.json in
   the working directory, one record per test. trials_per_s mirrors the
   campaign summary's rate so the two are directly comparable. *)
let write_json gname rows =
  let module Json = Ffault_campaign.Json in
  let record (name, iters, ns) =
    Json.Obj
      [
        ("name", Json.Str name);
        ("iters", Json.Int iters);
        ("ns_per_op", if Float.is_nan ns then Json.Null else Json.Float ns);
        ( "trials_per_s",
          if Float.is_nan ns || ns <= 0.0 then Json.Null else Json.Float (1e9 /. ns) );
      ]
  in
  let path = Fmt.str "BENCH_%s.json" gname in
  Out_channel.with_open_text path (fun oc ->
      output_string oc
        (Json.to_string
           (Json.Obj [ ("group", Json.Str gname); ("results", Json.List (List.map record rows)) ]));
      output_char oc '\n');
  Fmt.pr "  wrote %s@." path

let run_group (gname, test) =
  Fmt.pr "@.== group %s ==@." gname;
  let raw, results = benchmark test in
  let rows =
    Hashtbl.fold
      (fun name ols acc ->
        let iters =
          match Hashtbl.find_opt raw name with
          | Some b -> b.Benchmark.stats.Benchmark.samples
          | None -> 0
        in
        (name, iters, ns_per_run ols) :: acc)
      results []
  in
  let rows = List.sort (fun (a, _, _) (b, _, _) -> String.compare a b) rows in
  List.iter (fun (name, _, ns) -> Fmt.pr "  %-36s %12s/run@." name (pretty ns)) rows;
  write_json gname rows

let () =
  let args = List.tl (Array.to_list Sys.argv) in
  let names = List.filter (fun a -> not (String.length a >= 2 && String.sub a 0 2 = "--")) args in
  if List.mem "--smoke" args then smoke := true;
  let selected =
    match names with
    | _ :: _ ->
        let wanted = List.map String.lowercase_ascii names in
        List.filter (fun (g, _) -> List.mem g wanted) groups
    | [] -> groups
  in
  Fmt.pr "ffault benchmark harness — one run = one full adversarial consensus (or analysis)@.";
  List.iter run_group selected;
  Fmt.pr "@.done.@."
