(* netsim: the deterministic scheduler, seed-derived fault plans, the
   simulated campaign (byte-identical journals, exactly-once under
   faults), wire conformance of the simulated transport against the
   real decoder, and the schedule search catching + shrinking a
   planted lease-retirement bug. *)

module Netsim = Ffault_netsim
module Sched = Netsim.Sched
module Fault_plan = Netsim.Fault_plan
module Net = Netsim.Net
module Sim = Netsim.Sim
module Search = Netsim.Search
module Wire = Ffault_dist.Wire
module Codec = Ffault_dist.Codec

(* ---- scheduler ---- *)

let test_sched_order () =
  let s = Sched.create () in
  let log = ref [] in
  let ev tag = fun () -> log := (tag, Sched.now_ns s) :: !log in
  Sched.at s ~ns:30 (ev "c");
  Sched.at s ~ns:10 (ev "a");
  Sched.at s ~ns:10 (ev "b");
  (* same-time ties execute in insertion order *)
  (match Sched.run s ~until_ns:100 with
  | `Drained -> ()
  | `Horizon -> Alcotest.fail "queue should drain");
  Alcotest.(check (list (pair string int)))
    "order and clock" [ ("a", 10); ("b", 10); ("c", 30) ] (List.rev !log);
  Alcotest.(check int) "executed" 3 (Sched.executed s)

let test_sched_nested () =
  (* an event scheduling at its own time runs this pass, after the
     already-queued ties (insertion order is global) *)
  let s = Sched.create () in
  let log = ref [] in
  Sched.at s ~ns:5 (fun () ->
      log := "outer" :: !log;
      Sched.at s ~ns:0 (fun () -> log := "nested" :: !log));
  ignore (Sched.run s ~until_ns:10);
  Alcotest.(check (list string)) "nested runs after" [ "outer"; "nested" ]
    (List.rev !log);
  Alcotest.(check int) "clamped to now" 5 (Sched.now_ns s)

let test_sched_horizon () =
  let s = Sched.create () in
  let fired = ref false in
  Sched.at s ~ns:500 (fun () -> fired := true);
  (match Sched.run s ~until_ns:100 with
  | `Horizon -> ()
  | `Drained -> Alcotest.fail "event past the horizon must not run");
  Alcotest.(check bool) "not fired" false !fired;
  Alcotest.(check int) "clock at horizon" 100 (Sched.now_ns s);
  Alcotest.(check int) "still pending" 1 (Sched.pending s);
  match Sched.run s ~until_ns:1_000 with
  | `Drained -> Alcotest.(check int) "then runs" 500 (Sched.now_ns s)
  | `Horizon -> Alcotest.fail "should drain"

let test_sched_negative_after () =
  let s = Sched.create () in
  Alcotest.check_raises "negative delay"
    (Invalid_argument "Sched.after: negative delay") (fun () ->
      Sched.after s ~ns:(-1) ignore)

(* ---- fault plans ---- *)

let test_plan_deterministic () =
  let a = Fault_plan.generate ~seed:0xBEEFL ~workers:3 in
  let b = Fault_plan.generate ~seed:0xBEEFL ~workers:3 in
  Alcotest.(check bool) "partitions equal" true
    (Fault_plan.partitions a = Fault_plan.partitions b);
  Alcotest.(check bool) "crashes equal" true
    (Fault_plan.crashes a = Fault_plan.crashes b);
  for link = 0 to 5 do
    Alcotest.(check bool)
      (Printf.sprintf "latency of link %d" link)
      true
      (Fault_plan.latency_ns a ~link = Fault_plan.latency_ns b ~link);
    for k = 0 to 50 do
      Alcotest.(check bool)
        (Printf.sprintf "fate of %d/%d" link k)
        true
        (Fault_plan.frame_fault a ~link ~k = Fault_plan.frame_fault b ~link ~k)
    done
  done

let test_plan_replay () =
  let a = Fault_plan.generate ~seed:0xF00DL ~workers:2 in
  (* touch a range of frames so some atoms fire *)
  for link = 0 to 3 do
    for k = 0 to 80 do
      ignore (Fault_plan.frame_fault a ~link ~k)
    done
  done;
  let fired = Fault_plan.fired a in
  Alcotest.(check bool) "schedule fires something" true (fired <> []);
  (* full replay reproduces every decision; empty replay silences all *)
  let full =
    Fault_plan.replay (Fault_plan.generate ~seed:0xF00DL ~workers:2) ~atoms:fired
  in
  let none =
    Fault_plan.replay (Fault_plan.generate ~seed:0xF00DL ~workers:2) ~atoms:[]
  in
  Alcotest.(check bool) "no partitions when disabled" true
    (Fault_plan.partitions none = [] && Fault_plan.crashes none = []);
  for link = 0 to 3 do
    for k = 0 to 80 do
      Alcotest.(check bool)
        (Printf.sprintf "replay fate of %d/%d" link k)
        true
        (Fault_plan.frame_fault full ~link ~k = Fault_plan.frame_fault a ~link ~k);
      Alcotest.(check bool)
        (Printf.sprintf "silenced fate of %d/%d" link k)
        true
        (Fault_plan.frame_fault none ~link ~k = None)
    done
  done

(* ---- wire conformance: simulated transport vs the real decoder ---- *)

(* A fault-free net (empty replay) delivers bytes in order; whatever
   byte soup [send_raw] puts on the wire must decode to exactly the
   frames and error the real socket path's decoder yields on the same
   stream. *)
let conformance_run chunks =
  let sched = Sched.create () in
  let plan =
    Fault_plan.replay (Fault_plan.generate ~seed:0x5EAL ~workers:1) ~atoms:[]
  in
  let net = Net.create ~sched ~plan ~workers:1 () in
  let got_frames = ref [] in
  let got_error = ref None in
  Net.set_listener net
    (Some
       (fun conn ->
         Net.set_handler conn
           {
             Net.h_frames =
               (fun fs -> got_frames := List.rev_append fs !got_frames);
             h_closed = ignore;
             h_error = (fun e -> if !got_error = None then got_error := Some e);
           }));
  let wside =
    match Net.connect net ~worker:0 with
    | Ok c -> c
    | Error e -> Alcotest.failf "connect: %s" e
  in
  List.iter (fun chunk -> Net.send_raw wside chunk) chunks;
  (match Sched.run sched ~until_ns:10_000_000_000 with
  | `Drained -> ()
  | `Horizon -> Alcotest.fail "conformance net should drain");
  (List.rev !got_frames, !got_error)

let reference_decode chunks =
  let dec = Wire.Decoder.create () in
  let frames = ref [] in
  let error = ref None in
  List.iter
    (fun chunk ->
      if !error = None then begin
        Wire.Decoder.feed dec chunk;
        let rec drain () =
          match Wire.Decoder.next dec with
          | Ok (Some f) ->
              frames := f :: !frames;
              drain ()
          | Ok None -> ()
          | Error e -> if !error = None then error := Some e
        in
        drain ()
      end)
    chunks;
  (List.rev !frames, !error)

let check_conformance name chunks =
  let sim_frames, sim_err = conformance_run chunks in
  let ref_frames, ref_err = reference_decode chunks in
  Alcotest.(check int)
    (name ^ ": frame count")
    (List.length ref_frames) (List.length sim_frames);
  List.iter2
    (fun (a : Wire.frame) (b : Wire.frame) ->
      Alcotest.(check char) (name ^ ": tag") a.Wire.tag b.Wire.tag;
      Alcotest.(check string) (name ^ ": payload") a.Wire.payload b.Wire.payload)
    ref_frames sim_frames;
  Alcotest.(check (option string)) (name ^ ": error") ref_err sim_err

let test_conformance_corpus () =
  let be32 v =
    let b = Bytes.create 4 in
    Bytes.set_int32_be b 0 v;
    Bytes.to_string b
  in
  let hello =
    Wire.encode
      (Codec.to_frame
         (Codec.Hello { version = Wire.version; name = "w"; domains = 1; last_epoch = 0 }))
  in
  let hb = Wire.encode (Codec.to_frame Codec.heartbeat) in
  check_conformance "two clean frames" [ hello; hb ];
  check_conformance "split mid-frame"
    [ String.sub hello 0 3; String.sub hello 3 (String.length hello - 3) ];
  check_conformance "truncated tail" [ hb; String.sub hello 0 5 ];
  check_conformance "zero length" [ be32 0l; hb ];
  check_conformance "oversized length"
    [ be32 (Int32.of_int (Wire.max_frame_bytes + 1)); hb ];
  check_conformance "negative length" [ be32 0x80000001l ];
  (* deterministic garbage, several chunkings *)
  let state = ref 0x2545F4914F6CDD1D in
  let next_byte () =
    state := (!state * 25214903917) + 11;
    Char.chr (!state lsr 33 land 0xFF)
  in
  for round = 1 to 10 do
    let chunks =
      List.init 20 (fun _ ->
          String.init (1 + (Char.code (next_byte ()) mod 40)) (fun _ -> next_byte ()))
    in
    check_conformance (Printf.sprintf "garbage round %d" round) chunks
  done

(* ---- simulation determinism and the exactly-once invariant ---- *)

let quick_config ?(verify_complete = true) ?(fence_epochs = true) () =
  Sim.config ~workers:3 ~trials:96 ~lease_trials:16 ~verify_complete ~fence_epochs ()

let test_sim_deterministic () =
  let cfg = quick_config () in
  let a = Sim.run cfg ~seed:0xCAFE1L in
  let b = Sim.run cfg ~seed:0xCAFE1L in
  Alcotest.(check bool) "violation-free" true (a.Sim.violation = None);
  Alcotest.(check string) "byte-identical journal" a.Sim.journal_bytes
    b.Sim.journal_bytes;
  Alcotest.(check (list string)) "identical trace" a.Sim.trace b.Sim.trace;
  Alcotest.(check int) "same event count" a.Sim.events b.Sim.events;
  Alcotest.(check int) "same end time" a.Sim.end_ns b.Sim.end_ns;
  Alcotest.(check bool) "fired atoms equal" true (a.Sim.fired = b.Sim.fired);
  (* replaying the full fired set is the same run *)
  let c = Sim.run ~atoms:a.Sim.fired cfg ~seed:0xCAFE1L in
  Alcotest.(check string) "replay(full fired) journal" a.Sim.journal_bytes
    c.Sim.journal_bytes;
  Alcotest.(check (list string)) "replay(full fired) trace" a.Sim.trace c.Sim.trace

let test_sim_exactly_once_sweep () =
  (* a small always-on sweep; `make netsim-smoke` runs the larger one *)
  let sweep =
    Search.explore ~config:(quick_config ()) ~root:0x5EEDL ~schedules:15 ()
  in
  Alcotest.(check int) "all explored" 15 sweep.Search.explored;
  (match sweep.Search.violations with
  | [] -> ()
  | v :: _ ->
      Alcotest.failf "schedule %d (seed %Ld) violated exactly-once: %s"
        v.Search.s_index v.Search.s_seed
        (Sim.violation_to_string v.Search.s_violation));
  Alcotest.(check bool) "simulated work happened" true
    (sweep.Search.total_events > 1000)

let test_mutation_caught_and_shrunk () =
  (* plant the lease-retirement bug: Complete retires its lease without
     the journal check. The search must find a violating schedule and
     ddmin it to a handful of atoms that still reproduce. *)
  let cfg = quick_config ~verify_complete:false () in
  let sweep = Search.explore ~config:cfg ~root:7L ~schedules:40 () in
  match sweep.Search.violations with
  | [] -> Alcotest.fail "planted bug not caught within 40 schedules"
  | v :: _ ->
      Alcotest.(check bool) "shrunk to a non-empty schedule" true
        (v.Search.s_shrunk <> []);
      Alcotest.(check bool) "shrunk below the fired set" true
        (List.length v.Search.s_shrunk < v.Search.s_fired);
      Alcotest.(check bool) "minimal: a few atoms" true
        (List.length v.Search.s_shrunk <= 4);
      (* the reported reproducer reproduces *)
      let r = Sim.run ~atoms:v.Search.s_shrunk cfg ~seed:v.Search.s_seed in
      Alcotest.(check bool) "minimal schedule still violates" true
        (r.Sim.violation <> None);
      (* and the very same atoms are benign without the bug *)
      let ok =
        Sim.run ~atoms:v.Search.s_shrunk (quick_config ()) ~seed:v.Search.s_seed
      in
      Alcotest.(check bool) "correct engine survives the same faults" true
        (ok.Sim.violation = None)

let test_fencing_bug_caught_and_shrunk () =
  (* Plant the fencing bug: a Complete carrying a stale incarnation's
     grant epoch is trusted, retiring whatever live lease reuses the
     id. The hand-written window schedule drives the exact interleaving
     that exposes it: the coordinator dies in the gap between round-1
     results landing and round-2 grants, so every worker is left
     holding a round-1 lease id (0, 1, 2) when epoch 2 starts reissuing
     ids from 0; on reconnect, w2 is re-granted its range as epoch-2
     lease #0 and then killed, and w0's resent [Complete] for epoch-1
     lease #0 retires that live lease unverified — the dead worker's
     shard is marked done with its trials unjournaled, and the campaign
     stalls at the horizon. *)
  let seed = 0xFE2CE5L in
  let atoms =
    [
      Fault_plan.CoordCrash { at_ns = 39_500_000; restart_ns = 500_000_000 };
      Fault_plan.Crash
        { worker = 2; at_ns = 1_074_000_000; restart_ns = 6_074_000_000 };
    ]
  in
  let buggy = quick_config ~fence_epochs:false () in
  let r = Sim.run ~atoms buggy ~seed in
  let violation =
    match r.Sim.violation with
    | Some v -> v
    | None -> Alcotest.fail "planted fencing bug not caught"
  in
  (* ddmin the schedule back down: the reproducer is tiny *)
  let shrunk, _, _ = Search.shrink ~config:buggy ~seed ~atoms ~violation in
  Alcotest.(check bool) "minimal: a few atoms" true (List.length shrunk <= 4);
  let again = Sim.run ~atoms:shrunk buggy ~seed in
  Alcotest.(check bool) "minimal schedule still violates" true
    (again.Sim.violation <> None);
  (* with fencing on, the same crashes are survived: the stale Complete
     is fenced, the dead worker's lease expires and requeues *)
  let ok = Sim.run ~atoms:shrunk (quick_config ()) ~seed in
  Alcotest.(check bool) "fencing engine survives the same faults" true
    (ok.Sim.violation = None)

let test_sim_config_validation () =
  Alcotest.check_raises "workers < 1"
    (Invalid_argument "Sim.config: workers must be >= 1") (fun () ->
      ignore (Sim.config ~workers:0 ()))

let suites =
  [
    ( "netsim.sched",
      [
        Alcotest.test_case "order and ties" `Quick test_sched_order;
        Alcotest.test_case "nested scheduling" `Quick test_sched_nested;
        Alcotest.test_case "horizon" `Quick test_sched_horizon;
        Alcotest.test_case "negative delay" `Quick test_sched_negative_after;
      ] );
    ( "netsim.plan",
      [
        Alcotest.test_case "seed-deterministic" `Quick test_plan_deterministic;
        Alcotest.test_case "replay and silence" `Quick test_plan_replay;
      ] );
    ( "netsim.net",
      [ Alcotest.test_case "wire conformance" `Quick test_conformance_corpus ] );
    ( "netsim.sim",
      [
        Alcotest.test_case "same seed, same bytes" `Quick test_sim_deterministic;
        Alcotest.test_case "exactly-once sweep" `Quick test_sim_exactly_once_sweep;
        Alcotest.test_case "config validation" `Quick test_sim_config_validation;
      ] );
    ( "netsim.search",
      [
        Alcotest.test_case "planted bug caught and shrunk" `Quick
          test_mutation_caught_and_shrunk;
        Alcotest.test_case "fencing bug caught and shrunk" `Quick
          test_fencing_bug_caught_and_shrunk;
      ] );
  ]
