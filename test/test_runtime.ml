(* Tests for the multicore runtime: packed values, the faulty CAS cell,
   the parallel runner and the consensus harness. *)

module R = Ffault_runtime
module Packed = R.Packed
module Faulty_cas = R.Faulty_cas
module Runner = R.Runner
module Consensus_mc = R.Consensus_mc
module Cancel = R.Cancel
open Ffault_objects

let check = Alcotest.check
let qcheck = QCheck_alcotest.to_alcotest
let packed = Alcotest.testable Packed.pp Packed.equal

(* ---- Packed ---- *)

let test_packed_basics () =
  check Alcotest.bool "bottom" true (Packed.is_bottom Packed.bottom);
  check Alcotest.bool "plain not bottom" false (Packed.is_bottom (Packed.of_int 3));
  check Alcotest.int "to_int" 3 (Packed.to_int (Packed.of_int 3));
  let s = Packed.staged ~value:7 ~stage:4 in
  check Alcotest.bool "staged" true (Packed.is_staged s);
  check Alcotest.int "stage_of" 4 (Packed.stage_of s);
  check packed "unstage" (Packed.of_int 7) (Packed.unstage s);
  check Alcotest.int "stage_of plain" (-1) (Packed.stage_of (Packed.of_int 7));
  check packed "unstage plain identity" (Packed.of_int 7) (Packed.unstage (Packed.of_int 7))

let test_packed_stage_minus_one () =
  let s = Packed.staged ~value:2 ~stage:(-1) in
  check Alcotest.int "stage -1 representable" (-1) (Packed.stage_of s);
  check Alcotest.bool "still staged-tagged" true (Packed.is_staged s);
  check Alcotest.bool "distinct from plain" false (Packed.equal s (Packed.of_int 2))

let test_packed_validation () =
  Alcotest.check_raises "negative plain" (Invalid_argument "Packed.of_int: out of range")
    (fun () -> ignore (Packed.of_int (-1)));
  Alcotest.check_raises "stage too small" (Invalid_argument "Packed.staged: stage out of range")
    (fun () -> ignore (Packed.staged ~value:0 ~stage:(-2)));
  Alcotest.check_raises "value too big" (Invalid_argument "Packed.staged: value out of range")
    (fun () -> ignore (Packed.staged ~value:(1 lsl 24) ~stage:0))

let test_packed_to_int_rejects () =
  Alcotest.check_raises "bottom" (Invalid_argument "Packed.to_int: not a plain value")
    (fun () -> ignore (Packed.to_int Packed.bottom))

let prop_packed_value_roundtrip =
  let gen =
    QCheck.Gen.oneof
      [
        QCheck.Gen.return Value.Bottom;
        QCheck.Gen.map (fun i -> Value.Int i) (QCheck.Gen.int_bound 1_000_000);
        QCheck.Gen.map2
          (fun v s -> Value.Staged { value = Value.Int v; stage = s - 1 })
          (QCheck.Gen.int_bound 10_000) (QCheck.Gen.int_bound 10_000);
      ]
  in
  QCheck.Test.make ~name:"Packed <-> Value roundtrip" ~count:300
    (QCheck.make ~print:Value.to_string gen) (fun v ->
      match Packed.of_value v with
      | Some p -> Value.equal (Packed.to_value p) v
      | None -> false)

let test_packed_of_value_rejects () =
  check Alcotest.bool "string" true (Packed.of_value (Value.Str "x") = None);
  check Alcotest.bool "negative int" true (Packed.of_value (Value.Int (-1)) = None)

(* ---- Faulty_cas ---- *)

let test_cas_correct_path () =
  let c = Faulty_cas.make ~init:Packed.bottom () in
  let old = Faulty_cas.cas c ~expected:Packed.bottom ~desired:(Packed.of_int 5) in
  check packed "old is bottom" Packed.bottom old;
  check packed "written" (Packed.of_int 5) (Faulty_cas.peek c);
  let old = Faulty_cas.cas c ~expected:Packed.bottom ~desired:(Packed.of_int 9) in
  check packed "failed cas returns current" (Packed.of_int 5) old;
  check packed "unchanged" (Packed.of_int 5) (Faulty_cas.peek c);
  check Alcotest.int "no faults" 0 (Faulty_cas.observable_faults c)

let test_cas_fault_path () =
  let c = Faulty_cas.make ~plan:Faulty_cas.plan_always ~init:(Packed.of_int 1) () in
  let old = Faulty_cas.cas c ~expected:Packed.bottom ~desired:(Packed.of_int 5) in
  check packed "truthful old" (Packed.of_int 1) old;
  check packed "overridden" (Packed.of_int 5) (Faulty_cas.peek c);
  check Alcotest.int "one observable fault" 1 (Faulty_cas.observable_faults c)

let test_cas_unobservable_refunded () =
  (* The comparison would succeed anyway: injecting changes nothing and
     must not be charged. *)
  let c = Faulty_cas.make ~plan:Faulty_cas.plan_always ~t_bound:5 ~init:Packed.bottom () in
  ignore (Faulty_cas.cas c ~expected:Packed.bottom ~desired:(Packed.of_int 5));
  check Alcotest.int "refunded" 0 (Faulty_cas.observable_faults c)

let test_cas_t_bound_cap () =
  let c = Faulty_cas.make ~plan:Faulty_cas.plan_always ~t_bound:2 ~init:(Packed.of_int 1) () in
  for k = 0 to 9 do
    ignore (Faulty_cas.cas c ~expected:Packed.bottom ~desired:(Packed.of_int (100 + k)))
  done;
  check Alcotest.int "capped at t" 2 (Faulty_cas.observable_faults c);
  check Alcotest.int "ops counted" 10 (Faulty_cas.ops_performed c)

let test_plans () =
  check Alcotest.bool "never" false (Faulty_cas.plan_never.Faulty_cas.fire ~op_index:0);
  check Alcotest.bool "always" true (Faulty_cas.plan_always.Faulty_cas.fire ~op_index:9);
  let p = Faulty_cas.plan_first_n 2 in
  check Alcotest.bool "first_n yes" true (p.Faulty_cas.fire ~op_index:1);
  check Alcotest.bool "first_n no" false (p.Faulty_cas.fire ~op_index:2);
  let p = Faulty_cas.plan_every_kth 3 in
  check Alcotest.bool "kth 0" true (p.Faulty_cas.fire ~op_index:0);
  check Alcotest.bool "kth 1" false (p.Faulty_cas.fire ~op_index:1);
  check Alcotest.bool "kth 3" true (p.Faulty_cas.fire ~op_index:3);
  Alcotest.check_raises "kth validation" (Invalid_argument "Faulty_cas.plan_every_kth: k < 1")
    (fun () -> ignore (Faulty_cas.plan_every_kth 0))

let test_plan_probabilistic_deterministic () =
  let a = Faulty_cas.plan_probabilistic ~seed:5L ~p:0.5 in
  let b = Faulty_cas.plan_probabilistic ~seed:5L ~p:0.5 in
  for k = 0 to 100 do
    check Alcotest.bool "same decisions" (a.Faulty_cas.fire ~op_index:k)
      (b.Faulty_cas.fire ~op_index:k)
  done

let test_plan_probabilistic_rate () =
  let p = Faulty_cas.plan_probabilistic ~seed:11L ~p:0.25 in
  let hits = ref 0 in
  let n = 20_000 in
  for k = 0 to n - 1 do
    if p.Faulty_cas.fire ~op_index:k then incr hits
  done;
  let rate = float_of_int !hits /. float_of_int n in
  check Alcotest.bool "rate near 0.25" true (rate > 0.22 && rate < 0.28)

(* ---- Runner ---- *)

let test_runner_results_in_order () =
  let results = Runner.run_parallel ~domains:4 (fun i -> i * 10) in
  check (Alcotest.list Alcotest.int) "ordered" [ 0; 10; 20; 30 ] (Array.to_list results)

let test_runner_single_domain () =
  let results = Runner.run_parallel ~domains:1 (fun i -> i + 1) in
  check (Alcotest.list Alcotest.int) "one" [ 1 ] (Array.to_list results)

let test_runner_validation () =
  Alcotest.check_raises "domains < 1" (Invalid_argument "Runner.run_parallel: domains < 1")
    (fun () -> ignore (Runner.run_parallel ~domains:0 (fun i -> i)))

let test_runner_parallel_increments () =
  let counter = Atomic.make 0 in
  let per = 10_000 in
  ignore
    (Runner.run_parallel ~domains:4 (fun _ ->
         for _ = 1 to per do
           Atomic.incr counter
         done));
  check Alcotest.int "no lost updates" (4 * per) (Atomic.get counter)

let test_runner_exception_propagates () =
  (* A spawned worker's exception must surface on join, not vanish. *)
  match Runner.run_parallel ~domains:2 (fun i -> if i = 1 then failwith "boom" else i) with
  | _ -> Alcotest.fail "expected the worker exception to propagate"
  | exception Failure m -> check Alcotest.string "worker failure surfaced" "boom" m

(* ---- Runner.run_tasks ---- *)

let test_run_tasks_covers_all () =
  let consumed = Array.make 100 (-1) in
  Runner.run_tasks ~chunk:7 ~domains:4 ~total:100
    ~worker:(fun i -> i * 3)
    ~consume:(fun i r ->
      if consumed.(i) <> -1 then Alcotest.fail (Fmt.str "task %d consumed twice" i);
      consumed.(i) <- r)
    ();
  Array.iteri (fun i r -> check Alcotest.int (Fmt.str "result %d" i) (i * 3) r) consumed

let test_run_tasks_single_domain_in_order () =
  let seen = ref [] in
  Runner.run_tasks ~domains:1 ~total:5 ~worker:(fun i -> 10 * i)
    ~consume:(fun i r -> seen := (i, r) :: !seen)
    ();
  check
    (Alcotest.list (Alcotest.pair Alcotest.int Alcotest.int))
    "in order"
    [ (0, 0); (1, 10); (2, 20); (3, 30); (4, 40) ]
    (List.rev !seen)

let test_run_tasks_empty_and_validation () =
  Runner.run_tasks ~domains:4 ~total:0 ~worker:(fun _ -> Alcotest.fail "no tasks to run")
    ~consume:(fun _ _ -> Alcotest.fail "nothing to consume")
    ();
  Alcotest.check_raises "domains < 1" (Invalid_argument "Runner.run_tasks: domains < 1")
    (fun () -> Runner.run_tasks ~domains:0 ~total:1 ~worker:ignore ~consume:(fun _ _ -> ()) ());
  Alcotest.check_raises "chunk < 1" (Invalid_argument "Runner.run_tasks: chunk < 1") (fun () ->
      Runner.run_tasks ~chunk:0 ~domains:1 ~total:1 ~worker:ignore ~consume:(fun _ _ -> ()) ());
  Alcotest.check_raises "total < 0" (Invalid_argument "Runner.run_tasks: total < 0") (fun () ->
      Runner.run_tasks ~domains:1 ~total:(-1) ~worker:ignore ~consume:(fun _ _ -> ()) ())

let test_run_tasks_worker_exception () =
  match
    Runner.run_tasks ~chunk:4 ~domains:4 ~total:64
      ~worker:(fun i -> if i = 13 then failwith "task boom" else i)
      ~consume:(fun _ _ -> ())
      ()
  with
  | () -> Alcotest.fail "expected the task exception to propagate"
  | exception Failure m -> check Alcotest.string "task failure surfaced" "task boom" m

let test_run_tasks_consume_serialized () =
  (* consume runs under one mutex: unsynchronized mutation must be safe. *)
  let sum = ref 0 in
  Runner.run_tasks ~chunk:3 ~domains:4 ~total:1000 ~worker:(fun i -> i)
    ~consume:(fun _ r -> sum := !sum + r)
    ();
  check Alcotest.int "no lost consume" (999 * 1000 / 2) !sum

let test_run_tasks_fail_fast () =
  (* The first exception poisons the queue: the surviving domain must
     stop claiming chunks instead of draining the remaining ~10^6 tasks.
     The margin is generous — without fail-fast, every task executes. *)
  let executed = Atomic.make 0 in
  let total = 1_000_000 in
  (match
     Runner.run_tasks ~chunk:1 ~domains:2 ~total
       ~worker:(fun i ->
         ignore (Atomic.fetch_and_add executed 1);
         if i = 0 then failwith "poison";
         i)
       ~consume:(fun _ _ -> ())
       ()
   with
  | () -> Alcotest.fail "expected the poison exception"
  | exception Failure m -> check Alcotest.string "first exception surfaced" "poison" m);
  check Alcotest.bool
    (Fmt.str "siblings stopped promptly (%d executed)" (Atomic.get executed))
    true
    (Atomic.get executed < total / 10)

(* ---- Cancel ---- *)

let test_cancel_first_reason_wins () =
  let c = Cancel.create () in
  check Alcotest.bool "fresh token untripped" false (Cancel.cancelled c);
  check Alcotest.(option string) "no reason yet" None (Cancel.reason c);
  Cancel.cancel c ~reason:"first";
  Cancel.cancel c ~reason:"second";
  check Alcotest.bool "tripped" true (Cancel.cancelled c);
  check Alcotest.(option string) "first reason wins" (Some "first") (Cancel.reason c);
  match Cancel.check c with
  | () -> Alcotest.fail "check on a tripped token must raise"
  | exception Cancel.Cancelled r -> check Alcotest.string "check carries the reason" "first" r

let test_cancel_deadline_fake_clock () =
  let t = ref 0 in
  let c = Cancel.create ~deadline_ns:100 ~now:(fun () -> !t) () in
  check Alcotest.bool "before the deadline" false (Cancel.cancelled c);
  t := 99;
  check Alcotest.bool "still before" false (Cancel.cancelled c);
  t := 100;
  check Alcotest.bool "the deadline instant trips (inclusive)" true (Cancel.cancelled c);
  (match Cancel.reason c with
  | Some r ->
      check Alcotest.bool "reason names the deadline" true
        (String.length r >= 8 && String.sub r 0 8 = "deadline")
  | None -> Alcotest.fail "tripped token carries no reason");
  (* sticky: the clock going backwards cannot untrip it *)
  t := 0;
  check Alcotest.bool "sticky" true (Cancel.cancelled c)

let test_cancel_never_is_inert () =
  check Alcotest.bool "never untripped" false (Cancel.cancelled Cancel.never);
  match Cancel.cancel Cancel.never ~reason:"nope" with
  | () -> Alcotest.fail "cancelling the shared never token must be rejected"
  | exception Invalid_argument _ -> ()

let test_cas_observes_tripped_token () =
  let cancel = Cancel.create () in
  let cell = Faulty_cas.make ~cancel ~init:(Packed.of_int 1) () in
  Cancel.cancel cancel ~reason:"external abort";
  match Faulty_cas.cas cell ~expected:(Packed.of_int 1) ~desired:(Packed.of_int 2) with
  | _ -> Alcotest.fail "cas on a tripped token must raise"
  | exception Cancel.Cancelled r -> check Alcotest.string "reason" "external abort" r

(* ---- Consensus_mc ---- *)

let test_mc_fault_free_all_protocols () =
  List.iter
    (fun protocol ->
      let cfg = Consensus_mc.config ~n_domains:4 protocol in
      let r = Consensus_mc.execute cfg in
      check Alcotest.bool
        (Fmt.str "%a agreed" Consensus_mc.pp_protocol protocol)
        true
        (r.Consensus_mc.agreed && r.Consensus_mc.valid))
    [
      Consensus_mc.Single_cas;
      Consensus_mc.Sweep 3;
      Consensus_mc.Staged { f = 2; t = 1 };
    ]

let test_mc_staged_under_faults () =
  for k = 1 to 50 do
    let cfg =
      Consensus_mc.config
        ~plan_for:(fun o ->
          Faulty_cas.plan_probabilistic ~seed:(Int64.of_int ((k * 131) + o)) ~p:0.4)
        ~n_domains:4
        (Consensus_mc.Staged { f = 3; t = 2 })
    in
    let r = Consensus_mc.execute cfg in
    check Alcotest.bool "agreed and valid" true (r.Consensus_mc.agreed && r.Consensus_mc.valid);
    Array.iter
      (fun faults -> check Alcotest.bool "within t" true (faults <= 2))
      r.Consensus_mc.faults_per_object
  done

let test_mc_naive_breaks () =
  (* Single CAS with always-faults among 4 domains: some run must
     disagree (the theory says n > 2 is unsafe; with the barrier start
     the race is essentially guaranteed across 50 runs). *)
  let broken = ref false in
  for k = 1 to 50 do
    ignore k;
    let cfg =
      Consensus_mc.config
        ~plan_for:(fun _ -> Faulty_cas.plan_always)
        ~t_bound:10 ~n_domains:4 Consensus_mc.Single_cas
    in
    let r = Consensus_mc.execute cfg in
    if not (r.Consensus_mc.agreed && r.Consensus_mc.valid) then broken := true
  done;
  check Alcotest.bool "naive protocol broke at least once" true !broken

let test_mc_config_validation () =
  Alcotest.check_raises "inputs mismatch"
    (Invalid_argument "Consensus_mc.config: inputs count differs from n_domains") (fun () ->
      ignore (Consensus_mc.config ~inputs:[| 1 |] ~n_domains:2 Consensus_mc.Single_cas));
  (match
     Consensus_mc.config ~style:Faulty_cas.Hang ~n_domains:2 Consensus_mc.Single_cas
   with
  | _ -> Alcotest.fail "Hang without a deadline must be rejected"
  | exception Invalid_argument _ -> ());
  match Consensus_mc.config ~deadline_s:0.0 ~n_domains:2 Consensus_mc.Single_cas with
  | _ -> Alcotest.fail "non-positive deadline must be rejected"
  | exception Invalid_argument _ -> ()

let test_mc_hang_times_out () =
  (* Every fault hangs its CAS forever; the deadline is the only exit.
     The run must terminate, report the stuck domains as Timed_out, and
     never manufacture a verdict from them. *)
  let cfg =
    Consensus_mc.config
      ~plan_for:(fun _ -> Faulty_cas.plan_always)
      ~style:Faulty_cas.Hang ~deadline_s:0.3 ~n_domains:2
      (Consensus_mc.Staged { f = 1; t = 1 })
  in
  let started = Unix.gettimeofday () in
  let r = Consensus_mc.execute cfg in
  let elapsed = Unix.gettimeofday () -. started in
  check Alcotest.bool "some domain timed out" true (r.Consensus_mc.timeouts > 0);
  check Alcotest.bool "terminated near the deadline" true (elapsed < 10.0);
  check Alcotest.int "timeouts agree with outcomes" r.Consensus_mc.timeouts
    (Array.fold_left
       (fun acc -> function Consensus_mc.Timed_out _ -> acc + 1 | Consensus_mc.Decided _ -> acc)
       0 r.Consensus_mc.outcomes);
  (* agreed/valid quantify over the decided subset only *)
  check Alcotest.bool "no verdict from truncated domains" true
    (r.Consensus_mc.agreed && r.Consensus_mc.valid)

let test_mc_external_cancel () =
  (* An external token (the watchdog's lever) aborts the trial even with
     no deadline configured. *)
  let cancel = Cancel.create () in
  Cancel.cancel cancel ~reason:"harness abort";
  let cfg =
    Consensus_mc.config
      ~plan_for:(fun _ -> Faulty_cas.plan_always)
      ~n_domains:2
      (Consensus_mc.Staged { f = 1; t = 1 })
  in
  let r = Consensus_mc.execute ~cancel cfg in
  check Alcotest.bool "every faulting domain observed the cancel or decided" true
    (r.Consensus_mc.timeouts >= 0);
  Array.iter
    (function
      | Consensus_mc.Timed_out reason ->
          check Alcotest.string "carries the external reason" "harness abort" reason
      | Consensus_mc.Decided _ -> ())
    r.Consensus_mc.outcomes

let suites =
  [
    ( "runtime.packed",
      [
        Alcotest.test_case "basics" `Quick test_packed_basics;
        Alcotest.test_case "stage -1" `Quick test_packed_stage_minus_one;
        Alcotest.test_case "validation" `Quick test_packed_validation;
        Alcotest.test_case "to_int rejects" `Quick test_packed_to_int_rejects;
        Alcotest.test_case "of_value rejects" `Quick test_packed_of_value_rejects;
        qcheck prop_packed_value_roundtrip;
      ] );
    ( "runtime.faulty_cas",
      [
        Alcotest.test_case "correct path" `Quick test_cas_correct_path;
        Alcotest.test_case "fault path" `Quick test_cas_fault_path;
        Alcotest.test_case "unobservable refunded" `Quick test_cas_unobservable_refunded;
        Alcotest.test_case "t bound cap" `Quick test_cas_t_bound_cap;
        Alcotest.test_case "plans" `Quick test_plans;
        Alcotest.test_case "probabilistic determinism" `Quick
          test_plan_probabilistic_deterministic;
        Alcotest.test_case "probabilistic rate" `Quick test_plan_probabilistic_rate;
      ] );
    ( "runtime.runner",
      [
        Alcotest.test_case "ordered results" `Quick test_runner_results_in_order;
        Alcotest.test_case "single domain" `Quick test_runner_single_domain;
        Alcotest.test_case "validation" `Quick test_runner_validation;
        Alcotest.test_case "parallel increments" `Quick test_runner_parallel_increments;
        Alcotest.test_case "exception propagates" `Quick test_runner_exception_propagates;
        Alcotest.test_case "tasks cover all" `Quick test_run_tasks_covers_all;
        Alcotest.test_case "tasks single domain order" `Quick
          test_run_tasks_single_domain_in_order;
        Alcotest.test_case "tasks empty + validation" `Quick test_run_tasks_empty_and_validation;
        Alcotest.test_case "tasks worker exception" `Quick test_run_tasks_worker_exception;
        Alcotest.test_case "tasks consume serialized" `Quick test_run_tasks_consume_serialized;
        Alcotest.test_case "tasks fail fast" `Quick test_run_tasks_fail_fast;
      ] );
    ( "runtime.cancel",
      [
        Alcotest.test_case "first reason wins" `Quick test_cancel_first_reason_wins;
        Alcotest.test_case "deadline on fake clock" `Quick test_cancel_deadline_fake_clock;
        Alcotest.test_case "never is inert" `Quick test_cancel_never_is_inert;
        Alcotest.test_case "cas observes tripped token" `Quick test_cas_observes_tripped_token;
      ] );
    ( "runtime.consensus",
      [
        Alcotest.test_case "fault-free protocols" `Quick test_mc_fault_free_all_protocols;
        Alcotest.test_case "staged under faults" `Slow test_mc_staged_under_faults;
        Alcotest.test_case "naive breaks" `Slow test_mc_naive_breaks;
        Alcotest.test_case "config validation" `Quick test_mc_config_validation;
        Alcotest.test_case "hang times out" `Quick test_mc_hang_times_out;
        Alcotest.test_case "external cancel" `Quick test_mc_external_cancel;
      ] );
  ]
