(* Tests for the distributed campaign subsystem: wire framing (including
   truncation, oversize and garbage fuzz — malformed input must error,
   never raise), the typed codec, the fake-clock lease table, and one
   in-process coordinator/worker run over a real Unix socket. *)

module Dist = Ffault_dist
module Wire = Dist.Wire
module Codec = Dist.Codec
module Lease = Dist.Lease
module Transport = Dist.Transport
module Campaign = Ffault_campaign
module Spec = Campaign.Spec
module Json = Campaign.Json
module Grid = Campaign.Grid
module Journal = Campaign.Journal
module Checkpoint = Campaign.Checkpoint

let check = Alcotest.check

let raises_invalid name f =
  match f () with
  | _ -> Alcotest.fail (name ^ ": expected Invalid_argument")
  | exception Invalid_argument _ -> ()

let tmp_root =
  let n = ref 0 in
  fun () ->
    incr n;
    let dir =
      Filename.concat
        (Filename.get_temp_dir_name ())
        (Fmt.str "ffault-dist-test-%d-%d" (Unix.getpid ()) !n)
    in
    Checkpoint.mkdir_p dir;
    dir

(* ---- wire ---- *)

let frame tag payload = { Wire.tag; payload }

let drain dec =
  let rec go acc =
    match Wire.Decoder.next dec with
    | Ok (Some f) -> go (f :: acc)
    | Ok None -> Ok (List.rev acc)
    | Error _ as e -> e
  in
  go []

let test_wire_roundtrip () =
  let frames = [ frame 'h' "{}"; frame 'R' (String.make 1000 'x'); frame 'b' "" ] in
  let bytes = String.concat "" (List.map Wire.encode frames) in
  let dec = Wire.Decoder.create () in
  Wire.Decoder.feed dec bytes;
  match drain dec with
  | Error m -> Alcotest.fail m
  | Ok decoded ->
      check Alcotest.int "all frames" (List.length frames) (List.length decoded);
      List.iter2
        (fun (a : Wire.frame) (b : Wire.frame) ->
          check Alcotest.char "tag" a.Wire.tag b.Wire.tag;
          check Alcotest.string "payload" a.Wire.payload b.Wire.payload)
        frames decoded

let test_wire_byte_at_a_time () =
  let f = frame 'l' "{\"lease\":3}" in
  let bytes = Wire.encode f in
  let dec = Wire.Decoder.create () in
  let seen = ref 0 in
  String.iter
    (fun c ->
      Wire.Decoder.feed dec (String.make 1 c);
      match Wire.Decoder.next dec with
      | Ok (Some g) ->
          incr seen;
          check Alcotest.string "payload survives dribble" f.Wire.payload g.Wire.payload
      | Ok None -> ()
      | Error m -> Alcotest.fail m)
    bytes;
  check Alcotest.int "exactly one frame" 1 !seen

let test_wire_truncated () =
  let bytes = Wire.encode (frame 'h' "abcdef") in
  let cut = String.sub bytes 0 (String.length bytes - 3) in
  let dec = Wire.Decoder.create () in
  Wire.Decoder.feed dec cut;
  (match Wire.Decoder.next dec with
  | Ok None -> ()
  | Ok (Some _) -> Alcotest.fail "truncated frame decoded"
  | Error m -> Alcotest.fail m);
  (* the rest arrives: the frame completes *)
  Wire.Decoder.feed dec (String.sub bytes (String.length cut) 3);
  match Wire.Decoder.next dec with
  | Ok (Some f) -> check Alcotest.string "completed" "abcdef" f.Wire.payload
  | Ok None -> Alcotest.fail "frame still incomplete"
  | Error m -> Alcotest.fail m

let test_wire_oversized_and_zero () =
  let reject prefix name =
    let dec = Wire.Decoder.create () in
    Wire.Decoder.feed dec prefix;
    (match Wire.Decoder.next dec with
    | Error _ -> ()
    | Ok _ -> Alcotest.fail (name ^ ": expected a decode error"));
    (* poisoned: even a well-formed frame afterwards stays an error *)
    Wire.Decoder.feed dec (Wire.encode (frame 'h' "x"));
    match Wire.Decoder.next dec with
    | Error _ -> ()
    | Ok _ -> Alcotest.fail (name ^ ": decoder recovered from poison")
  in
  let be32 v =
    let b = Bytes.create 4 in
    Bytes.set_int32_be b 0 v;
    Bytes.to_string b
  in
  reject (be32 (Int32.of_int (Wire.max_frame_bytes + 1))) "oversized";
  reject (be32 0l) "zero length";
  (* a length prefix with the top bit set must error, not wrap around *)
  reject (be32 0x80000001l) "negative length"

let test_wire_fuzz () =
  (* deterministic garbage: the decoder must return Ok/Error, never
     raise, whatever bytes arrive in whatever chunking *)
  let state = ref 0x2545F4914F6CDD1D in
  let next_byte () =
    state := (!state * 25214903917) + 11;
    Char.chr (!state lsr 33 land 0xFF)
  in
  for _round = 1 to 50 do
    let dec = Wire.Decoder.create () in
    let budget = ref 2000 in
    (try
       while !budget > 0 do
         let len = 1 + (Char.code (next_byte ()) mod 64) in
         let chunk = String.init len (fun _ -> next_byte ()) in
         budget := !budget - len;
         Wire.Decoder.feed dec chunk;
         match drain dec with Ok _ | Error _ -> ()
       done
     with e -> Alcotest.failf "decoder raised on garbage: %s" (Printexc.to_string e))
  done

let test_wire_validation () =
  raises_invalid "oversized encode" (fun () ->
      Wire.encode (frame 'x' (String.make (Wire.max_frame_bytes + 1) 'a')))

(* ---- codec ---- *)

let fixture_spec =
  Spec.v ~name:"dist-test" ~protocol:"fig3" ~f:[ 1; 2 ] ~t:[ Some 1 ] ~n:[ 3 ]
    ~rates:[ 0.3; 0.6 ] ~trials:10 ~seed:0xD15CL ()

let fixture_record =
  let cells = Grid.cells fixture_spec in
  {
    Journal.trial = 17;
    cell = cells.(17 / fixture_spec.Spec.trials);
    seed = 0xABCDEFL;
    ok = false;
    outcome = Journal.Violation;
    retries = 1;
    violations = [ "consistency: divergent decide" ];
    steps = 41;
    max_steps = 17;
    stage = 3;
    faults = 2;
    crash_faults = 0;
    wall_us = 180;
    witness = Some [| 1; 0; 2 |];
  }

let all_msgs =
  [
    Codec.Hello { version = Wire.version; name = "w1"; domains = 4; last_epoch = 0 };
    Codec.Hello { version = Wire.version; name = "w2"; domains = 1; last_epoch = 3 };
    Codec.Welcome
      {
        version = Wire.version;
        epoch = 1;
        spec = fixture_spec;
        supervision =
          {
            Codec.deadline_s = Some 2.5;
            max_retries = 3;
            quarantine_after = 5;
            adaptive_deadline = true;
          };
        hb_interval_s = 2.0;
      };
    Codec.Welcome
      {
        version = Wire.version;
        epoch = 4;
        spec = fixture_spec;
        supervision = Codec.no_supervision;
        hb_interval_s = 0.5;
      };
    Codec.Request;
    Codec.Lease { lease = 7; epoch = 2; lo = 100; hi = 200; done_ids = [ 101; 150; 199 ] };
    Codec.Lease { lease = 0; epoch = 1; lo = 0; hi = 50; done_ids = [] };
    Codec.Result fixture_record;
    Codec.Complete { lease = 7; epoch = 2 };
    Codec.heartbeat;
    Codec.Heartbeat
      {
        snapshot = Some (Json.Obj [ ("counters", Json.Obj [ ("x", Json.Int 3) ]) ]);
        spans = Some (Json.List [ Json.Obj [ ("name", Json.Str "t") ] ]);
      };
    Codec.Wait { seconds = 0.25 };
    Codec.Bye { reason = "campaign complete" };
  ]

let test_codec_roundtrip () =
  List.iter
    (fun msg ->
      let f = Codec.to_frame msg in
      match Codec.of_frame f with
      | Error m -> Alcotest.failf "%a: %s" Codec.pp msg m
      | Ok msg' ->
          check Alcotest.bool (Fmt.str "%a round-trips" Codec.pp msg) true (msg = msg'))
    all_msgs

let test_codec_rejects_garbage () =
  (match Codec.of_frame (frame '?' "{}") with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "unknown tag accepted");
  (match Codec.of_frame (frame 'h' "not json") with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "malformed payload accepted");
  (match Codec.of_frame (frame 'l' "{\"lease\":1}") with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "lease without bounds accepted");
  (* fuzz: random tags and payloads error, never raise *)
  let state = ref 0x9E3779B9 in
  let next () =
    state := (!state * 25214903917) + 11;
    !state lsr 33
  in
  for _ = 1 to 500 do
    let tag = Char.chr (next () land 0xFF) in
    let payload = String.init (next () mod 40) (fun _ -> Char.chr (next () land 0xFF)) in
    try ignore (Codec.of_frame (frame tag payload))
    with e -> Alcotest.failf "codec raised: %s" (Printexc.to_string e)
  done

(* ---- transport endpoints ---- *)

let test_endpoint_parse () =
  (match Transport.endpoint_of_string "unix:/tmp/x.sock" with
  | Ok (Transport.Unix_sock "/tmp/x.sock") -> ()
  | _ -> Alcotest.fail "unix endpoint");
  (match Transport.endpoint_of_string "tcp:localhost:9000" with
  | Ok (Transport.Tcp ("localhost", 9000)) -> ()
  | _ -> Alcotest.fail "tcp endpoint");
  (match Transport.endpoint_of_string "tcp:[::1]:9000" with
  | Ok (Transport.Tcp ("::1", 9000)) -> ()
  | _ -> Alcotest.fail "bracketed IPv6 endpoint");
  (match Transport.endpoint_of_string "tcp:[fe80::1%eth0]:80" with
  | Ok (Transport.Tcp ("fe80::1%eth0", 80)) -> ()
  | _ -> Alcotest.fail "scoped IPv6 endpoint");
  List.iter
    (fun s ->
      match Transport.endpoint_of_string s with
      | Error _ -> ()
      | Ok _ -> Alcotest.failf "accepted %S" s)
    [
      "tcp:nohost";
      "tcp:host:notaport";
      "ftp:x";
      "";
      "unix:";
      "tcp::9000" (* empty host *);
      "tcp:host:" (* empty port *);
      "tcp:host:0";
      "tcp:host:65536";
      "tcp:host:0x50" (* int_of_string would take this *);
      "tcp:host:-1";
      "tcp:::1:9000" (* unbracketed IPv6 is ambiguous *);
      "tcp:[::1:9000" (* unclosed bracket *);
    ];
  (* the error message names the offending piece, not a generic parse
     failure *)
  let mentions needle hay =
    let n = String.length needle and h = String.length hay in
    let rec go i = i + n <= h && (String.sub hay i n = needle || go (i + 1)) in
    go 0
  in
  (match Transport.endpoint_of_string "tcp::9000" with
  | Error e ->
      check Alcotest.bool "empty-host error says host" true (mentions "host" e)
  | Ok _ -> Alcotest.fail "accepted empty host");
  (match Transport.endpoint_of_string "tcp:host:70000" with
  | Error e ->
      check Alcotest.bool "range error says range" true (mentions "range" e)
  | Ok _ -> Alcotest.fail "accepted port 70000")

let test_endpoint_round_trip () =
  List.iter
    (fun s ->
      match Transport.endpoint_of_string s with
      | Ok e ->
          check Alcotest.string (Fmt.str "round-trip %s" s) s
            (Transport.endpoint_to_string e)
      | Error err -> Alcotest.failf "%s: %s" s err)
    [ "unix:/tmp/x.sock"; "tcp:localhost:9000"; "tcp:[::1]:9000"; "tcp:10.0.0.1:1" ];
  (* to_string re-brackets a colonful host so its output re-parses *)
  let e = Transport.Tcp ("::1", 4242) in
  let s = Transport.endpoint_to_string e in
  check Alcotest.string "v6 re-bracketed" "tcp:[::1]:4242" s;
  match Transport.endpoint_of_string s with
  | Ok e' -> check Alcotest.bool "reparses to same endpoint" true (e = e')
  | Error err -> Alcotest.fail err

(* ---- lease table (fake clock) ---- *)

let fake_clock start =
  let v = Ffault_runtime.Clock.Virtual.create ~start_ns:start () in
  (Ffault_runtime.Clock.Virtual.clock v, fun d -> Ffault_runtime.Clock.Virtual.advance v ~ns:d)

let test_lease_grant_expire_regrant () =
  let clock, advance = fake_clock 0 in
  let tbl = Lease.create ~clock ~total:100 ~lease_trials:40 ~timeout_ns:1_000 () in
  check Alcotest.int "shards" 3 (Lease.n_shards tbl);
  let l0 =
    match Lease.grant tbl ~owner:"a" with Some l -> l | None -> Alcotest.fail "grant"
  in
  check Alcotest.int "lo" 0 l0.Lease.lo;
  check Alcotest.int "hi" 40 l0.Lease.hi;
  (* last shard is the stub *)
  let _ = Lease.grant tbl ~owner:"a" in
  let l2 =
    match Lease.grant tbl ~owner:"b" with Some l -> l | None -> Alcotest.fail "grant 3"
  in
  check Alcotest.int "stub hi" 100 l2.Lease.hi;
  check Alcotest.bool "all leased" true (Lease.grant tbl ~owner:"c" = None);
  (* b stays chatty, a goes silent past the timeout *)
  advance 900;
  Lease.renew tbl ~owner:"b";
  advance 200;
  let expired = Lease.expire tbl in
  check Alcotest.int "a's two leases expired" 2 (List.length expired);
  check Alcotest.bool "attributed to a" true
    (List.for_all (fun (o, _) -> o = "a") expired);
  (* both shards are grantable again, under fresh lease ids *)
  let regrants =
    List.filter_map (fun owner -> Lease.grant tbl ~owner) [ "c"; "c" ]
  in
  check Alcotest.int "both shards regranted" 2 (List.length regrants);
  let shards l = List.sort compare (List.map (fun x -> x.Lease.shard) l) in
  check
    Alcotest.(list int)
    "same shards come back"
    (shards (List.map snd expired))
    (shards regrants);
  List.iter
    (fun l -> check Alcotest.bool "fresh id" true (l.Lease.id > l2.Lease.id))
    regrants;
  (* the zombie's old lease id no longer completes anything *)
  check Alcotest.bool "stale complete unknown" true
    (Lease.complete tbl ~id:l0.Lease.id = `Unknown);
  check Alcotest.int "expired counter" 2 (Lease.expired_total tbl)

let test_lease_complete_and_done () =
  let clock, _advance = fake_clock 0 in
  let tbl = Lease.create ~clock ~total:20 ~lease_trials:10 ~timeout_ns:1_000 () in
  let take owner =
    match Lease.grant tbl ~owner with Some l -> l | None -> Alcotest.fail "grant"
  in
  let a = take "a" and b = take "b" in
  check Alcotest.bool "not done" false (Lease.is_done tbl);
  (match Lease.complete tbl ~id:a.Lease.id with
  | `Completed l -> check Alcotest.int "completed a" a.Lease.id l.Lease.id
  | `Unknown -> Alcotest.fail "live lease unknown");
  (* a revoked lease requeues without retiring *)
  (match Lease.revoke tbl ~id:b.Lease.id with
  | Some _ -> ()
  | None -> Alcotest.fail "revoke");
  check Alcotest.int "one pending again" 1 (Lease.pending tbl);
  let b' = take "c" in
  check Alcotest.int "same shard back" b.Lease.shard b'.Lease.shard;
  (match Lease.complete tbl ~id:b'.Lease.id with
  | `Completed _ -> ()
  | `Unknown -> Alcotest.fail "re-lease unknown");
  check Alcotest.bool "done" true (Lease.is_done tbl);
  check Alcotest.bool "nothing to grant" true (Lease.grant tbl ~owner:"d" = None);
  check Alcotest.int "granted" 3 (Lease.granted_total tbl);
  check Alcotest.int "completed" 2 (Lease.completed_total tbl)

let test_lease_fail_owner () =
  let clock, _ = fake_clock 0 in
  let tbl = Lease.create ~clock ~total:30 ~lease_trials:10 ~timeout_ns:1_000 () in
  let _ = Lease.grant tbl ~owner:"a" in
  let _ = Lease.grant tbl ~owner:"b" in
  let _ = Lease.grant tbl ~owner:"a" in
  let lost = Lease.fail tbl ~owner:"a" in
  check Alcotest.int "a lost both" 2 (List.length lost);
  check Alcotest.int "b unaffected" 1 (Lease.outstanding tbl);
  check Alcotest.int "both requeued" 2 (Lease.pending tbl)

let test_lease_validation () =
  raises_invalid "total" (fun () ->
      Lease.create ~total:(-1) ~lease_trials:1 ~timeout_ns:1 ());
  raises_invalid "lease_trials" (fun () ->
      Lease.create ~total:1 ~lease_trials:0 ~timeout_ns:1 ());
  raises_invalid "timeout" (fun () ->
      Lease.create ~total:1 ~lease_trials:1 ~timeout_ns:0 ())

(* ---- coordinator config ---- *)

(* ---- engine-level: reconnect backoff, crash recovery, fencing ---- *)

module Core = Dist.Core
module Retry = Ffault_supervise.Retry

let test_reconnect_backoff_schedule () =
  (* the worker's reconnect schedule is a pure function of (policy,
     seed, attempt) — no clock, no sleeping, fully checkable *)
  let p = Dist.Worker.default_retry in
  check Alcotest.int "bounded attempts" 8 p.Retry.max_retries;
  let schedule seed =
    List.init p.Retry.max_retries (fun i -> Retry.backoff_ns p ~seed ~attempt:(i + 1))
  in
  let a = schedule 0xABCL in
  check (Alcotest.list Alcotest.int) "deterministic" a (schedule 0xABCL);
  (* exponential nominal with 0.5x..1.5x jitter, capped *)
  List.iteri
    (fun i ns ->
      let nominal = min (p.Retry.base_backoff_ns lsl i) p.Retry.max_backoff_ns in
      check Alcotest.bool (Fmt.str "attempt %d above half nominal" (i + 1)) true
        (ns >= nominal / 2);
      check Alcotest.bool (Fmt.str "attempt %d under cap" (i + 1)) true
        (ns <= p.Retry.max_backoff_ns * 3 / 2))
    a;
  (* two workers (different seeds) never share a thundering herd *)
  check Alcotest.bool "seeds shear the schedule" true (a <> schedule 0xDEFL)

let fake_io : string Core.io =
  {
    Core.peer = (fun name -> "fake://" ^ name);
    send = (fun _ _ -> Ok ());
    close = (fun _ -> ());
  }

let record_for spec trial =
  let cells = Grid.cells spec in
  {
    Journal.trial;
    cell = cells.(trial / spec.Spec.trials);
    seed = 0L;
    ok = true;
    outcome = Journal.Pass;
    retries = 0;
    violations = [];
    steps = 1;
    max_steps = 1;
    stage = -1;
    faults = 0;
    crash_faults = 0;
    wall_us = 1;
    witness = None;
  }

(* The serve --resume recovery sequence, against a journal whose last
   line was torn mid-append by the dying incarnation: claim a fresh
   epoch from owner.json, rebuild the mask from the intact lines, and
   re-grant only what the journal cannot prove done. *)
let test_restart_recovers_torn_journal () =
  let root = tmp_root () in
  let spec = Spec.v ~name:"torn" ~protocol:"fig1" ~trials:48 () in
  let total = Grid.total_trials spec in
  let dir = Checkpoint.campaign_dir ~root spec in
  Checkpoint.save_manifest ~dir spec;
  let path = Checkpoint.journal_path ~dir in
  let writer = Journal.create_writer ~path in
  for t = 0 to 19 do
    Journal.append writer (record_for spec t)
  done;
  Journal.close_writer writer;
  (* the crash tore the 21st record mid-line *)
  let oc = open_out_gen [ Open_append ] 0o644 path in
  output_string oc "{\"trial\":20,\"cel";
  close_out oc;
  (* incarnations fence by claiming strictly increasing epochs *)
  check Alcotest.int "first claim" 1 (Checkpoint.claim_ownership ~dir);
  let epoch = Checkpoint.claim_ownership ~dir in
  check Alcotest.int "second claim" 2 epoch;
  check Alcotest.int "persisted" 2 (Checkpoint.load_epoch ~dir);
  let st = Checkpoint.fresh ~total in
  Journal.fold ~path ~init:() ~f:(fun () r ->
      if not (Checkpoint.is_done st r.Journal.trial) then
        Checkpoint.mark st r.Journal.trial ~ok:r.Journal.ok);
  let events = ref [] in
  let core =
    Core.create ~epoch ~io:fake_io
      ~append:(fun _ -> ())
      ~on_event:(fun e -> events := e :: !events)
      ~st ~spec ~lease_trials:16 ~lease_timeout_s:10.0 ~hb_interval_s:0.5
      ~max_workers:4 ~supervision:Codec.no_supervision ()
  in
  let v = Core.view core in
  check Alcotest.int "epoch" 2 v.Core.vw_epoch;
  check Alcotest.int "restarts" 1 v.Core.vw_restarts;
  check Alcotest.int "torn line dropped, 20 done" 20 v.Core.vw_done;
  check Alcotest.bool "recovery pre-retired the complete shard" true
    (List.exists
       (fun e -> e = "recovery: 1 of 3 shard(s) already complete in the journal")
       !events);
  (* the first grant is the partial shard, done ids included *)
  let sent = ref [] in
  let io = { fake_io with Core.send = (fun _ m -> sent := m :: !sent; Ok ()) } in
  let core =
    Core.create ~epoch ~io
      ~append:(fun _ -> ())
      ~st ~spec ~lease_trials:16 ~lease_timeout_s:10.0 ~hb_interval_s:0.5
      ~max_workers:4 ~supervision:Codec.no_supervision ()
  in
  let cl = Core.add_client core "w9" in
  Core.deliver core cl
    (Codec.to_frame
       (Codec.Hello { version = Wire.version; name = "w9"; domains = 1; last_epoch = 1 }));
  Core.deliver core cl (Codec.to_frame Codec.Request);
  (match !sent with
  | Codec.Lease { lease = _; epoch = e; lo; hi; done_ids } :: _ ->
      check Alcotest.int "grant carries the new epoch" 2 e;
      check Alcotest.int "partial shard lo" 16 lo;
      check Alcotest.int "partial shard hi" 32 hi;
      check (Alcotest.list Alcotest.int) "done ids from the journal"
        [ 16; 17; 18; 19 ] done_ids
  | ms ->
      Alcotest.failf "expected a Lease reply, got %d other message(s)" (List.length ms))

(* Epoch fencing at the engine: a Complete stamped with a dead
   incarnation's grant epoch must not retire the live lease that
   happens to reuse the id — but the same worker's Results are still
   dedup-accepted by trial id. *)
let test_stale_complete_fenced_results_deduped () =
  let spec = Spec.v ~name:"fence" ~protocol:"fig1" ~trials:32 () in
  let total = Grid.total_trials spec in
  let st = Checkpoint.fresh ~total in
  let appended = ref 0 in
  let events = ref [] in
  let core =
    Core.create ~epoch:2 ~io:fake_io
      ~append:(fun _ -> incr appended)
      ~on_event:(fun e -> events := e :: !events)
      ~st ~spec ~lease_trials:16 ~lease_timeout_s:10.0 ~hb_interval_s:0.5
      ~max_workers:4 ~supervision:Codec.no_supervision ()
  in
  let join name =
    let cl = Core.add_client core name in
    Core.deliver core cl
      (Codec.to_frame
         (Codec.Hello { version = Wire.version; name; domains = 1; last_epoch = 1 }));
    Core.deliver core cl (Codec.to_frame Codec.Request);
    cl
  in
  let _a = join "w-a" (* granted lease #0 [0,16) *) in
  let b = join "w-b" (* granted lease #1 [16,32) *) in
  let result t = Codec.to_frame (Codec.Result (record_for spec t)) in
  Core.deliver core b (result 16);
  Core.deliver core b (result 17);
  check Alcotest.int "results journaled" 2 !appended;
  (* w-b claims epoch-1 lease #0 complete — the id collides with w-a's
     live lease, the epoch gives the staleness away *)
  Core.deliver core b (Codec.to_frame (Codec.Complete { lease = 0; epoch = 1 }));
  let v = Core.view core in
  check Alcotest.int "fenced" 1 v.Core.vw_stale_completes;
  check Alcotest.bool "fence event" true
    (List.exists
       (fun e -> e = "complete #0 fenced: grant epoch 1, coordinator epoch 2 (from w-b)")
       !events);
  (* w-a's colliding lease survives; w-b's own lease was reconciled
     from the journal — 14 trials unjournaled, so requeued *)
  check Alcotest.int "victim lease still outstanding" 1 v.Core.vw_leases_outstanding;
  let wb = List.find (fun w -> w.Core.v_name = "w-b") v.Core.vw_workers in
  check Alcotest.int "w-b lease requeued by reconcile" 1 wb.Core.v_expired;
  (* a replayed Result for an already-journaled trial is deduped *)
  Core.deliver core b (result 16);
  check Alcotest.int "no double append" 2 !appended;
  let v = Core.view core in
  let wb = List.find (fun w -> w.Core.v_name = "w-b") v.Core.vw_workers in
  check Alcotest.int "dedup counted" 1 wb.Core.v_deduped;
  (* the requeued shard travels again, minus the journaled ids *)
  Core.deliver core b (Codec.to_frame Codec.Request);
  let v = Core.view core in
  check Alcotest.int "requeued shard re-granted" 2 v.Core.vw_leases_outstanding

let test_coordinator_config_validation () =
  let ep = Transport.Unix_sock "/tmp/x.sock" in
  raises_invalid "lease_trials" (fun () -> Dist.Coordinator.config ~lease_trials:0 ep);
  raises_invalid "lease_timeout" (fun () ->
      Dist.Coordinator.config ~lease_timeout_s:0.0 ep);
  raises_invalid "hb under timeout" (fun () ->
      Dist.Coordinator.config ~lease_timeout_s:1.0 ~hb_interval_s:1.0 ep);
  raises_invalid "max_workers" (fun () -> Dist.Coordinator.config ~max_workers:0 ep)

(* ---- end-to-end over a Unix socket ---- *)

(* One coordinator thread, one in-process worker, a real socket. The
   resume path is exercised by pre-journaling a prefix of the grid: the
   re-leases must carry those ids as done and the worker must skip them
   — exactly-once, counted three ways (journal lines, unique trial ids,
   skip accounting). *)
let test_serve_exactly_once () =
  let root = tmp_root () in
  let sock = Filename.concat root "coord.sock" in
  let spec =
    Spec.v ~name:"dist-e2e" ~protocol:"fig3" ~f:[ 1 ] ~t:[ Some 1 ] ~n:[ 3 ]
      ~rates:[ 0.3; 0.6 ] ~trials:60 ~seed:0xE2EL ()
  in
  let total = Grid.total_trials spec in
  (* pre-journal the first 25 trials, as a killed run would leave them *)
  let dir = Checkpoint.campaign_dir ~root spec in
  Checkpoint.save_manifest ~dir spec;
  let writer = Journal.create_writer ~path:(Checkpoint.journal_path ~dir) in
  let cells = Grid.cells spec in
  let pre = 25 in
  for trial = 0 to pre - 1 do
    Journal.append writer
      {
        Journal.trial;
        cell = cells.(trial / spec.Spec.trials);
        seed = 0L;
        ok = true;
        outcome = Journal.Pass;
        retries = 0;
        violations = [];
        steps = 1;
        max_steps = 1;
        stage = -1;
        faults = 0;
        crash_faults = 0;
        wall_us = 1;
        witness = None;
      }
  done;
  Journal.close_writer writer;
  let cfg =
    Dist.Coordinator.config ~lease_trials:16 ~lease_timeout_s:10.0 ~hb_interval_s:0.5
      (Transport.Unix_sock sock)
  in
  let skips = Atomic.make 0 in
  let serve_result = ref (Error "never ran") in
  let coordinator =
    Thread.create
      (fun () ->
        serve_result :=
          Dist.Coordinator.serve ~resume:true
            ~on_skip:(fun () -> Atomic.incr skips)
            ~root cfg spec)
      ()
  in
  (* wait for the socket to exist before connecting *)
  let rec await n =
    if Sys.file_exists sock then ()
    else if n = 0 then Alcotest.fail "coordinator never listened"
    else begin
      Thread.delay 0.05;
      await (n - 1)
    end
  in
  await 100;
  let worker =
    match
      Dist.Worker.run (Dist.Worker.config ~name:"w-test" ~domains:2 (Transport.Unix_sock sock))
    with
    | Ok s -> s
    | Error m -> Alcotest.failf "worker: %s" m
  in
  Thread.join coordinator;
  match !serve_result with
  | Error m -> Alcotest.failf "serve: %s" m
  | Ok summary ->
      check Alcotest.int "journal complete"
        total
        (Journal.count ~path:(Checkpoint.journal_path ~dir));
      let ids = Hashtbl.create total in
      Journal.fold
        ~path:(Checkpoint.journal_path ~dir)
        ~init:()
        ~f:(fun () r -> Hashtbl.replace ids r.Journal.trial ());
      check Alcotest.int "every id exactly once" total (Hashtbl.length ids);
      check Alcotest.int "skips = pre-journaled" pre (Atomic.get skips);
      check Alcotest.int "pool accounting" total
        (summary.Dist.Coordinator.pool.Campaign.Pool.executed
        + summary.Dist.Coordinator.pool.Campaign.Pool.skipped);
      check Alcotest.int "worker ran the rest" (total - pre)
        worker.Dist.Worker.trials_run;
      (* recovery pre-retires the fully-journaled shards, so only the
         partially-done shard's ids travel as done_ids *)
      check Alcotest.int "worker skipped the done ids in live shards" (pre mod 16)
        worker.Dist.Worker.trials_skipped;
      check Alcotest.bool "no expired leases" true
        (summary.Dist.Coordinator.leases_expired = 0);
      (* workers.json landed and names the worker *)
      (match Campaign.Report.of_dir ~dir with
      | Error m -> Alcotest.fail m
      | Ok report -> (
          match report.Campaign.Report.workers with
          | None -> Alcotest.fail "no workers.json in report"
          | Some w ->
              let md = Campaign.Report.to_markdown report in
              check Alcotest.bool "markdown has Workers section" true
                (let sub = "## Workers" in
                 let rec find i =
                   i + String.length sub <= String.length md
                   && (String.sub md i (String.length sub) = sub || find (i + 1))
                 in
                 find 0);
              check Alcotest.bool "workers json is an object" true
                (match w with Campaign.Json.Obj _ -> true | _ -> false)))

let suites =
  [
    ( "dist.wire",
      [
        Alcotest.test_case "roundtrip" `Quick test_wire_roundtrip;
        Alcotest.test_case "byte at a time" `Quick test_wire_byte_at_a_time;
        Alcotest.test_case "truncated" `Quick test_wire_truncated;
        Alcotest.test_case "oversized, zero, negative" `Quick test_wire_oversized_and_zero;
        Alcotest.test_case "garbage fuzz" `Quick test_wire_fuzz;
        Alcotest.test_case "validation" `Quick test_wire_validation;
      ] );
    ( "dist.codec",
      [
        Alcotest.test_case "roundtrip" `Quick test_codec_roundtrip;
        Alcotest.test_case "rejects garbage" `Quick test_codec_rejects_garbage;
        Alcotest.test_case "endpoints" `Quick test_endpoint_parse;
        Alcotest.test_case "endpoint round-trip" `Quick test_endpoint_round_trip;
      ] );
    ( "dist.lease",
      [
        Alcotest.test_case "grant, expire, regrant" `Quick test_lease_grant_expire_regrant;
        Alcotest.test_case "complete and done" `Quick test_lease_complete_and_done;
        Alcotest.test_case "fail owner" `Quick test_lease_fail_owner;
        Alcotest.test_case "validation" `Quick test_lease_validation;
      ] );
    ( "dist.coordinator",
      [
        Alcotest.test_case "config validation" `Quick test_coordinator_config_validation;
        Alcotest.test_case "reconnect backoff schedule" `Quick
          test_reconnect_backoff_schedule;
        Alcotest.test_case "restart recovers a torn journal" `Quick
          test_restart_recovers_torn_journal;
        Alcotest.test_case "stale complete fenced, results deduped" `Quick
          test_stale_complete_fenced_results_deduped;
        Alcotest.test_case "exactly-once over a socket" `Quick test_serve_exactly_once;
      ] );
  ]
