(* Telemetry: sharded metrics, the Chrome-trace exporter, and the live
   progress reporter. Metrics are process-global, so every test that
   counts starts from Metrics.reset — the alcotest runner is
   single-threaded, which makes that safe. *)

module Metrics = Ffault_telemetry.Metrics
module Tracer = Ffault_telemetry.Tracer
module Progress = Ffault_telemetry.Progress
module Runner = Ffault_runtime.Runner
module Json = Ffault_campaign.Json
module Pool = Ffault_campaign.Pool

(* ---- metrics ---- *)

let test_counter_sequential () =
  Metrics.reset ();
  let c = Metrics.counter "test.seq" in
  for _ = 1 to 1000 do
    Metrics.incr c
  done;
  Metrics.add c 500;
  Alcotest.(check (option int))
    "sequential total" (Some 1500)
    (Metrics.find_counter (Metrics.snapshot ()) "test.seq")

let test_counter_parallel_merge () =
  (* The acceptance property of sharding: concurrent increments from
     several domains merge to exactly the sequential total. *)
  Metrics.reset ();
  let c = Metrics.counter "test.par" in
  let domains = 4 and per_domain = 25_000 in
  ignore
    (Runner.run_parallel ~domains (fun _ ->
         for _ = 1 to per_domain do
           Metrics.incr c
         done));
  Alcotest.(check (option int))
    "parallel total equals sequential" (Some (domains * per_domain))
    (Metrics.find_counter (Metrics.snapshot ()) "test.par")

let test_counter_find_or_create () =
  Metrics.reset ();
  let a = Metrics.counter "test.same" in
  let b = Metrics.counter "test.same" in
  Metrics.incr a;
  Metrics.incr b;
  Alcotest.(check (option int))
    "same name, same counter" (Some 2)
    (Metrics.find_counter (Metrics.snapshot ()) "test.same")

let test_gauge () =
  Metrics.reset ();
  let g = Metrics.gauge "test.gauge" in
  Metrics.set_gauge g 7;
  Metrics.add_gauge g 3;
  Metrics.add_gauge g (-2);
  let s = Metrics.snapshot () in
  Alcotest.(check (option int)) "gauge level" (Some 8) (List.assoc_opt "test.gauge" s.Metrics.gauges)

let test_histogram_buckets () =
  (* bucket 0 admits <= 0; bucket i >= 1 admits [2^(i-1), 2^i - 1]. *)
  Alcotest.(check int) "bucket of 0" 0 (Metrics.bucket_of 0);
  Alcotest.(check int) "bucket of -5" 0 (Metrics.bucket_of (-5));
  Alcotest.(check int) "bucket of 1" 1 (Metrics.bucket_of 1);
  Alcotest.(check int) "bucket of 2" 2 (Metrics.bucket_of 2);
  Alcotest.(check int) "bucket of 3" 2 (Metrics.bucket_of 3);
  Alcotest.(check int) "bucket of 4" 3 (Metrics.bucket_of 4);
  Alcotest.(check int) "bucket of 1023" 10 (Metrics.bucket_of 1023);
  Alcotest.(check int) "bucket of 1024" 11 (Metrics.bucket_of 1024);
  (* every value lands in the bucket whose bounds admit it *)
  List.iter
    (fun v ->
      let i = Metrics.bucket_of v in
      let ub = Metrics.bucket_upper_bound i in
      Alcotest.(check bool) (Printf.sprintf "%d <= ub(%d)" v i) true (v <= ub);
      if i > 1 then
        Alcotest.(check bool)
          (Printf.sprintf "%d > ub(%d)" v (i - 1))
          true
          (v > Metrics.bucket_upper_bound (i - 1)))
    [ 1; 2; 3; 7; 8; 100; 4095; 4096; 1_000_000; max_int ]

let test_histogram_observe () =
  Metrics.reset ();
  let h = Metrics.histogram "test.hist" in
  List.iter (Metrics.observe h) [ 1; 1; 3; 100; 0 ];
  match Metrics.find_histogram (Metrics.snapshot ()) "test.hist" with
  | None -> Alcotest.fail "histogram missing from snapshot"
  | Some v ->
      Alcotest.(check int) "count" 5 v.Metrics.h_count;
      Alcotest.(check int) "sum" 105 v.Metrics.h_sum;
      let total_bucketed = List.fold_left (fun acc (_, c) -> acc + c) 0 v.Metrics.h_buckets in
      Alcotest.(check int) "buckets account for every sample" 5 total_bucketed;
      Alcotest.(check bool)
        "bucket bounds ascend" true
        (let ubs = List.map fst v.Metrics.h_buckets in
         List.sort compare ubs = ubs)

(* ---- tracer ---- *)

let test_trace_export_valid_json () =
  Tracer.enable ();
  Tracer.with_span ~cat:"test" "outer" (fun () ->
      Tracer.with_span ~cat:"test" "inner" (fun () -> ());
      Tracer.instant ~cat:"test" "mark \"quoted\"");
  let json = Tracer.export () in
  Tracer.disable ();
  match Json.of_string json with
  | Error e -> Alcotest.fail ("trace is not valid JSON: " ^ e)
  | Ok j -> (
      match Json.member "traceEvents" j with
      | Some (Json.List events) ->
          Alcotest.(check int) "2 spans + 1 instant = 5 events" 5 (List.length events);
          (* B/E balance per tid, in timestamp order *)
          let depth = Hashtbl.create 4 in
          List.iter
            (fun e ->
              let ph = match Json.member "ph" e with Some (Json.Str s) -> s | _ -> "?" in
              let tid =
                match Option.bind (Json.member "tid" e) Json.get_int with Some t -> t | None -> -1
              in
              let d = Option.value ~default:0 (Hashtbl.find_opt depth tid) in
              match ph with
              | "B" -> Hashtbl.replace depth tid (d + 1)
              | "E" ->
                  Alcotest.(check bool) "E never precedes its B" true (d > 0);
                  Hashtbl.replace depth tid (d - 1)
              | _ -> ())
            events;
          Hashtbl.iter
            (fun tid d ->
              Alcotest.(check int) (Printf.sprintf "tid %d balanced" tid) 0 d)
            depth
      | _ -> Alcotest.fail "traceEvents missing or not a list")

let test_trace_disabled_is_noop () =
  Tracer.disable ();
  let before = Tracer.event_count () in
  Tracer.begin_span "ignored";
  Tracer.end_span "ignored";
  Alcotest.(check int) "no events recorded while disabled" before (Tracer.event_count ())

let test_trace_ring_overflow_repaired () =
  (* A tiny ring forces overwrites; the export must still parse and
     stay B/E-balanced (orphans repaired at export time). *)
  Tracer.enable ~capacity:8 ();
  for i = 1 to 100 do
    Tracer.with_span (Printf.sprintf "span%d" i) (fun () -> ())
  done;
  let json = Tracer.export () in
  Alcotest.(check bool) "overflow dropped events" true (Tracer.dropped_count () > 0);
  Tracer.disable ();
  match Json.of_string json with
  | Error e -> Alcotest.fail ("overflowed trace is not valid JSON: " ^ e)
  | Ok j -> (
      match Json.member "traceEvents" j with
      | Some (Json.List events) ->
          let balance =
            List.fold_left
              (fun acc e ->
                match Json.member "ph" e with
                | Some (Json.Str "B") -> acc + 1
                | Some (Json.Str "E") -> acc - 1
                | _ -> acc)
              0 events
          in
          Alcotest.(check int) "B and E counts equal after repair" 0 balance
      | _ -> Alcotest.fail "traceEvents missing")

(* ---- progress ---- *)

let test_progress_non_ansi_no_escapes () =
  let path = Filename.temp_file "ffault_progress" ".txt" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      let oc = open_out path in
      let ticks = ref 0 in
      let p =
        Progress.start ~interval:0.01 ~ansi:false ~oc
          ~render:(fun () ->
            incr ticks;
            Printf.sprintf "tick %d" !ticks)
          ()
      in
      Unix.sleepf 0.05;
      Progress.stop p;
      Progress.stop p (* idempotent *);
      close_out oc;
      let content = In_channel.with_open_text path In_channel.input_all in
      Alcotest.(check bool) "no ESC byte in non-ANSI output" false (String.contains content '\x1b');
      Alcotest.(check bool)
        "exactly the final line" true
        (String.length content > 0 && content.[String.length content - 1] = '\n'
        && String.index content '\n' = String.length content - 1))

(* ---- pool rate guards (satellite: no inf/nan trials_per_s) ---- *)

let test_trials_rate_guards () =
  Alcotest.(check (float 0.0)) "zero wall" 0.0 (Pool.trials_rate ~executed:100 ~wall_s:0.0);
  Alcotest.(check (float 0.0)) "sub-resolution wall" 0.0 (Pool.trials_rate ~executed:100 ~wall_s:1e-9);
  Alcotest.(check (float 0.0)) "nan wall" 0.0 (Pool.trials_rate ~executed:100 ~wall_s:Float.nan);
  Alcotest.(check (float 0.0)) "nothing executed" 0.0 (Pool.trials_rate ~executed:0 ~wall_s:1.0);
  let r = Pool.trials_rate ~executed:100 ~wall_s:2.0 in
  Alcotest.(check (float 1e-9)) "normal rate" 50.0 r;
  Alcotest.(check bool)
    "rate is always finite" true
    (List.for_all
       (fun w -> Float.is_finite (Pool.trials_rate ~executed:max_int ~wall_s:w))
       [ 0.0; 1e-300; Float.nan; Float.infinity; 1.0 ])

let suites =
  [
    ( "telemetry.metrics",
      [
        Alcotest.test_case "counter sequential" `Quick test_counter_sequential;
        Alcotest.test_case "counter parallel merge" `Quick test_counter_parallel_merge;
        Alcotest.test_case "counter find-or-create" `Quick test_counter_find_or_create;
        Alcotest.test_case "gauge" `Quick test_gauge;
        Alcotest.test_case "histogram buckets" `Quick test_histogram_buckets;
        Alcotest.test_case "histogram observe" `Quick test_histogram_observe;
      ] );
    ( "telemetry.tracer",
      [
        Alcotest.test_case "export is valid balanced JSON" `Quick test_trace_export_valid_json;
        Alcotest.test_case "disabled tracer records nothing" `Quick test_trace_disabled_is_noop;
        Alcotest.test_case "ring overflow repaired" `Quick test_trace_ring_overflow_repaired;
      ] );
    ( "telemetry.progress",
      [ Alcotest.test_case "non-ANSI output has no escapes" `Quick test_progress_non_ansi_no_escapes ] );
    ( "telemetry.rates",
      [ Alcotest.test_case "trials_rate never inf/nan" `Quick test_trials_rate_guards ] );
  ]
