(* Fake-clock unit tests for the supervision layer: heartbeats, the
   watchdog, retry backoff/classification and per-cell quarantine.
   Nothing here sleeps — the clock is a Clock.Virtual advanced by hand,
   which is exactly the seam Watchdog.poll was designed around. *)

module S = Ffault_supervise
module Heartbeat = S.Heartbeat
module Watchdog = S.Watchdog
module Retry = S.Retry
module Quarantine = S.Quarantine
module Cancel = Ffault_runtime.Cancel
module Clock = Ffault_runtime.Clock
module Mc = S.Mc
module Consensus_mc = Ffault_runtime.Consensus_mc
module Faulty_cas = Ffault_runtime.Faulty_cas

let check = Alcotest.check

let fake_clock start =
  let v = Clock.Virtual.create ~start_ns:start () in
  (Clock.Virtual.clock v, fun d -> Clock.Virtual.advance v ~ns:d)

let raises_invalid name f =
  match f () with
  | _ -> Alcotest.fail (name ^ ": expected Invalid_argument")
  | exception Invalid_argument _ -> ()

(* ---- heartbeat ---- *)

let test_heartbeat_ages () =
  let clock, advance = fake_clock 1_000 in
  let hb = Heartbeat.create ~clock ~slots:2 () in
  check Alcotest.int "slots" 2 (Heartbeat.slots hb);
  check Alcotest.(option int) "never beat" None (Heartbeat.last_ns hb ~slot:0);
  check Alcotest.(option int) "no age either" None (Heartbeat.age_ns hb ~slot:0);
  Heartbeat.beat hb ~slot:0;
  check Alcotest.(option int) "beat recorded" (Some 1_000) (Heartbeat.last_ns hb ~slot:0);
  advance 250;
  check Alcotest.(option int) "age from last beat" (Some 250) (Heartbeat.age_ns hb ~slot:0);
  check Alcotest.(option int) "other slot independent" None (Heartbeat.last_ns hb ~slot:1);
  Heartbeat.beat hb ~slot:0;
  check Alcotest.(option int) "re-beat resets age" (Some 0) (Heartbeat.age_ns hb ~slot:0)

let test_heartbeat_validation () =
  raises_invalid "slots < 1" (fun () -> Heartbeat.create ~slots:0 ())

(* ---- watchdog ---- *)

let test_watchdog_flags_and_cancels () =
  let clock, advance = fake_clock 0 in
  let hb = Heartbeat.create ~clock ~slots:2 () in
  let wd = Watchdog.create ~heartbeat:hb ~stall_ns:100 () in
  Heartbeat.beat hb ~slot:0;
  (* slot 1 never beats: judged from the watchdog's creation time *)
  check (Alcotest.list Alcotest.int) "nothing stuck yet" [] (Watchdog.poll wd);
  let token = Cancel.create ~now:(fun () -> Clock.now_ns clock) () in
  Watchdog.attach wd ~slot:1 token;
  advance 150;
  check (Alcotest.list Alcotest.int) "both slots stall" [ 0; 1 ] (Watchdog.poll wd);
  check Alcotest.bool "token cancelled" true (Cancel.cancelled token);
  (match Cancel.reason token with
  | Some r ->
      check Alcotest.bool "reason names the watchdog" true
        (String.length r >= 8 && String.sub r 0 8 = "watchdog")
  | None -> Alcotest.fail "cancelled token carries no reason");
  (* edge-triggered: still silent, but already flagged *)
  check (Alcotest.list Alcotest.int) "no re-flag while silent" [] (Watchdog.poll wd);
  check Alcotest.bool "slot 0 flagged" true (Watchdog.flagged wd ~slot:0)

let test_watchdog_beat_unflags () =
  let clock, advance = fake_clock 0 in
  let hb = Heartbeat.create ~clock ~slots:1 () in
  let wd = Watchdog.create ~heartbeat:hb ~stall_ns:100 () in
  advance 150;
  check (Alcotest.list Alcotest.int) "stuck" [ 0 ] (Watchdog.poll wd);
  Heartbeat.beat hb ~slot:0;
  check Alcotest.bool "beat clears the flag" false (Watchdog.flagged wd ~slot:0);
  check (Alcotest.list Alcotest.int) "alive again" [] (Watchdog.poll wd);
  advance 150;
  check (Alcotest.list Alcotest.int) "a second stall is a new flag" [ 0 ] (Watchdog.poll wd)

let test_watchdog_detach () =
  let clock, advance = fake_clock 0 in
  let hb = Heartbeat.create ~clock ~slots:1 () in
  let wd = Watchdog.create ~heartbeat:hb ~stall_ns:100 () in
  let token = Cancel.create ~now:(fun () -> Clock.now_ns clock) () in
  Watchdog.attach wd ~slot:0 token;
  Watchdog.detach wd ~slot:0;
  advance 150;
  ignore (Watchdog.poll wd);
  check Alcotest.bool "detached token survives the flag" false (Cancel.cancelled token)

let test_watchdog_validation () =
  let hb = Heartbeat.create ~slots:1 () in
  raises_invalid "stall_ns < 1" (fun () -> Watchdog.create ~heartbeat:hb ~stall_ns:0 ())

(* ---- retry ---- *)

let test_backoff_deterministic_and_bounded () =
  let p = Retry.policy ~max_retries:3 ~base_backoff_ns:1_000_000 ~max_backoff_ns:8_000_000 () in
  for attempt = 1 to 3 do
    let d = Retry.backoff_ns p ~seed:42L ~attempt in
    check Alcotest.int
      (Fmt.str "attempt %d reproducible" attempt)
      d
      (Retry.backoff_ns p ~seed:42L ~attempt);
    (* 0.5x .. 1.5x of the nominal exponential, capped *)
    let nominal = min (1_000_000 lsl (attempt - 1)) 8_000_000 in
    check Alcotest.bool
      (Fmt.str "attempt %d in [0.5, 1.5] x nominal (got %d)" attempt d)
      true
      (d >= nominal / 2 && d <= nominal * 3 / 2)
  done;
  (* different seeds decorrelate (not a hard guarantee per pair, but
     these two differ under the splitmix hash) *)
  check Alcotest.bool "seeds perturb" true
    (Retry.backoff_ns p ~seed:1L ~attempt:1 <> Retry.backoff_ns p ~seed:2L ~attempt:1);
  (* a huge attempt number must not overflow past the cap *)
  check Alcotest.bool "cap holds at extreme attempts" true
    (Retry.backoff_ns p ~seed:7L ~attempt:62 <= 12_000_000)

let test_classify () =
  let p = Retry.policy ~max_retries:2 () in
  check Alcotest.bool "clean run is unclassified" true
    (Retry.classify p ~attempts_failed:0 ~succeeded:true = None);
  check Alcotest.bool "fail-then-succeed is transient" true
    (Retry.classify p ~attempts_failed:1 ~succeeded:true = Some Retry.Transient_infra);
  check Alcotest.bool "undecided while retries remain" true
    (Retry.classify p ~attempts_failed:2 ~succeeded:false = None);
  check Alcotest.bool "all attempts burned is deterministic" true
    (Retry.classify p ~attempts_failed:3 ~succeeded:false
    = Some Retry.Deterministic_protocol)

let test_retry_validation () =
  raises_invalid "negative retries" (fun () -> Retry.policy ~max_retries:(-1) ());
  raises_invalid "zero backoff" (fun () -> Retry.policy ~base_backoff_ns:0 ())

(* ---- quarantine ---- *)

let test_quarantine_threshold () =
  let q = Quarantine.create ~threshold:2 ~cells:3 () in
  check Alcotest.bool "first strike active" true (Quarantine.strike q ~cell:1 = `Active);
  check Alcotest.bool "not degraded yet" false (Quarantine.degraded q ~cell:1);
  check Alcotest.bool "second strike degrades" true (Quarantine.strike q ~cell:1 = `Degraded);
  check Alcotest.bool "degraded sticks" true (Quarantine.degraded q ~cell:1);
  check Alcotest.int "strikes counted" 2 (Quarantine.strikes q ~cell:1);
  check Alcotest.bool "other cells unaffected" false (Quarantine.degraded q ~cell:0);
  ignore (Quarantine.strike q ~cell:2);
  ignore (Quarantine.strike q ~cell:2);
  check (Alcotest.list Alcotest.int) "degraded cells ascending" [ 1; 2 ]
    (Quarantine.degraded_cells q)

let test_quarantine_validation () =
  raises_invalid "threshold < 1" (fun () -> Quarantine.create ~threshold:0 ~cells:1 ());
  raises_invalid "cells < 0" (fun () -> Quarantine.create ~cells:(-1) ())

(* ---- multicore watchdog ---- *)

let test_mc_stall_bound () =
  check Alcotest.(option (float 1e-9)) "override wins" (Some 0.2)
    (Mc.stall_bound_s ~deadline_s:(Some 10.0) ~override_s:(Some 0.2));
  check Alcotest.(option (float 1e-9)) "4 x deadline" (Some 4.0)
    (Mc.stall_bound_s ~deadline_s:(Some 1.0) ~override_s:None);
  check Alcotest.(option (float 1e-9)) "floored at 0.5s" (Some 0.5)
    (Mc.stall_bound_s ~deadline_s:(Some 0.01) ~override_s:None);
  check Alcotest.(option (float 1e-9)) "unsupervised" None
    (Mc.stall_bound_s ~deadline_s:None ~override_s:None)

let test_mc_unwatched_plain () =
  let cfg =
    Consensus_mc.config ~n_domains:2 ~plan_for:(fun _ -> Faulty_cas.plan_never)
      Consensus_mc.Single_cas
  in
  let r = Mc.execute cfg in
  check Alcotest.bool "unwatched" false r.Mc.watched;
  check Alcotest.int "no stalls" 0 r.Mc.stalls;
  check Alcotest.bool "agreed" true r.Mc.mc.Consensus_mc.agreed;
  check Alcotest.int "no timeouts" 0 r.Mc.mc.Consensus_mc.timeouts

(* Every CAS hangs (nonresponsive style, p = 1): the domains beat at
   start, go silent inside the CAS, and the watchdog — bound well under
   the generous deadline — must flag them and cancel the trial. That
   the run ends at all (in ~the stall bound, not the 30 s deadline) is
   the point of satellite #1. *)
let test_mc_watchdog_catches_hang () =
  let cfg =
    Consensus_mc.config ~n_domains:2
      ~plan_for:(fun _ -> Faulty_cas.plan_always)
      ~style:Faulty_cas.Hang ~deadline_s:30.0 Consensus_mc.Single_cas
  in
  let started = Unix.gettimeofday () in
  let r = Mc.execute ~watchdog_stall_s:0.3 cfg in
  let wall = Unix.gettimeofday () -. started in
  check Alcotest.bool "watched" true r.Mc.watched;
  check Alcotest.bool "stalled domains flagged" true (r.Mc.stalls >= 1);
  check Alcotest.int "every domain timed out" 2 r.Mc.mc.Consensus_mc.timeouts;
  check Alcotest.bool "watchdog beat the deadline" true (wall < 10.0)

let test_mc_validation () =
  let cfg = Consensus_mc.config ~n_domains:1 Consensus_mc.Single_cas in
  raises_invalid "zero stall" (fun () -> Mc.execute ~watchdog_stall_s:0.0 cfg);
  raises_invalid "nan stall" (fun () -> Mc.execute ~watchdog_stall_s:Float.nan cfg)

let suites =
  [
    ( "supervise.heartbeat",
      [
        Alcotest.test_case "beats and ages" `Quick test_heartbeat_ages;
        Alcotest.test_case "validation" `Quick test_heartbeat_validation;
      ] );
    ( "supervise.watchdog",
      [
        Alcotest.test_case "flags and cancels" `Quick test_watchdog_flags_and_cancels;
        Alcotest.test_case "beat unflags" `Quick test_watchdog_beat_unflags;
        Alcotest.test_case "detach" `Quick test_watchdog_detach;
        Alcotest.test_case "validation" `Quick test_watchdog_validation;
      ] );
    ( "supervise.retry",
      [
        Alcotest.test_case "backoff deterministic + bounded" `Quick
          test_backoff_deterministic_and_bounded;
        Alcotest.test_case "classification" `Quick test_classify;
        Alcotest.test_case "validation" `Quick test_retry_validation;
      ] );
    ( "supervise.quarantine",
      [
        Alcotest.test_case "threshold" `Quick test_quarantine_threshold;
        Alcotest.test_case "validation" `Quick test_quarantine_validation;
      ] );
    ( "supervise.mc",
      [
        Alcotest.test_case "stall bound" `Quick test_mc_stall_bound;
        Alcotest.test_case "unwatched is plain execute" `Quick test_mc_unwatched_plain;
        Alcotest.test_case "watchdog catches a hang" `Quick test_mc_watchdog_catches_hang;
        Alcotest.test_case "validation" `Quick test_mc_validation;
      ] );
  ]
