(* Tests for the static-analysis pass: every rule firing and not firing,
   policy scoping, suppression handling, baseline add/expire semantics,
   and both reporters. Fixtures are inline sources pushed through
   [Driver.lint_impl_source]; the filename picks the policy scope. *)

module Lint = Ffault_lint
module Finding = Lint.Finding
module Driver = Lint.Driver
module Policy = Lint.Policy
module Baseline = Lint.Baseline
module Report = Lint.Report
module Json = Ffault_campaign.Json

let check = Alcotest.check

let contains ~sub s =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  m = 0 || go 0

let lint ~file src = Driver.lint_impl_source ~policy:Policy.default ~file src

let rules_of (o : Driver.outcome) =
  List.map (fun (f : Finding.t) -> f.Finding.rule) o.Driver.findings

let count_rule rule o = List.length (List.filter (( = ) rule) (rules_of o))

let tmp_root =
  let n = ref 0 in
  fun () ->
    incr n;
    let dir =
      Filename.concat
        (Filename.get_temp_dir_name ())
        (Fmt.str "ffault-lint-test-%d-%d" (Unix.getpid ()) !n)
    in
    Ffault_campaign.Checkpoint.mkdir_p dir;
    dir

let write_file path content =
  Ffault_campaign.Checkpoint.mkdir_p (Filename.dirname path);
  Out_channel.with_open_text path (fun oc -> output_string oc content)

(* ---- raw-atomic ---- *)

let test_raw_atomic_fires () =
  let o =
    lint ~file:"lib/consensus/fixture.ml"
      "let f a = Atomic.compare_and_set a 0 1\nlet g a = Stdlib.Atomic.set a 2\n"
  in
  check Alcotest.int "two findings" 2 (count_rule "raw-atomic" o);
  let f = List.hd o.Driver.findings in
  check Alcotest.int "line of first" 1 f.Finding.line;
  check Alcotest.string "severity" "error" (Finding.severity_to_string f.Finding.severity)

let test_raw_atomic_spared () =
  (* the substrate itself is allowlisted… *)
  let o = lint ~file:"lib/runtime/fixture.ml" "let f a = Atomic.compare_and_set a 0 1\n" in
  check Alcotest.int "runtime allowlisted" 0 (count_rule "raw-atomic" o);
  (* …and reads / allocation are not mutations *)
  let o = lint ~file:"lib/consensus/fixture.ml" "let f a = Atomic.get a\n" in
  check Alcotest.int "Atomic.get fine" 0 (count_rule "raw-atomic" o)

(* ---- nondeterminism ---- *)

let test_nondeterminism_fires () =
  let o =
    lint ~file:"lib/sim/fixture.ml"
      "let f () = Random.int 5\n\
       let g () = Unix.gettimeofday ()\n\
       let h () = Hashtbl.create ~random:true 8\n"
  in
  check Alcotest.int "three findings" 3 (count_rule "nondeterminism" o)

let test_nondeterminism_spared () =
  (* out of the deterministic scope: campaign orchestration may read the clock *)
  let o = lint ~file:"lib/campaign/fixture.ml" "let g () = Unix.gettimeofday ()\n" in
  check Alcotest.int "campaign out of scope" 0 (count_rule "nondeterminism" o);
  (* the repo's seeded PRNG is the sanctioned source *)
  let o = lint ~file:"lib/sim/fixture.ml" "let f g = Ffault_prng.Splitmix.next_int g\n" in
  check Alcotest.int "Ffault_prng fine" 0 (count_rule "nondeterminism" o)

(* ---- toplevel-mutable ---- *)

let test_toplevel_mutable_fires () =
  let o =
    lint ~file:"lib/verify/fixture.ml"
      "let cache = Hashtbl.create 8\n\
       let flag = ref false\n\
       let slots = Array.init 4 (fun i -> i)\n"
  in
  check Alcotest.int "three findings" 3 (count_rule "toplevel-mutable" o)

let test_toplevel_mutable_spared () =
  (* per-call allocation and delayed state are fine *)
  let o =
    lint ~file:"lib/verify/fixture.ml"
      "let mk () = Hashtbl.create 8\nlet delayed = lazy (ref 0)\n"
  in
  check Alcotest.int "functions and lazy fine" 0 (count_rule "toplevel-mutable" o);
  (* telemetry's process-wide registry is allowlisted *)
  let o = lint ~file:"lib/telemetry/fixture.ml" "let registry = Hashtbl.create 64\n" in
  check Alcotest.int "telemetry allowlisted" 0 (count_rule "toplevel-mutable" o)

(* ---- io-in-lib ---- *)

let test_io_in_lib_fires () =
  let o =
    lint ~file:"lib/objects/fixture.ml"
      "let f () = print_endline \"hi\"\n\
       let g () = Printf.printf \"%d\" 3\n\
       let h () = exit 1\n\
       let i () = Fmt.pr \"x\"\n"
  in
  check Alcotest.int "four findings" 4 (count_rule "io-in-lib" o)

let test_io_in_lib_spared () =
  (* printing through a caller-supplied formatter is the sanctioned idiom *)
  let o = lint ~file:"lib/objects/fixture.ml" "let pp ppf x = Fmt.pf ppf \"%d\" x\n" in
  check Alcotest.int "ppf-based pp fine" 0 (count_rule "io-in-lib" o);
  let o = lint ~file:"lib/telemetry/fixture.ml" "let f () = print_endline \"hi\"\n" in
  check Alcotest.int "telemetry allowlisted" 0 (count_rule "io-in-lib" o)

let test_io_in_lib_sockets () =
  (* socket syscalls are transport work: flagged anywhere in lib... *)
  let src =
    "let f () = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0\n\
     let g fd = Unix.accept fd\n\
     let h r = Unix.select r [] [] 0.1\n"
  in
  let o = lint ~file:"lib/campaign/fixture.ml" src in
  check Alcotest.int "three findings" 3 (count_rule "io-in-lib" o);
  (* ...except the dist driver layer, allowlisted by file *)
  let o = lint ~file:"lib/dist/http.ml" src in
  check Alcotest.int "http driver allowlisted" 0 (count_rule "io-in-lib" o);
  let o = lint ~file:"lib/dist/transport.ml" src in
  check Alcotest.int "transport driver allowlisted" 0 (count_rule "io-in-lib" o);
  (* the pure responder stays covered: a socket call in status.ml fails *)
  let o = lint ~file:"lib/dist/status.ml" src in
  check Alcotest.int "status must stay pure" 3 (count_rule "io-in-lib" o)

(* ---- catch-all ---- *)

let test_catch_all_fires () =
  let o =
    lint ~file:"lib/campaign/fixture.ml"
      "let f g = try g () with _ -> None\n\
       let h g = match g () with exception _ -> 0 | n -> n\n"
  in
  check Alcotest.int "try and match-exception" 2 (count_rule "catch-all" o)

let test_catch_all_spared () =
  let o =
    lint ~file:"lib/campaign/fixture.ml"
      "let f g = try g () with Not_found -> None\n\
       let h g = try g () with e -> raise e\n"
  in
  check Alcotest.int "specific and re-raising fine" 0 (count_rule "catch-all" o)

(* ---- effect-discipline ---- *)

let test_effect_discipline_fires () =
  (* try_with has no retc/exnc: a deciding or crashing body escapes the
     scheduler's bookkeeping *)
  let o =
    lint ~file:"lib/sim/fixture.ml"
      "let f body = Effect.Deep.try_with body () { Effect.Deep.effc = (fun _ -> None) }\n"
  in
  check Alcotest.int "try_with flagged" 1 (count_rule "effect-discipline" o);
  (* a full handler whose exnc merely re-raises drops the crash half *)
  let o =
    lint ~file:"lib/sim/fixture.ml"
      "open Effect.Deep\n\
       let f body st =\n\
       \  match_with body ()\n\
       \    { retc = (fun v -> st := Some v); exnc = raise; effc = (fun _ -> None) }\n"
  in
  check Alcotest.int "re-raising exnc flagged" 1 (count_rule "effect-discipline" o)

let test_effect_discipline_spared () =
  (* the full Step/Decide protocol: every exit lands in a status *)
  let o =
    lint ~file:"lib/sim/fixture.ml"
      "open Effect.Deep\n\
       let f body st =\n\
       \  match_with body ()\n\
       \    {\n\
       \      retc = (fun v -> st := `Done v);\n\
       \      exnc = (fun e -> st := `Failed e);\n\
       \      effc = (fun _ -> None);\n\
       \    }\n"
  in
  check Alcotest.int "full handler fine" 0 (count_rule "effect-discipline" o);
  (* out of scope: effects outside the simulator are not its protocol *)
  let o =
    lint ~file:"lib/campaign/fixture.ml"
      "let f body = Effect.Deep.try_with body () { Effect.Deep.effc = (fun _ -> None) }\n"
  in
  check Alcotest.int "out of scope" 0 (count_rule "effect-discipline" o)

(* ---- obj-magic ---- *)

let test_obj_magic_fires () =
  let o = lint ~file:"lib/fault/fixture.ml" "let f x = Obj.magic x\n" in
  check Alcotest.int "one finding" 1 (count_rule "obj-magic" o)

let test_obj_magic_spared () =
  (* out of scope: tests may poke representations *)
  let o = lint ~file:"test/fixture.ml" "let f x = Obj.magic x\n" in
  check Alcotest.int "test tree out of scope" 0 (count_rule "obj-magic" o)

(* ---- mli-required ---- *)

let test_mli_required () =
  let root = tmp_root () in
  write_file (Filename.concat root "lib/foo/bare.ml") "let x = 1\n";
  write_file (Filename.concat root "lib/foo/covered.ml") "let y = 2\n";
  write_file (Filename.concat root "lib/foo/covered.mli") "val y : int\n";
  let r = Driver.run ~policy:Policy.default [ root ] in
  let missing =
    List.filter (fun (f : Finding.t) -> f.Finding.rule = "mli-required") r.Driver.findings
  in
  check Alcotest.int "exactly the bare module" 1 (List.length missing);
  check Alcotest.bool "names bare.ml" true
    (Filename.basename (List.hd missing).Finding.file = "bare.ml")

(* ---- parse errors ---- *)

let test_parse_error () =
  let o = lint ~file:"lib/sim/fixture.ml" "let let = 3\n" in
  check Alcotest.int "one parse-error" 1 (count_rule "parse-error" o)

(* ---- suppressions ---- *)

let test_suppress_file_level () =
  let o =
    lint ~file:"lib/consensus/fixture.ml"
      "[@@@ffault.lint.allow \"raw-atomic\", \"fixture: exercising the substrate\"]\n\
       let f a = Atomic.set a 1\n"
  in
  check Alcotest.int "no findings" 0 (List.length o.Driver.findings);
  check Alcotest.int "one suppressed" 1 (List.length o.Driver.suppressed);
  let _, s = List.hd o.Driver.suppressed in
  check Alcotest.string "justification kept" "fixture: exercising the substrate"
    s.Lint.Suppress.justification

let test_suppress_binding_scoped () =
  let o =
    lint ~file:"lib/consensus/fixture.ml"
      "let f a = Atomic.set a 1 [@@ffault.lint.allow \"raw-atomic\", \"first only\"]\n\
       let g a = Atomic.set a 2\n"
  in
  check Alcotest.int "second still fires" 1 (count_rule "raw-atomic" o);
  check Alcotest.int "first suppressed" 1 (List.length o.Driver.suppressed);
  let f = List.hd o.Driver.findings in
  check Alcotest.int "surviving one is line 2" 2 f.Finding.line

let test_suppress_missing_justification () =
  let o =
    lint ~file:"lib/consensus/fixture.ml"
      "[@@@ffault.lint.allow \"raw-atomic\"]\nlet f a = Atomic.set a 1\n"
  in
  (* the malformed suppression is itself a finding, and suppresses nothing *)
  check Alcotest.int "suppression finding" 1 (count_rule "suppression" o);
  check Alcotest.int "raw-atomic still fires" 1 (count_rule "raw-atomic" o)

let test_suppress_unknown_rule () =
  let o =
    lint ~file:"lib/consensus/fixture.ml"
      "[@@@ffault.lint.allow \"no-such-rule\", \"why\"]\nlet x = 1\n"
  in
  check Alcotest.int "suppression finding" 1 (count_rule "suppression" o)

let test_suppress_meta_rule_rejected () =
  let o =
    lint ~file:"lib/consensus/fixture.ml"
      "[@@@ffault.lint.allow \"parse-error\", \"never\"]\nlet x = 1\n"
  in
  check Alcotest.int "meta rules not suppressible" 1 (count_rule "suppression" o)

let test_suppress_blank_justification () =
  let o =
    lint ~file:"lib/consensus/fixture.ml"
      "[@@@ffault.lint.allow \"raw-atomic\", \"  \"]\nlet f a = Atomic.set a 1\n"
  in
  check Alcotest.int "blank justification rejected" 1 (count_rule "suppression" o)

(* ---- policy ---- *)

let test_policy_normalize () =
  check Alcotest.string "temp prefix stripped" "lib/sim/a.ml"
    (Policy.normalize "/tmp/scratch/lib/sim/a.ml");
  check Alcotest.string "dot-segments dropped" "lib/sim/a.ml"
    (Policy.normalize "./lib/sim/a.ml");
  check Alcotest.bool "component-wise prefix" true
    (Policy.has_prefix ~prefix:"lib/sim" "lib/sim/engine.ml");
  check Alcotest.bool "no substring matches" false
    (Policy.has_prefix ~prefix:"lib/sim" "lib/simulator.ml")

let test_policy_scoping () =
  let p = Policy.default in
  check Alcotest.bool "raw-atomic active in consensus" true
    (Policy.applies p ~rule:"raw-atomic" ~file:"lib/consensus/protocol.ml");
  check Alcotest.bool "raw-atomic allowlisted in runtime" false
    (Policy.applies p ~rule:"raw-atomic" ~file:"lib/runtime/faulty_cas.ml");
  check Alcotest.bool "nondeterminism inactive in campaign" false
    (Policy.applies p ~rule:"nondeterminism" ~file:"lib/campaign/pool.ml");
  check Alcotest.bool "pool.ml file-precise allow" false
    (Policy.applies p ~rule:"raw-atomic" ~file:"lib/campaign/pool.ml");
  check Alcotest.bool "campaign otherwise checked" true
    (Policy.applies p ~rule:"raw-atomic" ~file:"lib/campaign/journal.ml")

(* ---- rules filter ---- *)

let test_rules_filter () =
  let root = tmp_root () in
  write_file
    (Filename.concat root "lib/fault/mixed.ml")
    "let f x = Obj.magic x\nlet g () = print_endline \"hi\"\n";
  write_file (Filename.concat root "lib/fault/mixed.mli") "val f : 'a -> 'b\nval g : unit -> unit\n";
  let r = Driver.run ~rules:[ "obj-magic" ] ~policy:Policy.default [ root ] in
  let rules = List.map (fun (f : Finding.t) -> f.Finding.rule) r.Driver.findings in
  check Alcotest.bool "only obj-magic" true (List.for_all (( = ) "obj-magic") rules);
  check Alcotest.int "one finding" 1 (List.length rules)

let test_collect_skips_build_dirs () =
  let root = tmp_root () in
  write_file (Filename.concat root "lib/a.ml") "let x = 1\n";
  write_file (Filename.concat root "_build/lib/b.ml") "let y = 2\n";
  let files = Driver.collect_files [ root ] in
  check Alcotest.int "only the real source" 1 (List.length files)

(* ---- baseline ---- *)

let finding ~rule ~file ~line =
  Finding.v ~rule ~severity:Finding.Error ~file ~line ~col:0 "fixture"

let test_baseline_roundtrip () =
  let root = tmp_root () in
  let path = Filename.concat root "baseline.json" in
  let b =
    Baseline.of_findings
      [ finding ~rule:"obj-magic" ~file:"lib/a.ml" ~line:3;
        finding ~rule:"catch-all" ~file:"lib/b.ml" ~line:7 ]
  in
  Baseline.save ~path b;
  match Baseline.load ~path with
  | Error m -> Alcotest.fail m
  | Ok b' ->
      check Alcotest.int "entries survive" 2 (List.length b');
      check Alcotest.bool "identical" true (b = b')

let test_baseline_add_expire () =
  let a = finding ~rule:"obj-magic" ~file:"lib/a.ml" ~line:3 in
  let b = finding ~rule:"catch-all" ~file:"lib/b.ml" ~line:7 in
  let stale =
    { Baseline.rule = "io-in-lib"; file = "lib/gone.ml"; line = 9; ctx = None; note = "" }
  in
  let base = Baseline.of_findings [ a ] @ [ stale ] in
  let split = Baseline.apply base [ a; b ] in
  check Alcotest.int "b is fresh" 1 (List.length split.Baseline.fresh);
  check Alcotest.bool "fresh is b" true (List.hd split.Baseline.fresh == b);
  check Alcotest.int "a grandfathered" 1 (List.length split.Baseline.baselined);
  check Alcotest.int "stale expired" 1 (List.length split.Baseline.expired);
  (* drift: the baselined file edited past the recorded line resurfaces *)
  let moved = finding ~rule:"obj-magic" ~file:"lib/a.ml" ~line:4 in
  let split = Baseline.apply base [ moved ] in
  check Alcotest.int "moved finding is fresh" 1 (List.length split.Baseline.fresh)

let test_baseline_missing_file () =
  match Baseline.load ~path:"/nonexistent/baseline.json" with
  | Ok _ -> Alcotest.fail "expected an error"
  | Error _ -> ()

(* ---- fuzzy matching against real files ---- *)

let flagged_line = "let f a = Atomic.compare_and_set a 0 1\n"

let body =
  "let a = 1\nlet b = 2\n" ^ flagged_line ^ "let c = 3\nlet d = 4\n"

let test_baseline_fuzzy_survives_shift () =
  let root = tmp_root () in
  let file = Filename.concat root "shifty.ml" in
  write_file file body;
  let base = Baseline.of_findings [ finding ~rule:"raw-atomic" ~file ~line:3 ] in
  (match base with
  | [ e ] -> check Alcotest.bool "context recorded" true (e.Baseline.ctx <> None)
  | _ -> Alcotest.fail "one entry expected");
  (* a header lands above: the finding moves to line 6, context intact *)
  write_file file ("(* new *)\n(* header *)\n(* lines *)\n" ^ body);
  let split = Baseline.apply base [ finding ~rule:"raw-atomic" ~file ~line:6 ] in
  check Alcotest.int "moved finding stays grandfathered" 1
    (List.length split.Baseline.baselined);
  check Alcotest.int "nothing fresh" 0 (List.length split.Baseline.fresh);
  check Alcotest.int "nothing expired" 0 (List.length split.Baseline.expired)

let test_baseline_fuzzy_edit_resurfaces () =
  let root = tmp_root () in
  let file = Filename.concat root "edited.ml" in
  write_file file body;
  let base = Baseline.of_findings [ finding ~rule:"raw-atomic" ~file ~line:3 ] in
  (* the flagged region itself changes (same line count, same line
     number): the context hash no longer matches and the debt surfaces *)
  write_file file
    ("let a = 1\nlet b' = 99\n" ^ flagged_line ^ "let c = 3\nlet d = 4\n");
  let split = Baseline.apply base [ finding ~rule:"raw-atomic" ~file ~line:3 ] in
  check Alcotest.int "edited finding is fresh" 1 (List.length split.Baseline.fresh);
  check Alcotest.int "its entry expired" 1 (List.length split.Baseline.expired)

let test_baseline_fuzzy_line_tiebreak () =
  let root = tmp_root () in
  let file = Filename.concat root "twins.ml" in
  (* two identical flagged regions: colliding context hashes, the
     recorded line must pair each entry with its nearest finding *)
  let block = "let a = 1\nlet a = 1\n" ^ flagged_line ^ "let a = 1\nlet a = 1\n" in
  write_file file (block ^ block);
  let base =
    Baseline.of_findings
      [ finding ~rule:"raw-atomic" ~file ~line:3;
        finding ~rule:"raw-atomic" ~file ~line:8 ]
  in
  let split =
    Baseline.apply base
      [ finding ~rule:"raw-atomic" ~file ~line:3; finding ~rule:"raw-atomic" ~file ~line:8 ]
  in
  check Alcotest.int "both grandfathered" 2 (List.length split.Baseline.baselined);
  check Alcotest.int "one-to-one, none expired" 0 (List.length split.Baseline.expired)

let test_baseline_v1_compat () =
  let root = tmp_root () in
  let file = Filename.concat root "legacy.ml" in
  write_file file body;
  (* a v1 baseline file: no version, no ctx — must load and match
     exactly by line *)
  let path = Filename.concat root "baseline.json" in
  write_file path
    (Fmt.str
       "{\"entries\":[{\"rule\":\"raw-atomic\",\"file\":%S,\"line\":3,\"note\":\"old\"}]}\n"
       (Policy.normalize file));
  match Baseline.load ~path with
  | Error m -> Alcotest.fail m
  | Ok base ->
      (match base with
      | [ e ] -> check Alcotest.bool "v1 entry has no ctx" true (e.Baseline.ctx = None)
      | _ -> Alcotest.fail "one entry expected");
      let split = Baseline.apply base [ finding ~rule:"raw-atomic" ~file ~line:3 ] in
      check Alcotest.int "exact line matches" 1 (List.length split.Baseline.baselined);
      let split = Baseline.apply base [ finding ~rule:"raw-atomic" ~file ~line:4 ] in
      check Alcotest.int "moved finding is fresh under v1" 1
        (List.length split.Baseline.fresh)

(* ---- reporters ---- *)

let report_fixture () =
  let fresh = finding ~rule:"obj-magic" ~file:"lib/a.ml" ~line:3 in
  let based = finding ~rule:"catch-all" ~file:"lib/b.ml" ~line:7 in
  let result =
    { Driver.files = 2; findings = [ fresh; based ]; suppressed = [] }
  in
  Report.make ~baseline:(Baseline.of_findings [ based ]) result

let test_report_exit_codes () =
  let r = report_fixture () in
  check Alcotest.int "fresh finding fails" 1 (Report.exit_code r);
  let clean = Report.make { Driver.files = 1; findings = []; suppressed = [] } in
  check Alcotest.int "clean passes" 0 (Report.exit_code clean);
  let all_baselined =
    Report.make
      ~baseline:(Baseline.of_findings [ finding ~rule:"obj-magic" ~file:"lib/a.ml" ~line:3 ])
      { Driver.files = 1;
        findings = [ finding ~rule:"obj-magic" ~file:"lib/a.ml" ~line:3 ];
        suppressed = [] }
  in
  check Alcotest.int "baselined does not fail" 0 (Report.exit_code all_baselined)

let test_report_text () =
  let text = Report.to_text (report_fixture ()) in
  check Alcotest.bool "grep-able location" true
    (contains ~sub:"lib/a.ml:3:0: error obj-magic" text);
  check Alcotest.bool "baselined tagged" true (contains ~sub:"[baselined]" text);
  check Alcotest.bool "summary line" true (contains ~sub:"2 files checked" text)

let test_report_json () =
  let json = Report.to_json (report_fixture ()) in
  match Json.of_string (Json.to_string json) with
  | Error m -> Alcotest.fail m
  | Ok j ->
      check Alcotest.int "version" 1
        (Option.get (Option.bind (Json.member "version" j) Json.get_int));
      let findings = Option.get (Option.bind (Json.member "findings" j) Json.get_list) in
      check Alcotest.int "fresh + baselined listed" 2 (List.length findings);
      let f = List.hd findings in
      List.iter
        (fun key ->
          check Alcotest.bool (Fmt.str "finding has %s" key) true
            (Json.member key f <> None))
        [ "rule"; "severity"; "file"; "line"; "col"; "message"; "baselined" ];
      let summary = Option.get (Json.member "summary" j) in
      check Alcotest.int "summary.fresh" 1
        (Option.get (Option.bind (Json.member "fresh" summary) Json.get_int));
      let by_rule = Option.get (Json.member "by_rule" summary) in
      check Alcotest.int "by_rule.obj-magic" 1
        (Option.get (Option.bind (Json.member "obj-magic" by_rule) Json.get_int))

(* ---- the lint on this repo's own invariants ---- *)

let test_rule_registry () =
  check Alcotest.int "eight substantive rules" 8 (List.length Lint.Rule.substantive);
  List.iter
    (fun name ->
      check Alcotest.bool (Fmt.str "%s registered" name) true (Lint.Rule.find name <> None))
    [ "raw-atomic"; "nondeterminism"; "toplevel-mutable"; "io-in-lib"; "catch-all";
      "mli-required"; "obj-magic"; "effect-discipline" ];
  check Alcotest.bool "parse-error is meta" true (Lint.Rule.is_meta "parse-error");
  check Alcotest.bool "raw-atomic is not" false (Lint.Rule.is_meta "raw-atomic")

let suites =
  [
    ( "lint.rules",
      [
        Alcotest.test_case "raw-atomic fires" `Quick test_raw_atomic_fires;
        Alcotest.test_case "raw-atomic spared" `Quick test_raw_atomic_spared;
        Alcotest.test_case "nondeterminism fires" `Quick test_nondeterminism_fires;
        Alcotest.test_case "nondeterminism spared" `Quick test_nondeterminism_spared;
        Alcotest.test_case "toplevel-mutable fires" `Quick test_toplevel_mutable_fires;
        Alcotest.test_case "toplevel-mutable spared" `Quick test_toplevel_mutable_spared;
        Alcotest.test_case "io-in-lib fires" `Quick test_io_in_lib_fires;
        Alcotest.test_case "io-in-lib spared" `Quick test_io_in_lib_spared;
        Alcotest.test_case "io-in-lib sockets" `Quick test_io_in_lib_sockets;
        Alcotest.test_case "catch-all fires" `Quick test_catch_all_fires;
        Alcotest.test_case "catch-all spared" `Quick test_catch_all_spared;
        Alcotest.test_case "effect-discipline fires" `Quick test_effect_discipline_fires;
        Alcotest.test_case "effect-discipline spared" `Quick test_effect_discipline_spared;
        Alcotest.test_case "obj-magic fires" `Quick test_obj_magic_fires;
        Alcotest.test_case "obj-magic spared" `Quick test_obj_magic_spared;
        Alcotest.test_case "mli-required" `Quick test_mli_required;
        Alcotest.test_case "parse-error" `Quick test_parse_error;
        Alcotest.test_case "registry" `Quick test_rule_registry;
      ] );
    ( "lint.suppress",
      [
        Alcotest.test_case "file-level" `Quick test_suppress_file_level;
        Alcotest.test_case "binding-scoped" `Quick test_suppress_binding_scoped;
        Alcotest.test_case "missing justification" `Quick test_suppress_missing_justification;
        Alcotest.test_case "unknown rule" `Quick test_suppress_unknown_rule;
        Alcotest.test_case "meta rule rejected" `Quick test_suppress_meta_rule_rejected;
        Alcotest.test_case "blank justification" `Quick test_suppress_blank_justification;
      ] );
    ( "lint.policy",
      [
        Alcotest.test_case "normalize" `Quick test_policy_normalize;
        Alcotest.test_case "scoping" `Quick test_policy_scoping;
      ] );
    ( "lint.driver",
      [
        Alcotest.test_case "rules filter" `Quick test_rules_filter;
        Alcotest.test_case "skips _build" `Quick test_collect_skips_build_dirs;
      ] );
    ( "lint.baseline",
      [
        Alcotest.test_case "roundtrip" `Quick test_baseline_roundtrip;
        Alcotest.test_case "add/expire" `Quick test_baseline_add_expire;
        Alcotest.test_case "missing file" `Quick test_baseline_missing_file;
        Alcotest.test_case "fuzzy: shift survives" `Quick test_baseline_fuzzy_survives_shift;
        Alcotest.test_case "fuzzy: edit resurfaces" `Quick
          test_baseline_fuzzy_edit_resurfaces;
        Alcotest.test_case "fuzzy: line tiebreak" `Quick test_baseline_fuzzy_line_tiebreak;
        Alcotest.test_case "v1 compat" `Quick test_baseline_v1_compat;
      ] );
    ( "lint.report",
      [
        Alcotest.test_case "exit codes" `Quick test_report_exit_codes;
        Alcotest.test_case "text shape" `Quick test_report_text;
        Alcotest.test_case "json shape" `Quick test_report_json;
      ] );
  ]
