(* Tests for the static-analysis pass: every rule firing and not firing,
   policy scoping, suppression handling, baseline add/expire semantics,
   and both reporters. Fixtures are inline sources pushed through
   [Driver.lint_impl_source]; the filename picks the policy scope. *)

module Lint = Ffault_lint
module Finding = Lint.Finding
module Driver = Lint.Driver
module Policy = Lint.Policy
module Baseline = Lint.Baseline
module Report = Lint.Report
module Json = Ffault_campaign.Json

let check = Alcotest.check

let contains ~sub s =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  m = 0 || go 0

let lint ~file src = Driver.lint_impl_source ~policy:Policy.default ~file src

let rules_of (o : Driver.outcome) =
  List.map (fun (f : Finding.t) -> f.Finding.rule) o.Driver.findings

let count_rule rule o = List.length (List.filter (( = ) rule) (rules_of o))

let tmp_root =
  let n = ref 0 in
  fun () ->
    incr n;
    let dir =
      Filename.concat
        (Filename.get_temp_dir_name ())
        (Fmt.str "ffault-lint-test-%d-%d" (Unix.getpid ()) !n)
    in
    Ffault_campaign.Checkpoint.mkdir_p dir;
    dir

let write_file path content =
  Ffault_campaign.Checkpoint.mkdir_p (Filename.dirname path);
  Out_channel.with_open_text path (fun oc -> output_string oc content)

(* ---- raw-atomic ---- *)

let test_raw_atomic_fires () =
  let o =
    lint ~file:"lib/consensus/fixture.ml"
      "let f a = Atomic.compare_and_set a 0 1\nlet g a = Stdlib.Atomic.set a 2\n"
  in
  check Alcotest.int "two findings" 2 (count_rule "raw-atomic" o);
  let f = List.hd o.Driver.findings in
  check Alcotest.int "line of first" 1 f.Finding.line;
  check Alcotest.string "severity" "error" (Finding.severity_to_string f.Finding.severity)

let test_raw_atomic_spared () =
  (* the substrate itself is allowlisted… *)
  let o = lint ~file:"lib/runtime/fixture.ml" "let f a = Atomic.compare_and_set a 0 1\n" in
  check Alcotest.int "runtime allowlisted" 0 (count_rule "raw-atomic" o);
  (* …and reads / allocation are not mutations *)
  let o = lint ~file:"lib/consensus/fixture.ml" "let f a = Atomic.get a\n" in
  check Alcotest.int "Atomic.get fine" 0 (count_rule "raw-atomic" o)

(* ---- nondeterminism ---- *)

let test_nondeterminism_fires () =
  let o =
    lint ~file:"lib/sim/fixture.ml"
      "let f () = Random.int 5\n\
       let g () = Unix.gettimeofday ()\n\
       let h () = Hashtbl.create ~random:true 8\n"
  in
  check Alcotest.int "three findings" 3 (count_rule "nondeterminism" o)

let test_nondeterminism_spared () =
  (* out of the deterministic scope: campaign orchestration may read the clock *)
  let o = lint ~file:"lib/campaign/fixture.ml" "let g () = Unix.gettimeofday ()\n" in
  check Alcotest.int "campaign out of scope" 0 (count_rule "nondeterminism" o);
  (* the repo's seeded PRNG is the sanctioned source *)
  let o = lint ~file:"lib/sim/fixture.ml" "let f g = Ffault_prng.Splitmix.next_int g\n" in
  check Alcotest.int "Ffault_prng fine" 0 (count_rule "nondeterminism" o)

(* ---- toplevel-mutable ---- *)

let test_toplevel_mutable_fires () =
  let o =
    lint ~file:"lib/verify/fixture.ml"
      "let cache = Hashtbl.create 8\n\
       let flag = ref false\n\
       let slots = Array.init 4 (fun i -> i)\n"
  in
  check Alcotest.int "three findings" 3 (count_rule "toplevel-mutable" o)

let test_toplevel_mutable_spared () =
  (* per-call allocation and delayed state are fine *)
  let o =
    lint ~file:"lib/verify/fixture.ml"
      "let mk () = Hashtbl.create 8\nlet delayed = lazy (ref 0)\n"
  in
  check Alcotest.int "functions and lazy fine" 0 (count_rule "toplevel-mutable" o);
  (* telemetry's process-wide registry is allowlisted *)
  let o = lint ~file:"lib/telemetry/fixture.ml" "let registry = Hashtbl.create 64\n" in
  check Alcotest.int "telemetry allowlisted" 0 (count_rule "toplevel-mutable" o)

(* ---- io-in-lib ---- *)

let test_io_in_lib_fires () =
  let o =
    lint ~file:"lib/objects/fixture.ml"
      "let f () = print_endline \"hi\"\n\
       let g () = Printf.printf \"%d\" 3\n\
       let h () = exit 1\n\
       let i () = Fmt.pr \"x\"\n"
  in
  check Alcotest.int "four findings" 4 (count_rule "io-in-lib" o)

let test_io_in_lib_spared () =
  (* printing through a caller-supplied formatter is the sanctioned idiom *)
  let o = lint ~file:"lib/objects/fixture.ml" "let pp ppf x = Fmt.pf ppf \"%d\" x\n" in
  check Alcotest.int "ppf-based pp fine" 0 (count_rule "io-in-lib" o);
  let o = lint ~file:"lib/telemetry/fixture.ml" "let f () = print_endline \"hi\"\n" in
  check Alcotest.int "telemetry allowlisted" 0 (count_rule "io-in-lib" o)

let test_io_in_lib_sockets () =
  (* socket syscalls are transport work: flagged anywhere in lib... *)
  let src =
    "let f () = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0\n\
     let g fd = Unix.accept fd\n\
     let h r = Unix.select r [] [] 0.1\n"
  in
  let o = lint ~file:"lib/campaign/fixture.ml" src in
  check Alcotest.int "three findings" 3 (count_rule "io-in-lib" o);
  (* ...except the dist driver layer, allowlisted by file *)
  let o = lint ~file:"lib/dist/http.ml" src in
  check Alcotest.int "http driver allowlisted" 0 (count_rule "io-in-lib" o);
  let o = lint ~file:"lib/dist/transport.ml" src in
  check Alcotest.int "transport driver allowlisted" 0 (count_rule "io-in-lib" o);
  (* the pure responder stays covered: a socket call in status.ml fails *)
  let o = lint ~file:"lib/dist/status.ml" src in
  check Alcotest.int "status must stay pure" 3 (count_rule "io-in-lib" o)

(* ---- catch-all ---- *)

let test_catch_all_fires () =
  let o =
    lint ~file:"lib/campaign/fixture.ml"
      "let f g = try g () with _ -> None\n\
       let h g = match g () with exception _ -> 0 | n -> n\n"
  in
  check Alcotest.int "try and match-exception" 2 (count_rule "catch-all" o)

let test_catch_all_spared () =
  let o =
    lint ~file:"lib/campaign/fixture.ml"
      "let f g = try g () with Not_found -> None\n\
       let h g = try g () with e -> raise e\n"
  in
  check Alcotest.int "specific and re-raising fine" 0 (count_rule "catch-all" o)

(* ---- effect-discipline ---- *)

let test_effect_discipline_fires () =
  (* try_with has no retc/exnc: a deciding or crashing body escapes the
     scheduler's bookkeeping *)
  let o =
    lint ~file:"lib/sim/fixture.ml"
      "let f body = Effect.Deep.try_with body () { Effect.Deep.effc = (fun _ -> None) }\n"
  in
  check Alcotest.int "try_with flagged" 1 (count_rule "effect-discipline" o);
  (* a full handler whose exnc merely re-raises drops the crash half *)
  let o =
    lint ~file:"lib/sim/fixture.ml"
      "open Effect.Deep\n\
       let f body st =\n\
       \  match_with body ()\n\
       \    { retc = (fun v -> st := Some v); exnc = raise; effc = (fun _ -> None) }\n"
  in
  check Alcotest.int "re-raising exnc flagged" 1 (count_rule "effect-discipline" o)

let test_effect_discipline_spared () =
  (* the full Step/Decide protocol: every exit lands in a status *)
  let o =
    lint ~file:"lib/sim/fixture.ml"
      "open Effect.Deep\n\
       let f body st =\n\
       \  match_with body ()\n\
       \    {\n\
       \      retc = (fun v -> st := `Done v);\n\
       \      exnc = (fun e -> st := `Failed e);\n\
       \      effc = (fun _ -> None);\n\
       \    }\n"
  in
  check Alcotest.int "full handler fine" 0 (count_rule "effect-discipline" o);
  (* out of scope: effects outside the simulator are not its protocol *)
  let o =
    lint ~file:"lib/campaign/fixture.ml"
      "let f body = Effect.Deep.try_with body () { Effect.Deep.effc = (fun _ -> None) }\n"
  in
  check Alcotest.int "out of scope" 0 (count_rule "effect-discipline" o)

(* ---- obj-magic ---- *)

let test_obj_magic_fires () =
  let o = lint ~file:"lib/fault/fixture.ml" "let f x = Obj.magic x\n" in
  check Alcotest.int "one finding" 1 (count_rule "obj-magic" o)

let test_obj_magic_spared () =
  (* out of scope: tests may poke representations *)
  let o = lint ~file:"test/fixture.ml" "let f x = Obj.magic x\n" in
  check Alcotest.int "test tree out of scope" 0 (count_rule "obj-magic" o)

(* ---- mli-required ---- *)

let test_mli_required () =
  let root = tmp_root () in
  write_file (Filename.concat root "lib/foo/bare.ml") "let x = 1\n";
  write_file (Filename.concat root "lib/foo/covered.ml") "let y = 2\n";
  write_file (Filename.concat root "lib/foo/covered.mli") "val y : int\n";
  let r = Driver.run ~policy:Policy.default [ root ] in
  let missing =
    List.filter (fun (f : Finding.t) -> f.Finding.rule = "mli-required") r.Driver.findings
  in
  check Alcotest.int "exactly the bare module" 1 (List.length missing);
  check Alcotest.bool "names bare.ml" true
    (Filename.basename (List.hd missing).Finding.file = "bare.ml")

(* ---- parse errors ---- *)

let test_parse_error () =
  let o = lint ~file:"lib/sim/fixture.ml" "let let = 3\n" in
  check Alcotest.int "one parse-error" 1 (count_rule "parse-error" o)

(* ---- suppressions ---- *)

let test_suppress_file_level () =
  let o =
    lint ~file:"lib/consensus/fixture.ml"
      "[@@@ffault.lint.allow \"raw-atomic\", \"fixture: exercising the substrate\"]\n\
       let f a = Atomic.set a 1\n"
  in
  check Alcotest.int "no findings" 0 (List.length o.Driver.findings);
  check Alcotest.int "one suppressed" 1 (List.length o.Driver.suppressed);
  let _, s = List.hd o.Driver.suppressed in
  check Alcotest.string "justification kept" "fixture: exercising the substrate"
    s.Lint.Suppress.justification

let test_suppress_binding_scoped () =
  let o =
    lint ~file:"lib/consensus/fixture.ml"
      "let f a = Atomic.set a 1 [@@ffault.lint.allow \"raw-atomic\", \"first only\"]\n\
       let g a = Atomic.set a 2\n"
  in
  check Alcotest.int "second still fires" 1 (count_rule "raw-atomic" o);
  check Alcotest.int "first suppressed" 1 (List.length o.Driver.suppressed);
  let f = List.hd o.Driver.findings in
  check Alcotest.int "surviving one is line 2" 2 f.Finding.line

let test_suppress_missing_justification () =
  let o =
    lint ~file:"lib/consensus/fixture.ml"
      "[@@@ffault.lint.allow \"raw-atomic\"]\nlet f a = Atomic.set a 1\n"
  in
  (* the malformed suppression is itself a finding, and suppresses nothing *)
  check Alcotest.int "suppression finding" 1 (count_rule "suppression" o);
  check Alcotest.int "raw-atomic still fires" 1 (count_rule "raw-atomic" o)

let test_suppress_unknown_rule () =
  let o =
    lint ~file:"lib/consensus/fixture.ml"
      "[@@@ffault.lint.allow \"no-such-rule\", \"why\"]\nlet x = 1\n"
  in
  check Alcotest.int "suppression finding" 1 (count_rule "suppression" o)

let test_suppress_meta_rule_rejected () =
  let o =
    lint ~file:"lib/consensus/fixture.ml"
      "[@@@ffault.lint.allow \"parse-error\", \"never\"]\nlet x = 1\n"
  in
  check Alcotest.int "meta rules not suppressible" 1 (count_rule "suppression" o)

let test_suppress_blank_justification () =
  let o =
    lint ~file:"lib/consensus/fixture.ml"
      "[@@@ffault.lint.allow \"raw-atomic\", \"  \"]\nlet f a = Atomic.set a 1\n"
  in
  check Alcotest.int "blank justification rejected" 1 (count_rule "suppression" o)

(* ---- policy ---- *)

let test_policy_normalize () =
  check Alcotest.string "temp prefix stripped" "lib/sim/a.ml"
    (Policy.normalize "/tmp/scratch/lib/sim/a.ml");
  check Alcotest.string "dot-segments dropped" "lib/sim/a.ml"
    (Policy.normalize "./lib/sim/a.ml");
  check Alcotest.bool "component-wise prefix" true
    (Policy.has_prefix ~prefix:"lib/sim" "lib/sim/engine.ml");
  check Alcotest.bool "no substring matches" false
    (Policy.has_prefix ~prefix:"lib/sim" "lib/simulator.ml")

let test_policy_scoping () =
  let p = Policy.default in
  check Alcotest.bool "raw-atomic active in consensus" true
    (Policy.applies p ~rule:"raw-atomic" ~file:"lib/consensus/protocol.ml");
  check Alcotest.bool "raw-atomic allowlisted in runtime" false
    (Policy.applies p ~rule:"raw-atomic" ~file:"lib/runtime/faulty_cas.ml");
  check Alcotest.bool "nondeterminism inactive in campaign" false
    (Policy.applies p ~rule:"nondeterminism" ~file:"lib/campaign/pool.ml");
  check Alcotest.bool "pool.ml file-precise allow" false
    (Policy.applies p ~rule:"raw-atomic" ~file:"lib/campaign/pool.ml");
  check Alcotest.bool "campaign otherwise checked" true
    (Policy.applies p ~rule:"raw-atomic" ~file:"lib/campaign/journal.ml")

(* ---- rules filter ---- *)

let test_rules_filter () =
  let root = tmp_root () in
  write_file
    (Filename.concat root "lib/fault/mixed.ml")
    "let f x = Obj.magic x\nlet g () = print_endline \"hi\"\n";
  write_file (Filename.concat root "lib/fault/mixed.mli") "val f : 'a -> 'b\nval g : unit -> unit\n";
  let r = Driver.run ~rules:[ "obj-magic" ] ~policy:Policy.default [ root ] in
  let rules = List.map (fun (f : Finding.t) -> f.Finding.rule) r.Driver.findings in
  check Alcotest.bool "only obj-magic" true (List.for_all (( = ) "obj-magic") rules);
  check Alcotest.int "one finding" 1 (List.length rules)

let test_collect_skips_build_dirs () =
  let root = tmp_root () in
  write_file (Filename.concat root "lib/a.ml") "let x = 1\n";
  write_file (Filename.concat root "_build/lib/b.ml") "let y = 2\n";
  let files = Driver.collect_files [ root ] in
  check Alcotest.int "only the real source" 1 (List.length files)

(* ---- baseline ---- *)

let finding ~rule ~file ~line =
  Finding.v ~rule ~severity:Finding.Error ~file ~line ~col:0 "fixture"

let test_baseline_roundtrip () =
  let root = tmp_root () in
  let path = Filename.concat root "baseline.json" in
  let b =
    Baseline.of_findings
      [ finding ~rule:"obj-magic" ~file:"lib/a.ml" ~line:3;
        finding ~rule:"catch-all" ~file:"lib/b.ml" ~line:7 ]
  in
  Baseline.save ~path b;
  match Baseline.load ~path with
  | Error m -> Alcotest.fail m
  | Ok b' ->
      check Alcotest.int "entries survive" 2 (List.length b');
      check Alcotest.bool "identical" true (b = b')

let test_baseline_add_expire () =
  let a = finding ~rule:"obj-magic" ~file:"lib/a.ml" ~line:3 in
  let b = finding ~rule:"catch-all" ~file:"lib/b.ml" ~line:7 in
  let stale =
    { Baseline.rule = "io-in-lib"; file = "lib/gone.ml"; line = 9; ctx = None; note = "" }
  in
  let base = Baseline.of_findings [ a ] @ [ stale ] in
  let split = Baseline.apply base [ a; b ] in
  check Alcotest.int "b is fresh" 1 (List.length split.Baseline.fresh);
  check Alcotest.bool "fresh is b" true (List.hd split.Baseline.fresh == b);
  check Alcotest.int "a grandfathered" 1 (List.length split.Baseline.baselined);
  check Alcotest.int "stale expired" 1 (List.length split.Baseline.expired);
  (* drift: the baselined file edited past the recorded line resurfaces *)
  let moved = finding ~rule:"obj-magic" ~file:"lib/a.ml" ~line:4 in
  let split = Baseline.apply base [ moved ] in
  check Alcotest.int "moved finding is fresh" 1 (List.length split.Baseline.fresh)

let test_baseline_missing_file () =
  match Baseline.load ~path:"/nonexistent/baseline.json" with
  | Ok _ -> Alcotest.fail "expected an error"
  | Error _ -> ()

(* ---- fuzzy matching against real files ---- *)

let flagged_line = "let f a = Atomic.compare_and_set a 0 1\n"

let body =
  "let a = 1\nlet b = 2\n" ^ flagged_line ^ "let c = 3\nlet d = 4\n"

let test_baseline_fuzzy_survives_shift () =
  let root = tmp_root () in
  let file = Filename.concat root "shifty.ml" in
  write_file file body;
  let base = Baseline.of_findings [ finding ~rule:"raw-atomic" ~file ~line:3 ] in
  (match base with
  | [ e ] -> check Alcotest.bool "context recorded" true (e.Baseline.ctx <> None)
  | _ -> Alcotest.fail "one entry expected");
  (* a header lands above: the finding moves to line 6, context intact *)
  write_file file ("(* new *)\n(* header *)\n(* lines *)\n" ^ body);
  let split = Baseline.apply base [ finding ~rule:"raw-atomic" ~file ~line:6 ] in
  check Alcotest.int "moved finding stays grandfathered" 1
    (List.length split.Baseline.baselined);
  check Alcotest.int "nothing fresh" 0 (List.length split.Baseline.fresh);
  check Alcotest.int "nothing expired" 0 (List.length split.Baseline.expired)

let test_baseline_fuzzy_edit_resurfaces () =
  let root = tmp_root () in
  let file = Filename.concat root "edited.ml" in
  write_file file body;
  let base = Baseline.of_findings [ finding ~rule:"raw-atomic" ~file ~line:3 ] in
  (* the flagged region itself changes (same line count, same line
     number): the context hash no longer matches and the debt surfaces *)
  write_file file
    ("let a = 1\nlet b' = 99\n" ^ flagged_line ^ "let c = 3\nlet d = 4\n");
  let split = Baseline.apply base [ finding ~rule:"raw-atomic" ~file ~line:3 ] in
  check Alcotest.int "edited finding is fresh" 1 (List.length split.Baseline.fresh);
  check Alcotest.int "its entry expired" 1 (List.length split.Baseline.expired)

let test_baseline_fuzzy_line_tiebreak () =
  let root = tmp_root () in
  let file = Filename.concat root "twins.ml" in
  (* two identical flagged regions: colliding context hashes, the
     recorded line must pair each entry with its nearest finding *)
  let block = "let a = 1\nlet a = 1\n" ^ flagged_line ^ "let a = 1\nlet a = 1\n" in
  write_file file (block ^ block);
  let base =
    Baseline.of_findings
      [ finding ~rule:"raw-atomic" ~file ~line:3;
        finding ~rule:"raw-atomic" ~file ~line:8 ]
  in
  let split =
    Baseline.apply base
      [ finding ~rule:"raw-atomic" ~file ~line:3; finding ~rule:"raw-atomic" ~file ~line:8 ]
  in
  check Alcotest.int "both grandfathered" 2 (List.length split.Baseline.baselined);
  check Alcotest.int "one-to-one, none expired" 0 (List.length split.Baseline.expired)

let test_baseline_v1_compat () =
  let root = tmp_root () in
  let file = Filename.concat root "legacy.ml" in
  write_file file body;
  (* a v1 baseline file: no version, no ctx — must load and match
     exactly by line *)
  let path = Filename.concat root "baseline.json" in
  write_file path
    (Fmt.str
       "{\"entries\":[{\"rule\":\"raw-atomic\",\"file\":%S,\"line\":3,\"note\":\"old\"}]}\n"
       (Policy.normalize file));
  match Baseline.load ~path with
  | Error m -> Alcotest.fail m
  | Ok base ->
      (match base with
      | [ e ] -> check Alcotest.bool "v1 entry has no ctx" true (e.Baseline.ctx = None)
      | _ -> Alcotest.fail "one entry expected");
      let split = Baseline.apply base [ finding ~rule:"raw-atomic" ~file ~line:3 ] in
      check Alcotest.int "exact line matches" 1 (List.length split.Baseline.baselined);
      let split = Baseline.apply base [ finding ~rule:"raw-atomic" ~file ~line:4 ] in
      check Alcotest.int "moved finding is fresh under v1" 1
        (List.length split.Baseline.fresh)

(* ---- reporters ---- *)

let report_fixture () =
  let fresh = finding ~rule:"obj-magic" ~file:"lib/a.ml" ~line:3 in
  let based = finding ~rule:"catch-all" ~file:"lib/b.ml" ~line:7 in
  let result =
    { Driver.files = 2; typed_files = 0; findings = [ fresh; based ];
      suppressed = []; notes = [] }
  in
  Report.make ~baseline:(Baseline.of_findings [ based ]) result

let test_report_exit_codes () =
  let r = report_fixture () in
  check Alcotest.int "fresh finding fails" 1 (Report.exit_code r);
  let clean =
    Report.make
      { Driver.files = 1; typed_files = 0; findings = []; suppressed = []; notes = [] }
  in
  check Alcotest.int "clean passes" 0 (Report.exit_code clean);
  let all_baselined =
    Report.make
      ~baseline:(Baseline.of_findings [ finding ~rule:"obj-magic" ~file:"lib/a.ml" ~line:3 ])
      { Driver.files = 1; typed_files = 0;
        findings = [ finding ~rule:"obj-magic" ~file:"lib/a.ml" ~line:3 ];
        suppressed = []; notes = [] }
  in
  check Alcotest.int "baselined does not fail" 0 (Report.exit_code all_baselined)

let test_report_text () =
  let text = Report.to_text (report_fixture ()) in
  check Alcotest.bool "grep-able location" true
    (contains ~sub:"lib/a.ml:3:0: error obj-magic" text);
  check Alcotest.bool "baselined tagged" true (contains ~sub:"[baselined]" text);
  check Alcotest.bool "summary line" true (contains ~sub:"2 files checked" text);
  let with_notes =
    Report.make
      { Driver.files = 3; typed_files = 2; findings = []; suppressed = [];
        notes = [ ("lib/x.ml", "cmt stale; typed rules skipped") ] }
  in
  let text = Report.to_text with_notes in
  check Alcotest.bool "typed count in summary" true (contains ~sub:"(2 typed)" text);
  check Alcotest.bool "note rendered" true
    (contains ~sub:"lib/x.ml:1: note: cmt stale" text)

let test_report_json () =
  let json = Report.to_json (report_fixture ()) in
  match Json.of_string (Json.to_string json) with
  | Error m -> Alcotest.fail m
  | Ok j ->
      check Alcotest.int "version" 1
        (Option.get (Option.bind (Json.member "version" j) Json.get_int));
      let findings = Option.get (Option.bind (Json.member "findings" j) Json.get_list) in
      check Alcotest.int "fresh + baselined listed" 2 (List.length findings);
      let f = List.hd findings in
      List.iter
        (fun key ->
          check Alcotest.bool (Fmt.str "finding has %s" key) true
            (Json.member key f <> None))
        [ "rule"; "layer"; "severity"; "file"; "line"; "col"; "message"; "baselined" ];
      check Alcotest.string "findings carry their layer" "ast"
        (Option.get (Option.bind (Json.member "layer" f) Json.get_str));
      check Alcotest.bool "typed object present" true (Json.member "typed" j <> None);
      let summary = Option.get (Json.member "summary" j) in
      check Alcotest.int "summary.fresh" 1
        (Option.get (Option.bind (Json.member "fresh" summary) Json.get_int));
      let by_rule = Option.get (Json.member "by_rule" summary) in
      check Alcotest.int "by_rule.obj-magic" 1
        (Option.get (Option.bind (Json.member "obj-magic" by_rule) Json.get_int))

(* ---- the lint on this repo's own invariants ---- *)

let test_rule_registry () =
  check Alcotest.int "eleven substantive rules" 11 (List.length Lint.Rule.substantive);
  List.iter
    (fun name ->
      check Alcotest.bool (Fmt.str "%s registered" name) true (Lint.Rule.find name <> None))
    [ "raw-atomic"; "nondeterminism"; "toplevel-mutable"; "io-in-lib"; "catch-all";
      "mli-required"; "obj-magic"; "effect-discipline"; "poly-compare-abstract";
      "alias-escape"; "domain-unsafe-capture" ];
  check Alcotest.bool "parse-error is meta" true (Lint.Rule.is_meta "parse-error");
  check Alcotest.bool "cmt-missing is meta" true (Lint.Rule.is_meta "cmt-missing");
  check Alcotest.bool "raw-atomic is not" false (Lint.Rule.is_meta "raw-atomic")

let test_rule_metadata () =
  (* the metadata behind --explain: every rule carries it *)
  List.iter
    (fun (r : Lint.Rule.t) ->
      check Alcotest.bool (Fmt.str "%s has a rationale" r.Lint.Rule.name) true
        (String.length r.Lint.Rule.rationale > 0);
      check Alcotest.bool (Fmt.str "%s has an example" r.Lint.Rule.name) true
        (String.length r.Lint.Rule.example > 0))
    Lint.Rule.all;
  check Alcotest.string "poly-compare is typed-layer" "typed"
    (Lint.Rule.layer_to_string (Lint.Rule.layer "poly-compare-abstract"));
  check Alcotest.string "mli-required is fs-layer" "fs"
    (Lint.Rule.layer_to_string (Lint.Rule.layer "mli-required"));
  check Alcotest.string "raw-atomic is ast-layer" "ast"
    (Lint.Rule.layer_to_string (Lint.Rule.layer "raw-atomic"))

(* ---- typed pass: the planted-evasion fixture corpus ----

   test/lint_fixtures is compiled as a library the test binary depends
   on, so dune guarantees fresh cmts under the test cwd
   (_build/default/test). Each test asserts BOTH halves of the claim:
   the parsetree pass misses the planted construct, the typed pass
   catches it. Fixture paths are remapped into lib/ because the typed
   rules' policy scoping keys on the reported file. *)

module Cmt_loader = Lint.Cmt_loader
module Typed_rules = Lint.Typed_rules

let fixture_src name = "lint_fixtures/" ^ name ^ ".ml"

let fixture_cmt name =
  match Cmt_loader.create ~build_dir:"." () with
  | None -> Alcotest.fail "no built tree next to the test binary"
  | Some l -> (
      match Cmt_loader.for_source l (fixture_src name) with
      | Cmt_loader.Typed cmt -> cmt
      | status ->
          Alcotest.fail
            (Option.value
               ~default:(Fmt.str "fixture cmt unusable for %s" name)
               (Cmt_loader.describe ~build_dir:"." status)))

let read_fixture name =
  In_channel.with_open_text (fixture_src name) In_channel.input_all

let typed_findings ~file name = Typed_rules.check ~file (fixture_cmt name)

let count_typed rule fs =
  List.length (List.filter (fun (f : Finding.t) -> f.Finding.rule = rule) fs)

(* the parsetree pass, run over the fixture's own source under a fake
   lib path, must report nothing for [rules] — that is what makes the
   fixture an *evasion* *)
let assert_parsetree_misses ~fake ~rules name =
  let o = lint ~file:fake (read_fixture name) in
  List.iter
    (fun r ->
      check Alcotest.int (Fmt.str "%s: parsetree misses %s" name r) 0 (count_rule r o))
    rules

let test_evasion_alias () =
  assert_parsetree_misses ~fake:"lib/consensus/evade_alias.ml"
    ~rules:[ "raw-atomic"; "alias-escape" ] "evade_alias";
  let fs = typed_findings ~file:"lib/consensus/evade_alias.ml" "evade_alias" in
  check Alcotest.int "typed catches the aliased Atomic.set" 1
    (count_typed "alias-escape" fs);
  let f = List.hd fs in
  check Alcotest.bool "message names the resolved identity" true
    (contains ~sub:"Atomic.set" f.Finding.message);
  check Alcotest.bool "message names the surface syntax" true
    (contains ~sub:"A.set" f.Finding.message)

let test_evasion_open () =
  assert_parsetree_misses ~fake:"lib/sim/evade_open.ml"
    ~rules:[ "nondeterminism"; "alias-escape" ] "evade_open";
  let fs = typed_findings ~file:"lib/sim/evade_open.ml" "evade_open" in
  check Alcotest.int "typed catches the bare Random.int" 1
    (count_typed "alias-escape" fs);
  (* the underlying rule's policy still applies: nondeterminism is not
     active outside the deterministic dirs, so neither is its escape *)
  let fs = typed_findings ~file:"lib/campaign/evade_open.ml" "evade_open" in
  check Alcotest.int "out of the underlying rule's scope" 0
    (count_typed "alias-escape" fs)

let test_evasion_eta () =
  assert_parsetree_misses ~fake:"lib/consensus/evade_eta.ml"
    ~rules:[ "raw-atomic"; "alias-escape" ] "evade_eta";
  let fs = typed_findings ~file:"lib/consensus/evade_eta.ml" "evade_eta" in
  check Alcotest.int "eta-reduced + partial application both caught" 2
    (count_typed "alias-escape" fs)

let test_poly_compare_fixture () =
  assert_parsetree_misses ~fake:"lib/hoare/poly_compare.ml"
    ~rules:[ "poly-compare-abstract" ] "poly_compare";
  let fs = typed_findings ~file:"lib/hoare/poly_compare.ml" "poly_compare" in
  (* direct =, aliased compare, = at Value.t list, List.mem,
     Hashtbl.hash, = at Op.t — and NOT the int-typed negative control *)
  check Alcotest.int "six instantiations at semantic types" 6
    (count_typed "poly-compare-abstract" fs);
  let hits =
    List.filter (fun (f : Finding.t) -> f.Finding.rule = "poly-compare-abstract") fs
  in
  check Alcotest.bool "message points at the semantic API" true
    (contains ~sub:"Value.equal" (List.hd hits).Finding.message);
  (* the grown semantic set: the Op.t instantiation is its own finding
     with its own suggested API *)
  check Alcotest.bool "Op.t caught with its own API" true
    (List.exists
       (fun (f : Finding.t) -> contains ~sub:"Op.equal" f.Finding.message)
       hits)

let test_domain_capture_fixture () =
  let fs = typed_findings ~file:"lib/campaign/domain_capture.ml" "domain_capture" in
  let hits = List.filter (fun (f : Finding.t) -> f.Finding.rule = "domain-unsafe-capture") fs in
  (* ref, mutable field, array cell — and NOT the closure-local ref *)
  check Alcotest.int "three captured mutations" 3 (List.length hits);
  List.iter
    (fun (f : Finding.t) ->
      check Alcotest.string "warning outside lib/sim" "warning"
        (Finding.severity_to_string f.Finding.severity))
    hits;
  let fs = typed_findings ~file:"lib/sim/domain_capture.ml" "domain_capture" in
  List.iter
    (fun (f : Finding.t) ->
      check Alcotest.string "error under lib/sim" "error"
        (Finding.severity_to_string f.Finding.severity))
    (List.filter (fun (f : Finding.t) -> f.Finding.rule = "domain-unsafe-capture") fs)

let test_named_closure_fixture () =
  let fs =
    typed_findings ~file:"lib/campaign/evade_named_closure.ml" "evade_named_closure"
  in
  let hits =
    List.filter (fun (f : Finding.t) -> f.Finding.rule = "domain-unsafe-capture") fs
  in
  (* the named ref mutation and the named field mutation — and NOT the
     named closure that only touches its own local ref *)
  check Alcotest.int "named closures followed to their bindings" 2 (List.length hits);
  check Alcotest.bool "message names the captured target" true
    (List.exists (fun (f : Finding.t) -> contains ~sub:"counter" f.Finding.message) hits)

let test_typed_findings_suppressible () =
  (* typed findings merge before suppression, so the existing
     [@@@ffault.lint.allow] machinery covers them unchanged *)
  let src = "[@@@ffault.lint.allow \"alias-escape\", \"audited escape\"]\nlet x = 1\n" in
  let typed = [ finding ~rule:"alias-escape" ~file:"lib/sim/a.ml" ~line:2 ] in
  let o = Driver.lint_impl_source ~policy:Policy.default ~typed ~file:"lib/sim/a.ml" src in
  check Alcotest.int "typed finding suppressed" 0 (count_rule "alias-escape" o);
  check Alcotest.int "suppression recorded" 1 (List.length o.Driver.suppressed)

(* ---- cmt loader: freshness and graceful degradation ---- *)

let copy_binary src dst =
  Ffault_campaign.Checkpoint.mkdir_p (Filename.dirname dst);
  let bytes = In_channel.with_open_bin src In_channel.input_all in
  Out_channel.with_open_bin dst (fun oc -> output_string oc bytes)

let fixture_cmt_path name =
  Fmt.str "lint_fixtures/.ffault_lint_fixtures.objs/byte/ffault_lint_fixtures__%s.cmt"
    (String.capitalize_ascii name)

(* a tmp repo layout whose lib/sim/evade_alias.ml matches the built
   fixture cmt byte-for-byte *)
let staleness_root () =
  let root = tmp_root () in
  let src = Filename.concat root "lib/sim/evade_alias.ml" in
  write_file src (read_fixture "evade_alias");
  write_file (Filename.concat root "lib/sim/evade_alias.mli") "";
  let bld = Filename.concat root "bld" in
  copy_binary
    (fixture_cmt_path "evade_alias")
    (Filename.concat bld "lib/sim/.fix.objs/byte/fix__Evade_alias.cmt");
  (root, src, bld)

let test_cmt_loader_fresh_then_stale () =
  let _, src, bld = staleness_root () in
  let l = Option.get (Cmt_loader.create ~build_dir:bld ()) in
  (match Cmt_loader.for_source l src with
  | Cmt_loader.Typed _ -> ()
  | s ->
      Alcotest.fail
        (Option.value ~default:"not fresh" (Cmt_loader.describe ~build_dir:bld s)));
  (* edit the source after the build: the digest no longer matches *)
  write_file src (read_fixture "evade_alias" ^ "\nlet edited_after_build = ()\n");
  match Cmt_loader.for_source l src with
  | Cmt_loader.Stale m ->
      check Alcotest.bool "says the source changed" true (contains ~sub:"source changed" m)
  | _ -> Alcotest.fail "expected Stale"

let test_cmt_stale_degrades_to_note () =
  let root, src, bld = staleness_root () in
  write_file src (read_fixture "evade_alias" ^ "\nlet edited_after_build = ()\n");
  (* auto: a per-file note, never a failure, and no typed findings from
     the stale tree *)
  let r = Driver.run ~policy:Policy.default ~typed:Driver.Typed_auto ~build_dir:bld [ root ] in
  check Alcotest.int "no typed findings from a stale cmt" 0
    (List.length
       (List.filter (fun (f : Finding.t) -> f.Finding.rule = "alias-escape") r.Driver.findings));
  check Alcotest.int "no cmt-missing under auto" 0
    (List.length
       (List.filter (fun (f : Finding.t) -> f.Finding.rule = "cmt-missing") r.Driver.findings));
  (match r.Driver.notes with
  | [ (file, msg) ] ->
      check Alcotest.bool "note names the file" true (contains ~sub:"evade_alias.ml" file);
      check Alcotest.bool "note says why" true (contains ~sub:"source changed" msg)
  | notes -> Alcotest.fail (Fmt.str "expected one note, got %d" (List.length notes)));
  (* on: the same degradation is a finding — CI fails loudly *)
  let r = Driver.run ~policy:Policy.default ~typed:Driver.Typed_on ~build_dir:bld [ root ] in
  check Alcotest.int "cmt-missing under on" 1
    (List.length
       (List.filter (fun (f : Finding.t) -> f.Finding.rule = "cmt-missing") r.Driver.findings))

let test_cmt_fresh_via_driver () =
  (* with an untouched source the driver runs the typed rules off the
     copied cmt and surfaces the planted escape *)
  let root, _, bld = staleness_root () in
  let r = Driver.run ~policy:Policy.default ~typed:Driver.Typed_auto ~build_dir:bld [ root ] in
  check Alcotest.int "typed pass covered the file" 1 r.Driver.typed_files;
  check Alcotest.int "planted escape surfaced" 1
    (List.length
       (List.filter (fun (f : Finding.t) -> f.Finding.rule = "alias-escape") r.Driver.findings))

(* ---- baseline prune ---- *)

let test_baseline_prune () =
  let root = tmp_root () in
  let file = Filename.concat root "keep.ml" in
  write_file file body;
  let live = finding ~rule:"raw-atomic" ~file ~line:3 in
  let dead =
    { Baseline.rule = "io-in-lib"; file = "lib/gone.ml"; line = 9; ctx = None; note = "" }
  in
  let base = Baseline.of_findings [ live ] @ [ dead ] in
  let kept, dropped = Baseline.prune base [ live ] in
  check Alcotest.int "one dropped" 1 (List.length dropped);
  check Alcotest.int "one kept" 1 (List.length kept);
  check Alcotest.string "kept the live entry" "raw-atomic" (List.hd kept).Baseline.rule;
  check Alcotest.string "dropped the dead entry" "io-in-lib" (List.hd dropped).Baseline.rule

let suites =
  [
    ( "lint.rules",
      [
        Alcotest.test_case "raw-atomic fires" `Quick test_raw_atomic_fires;
        Alcotest.test_case "raw-atomic spared" `Quick test_raw_atomic_spared;
        Alcotest.test_case "nondeterminism fires" `Quick test_nondeterminism_fires;
        Alcotest.test_case "nondeterminism spared" `Quick test_nondeterminism_spared;
        Alcotest.test_case "toplevel-mutable fires" `Quick test_toplevel_mutable_fires;
        Alcotest.test_case "toplevel-mutable spared" `Quick test_toplevel_mutable_spared;
        Alcotest.test_case "io-in-lib fires" `Quick test_io_in_lib_fires;
        Alcotest.test_case "io-in-lib spared" `Quick test_io_in_lib_spared;
        Alcotest.test_case "io-in-lib sockets" `Quick test_io_in_lib_sockets;
        Alcotest.test_case "catch-all fires" `Quick test_catch_all_fires;
        Alcotest.test_case "catch-all spared" `Quick test_catch_all_spared;
        Alcotest.test_case "effect-discipline fires" `Quick test_effect_discipline_fires;
        Alcotest.test_case "effect-discipline spared" `Quick test_effect_discipline_spared;
        Alcotest.test_case "obj-magic fires" `Quick test_obj_magic_fires;
        Alcotest.test_case "obj-magic spared" `Quick test_obj_magic_spared;
        Alcotest.test_case "mli-required" `Quick test_mli_required;
        Alcotest.test_case "parse-error" `Quick test_parse_error;
        Alcotest.test_case "registry" `Quick test_rule_registry;
        Alcotest.test_case "rule metadata" `Quick test_rule_metadata;
      ] );
    ( "lint.typed",
      [
        Alcotest.test_case "evasion: alias" `Quick test_evasion_alias;
        Alcotest.test_case "evasion: open" `Quick test_evasion_open;
        Alcotest.test_case "evasion: eta/partial" `Quick test_evasion_eta;
        Alcotest.test_case "poly-compare fixture" `Quick test_poly_compare_fixture;
        Alcotest.test_case "domain-capture fixture" `Quick test_domain_capture_fixture;
        Alcotest.test_case "named-closure fixture" `Quick test_named_closure_fixture;
        Alcotest.test_case "typed findings suppressible" `Quick
          test_typed_findings_suppressible;
        Alcotest.test_case "loader fresh then stale" `Quick test_cmt_loader_fresh_then_stale;
        Alcotest.test_case "stale degrades to note" `Quick test_cmt_stale_degrades_to_note;
        Alcotest.test_case "fresh cmt via driver" `Quick test_cmt_fresh_via_driver;
      ] );
    ( "lint.suppress",
      [
        Alcotest.test_case "file-level" `Quick test_suppress_file_level;
        Alcotest.test_case "binding-scoped" `Quick test_suppress_binding_scoped;
        Alcotest.test_case "missing justification" `Quick test_suppress_missing_justification;
        Alcotest.test_case "unknown rule" `Quick test_suppress_unknown_rule;
        Alcotest.test_case "meta rule rejected" `Quick test_suppress_meta_rule_rejected;
        Alcotest.test_case "blank justification" `Quick test_suppress_blank_justification;
      ] );
    ( "lint.policy",
      [
        Alcotest.test_case "normalize" `Quick test_policy_normalize;
        Alcotest.test_case "scoping" `Quick test_policy_scoping;
      ] );
    ( "lint.driver",
      [
        Alcotest.test_case "rules filter" `Quick test_rules_filter;
        Alcotest.test_case "skips _build" `Quick test_collect_skips_build_dirs;
      ] );
    ( "lint.baseline",
      [
        Alcotest.test_case "roundtrip" `Quick test_baseline_roundtrip;
        Alcotest.test_case "add/expire" `Quick test_baseline_add_expire;
        Alcotest.test_case "missing file" `Quick test_baseline_missing_file;
        Alcotest.test_case "fuzzy: shift survives" `Quick test_baseline_fuzzy_survives_shift;
        Alcotest.test_case "fuzzy: edit resurfaces" `Quick
          test_baseline_fuzzy_edit_resurfaces;
        Alcotest.test_case "fuzzy: line tiebreak" `Quick test_baseline_fuzzy_line_tiebreak;
        Alcotest.test_case "v1 compat" `Quick test_baseline_v1_compat;
        Alcotest.test_case "prune" `Quick test_baseline_prune;
      ] );
    ( "lint.report",
      [
        Alcotest.test_case "exit codes" `Quick test_report_exit_codes;
        Alcotest.test_case "text shape" `Quick test_report_text;
        Alcotest.test_case "json shape" `Quick test_report_json;
      ] );
  ]
