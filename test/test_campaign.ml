(* Tests for the campaign orchestrator: JSON codec, spec parsing, grid
   determinism, recorded trials (replay + shrink), journal durability,
   the domain pool, resume, and report aggregation/diffing. *)

module Campaign = Ffault_campaign
module Json = Campaign.Json
module Spec = Campaign.Spec
module Grid = Campaign.Grid
module Shrink_on_fail = Campaign.Shrink_on_fail
module Journal = Campaign.Journal
module Checkpoint = Campaign.Checkpoint
module Pool = Campaign.Pool
module Report = Campaign.Report
module Check = Ffault_verify.Consensus_check
module Fault_kind = Ffault_fault.Fault_kind

let check = Alcotest.check

(* A cell that genuinely violates consensus often: the unprotected
   single-CAS protocol at n = 3 under a high overriding rate (E12's
   curve 1 measures ~0.87 at p = 0.9). *)
let failing_spec ?(trials = 40) ?(name = "failing") () =
  Spec.v ~name ~protocol:"herlihy" ~f:[ 1 ] ~n:[ 3 ] ~rates:[ 0.9 ] ~trials ~seed:0xBADL ()

(* A healthy grid: fig3 inside its envelope never fails. *)
let healthy_spec ?(trials = 10) ?(name = "healthy") () =
  Spec.v ~name ~protocol:"fig3" ~f:[ 1; 2 ] ~t:[ Some 1 ] ~n:[ 3 ] ~rates:[ 0.3; 0.6 ]
    ~trials ~seed:0x600DL ()

let tmp_root =
  let n = ref 0 in
  fun () ->
    incr n;
    let dir =
      Filename.concat
        (Filename.get_temp_dir_name ())
        (Fmt.str "ffault-campaign-test-%d-%d" (Unix.getpid ()) !n)
    in
    Checkpoint.mkdir_p dir;
    dir

(* ---- Json ---- *)

let test_json_roundtrip () =
  let values =
    [
      Json.Null;
      Json.Bool true;
      Json.Int (-42);
      Json.Float 0.25;
      Json.Str "with \"quotes\", \\ and \n newline";
      Json.List [ Json.Int 1; Json.Null; Json.Str "x" ];
      Json.Obj [ ("a", Json.Int 1); ("b", Json.List []); ("c", Json.Obj []) ];
    ]
  in
  List.iter
    (fun v ->
      match Json.of_string (Json.to_string v) with
      | Ok v' -> check Alcotest.bool (Json.to_string v) true (v = v')
      | Error m -> Alcotest.fail m)
    values

let test_json_single_line () =
  let v = Json.Obj [ ("s", Json.Str "two\nlines"); ("l", Json.List [ Json.Str "\t" ]) ] in
  check Alcotest.bool "JSONL-safe" false (String.contains (Json.to_string v) '\n')

let test_json_errors () =
  List.iter
    (fun s ->
      match Json.of_string s with
      | Ok _ -> Alcotest.fail (Fmt.str "accepted %S" s)
      | Error _ -> ())
    [ ""; "{"; "[1,]"; "{\"a\":}"; "tru"; "1 2"; "\"unterminated"; "{\"a\" 1}" ]

let test_json_accessors () =
  let v = Json.Obj [ ("n", Json.Int 3); ("r", Json.Float 0.5) ] in
  check (Alcotest.option Alcotest.int) "member int" (Some 3)
    (Option.bind (Json.member "n" v) Json.get_int);
  (* ints coerce to float where a float is expected (rates parse as 0 or 1) *)
  check (Alcotest.option (Alcotest.float 1e-9)) "int as float" (Some 3.0)
    (Option.bind (Json.member "n" v) Json.get_float);
  check (Alcotest.option Alcotest.int) "missing member" None
    (Option.bind (Json.member "zzz" v) Json.get_int)

(* ---- Spec ---- *)

let test_spec_axis_parsers () =
  check
    (Alcotest.result (Alcotest.list Alcotest.int) Alcotest.string)
    "ints + ranges" (Ok [ 1; 4; 5; 6; 9 ])
    (Spec.ints_of_string "1, 4..6, 9");
  check Alcotest.bool "bad range rejected" true
    (Result.is_error (Spec.ints_of_string "5..2"));
  check
    (Alcotest.result (Alcotest.list (Alcotest.option Alcotest.int)) Alcotest.string)
    "t values" (Ok [ Some 1; None; Some 3 ])
    (Spec.t_values_of_string "1, unbounded, 3");
  check Alcotest.bool "kinds parse" true
    (Spec.kinds_of_string "overriding, silent" = Ok [ Fault_kind.Overriding; Fault_kind.Silent ]);
  check Alcotest.bool "unknown kind rejected" true
    (Result.is_error (Spec.kinds_of_string "gremlin"))

let test_spec_text_format () =
  let text =
    "# an f x t sweep\n\
     name = sweep-test\n\
     protocol = fig3\n\
     f = 1..2   # inline comment\n\
     t = 1, unbounded\n\
     n = 3\n\
     kinds = overriding\n\
     rates = 0.25, 0.75\n\
     trials = 7\n\
     seed = 99\n"
  in
  match Spec.parse text with
  | Error m -> Alcotest.fail m
  | Ok s ->
      check Alcotest.string "name" "sweep-test" s.Spec.name;
      check (Alcotest.list Alcotest.int) "f" [ 1; 2 ] s.Spec.f_values;
      check
        (Alcotest.list (Alcotest.option Alcotest.int))
        "t" [ Some 1; None ] s.Spec.t_values;
      check Alcotest.int "trials" 7 s.Spec.trials;
      check Alcotest.int64 "seed" 99L s.Spec.seed

let test_spec_text_errors () =
  List.iter
    (fun text ->
      match Spec.parse text with
      | Ok _ -> Alcotest.fail (Fmt.str "accepted %S" text)
      | Error _ -> ())
    [
      "f = 1\n" (* missing protocol *);
      "protocol = fig3\nbogus_key = 1\n";
      "protocol = fig3\nno equals sign here\n";
      "protocol = marsian\n";
      "protocol = fig3\nrates = 1.5\n";
      "protocol = fig3\ntrials = 0\n";
    ]

let test_spec_json_roundtrip () =
  let spec = healthy_spec () in
  match Spec.of_json (Spec.to_json spec) with
  | Error m -> Alcotest.fail m
  | Ok spec' -> check Alcotest.bool "round-trips" true (Spec.equal spec spec')

(* ---- Grid ---- *)

let test_grid_shape () =
  let spec = healthy_spec () in
  check Alcotest.int "cells" 4 (Grid.n_cells spec);
  check Alcotest.int "trials" 40 (Grid.total_trials spec);
  let t0 = Grid.trial spec 0 and t39 = Grid.trial spec 39 in
  check Alcotest.int "first cell" 0 t0.Grid.cell_id;
  check Alcotest.int "last cell" 3 t39.Grid.cell_id;
  check Alcotest.int "index within cell" 9 t39.Grid.index;
  Alcotest.check_raises "id out of range" (Invalid_argument "Grid.trial: id out of range")
    (fun () -> ignore (Grid.trial spec 40))

let test_grid_seed_determinism () =
  let spec = healthy_spec () in
  let seeds = List.init 40 (fun id -> (Grid.trial spec id).Grid.seed) in
  let seeds' = List.init 40 (fun id -> (Grid.trial spec id).Grid.seed) in
  check (Alcotest.list Alcotest.int64) "stable" seeds seeds';
  let distinct = List.sort_uniq Int64.compare seeds in
  check Alcotest.int "no seed collisions" 40 (List.length distinct)

let test_grid_envelope_kind_aware () =
  (* Thm 6 is stated for overriding faults: the same (f, t, n) cell is in
     envelope with the overriding kind and out with any other — a
     nonresponsive cell's failures are expected data, never theorem
     violations. silent-retry's theorem covers the silent kind instead. *)
  let fig3 = Result.get_ok (Spec.resolve_protocol "fig3") in
  let cell kind =
    {
      Grid.f = 2;
      t = Some 1;
      n = 3;
      kind;
      rate = 0.3;
      crashes = 0;
      crash_rate = 0.0;
      persistence = Ffault_recover.Persistence.Persist_all;
    }
  in
  check Alcotest.bool "overriding in" true (Grid.in_envelope (cell Fault_kind.Overriding) fig3);
  check Alcotest.bool "nonresponsive out" false
    (Grid.in_envelope (cell Fault_kind.Nonresponsive) fig3);
  check Alcotest.bool "silent out" false (Grid.in_envelope (cell Fault_kind.Silent) fig3);
  let retry = Result.get_ok (Spec.resolve_protocol "silent-retry") in
  check Alcotest.bool "silent-retry: silent in" true
    (Grid.in_envelope (cell Fault_kind.Silent) retry);
  check Alcotest.bool "silent-retry: overriding out" false
    (Grid.in_envelope (cell Fault_kind.Overriding) retry)

(* ---- recorded trials: determinism, replay, shrink ---- *)

let failing_setup () =
  let spec = failing_spec () in
  Grid.setup (Grid.cell_of_id spec 0) (Result.get_ok (Spec.resolve_protocol spec.Spec.protocol))

let test_trial_deterministic () =
  let setup = failing_setup () in
  let r1, d1 = Shrink_on_fail.run_recorded setup ~rate:0.9 ~seed:7L in
  let r2, d2 = Shrink_on_fail.run_recorded setup ~rate:0.9 ~seed:7L in
  check (Alcotest.array Alcotest.int) "same decisions" d1 d2;
  check Alcotest.bool "same verdict" (Check.ok r1) (Check.ok r2)

let test_trial_replays () =
  let setup = failing_setup () in
  let report, decisions = Shrink_on_fail.run_recorded setup ~rate:0.9 ~seed:7L in
  let replayed = Shrink_on_fail.replay setup decisions in
  check Alcotest.bool "replay reproduces the verdict" (Check.ok report) (Check.ok replayed)

let test_shrink_produces_replayable_witness () =
  let setup = failing_setup () in
  (* Scan seeds for a violating trial; p ~ 0.9 so the first few hit. *)
  let rec first_failure seed =
    if Int64.compare seed 50L > 0 then Alcotest.fail "no violation in 50 seeds"
    else
      let r = Shrink_on_fail.run_trial setup ~rate:0.9 ~seed in
      if Check.ok r.Shrink_on_fail.report then first_failure (Int64.add seed 1L) else r
  in
  let r = first_failure 1L in
  match r.Shrink_on_fail.witness with
  | None -> Alcotest.fail "failed trial carries no witness"
  | Some w ->
      check Alcotest.bool "witness no longer than the recording" true
        (Array.length w <= Array.length r.Shrink_on_fail.decisions);
      check Alcotest.bool "witness still violates" false
        (Check.ok (Shrink_on_fail.replay setup w))

(* ---- Journal ---- *)

let sample_record ?(trial = 17) ?(ok = false) ?witness () =
  {
    Journal.trial;
    cell =
      {
        Grid.f = 2;
        t = Some 1;
        n = 3;
        kind = Fault_kind.Overriding;
        rate = 0.4;
        crashes = 0;
        crash_rate = 0.0;
        persistence = Ffault_recover.Persistence.Persist_all;
      };
    seed = -5530000000000000001L;
    ok;
    outcome = (if ok then Journal.Pass else Journal.Violation);
    retries = 0;
    violations = (if ok then [] else [ "consistency: procs decided {1, 2}" ]);
    steps = 41;
    max_steps = 17;
    stage = 3;
    faults = 2;
    crash_faults = 0;
    wall_us = 180;
    witness;
  }

let test_journal_record_roundtrip () =
  List.iter
    (fun r ->
      match Journal.of_line (Journal.to_line r) with
      | Error m -> Alcotest.fail m
      | Ok r' -> check Alcotest.bool "round-trips" true (r = r'))
    [
      sample_record ();
      sample_record ~ok:true ();
      sample_record ~witness:[| 1; 0; 2 |] ();
      { (sample_record ()) with cell = { (sample_record ()).Journal.cell with Grid.t = None } };
      { (sample_record ()) with Journal.outcome = Journal.Timeout; retries = 2; violations = [] };
      { (sample_record ()) with Journal.outcome = Journal.Quarantined; violations = [] };
    ]

let test_journal_write_read () =
  let root = tmp_root () in
  let path = Filename.concat root "j.jsonl" in
  let w = Journal.create_writer ~path in
  let records = List.init 5 (fun i -> sample_record ~trial:i ~ok:(i mod 2 = 0) ()) in
  List.iter (Journal.append w) records;
  Journal.close_writer w;
  check Alcotest.int "count" 5 (Journal.count ~path);
  check Alcotest.bool "load order" true (Journal.load ~path = records)

let test_journal_tolerates_torn_line () =
  let root = tmp_root () in
  let path = Filename.concat root "j.jsonl" in
  let w = Journal.create_writer ~path in
  List.iter (fun i -> Journal.append w (sample_record ~trial:i ())) [ 0; 1; 2 ];
  Journal.close_writer w;
  (* Simulate the kill mid-write: append half a record. *)
  let oc = open_out_gen [ Open_append ] 0o644 path in
  output_string oc "{\"trial\":3,\"f\":2,\"t\"";
  close_out oc;
  check Alcotest.int "torn line skipped" 3 (Journal.count ~path);
  check Alcotest.int "missing file is empty" 0
    (Journal.count ~path:(Filename.concat root "absent.jsonl"))

(* ---- Pool ---- *)

let outcome_fields (r : Journal.record) =
  (r.Journal.trial, r.Journal.ok, r.Journal.steps, r.Journal.max_steps, r.Journal.faults)

let run_collect ?skip ~domains spec =
  let records = ref [] in
  let summary =
    Pool.run_trials ?skip ~domains ~max_shrinks_per_cell:0
      ~on_record:(fun r -> records := r :: !records)
      spec
  in
  let sorted =
    List.sort (fun a b -> compare a.Journal.trial b.Journal.trial) !records
  in
  (summary, sorted)

let test_pool_domain_count_invariance () =
  let spec = failing_spec ~trials:30 () in
  let s1, r1 = run_collect ~domains:1 spec in
  let s4, r4 = run_collect ~domains:4 spec in
  check Alcotest.int "all executed (1 dom)" 30 s1.Pool.executed;
  check Alcotest.int "all executed (4 dom)" 30 s4.Pool.executed;
  check Alcotest.bool "some failures in this cell" true (s1.Pool.failures > 0);
  check Alcotest.int "same failure count" s1.Pool.failures s4.Pool.failures;
  check Alcotest.bool "identical outcome fields" true
    (List.map outcome_fields r1 = List.map outcome_fields r4)

let test_pool_skip_predicate () =
  let spec = healthy_spec () in
  let summary, records = run_collect ~skip:(fun id -> id mod 2 = 0) ~domains:2 spec in
  check Alcotest.int "half skipped" 20 summary.Pool.skipped;
  check Alcotest.int "half executed" 20 summary.Pool.executed;
  check Alcotest.bool "only odd ids ran" true
    (List.for_all (fun r -> r.Journal.trial mod 2 = 1) records)

(* ---- run_dir + resume (the acceptance scenario) ---- *)

let test_run_dir_resume_after_kill () =
  let root = tmp_root () in
  let spec = healthy_spec ~trials:30 ~name:"resumable" () in
  let total = Grid.total_trials spec in
  (match Pool.run_dir ~domains:2 ~root spec with
  | Error m -> Alcotest.fail m
  | Ok s -> check Alcotest.int "fresh run executes all" total s.Pool.executed);
  let dir = Checkpoint.campaign_dir ~root spec in
  let path = Checkpoint.journal_path ~dir in
  check Alcotest.int "journal complete" total (Journal.count ~path);
  (* Kill: keep only the first 45 journal lines. *)
  let keep =
    In_channel.with_open_text path In_channel.input_lines
    |> List.filteri (fun i _ -> i < 45)
  in
  Out_channel.with_open_text path (fun oc ->
      List.iter (fun l -> Out_channel.output_string oc (l ^ "\n")) keep);
  (* Resume must execute exactly the missing trials, no re-execution. *)
  (match Pool.run_dir ~domains:2 ~resume:true ~root spec with
  | Error m -> Alcotest.fail m
  | Ok s ->
      check Alcotest.int "journaled trials skipped" 45 s.Pool.skipped;
      check Alcotest.int "only the rest executed" (total - 45) s.Pool.executed);
  let records = Journal.load ~path in
  check Alcotest.int "journal complete again" total (List.length records);
  let ids = List.sort_uniq compare (List.map (fun r -> r.Journal.trial) records) in
  check Alcotest.int "every trial exactly once" total (List.length ids);
  (* A fully-journaled campaign resumes to a no-op. *)
  match Pool.run_dir ~domains:2 ~resume:true ~root spec with
  | Error m -> Alcotest.fail m
  | Ok s -> check Alcotest.int "nothing left to run" 0 s.Pool.executed

(* ---- supervised execution: deadline, retry, quarantine ---- *)

(* A nanosecond deadline trips before the engine's first poll, so every
   attempt of every trial times out — which drives the whole supervised
   path deterministically: retry, give-up, strike, quarantine. *)
let test_pool_supervised_deadline_quarantine () =
  let spec = healthy_spec ~trials:20 ~name:"supervised" () in
  let n_cells = Grid.n_cells spec in
  let supervision = Pool.supervision ~deadline_s:1e-9 ~max_retries:1 ~quarantine_after:2 () in
  let records = ref [] in
  let summary =
    Pool.run_trials ~domains:1 ~supervision
      ~on_record:(fun r -> records := r :: !records)
      spec
  in
  (* per cell (sequential on 1 domain): 2 give-ups of 1 retry each, then
     the remaining 18 trials quarantined *)
  check Alcotest.int "every trial accounted" (Grid.total_trials spec) summary.Pool.executed;
  check Alcotest.int "no protocol verdicts" 0 summary.Pool.failures;
  check Alcotest.int "2 timeouts per cell" (2 * n_cells) summary.Pool.timeouts;
  check Alcotest.int "1 retry per timeout" (2 * n_cells) summary.Pool.retried;
  check Alcotest.int "the rest quarantined" (18 * n_cells) summary.Pool.quarantined;
  List.iter
    (fun (r : Journal.record) ->
      match r.Journal.outcome with
      | Journal.Timeout ->
          check Alcotest.bool "timeout is not ok" false r.Journal.ok;
          check Alcotest.int "retries journaled" 1 r.Journal.retries;
          check Alcotest.bool "no witness from a truncated run" true (r.Journal.witness = None)
      | Journal.Quarantined ->
          check Alcotest.bool "quarantined never ran" true
            (r.Journal.steps = 0 && r.Journal.witness = None)
      | Journal.Pass | Journal.Violation ->
          Alcotest.fail "no trial can finish under a 1ns deadline")
    !records;
  (* the report separates harness health from protocol failures *)
  let report = Report.of_records spec !records in
  check Alcotest.int "report: no failures" 0 report.Report.total_failures;
  check Alcotest.int "report: timeouts" (2 * n_cells) report.Report.health.Report.timeouts;
  check Alcotest.int "report: quarantined" (18 * n_cells)
    report.Report.health.Report.quarantined;
  check Alcotest.int "report: every cell degraded" n_cells
    (List.length report.Report.health.Report.degraded_cells)

let test_pool_unsupervised_summary_unchanged () =
  (* default_supervision has no deadline: the supervised fields stay 0
     and results are the plain deterministic path *)
  let spec = healthy_spec ~trials:5 () in
  let summary, _ = run_collect ~domains:2 spec in
  check Alcotest.int "no timeouts" 0 summary.Pool.timeouts;
  check Alcotest.int "no retries" 0 summary.Pool.retried;
  check Alcotest.int "no quarantine" 0 summary.Pool.quarantined

let test_run_dir_supervised_resume_noop () =
  let root = tmp_root () in
  let spec = healthy_spec ~trials:10 ~name:"supervised-dir" () in
  let supervision = Pool.supervision ~deadline_s:1e-9 ~max_retries:0 ~quarantine_after:1 () in
  (match Pool.run_dir ~domains:2 ~supervision ~root spec with
  | Error m -> Alcotest.fail m
  | Ok s ->
      check Alcotest.int "all trials journaled" (Grid.total_trials spec) s.Pool.executed;
      check Alcotest.bool "campaign degraded" true (s.Pool.quarantined > 0));
  (* resume (unsupervised): quarantined records count as done — they must
     not be resurrected *)
  match Pool.run_dir ~domains:2 ~resume:true ~root spec with
  | Error m -> Alcotest.fail m
  | Ok s -> check Alcotest.int "nothing resurrected" 0 s.Pool.executed

let test_supervision_validation () =
  (match Pool.supervision ~deadline_s:0.0 () with
  | _ -> Alcotest.fail "zero deadline must be rejected"
  | exception Invalid_argument _ -> ());
  (match Pool.supervision ~quarantine_after:0 () with
  | _ -> Alcotest.fail "quarantine_after 0 must be rejected"
  | exception Invalid_argument _ -> ());
  match Pool.supervision ~max_retries:(-1) () with
  | _ -> Alcotest.fail "negative retries must be rejected"
  | exception Invalid_argument _ -> ()

(* ---- adaptive deadlines ---- *)

let test_adaptive_deadline_math () =
  let cap = 2.0 in
  check (Alcotest.float 1e-9) "8 x p99" 0.8 (Pool.adaptive_deadline_s ~p99_s:0.1 ~cap_s:cap);
  check (Alcotest.float 1e-9) "capped at the global deadline" cap
    (Pool.adaptive_deadline_s ~p99_s:10.0 ~cap_s:cap);
  check (Alcotest.float 1e-9) "floored at 1ms" 0.001
    (Pool.adaptive_deadline_s ~p99_s:1e-9 ~cap_s:cap);
  check (Alcotest.float 1e-9) "nan p99 falls back to the cap" cap
    (Pool.adaptive_deadline_s ~p99_s:Float.nan ~cap_s:cap);
  check (Alcotest.float 1e-9) "negative p99 falls back to the cap" cap
    (Pool.adaptive_deadline_s ~p99_s:(-1.0) ~cap_s:cap);
  check Alcotest.bool "min samples is sane" true (Pool.adaptive_min_samples >= 1)

let test_adaptive_requires_deadline () =
  (match Pool.supervision ~adaptive_deadline:true () with
  | _ -> Alcotest.fail "adaptive without a deadline must be rejected"
  | exception Invalid_argument _ -> ());
  let s = Pool.supervision ~deadline_s:1.0 ~adaptive_deadline:true () in
  check Alcotest.bool "adaptive set" true s.Pool.adaptive_deadline

(* A healthy grid with enough trials per cell to trip the adaptation
   threshold: trial outcomes must match the unsupervised run exactly
   (the adapted deadline tightens, but healthy trials are orders of
   magnitude under it). *)
let test_adaptive_run_matches_unsupervised () =
  let spec = healthy_spec ~trials:40 ~name:"healthy-adaptive" () in
  let collect supervision =
    let records = ref [] in
    let s =
      Pool.run_trials ~domains:2 ?supervision
        ~on_record:(fun r -> records := r :: !records)
        spec
    in
    let sorted =
      List.sort (fun a b -> compare a.Journal.trial b.Journal.trial) !records
    in
    (s, sorted)
  in
  let s_plain, r_plain = collect None in
  let s_adapt, r_adapt =
    collect (Some (Pool.supervision ~deadline_s:10.0 ~adaptive_deadline:true ()))
  in
  check Alcotest.int "same executed" s_plain.Pool.executed s_adapt.Pool.executed;
  check Alcotest.int "no timeouts" 0 s_adapt.Pool.timeouts;
  check Alcotest.int "no quarantine" 0 s_adapt.Pool.quarantined;
  List.iter2
    (fun a b ->
      check Alcotest.bool
        (Fmt.str "trial %d outcome invariant" a.Journal.trial)
        true
        (a.Journal.outcome = b.Journal.outcome && a.Journal.steps = b.Journal.steps))
    r_plain r_adapt

(* ---- crash mid-append: torn-tail recovery ---- *)

let test_journal_recover_unit () =
  let root = tmp_root () in
  let path = Filename.concat root "journal.jsonl" in
  let w = Journal.create_writer ~path in
  List.iter (fun i -> Journal.append w (sample_record ~trial:i ())) [ 0; 1; 2 ];
  Journal.close_writer w;
  (* Clean file: recovery is a no-op. *)
  let r = Journal.recover ~path in
  check Alcotest.int "clean: nothing dropped" 0 r.Journal.dropped_bytes;
  check Alcotest.bool "clean: no warning" true (r.Journal.warning = None);
  check Alcotest.int "clean: records intact" 3 (Journal.count ~path);
  (* Torn tail: dropped, with a warning, and idempotent. *)
  let oc = open_out_gen [ Open_append ] 0o644 path in
  output_string oc "{\"trial\":3,\"f\":2,\"t\"";
  close_out oc;
  let r = Journal.recover ~path in
  check Alcotest.bool "torn: bytes dropped" true (r.Journal.dropped_bytes > 0);
  check Alcotest.bool "torn: warned" true (r.Journal.warning <> None);
  check Alcotest.int "torn: complete records kept" 3 (Journal.count ~path);
  let r2 = Journal.recover ~path in
  check Alcotest.int "idempotent" 0 r2.Journal.dropped_bytes;
  (* A parseable tail that only lost its newline is completed, not dropped. *)
  let complete_line = Journal.to_line (sample_record ~trial:3 ()) in
  let oc = open_out_gen [ Open_append ] 0o644 path in
  output_string oc complete_line;
  close_out oc;
  let r = Journal.recover ~path in
  check Alcotest.int "repair: nothing dropped" 0 r.Journal.dropped_bytes;
  check Alcotest.bool "repair: warned" true (r.Journal.warning <> None);
  check Alcotest.int "repair: record kept" 4 (Journal.count ~path);
  (* Missing and empty files are no-ops. *)
  let r = Journal.recover ~path:(Filename.concat root "absent.jsonl") in
  check Alcotest.bool "missing file: no-op" true (r.Journal.warning = None)

let test_journal_interior_torn_and_health () =
  let root = tmp_root () in
  let path = Filename.concat root "journal.jsonl" in
  let w = Journal.create_writer ~path in
  Journal.append w (sample_record ~trial:0 ());
  Journal.close_writer w;
  (* Interior damage: a garbage line *between* valid records — something
     sequential flushed appends cannot produce. *)
  let oc = open_out_gen [ Open_append ] 0o644 path in
  output_string oc "{corrupted beyond parsing}\n";
  output_string oc (Journal.to_line (sample_record ~trial:1 ()) ^ "\n");
  close_out oc;
  let r = Journal.recover ~path in
  check Alcotest.int "interior damage is not a torn tail" 0 r.Journal.dropped_bytes;
  check Alcotest.int "interior torn counted" 1 r.Journal.interior_torn;
  check Alcotest.bool "warned" true (r.Journal.warning <> None);
  check Alcotest.int "valid records still readable" 2 (Journal.count ~path);
  let h = Journal.health ~path in
  check Alcotest.int "health: lines" 3 h.Journal.h_lines;
  check Alcotest.int "health: parsed" 2 h.Journal.h_parsed;
  check Alcotest.int "health: malformed" 1 h.Journal.h_malformed;
  (* missing file is healthy *)
  let h = Journal.health ~path:(Filename.concat root "absent.jsonl") in
  check Alcotest.int "missing: zeros" 0 (h.Journal.h_lines + h.Journal.h_parsed + h.Journal.h_malformed)

let test_journal_legacy_line_compat () =
  (* A pre-supervision journal line has no outcome/retries: readers must
     infer them from ok, so old campaigns keep resuming and reporting. *)
  let legacy =
    "{\"trial\":7,\"f\":2,\"t\":1,\"n\":3,\"kind\":\"overriding\",\"rate\":0.4,\
     \"seed\":\"-5530000000000000001\",\"ok\":true,\"violations\":[],\"steps\":41,\
     \"max_steps\":17,\"stage\":3,\"faults\":2,\"wall_us\":180}"
  in
  (match Journal.of_line legacy with
  | Error m -> Alcotest.fail m
  | Ok r ->
      check Alcotest.bool "ok=true infers Pass" true (r.Journal.outcome = Journal.Pass);
      check Alcotest.int "retries default 0" 0 r.Journal.retries);
  let legacy_fail =
    "{\"trial\":8,\"f\":2,\"t\":1,\"n\":3,\"kind\":\"overriding\",\"rate\":0.4,\
     \"seed\":\"1\",\"ok\":false,\"violations\":[\"v\"],\"steps\":4,\"max_steps\":2,\
     \"stage\":0,\"faults\":1,\"wall_us\":9}"
  in
  match Journal.of_line legacy_fail with
  | Error m -> Alcotest.fail m
  | Ok r ->
      check Alcotest.bool "ok=false infers Violation" true
        (r.Journal.outcome = Journal.Violation)

let test_resume_after_torn_tail () =
  let root = tmp_root () in
  let spec = healthy_spec ~trials:30 ~name:"torn-tail" () in
  let total = Grid.total_trials spec in
  (match Pool.run_dir ~domains:2 ~root spec with
  | Error m -> Alcotest.fail m
  | Ok _ -> ());
  let dir = Checkpoint.campaign_dir ~root spec in
  let path = Checkpoint.journal_path ~dir in
  (* Crash mid-append: cut the file in the middle of the last record. *)
  let text = In_channel.with_open_bin path In_channel.input_all in
  let cut = String.length text - 20 in
  Out_channel.with_open_bin path (fun oc ->
      Out_channel.output_string oc (String.sub text 0 cut));
  (* Resume treats it as clean truncation: warn, drop the partial
     record, re-run that trial — not fail the whole resume. *)
  let warnings = ref [] in
  (match
     Pool.run_dir ~domains:2 ~resume:true ~root
       ~on_warn:(fun m -> warnings := m :: !warnings)
       spec
   with
  | Error m -> Alcotest.fail m
  | Ok s ->
      check Alcotest.int "exactly the torn trial re-ran" 1 s.Pool.executed;
      check Alcotest.int "the rest skipped" (total - 1) s.Pool.skipped);
  check Alcotest.int "one warning" 1 (List.length !warnings);
  let records = Journal.load ~path in
  check Alcotest.int "journal complete" total (List.length records);
  let ids = List.sort_uniq compare (List.map (fun r -> r.Journal.trial) records) in
  check Alcotest.int "every trial exactly once" total (List.length ids);
  (* The repaired journal aggregates cleanly. *)
  match Report.of_dir ~dir with
  | Error m -> Alcotest.fail m
  | Ok report ->
      check Alcotest.int "report sees every trial" total
        (List.fold_left (fun acc c -> acc + c.Report.trials) 0 report.Report.cells)

let test_run_dir_refuses_clobber_and_mismatch () =
  let root = tmp_root () in
  let spec = healthy_spec ~name:"guarded" () in
  (match Pool.run_dir ~root spec with
  | Error m -> Alcotest.fail m
  | Ok _ -> ());
  check Alcotest.bool "fresh run refuses existing campaign" true
    (Result.is_error (Pool.run_dir ~root spec));
  let doctored = { spec with Spec.trials = spec.Spec.trials + 1 } in
  check Alcotest.bool "resume refuses a changed spec" true
    (Result.is_error (Pool.run_dir ~resume:true ~root doctored))

(* ---- Report ---- *)

let test_report_aggregates () =
  let spec = failing_spec ~trials:40 () in
  let _, records = run_collect ~domains:2 spec in
  let report = Report.of_records spec records in
  check Alcotest.int "one cell" 1 (List.length report.Report.cells);
  let c = List.hd report.Report.cells in
  check Alcotest.int "trials counted" 40 c.Report.trials;
  check Alcotest.bool "failures observed" true (c.Report.failures > 0);
  check (Alcotest.float 1e-9) "rate consistent"
    (float_of_int c.Report.failures /. 40.0)
    c.Report.failure_rate;
  check Alcotest.int "totals add up" 40 report.Report.total_trials

let test_report_diff_detects_regression () =
  let spec = healthy_spec () in
  let _, records = run_collect ~domains:1 spec in
  let a = Report.of_records spec records in
  (* Self-diff: clean. *)
  let d = Report.diff a a in
  check Alcotest.int "self-diff has no regressions" 0 d.Report.regressions;
  check Alcotest.int "no cells dropped" 0 (List.length d.Report.only_a);
  (* Doctor the journal: flip one cell's trials to failing. *)
  let doctored =
    List.map
      (fun r ->
        if r.Journal.trial < spec.Spec.trials then
          { r with Journal.ok = false; outcome = Journal.Violation; violations = [ "doctored" ] }
        else r)
      records
  in
  let b = Report.of_records spec doctored in
  let d = Report.diff a b in
  check Alcotest.bool "regression detected" true (d.Report.regressions >= 1);
  let d' = Report.diff b a in
  check Alcotest.int "fixes are not regressions" 0 d'.Report.regressions

let suites =
  [
    ( "campaign.json",
      [
        Alcotest.test_case "roundtrip" `Quick test_json_roundtrip;
        Alcotest.test_case "single line" `Quick test_json_single_line;
        Alcotest.test_case "errors" `Quick test_json_errors;
        Alcotest.test_case "accessors" `Quick test_json_accessors;
      ] );
    ( "campaign.spec",
      [
        Alcotest.test_case "axis parsers" `Quick test_spec_axis_parsers;
        Alcotest.test_case "text format" `Quick test_spec_text_format;
        Alcotest.test_case "text errors" `Quick test_spec_text_errors;
        Alcotest.test_case "json roundtrip" `Quick test_spec_json_roundtrip;
      ] );
    ( "campaign.grid",
      [
        Alcotest.test_case "shape" `Quick test_grid_shape;
        Alcotest.test_case "seed determinism" `Quick test_grid_seed_determinism;
        Alcotest.test_case "envelope is kind-aware" `Quick test_grid_envelope_kind_aware;
      ] );
    ( "campaign.trial",
      [
        Alcotest.test_case "deterministic" `Quick test_trial_deterministic;
        Alcotest.test_case "replays" `Quick test_trial_replays;
        Alcotest.test_case "shrink witness" `Quick test_shrink_produces_replayable_witness;
      ] );
    ( "campaign.journal",
      [
        Alcotest.test_case "record roundtrip" `Quick test_journal_record_roundtrip;
        Alcotest.test_case "write/read" `Quick test_journal_write_read;
        Alcotest.test_case "torn line" `Quick test_journal_tolerates_torn_line;
        Alcotest.test_case "recover torn tail" `Quick test_journal_recover_unit;
        Alcotest.test_case "interior torn + health" `Quick test_journal_interior_torn_and_health;
        Alcotest.test_case "legacy line compat" `Quick test_journal_legacy_line_compat;
      ] );
    ( "campaign.pool",
      [
        Alcotest.test_case "domain-count invariance" `Quick test_pool_domain_count_invariance;
        Alcotest.test_case "skip predicate" `Quick test_pool_skip_predicate;
        Alcotest.test_case "resume after kill" `Quick test_run_dir_resume_after_kill;
        Alcotest.test_case "resume after torn tail" `Quick test_resume_after_torn_tail;
        Alcotest.test_case "clobber + mismatch guards" `Quick
          test_run_dir_refuses_clobber_and_mismatch;
      ] );
    ( "campaign.supervised",
      [
        Alcotest.test_case "deadline + retry + quarantine" `Quick
          test_pool_supervised_deadline_quarantine;
        Alcotest.test_case "unsupervised fields stay zero" `Quick
          test_pool_unsupervised_summary_unchanged;
        Alcotest.test_case "quarantined survive resume" `Quick
          test_run_dir_supervised_resume_noop;
        Alcotest.test_case "validation" `Quick test_supervision_validation;
        Alcotest.test_case "adaptive deadline math" `Quick test_adaptive_deadline_math;
        Alcotest.test_case "adaptive needs a cap" `Quick test_adaptive_requires_deadline;
        Alcotest.test_case "adaptive matches unsupervised" `Quick
          test_adaptive_run_matches_unsupervised;
      ] );
    ( "campaign.report",
      [
        Alcotest.test_case "aggregates" `Quick test_report_aggregates;
        Alcotest.test_case "diff regressions" `Quick test_report_diff_detects_regression;
      ] );
  ]
