(* Integration tests: every paper experiment must reproduce in quick
   mode, and the protocol constructions must hold up end-to-end under
   their theorem envelopes (the theorem-level acceptance tests). *)

module Experiments = Ffault_experiments
module Consensus = Ffault_consensus
module Protocol = Consensus.Protocol
module Check = Ffault_verify.Consensus_check
module Mass = Ffault_verify.Mass
module Fault = Ffault_fault
module Rng = Ffault_prng.Rng

let check = Alcotest.check

let test_registry_complete () =
  check Alcotest.int "fifteen experiments" 15 (List.length Experiments.Registry.all);
  check Alcotest.bool "find E5" true (Experiments.Registry.find "e5" <> None);
  check Alcotest.bool "find unknown" true (Experiments.Registry.find "E99" = None)

let run_experiment id =
  match Experiments.Registry.find id with
  | None -> Alcotest.failf "experiment %s not registered" id
  | Some e ->
      let r = e.Experiments.Registry.run ~quick:true ~seed:0xACCE57L in
      check Alcotest.bool (id ^ " reproduced") true r.Experiments.Report.passed;
      check Alcotest.bool (id ^ " has tables") true (r.Experiments.Report.tables <> [])

let experiment_case id =
  Alcotest.test_case (id ^ " reproduces (quick)") `Slow (fun () -> run_experiment id)

(* Theorem-level acceptance: each construction holds across a randomized
   envelope sweep with per-case seeds (beyond what the experiments
   sample). *)
let test_fig3_envelope_sweep () =
  List.iter
    (fun (f, t) ->
      let params = Protocol.params ~t ~n_procs:(f + 1) ~f () in
      let setup = Check.setup Consensus.Bounded_faults.protocol params in
      let summary =
        Mass.run
          ~injector:(fun rng ->
            Fault.Injector.probabilistic ~seed:(Rng.next_seed rng) ~p:0.6
              Fault.Fault_kind.Overriding)
          ~n_runs:150
          ~base_seed:(Int64.of_int ((f * 100) + t))
          setup
      in
      check Alcotest.int (Fmt.str "fig3 f=%d t=%d clean" f t) 0 summary.Mass.failure_count)
    [ (1, 1); (1, 3); (2, 1); (2, 2); (3, 1) ]

let test_fig2_envelope_sweep () =
  List.iter
    (fun (f, n) ->
      let params = Protocol.params ~n_procs:n ~f () in
      let setup = Check.setup Consensus.F_tolerant.protocol params in
      let summary =
        Mass.run
          ~injector:(fun _ -> Fault.Injector.always Fault.Fault_kind.Overriding)
          ~n_runs:150
          ~base_seed:(Int64.of_int ((f * 1000) + n))
          setup
      in
      check Alcotest.int (Fmt.str "fig2 f=%d n=%d clean" f n) 0 summary.Mass.failure_count)
    [ (1, 2); (1, 5); (2, 3); (3, 6); (4, 4) ]

let test_step_hints_have_headroom () =
  (* The wait-freedom budgets (max_steps_hint) must dominate measured
     worst cases outright — the checker's slack is a safety margin, not a
     crutch. *)
  List.iter
    (fun (protocol, f, t, n) ->
      let params = Protocol.params ?t ~n_procs:n ~f () in
      let setup = Check.setup protocol params in
      let summary =
        Mass.run
          ~injector:(fun rng ->
            Fault.Injector.probabilistic ~seed:(Rng.next_seed rng) ~p:0.6
              Fault.Fault_kind.Overriding)
          ~n_runs:150
          ~base_seed:(Int64.of_int ((f * 31) + n))
          setup
      in
      let hint = protocol.Protocol.max_steps_hint params in
      check Alcotest.bool
        (Fmt.str "%s: measured %d <= hint %d" protocol.Protocol.name
           summary.Mass.max_steps_one_proc hint)
        true
        (summary.Mass.max_steps_one_proc <= hint))
    [
      (Consensus.Single_cas.two_process, 1, None, 2);
      (Consensus.F_tolerant.protocol, 3, None, 5);
      (Consensus.Bounded_faults.protocol, 2, Some 2, 3);
      (Consensus.Bounded_faults.protocol, 3, Some 1, 4);
    ]

let suites =
  [
    ( "experiments",
      [
        Alcotest.test_case "registry" `Quick test_registry_complete;
        experiment_case "E1";
        experiment_case "E2";
        experiment_case "E3";
        experiment_case "E4";
        experiment_case "E5";
        experiment_case "E6";
        experiment_case "E7";
        experiment_case "E8";
        experiment_case "E9";
        experiment_case "E10";
        experiment_case "E11";
        experiment_case "E12";
        experiment_case "E13";
        experiment_case "E14";
        experiment_case "E15";
        Alcotest.test_case "fig3 envelope sweep" `Slow test_fig3_envelope_sweep;
        Alcotest.test_case "fig2 envelope sweep" `Slow test_fig2_envelope_sweep;
        Alcotest.test_case "step hints have headroom" `Slow test_step_hints_have_headroom;
      ] );
  ]
