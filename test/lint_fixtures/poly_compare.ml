(* Planted: polymorphic comparison entry points instantiated at
   lib-owned semantic types, through a local module alias and inside a
   type parameter. [fine] is the negative control: the same operators
   at [int] are not findings. *)

module V = Ffault_objects.Value

let direct (a : Ffault_objects.Value.t) b = a = b
let through_alias (a : V.t) b = compare a b
let in_params (xs : V.t list) ys = xs = ys
let member (v : V.t) vs = List.mem v vs
let hashed (v : V.t) = Hashtbl.hash v

(* Op.t embeds Value.t payloads, so it sits in the semantic set too. *)
let op_direct (a : Ffault_objects.Op.t) b = a = b
let fine (a : int) b = a = b
