(* Planted: state allocated outside a [Domain.spawn] closure and
   mutated inside it — a ref, a mutable record field, and an array
   cell. [local_ok] is the negative control: mutation of state the
   closure itself allocates is domain-local and not a finding. *)

let racy_ref () =
  let counter = ref 0 in
  let d = Domain.spawn (fun () -> incr counter) in
  Domain.join d;
  !counter

type cell = { mutable n : int }

let racy_field () =
  let c = { n = 0 } in
  let d = Domain.spawn (fun () -> c.n <- 1) in
  Domain.join d;
  c.n

let racy_array () =
  let a = Array.make 4 0 in
  let d = Domain.spawn (fun () -> a.(0) <- 7) in
  Domain.join d;
  a.(0)

let local_ok () =
  let d =
    Domain.spawn (fun () ->
        let local = ref 0 in
        incr local;
        !local)
  in
  Domain.join d
