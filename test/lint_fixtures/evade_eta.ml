(* Planted evasion: eta-reduction and partial application through an
   alias. [quiet_set] never syntactically applies anything — even an
   application-sensitive surface pass has nothing to match — and the
   partial application leaves no [Atomic.] prefix anywhere. *)

module A = Atomic

let quiet_set : int A.t -> int -> unit = A.set
let arm (flag : bool A.t) = A.compare_and_set flag false
