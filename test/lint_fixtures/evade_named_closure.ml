(* Planted evasion: the racy closure is bound to a name before the
   [Domain.spawn], so a rule that only scans a literal
   [Domain.spawn (fun () -> ...)] argument never sees the mutation.
   The typed pass follows the spawn argument's value description back
   to the binding and scans the named closure's body.

   [named_local_ok] is the negative control: the named closure only
   mutates state it allocates itself, which is domain-local. *)

let named_racy () =
  let counter = ref 0 in
  let work () = incr counter in
  let d = Domain.spawn work in
  Domain.join d;
  !counter

type cell = { mutable n : int }

let named_racy_field () =
  let c = { n = 0 } in
  let work () = c.n <- 1 in
  let d = Domain.spawn work in
  Domain.join d;
  c.n

let named_local_ok () =
  let work () =
    let local = ref 0 in
    incr local;
    !local
  in
  let d = Domain.spawn work in
  Domain.join d
