(* Planted evasion: [open Random]. The surface identifier is a bare
   [int] — no module path for the parsetree rule to match — but its
   resolved identity is random.mli's. *)

open Random

let roll () = int 6
