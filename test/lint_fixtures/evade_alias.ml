(* Planted evasion: a module alias around Atomic. The parsetree rule
   matches the literal path [Atomic.<op>], so [A.set] is invisible to
   it; the typed pass resolves [A.set]'s value description to
   atomic.mli and reports alias-escape. *)

module A = Atomic

let unlock (flag : bool A.t) = A.set flag false
