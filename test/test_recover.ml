(* Tests for the crash-restart subsystem: crash-schedule determinism
   (plan level and full-campaign journal level), the
   recoverable-linearizability step checker and its trace audit, crash
   attribution, the Budget.copy crash-charge snapshot contract, and
   resume-after-kill of a crash-axis campaign. *)

module Campaign = Ffault_campaign
module Spec = Campaign.Spec
module Grid = Campaign.Grid
module Journal = Campaign.Journal
module Checkpoint = Campaign.Checkpoint
module Pool = Campaign.Pool
module Recover = Ffault_recover
module Crash_plan = Recover.Crash_plan
module Persistence = Recover.Persistence
module Budget = Ffault_fault.Budget
module Fault_kind = Ffault_fault.Fault_kind
module Hoare = Ffault_hoare
module Triple = Hoare.Triple
module Recover_spec = Hoare.Recover_spec
module Classify = Hoare.Classify
module Sim = Ffault_sim
module Trace = Sim.Trace
module World = Sim.World
open Ffault_objects

let check = Alcotest.check

let tmp_root =
  let n = ref 0 in
  fun () ->
    incr n;
    let dir =
      Filename.concat
        (Filename.get_temp_dir_name ())
        (Fmt.str "ffault-recover-test-%d-%d" (Unix.getpid ()) !n)
    in
    Checkpoint.mkdir_p dir;
    dir

(* A crash-axis spec over the deliberately non-recoverable baseline: at
   f = 0 every failure it produces is a pure crash artifact, which keeps
   the determinism comparison meaningful (both runs must reproduce the
   same violations, not just the same passes). *)
let crashy_spec ?(trials = 12) ?(name = "crashy") () =
  Spec.v ~name ~protocol:"naive-tas" ~f:[ 0 ] ~n:[ 2 ] ~rates:[ 0.0 ] ~crashes:[ 1 ]
    ~crash_rates:[ 0.4 ] ~persistence:[ Persistence.Persist_all ] ~trials ~seed:0xC4A5L ()

(* ---- crash-plan determinism ---- *)

let test_plan_determinism () =
  let decisions plan =
    List.concat_map
      (fun proc -> List.map (fun k -> Crash_plan.decide plan ~proc ~k) [ 0; 1; 2; 3; 4; 5; 6; 7 ])
      [ 0; 1; 2; 3 ]
  in
  let a = decisions (Crash_plan.make ~seed:7L ~rate:0.5) in
  let b = decisions (Crash_plan.make ~seed:7L ~rate:0.5) in
  check Alcotest.bool "same seed, same schedule" true (a = b);
  let c = decisions (Crash_plan.make ~seed:8L ~rate:0.5) in
  check Alcotest.bool "different seed, different schedule" true (a <> c);
  check Alcotest.bool "some crashes proposed at rate 0.5" true
    (List.exists Option.is_some a);
  let never = decisions (Crash_plan.make ~seed:7L ~rate:0.0) in
  check Alcotest.bool "rate 0 proposes nothing" true (List.for_all Option.is_none never)

let test_plan_streams_independent () =
  (* Two processes never share an RNG stream: process 0's schedule is
     unchanged by what process 1 draws (pure-function plans make this
     trivially true; the test pins the keying so a refactor to a shared
     sequential stream would be caught). *)
  let plan = Crash_plan.make ~seed:42L ~rate:0.7 in
  let p0 = List.map (fun k -> Crash_plan.decide plan ~proc:0 ~k) [ 0; 1; 2; 3 ] in
  (* interleave queries to proc 1 between re-queries of proc 0 *)
  let p0' =
    List.map
      (fun k ->
        ignore (Crash_plan.decide plan ~proc:1 ~k);
        Crash_plan.decide plan ~proc:0 ~k)
      [ 0; 1; 2; 3 ]
  in
  check Alcotest.bool "proc 0 schedule independent of proc 1 queries" true (p0 = p0')

(* ---- campaign-level determinism: same seed => identical journal ---- *)

let run_records spec =
  let records = ref [] in
  let _ = Pool.run_trials ~domains:1 ~max_shrinks_per_cell:2 ~on_record:(fun r -> records := r :: !records) spec in
  List.sort (fun a b -> compare a.Journal.trial b.Journal.trial) !records

let normalize r = { r with Journal.wall_us = 0 }

let test_campaign_determinism () =
  let spec = crashy_spec () in
  let a = List.map normalize (run_records spec) in
  let b = List.map normalize (run_records spec) in
  check Alcotest.int "all trials journaled" (Grid.total_trials spec) (List.length a);
  (* byte-identical journals: compare the rendered JSONL lines *)
  let lines rs = List.map Journal.to_line rs in
  check Alcotest.(list string) "same seed, byte-identical journal" (lines a) (lines b);
  check Alcotest.bool "the baseline actually fails under crashes" true
    (List.exists (fun r -> not r.Journal.ok) a);
  check Alcotest.bool "failures are crash-charged" true
    (List.for_all (fun r -> r.Journal.ok || r.Journal.crash_faults > 0) a)

let test_crash_seed_rerolls () =
  (* --crash-seed varies the crash schedule without touching the fault
     schedule: outcomes must differ somewhere across the sweep. *)
  let spec = crashy_spec ~name:"crashy-a" () in
  let spec' = { spec with Spec.name = "crashy-b"; crash_seed = 99L } in
  let sig_of rs = List.map (fun r -> (r.Journal.ok, r.Journal.crash_faults)) rs in
  check Alcotest.bool "crash-seed re-rolls the schedule" true
    (sig_of (run_records spec) <> sig_of (run_records spec'))

(* ---- recoverable-linearizability checker ---- *)

let cas_step ~post =
  {
    Triple.kind = Kind.Cas_only;
    pre_state = Value.Bottom;
    op = Op.Cas { expected = Value.Bottom; desired = Value.Int 1 };
    post_state = post;
    response = Value.Bottom;
  }

let test_recover_spec_shapes () =
  let vanish = cas_step ~post:Value.Bottom in
  let linearize = cas_step ~post:(Value.Int 1) in
  let torn = cas_step ~post:(Value.Int 2) in
  check Alcotest.bool "vanished accepted" true (Recover_spec.vanished vanish);
  check Alcotest.bool "vanished is not linearized" false (Recover_spec.linearized vanish);
  check Alcotest.bool "linearized accepted" true (Recover_spec.linearized linearize);
  check Alcotest.bool "linearized did not vanish" false (Recover_spec.vanished linearize);
  check Alcotest.bool "legal = vanish" true (Recover_spec.legal vanish);
  check Alcotest.bool "legal = linearize" true (Recover_spec.legal linearize);
  check Alcotest.bool "half-applied effect rejected" false (Recover_spec.legal torn)

let crash_event ~effect ~post =
  Trace.Proc_crash
    {
      step = 1;
      proc = 0;
      obj = Obj_id.of_int 0;
      op = Op.Cas { expected = Value.Bottom; desired = Value.Int 1 };
      pre_state = Value.Bottom;
      post_state = post;
      effect;
    }

let test_audit_crashed_steps () =
  let world = World.cas_world ~n_procs:2 ~objects:1 in
  let ok_trace =
    [
      crash_event ~effect:Crash_plan.Vanish ~post:Value.Bottom;
      Trace.Restart { step = 2; proc = 0 };
      crash_event ~effect:Crash_plan.Linearize ~post:(Value.Int 1);
      Trace.Restart { step = 4; proc = 0 };
    ]
  in
  check Alcotest.int "legal crashed steps audit clean" 0
    (List.length (Trace.audit ~world ok_trace));
  (* A fabricated decided-value flip: the crash is labeled Linearize but
     the state shows a different value than the operation installs. *)
  let flipped = [ crash_event ~effect:Crash_plan.Linearize ~post:(Value.Int 2) ] in
  check Alcotest.int "value flip rejected" 1 (List.length (Trace.audit ~world flipped));
  (* Mislabeling: claims Vanish but the effect landed. *)
  let mislabeled = [ crash_event ~effect:Crash_plan.Vanish ~post:(Value.Int 1) ] in
  check Alcotest.int "mislabeled vanish rejected" 1
    (List.length (Trace.audit ~world mislabeled))

let test_attribution () =
  let attr = Alcotest.testable Classify.pp_attribution Classify.equal_attribution in
  check attr "no faults" Classify.No_fault (Classify.attribute ~crashes:0 ~primitive:0);
  check attr "crash only" Classify.Crash_only (Classify.attribute ~crashes:2 ~primitive:0);
  check attr "primitive only" Classify.Primitive_only (Classify.attribute ~crashes:0 ~primitive:1);
  check attr "mixed" Classify.Mixed (Classify.attribute ~crashes:1 ~primitive:3)

(* ---- Budget.copy and crash charging ---- *)

let test_budget_copy_crash_isolation () =
  let b = Budget.create ~max_crashes_per_proc:2 ~max_faulty_objects:1 ~max_faults_per_object:None () in
  Budget.charge_crash b ~proc:0;
  let snapshot = Budget.copy b in
  (* Replaying the crash after a restore charges the snapshot's own
     table; the original must be unaffected (no shared Hashtbl). *)
  Budget.charge_crash snapshot ~proc:0;
  Budget.charge_crash snapshot ~proc:1;
  check Alcotest.int "original proc 0 unchanged" 1 (Budget.crashes_on b 0);
  check Alcotest.int "original proc 1 unchanged" 0 (Budget.crashes_on b 1);
  check Alcotest.int "snapshot charged independently" 2 (Budget.crashes_on snapshot 0);
  check Alcotest.bool "snapshot proc 0 exhausted" false (Budget.can_crash snapshot ~proc:0);
  check Alcotest.bool "original proc 0 still has headroom" true (Budget.can_crash b ~proc:0);
  check Alcotest.int "totals diverge" 1 (Budget.total_crashes b);
  check Alcotest.int "snapshot total" 3 (Budget.total_crashes snapshot)

(* ---- resume after kill, with crash axes live ---- *)

let test_crash_campaign_resume_after_kill () =
  let root = tmp_root () in
  let spec = crashy_spec ~trials:10 ~name:"crashy-resume" () in
  let total = Grid.total_trials spec in
  (match Pool.run_dir ~domains:2 ~max_shrinks_per_cell:0 ~root spec with
  | Error m -> Alcotest.fail m
  | Ok s -> check Alcotest.int "fresh run executes all" total s.Pool.executed);
  let dir = Checkpoint.campaign_dir ~root spec in
  let path = Checkpoint.journal_path ~dir in
  let keep =
    In_channel.with_open_text path In_channel.input_lines
    |> List.filteri (fun i _ -> i < 4)
  in
  Out_channel.with_open_text path (fun oc ->
      List.iter (fun l -> Out_channel.output_string oc (l ^ "\n")) keep);
  (match Pool.run_dir ~domains:2 ~max_shrinks_per_cell:0 ~resume:true ~root spec with
  | Error m -> Alcotest.fail m
  | Ok s ->
      check Alcotest.int "journaled trials skipped" 4 s.Pool.skipped;
      check Alcotest.int "only the rest executed" (total - 4) s.Pool.executed);
  let records = Journal.load ~path in
  check Alcotest.int "journal complete" total (List.length records);
  let ids = List.sort_uniq compare (List.map (fun r -> r.Journal.trial) records) in
  check Alcotest.int "every trial exactly once" total (List.length ids);
  check Alcotest.bool "crash axes survived the round trip" true
    (List.for_all
       (fun r ->
         r.Journal.cell.Grid.crashes = 1
         && r.Journal.cell.Grid.crash_rate = 0.4
         && Persistence.equal r.Journal.cell.Grid.persistence Persistence.Persist_all)
       records)

let suites =
  [
    ( "recover",
      [
        Alcotest.test_case "crash-plan determinism" `Quick test_plan_determinism;
        Alcotest.test_case "crash-plan stream independence" `Quick test_plan_streams_independent;
        Alcotest.test_case "campaign journal determinism" `Slow test_campaign_determinism;
        Alcotest.test_case "crash-seed re-rolls schedules" `Slow test_crash_seed_rerolls;
        Alcotest.test_case "recoverable-lin step shapes" `Quick test_recover_spec_shapes;
        Alcotest.test_case "audit of crashed steps" `Quick test_audit_crashed_steps;
        Alcotest.test_case "crash attribution" `Quick test_attribution;
        Alcotest.test_case "budget copy isolates crash charges" `Quick
          test_budget_copy_crash_isolation;
        Alcotest.test_case "crash-axis resume after kill" `Slow
          test_crash_campaign_resume_after_kill;
      ] );
  ]
