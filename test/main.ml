(* The full alcotest runner: one suite per library area. *)

let () =
  Alcotest.run "ffault"
    (Test_prng.suites @ Test_objects.suites @ Test_history.suites @ Test_hoare.suites
   @ Test_fault.suites @ Test_sim.suites @ Test_consensus.suites @ Test_verify.suites
   @ Test_impossibility.suites @ Test_runtime.suites @ Test_stats.suites
   @ Test_extensions.suites @ Test_primitives.suites @ Test_critical.suites
   @ Test_engine_edge.suites @ Test_conformance.suites @ Test_crash_tolerance.suites
   @ Test_experiments.suites @ Test_campaign.suites @ Test_telemetry.suites
   @ Test_lint.suites @ Test_supervise.suites @ Test_dist.suites @ Test_netsim.suites
   @ Test_observability.suites @ Test_recover.suites)
