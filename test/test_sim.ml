(* Tests for the simulator: world, schedulers, and the engine's
   interleaving / fault-injection machinery. *)

open Ffault_objects
module Sim = Ffault_sim
module World = Sim.World
module Scheduler = Sim.Scheduler
module Engine = Sim.Engine
module Proc = Sim.Proc
module Trace = Sim.Trace
module Fault = Ffault_fault
module Fault_kind = Fault.Fault_kind
module Budget = Fault.Budget
module Injector = Fault.Injector

let check = Alcotest.check
let i n = Value.Int n
let oid = Obj_id.of_int

(* ---- World ---- *)

let test_world_validation () =
  Alcotest.check_raises "zero procs" (Invalid_argument "World.make: need at least one process")
    (fun () -> ignore (World.make ~n_procs:0 [ World.obj Kind.Cas_only ]));
  Alcotest.check_raises "no objects" (Invalid_argument "World.make: need at least one object")
    (fun () -> ignore (World.make ~n_procs:1 []))

let test_world_accessors () =
  let w =
    World.make ~n_procs:3
      [ World.obj ~label:"A" Kind.Cas_only; World.obj ~init:(i 5) Kind.Register ]
  in
  check Alcotest.int "procs" 3 (World.n_procs w);
  check Alcotest.int "objects" 2 (World.n_objects w);
  check Alcotest.string "label" "A" (World.label_of w (oid 0));
  check Alcotest.string "default label" "O1" (World.label_of w (oid 1));
  check Test_objects.value_testable_for_reuse "init" (i 5) (World.init_of w (oid 1));
  check Alcotest.bool "kind" true (Kind.equal Kind.Register (World.kind_of w (oid 1)))

let test_cas_world () =
  let w = World.cas_world ~n_procs:2 ~objects:4 in
  check Alcotest.int "objects" 4 (World.n_objects w);
  List.iter
    (fun id ->
      check Alcotest.bool "cas-only" true (Kind.equal Kind.Cas_only (World.kind_of w id));
      check Alcotest.bool "bottom init" true (Value.is_bottom (World.init_of w id)))
    (World.object_ids w)

(* ---- Scheduler ---- *)

let test_round_robin_cycles () =
  let s = Scheduler.round_robin () in
  let picks = List.init 6 (fun step -> s.Scheduler.pick ~enabled:[ 0; 1; 2 ] ~step) in
  check (Alcotest.list Alcotest.int) "cycles" [ 0; 1; 2; 0; 1; 2 ] picks

let test_round_robin_skips_disabled () =
  let s = Scheduler.round_robin () in
  ignore (s.Scheduler.pick ~enabled:[ 0; 1; 2 ] ~step:0);
  let p = s.Scheduler.pick ~enabled:[ 0; 2 ] ~step:1 in
  check Alcotest.int "skips to 2" 2 p

let test_random_picks_member () =
  let s = Scheduler.random ~seed:5L in
  for step = 0 to 100 do
    let p = s.Scheduler.pick ~enabled:[ 1; 4; 7 ] ~step in
    check Alcotest.bool "member" true (List.mem p [ 1; 4; 7 ])
  done

let test_scripted_follows_then_falls_back () =
  let s = Scheduler.scripted [ 2; 0 ] ~fallback:(Scheduler.round_robin ()) in
  check Alcotest.int "first scripted" 2 (s.Scheduler.pick ~enabled:[ 0; 1; 2 ] ~step:0);
  check Alcotest.int "second scripted" 0 (s.Scheduler.pick ~enabled:[ 0; 1; 2 ] ~step:1);
  let p = s.Scheduler.pick ~enabled:[ 0; 1; 2 ] ~step:2 in
  check Alcotest.bool "fallback member" true (List.mem p [ 0; 1; 2 ])

let test_solo_runs_order () =
  let s = Scheduler.solo_runs ~order:[ 1; 0 ] in
  check Alcotest.int "soloist first" 1 (s.Scheduler.pick ~enabled:[ 0; 1; 2 ] ~step:0);
  check Alcotest.int "soloist continues" 1 (s.Scheduler.pick ~enabled:[ 0; 1; 2 ] ~step:1);
  (* once 1 finishes, move to 0 *)
  check Alcotest.int "next soloist" 0 (s.Scheduler.pick ~enabled:[ 0; 2 ] ~step:2)

let test_prioritized_member () =
  let s = Scheduler.prioritized ~weights:[| 1.0; 10.0; 1.0 |] ~seed:3L in
  let counts = Array.make 3 0 in
  for step = 0 to 2000 do
    let p = s.Scheduler.pick ~enabled:[ 0; 1; 2 ] ~step in
    counts.(p) <- counts.(p) + 1
  done;
  check Alcotest.bool "heavy proc dominates" true (counts.(1) > counts.(0) + counts.(2))

(* ---- Engine ---- *)

let herlihy_body world_input () =
  let old = Proc.cas (oid 0) ~expected:Value.Bottom ~desired:world_input in
  if Value.is_bottom old then world_input else old

let run_herlihy ?(n = 3) ?(budget = Budget.none ()) ?(injector = Injector.never)
    ?(scheduler = Scheduler.round_robin ()) () =
  let world = World.cas_world ~n_procs:n ~objects:1 in
  let cfg = Engine.config ~world ~budget () in
  let bodies = Array.init n (fun p -> herlihy_body (i (100 + p))) in
  Engine.run cfg ~scheduler ~injector ~bodies ()

let test_engine_fault_free_consensus () =
  let r = run_herlihy () in
  check Alcotest.bool "all decided" true (Engine.all_decided r);
  List.iter
    (fun (_, v) -> check Test_objects.value_testable_for_reuse "first writer wins" (i 100) v)
    (Engine.decided_values r);
  check Alcotest.int "three steps" 3 r.Engine.total_steps;
  check Alcotest.int "audit clean" 0 (List.length
    (Trace.audit ~world:(World.cas_world ~n_procs:3 ~objects:1) r.Engine.trace))

let test_engine_deterministic_replay () =
  let render r = Fmt.str "%a" (Trace.pp ~world:(World.cas_world ~n_procs:3 ~objects:1)) r.Engine.trace in
  let r1 =
    run_herlihy ~scheduler:(Scheduler.random ~seed:9L)
      ~budget:(Budget.create ~max_faulty_objects:1 ~max_faults_per_object:None ())
      ~injector:(Injector.probabilistic ~seed:4L ~p:0.5 Fault_kind.Overriding) ()
  in
  let r2 =
    run_herlihy ~scheduler:(Scheduler.random ~seed:9L)
      ~budget:(Budget.create ~max_faulty_objects:1 ~max_faults_per_object:None ())
      ~injector:(Injector.probabilistic ~seed:4L ~p:0.5 Fault_kind.Overriding) ()
  in
  check Alcotest.string "same seed, same trace" (render r1) (render r2)

let test_engine_budget_enforced () =
  (* Adversary wants to fault every op, budget allows 2 on one object. *)
  let budget = Budget.create ~max_faulty_objects:1 ~max_faults_per_object:(Some 2) () in
  let r = run_herlihy ~n:6 ~budget ~injector:(Injector.always Fault_kind.Overriding) () in
  check Alcotest.bool "at most 2 faults" true (Budget.total_faults r.Engine.budget <= 2);
  check Alcotest.bool "at most 1 faulty object" true
    (List.length (Budget.faulty_objects r.Engine.budget) <= 1)

let test_engine_unobservable_not_charged () =
  (* A single process: its only CAS succeeds, so an overriding fault on it
     is unobservable and must not be charged. *)
  let budget = Budget.create ~max_faulty_objects:1 ~max_faults_per_object:None () in
  let r = run_herlihy ~n:1 ~budget ~injector:(Injector.always Fault_kind.Overriding) () in
  check Alcotest.int "no observable fault" 0 (Budget.total_faults r.Engine.budget);
  check Alcotest.bool "decided" true (Engine.all_decided r)

let test_engine_fault_labels_audited () =
  let budget = Budget.create ~max_faulty_objects:1 ~max_faults_per_object:None () in
  let r = run_herlihy ~n:4 ~budget ~injector:(Injector.always Fault_kind.Overriding) () in
  let world = World.cas_world ~n_procs:4 ~objects:1 in
  check Alcotest.int "audit agrees with labels" 0 (List.length (Trace.audit ~world r.Engine.trace));
  check Alcotest.bool "faults recorded in trace" true
    (Trace.injected_faults r.Engine.trace <> [])

let test_engine_step_limit () =
  (* A body that can never finish: it always CASes with a wrong expected
     value and retries. *)
  let world = World.cas_world ~n_procs:1 ~objects:1 in
  let cfg = Engine.config ~max_steps_per_proc:50 ~world ~budget:(Budget.none ()) () in
  let body () =
    let rec loop () =
      ignore (Proc.cas (oid 0) ~expected:(i 999) ~desired:(i 1));
      loop ()
    in
    loop ()
  in
  let r =
    Engine.run cfg ~scheduler:(Scheduler.round_robin ()) ~injector:Injector.never
      ~bodies:[| body |] ()
  in
  (match r.Engine.outcomes.(0) with
  | Engine.Exhausted { steps; budget } ->
      check Alcotest.int "budget reported" 50 budget;
      check Alcotest.bool "steps exceed budget" true (steps > budget)
  | o -> Alcotest.failf "expected Exhausted, got %a" Engine.pp_proc_outcome o);
  check Alcotest.bool "limit event in trace" true
    (List.exists (function Trace.Step_limit_hit _ -> true | _ -> false) r.Engine.trace)

let test_engine_nonresponsive_hangs_proc () =
  let world = World.cas_world ~n_procs:2 ~objects:1 in
  let budget = Budget.create ~max_faulty_objects:1 ~max_faults_per_object:(Some 1) () in
  let cfg = Engine.config ~allowed_faults:[ Fault_kind.Nonresponsive ] ~world ~budget () in
  let bodies = Array.init 2 (fun p -> herlihy_body (i (100 + p))) in
  let injector =
    Injector.on_invocations
      [ (0, Injector.Fault { kind = Fault_kind.Nonresponsive; payload = None }) ]
  in
  let r = Engine.run cfg ~scheduler:(Scheduler.round_robin ()) ~injector ~bodies () in
  (match r.Engine.outcomes.(0) with
  | Engine.Hung -> ()
  | o -> Alcotest.failf "expected Hung, got %a" Engine.pp_proc_outcome o);
  (* the other process still finishes *)
  match r.Engine.outcomes.(1) with
  | Engine.Decided _ -> ()
  | o -> Alcotest.failf "expected Decided, got %a" Engine.pp_proc_outcome o

let test_engine_crash_recorded () =
  let world = World.cas_world ~n_procs:1 ~objects:1 in
  let cfg = Engine.config ~world ~budget:(Budget.none ()) () in
  let body () = failwith "boom" in
  let r =
    Engine.run cfg ~scheduler:(Scheduler.round_robin ()) ~injector:Injector.never
      ~bodies:[| body |] ()
  in
  match r.Engine.outcomes.(0) with
  | Engine.Crashed msg -> check Alcotest.bool "message" true (String.length msg > 0)
  | o -> Alcotest.failf "expected Crashed, got %a" Engine.pp_proc_outcome o

let test_engine_illegal_op_crashes () =
  let world = World.cas_world ~n_procs:1 ~objects:1 in
  let cfg = Engine.config ~world ~budget:(Budget.none ()) () in
  let body () = Proc.read (oid 0) in
  let r =
    Engine.run cfg ~scheduler:(Scheduler.round_robin ()) ~injector:Injector.never
      ~bodies:[| body |] ()
  in
  match r.Engine.outcomes.(0) with
  | Engine.Crashed msg ->
      check Alcotest.bool "mentions illegal operation" true
        (String.length msg >= 7 && String.sub msg 0 7 = "illegal")
  | o -> Alcotest.failf "expected Crashed, got %a" Engine.pp_proc_outcome o

let test_engine_data_faults_applied () =
  let world = World.cas_world ~n_procs:2 ~objects:1 in
  let budget = Budget.create ~max_faulty_objects:1 ~max_faults_per_object:(Some 1) () in
  let cfg = Engine.config ~world ~budget () in
  let bodies = Array.init 2 (fun p -> herlihy_body (i (100 + p))) in
  let data_faults =
    Fault.Data_fault.scripted [ (1, [ { Fault.Data_fault.obj = oid 0; value = i 999 } ]) ]
  in
  let r =
    Engine.run cfg ~scheduler:(Scheduler.round_robin ()) ~injector:Injector.never
      ~data_faults ~bodies ()
  in
  check Alcotest.int "corruption charged" 1 (Budget.total_faults r.Engine.budget);
  check Alcotest.bool "corruption in trace" true
    (List.exists (function Trace.Corruption _ -> true | _ -> false) r.Engine.trace);
  (* p1 runs after the corruption and adopts 999 *)
  match r.Engine.outcomes.(1) with
  | Engine.Decided v -> check Test_objects.value_testable_for_reuse "adopted" (i 999) v
  | o -> Alcotest.failf "expected Decided, got %a" Engine.pp_proc_outcome o

let test_engine_rejects_bad_bodies_count () =
  let world = World.cas_world ~n_procs:2 ~objects:1 in
  let cfg = Engine.config ~world ~budget:(Budget.none ()) () in
  Alcotest.check_raises "bodies mismatch"
    (Invalid_argument "Engine.run_with_driver: bodies count differs from world process count")
    (fun () ->
      ignore
        (Engine.run cfg ~scheduler:(Scheduler.round_robin ()) ~injector:Injector.never
           ~bodies:[| herlihy_body (i 1) |] ()))

let test_engine_rejects_disabled_pick () =
  let world = World.cas_world ~n_procs:1 ~objects:1 in
  let cfg = Engine.config ~world ~budget:(Budget.none ()) () in
  let driver =
    {
      Engine.choose_proc = (fun ~enabled:_ ~step:_ -> 7);
      choose_outcome = (fun _ ~options:_ -> Engine.Correct_outcome);
      after_step = (fun _ -> []);
    }
  in
  Alcotest.check_raises "disabled pick"
    (Invalid_argument "Engine: scheduler picked disabled process p7") (fun () ->
      ignore (Engine.run_with_driver cfg driver ~bodies:[| herlihy_body (i 1) |]))

let test_engine_menu_contains_fault_options () =
  (* With a budget and an enabled-fault list, the menu offered to the
     driver must include the observable overriding fault on a doomed
     CAS. *)
  let world = World.cas_world ~n_procs:2 ~objects:1 in
  let budget = Budget.create ~max_faulty_objects:1 ~max_faults_per_object:None () in
  let cfg = Engine.config ~world ~budget () in
  let saw_fault_option = ref false in
  let driver =
    {
      Engine.choose_proc = (fun ~enabled ~step:_ -> List.hd enabled);
      choose_outcome =
        (fun _ ~options ->
          if
            List.exists
              (function Engine.Inject (Fault_kind.Overriding, None) -> true | _ -> false)
              options
          then saw_fault_option := true;
          Engine.Correct_outcome);
      after_step = (fun _ -> []);
    }
  in
  ignore
    (Engine.run_with_driver cfg driver
       ~bodies:(Array.init 2 (fun p -> herlihy_body (i (100 + p)))));
  check Alcotest.bool "fault option offered" true !saw_fault_option

let suites =
  [
    ( "sim.world",
      [
        Alcotest.test_case "validation" `Quick test_world_validation;
        Alcotest.test_case "accessors" `Quick test_world_accessors;
        Alcotest.test_case "cas_world" `Quick test_cas_world;
      ] );
    ( "sim.scheduler",
      [
        Alcotest.test_case "round robin cycles" `Quick test_round_robin_cycles;
        Alcotest.test_case "round robin skips disabled" `Quick test_round_robin_skips_disabled;
        Alcotest.test_case "random member" `Quick test_random_picks_member;
        Alcotest.test_case "scripted" `Quick test_scripted_follows_then_falls_back;
        Alcotest.test_case "solo runs" `Quick test_solo_runs_order;
        Alcotest.test_case "prioritized" `Quick test_prioritized_member;
      ] );
    ( "sim.engine",
      [
        Alcotest.test_case "fault-free consensus" `Quick test_engine_fault_free_consensus;
        Alcotest.test_case "deterministic replay" `Quick test_engine_deterministic_replay;
        Alcotest.test_case "budget enforced" `Quick test_engine_budget_enforced;
        Alcotest.test_case "unobservable not charged" `Quick
          test_engine_unobservable_not_charged;
        Alcotest.test_case "fault labels audited" `Quick test_engine_fault_labels_audited;
        Alcotest.test_case "step limit" `Quick test_engine_step_limit;
        Alcotest.test_case "nonresponsive hangs" `Quick test_engine_nonresponsive_hangs_proc;
        Alcotest.test_case "crash recorded" `Quick test_engine_crash_recorded;
        Alcotest.test_case "illegal op crashes" `Quick test_engine_illegal_op_crashes;
        Alcotest.test_case "data faults applied" `Quick test_engine_data_faults_applied;
        Alcotest.test_case "bodies count" `Quick test_engine_rejects_bad_bodies_count;
        Alcotest.test_case "disabled pick rejected" `Quick test_engine_rejects_disabled_pick;
        Alcotest.test_case "fault menu offered" `Quick test_engine_menu_contains_fault_options;
      ] );
  ]
