(* Tests for the statistics and table-rendering helpers. *)

module Summary = Ffault_stats.Summary
module Table = Ffault_stats.Table

let check = Alcotest.check
let qcheck = QCheck_alcotest.to_alcotest
let feq = Alcotest.float 1e-9

let test_summary_known_values () =
  let s = Summary.create () in
  List.iter (Summary.add s) [ 2.0; 4.0; 4.0; 4.0; 5.0; 5.0; 7.0; 9.0 ];
  check Alcotest.int "count" 8 (Summary.count s);
  check feq "mean" 5.0 (Summary.mean s);
  check (Alcotest.float 1e-6) "stddev (sample)" 2.13809 (Summary.stddev s);
  check feq "min" 2.0 (Summary.min_value s);
  check feq "max" 9.0 (Summary.max_value s)

let test_summary_empty () =
  let s = Summary.create () in
  check feq "mean of empty" 0.0 (Summary.mean s);
  check feq "variance of empty" 0.0 (Summary.variance s);
  Alcotest.check_raises "percentile of empty"
    (Invalid_argument "Summary.percentile: empty accumulator") (fun () ->
      ignore (Summary.percentile s 50.0))

let test_summary_percentiles () =
  let s = Summary.create () in
  for i = 1 to 100 do
    Summary.add_int s i
  done;
  check feq "p0" 1.0 (Summary.percentile s 0.0);
  check feq "p100" 100.0 (Summary.percentile s 100.0);
  check feq "median" 50.5 (Summary.percentile s 50.0);
  Alcotest.check_raises "bad p" (Invalid_argument "Summary.percentile: p out of [0, 100]")
    (fun () -> ignore (Summary.percentile s 101.0))

let test_summary_single () =
  let s = Summary.create () in
  Summary.add s 3.5;
  check feq "mean" 3.5 (Summary.mean s);
  check feq "stddev" 0.0 (Summary.stddev s);
  check feq "p50" 3.5 (Summary.percentile s 50.0)

let prop_mean_within_bounds =
  QCheck.Test.make ~name:"mean within [min, max]" ~count:200
    QCheck.(list_of_size (Gen.int_range 1 50) (float_range (-1000.) 1000.))
    (fun xs ->
      let s = Summary.create () in
      List.iter (Summary.add s) xs;
      Summary.mean s >= Summary.min_value s -. 1e-9
      && Summary.mean s <= Summary.max_value s +. 1e-9)

let prop_percentile_monotone =
  QCheck.Test.make ~name:"percentiles monotone" ~count:200
    QCheck.(list_of_size (Gen.int_range 2 50) (float_range 0. 100.))
    (fun xs ->
      let s = Summary.create () in
      List.iter (Summary.add s) xs;
      Summary.percentile s 25.0 <= Summary.percentile s 75.0 +. 1e-9)

(* ---- the capped reservoir ---- *)

let test_summary_reservoir_cap () =
  let s = Summary.create ~capacity:100 () in
  for i = 1 to 10_000 do
    Summary.add_int s i
  done;
  check Alcotest.int "count sees everything" 10_000 (Summary.count s);
  check Alcotest.int "capacity" 100 (Summary.capacity s);
  check Alcotest.int "retained capped" 100 (Summary.retained s);
  (* Exact moments are unaffected by the cap. *)
  check feq "mean exact" 5000.5 (Summary.mean s);
  check feq "min exact" 1.0 (Summary.min_value s);
  check feq "max exact" 10000.0 (Summary.max_value s);
  (* The median is now an estimate over a uniform sample of 100: loose
     bounds, but a broken reservoir (e.g. stuck on a prefix) lands far
     outside them. *)
  let p50 = Summary.percentile s 50.0 in
  check Alcotest.bool "median in the right region" true (p50 > 2000.0 && p50 < 8000.0)

let test_summary_below_cap_is_exact () =
  let s = Summary.create ~capacity:100 () in
  for i = 1 to 100 do
    Summary.add_int s i
  done;
  check Alcotest.int "retained all" 100 (Summary.retained s);
  check feq "p50 exact at the cap" 50.5 (Summary.percentile s 50.0)

let test_summary_reservoir_deterministic () =
  let fill () =
    let s = Summary.create ~capacity:64 ~seed:9L () in
    for i = 1 to 5_000 do
      Summary.add_int s ((i * 7919) mod 1000)
    done;
    s
  in
  let a = fill () and b = fill () in
  List.iter
    (fun p ->
      check feq (Fmt.str "p%g equal across runs" p) (Summary.percentile a p)
        (Summary.percentile b p))
    [ 0.0; 25.0; 50.0; 75.0; 99.0; 100.0 ]

let test_summary_capacity_validation () =
  Alcotest.check_raises "capacity < 1" (Invalid_argument "Summary.create: capacity < 1")
    (fun () -> ignore (Summary.create ~capacity:0 ()))

let test_table_rendering () =
  let t = Table.create ~columns:[ "a"; "bbb" ] in
  Table.add_row t [ "1"; "2" ];
  Table.add_row t [ "333"; "4" ];
  let expected = "| a   | bbb |\n|-----|-----|\n| 1   | 2   |\n| 333 | 4   |\n" in
  check Alcotest.string "aligned" expected (Table.to_string t)

let test_table_utf8_width () =
  let t = Table.create ~columns:[ "v" ] in
  Table.add_row t [ "\xe2\x8a\xa5" ];
  (* ⊥ is 3 bytes, 1 display column *)
  Table.add_row t [ "xx" ];
  let expected = "| v  |\n|----|\n| \xe2\x8a\xa5  |\n| xx |\n" in
  check Alcotest.string "utf8 width" expected (Table.to_string t)

let test_table_validation () =
  Alcotest.check_raises "empty columns" (Invalid_argument "Table.create: empty column list")
    (fun () -> ignore (Table.create ~columns:[]));
  let t = Table.create ~columns:[ "a" ] in
  Alcotest.check_raises "row width" (Invalid_argument "Table.add_row: row width differs from header")
    (fun () -> Table.add_row t [ "1"; "2" ])

let test_cells () =
  check Alcotest.string "int" "42" (Table.cell_int 42);
  check Alcotest.string "bool" "yes" (Table.cell_bool true);
  check Alcotest.string "float" "3.14" (Table.cell_float 3.14159);
  check Alcotest.string "float decimals" "3.1" (Table.cell_float ~decimals:1 3.14159);
  check Alcotest.string "opt none" "-" (Table.cell_opt Table.cell_int None);
  check Alcotest.string "opt some" "7" (Table.cell_opt Table.cell_int (Some 7))

let suites =
  [
    ( "stats.summary",
      [
        Alcotest.test_case "known values" `Quick test_summary_known_values;
        Alcotest.test_case "empty" `Quick test_summary_empty;
        Alcotest.test_case "percentiles" `Quick test_summary_percentiles;
        Alcotest.test_case "single sample" `Quick test_summary_single;
        qcheck prop_mean_within_bounds;
        qcheck prop_percentile_monotone;
        Alcotest.test_case "reservoir cap" `Quick test_summary_reservoir_cap;
        Alcotest.test_case "below cap exact" `Quick test_summary_below_cap_is_exact;
        Alcotest.test_case "reservoir deterministic" `Quick test_summary_reservoir_deterministic;
        Alcotest.test_case "capacity validation" `Quick test_summary_capacity_validation;
      ] );
    ( "stats.table",
      [
        Alcotest.test_case "rendering" `Quick test_table_rendering;
        Alcotest.test_case "utf8 width" `Quick test_table_utf8_width;
        Alcotest.test_case "validation" `Quick test_table_validation;
        Alcotest.test_case "cells" `Quick test_cells;
      ] );
  ]
