(* Observability layer: Prometheus exposition golden, event-ring
   overflow accounting, Heartbeat codec compatibility (a bare beat must
   stay byte-identical to the pre-observability wire), and the netsim
   status probes — the /status and /workers JSON the live endpoint
   would serve, pinned byte-for-byte under virtual time. *)

module Metrics = Ffault_telemetry.Metrics
module Events = Ffault_telemetry.Events
module Dist = Ffault_dist
module Codec = Dist.Codec
module Wire = Dist.Wire
module Json = Ffault_campaign.Json
module Sim = Ffault_netsim.Sim

let check = Alcotest.check

(* ---- Metrics.expose ---- *)

(* A handcrafted snapshot pins the whole exposition: name mangling,
   one TYPE line per metric, cumulative buckets, the max_int bucket
   folded into +Inf. *)
let test_expose_golden () =
  let snap =
    {
      Metrics.counters = [ ("campaign.trials", 42); ("dist.leases granted", 7) ];
      gauges = [ ("pool.inflight", 3) ];
      histograms =
        [
          {
            Metrics.h_name = "trial.wall_us";
            h_count = 4;
            h_sum = 75;
            h_buckets = [ (10, 1); (25, 2); (max_int, 1) ];
          };
        ];
    }
  in
  let expected =
    "# TYPE ffault_campaign_trials counter\n\
     ffault_campaign_trials 42\n\
     # TYPE ffault_dist_leases_granted counter\n\
     ffault_dist_leases_granted 7\n\
     # TYPE ffault_pool_inflight gauge\n\
     ffault_pool_inflight 3\n\
     # TYPE ffault_trial_wall_us histogram\n\
     ffault_trial_wall_us_bucket{le=\"10\"} 1\n\
     ffault_trial_wall_us_bucket{le=\"25\"} 3\n\
     ffault_trial_wall_us_bucket{le=\"+Inf\"} 4\n\
     ffault_trial_wall_us_sum 75\n\
     ffault_trial_wall_us_count 4\n"
  in
  check Alcotest.string "exposition" expected (Metrics.expose ~snapshot:snap ())

let test_expose_live_parses () =
  (* the live snapshot's exposition: every line is a comment or
     "name value" with a mangled ffault_ name *)
  let text = Metrics.expose () in
  String.split_on_char '\n' text
  |> List.iter (fun line ->
         if line <> "" && not (String.length line >= 1 && line.[0] = '#') then
           match String.index_opt line ' ' with
           | None -> Alcotest.failf "unparseable sample line: %s" line
           | Some i ->
               let name = String.sub line 0 i in
               check Alcotest.bool
                 (Fmt.str "prefix of %s" name)
                 true
                 (String.length name > 7 && String.sub name 0 7 = "ffault_"))

(* ---- Events ring ---- *)

let test_events_overflow () =
  let clock = ref 0 in
  let log = Events.create ~capacity:4 ~now:(fun () -> incr clock; !clock) () in
  for i = 0 to 9 do
    Events.emit log ~scope:"test" (Fmt.str "event %d" i)
  done;
  check Alcotest.int "emitted" 10 (Events.emitted log);
  check Alcotest.int "buffered" 4 (Events.buffered log);
  check Alcotest.int "dropped" 6 (Events.dropped log);
  let seqs = List.map (fun (e : Events.event) -> e.Events.seq) (Events.tail log) in
  check (Alcotest.list Alcotest.int) "survivors are the newest" [ 6; 7; 8; 9 ] seqs;
  let seqs =
    List.map (fun (e : Events.event) -> e.Events.seq) (Events.tail ~limit:2 log)
  in
  check (Alcotest.list Alcotest.int) "limited tail" [ 8; 9 ] seqs;
  Events.clear log;
  check Alcotest.int "cleared buffered" 0 (Events.buffered log);
  check Alcotest.int "cleared dropped" 0 (Events.dropped log)

let test_events_json_line () =
  let log = Events.create ~now:(fun () -> 1234) () in
  Events.emit log ~severity:Events.Warn
    ~fields:[ ("worker", "w\"1\""); ("lease", "7") ]
    ~scope:"dist" "lease expired\n";
  match Events.tail log with
  | [ e ] ->
      check Alcotest.string "jsonl"
        "{\"seq\":0,\"ts_ns\":1234,\"severity\":\"warn\",\"scope\":\"dist\",\"msg\":\"lease \
         expired\\n\",\"fields\":{\"worker\":\"w\\\"1\\\"\",\"lease\":\"7\"}}"
        (Events.json_line e);
      (* the line is valid Json, and a pure one *)
      (match Json.of_string (Events.json_line e) with
      | Ok _ -> ()
      | Error m -> Alcotest.failf "json_line not Json: %s" m)
  | evs -> Alcotest.failf "expected 1 event, got %d" (List.length evs)

let test_events_sink () =
  let lines = ref [] in
  let log = Events.create ~now:(fun () -> 0) () in
  Events.set_sink log (Some (fun l -> lines := l :: !lines));
  Events.emit log ~scope:"a" "one";
  Events.set_sink log None;
  Events.emit log ~scope:"a" "two";
  check Alcotest.int "sink saw one line" 1 (List.length !lines);
  check Alcotest.int "both buffered" 2 (Events.buffered log)

(* ---- Heartbeat codec compatibility ---- *)

let test_heartbeat_wire_compat () =
  (* a bare beat must encode exactly as the pre-observability wire:
     tag 'b', payload "{}" *)
  let frame = Codec.to_frame Codec.heartbeat in
  check Alcotest.char "tag" 'b' frame.Wire.tag;
  check Alcotest.string "legacy payload" "{}" frame.Wire.payload;
  (* and a legacy "{}" frame decodes to the bare beat *)
  (match Codec.of_frame { Wire.tag = 'b'; payload = "{}" } with
  | Ok m -> check Alcotest.bool "decodes bare" true (m = Codec.heartbeat)
  | Error e -> Alcotest.failf "legacy heartbeat: %s" e);
  (* a loaded beat round-trips with both payloads intact *)
  let loaded =
    Codec.Heartbeat
      {
        snapshot = Some (Json.Obj [ ("counters", Json.Obj [ ("x", Json.Int 3) ]) ]);
        spans = Some (Json.List [ Json.Obj [ ("name", Json.Str "trial") ] ]);
      }
  in
  match Codec.of_frame (Codec.to_frame loaded) with
  | Ok m -> check Alcotest.bool "round-trips" true (m = loaded)
  | Error e -> Alcotest.failf "loaded heartbeat: %s" e

(* ---- netsim status probes ---- *)

(* 192 trials across 2 workers: slow enough that the 1 s probe catches
   the campaign mid-flight (state "running", live ETA) and the
   completion probe sees it done. Everything below is a pure function
   of (config, seed). *)
let probe_cfg = Sim.config ~workers:2 ~trials:192 ~lease_trials:16 ()
let probe_seed = 0x0B5L

let probes () = (Sim.run probe_cfg ~seed:probe_seed).Sim.status_probes

let find path phase ps =
  (* phase 0 = the 1 s probe, phase 1 = the completion probe *)
  match List.filter (fun (_, p, _) -> p = path) ps with
  | [ (_, _, a); (_, _, b) ] -> if phase = 0 then a else b
  | l -> Alcotest.failf "expected 2 %s probes, got %d" path (List.length l)

let test_probes_deterministic () =
  let a = probes () and b = probes () in
  check Alcotest.int "same probe count" (List.length a) (List.length b);
  List.iter2
    (fun (ns, path, body) (ns', path', body') ->
      check Alcotest.int (path ^ " ns") ns ns';
      check Alcotest.string "path" path path';
      check Alcotest.string (path ^ " body") body body')
    a b

let test_status_golden () =
  let ps = probes () in
  check Alcotest.string "/status mid-run"
    "{\"version\":1,\"campaign\":\"netsim\",\"protocol\":\"fig1\",\"epoch\":1,\"restarts\":0,\"stale_completes\":0,\"state\":\"running\",\"total\":192,\"done\":125,\"skipped\":0,\"executed\":125,\"failures\":0,\"timeouts\":0,\"retried\":0,\"quarantined\":0,\"elapsed_s\":1.0,\"trials_per_s\":125.0,\"eta_s\":0.53600000000000003,\"workers_connected\":2,\"leases\":{\"outstanding\":2,\"pending\":9,\"granted\":9,\"completed\":1,\"expired\":0}}\n"
    (find "/status" 0 ps);
  check Alcotest.string "/status done"
    "{\"version\":1,\"campaign\":\"netsim\",\"protocol\":\"fig1\",\"epoch\":1,\"restarts\":0,\"stale_completes\":0,\"state\":\"done\",\"total\":192,\"done\":192,\"skipped\":0,\"executed\":192,\"failures\":0,\"timeouts\":0,\"retried\":0,\"quarantined\":0,\"elapsed_s\":2.5,\"trials_per_s\":76.799999999999997,\"eta_s\":null,\"workers_connected\":0,\"leases\":{\"outstanding\":0,\"pending\":0,\"granted\":23,\"completed\":12,\"expired\":0}}\n"
    (find "/status" 1 ps)

let test_workers_golden () =
  let ps = probes () in
  check Alcotest.string "/workers mid-run"
    "{\"version\":1,\"epoch\":1,\"restarts\":0,\"hb_interval_s\":0.5,\"lease_timeout_s\":2.0,\"workers\":[{\"name\":\"w0\",\"peer\":\"sim://w0\",\"domains\":1,\"connected\":true,\"hb_age_s\":0.109446217,\"stale\":false,\"granted\":4,\"completed\":1,\"expired\":2,\"results\":51,\"deduped\":1,\"reconnects\":0,\"telemetry\":{\"counters\":{\"netsim.results_sent\":48}}},{\"name\":\"w1\",\"peer\":\"sim://w1\",\"domains\":1,\"connected\":true,\"hb_age_s\":0.084046708999999997,\"stale\":false,\"granted\":5,\"completed\":0,\"expired\":4,\"results\":74,\"deduped\":1,\"reconnects\":0,\"telemetry\":{\"counters\":{\"netsim.results_sent\":64}}}]}\n"
    (find "/workers" 0 ps)

let test_events_probe_wellformed () =
  let ps = probes () in
  List.iter
    (fun phase ->
      match Json.of_string (String.trim (find "/events" phase ps)) with
      | Error m -> Alcotest.failf "/events not Json: %s" m
      | Ok j -> (
          check Alcotest.int "version" 1
            (Option.get (Json.get_int (Option.get (Json.member "version" j))));
          match Json.member "events" j with
          | Some (Json.List evs) ->
              check Alcotest.bool "has events" true (List.length evs > 0);
              (* both workers join before anything else happens *)
              let msg e = Option.get (Json.get_str (Option.get (Json.member "msg" e))) in
              check Alcotest.bool "w0 joined first" true
                (String.length (msg (List.hd evs)) > 0)
          | _ -> Alcotest.fail "no events array"))
    [ 0; 1 ]

let suites =
  [
    ( "observability",
      [
        Alcotest.test_case "expose golden" `Quick test_expose_golden;
        Alcotest.test_case "expose live parses" `Quick test_expose_live_parses;
        Alcotest.test_case "events ring overflow" `Quick test_events_overflow;
        Alcotest.test_case "events json line" `Quick test_events_json_line;
        Alcotest.test_case "events sink" `Quick test_events_sink;
        Alcotest.test_case "heartbeat wire compat" `Quick test_heartbeat_wire_compat;
        Alcotest.test_case "probes deterministic" `Quick test_probes_deterministic;
        Alcotest.test_case "/status golden" `Quick test_status_golden;
        Alcotest.test_case "/workers golden" `Quick test_workers_golden;
        Alcotest.test_case "/events well-formed" `Quick test_events_probe_wellformed;
      ] );
  ]
