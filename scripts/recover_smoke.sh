#!/bin/sh
# Recover smoke: the crash-restart subsystem end to end, four legs.
#
#   1. Planted baseline: a crash-only sweep over the deliberately
#      non-recoverable naive-tas MUST produce recoverable-linearizability
#      violations, every one attributed to crashes (never to primitive
#      faults — there are none at f = 0), with a shrunk witness in the
#      journal and the attribution columns in the report.
#   2. Recoverable protocols: the same sweep over rec-tas and rec-cas
#      must come back completely clean.
#   3. Durability: SIGKILL a crash-axis campaign mid-flight, resume it,
#      and prove the journal ends complete — every trial exactly once.
#   4. Distributed: the same crash axes through `campaign serve` plus
#      workers over a Unix socket must journal every trial exactly once
#      with the crash fields intact.
#
# This is the acceptance scenario of doc/RECOVERY.md run as a test;
# `make recover-smoke` and CI both drive it.
set -eu

ROOT=_campaigns
BIN=_build/default/bin/main.exe
CRASH_FLAGS="--crashes 1 --crash-rates 0.4 --persistence all"

dune build bin/main.exe

# ---- leg 1: the planted naive baseline must fail, crash-attributed ----

NAME=recover-smoke-naive
DIR="$ROOT/$NAME"
rm -rf "$DIR"
# shellcheck disable=SC2086 # CRASH_FLAGS is a flag list by construction
"$BIN" campaign run --name "$NAME" --protocol naive-tas \
  -f 0 -n 2 --rates 0.0 $CRASH_FLAGS --trials 300 --domains 2 --quiet

FAILS=$(grep -c '"ok":false' "$DIR/journal.jsonl" || true)
if [ "$FAILS" -eq 0 ]; then
  echo "recover-smoke FAILED: naive-tas produced no violations under crashes" >&2
  exit 1
fi
if ! grep -q '"ok":false.*"witness":\[' "$DIR/journal.jsonl"; then
  echo "recover-smoke FAILED: no shrunk witness journaled for a naive-tas violation" >&2
  exit 1
fi
# f = 0, rate 0: every violating trial must carry crash charges and no
# primitive ones.
if grep '"ok":false' "$DIR/journal.jsonl" | grep -q '"crash_faults":0'; then
  echo "recover-smoke FAILED: a violation without crash charges at f=0" >&2
  exit 1
fi
if grep '"ok":false' "$DIR/journal.jsonl" | grep -qv '"faults":0'; then
  echo "recover-smoke FAILED: a primitive fault charged in a crash-only cell" >&2
  exit 1
fi
"$BIN" campaign report --name "$NAME" >/dev/null
if ! grep -q 'attribution' "$DIR/report.md"; then
  echo "recover-smoke FAILED: report has no attribution column for a crash-axis campaign" >&2
  exit 1
fi
echo "recover-smoke: naive-tas planted baseline caught ($FAILS violations, crash-attributed, witness shrunk)"

# ---- leg 2: the recoverable protocols must stay clean ----

for PROTO in rec-tas rec-cas; do
  NAME="recover-smoke-$PROTO"
  DIR="$ROOT/$NAME"
  rm -rf "$DIR"
  # shellcheck disable=SC2086
  "$BIN" campaign run --name "$NAME" --protocol "$PROTO" \
    -f 0 -n 2 --rates 0.0 $CRASH_FLAGS --trials 300 --domains 2 --quiet
  if grep -q '"ok":false' "$DIR/journal.jsonl"; then
    echo "recover-smoke FAILED: $PROTO violated under a crash-only schedule" >&2
    grep '"ok":false' "$DIR/journal.jsonl" | head -3 >&2
    exit 1
  fi
  echo "recover-smoke: $PROTO clean under crash-only schedules"
done

# ---- leg 3: SIGKILL + resume, exactly once, with crash axes live ----

NAME=recover-smoke-chaos
DIR="$ROOT/$NAME"
rm -rf "$DIR"
TOTAL=200000
# Run the binary directly so the kill lands on the campaign process
# itself, not a wrapper that would orphan it.
"$BIN" campaign run --name "$NAME" --protocol naive-tas \
  -f 0 -n 2 --rates 0.0 --crashes 1 --crash-rates 0.2,0.4 --persistence all \
  --trials 100000 --domains 2 --quiet &
PID=$!
sleep 0.3
kill -9 "$PID" 2>/dev/null || true
wait "$PID" 2>/dev/null || true

BEFORE=$(wc -l <"$DIR/journal.jsonl" 2>/dev/null || echo 0)
if [ "$BEFORE" -ge "$TOTAL" ]; then
  echo "recover-smoke FAILED: campaign finished before the kill ($BEFORE trials); raise --trials" >&2
  exit 1
fi
echo "recover-smoke: killed the crash-axis campaign after ~$BEFORE journaled trials"

"$BIN" campaign resume --name "$NAME" --quiet

LINES=$(grep -c '"trial":' "$DIR/journal.jsonl")
UNIQUE=$(grep -o '"trial":[0-9]*' "$DIR/journal.jsonl" | sort -u | wc -l)
if [ "$LINES" -ne "$TOTAL" ] || [ "$UNIQUE" -ne "$TOTAL" ]; then
  echo "recover-smoke FAILED: $LINES journal lines, $UNIQUE unique trials, expected $TOTAL" >&2
  exit 1
fi
echo "recover-smoke: resume completed $TOTAL trials exactly once"

# ---- leg 4: the crash axes through the distributed path ----

NAME=recover-smoke-dist
DIR="$ROOT/$NAME"
SOCK="${TMPDIR:-/tmp}/ffault-recover-smoke-$$.sock"
TOTAL=2000
rm -rf "$DIR"
rm -f "$SOCK"

# shellcheck disable=SC2086
"$BIN" campaign serve --name "$NAME" --protocol naive-tas \
  --faults 0 --procs 2 --rates 0.0 $CRASH_FLAGS --trials 2000 \
  --listen "unix:$SOCK" --lease-trials 200 --quiet &
SERVE_PID=$!

tries=0
while [ ! -S "$SOCK" ]; do
  tries=$((tries + 1))
  if [ "$tries" -gt 100 ]; then
    echo "recover-smoke FAILED: coordinator never listened on $SOCK" >&2
    kill "$SERVE_PID" 2>/dev/null || true
    exit 1
  fi
  sleep 0.1
done

"$BIN" worker --connect "unix:$SOCK" --name recover-w1 --domains 2 --quiet &
W1=$!
"$BIN" worker --connect "unix:$SOCK" --name recover-w2 --domains 2 --quiet &
W2=$!

wait "$SERVE_PID"
wait "$W1"
wait "$W2"
rm -f "$SOCK"

LINES=$(grep -c '"trial":' "$DIR/journal.jsonl")
UNIQUE=$(grep -o '"trial":[0-9]*' "$DIR/journal.jsonl" | sort -u | wc -l)
if [ "$LINES" -ne "$TOTAL" ] || [ "$UNIQUE" -ne "$TOTAL" ]; then
  echo "recover-smoke FAILED (dist): $LINES journal lines, $UNIQUE unique trials, expected $TOTAL" >&2
  exit 1
fi
if ! grep -q '"crashes":1' "$DIR/journal.jsonl"; then
  echo "recover-smoke FAILED (dist): journal records lost the crash axes" >&2
  exit 1
fi
if ! grep -q '"ok":false' "$DIR/journal.jsonl"; then
  echo "recover-smoke FAILED (dist): naive-tas produced no violations through the workers" >&2
  exit 1
fi
"$BIN" campaign report --name "$NAME" >/dev/null

echo "recover-smoke OK: baseline caught, recoverable protocols clean, resume and dist exactly-once"
