#!/bin/sh
# Distributed chaos smoke: a coordinator shards a 40k-trial grid to
# three worker processes over a Unix socket, one worker is SIGKILLed
# mid-campaign, and the run must still finish with every trial
# journaled exactly once — the killed worker's lease expires, its shard
# is re-leased with the journaled trials excluded, and the zombie's
# stale results (if any) are deduped by trial id. This is the
# exactly-once claim of doc/DISTRIBUTED.md run as a test;
# `make dist-chaos-smoke` and CI both drive it.
set -eu

ROOT=_campaigns
NAME=dist-chaos-smoke
DIR="$ROOT/$NAME"
BIN=_build/default/bin/main.exe
SOCK="${TMPDIR:-/tmp}/ffault-dist-chaos-$$.sock"
STATUS_SOCK="${TMPDIR:-/tmp}/ffault-dist-chaos-status-$$.sock"
SCRAPES="$DIR/scrapes"
# grid: f in 1..2 (2) x rates 0.3,0.6 (2) = 4 cells x 10000 trials.
TOTAL=40000

dune build bin/main.exe
rm -rf "$DIR"
rm -f "$SOCK" "$STATUS_SOCK"

# Run the binaries directly (not through `dune exec`) so the kill lands
# on the worker process itself, not a wrapper that would orphan it.
# Small leases + a short timeout keep the post-kill reclaim quick.
"$BIN" campaign serve --name "$NAME" --protocol fig3 \
  --faults 1..2 --bound 1 --procs 3 --rates 0.3,0.6 --trials 10000 \
  --listen "unix:$SOCK" --status "unix:$STATUS_SOCK" \
  --lease-trials 500 --lease-timeout 2 \
  --hb-interval 0.5 --quiet &
SERVE_PID=$!
mkdir -p "$SCRAPES"

# Workers must not race the coordinator's bind.
tries=0
while [ ! -S "$SOCK" ]; do
  tries=$((tries + 1))
  if [ "$tries" -gt 100 ]; then
    echo "dist-chaos-smoke FAILED: coordinator never listened on $SOCK" >&2
    kill "$SERVE_PID" 2>/dev/null || true
    exit 1
  fi
  sleep 0.1
done

"$BIN" worker --connect "unix:$SOCK" --name chaos-w1 --domains 2 --quiet &
W1=$!
"$BIN" worker --connect "unix:$SOCK" --name chaos-w2 --domains 2 --quiet &
W2=$!
"$BIN" worker --connect "unix:$SOCK" --name chaos-w3 --domains 2 --quiet &
W3=$!

# Let the campaign get moving, then scrape the live endpoint: the
# status summary must be well-formed running-state JSON and the
# exposition must carry ffault_-prefixed samples.
sleep 0.6
"$BIN" campaign status --connect "unix:$STATUS_SOCK" --format json > "$SCRAPES/status-mid.json"
"$BIN" campaign status --connect "unix:$STATUS_SOCK" --get /metrics > "$SCRAPES/metrics-mid.txt"
"$BIN" campaign status --connect "unix:$STATUS_SOCK" --get /workers > "$SCRAPES/workers-mid.json"
if ! grep -q '"version":1' "$SCRAPES/status-mid.json" \
  || ! grep -q '"state":"running"' "$SCRAPES/status-mid.json"; then
  echo "dist-chaos-smoke FAILED: mid-campaign /status is not well-formed running JSON" >&2
  cat "$SCRAPES/status-mid.json" >&2
  exit 1
fi
if ! grep -q '^# TYPE ffault_' "$SCRAPES/metrics-mid.txt"; then
  echo "dist-chaos-smoke FAILED: /metrics exposition has no ffault_ samples" >&2
  exit 1
fi

# Murder one worker mid-lease.
BEFORE=$(grep -c '"trial":' "$DIR/journal.jsonl" 2>/dev/null || echo 0)
if [ "$BEFORE" -ge "$TOTAL" ]; then
  echo "dist-chaos-smoke FAILED: campaign finished before the kill ($BEFORE trials); raise --trials" >&2
  exit 1
fi
kill -9 "$W1" 2>/dev/null || true
echo "killed worker chaos-w1 after ~$BEFORE journaled trials"

# Within one heartbeat interval the coordinator must have noticed: the
# dead worker shows up no-longer-connected in /workers and its
# departure lands in the event log.
sleep 0.5
"$BIN" campaign status --connect "unix:$STATUS_SOCK" --get /workers > "$SCRAPES/workers-postkill.json"
"$BIN" campaign status --connect "unix:$STATUS_SOCK" --get /status > "$SCRAPES/status-postkill.json"
"$BIN" campaign status --connect "unix:$STATUS_SOCK" --get /metrics > "$SCRAPES/metrics-postkill.txt"
"$BIN" campaign status --connect "unix:$STATUS_SOCK" --get /events > "$SCRAPES/events-postkill.json"
W1ROW=$(grep -o '"name":"chaos-w1"[^}]*' "$SCRAPES/workers-postkill.json" || true)
case "$W1ROW" in
  *'"connected":false'*) ;;
  *'"stale":true'*) ;;
  *)
    echo "dist-chaos-smoke FAILED: killed worker not flagged in /workers: $W1ROW" >&2
    cat "$SCRAPES/workers-postkill.json" >&2
    exit 1
    ;;
esac
if ! grep -q 'chaos-w1 left' "$SCRAPES/events-postkill.json"; then
  echo "dist-chaos-smoke FAILED: /events has no departure for chaos-w1" >&2
  exit 1
fi

# The survivors and the coordinator must converge on a complete journal.
wait "$SERVE_PID"
wait "$W2"
wait "$W3"
wait "$W1" 2>/dev/null || true
rm -f "$SOCK" "$STATUS_SOCK"

LINES=$(grep -c '"trial":' "$DIR/journal.jsonl")
UNIQUE=$(grep -o '"trial":[0-9]*' "$DIR/journal.jsonl" | sort -u | wc -l)
if [ "$LINES" -ne "$TOTAL" ] || [ "$UNIQUE" -ne "$TOTAL" ]; then
  echo "dist-chaos-smoke FAILED: $LINES journal lines, $UNIQUE unique trials, expected $TOTAL" >&2
  exit 1
fi

if [ ! -f "$DIR/workers.json" ]; then
  echo "dist-chaos-smoke FAILED: coordinator left no workers.json" >&2
  exit 1
fi

if [ ! -s "$DIR/events.jsonl" ]; then
  echo "dist-chaos-smoke FAILED: coordinator streamed no events.jsonl" >&2
  exit 1
fi

"$BIN" campaign report --name "$NAME" >/dev/null
if ! grep -q '^## Workers' "$DIR/report.md"; then
  echo "dist-chaos-smoke FAILED: report.md has no Workers section" >&2
  exit 1
fi
# The kill must be visible: at least one lease expired and was reassigned.
if ! grep -q 'expired and reassigned' "$DIR/report.md"; then
  echo "dist-chaos-smoke FAILED: no reassigned lease in the Workers ledger (was the worker killed too late?)" >&2
  grep -A4 '^## Workers' "$DIR/report.md" >&2 || true
  exit 1
fi

echo "dist-chaos-smoke OK: $TOTAL trials exactly once across 3 workers (one SIGKILLed at ~$BEFORE)"
grep -A2 '^## Workers' "$DIR/report.md" | tail -1
