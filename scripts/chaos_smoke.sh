#!/bin/sh
# Chaos smoke: SIGKILL a campaign mid-flight (no cleanup, no flush
# beyond the journal's own per-record flush), resume it, and prove the
# journal ends complete — every trial present exactly once, no loss, no
# duplication. This is the durability claim of doc/CAMPAIGNS.md run as
# a test; `make chaos-smoke` and CI both drive it.
set -eu

ROOT=_campaigns
NAME=chaos-smoke
DIR="$ROOT/$NAME"
BIN=_build/default/bin/main.exe
# grid: f in 1..2 (2) x rates 0.3,0.6 (2) = 4 cells x 10000 trials.
# Big enough that the sleep below reliably interrupts it mid-flight
# (the engine clears ~25k trials/s on a fast machine).
TOTAL=40000

dune build bin/main.exe
rm -rf "$DIR"

# Run the binary directly (not through `dune exec`) so the kill lands on
# the campaign process itself, not a wrapper that would orphan it.
"$BIN" campaign run --name "$NAME" --protocol fig3 \
  -f 1..2 -t 1 -n 3 --rates 0.3,0.6 --trials 10000 --domains 2 --quiet &
PID=$!
sleep 0.3
kill -9 "$PID" 2>/dev/null || true
wait "$PID" 2>/dev/null || true

BEFORE=$(wc -l <"$DIR/journal.jsonl" 2>/dev/null || echo 0)
if [ "$BEFORE" -ge "$TOTAL" ]; then
  echo "chaos-smoke FAILED: campaign finished before the kill ($BEFORE trials); raise --trials" >&2
  exit 1
fi
echo "killed the campaign after ~$BEFORE journaled trials"

"$BIN" campaign resume --name "$NAME" --quiet

LINES=$(grep -c '"trial":' "$DIR/journal.jsonl")
UNIQUE=$(grep -o '"trial":[0-9]*' "$DIR/journal.jsonl" | sort -u | wc -l)
if [ "$LINES" -ne "$TOTAL" ] || [ "$UNIQUE" -ne "$TOTAL" ]; then
  echo "chaos-smoke FAILED: $LINES journal lines, $UNIQUE unique trials, expected $TOTAL" >&2
  exit 1
fi

"$BIN" campaign report --name "$NAME" >/dev/null
echo "chaos-smoke OK: $TOTAL trials exactly once (killed at ~$BEFORE, resume completed the rest)"
