#!/bin/sh
# Coordinator chaos smoke: three workers grind a 40k-trial grid, the
# live COORDINATOR is SIGKILLed mid-campaign, and a `serve --resume` of
# the same campaign must finish it — epoch-fenced against the dead
# incarnation's leases, recovering the lease table from the journal.
# The workers are started exactly once: they must ride out the outage
# with their bounded reconnect backoff, re-Hello to the next epoch, and
# exit 0 with the campaign complete. This is the failover sequence of
# doc/DISTRIBUTED.md run as a test; `make coord-chaos-smoke` and CI
# both drive it.
set -eu

ROOT=_campaigns
NAME=coord-chaos-smoke
DIR="$ROOT/$NAME"
BIN=_build/default/bin/main.exe
SOCK="${TMPDIR:-/tmp}/ffault-coord-chaos-$$.sock"
STATUS_SOCK="${TMPDIR:-/tmp}/ffault-coord-chaos-status-$$.sock"
SCRAPES="$DIR/scrapes"
# grid: f in 1..2 (2) x rates 0.3,0.6 (2) = 4 cells x 10000 trials.
TOTAL=40000

serve() {
  # Identical flags both incarnations, plus whatever the caller adds
  # (--resume). Short lease timeout keeps the epoch-1 leases from
  # stalling the resumed run; the heartbeat cadence bounds how long a
  # worker can go silent before the watchdog requeues its shard.
  "$BIN" campaign serve --name "$NAME" --protocol fig3 \
    --faults 1..2 --bound 1 --procs 3 --rates 0.3,0.6 --trials 10000 \
    --listen "unix:$SOCK" --status "unix:$STATUS_SOCK" \
    --lease-trials 500 --lease-timeout 2 \
    --hb-interval 0.5 --quiet "$@" &
}

status_get() {
  "$BIN" campaign status --connect "unix:$STATUS_SOCK" --get "$1"
}

dune build bin/main.exe
rm -rf "$DIR"
rm -f "$SOCK" "$STATUS_SOCK"

serve
SERVE_PID=$!
mkdir -p "$SCRAPES"

tries=0
while [ ! -S "$SOCK" ]; do
  tries=$((tries + 1))
  if [ "$tries" -gt 100 ]; then
    echo "coord-chaos-smoke FAILED: coordinator never listened on $SOCK" >&2
    kill "$SERVE_PID" 2>/dev/null || true
    exit 1
  fi
  sleep 0.1
done

# The workers of the whole test: started once, never restarted. Their
# summary lines (captured stdout) are the reattachment evidence.
"$BIN" worker --connect "unix:$SOCK" --name chaos-w1 --domains 2 --quiet > "$SCRAPES/w1.out" &
W1=$!
"$BIN" worker --connect "unix:$SOCK" --name chaos-w2 --domains 2 --quiet > "$SCRAPES/w2.out" &
W2=$!
"$BIN" worker --connect "unix:$SOCK" --name chaos-w3 --domains 2 --quiet > "$SCRAPES/w3.out" &
W3=$!

# Let the campaign get moving, then snapshot epoch 1: the ownership
# file and a live scrape.
sleep 0.8
status_get /status > "$SCRAPES/status-epoch1.json"
cp "$DIR/owner.json" "$SCRAPES/owner-epoch1.json"
if ! grep -q '"epoch":1' "$SCRAPES/status-epoch1.json"; then
  echo "coord-chaos-smoke FAILED: first incarnation is not epoch 1" >&2
  cat "$SCRAPES/status-epoch1.json" >&2
  exit 1
fi

# Murder the coordinator mid-campaign.
BEFORE=$(grep -c '"trial":' "$DIR/journal.jsonl" 2>/dev/null || echo 0)
if [ "$BEFORE" -ge "$TOTAL" ]; then
  echo "coord-chaos-smoke FAILED: campaign finished before the kill ($BEFORE trials); raise --trials" >&2
  exit 1
fi
kill -9 "$SERVE_PID" 2>/dev/null || true
wait "$SERVE_PID" 2>/dev/null || true
echo "killed coordinator after ~$BEFORE journaled trials"

# Leave the workers in the dark for a moment — they must be retrying,
# not dead — then restart the campaign as the next incarnation.
sleep 0.5
serve --resume
SERVE_PID=$!

# The stale socket file survives the SIGKILL, so poll the status
# endpoint (rebound by the new incarnation) instead of the path.
tries=0
until status_get /status > "$SCRAPES/status-epoch2.json" 2>/dev/null \
  && grep -q '"epoch":2' "$SCRAPES/status-epoch2.json"; do
  tries=$((tries + 1))
  if [ "$tries" -gt 100 ]; then
    echo "coord-chaos-smoke FAILED: resumed coordinator never served epoch 2 on /status" >&2
    cat "$SCRAPES/status-epoch2.json" >&2 || true
    exit 1
  fi
  sleep 0.1
done
cp "$DIR/owner.json" "$SCRAPES/owner-epoch2.json"
if ! grep -q '"epoch":2' "$SCRAPES/owner-epoch2.json"; then
  echo "coord-chaos-smoke FAILED: owner.json not bumped to epoch 2" >&2
  cat "$SCRAPES/owner-epoch2.json" >&2
  exit 1
fi
if ! grep -q '"restarts":1' "$SCRAPES/status-epoch2.json"; then
  echo "coord-chaos-smoke FAILED: /status does not report 1 restart" >&2
  cat "$SCRAPES/status-epoch2.json" >&2
  exit 1
fi

# All three workers must land on the new incarnation through their
# reconnect backoff. Poll /workers while the coordinator is alive; if
# the resumed campaign finishes before a scrape sees all three, fall
# back to the workers.json it persists on success (the per-worker
# reconnect counts below still prove the reattachment happened live).
attached=0
tries=0
while [ "$tries" -le 60 ] && kill -0 "$SERVE_PID" 2>/dev/null; do
  tries=$((tries + 1))
  if status_get /workers > "$SCRAPES/workers-postrestart.json" 2>/dev/null \
    && grep -q '"name":"chaos-w1"' "$SCRAPES/workers-postrestart.json" \
    && grep -q '"name":"chaos-w2"' "$SCRAPES/workers-postrestart.json" \
    && grep -q '"name":"chaos-w3"' "$SCRAPES/workers-postrestart.json"; then
    attached=1
    break
  fi
  sleep 0.1
done
SERVE_REAPED=0
if [ "$attached" -ne 1 ]; then
  wait "$SERVE_PID"
  SERVE_REAPED=1
  cp "$DIR/workers.json" "$SCRAPES/workers-postrestart.json" 2>/dev/null || true
fi
for w in chaos-w1 chaos-w2 chaos-w3; do
  if ! grep -q "\"name\":\"$w\"" "$SCRAPES/workers-postrestart.json"; then
    echo "coord-chaos-smoke FAILED: $w not attached to the resumed coordinator" >&2
    cat "$SCRAPES/workers-postrestart.json" >&2
    exit 1
  fi
done

# The resumed coordinator and the original worker processes must
# converge on a complete journal.
if [ "$SERVE_REAPED" -ne 1 ]; then wait "$SERVE_PID"; fi
WFAIL=0
wait "$W1" || { echo "coord-chaos-smoke FAILED: chaos-w1 exited non-zero" >&2; WFAIL=1; }
wait "$W2" || { echo "coord-chaos-smoke FAILED: chaos-w2 exited non-zero" >&2; WFAIL=1; }
wait "$W3" || { echo "coord-chaos-smoke FAILED: chaos-w3 exited non-zero" >&2; WFAIL=1; }
rm -f "$SOCK" "$STATUS_SOCK"
if [ "$WFAIL" -ne 0 ]; then
  cat "$SCRAPES"/w*.out >&2 || true
  exit 1
fi

# Reattached, not restarted: each worker's own summary counts at least
# one lost-and-reestablished session.
for i in 1 2 3; do
  if ! grep -q ' reconnect(s)' "$SCRAPES/w$i.out" || grep -q ' 0 reconnect(s)' "$SCRAPES/w$i.out"; then
    echo "coord-chaos-smoke FAILED: chaos-w$i reports no reconnect (was it restarted, or did the kill land too late?)" >&2
    cat "$SCRAPES/w$i.out" >&2
    exit 1
  fi
done

LINES=$(grep -c '"trial":' "$DIR/journal.jsonl")
UNIQUE=$(grep -o '"trial":[0-9]*' "$DIR/journal.jsonl" | sort -u | wc -l)
if [ "$LINES" -ne "$TOTAL" ] || [ "$UNIQUE" -ne "$TOTAL" ]; then
  echo "coord-chaos-smoke FAILED: $LINES journal lines, $UNIQUE unique trials, expected $TOTAL" >&2
  exit 1
fi

if [ ! -s "$DIR/events.jsonl" ]; then
  echo "coord-chaos-smoke FAILED: coordinator streamed no events.jsonl" >&2
  exit 1
fi
if ! grep -q 'recovery' "$DIR/events.jsonl"; then
  echo "coord-chaos-smoke FAILED: events.jsonl has no recovery event from the resumed incarnation" >&2
  exit 1
fi

"$BIN" campaign report --name "$NAME" >/dev/null
if ! grep -q 'Coordinator epoch 2: 1 restart(s)' "$DIR/report.md"; then
  echo "coord-chaos-smoke FAILED: report.md Workers section does not mention the failover" >&2
  grep -A6 '^## Workers' "$DIR/report.md" >&2 || true
  exit 1
fi

echo "coord-chaos-smoke OK: $TOTAL trials exactly once; coordinator SIGKILLed at ~$BEFORE and resumed as epoch 2; 3 workers reattached without restarting"
grep -o '[0-9]* reconnect(s)' "$SCRAPES"/w*.out | sed 's/^/  /'
