(* ffault — command-line driver for the Functional Faults reproduction.

   Subcommands: experiment (run E1..E14 and print their report tables),
   list, trace (render one adversarial execution), explore (bounded
   exhaustive model checking, with witness shrinking), replay (re-run a
   witness decision vector), falsify (portfolio search), critical (the
   executable valency walk), severity (fault order), hierarchy
   (consensus-number table), multicore (domains + atomics runs), and
   campaign (parallel fault-injection campaigns with persistent
   journals: run | resume | report | diff), and lint (compiler-libs
   static analysis of the fault-injection / determinism invariants,
   doc/LINT.md). *)

open Cmdliner
module Experiments = Ffault_experiments
module Consensus = Ffault_consensus
module Protocol = Consensus.Protocol
module Check = Ffault_verify.Consensus_check
module Dfs = Ffault_verify.Dfs
module Fault = Ffault_fault
module Sim = Ffault_sim
module Campaign = Ffault_campaign
module Telemetry = Ffault_telemetry
module Lint = Ffault_lint
module Dist = Ffault_dist
module Netsim = Ffault_netsim

(* ---- shared options ---- *)

let seed_arg =
  let doc = "Root seed for randomized schedules and fault plans." in
  Arg.(value & opt int 0xF417 & info [ "seed" ] ~docv:"SEED" ~doc)

let quick_arg =
  let doc = "Smaller sweeps and fewer runs (CI-friendly)." in
  Arg.(value & flag & info [ "quick" ] ~doc)

let f_arg =
  let doc = "Fault budget f (maximum number of faulty objects)." in
  Arg.(value & opt int 2 & info [ "f" ] ~docv:"F" ~doc)

let t_arg =
  let doc = "Fault bound t per faulty object (omit for unbounded)." in
  Arg.(value & opt (some int) None & info [ "t" ] ~docv:"T" ~doc)

let n_arg =
  let doc = "Number of processes." in
  Arg.(value & opt int 3 & info [ "n" ] ~docv:"N" ~doc)

let protocol_arg =
  let doc =
    "Protocol under test: fig1 (two-process single CAS), fig2 (f-tolerant sweep, f+1 \
     objects), fig3 (bounded-faults staged, f objects), herlihy (fault-free baseline), \
     silent-retry, tas (2-process test-and-set consensus), sweepN (the Fig. 2 sweep \
     over exactly N objects, e.g. sweep2), or the recoverable family: rec-cas, rec-tas \
     (recovery sections, doc/RECOVERY.md) and naive-tas (the deliberately \
     non-recoverable baseline)."
  in
  Arg.(value & opt string "fig2" & info [ "protocol"; "p" ] ~docv:"PROTO" ~doc)

let with_protocol name k =
  match Campaign.Spec.resolve_protocol name with
  | Ok p -> k p
  | Error m ->
      Fmt.epr "error: %s@." m;
      1

(* ---- experiment ---- *)

let experiment_cmd =
  let ids_arg =
    let doc = "Experiment ids to run (e.g. E3 E5); all when omitted." in
    Arg.(value & pos_all string [] & info [] ~docv:"ID" ~doc)
  in
  let run ids quick seed =
    let seed = Int64.of_int seed in
    let entries =
      if ids = [] then Experiments.Registry.all
      else
        List.filter_map
          (fun id ->
            match Experiments.Registry.find id with
            | Some e -> Some e
            | None ->
                Fmt.epr "warning: unknown experiment %S (try `ffault list')@." id;
                None)
          ids
    in
    let reports = List.map (fun e -> e.Experiments.Registry.run ~quick ~seed) entries in
    List.iter (fun r -> Fmt.pr "%a@." Experiments.Report.pp r) reports;
    let failed =
      List.filter (fun r -> not r.Experiments.Report.passed) reports
    in
    if failed = [] then begin
      Fmt.pr "@.All %d experiments reproduced.@." (List.length reports);
      0
    end
    else begin
      Fmt.pr "@.%d experiment(s) NOT reproduced: %s@." (List.length failed)
        (String.concat ", " (List.map (fun r -> r.Experiments.Report.id) failed));
      1
    end
  in
  let doc = "Run the paper-reproduction and extension experiments (E1..E14)." in
  Cmd.v (Cmd.info "experiment" ~doc) Term.(const run $ ids_arg $ quick_arg $ seed_arg)

(* ---- list ---- *)

let list_cmd =
  let run () =
    List.iter
      (fun e -> Fmt.pr "%-4s %s@." e.Experiments.Registry.id e.Experiments.Registry.title)
      Experiments.Registry.all;
    0
  in
  let doc = "List the available experiments." in
  Cmd.v (Cmd.info "list" ~doc) Term.(const run $ const ())

(* ---- trace ---- *)

let trace_cmd =
  let rate_arg =
    let doc = "Overriding-fault rate in [0,1]; 1.0 = worst case." in
    Arg.(value & opt float 1.0 & info [ "rate" ] ~docv:"P" ~doc)
  in
  let run proto f t n rate seed =
    with_protocol proto (fun protocol ->
        let params = Protocol.params ?t ~n_procs:n ~f () in
        let setup = Check.setup protocol params in
        let seed64 = Int64.of_int seed in
        let injector =
          if rate >= 1.0 then Fault.Injector.always Fault.Fault_kind.Overriding
          else if rate <= 0.0 then Fault.Injector.never
          else Fault.Injector.probabilistic ~seed:seed64 ~p:rate Fault.Fault_kind.Overriding
        in
        let report =
          Check.run setup ~scheduler:(Sim.Scheduler.random ~seed:seed64) ~injector ()
        in
        let world = Check.world setup in
        Fmt.pr "%s under %a, seed %d:@.@.%a@." report.Check.setup_name Protocol.pp_params
          params seed (Sim.Trace.pp ~world)
          report.Check.result.Sim.Engine.trace;
        if Check.ok report then begin
          Fmt.pr "@.No violations: all processes decided consistently.@.";
          0
        end
        else begin
          Fmt.pr "@.Violations:@.";
          List.iter (fun v -> Fmt.pr "  %a@." Check.pp_violation v) report.Check.violations;
          1
        end)
  in
  let merge_cmd =
    let out_arg =
      let doc = "Merged trace output file." in
      Arg.(
        value & opt string "trace-merged.json" & info [ "o"; "output" ] ~docv:"FILE" ~doc)
    in
    let files_arg =
      let doc = "Chrome trace files to merge (one pid row each, in argument order)." in
      Arg.(non_empty & pos_all file [] & info [] ~docv:"TRACE.json" ~doc)
    in
    let read_file path =
      let ic = open_in_bin path in
      Fun.protect
        ~finally:(fun () -> close_in ic)
        (fun () -> really_input_string ic (in_channel_length ic))
    in
    let run out files =
      let rec load acc = function
        | [] -> Ok (List.rev acc)
        | path :: rest -> (
            match Campaign.Json.of_string (read_file path) with
            | Error m -> Error (Fmt.str "%s: %s" path m)
            | Ok j ->
                let label = Filename.remove_extension (Filename.basename path) in
                load ((label, Campaign.Trace_merge.events_of_trace j) :: acc) rest
            | exception Sys_error m -> Error m)
      in
      match load [] files with
      | Error m ->
          Fmt.epr "error: %s@." m;
          1
      | Ok rows ->
          let oc = open_out out in
          output_string oc (Campaign.Json.to_string (Campaign.Trace_merge.merge rows));
          close_out oc;
          Fmt.pr "wrote %s (%d process row(s), %d event(s)) — open in chrome://tracing@."
            out (List.length rows)
            (List.fold_left (fun n (_, evs) -> n + List.length evs) 0 rows);
          0
    in
    let doc =
      "Merge per-process Chrome traces (worker --trace outputs, a serve --trace file) \
       into one multi-process timeline, one pid row per input."
    in
    Cmd.v (Cmd.info "merge" ~doc) Term.(const run $ out_arg $ files_arg)
  in
  let doc =
    "Run one adversarial execution and print its trace (default), or merge Chrome \
     traces (trace merge)."
  in
  Cmd.group
    ~default:Term.(const run $ protocol_arg $ f_arg $ t_arg $ n_arg $ rate_arg $ seed_arg)
    (Cmd.info "trace" ~doc) [ merge_cmd ]

(* ---- explore ---- *)

let explore_cmd =
  let max_exec_arg =
    let doc = "Execution cap for the exhaustive search." in
    Arg.(value & opt int 500_000 & info [ "max-executions" ] ~docv:"N" ~doc)
  in
  let shrink_arg =
    let doc = "Minimize the witness decision vector before printing its trace." in
    Arg.(value & flag & info [ "shrink" ] ~doc)
  in
  let run proto f t n max_exec shrink =
    with_protocol proto (fun protocol ->
        let params = Protocol.params ?t ~n_procs:n ~f () in
        let setup = Check.setup protocol params in
        let stats = Dfs.explore ~max_executions:max_exec ~max_witnesses:3 setup in
        Fmt.pr "%s %a: %a@." protocol.Protocol.name Protocol.pp_params params Dfs.pp_stats
          stats;
        (match stats.Dfs.witnesses with
        | [] ->
            if stats.Dfs.truncated then
              Fmt.pr "No witness found, but the search was truncated (inconclusive).@."
            else Fmt.pr "Exhaustively verified: no consensus violation exists in this model.@."
        | w :: _ ->
            let decisions, report =
              if shrink then Ffault_verify.Shrink.witness_report setup w.Dfs.decisions
              else (w.Dfs.decisions, w.Dfs.report)
            in
            let world = Check.world setup in
            Fmt.pr
              "@.%s witness (decisions [%a] \xe2\x80\x94 replay with `ffault \
               replay'):@.%a@.@.Violations:@."
              (if shrink then "Shrunk" else "First")
              (Fmt.array ~sep:Fmt.comma Fmt.int)
              decisions (Sim.Trace.pp ~world) report.Check.result.Sim.Engine.trace;
            List.iter (fun v -> Fmt.pr "  %a@." Check.pp_violation v) report.Check.violations);
        if stats.Dfs.witnesses = [] then 0 else 1)
  in
  let doc = "Bounded-exhaustive model checking over schedules and fault choices." in
  Cmd.v (Cmd.info "explore" ~doc)
    Term.(const run $ protocol_arg $ f_arg $ t_arg $ n_arg $ max_exec_arg $ shrink_arg)

(* ---- replay ---- *)

let replay_cmd =
  let decisions_arg =
    let doc = "Comma-separated decision vector from a previous `explore' witness." in
    Arg.(value & opt string "" & info [ "decisions" ] ~docv:"D,D,..." ~doc)
  in
  let run proto f t n decisions =
    with_protocol proto (fun protocol ->
        let params = Protocol.params ?t ~n_procs:n ~f () in
        let setup = Check.setup protocol params in
        match
          if decisions = "" then Ok [||]
          else
            try
              Ok
                (String.split_on_char ',' decisions
                |> List.map (fun s -> int_of_string (String.trim s))
                |> Array.of_list)
            with Failure _ -> Error ()
        with
        | Error () ->
            Fmt.epr "error: --decisions expects a comma-separated list of integers@.";
            1
        | Ok vector ->
            let report = Dfs.replay setup vector in
            let world = Check.world setup in
            Fmt.pr "%a@." (Sim.Trace.pp ~world) report.Check.result.Sim.Engine.trace;
            if Check.ok report then begin
              Fmt.pr "@.No violations.@.";
              0
            end
            else begin
              Fmt.pr "@.Violations:@.";
              List.iter (fun v -> Fmt.pr "  %a@." Check.pp_violation v) report.Check.violations;
              1
            end)
  in
  let doc = "Replay a decision vector (an `explore' witness) and print its trace." in
  Cmd.v (Cmd.info "replay" ~doc)
    Term.(const run $ protocol_arg $ f_arg $ t_arg $ n_arg $ decisions_arg)

(* ---- falsify ---- *)

let falsify_cmd =
  let attempts_arg =
    let doc = "Attempt cap for the portfolio search." in
    Arg.(value & opt int 10_000 & info [ "max-attempts" ] ~docv:"N" ~doc)
  in
  let run proto f t n attempts seed =
    with_protocol proto (fun protocol ->
        let params = Protocol.params ?t ~n_procs:n ~f () in
        let setup = Check.setup protocol params in
        let o =
          Ffault_verify.Falsify.falsify ~max_attempts:attempts ~seed:(Int64.of_int seed)
            setup
        in
        Fmt.pr "%s %a: %a@." protocol.Protocol.name Protocol.pp_params params
          Ffault_verify.Falsify.pp_outcome o;
        match o.Ffault_verify.Falsify.witness with
        | None -> 0
        | Some (_, _, report) ->
            let world = Check.world setup in
            Fmt.pr "@.%a@.@.Violations:@." (Sim.Trace.pp ~world)
              report.Check.result.Sim.Engine.trace;
            List.iter (fun v -> Fmt.pr "  %a@." Check.pp_violation v) report.Check.violations;
            1)
  in
  let doc = "Randomized portfolio falsification (for instances too large for `explore')." in
  Cmd.v (Cmd.info "falsify" ~doc)
    Term.(const run $ protocol_arg $ f_arg $ t_arg $ n_arg $ attempts_arg $ seed_arg)

(* ---- critical ---- *)

let critical_cmd =
  let reduced_arg =
    let doc = "Run in the reduced model with this process always faulty." in
    Arg.(value & opt (some int) None & info [ "reduced" ] ~docv:"PROC" ~doc)
  in
  let run proto f t n reduced =
    with_protocol proto (fun protocol ->
        let params = Protocol.params ?t ~n_procs:n ~f () in
        let setup = Check.setup protocol params in
        let result =
          Ffault_impossibility.Critical.find ?reduced_faulty_proc:reduced setup
        in
        Fmt.pr "%s %a:@.%a@." protocol.Protocol.name Protocol.pp_params params
          Ffault_impossibility.Critical.pp_result result;
        match result with
        | Ffault_impossibility.Critical.Critical _
        | Ffault_impossibility.Critical.Disagreement _ ->
            0
        | Ffault_impossibility.Critical.Not_found _ -> 1)
  in
  let doc =
    "Walk the valency tree to a critical state (or to a disagreeing execution) \xe2\x80\x94 \
     the Theorem 18 proof, executable."
  in
  Cmd.v (Cmd.info "critical" ~doc)
    Term.(const run $ protocol_arg $ f_arg $ t_arg $ n_arg $ reduced_arg)

(* ---- severity ---- *)

let severity_cmd =
  let run () =
    let module Severity = Ffault_hoare.Severity in
    let names = [ "standard"; "overriding"; "silent"; "invisible"; "arbitrary" ] in
    let matrix = Severity.taxonomy_matrix () in
    Fmt.pr "Semantic severity relations between the CAS postconditions@.";
    Fmt.pr "(row vs column: < less severe, > more severe, \xe2\x89\xa1 equivalent, \xe2\x88\xa5 \
            incomparable)@.@.";
    (* pad by display width: the relation glyphs are multibyte UTF-8 *)
    let pad w s =
      let display =
        let n = ref 0 in
        String.iter (fun c -> if Char.code c land 0xC0 <> 0x80 then incr n) s;
        !n
      in
      s ^ String.make (max 0 (w - display)) ' '
    in
    Fmt.pr "%s" (pad 12 "");
    List.iter (fun n -> Fmt.pr "%s" (pad 12 n)) names;
    Fmt.pr "@.";
    List.iter
      (fun a ->
        Fmt.pr "%s" (pad 12 a);
        List.iter
          (fun b ->
            let _, _, r = List.find (fun (x, y, _) -> x = a && y = b) matrix in
            Fmt.pr "%s" (pad 12 (Fmt.str "%a" Severity.pp_relation r)))
          names;
        Fmt.pr "@.")
      names;
    0
  in
  let doc = "Print the fault-severity matrix (decided exhaustively over a finite universe)." in
  Cmd.v (Cmd.info "severity" ~doc) Term.(const run $ const ())

(* ---- hierarchy ---- *)

let hierarchy_cmd =
  let max_f_arg =
    let doc = "Largest f to tabulate." in
    Arg.(value & opt int 4 & info [ "max-f" ] ~docv:"F" ~doc)
  in
  let runs_arg =
    let doc = "Randomized runs per construction check." in
    Arg.(value & opt int 300 & info [ "runs" ] ~docv:"N" ~doc)
  in
  let run max_f runs t seed =
    let t = Option.value t ~default:1 in
    let rows =
      Ffault_impossibility.Hierarchy.table ~runs ~seed:(Int64.of_int seed) ~t ~max_f ()
    in
    List.iter (fun r -> Fmt.pr "%a@." Ffault_impossibility.Hierarchy.pp_row r) rows;
    if List.for_all (fun r -> r.Ffault_impossibility.Hierarchy.consensus_number <> None) rows
    then 0
    else 1
  in
  let doc = "Compute the faulty-CAS consensus hierarchy table." in
  Cmd.v (Cmd.info "hierarchy" ~doc)
    Term.(const run $ max_f_arg $ runs_arg $ t_arg $ seed_arg)

(* ---- multicore ---- *)

let multicore_cmd =
  let domains_arg =
    let doc = "Number of domains (hardware threads)." in
    Arg.(value & opt int 4 & info [ "domains" ] ~docv:"D" ~doc)
  in
  let runs_arg =
    let doc = "Parallel consensus instances to execute." in
    Arg.(value & opt int 1000 & info [ "runs" ] ~docv:"N" ~doc)
  in
  let rate_arg =
    let doc = "Per-CAS fault probability." in
    Arg.(value & opt float 0.3 & info [ "rate" ] ~docv:"P" ~doc)
  in
  let kind_arg =
    let doc =
      "Fault kind to inject: overriding (unconditional write), silent (write dropped), or \
       nonresponsive (the CAS never returns — requires a deadline; see --deadline)."
    in
    Arg.(
      value
      & opt (enum [ ("overriding", `Overriding); ("silent", `Silent); ("nonresponsive", `Nonresponsive) ]) `Overriding
      & info [ "kind" ] ~docv:"KIND" ~doc)
  in
  let deadline_arg =
    let doc =
      "Per-run wall-clock deadline in seconds; a domain still undecided when it expires \
       reports a timeout instead of hanging. Defaults to 1.0 for --kind nonresponsive \
       (which cannot terminate without one), else none."
    in
    Arg.(value & opt (some float) None & info [ "deadline" ] ~docv:"SECONDS" ~doc)
  in
  let stall_arg =
    let doc =
      "Watchdog stall bound in seconds: a domain with no CAS progress for this long is \
       flagged and the run is cancelled. Defaults to max(0.5, 4 x deadline) when a \
       deadline is set, else the watchdog is off."
    in
    Arg.(value & opt (some float) None & info [ "watchdog-stall" ] ~docv:"SECONDS" ~doc)
  in
  let run f t domains runs rate kind deadline stall seed =
    let module R = Ffault_runtime in
    let t = Option.value t ~default:1 in
    let protocol = R.Consensus_mc.Staged { f; t } in
    let style, deadline_s =
      match kind with
      | `Overriding -> (R.Faulty_cas.Override, deadline)
      | `Silent -> (R.Faulty_cas.Suppress, deadline)
      | `Nonresponsive ->
          (* Hang without a deadline can never end; default rather than die. *)
          (R.Faulty_cas.Hang, Some (Option.value deadline ~default:1.0))
    in
    let violations = ref 0 in
    let timeouts = ref 0 in
    let faults = ref 0 in
    let stalls = ref 0 in
    let started = Unix.gettimeofday () in
    for i = 1 to runs do
      let cfg =
        R.Consensus_mc.config
          ~plan_for:(fun o ->
            R.Faulty_cas.plan_probabilistic
              ~seed:(Int64.of_int ((seed * 1_000_003) + (i * 31) + o))
              ~p:rate)
          ~style ?deadline_s ~n_domains:domains protocol
      in
      let r = Ffault_supervise.Mc.execute ?watchdog_stall_s:stall cfg in
      let mc = r.Ffault_supervise.Mc.mc in
      if not (mc.R.Consensus_mc.agreed && mc.R.Consensus_mc.valid) then incr violations;
      timeouts := !timeouts + mc.R.Consensus_mc.timeouts;
      stalls := !stalls + r.Ffault_supervise.Mc.stalls;
      faults := !faults + Array.fold_left ( + ) 0 mc.R.Consensus_mc.faults_per_object
    done;
    let elapsed = Unix.gettimeofday () -. started in
    Fmt.pr
      "%a on %d domains: %d runs, %d violations, %d timed-out domain(s), %d watchdog \
       stall(s), %d observable faults, %.2f s (%.0f decides/s)@."
      R.Consensus_mc.pp_protocol protocol domains runs !violations !timeouts !stalls !faults
      elapsed
      (float_of_int runs /. elapsed);
    if !violations = 0 then 0 else 1
  in
  let doc = "Run the Fig. 3 protocol on real domains with injected faults." in
  Cmd.v (Cmd.info "multicore" ~doc)
    Term.(
      const run $ f_arg $ t_arg $ domains_arg $ runs_arg $ rate_arg $ kind_arg
      $ deadline_arg $ stall_arg $ seed_arg)

(* ---- campaign ---- *)

let campaign_root_arg =
  let doc = "Root directory for campaign artifacts." in
  Arg.(value & opt string "_campaigns" & info [ "root" ] ~docv:"DIR" ~doc)

let campaign_name_arg =
  let doc = "Campaign name (artifact directory under the root)." in
  Arg.(value & opt string "campaign" & info [ "name" ] ~docv:"NAME" ~doc)

let campaign_domains_arg =
  let doc = "Worker domains for the trial pool (0 = recommended count)." in
  Arg.(value & opt int 0 & info [ "domains" ] ~docv:"D" ~doc)

let resolve_domains d = if d <= 0 then Ffault_runtime.Runner.recommended_domains () else d

(* Supervision flags, shared by run and resume. *)

let deadline_flag_arg =
  let doc =
    "Per-trial wall-clock deadline in seconds: a trial still running when it expires is \
     cancelled, retried (see --max-retries), and eventually journaled as a timeout. \
     Required for campaigns over nonresponsive faults on the multicore substrate; \
     without it trials run unsupervised (no watchdog, retries or quarantine)."
  in
  Arg.(value & opt (some float) None & info [ "deadline" ] ~docv:"SECONDS" ~doc)

let max_retries_arg =
  let doc = "Deadline-cancelled attempts to retry (seed-perturbed backoff) before giving up." in
  Arg.(
    value
    & opt int Ffault_supervise.Retry.default_policy.Ffault_supervise.Retry.max_retries
    & info [ "max-retries" ] ~docv:"N" ~doc)

let quarantine_after_arg =
  let doc =
    "Give-ups in one grid cell before the cell degrades: its remaining trials are \
     journaled as quarantined without running."
  in
  Arg.(value & opt int 3 & info [ "quarantine-after" ] ~docv:"K" ~doc)

let adaptive_deadline_arg =
  let doc =
    "Derive a per-cell deadline from each cell's observed trial durations (8 x its p99, \
     capped at --deadline) once enough trials have completed — cuts tail latency on \
     mixed grids where one global deadline must be sized for the slowest cell. \
     Requires --deadline."
  in
  Arg.(value & flag & info [ "adaptive-deadline" ] ~doc)

let supervision_of_flags ~deadline ~max_retries ~quarantine_after ~adaptive =
  match
    Campaign.Pool.supervision ?deadline_s:deadline ~max_retries ~quarantine_after
      ~adaptive_deadline:adaptive ()
  with
  | s -> Ok s
  | exception Invalid_argument m -> Error m

(* Observability flags, shared by run and resume. *)

let progress_arg =
  let doc = "Force the live progress line on (default: auto — on when stderr is a TTY)." in
  Arg.(value & flag & info [ "progress" ] ~doc)

let quiet_arg =
  let doc = "Suppress the live progress line and its final summary." in
  Arg.(value & flag & info [ "quiet" ] ~doc)

let trace_arg =
  let doc =
    "Record a span trace of the whole campaign (pool chunks, trials, shrinks, journal \
     writes) and write it to $(docv) as Chrome trace-event JSON — open it in \
     chrome://tracing or https://ui.perfetto.dev."
  in
  Arg.(value & opt (some string) None & info [ "trace" ] ~docv:"FILE" ~doc)

let show_progress ~progress ~quiet =
  (not quiet) && (progress || Telemetry.Progress.isatty stderr)

let campaign_spec_of_flags ~name ~protocol ~f ~t ~n ~kinds ~rates ~crashes ~crash_rates
    ~persistence ~crash_seed ~trials ~seed =
  let ( let* ) = Result.bind in
  let* f = Campaign.Spec.ints_of_string f in
  let* t = Campaign.Spec.t_values_of_string t in
  let* n = Campaign.Spec.ints_of_string n in
  let* kinds = Campaign.Spec.kinds_of_string kinds in
  let* rates = Campaign.Spec.rates_of_string rates in
  let* crashes = Campaign.Spec.ints_of_string crashes in
  let* crash_rates = Campaign.Spec.rates_of_string crash_rates in
  let* persistence = Campaign.Spec.persistence_of_string persistence in
  Campaign.Spec.validate
    {
      Campaign.Spec.name;
      protocol;
      f_values = f;
      t_values = t;
      n_values = n;
      kinds;
      rates;
      crashes;
      crash_rates;
      persistence;
      crash_seed = Int64.of_int crash_seed;
      trials;
      seed = Int64.of_int seed;
    }

let run_campaign ~resume ~root ~domains ~supervision ~progress ~quiet ~trace spec =
  let domains = resolve_domains domains in
  Fmt.pr "%a@.grid: %d cells × %d trials = %d trials, %d domains@." Campaign.Spec.pp spec
    (Campaign.Grid.n_cells spec) spec.Campaign.Spec.trials
    (Campaign.Grid.total_trials spec) domains;
  Option.iter (fun _ -> Telemetry.Tracer.enable ()) trace;
  let live = Campaign.Live.create spec in
  let reporter =
    if show_progress ~progress ~quiet then
      Some
        (Telemetry.Progress.start ~oc:stderr
           ~render:(fun () -> Campaign.Live.render live)
           ())
    else None
  in
  let result =
    Campaign.Pool.run_dir ~domains ~supervision ~resume ~root
      ~on_skip:(fun () -> Campaign.Live.on_skip live)
      ~observe:(fun r -> Campaign.Live.on_record live r)
      ~on_warn:(fun m -> Fmt.epr "warning: %s@." m)
      spec
  in
  Option.iter Telemetry.Progress.stop reporter;
  Option.iter
    (fun path ->
      Telemetry.Tracer.disable ();
      Telemetry.Tracer.export_to_file path;
      Fmt.pr "trace: %s (%d events, %d dropped) — open in chrome://tracing or Perfetto@."
        path
        (Telemetry.Tracer.event_count ())
        (Telemetry.Tracer.dropped_count ()))
    trace;
  match result with
  | Error m ->
      Fmt.epr "error: %s@." m;
      1
  | Ok summary ->
      Fmt.pr "%a@.artifacts: %s@." Campaign.Pool.pp_summary summary
        (Campaign.Checkpoint.campaign_dir ~root spec);
      0

(* Spec axis flags, shared by run and serve. *)

let spec_file_arg =
  let doc = "Read the campaign spec from $(docv) (key = value lines; see doc/CAMPAIGNS.md). \
             Inline axis flags are ignored when given." in
  Arg.(value & opt (some string) None & info [ "spec" ] ~docv:"FILE" ~doc)

let f_list_arg =
  let doc = "Fault-budget axis: comma list / lo..hi ranges (e.g. 1..3)." in
  Arg.(value & opt string "1" & info [ "f"; "faults" ] ~docv:"LIST" ~doc)

let t_list_arg =
  let doc = "Per-object bound axis (integers or `unbounded')." in
  Arg.(value & opt string "unbounded" & info [ "t"; "bound" ] ~docv:"LIST" ~doc)

let n_list_arg =
  let doc = "Process-count axis." in
  Arg.(value & opt string "3" & info [ "n"; "procs" ] ~docv:"LIST" ~doc)

let kinds_arg =
  let doc = "Fault-kind axis (overriding, silent, invisible, arbitrary, nonresponsive, \
             relaxation)." in
  Arg.(value & opt string "overriding" & info [ "kinds" ] ~docv:"LIST" ~doc)

let rates_arg =
  let doc = "Fault-rate axis in [0,1]." in
  Arg.(value & opt string "0.5" & info [ "rates" ] ~docv:"LIST" ~doc)

let crashes_arg =
  let doc =
    "Crash axis: per-process crash-restart caps to sweep (0 = crash-free, the default). \
     Cells with crashes > 0 run the protocol's recovery section on restart \
     (doc/RECOVERY.md)."
  in
  Arg.(value & opt string "0" & info [ "crashes" ] ~docv:"LIST" ~doc)

let crash_rates_arg =
  let doc = "Crash-rate axis in [0,1]: per-operation crash probability for the seeded \
             crash plan." in
  Arg.(value & opt string "0.0" & info [ "crash-rates" ] ~docv:"LIST" ~doc)

let persistence_arg =
  let doc = "Persistence-mode axis: comma list of `all', `lossy', or `only:<obj>,..'." in
  Arg.(value & opt string "all" & info [ "persistence" ] ~docv:"LIST" ~doc)

let crash_seed_arg =
  let doc =
    "Extra seed mixed into each trial's crash plan, so crash schedules re-roll \
     independently of the fault schedules."
  in
  Arg.(value & opt int 0 & info [ "crash-seed" ] ~docv:"SEED" ~doc)

let trials_arg =
  let doc = "Trials per grid cell." in
  Arg.(value & opt int 100 & info [ "trials" ] ~docv:"K" ~doc)

let campaign_run_cmd =
  let run spec_file name protocol f t n kinds rates crashes crash_rates persistence
      crash_seed trials seed root domains deadline max_retries quarantine_after adaptive
      progress quiet trace =
    let spec =
      match spec_file with
      | Some path -> Campaign.Spec.of_file path
      | None ->
          campaign_spec_of_flags ~name ~protocol ~f ~t ~n ~kinds ~rates ~crashes
            ~crash_rates ~persistence ~crash_seed ~trials ~seed
    in
    match
      Result.bind spec (fun spec ->
          Result.map
            (fun s -> (spec, s))
            (supervision_of_flags ~deadline ~max_retries ~quarantine_after ~adaptive))
    with
    | Error m ->
        Fmt.epr "error: %s@." m;
        1
    | Ok (spec, supervision) ->
        run_campaign ~resume:false ~root ~domains ~supervision ~progress ~quiet ~trace spec
  in
  let doc = "Run a fault-injection campaign over a parameter grid, journaling every trial." in
  Cmd.v (Cmd.info "run" ~doc)
    Term.(
      const run $ spec_file_arg $ campaign_name_arg $ protocol_arg $ f_list_arg $ t_list_arg
      $ n_list_arg $ kinds_arg $ rates_arg $ crashes_arg $ crash_rates_arg
      $ persistence_arg $ crash_seed_arg $ trials_arg $ seed_arg $ campaign_root_arg
      $ campaign_domains_arg $ deadline_flag_arg $ max_retries_arg $ quarantine_after_arg
      $ adaptive_deadline_arg $ progress_arg $ quiet_arg $ trace_arg)

let campaign_resume_cmd =
  let run name root domains deadline max_retries quarantine_after adaptive progress quiet
      trace =
    let dir = Filename.concat root name in
    match
      Result.bind (Campaign.Checkpoint.load_manifest ~dir) (fun spec ->
          Result.map
            (fun s -> (spec, s))
            (supervision_of_flags ~deadline ~max_retries ~quarantine_after ~adaptive))
    with
    | Error m ->
        Fmt.epr "error: %s@." m;
        1
    | Ok (spec, supervision) ->
        run_campaign ~resume:true ~root ~domains ~supervision ~progress ~quiet ~trace spec
  in
  let doc =
    "Resume an interrupted campaign: journaled trials are skipped, the rest executed."
  in
  Cmd.v (Cmd.info "resume" ~doc)
    Term.(
      const run $ campaign_name_arg $ campaign_root_arg $ campaign_domains_arg
      $ deadline_flag_arg $ max_retries_arg $ quarantine_after_arg $ adaptive_deadline_arg
      $ progress_arg $ quiet_arg $ trace_arg)

(* ---- distributed campaign: serve + worker ---- *)

let endpoint_conv =
  let parse s =
    Result.map_error (fun m -> `Msg m) (Dist.Transport.endpoint_of_string s)
  in
  Arg.conv (parse, Dist.Transport.pp_endpoint)

let campaign_serve_cmd =
  let listen_arg =
    let doc = "Endpoint to listen on: unix:PATH or tcp:HOST:PORT." in
    Arg.(
      required & opt (some endpoint_conv) None & info [ "listen" ] ~docv:"ENDPOINT" ~doc)
  in
  let lease_trials_arg =
    let doc = "Trials per lease shard handed to a worker." in
    Arg.(value & opt int 1000 & info [ "lease-trials" ] ~docv:"K" ~doc)
  in
  let lease_timeout_arg =
    let doc =
      "Seconds of silence before a worker's leases expire and their shards are re-leased."
    in
    Arg.(value & opt float 30.0 & info [ "lease-timeout" ] ~docv:"SECONDS" ~doc)
  in
  let hb_interval_arg =
    let doc = "Heartbeat cadence imposed on workers (must be under the lease timeout)." in
    Arg.(value & opt float 2.0 & info [ "hb-interval" ] ~docv:"SECONDS" ~doc)
  in
  let max_workers_arg =
    let doc = "Maximum concurrent worker connections." in
    Arg.(value & opt int 64 & info [ "max-workers" ] ~docv:"N" ~doc)
  in
  let resume_serve_arg =
    let doc = "Resume an interrupted campaign instead of starting fresh." in
    Arg.(value & flag & info [ "resume" ] ~doc)
  in
  let status_arg =
    let doc =
      "Serve a read-only HTTP status endpoint (GET /status, /workers, /metrics, \
       /events) on $(docv) from inside the coordinator loop — scrape it with curl or \
       `ffault campaign status'."
    in
    Arg.(
      value & opt (some endpoint_conv) None & info [ "status" ] ~docv:"ENDPOINT" ~doc)
  in
  let serve_trace_arg =
    let doc =
      "Record spans in the coordinator and merge them with the span batches workers \
       piggyback on their heartbeats into one multi-process Chrome trace at $(docv)."
    in
    Arg.(value & opt (some string) None & info [ "trace" ] ~docv:"FILE" ~doc)
  in
  let run spec_file name protocol f t n kinds rates crashes crash_rates persistence
      crash_seed trials seed root listen lease_trials lease_timeout hb_interval
      max_workers resume status trace deadline max_retries quarantine_after adaptive
      progress quiet =
    let spec =
      match spec_file with
      | Some path -> Campaign.Spec.of_file path
      | None ->
          campaign_spec_of_flags ~name ~protocol ~f ~t ~n ~kinds ~rates ~crashes
            ~crash_rates ~persistence ~crash_seed ~trials ~seed
    in
    let checked =
      Result.bind spec (fun spec ->
          (* validate the flag combination with the Pool builder, then
             ship the raw values — workers rebuild the same record *)
          Result.bind (supervision_of_flags ~deadline ~max_retries ~quarantine_after ~adaptive)
            (fun _ ->
              match
                Dist.Coordinator.config ~lease_trials ~lease_timeout_s:lease_timeout
                  ~hb_interval_s:hb_interval ~max_workers
                  ~supervision:
                    {
                      Dist.Codec.deadline_s = deadline;
                      max_retries;
                      quarantine_after;
                      adaptive_deadline = adaptive;
                    }
                  listen
              with
              | cfg -> Ok (spec, cfg)
              | exception Invalid_argument m -> Error m))
    in
    match checked with
    | Error m ->
        Fmt.epr "error: %s@." m;
        1
    | Ok (spec, cfg) ->
        Fmt.pr "%a@.grid: %d cells × %d trials = %d trials, serving on %a@."
          Campaign.Spec.pp spec (Campaign.Grid.n_cells spec) spec.Campaign.Spec.trials
          (Campaign.Grid.total_trials spec)
          Dist.Transport.pp_endpoint listen;
        let live = Campaign.Live.create spec in
        let reporter =
          if show_progress ~progress ~quiet then
            Some
              (Telemetry.Progress.start ~oc:stderr
                 ~render:(fun () -> Campaign.Live.render live)
                 ())
          else None
        in
        Option.iter (fun _ -> Telemetry.Tracer.enable ()) trace;
        let result =
          Dist.Coordinator.serve ~resume ~root
            ~on_skip:(fun () -> Campaign.Live.on_skip live)
            ~observe:(fun r -> Campaign.Live.on_record live r)
            ~on_warn:(fun m -> Fmt.epr "warning: %s@." m)
            ~on_event:(fun m -> if not quiet then Fmt.epr "[serve] %s@." m)
            ?status cfg spec
        in
        Option.iter Telemetry.Progress.stop reporter;
        (match result with
        | Error m ->
            Fmt.epr "error: %s@." m;
            1
        | Ok s ->
            Fmt.pr "%a@." Campaign.Pool.pp_summary s.Dist.Coordinator.pool;
            Fmt.pr
              "leases: %d granted, %d completed, %d expired; %d worker(s)@.artifacts: %s@."
              s.Dist.Coordinator.leases_granted s.Dist.Coordinator.leases_completed
              s.Dist.Coordinator.leases_expired
              (List.length s.Dist.Coordinator.workers)
              (Campaign.Checkpoint.campaign_dir ~root spec);
            Option.iter
              (fun path ->
                (* one pid row per process: the coordinator's own spans
                   plus whatever each worker shipped on its heartbeats *)
                let rows =
                  ( "coordinator",
                    Campaign.Trace_merge.of_tracer_events (Telemetry.Tracer.drain ()) )
                  :: s.Dist.Coordinator.worker_spans
                in
                let oc = open_out path in
                output_string oc
                  (Campaign.Json.to_string (Campaign.Trace_merge.merge rows));
                close_out oc;
                Fmt.pr
                  "trace: %s (%d process row(s)) — open in chrome://tracing or Perfetto@."
                  path (List.length rows))
              trace;
            0)
  in
  let doc =
    "Coordinate a distributed campaign: shard the grid into leases served to ffault \
     worker processes over a socket; the journal stays exactly-once across worker \
     crashes (doc/DISTRIBUTED.md)."
  in
  Cmd.v (Cmd.info "serve" ~doc)
    Term.(
      const run $ spec_file_arg $ campaign_name_arg $ protocol_arg $ f_list_arg
      $ t_list_arg $ n_list_arg $ kinds_arg $ rates_arg $ crashes_arg $ crash_rates_arg
      $ persistence_arg $ crash_seed_arg $ trials_arg $ seed_arg
      $ campaign_root_arg $ listen_arg $ lease_trials_arg $ lease_timeout_arg
      $ hb_interval_arg $ max_workers_arg $ resume_serve_arg $ status_arg
      $ serve_trace_arg $ deadline_flag_arg $ max_retries_arg $ quarantine_after_arg
      $ adaptive_deadline_arg $ progress_arg $ quiet_arg)

let worker_cmd =
  let connect_arg =
    let doc = "Coordinator endpoint: unix:PATH or tcp:HOST:PORT." in
    Arg.(
      required & opt (some endpoint_conv) None & info [ "connect" ] ~docv:"ENDPOINT" ~doc)
  in
  let worker_name_arg =
    let doc = "Worker identity in the coordinator's Workers report (default hostname-pid)." in
    Arg.(value & opt (some string) None & info [ "name" ] ~docv:"NAME" ~doc)
  in
  let worker_trace_arg =
    let doc =
      "Record this worker's spans: ship them to the coordinator on heartbeats (for \
       `serve --trace' merging) and also write this process's own Chrome trace to \
       $(docv) on exit."
    in
    Arg.(value & opt (some string) None & info [ "trace" ] ~docv:"FILE" ~doc)
  in
  let run connect name domains trace quiet =
    let domains = resolve_domains domains in
    match Dist.Worker.config ?name ~domains connect with
    | exception Invalid_argument m ->
        Fmt.epr "error: %s@." m;
        1
    | cfg -> (
        Option.iter (fun _ -> Telemetry.Tracer.enable ()) trace;
        match
          Dist.Worker.run
            ~on_event:(fun m -> if not quiet then Fmt.epr "[worker] %s@." m)
            ~on_warn:(fun m -> Fmt.epr "[worker] warn: %s@." m)
            ?trace_path:trace cfg
        with
        | Error m ->
            Fmt.epr "error: %s@." m;
            1
        | Ok s ->
            Fmt.pr
              "worker %s: %d lease(s), %d trial(s) run, %d already journaled, \
               %d reconnect(s) — %s@."
              cfg.Dist.Worker.name s.Dist.Worker.leases_run s.Dist.Worker.trials_run
              s.Dist.Worker.trials_skipped s.Dist.Worker.reconnects
              s.Dist.Worker.stop_reason;
            Option.iter (fun path -> Fmt.pr "trace: %s@." path) trace;
            0)
  in
  let doc =
    "Run trials for a distributed campaign coordinator (see ffault campaign serve)."
  in
  Cmd.v (Cmd.info "worker" ~doc)
    Term.(
      const run $ connect_arg $ worker_name_arg $ campaign_domains_arg $ worker_trace_arg
      $ quiet_arg)

let campaign_status_cmd =
  let connect_arg =
    let doc = "The coordinator's status endpoint (the value of its --status flag)." in
    Arg.(
      required & opt (some endpoint_conv) None & info [ "connect" ] ~docv:"ENDPOINT" ~doc)
  in
  let format_arg =
    let doc = "Output format: text (human summary) or json (the raw /status body)." in
    Arg.(
      value
      & opt (enum [ ("text", `Text); ("json", `Json) ]) `Text
      & info [ "format" ] ~docv:"FMT" ~doc)
  in
  let watch_arg =
    let doc =
      "Poll every $(docv) seconds until the campaign is done or the coordinator goes \
       away."
    in
    Arg.(
      value
      & opt (some float) None ~vopt:(Some 2.0)
      & info [ "watch" ] ~docv:"SECONDS" ~doc)
  in
  let get_arg =
    let doc =
      "Fetch this endpoint path instead of the status summary (e.g. /metrics, \
       /workers, /events) and print the body verbatim."
    in
    Arg.(value & opt (some string) None & info [ "get" ] ~docv:"PATH" ~doc)
  in
  let member = Campaign.Json.member in
  let jint j n = match Option.bind (member n j) Campaign.Json.get_int with
    | Some i -> i
    | None -> 0
  in
  let jflt j n =
    match Option.bind (member n j) Campaign.Json.get_float with Some f -> f | None -> 0.0
  in
  let jstr j n =
    match Option.bind (member n j) Campaign.Json.get_str with Some s -> s | None -> "?"
  in
  let render j =
    Fmt.pr "campaign %s (%s): %s@." (jstr j "campaign") (jstr j "protocol")
      (jstr j "state");
    let total = jint j "total" and done_ = jint j "done" in
    Fmt.pr "trials: %d/%d journaled (%.1f%%), %d failure(s), %d timeout(s), %d quarantined@."
      done_ total
      (if total = 0 then 0.0 else 100.0 *. float_of_int done_ /. float_of_int total)
      (jint j "failures") (jint j "timeouts") (jint j "quarantined");
    Fmt.pr "rate: %.1f trials/s, elapsed %.1fs%s@." (jflt j "trials_per_s")
      (jflt j "elapsed_s")
      (match Option.bind (member "eta_s" j) Campaign.Json.get_float with
      | Some eta -> Fmt.str ", eta %.1fs" eta
      | None -> "");
    match member "leases" j with
    | Some l ->
        Fmt.pr
          "workers: %d connected; leases: %d outstanding, %d pending (%d granted, %d \
           completed, %d expired)@."
          (jint j "workers_connected") (jint l "outstanding") (jint l "pending")
          (jint l "granted") (jint l "completed") (jint l "expired")
    | None -> ()
  in
  let run connect format watch get =
    let fetch path =
      match Dist.Http.get connect ~path with
      | Error _ as e -> e
      | Ok r when r.Dist.Http.code <> 200 ->
          Error (Fmt.str "HTTP %d: %s" r.Dist.Http.code (String.trim r.Dist.Http.body))
      | Ok r -> Ok r.Dist.Http.body
    in
    (* one poll; [Ok true] = campaign still running (worth polling again) *)
    let once () =
      match get with
      | Some path ->
          Result.map
            (fun body ->
              print_string body;
              flush stdout;
              true)
            (fetch path)
      | None ->
          Result.bind (fetch "/status") (fun body ->
              match Campaign.Json.of_string body with
              | Error m -> Error (Fmt.str "unparsable /status body: %s" m)
              | Ok j ->
                  (match format with
                  | `Json ->
                      print_string body;
                      flush stdout
                  | `Text -> render j);
                  Ok (jstr j "state" = "running"))
    in
    match watch with
    | None -> (
        match once () with
        | Ok _ -> 0
        | Error m ->
            Fmt.epr "error: %s@." m;
            1)
    | Some interval ->
        (* a fetch error after at least one success is the coordinator
           finishing and going away — a clean end to the watch *)
        let rec loop polled =
          match once () with
          | Ok true ->
              Unix.sleepf (Float.max 0.1 interval);
              loop true
          | Ok false -> 0
          | Error m ->
              if polled then 0
              else begin
                Fmt.epr "error: %s@." m;
                1
              end
        in
        loop false
  in
  let doc =
    "Scrape a running coordinator's status endpoint (see campaign serve --status)."
  in
  Cmd.v (Cmd.info "status" ~doc)
    Term.(const run $ connect_arg $ format_arg $ watch_arg $ get_arg)

let campaign_report_cmd =
  let run name root =
    let dir = Filename.concat root name in
    match Campaign.Report.of_dir ~dir with
    | Error m ->
        Fmt.epr "error: %s@." m;
        1
    | Ok report ->
        Fmt.pr "%s" (Campaign.Report.to_markdown report);
        Campaign.Report.write ~dir report;
        Fmt.pr "@.Wrote %s/report.md and report.json@." dir;
        0
  in
  let doc = "Aggregate a campaign journal into per-cell statistics (markdown + JSON)." in
  Cmd.v (Cmd.info "report" ~doc) Term.(const run $ campaign_name_arg $ campaign_root_arg)

let campaign_diff_cmd =
  let dir_a_arg =
    let doc = "Baseline campaign directory." in
    Arg.(required & pos 0 (some string) None & info [] ~docv:"DIR_A" ~doc)
  in
  let dir_b_arg =
    let doc = "Candidate campaign directory." in
    Arg.(required & pos 1 (some string) None & info [] ~docv:"DIR_B" ~doc)
  in
  let tolerance_arg =
    let doc = "Failure-rate increase below this is sampling noise." in
    Arg.(
      value
      & opt float Campaign.Report.default_tolerance
      & info [ "tolerance" ] ~docv:"EPS" ~doc)
  in
  let run dir_a dir_b tolerance =
    match (Campaign.Report.of_dir ~dir:dir_a, Campaign.Report.of_dir ~dir:dir_b) with
    | Error m, _ | _, Error m ->
        Fmt.epr "error: %s@." m;
        2
    | Ok a, Ok b ->
        let d = Campaign.Report.diff ~tolerance a b in
        Fmt.pr "%a" Campaign.Report.pp_diff d;
        if d.Campaign.Report.regressions = 0 then 0 else 1
  in
  let doc = "Compare two campaign runs cell-by-cell; exit 1 on regressions." in
  Cmd.v (Cmd.info "diff" ~doc) Term.(const run $ dir_a_arg $ dir_b_arg $ tolerance_arg)

let campaign_cmd =
  let doc = "Parallel fault-injection campaigns with persistent, resumable journals." in
  Cmd.group (Cmd.info "campaign" ~doc)
    [
      campaign_run_cmd; campaign_resume_cmd; campaign_serve_cmd; campaign_status_cmd;
      campaign_report_cmd; campaign_diff_cmd;
    ]

(* ---- lint ---- *)

let lint_cmd =
  let format_arg =
    let doc = "Output format: text (grep-able lines) or json (CI artifact shape)." in
    Arg.(value & opt (enum [ ("text", `Text); ("json", `Json) ]) `Text
         & info [ "format" ] ~docv:"FMT" ~doc)
  in
  let rules_arg =
    let doc = "Run only this comma-separated subset of rules." in
    Arg.(value & opt string "" & info [ "rules" ] ~docv:"R,..." ~doc)
  in
  let baseline_arg =
    let doc = "Baseline file: findings listed there are grandfathered, not failed." in
    Arg.(value & opt (some string) None & info [ "baseline" ] ~docv:"FILE" ~doc)
  in
  let write_baseline_arg =
    let doc = "Rewrite the --baseline file from the current findings and exit 0." in
    Arg.(value & flag & info [ "write-baseline" ] ~doc)
  in
  let prune_baseline_arg =
    let doc =
      "Rewrite the --baseline file with entries that no longer match any current \
       finding removed, and exit 0."
    in
    Arg.(value & flag & info [ "prune-baseline" ] ~doc)
  in
  let list_rules_arg =
    let doc = "List the rules (name, layer, severity, summary) and exit." in
    Arg.(value & flag & info [ "list-rules" ] ~doc)
  in
  let explain_arg =
    let doc =
      "Print one rule's summary, rationale and an example finding, then exit."
    in
    Arg.(value & opt (some string) None & info [ "explain" ] ~docv:"RULE" ~doc)
  in
  let typed_arg =
    let doc =
      "Typed-tree pass over cmt files: $(b,auto) runs it when a built tree exists \
       and turns missing/stale cmts into notes; $(b,on) turns them into cmt-missing \
       findings (the CI mode); $(b,off) skips the pass. Bare $(b,--typed) means \
       $(b,on)."
    in
    Arg.(
      value
      & opt ~vopt:`On (enum [ ("auto", `Auto); ("on", `On); ("off", `Off) ]) `Auto
      & info [ "typed" ] ~docv:"MODE" ~doc)
  in
  let paths_arg =
    let doc = "Files or directories to lint (default: lib bin test bench examples)." in
    Arg.(value & pos_all string [] & info [] ~docv:"PATH" ~doc)
  in
  let run format rules baseline write_baseline prune_baseline list_rules explain typed
      paths =
    if list_rules then begin
      List.iter
        (fun r ->
          Fmt.pr "%-22s %-6s %-8s %s@." r.Lint.Rule.name
            (Lint.Rule.layer_to_string r.Lint.Rule.layer)
            (Lint.Finding.severity_to_string r.Lint.Rule.severity)
            r.Lint.Rule.summary)
        Lint.Rule.all;
      0
    end
    else
      match explain with
      | Some name -> (
          match Lint.Rule.find name with
          | None ->
              Fmt.epr "error: unknown rule %S (see `ffault lint --list-rules')@." name;
              2
          | Some r ->
              Fmt.pr "%s (%s rule, %s layer)@.@.  %s@.@.why@.  %s@.@.example@.  %s@."
                r.Lint.Rule.name
                (Lint.Finding.severity_to_string r.Lint.Rule.severity)
                (Lint.Rule.layer_to_string r.Lint.Rule.layer)
                r.Lint.Rule.summary r.Lint.Rule.rationale r.Lint.Rule.example;
              0)
      | None -> (
      let rules =
        match
          String.split_on_char ',' rules
          |> List.map String.trim
          |> List.filter (fun s -> s <> "")
        with
        | [] -> Ok None
        | rs -> (
            match List.find_opt (fun r -> Lint.Rule.find r = None) rs with
            | Some bad ->
                Error
                  (Fmt.str "unknown rule %S (see `ffault lint --list-rules')" bad)
            | None -> Ok (Some rs))
      in
      match rules with
      | Error m ->
          Fmt.epr "error: %s@." m;
          2
      | Ok rules -> (
          let paths =
            if paths = [] then
              List.filter Sys.file_exists [ "lib"; "bin"; "test"; "bench"; "examples" ]
            else paths
          in
          let typed =
            match typed with
            | `Auto -> Lint.Driver.Typed_auto
            | `On -> Lint.Driver.Typed_on
            | `Off -> Lint.Driver.Typed_off
          in
          let result = Lint.Driver.run ?rules ~policy:Lint.Policy.default ~typed paths in
          if write_baseline then
            match baseline with
            | None ->
                Fmt.epr "error: --write-baseline requires --baseline FILE@.";
                2
            | Some path ->
                Lint.Baseline.save ~path (Lint.Baseline.of_findings result.Lint.Driver.findings);
                Fmt.pr "wrote %d entr%s to %s@."
                  (List.length result.Lint.Driver.findings)
                  (if List.length result.Lint.Driver.findings = 1 then "y" else "ies")
                  path;
                0
          else if prune_baseline then
            match baseline with
            | None ->
                Fmt.epr "error: --prune-baseline requires --baseline FILE@.";
                2
            | Some path -> (
                match Lint.Baseline.load ~path with
                | Error m ->
                    Fmt.epr "error: %s@." m;
                    2
                | Ok b ->
                    let kept, dropped =
                      Lint.Baseline.prune b result.Lint.Driver.findings
                    in
                    Lint.Baseline.save ~path kept;
                    Fmt.pr "pruned %d expired entr%s from %s (%d kept)@."
                      (List.length dropped)
                      (if List.length dropped = 1 then "y" else "ies")
                      path (List.length kept);
                    0)
          else
            let baseline =
              match baseline with
              | None -> Ok Lint.Baseline.empty
              | Some path -> Lint.Baseline.load ~path
            in
            match baseline with
            | Error m ->
                Fmt.epr "error: %s@." m;
                2
            | Ok baseline ->
                let report = Lint.Report.make ~baseline result in
                (match format with
                | `Text -> Fmt.pr "%s" (Lint.Report.to_text report)
                | `Json ->
                    Fmt.pr "%s@."
                      (Campaign.Json.to_string (Lint.Report.to_json report)));
                Lint.Report.exit_code report))
  in
  let doc =
    "Statically check the fault-injection and determinism invariants over the source \
     tree: a parsetree pass (raw-atomic, nondeterminism, toplevel-mutable, io-in-lib, \
     catch-all, mli-required, obj-magic, effect-discipline) plus a typed-tree pass \
     over cmt files (alias-escape, poly-compare-abstract, domain-unsafe-capture) \
    that sees through aliases and opens. See `--list-rules' and `--explain RULE'."
  in
  Cmd.v (Cmd.info "lint" ~doc)
    Term.(
      const run $ format_arg $ rules_arg $ baseline_arg $ write_baseline_arg
      $ prune_baseline_arg $ list_rules_arg $ explain_arg $ typed_arg $ paths_arg)

(* ---- netsim ---- *)

let netsim_cmd =
  let schedules_arg =
    let doc = "Number of seed-derived fault schedules to explore." in
    Arg.(value & opt int 1000 & info [ "schedules" ] ~docv:"N" ~doc)
  in
  let workers_arg =
    let doc = "Simulated workers." in
    Arg.(value & opt int 3 & info [ "workers" ] ~docv:"W" ~doc)
  in
  let trials_arg =
    let doc = "Trials in the simulated campaign grid." in
    Arg.(value & opt int 200 & info [ "trials" ] ~docv:"T" ~doc)
  in
  let lease_trials_arg =
    let doc = "Trials per lease (shard size)." in
    Arg.(value & opt int 32 & info [ "lease-trials" ] ~docv:"K" ~doc)
  in
  let schedule_arg =
    let doc =
      "Run only schedule index $(docv) of the sweep (the reproducer mode a \
       violation report points at) instead of exploring."
    in
    Arg.(value & opt (some int) None & info [ "schedule" ] ~docv:"I" ~doc)
  in
  let print_trace_arg =
    let doc = "Print the deterministic event trace of the run (with --schedule)." in
    Arg.(value & flag & info [ "print-trace" ] ~doc)
  in
  let break_complete_arg =
    let doc =
      "Plant the lease-retirement bug (retire a lease on Complete without \
       checking the journal) — a self-test that the search catches and \
       shrinks a real exactly-once violation."
    in
    Arg.(value & flag & info [ "break-complete" ] ~doc)
  in
  let break_fencing_arg =
    let doc =
      "Plant the epoch-fencing bug (trust a stale-epoch Complete from a \
       previous coordinator incarnation) — a self-test that the search \
       catches and shrinks a coordinator-crash violation."
    in
    Arg.(value & flag & info [ "break-fencing" ] ~doc)
  in
  let pp_violation_report (v : Netsim.Search.report) ~seed_cli =
    Fmt.pr "@.VIOLATION at schedule %d (seed %Ld): %s@." v.Netsim.Search.s_index
      v.Netsim.Search.s_seed
      (Netsim.Sim.violation_to_string v.Netsim.Search.s_violation);
    Fmt.pr "  fired atoms: %d; shrunk to %d (%d probe(s)): %s@."
      v.Netsim.Search.s_fired
      (List.length v.Netsim.Search.s_shrunk)
      v.Netsim.Search.s_probes
      (Netsim.Sim.violation_to_string v.Netsim.Search.s_shrunk_violation);
    List.iter
      (fun a -> Fmt.pr "    %s@." (Netsim.Fault_plan.atom_to_string a))
      v.Netsim.Search.s_shrunk;
    Fmt.pr "  reproduce: ffault netsim --seed %d --schedule %d --print-trace@."
      seed_cli v.Netsim.Search.s_index
  in
  let run schedules seed workers trials lease_trials schedule print_trace
      break_complete break_fencing =
    let config =
      Netsim.Sim.config ~workers ~trials ~lease_trials
        ~verify_complete:(not break_complete)
        ~fence_epochs:(not break_fencing) ()
    in
    let root = Int64.of_int seed in
    match schedule with
    | Some i ->
        let sseed = Netsim.Search.schedule_seed ~root i in
        let r = Netsim.Sim.run config ~seed:sseed in
        if print_trace then
          List.iter (fun l -> Fmt.pr "%s@." l) r.Netsim.Sim.trace;
        Fmt.pr "schedule %d (seed %Ld): %d record(s), %d fired atom(s), %d event(s), %dms virtual@."
          i sseed
          (List.length r.Netsim.Sim.records)
          (List.length r.Netsim.Sim.fired)
          r.Netsim.Sim.events
          (r.Netsim.Sim.end_ns / 1_000_000);
        (match r.Netsim.Sim.violation with
        | None ->
            Fmt.pr "exactly-once holds@.";
            0
        | Some v ->
            Fmt.pr "VIOLATION: %s@." (Netsim.Sim.violation_to_string v);
            1)
    | None ->
        let t0 = Unix.gettimeofday () in
        let sweep =
          Netsim.Search.explore ~config ~root ~schedules ()
        in
        let dt = Unix.gettimeofday () -. t0 in
        Fmt.pr "explored %d/%d schedule(s) in %.1fs (%.0f schedules/s, %d events)@."
          sweep.Netsim.Search.explored schedules dt
          (float_of_int sweep.Netsim.Search.explored /. Float.max dt 1e-9)
          sweep.Netsim.Search.total_events;
        (match sweep.Netsim.Search.violations with
        | [] ->
            Fmt.pr "exactly-once holds on every schedule@.";
            0
        | v :: _ ->
            pp_violation_report v ~seed_cli:seed;
            1)
  in
  let doc =
    "Deterministic single-process simulation of the distributed campaign \
     layer: explore seed-derived fault schedules (drop, duplication, \
     reordering, latency, partitions, worker crashes) against the real \
     coordinator engine and check the exactly-once journal invariant, \
     shrinking any violation to a minimal fault set."
  in
  Cmd.v (Cmd.info "netsim" ~doc)
    Term.(
      const run $ schedules_arg $ seed_arg $ workers_arg $ trials_arg
      $ lease_trials_arg $ schedule_arg $ print_trace_arg $ break_complete_arg
      $ break_fencing_arg)

let main_cmd =
  let doc = "reproduction of \"Functional Faults\" (Sheffi & Petrank, 2020)" in
  let info = Cmd.info "ffault" ~version:"1.0.0" ~doc in
  Cmd.group info
    [
      experiment_cmd; list_cmd; trace_cmd; explore_cmd; replay_cmd; falsify_cmd; critical_cmd;
      severity_cmd; hierarchy_cmd; multicore_cmd; campaign_cmd; worker_cmd; netsim_cmd;
      lint_cmd;
    ]

let () = exit (Cmd.eval' main_cmd)
