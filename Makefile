# Convenience targets for the ffault reproduction.

.PHONY: all build test experiments experiments-quick bench examples clean

all: build

build:
	dune build @all

test:
	dune runtest --force --no-buffer

experiments:
	dune exec bin/main.exe -- experiment

experiments-quick:
	dune exec bin/main.exe -- experiment --quick

bench:
	dune exec bench/main.exe

examples:
	dune exec examples/quickstart.exe
	dune exec examples/leader_election.exe
	dune exec examples/replicated_log.exe
	dune exec examples/fault_lab.exe
	dune exec examples/hierarchy_tour.exe
	dune exec examples/degradation_study.exe
	dune exec examples/relaxed_queue.exe

clean:
	dune clean
