# Convenience targets for the ffault reproduction.

.PHONY: all build test lint lint-json lint-baseline lint-prune experiments experiments-quick bench bench-smoke examples campaign-smoke chaos-smoke dist-chaos-smoke coord-chaos-smoke netsim-smoke recover-smoke check clean

all: build

build:
	dune build @all

test:
	dune runtest --force --no-buffer

# Static analysis: the fault-injection / determinism invariants
# (doc/LINT.md), parsetree AND typed-tree passes. Builds first —
# @check leaves a cmt for every module, executables included — so
# --typed=on can demand one per .ml. Fails on any finding not
# suppressed in-source or grandfathered in lint-baseline.json.
lint:
	dune build @check
	dune exec bin/main.exe -- lint --typed=on --baseline lint-baseline.json

# Same run, machine-readable; CI archives the output as lint.json.
lint-json:
	dune build @check
	dune exec bin/main.exe -- lint --typed=on --baseline lint-baseline.json --format json

# Regenerate the grandfathering baseline from the current findings.
lint-baseline:
	dune build @check
	dune exec bin/main.exe -- lint --typed=on --baseline lint-baseline.json --write-baseline

# Drop baseline entries that no longer match any current finding.
lint-prune:
	dune build @check
	dune exec bin/main.exe -- lint --typed=on --baseline lint-baseline.json --prune-baseline

# The full local gate: what CI runs, minus the artifact uploads.
check: build test lint campaign-smoke chaos-smoke dist-chaos-smoke coord-chaos-smoke netsim-smoke recover-smoke

experiments:
	dune exec bin/main.exe -- experiment

experiments-quick:
	dune exec bin/main.exe -- experiment --quick

bench:
	dune exec bench/main.exe

# One measurement per workload under a millisecond quota: proves every
# bench still runs and emits its BENCH_<group>.json, without the cost of
# real timing. CI runs this on every push.
bench-smoke:
	dune exec bench/main.exe -- --smoke campaign netsim dist recover b1 e1

examples:
	dune exec examples/quickstart.exe
	dune exec examples/leader_election.exe
	dune exec examples/replicated_log.exe
	dune exec examples/fault_lab.exe
	dune exec examples/hierarchy_tour.exe
	dune exec examples/degradation_study.exe
	dune exec examples/relaxed_queue.exe

# A 200-trial end-to-end campaign: run, report, and a self-diff that must
# come back regression-free. Exercises the whole artifact pipeline in CI.
campaign-smoke:
	rm -rf _campaigns/ci-smoke
	dune exec bin/main.exe -- campaign run --name ci-smoke --protocol fig3 \
	  -f 1..2 -t 1 -n 3 --rates 0.3,0.6 --trials 50 --domains 2 \
	  --trace _campaigns/ci-smoke/trace.json
	dune exec bin/main.exe -- campaign report --name ci-smoke
	dune exec bin/main.exe -- campaign diff _campaigns/ci-smoke _campaigns/ci-smoke

# Crash-tolerance end to end: SIGKILL a live campaign mid-flight, resume
# it, and assert the journal holds every trial exactly once.
chaos-smoke:
	sh scripts/chaos_smoke.sh

# The distributed flavour: coordinator + three workers over a Unix
# socket, SIGKILL one worker mid-campaign, assert the exactly-once
# journal and a reassigned lease in the Workers report.
dist-chaos-smoke:
	sh scripts/dist_chaos_smoke.sh

# Coordinator failover end to end: SIGKILL the live coordinator
# mid-campaign, `serve --resume` it as the next epoch, and assert the
# exactly-once journal plus every worker reattaching through its
# reconnect backoff without a process restart.
coord-chaos-smoke:
	sh scripts/coord_chaos_smoke.sh

# The crash-restart subsystem end to end: the naive baseline must
# violate recoverable linearizability under crash-only schedules (with
# the violation crash-attributed and its witness shrunk), the
# recoverable protocols must stay clean, and a crash-axis campaign must
# survive SIGKILL+resume and the distributed serve/worker path with the
# journal exactly-once. See doc/RECOVERY.md.
recover-smoke:
	sh scripts/recover_smoke.sh

# The fencing self-test sweep stops at its first catch (seed 2 hits at
# schedule 7); the 50-schedule bound is headroom, not the usual cost.
FENCING_SEED = 2
FENCING_SCHEDULES = 50

# Deterministic simulation of the distributed layer: a few hundred
# seed-derived fault schedules (drops, dups, reordering, partitions,
# worker AND coordinator crashes) against the real coordinator engine;
# any exactly-once violation fails the target, printing a shrunk
# reproducer. Also self-tests the search by planting two bugs — lease
# retirement without a journal check, and trusting stale-epoch
# Completes from a dead incarnation — and requiring both to be caught.
netsim-smoke:
	dune exec bin/main.exe -- netsim --schedules 300 --seed 7
	@echo "-- planted-bug self-test (expected to catch a violation) --"
	@if dune exec bin/main.exe -- netsim --schedules 50 --seed 7 --break-complete; then \
	  echo "netsim-smoke: planted bug NOT caught"; exit 1; \
	else echo "netsim-smoke: planted bug caught and shrunk (expected)"; fi
	@echo "-- planted fencing-bug self-test (expected to catch a violation) --"
	@if dune exec bin/main.exe -- netsim --schedules $(FENCING_SCHEDULES) --seed $(FENCING_SEED) --break-fencing; then \
	  echo "netsim-smoke: planted fencing bug NOT caught"; exit 1; \
	else echo "netsim-smoke: planted fencing bug caught and shrunk (expected)"; fi

clean:
	dune clean
