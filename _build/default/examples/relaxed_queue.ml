(* Relaxed data structures through the functional-faults lens (paper §6):
   a k-relaxed dequeue — it may return any of the first k elements — is
   just a Dequeue operation with an ⟨O, Φ′ₖ⟩-fault. This example runs a
   telemetry pipeline over a relaxed queue and shows the Definition-1
   machinery watching it: every relaxation shows up in the trace, is
   classified as a structured fault, and the FIFO damage stays within the
   configured distance while no reading is ever lost.

     dune exec examples/relaxed_queue.exe *)

module Sim = Ffault_sim
module Fault = Ffault_fault
module Queue_spec = Ffault_hoare.Queue_spec
module Triple = Ffault_hoare.Triple
module Classify = Ffault_hoare.Classify
open Ffault_objects

let k = 3 (* relaxation distance *)
let sensors = 2
let readings = 4

let () =
  let world =
    Sim.World.make ~n_procs:(sensors + 1) [ Sim.World.obj ~label:"telemetry" Kind.Queue ]
  in
  let q = Obj_id.of_int 0 in
  let processed = ref [] in
  let body me () =
    if me < sensors then begin
      (* sensor: push its readings *)
      for r = 1 to readings do
        Sim.Proc.enqueue q (Value.Int ((1000 * (me + 1)) + r))
      done;
      Value.Int 0
    end
    else begin
      (* collector: drain everything *)
      let remaining = ref (sensors * readings) in
      while !remaining > 0 do
        let v = Sim.Proc.dequeue q in
        if not (Value.is_bottom v) then begin
          processed := v :: !processed;
          decr remaining
        end
      done;
      Value.Int 1
    end
  in
  let budget = Fault.Budget.create ~max_faulty_objects:1 ~max_faults_per_object:None () in
  let cfg =
    Sim.Engine.config ~allowed_faults:[ Fault.Fault_kind.Relaxation ]
      ~max_steps_per_proc:2000 ~world ~budget ()
  in
  let rng = Ffault_prng.Rng.make ~seed:2026L in
  let injector =
    Fault.Injector.custom ~name:"k-relaxer" (fun ctx ->
        if Op.equal ctx.Fault.Injector.op Op.Dequeue && Ffault_prng.Rng.bernoulli rng ~p:0.5
        then
          Fault.Injector.Fault
            {
              kind = Fault.Fault_kind.Relaxation;
              payload = Some (Value.Int (1 + Ffault_prng.Rng.int rng (k - 1)));
            }
        else Fault.Injector.No_fault)
  in
  let result =
    Sim.Engine.run cfg
      ~scheduler:(Sim.Scheduler.random ~seed:11L)
      ~injector
      ~bodies:(Array.init (sensors + 1) body)
      ()
  in
  Fmt.pr "Telemetry pipeline over a %d-relaxed queue (p = 0.5 relaxation):@.@." k;
  (* Walk the trace: show each dequeue with its classification + distance. *)
  List.iter
    (fun ev ->
      match ev with
      | Sim.Trace.Op_step { op = Op.Dequeue; pre_state; post_state; response; _ } ->
          let step =
            { Triple.kind = Kind.Queue; pre_state; op = Op.Dequeue; post_state; response }
          in
          let verdict = Classify.classify_step step in
          let distance = Option.value ~default:0 (Queue_spec.dequeue_distance step) in
          if not (Value.is_bottom response) then
            Fmt.pr "  deq -> %-6s distance %d   [%a]@." (Value.to_string response) distance
              Classify.pp_verdict verdict
      | _ -> ())
    result.Sim.Engine.trace;
  let got = List.length !processed in
  let distinct =
    List.length (List.sort_uniq Value.compare !processed)
  in
  Fmt.pr "@.%d readings pushed, %d processed, %d distinct (loss/duplication would show \
          here);@." (sensors * readings) got distinct;
  Fmt.pr "relaxations charged to the fault budget: %d@."
    (Fault.Budget.total_faults result.Sim.Engine.budget);
  Fmt.pr
    "@.Same model, same budgets, same auditor as the CAS experiments \xe2\x80\x94 \
     quasi-linearizable structures are just functional faults with a friendly \xce\xa6'.@."
