(* A tour of the faulty-CAS consensus hierarchy (paper §5.2): for each f,
   the Fig. 3 construction works at n = f + 1 and the covering adversary
   of Theorem 19 defeats it at n = f + 2 — so f bounded-fault CAS objects
   sit at level f + 1 of Herlihy's hierarchy. For f = 1 the covering
   witness execution is printed in full.

     dune exec examples/hierarchy_tour.exe *)

module Impossibility = Ffault_impossibility
module Consensus = Ffault_consensus
module Protocol = Consensus.Protocol
module Check = Ffault_verify.Consensus_check
module Sim = Ffault_sim

let () =
  Fmt.pr "A correct CAS object has consensus number \xe2\x88\x9e.@.";
  Fmt.pr "How far does it fall with overriding faults (bounded t)?@.@.";
  let rows = Impossibility.Hierarchy.table ~runs:200 ~t:1 ~max_f:4 () in
  List.iter (fun r -> Fmt.pr "  %a@." Impossibility.Hierarchy.pp_row r) rows;
  Fmt.pr "@.The n = f + 2 witness for f = 1, step by step:@.@.";
  let params = Protocol.params ~t:1 ~n_procs:3 ~f:1 () in
  let setup = Check.setup Consensus.Bounded_faults.protocol params in
  let o = Impossibility.Covering.run setup in
  let world = Check.world setup in
  Fmt.pr "%a@.@." (Sim.Trace.pp ~world) o.Impossibility.Covering.report.Check.result.Sim.Engine.trace;
  List.iter
    (fun v -> Fmt.pr "  %a@." Check.pp_violation v)
    o.Impossibility.Covering.report.Check.violations;
  Fmt.pr
    "@.p0 decided solo; p1's single overriding fault erased every trace p0 left; p2 then \
     ran as if p0 never existed (Claim 20's indistinguishability) and decided differently.@."
