(* The fault lab: run each CAS fault kind from the paper's §3.3–3.4
   taxonomy against the naive single-CAS consensus and report what
   breaks — then show which construction repairs it.

     dune exec examples/fault_lab.exe *)

module Consensus = Ffault_consensus
module Protocol = Consensus.Protocol
module Check = Ffault_verify.Consensus_check
module Fault = Ffault_fault
module Fault_kind = Fault.Fault_kind
module Sim = Ffault_sim

let run_against protocol ~allowed ~kind ~t =
  let params = Protocol.params ?t ~n_procs:3 ~f:1 () in
  let setup = Check.setup ~allowed_faults:allowed protocol params in
  Check.run setup
    ~scheduler:(Sim.Scheduler.round_robin ())
    ~injector:(Fault.Injector.always kind)
    ()

let describe report =
  match report.Check.violations with
  | [] -> "consensus holds"
  | vs -> String.concat "; " (List.map (Fmt.str "%a" Check.pp_violation) vs)

let () =
  Fmt.pr "Victim: Herlihy's single-CAS consensus, three processes, one faulty object.@.@.";
  let cases =
    [
      (Fault_kind.Overriding, Some 5, "writes even when the comparison fails");
      (Fault_kind.Silent, Some 5, "refuses to write even when the comparison succeeds");
      (Fault_kind.Invisible, Some 5, "returns a wrong old value");
      (Fault_kind.Arbitrary, Some 5, "writes an arbitrary value");
      (Fault_kind.Nonresponsive, Some 1, "never returns");
    ]
  in
  List.iter
    (fun (kind, t, gloss) ->
      let report =
        run_against Consensus.Single_cas.herlihy ~allowed:[ kind ] ~kind ~t
      in
      Fmt.pr "%-13s (%s):@.    -> %s@." (Fault_kind.to_string kind) gloss (describe report))
    cases;
  Fmt.pr "@.Repairs from the paper:@.@.";
  (* Overriding, unbounded faults: Fig. 2 with f + 1 objects. *)
  let r =
    run_against Consensus.F_tolerant.protocol ~allowed:[ Fault_kind.Overriding ]
      ~kind:Fault_kind.Overriding ~t:None
  in
  Fmt.pr "overriding + fig2 (f+1 objects, t=\xe2\x88\x9e): %s@." (describe r);
  (* Overriding, bounded faults: Fig. 3 with f objects, n <= f+1. *)
  let params = Protocol.params ~t:2 ~n_procs:3 ~f:2 () in
  let setup = Check.setup Consensus.Bounded_faults.protocol params in
  let r =
    Check.run setup
      ~scheduler:(Sim.Scheduler.random ~seed:5L)
      ~injector:(Fault.Injector.always Fault_kind.Overriding)
      ()
  in
  Fmt.pr "overriding + fig3 (f objects all faulty, t=2): %s@." (describe r);
  (* Silent, bounded: the retry loop. *)
  let r =
    run_against Consensus.Silent_retry.protocol ~allowed:[ Fault_kind.Silent ]
      ~kind:Fault_kind.Silent ~t:(Some 5)
  in
  Fmt.pr "silent + retry loop (t=5): %s@." (describe r);
  Fmt.pr
    "@.Invisible faults reduce to data faults (see experiment E8); arbitrary faults need \
     the O(f log f) construction of Jayanti et al.; nonresponsive faults are impossible to \
     mask (\xc2\xa73.4).@."
