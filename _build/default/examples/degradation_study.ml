(* Degradation study: what actually breaks when a construction is pushed
   past its fault budget? Overriding faults keep responses truthful and
   only ever write values some process proposed, so the constructions
   degrade gracefully: consistency can fall, validity and wait-freedom
   never do. This example charts the fall.

     dune exec examples/degradation_study.exe *)

module Consensus = Ffault_consensus
module Protocol = Consensus.Protocol
module Check = Ffault_verify.Consensus_check
module Degradation = Ffault_verify.Degradation
module Fault = Ffault_fault
module Rng = Ffault_prng.Rng

let injector p rng =
  Fault.Injector.probabilistic ~seed:(Rng.next_seed rng) ~p Fault.Fault_kind.Overriding

let () =
  Fmt.pr "Pushing the Fig. 2 sweep past its budget (1000 runs per row, p = 0.5 faults):@.@.";
  Fmt.pr "%-28s %-36s graceful?@." "configuration" "profile";
  (* The sweep over m objects, with ALL m allowed to fault: designed for
     f = m - 1, driven at f = m. *)
  List.iter
    (fun m ->
      let setup =
        Check.setup (Consensus.F_tolerant.with_objects m)
          (Protocol.params ~n_procs:3 ~f:m ())
      in
      let prof =
        Degradation.measure ~runs:1000 ~seed:(Int64.of_int (100 + m)) ~injector:(injector 0.5)
          setup
      in
      Fmt.pr "%-28s %-36s %b@."
        (Fmt.str "sweep over %d object(s)" m)
        (Fmt.str "%a" Degradation.pp_profile prof)
        (Degradation.graceful prof))
    [ 1; 2; 3; 4 ];
  Fmt.pr
    "@.Consistency failures thin out as objects are added (compare E12's curves), and in \
     every single run the decided values were genuine inputs and every process terminated: \
     the damage class never escalates beyond lost agreement.@.@.";
  (* Contrast: an arbitrary-fault adversary with the same budget destroys
     validity too — the degradation is NOT graceful. *)
  let setup =
    Check.setup
      ~allowed_faults:[ Fault.Fault_kind.Arbitrary ]
      (Consensus.F_tolerant.with_objects 2)
      (Protocol.params ~n_procs:3 ~f:2 ())
  in
  let arbitrary_injector rng =
    Fault.Injector.probabilistic ~seed:(Rng.next_seed rng) ~p:0.5 Fault.Fault_kind.Arbitrary
  in
  let prof = Degradation.measure ~runs:1000 ~seed:7L ~injector:arbitrary_injector setup in
  Fmt.pr "Same budget, arbitrary faults instead: %a -> graceful? %b@."
    Degradation.pp_profile prof (Degradation.graceful prof);
  Fmt.pr
    "@.That contrast is the severity order at work (see `ffault severity'): arbitrary \
     strictly dominates overriding, and the extra power shows up exactly as validity \
     violations.@."
