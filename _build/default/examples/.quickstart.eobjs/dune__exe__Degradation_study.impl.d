examples/degradation_study.ml: Ffault_consensus Ffault_fault Ffault_prng Ffault_verify Fmt Int64 List
