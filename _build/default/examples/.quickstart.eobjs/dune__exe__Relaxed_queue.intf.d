examples/relaxed_queue.mli:
