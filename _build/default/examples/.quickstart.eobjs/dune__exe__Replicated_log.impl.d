examples/replicated_log.ml: Array Ffault_consensus Ffault_fault Ffault_objects Ffault_sim Fmt Kind List Op Value
