examples/fault_lab.ml: Ffault_consensus Ffault_fault Ffault_sim Ffault_verify Fmt List String
