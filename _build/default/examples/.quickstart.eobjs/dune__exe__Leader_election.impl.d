examples/leader_election.ml: Array Ffault_runtime Fmt Int64
