examples/quickstart.ml: Ffault_consensus Ffault_fault Ffault_objects Ffault_sim Ffault_verify Fmt List
