examples/relaxed_queue.ml: Array Ffault_fault Ffault_hoare Ffault_objects Ffault_prng Ffault_sim Fmt Kind List Obj_id Op Option Value
