examples/fault_lab.mli:
