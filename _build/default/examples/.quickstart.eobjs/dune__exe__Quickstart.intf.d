examples/quickstart.mli:
