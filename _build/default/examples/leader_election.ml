(* Leader election on degraded hardware: real OCaml domains elect a
   leader each round through the paper's (f, t, f+1)-tolerant consensus
   (Fig. 3), running on atomics whose CAS comparator "glitches" — every
   glitch is an overriding fault injected at the exact architectural
   point the paper identifies (the comparison inside CAS).

     dune exec examples/leader_election.exe *)

module R = Ffault_runtime

let rounds = 8
let workers = 4 (* n = f + 1 with f = 3 *)
let f = 3
let t = 2

let () =
  Fmt.pr "Electing a leader among %d workers, %d rounds.@." workers rounds;
  Fmt.pr "Hardware model: every CAS comparator may glitch (p = 0.25), at most %d objects@." f;
  Fmt.pr "ever misbehave, at most %d observable glitches each (budget enforced).@.@." t;
  let all_agreed = ref true in
  for round = 1 to rounds do
    (* Each worker proposes itself (id offset to keep inputs distinct from
       round numbers). *)
    let inputs = Array.init workers (fun w -> (round * 10) + w) in
    let cfg =
      R.Consensus_mc.config
        ~plan_for:(fun obj ->
          R.Faulty_cas.plan_probabilistic
            ~seed:(Int64.of_int ((round * 97) + obj))
            ~p:0.25)
        ~inputs ~n_domains:workers
        (R.Consensus_mc.Staged { f; t })
    in
    let r = R.Consensus_mc.execute cfg in
    let leader = R.Packed.to_int r.R.Consensus_mc.decisions.(0) in
    let faults = Array.fold_left ( + ) 0 r.R.Consensus_mc.faults_per_object in
    if not (r.R.Consensus_mc.agreed && r.R.Consensus_mc.valid) then all_agreed := false;
    Fmt.pr "round %d: leader = worker %d (proposal %d), agreed=%b valid=%b, %d glitches \
            committed %a@."
      round (leader mod 10) leader r.R.Consensus_mc.agreed r.R.Consensus_mc.valid faults
      (Fmt.array ~sep:Fmt.comma Fmt.int)
      r.R.Consensus_mc.faults_per_object
  done;
  if !all_agreed then
    Fmt.pr "@.Every round elected a unique leader despite the glitching comparators.@."
  else Fmt.pr "@.DISAGREEMENT OBSERVED — this should never happen within budget!@."
