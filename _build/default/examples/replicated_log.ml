(* A replicated command log over faulty hardware — the paper's §1
   motivation (consensus for reliable distributed storage / blockchain),
   built from the universal construction: every log slot is agreed
   through an f-tolerant consensus instance whose CAS objects suffer
   overriding faults.

   Three replicas append bank-style commands concurrently; afterwards all
   replicas must have replayed identical log prefixes and computed the
   same balance.

     dune exec examples/replicated_log.exe *)

module Consensus = Ffault_consensus
module Universal = Consensus.Universal
module Sim = Ffault_sim
module Fault = Ffault_fault
open Ffault_objects

let n_replicas = 3
let deposits_per_replica = 3

let () =
  (* The replicated object is an integer balance: deposits are
     fetch-and-add operations agreed through the log. *)
  let cfg =
    Universal.config ~f:1
      ~slots:((n_replicas * deposits_per_replica) + 2)
      ~kind:Kind.Fetch_and_add ~init:(Value.Int 0) ()
  in
  let world = Sim.World.make ~n_procs:n_replicas (Universal.world_objects cfg) in
  let logs = Array.make n_replicas [] in
  let balances = Array.make n_replicas Value.Bottom in
  let body me () =
    let h = Universal.create cfg ~me in
    for k = 1 to deposits_per_replica do
      (* replica [me] deposits 10·me + k *)
      ignore (Universal.apply h (Op.Fetch_and_add ((10 * me) + k)))
    done;
    logs.(me) <- Universal.log h;
    balances.(me) <- Universal.local_state h;
    Universal.local_state h
  in
  let budget = Fault.Budget.create ~max_faulty_objects:1 ~max_faults_per_object:None () in
  let engine_cfg =
    Sim.Engine.config ~allowed_faults:[ Fault.Fault_kind.Overriding ]
      ~max_steps_per_proc:10_000 ~world ~budget ()
  in
  let result =
    Sim.Engine.run engine_cfg
      ~scheduler:(Sim.Scheduler.random ~seed:99L)
      ~injector:(Fault.Injector.probabilistic ~seed:7L ~p:0.5 Fault.Fault_kind.Overriding)
      ~bodies:(Array.init n_replicas body)
      ()
  in
  assert (Sim.Engine.all_decided result);
  Fmt.pr "Replicated log over faulty CAS (f = 1, overriding faults at p = 0.5):@.@.";
  Array.iteri
    (fun me log ->
      Fmt.pr "replica %d replayed %d entries, balance %a:@." me (List.length log) Value.pp
        balances.(me);
      List.iteri
        (fun slot (proposer, op) ->
          Fmt.pr "  slot %d: %a (proposed by replica %d)@." slot Op.pp op proposer)
        log)
    logs;
  (* Replica logs are views of one agreed history: each is a prefix of the
     longest. *)
  let as_lists = Array.to_list logs in
  let longest = List.fold_left (fun a b -> if List.length b > List.length a then b else a)
      [] as_lists in
  let rec is_prefix a b =
    match a, b with
    | [], _ -> true
    | _, [] -> false
    | (p1, o1) :: ta, (p2, o2) :: tb -> p1 = p2 && Op.equal o1 o2 && is_prefix ta tb
  in
  let consistent = List.for_all (fun l -> is_prefix l longest) as_lists in
  let faults = Fault.Budget.total_faults result.Sim.Engine.budget in
  Fmt.pr "@.%d overriding faults were injected; logs consistent: %b@." faults consistent;
  if not consistent then exit 1
