(* Quickstart: build a world of overriding-faulty CAS objects, run the
   paper's f-tolerant consensus (Fig. 2) on it, and look at the trace.

     dune exec examples/quickstart.exe *)

module Consensus = Ffault_consensus
module Protocol = Consensus.Protocol
module Check = Ffault_verify.Consensus_check
module Fault = Ffault_fault
module Sim = Ffault_sim

let () =
  (* Four processes, up to two faulty objects with unbounded overriding
     faults each. Theorem 5 says f + 1 = 3 CAS objects suffice. *)
  let params = Protocol.params ~n_procs:4 ~f:2 () in
  let setup = Check.setup Consensus.F_tolerant.protocol params in

  (* Adversary: every CAS the budget allows is made faulty; schedule is
     seeded-random. Same seed, same run — everything here replays. *)
  let report =
    Check.run setup
      ~scheduler:(Sim.Scheduler.random ~seed:2024L)
      ~injector:(Fault.Injector.always Fault.Fault_kind.Overriding)
      ()
  in

  let world = Check.world setup in
  Fmt.pr "%a@.@." Sim.World.pp world;
  Fmt.pr "Execution trace (!! marks injected overriding faults):@.%a@.@."
    (Sim.Trace.pp ~world) report.Check.result.Sim.Engine.trace;

  (match Ffault_sim.Engine.decided_values report.Check.result with
  | (_, v) :: _ as decisions ->
      Fmt.pr "All %d processes decided %a — " (List.length decisions)
        Ffault_objects.Value.pp v
  | [] -> Fmt.pr "no process decided?! — ");
  if Check.ok report then Fmt.pr "validity, consistency and wait-freedom all hold.@."
  else begin
    Fmt.pr "VIOLATIONS:@.";
    List.iter (fun v -> Fmt.pr "  %a@." Check.pp_violation v) report.Check.violations
  end;

  (* The engine's fault bookkeeping is independently audited against the
     Hoare-triple layer: every step must satisfy Φ, or the Φ′ the engine
     claims it injected (paper Definition 1). *)
  let audit = Sim.Trace.audit ~world report.Check.result.Sim.Engine.trace in
  Fmt.pr "Hoare audit of the trace: %d mismatches.@." (List.length audit)
