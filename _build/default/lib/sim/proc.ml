open Ffault_objects

type _ Effect.t += Invoke : Obj_id.t * Op.t -> Value.t Effect.t

let invoke obj op = Effect.perform (Invoke (obj, op))

let cas obj ~expected ~desired = invoke obj (Op.Cas { expected; desired })

let read obj = invoke obj Op.Read

let write obj v = ignore (invoke obj (Op.Write v))

let test_and_set obj =
  match invoke obj Op.Test_and_set with
  | Value.Bool b -> b
  | v -> invalid_arg (Fmt.str "Proc.test_and_set: non-boolean response %a" Value.pp v)

let reset obj = ignore (invoke obj Op.Reset)

let enqueue obj v = ignore (invoke obj (Op.Enqueue v))

let dequeue obj = invoke obj Op.Dequeue

let fetch_and_add obj n =
  match invoke obj (Op.Fetch_and_add n) with
  | Value.Int i -> i
  | v -> invalid_arg (Fmt.str "Proc.fetch_and_add: non-integer response %a" Value.pp v)
