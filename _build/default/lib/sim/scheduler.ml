type t = { name : string; pick : enabled:int list -> step:int -> int }

let round_robin () =
  let last = ref (-1) in
  {
    name = "round-robin";
    pick =
      (fun ~enabled ~step:_ ->
        (* smallest enabled id strictly greater than [last], else wrap *)
        let next =
          match List.find_opt (fun p -> p > !last) enabled with
          | Some p -> p
          | None -> List.hd enabled
        in
        last := next;
        next);
  }

let random ~seed =
  let rng = Ffault_prng.Rng.make ~seed in
  {
    name = "random";
    pick = (fun ~enabled ~step:_ -> Ffault_prng.Rng.pick_list rng enabled);
  }

let solo_runs ~order =
  let remaining = ref order in
  let rr = round_robin () in
  {
    name = "solo-runs";
    pick =
      (fun ~enabled ~step ->
        let rec go () =
          match !remaining with
          | [] -> rr.pick ~enabled ~step
          | p :: rest ->
              if List.mem p enabled then p
              else begin
                remaining := rest;
                go ()
              end
        in
        go ());
  }

let scripted picks ~fallback =
  let script = ref picks in
  {
    name = Fmt.str "scripted+%s" fallback.name;
    pick =
      (fun ~enabled ~step ->
        match !script with
        | p :: rest when List.mem p enabled ->
            script := rest;
            p
        | p :: rest ->
            (* scheduled process not enabled: drop the entry and fall back *)
            ignore p;
            script := rest;
            fallback.pick ~enabled ~step
        | [] -> fallback.pick ~enabled ~step);
  }

let prioritized ~weights ~seed =
  let rng = Ffault_prng.Rng.make ~seed in
  {
    name = "prioritized";
    pick =
      (fun ~enabled ~step:_ ->
        let ws =
          Array.of_list
            (List.map (fun p -> if p < Array.length weights then weights.(p) else 1.0) enabled)
        in
        let total = Array.fold_left ( +. ) 0.0 ws in
        if total <= 0.0 then Ffault_prng.Rng.pick_list rng enabled
        else
          let idx = Ffault_prng.Rng.weighted_index rng ws in
          List.nth enabled idx);
  }
