open Ffault_objects

type obj_decl = { kind : Kind.t; init : Value.t; label : string option }

let obj ?label ?init kind =
  { kind; init = Option.value init ~default:(Kind.default_init kind); label }

type t = { decls : obj_decl array; n_procs : int }

let make ~n_procs decls =
  if n_procs < 1 then invalid_arg "World.make: need at least one process";
  if decls = [] then invalid_arg "World.make: need at least one object";
  { decls = Array.of_list decls; n_procs }

let cas_world ~n_procs ~objects =
  make ~n_procs (List.init objects (fun _ -> obj Kind.Cas_only))

let n_procs w = w.n_procs
let n_objects w = Array.length w.decls

let decl w id =
  let i = Obj_id.to_int id in
  if i >= Array.length w.decls then
    invalid_arg (Fmt.str "World: unknown object %a" Obj_id.pp id);
  w.decls.(i)

let kind_of w id = (decl w id).kind
let init_of w id = (decl w id).init

let label_of w id =
  match (decl w id).label with Some l -> l | None -> Fmt.str "%a" Obj_id.pp id

let object_ids w = List.init (Array.length w.decls) Obj_id.of_int

let pp ppf w =
  Fmt.pf ppf "@[<v>world: %d processes, %d objects@,%a@]" w.n_procs (Array.length w.decls)
    (Fmt.list ~sep:Fmt.cut (fun ppf (i, d) ->
         Fmt.pf ppf "  %s : %a (init %a)"
           (match d.label with Some l -> l | None -> Fmt.str "O%d" i)
           Kind.pp d.kind Value.pp d.init))
    (Array.to_list (Array.mapi (fun i d -> (i, d)) w.decls))
