(** Scheduling strategies: who takes the next step.

    A scheduler picks one process among the currently enabled ones (those
    with a pending operation). Schedulers may carry internal state (round-
    robin position, PRNG); construct a fresh one per run for exact
    replay. *)

type t = { name : string; pick : enabled:int list -> step:int -> int }
(** [pick ~enabled ~step] must return a member of [enabled] (the engine
    validates this). [enabled] is non-empty and ascending. *)

val round_robin : unit -> t
(** Cycle fairly through processes. *)

val random : seed:int64 -> t
(** Uniform among enabled, seeded. *)

val solo_runs : order:int list -> t
(** Run each listed process to completion (or a hang) before the next —
    the "solo run" building block of the impossibility constructions.
    Processes not listed run (round-robin) after the listed ones are done. *)

val scripted : int list -> fallback:t -> t
(** Follow the given pick list (skipping entries that are not enabled,
    falling back on mismatch), then delegate to [fallback]. *)

val prioritized : weights:float array -> seed:int64 -> t
(** Pick enabled process [i] with probability proportional to
    [weights.(i)] — used for unfair "starvation-ish" schedules that stress
    wait-freedom. *)
