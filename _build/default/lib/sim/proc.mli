(** Process-side API: the effects a protocol body performs.

    Protocol code runs inside the engine's effect handler; every shared-
    memory access goes through {!invoke} (or the typed shorthands below),
    which suspends the process until the scheduler grants it a step. Local
    computation between invocations is free, matching the paper's model in
    which only shared-object operations are (atomic) steps that the
    adversarial scheduler can interleave.

    Calling these functions outside an engine run raises
    [Effect.Unhandled]. *)

open Ffault_objects

type _ Effect.t +=
  | Invoke : Obj_id.t * Op.t -> Value.t Effect.t
        (** exposed so the engine can install its handler; protocol code
            should use the wrappers below *)

val invoke : Obj_id.t -> Op.t -> Value.t
(** Perform one operation on a shared object; returns its response. *)

val cas : Obj_id.t -> expected:Value.t -> desired:Value.t -> Value.t
(** [cas o ~expected ~desired] returns the {e original} content of [o]
    (paper §2): comparison success is detected by
    [Value.equal old expected] — under an overriding fault this test can
    be positive while the write overrode a different value, which is
    exactly the ambiguity the Fig. 3 protocol wrestles with. *)

val read : Obj_id.t -> Value.t
val write : Obj_id.t -> Value.t -> unit
val test_and_set : Obj_id.t -> bool
val reset : Obj_id.t -> unit
val fetch_and_add : Obj_id.t -> int -> int

val enqueue : Obj_id.t -> Value.t -> unit
val dequeue : Obj_id.t -> Value.t
(** Returns the removed element, or [Bottom] on an empty queue. Under a
    relaxation fault the element may come from deeper in the queue. *)
