lib/sim/proc.ml: Effect Ffault_objects Fmt Obj_id Op Value
