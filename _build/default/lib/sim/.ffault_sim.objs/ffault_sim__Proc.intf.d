lib/sim/proc.mli: Effect Ffault_objects Obj_id Op Value
