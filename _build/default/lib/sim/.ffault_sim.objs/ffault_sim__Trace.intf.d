lib/sim/trace.mli: Ffault_fault Ffault_objects Format Obj_id Op Value World
