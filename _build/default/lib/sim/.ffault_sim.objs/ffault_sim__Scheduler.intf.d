lib/sim/scheduler.mli:
