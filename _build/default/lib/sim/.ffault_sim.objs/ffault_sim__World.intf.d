lib/sim/world.mli: Ffault_objects Format Kind Obj_id Value
