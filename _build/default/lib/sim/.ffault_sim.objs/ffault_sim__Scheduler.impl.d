lib/sim/scheduler.ml: Array Ffault_prng Fmt List
