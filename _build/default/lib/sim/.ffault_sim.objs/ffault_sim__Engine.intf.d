lib/sim/engine.mli: Ffault_fault Ffault_objects Format Scheduler Trace Value World
