lib/sim/trace.ml: Ffault_fault Ffault_hoare Ffault_objects Fmt List Obj_id Op Value World
