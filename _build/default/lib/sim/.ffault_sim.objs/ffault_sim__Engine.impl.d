lib/sim/engine.ml: Array Effect Ffault_fault Ffault_objects Fmt List Obj_id Op Option Printexc Proc Scheduler Semantics Trace Value World
