lib/sim/world.ml: Array Ffault_objects Fmt Kind List Obj_id Option Value
