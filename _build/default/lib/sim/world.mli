(** Static description of a shared-memory system: the fixed set of shared
    objects and the number of processes (paper §2). *)

open Ffault_objects

type obj_decl = { kind : Kind.t; init : Value.t; label : string option }

val obj : ?label:string -> ?init:Value.t -> Kind.t -> obj_decl
(** [obj kind] declares an object with [Kind.default_init] unless [init] is
    given. *)

type t

val make : n_procs:int -> obj_decl list -> t
(** @raise Invalid_argument if [n_procs < 1] or the object list is empty. *)

val cas_world : n_procs:int -> objects:int -> t
(** [cas_world ~n_procs ~objects] is the standard consensus setting:
    [objects] CAS-only objects O₀ … O₍objects₋₁₎, all initialized to ⊥. *)

val n_procs : t -> int
val n_objects : t -> int
val kind_of : t -> Obj_id.t -> Kind.t
val init_of : t -> Obj_id.t -> Value.t
val label_of : t -> Obj_id.t -> string
val object_ids : t -> Obj_id.t list
val pp : Format.formatter -> t -> unit
