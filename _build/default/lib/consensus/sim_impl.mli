(** The {!Algorithms} functor instantiated on the simulator substrate:
    objects are the engine's indexed CAS objects, accessed through
    {!Ffault_sim.Proc} effects. The protocol modules build their bodies
    from these functions. *)

open Ffault_objects

val single_cas_decide : input:Value.t -> Value.t
val sweep_decide : objects:int -> input:Value.t -> Value.t
val staged_decide : f:int -> max_stage:int -> input:Value.t -> Value.t
val silent_retry_decide : input:Value.t -> Value.t
