(** Retry consensus under the silent CAS fault (paper §3.4, "A Silent
    Fault").

    A silent fault suppresses the write of a CAS whose comparison
    succeeded. With a {e bounded} number of faults, the original Herlihy
    protocol retried in a loop still works: while the object holds ⊥,
    every CAS either installs a value or burns one fault from the budget,
    so after at most t wasted attempts some value lands and everyone
    adopts it:

    {v
    decide(val):
      loop
        old ← CAS(O, ⊥, val)
        if old ≠ ⊥ then return old
    v}

    Note the winner also loops: its successful CAS returns ⊥ (success is
    invisible!), and its next CAS returns its own value.

    With an {e unbounded} number of silent faults the loop never
    terminates — the E8 experiment exhibits the non-termination witness,
    matching the paper's remark that the unbounded case reduces to
    nonresponsive data faults. *)

val protocol : Protocol.t
(** Envelope: bounded t (any f, any n — a single object is used, so at
    most one object is ever faulty). *)
