(** Two-process consensus from test-and-set (the classic construction),
    as a second primitive for the functional-fault framework (paper §7:
    "examine other widely used functions with natural faults").

    Objects: two registers R₀, R₁ and one TAS bit T. Process i writes its
    input to Rᵢ, then performs TAS; the process that flips the bit
    (old = false) wins and decides its own input, the loser decides the
    winner's registered value. Correct for n = 2 with no faults — TAS has
    consensus number 2.

    Experiment E13 charts what each structured TAS fault
    ({!Ffault_hoare.Tas_spec}) does to it: a single silent-set or
    phantom-win fault already produces two winners, collapsing the
    consensus number below 2 — the TAS mirror of the paper's headline
    that one natural fault collapses CAS from consensus number ∞. *)

val protocol : Protocol.t
(** Envelope: n ≤ 2 and f = 0 (the classic construction makes no fault
    claims; the faulty rows of E13 are the measurement). *)

val tas_object : Ffault_objects.Obj_id.t
(** The TAS bit's object id (2) — for pinning fault victims. *)
