(** Single-CAS consensus (paper Fig. 1 and the classic fault-free
    baseline).

    The protocol is Herlihy's: each process CASes its input into a single
    object initialized to ⊥ and decides the first value written.

    {!herlihy} is the fault-free baseline — its envelope is f = 0 with any
    number of processes (the consensus number of a correct CAS object is
    ∞, §2).

    {!two_process} is the paper's Theorem 4: the {e same} code is
    (f, ∞, 2)-tolerant against overriding faults — with two processes an
    overriding fault can only make the second CAS "succeed", which writes
    the loser's value but still returns the winner's value as [old], so
    both decide the first value written. The anomaly disappears for n > 2
    (see the E4 witnesses). *)

val herlihy : Protocol.t
(** Envelope: f = 0, any t, any n. *)

val two_process : Protocol.t
(** Envelope: n ≤ 2, any f, any t (Theorem 4 uses one object, so at most
    one object can be faulty anyway). *)
