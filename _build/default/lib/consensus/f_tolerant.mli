(** The f-tolerant construction (paper Fig. 2 / Theorem 5).

    Uses f + 1 CAS objects O₀ … O_f, of which at most f may suffer
    overriding faults — each an {e unbounded} number of times. Every
    process sweeps the objects in order, trying to install its current
    estimate and adopting whatever non-⊥ value it finds instead:

    {v
    decide(val):
      output ← val
      for i = 0 to f:
        old ← CAS(O_i, ⊥, output)
        if old ≠ ⊥ then output ← old
      return output
    v}

    Consistency hinges on the one guaranteed-correct object O_j: the first
    value written there sticks, every later process adopts it at O_j, and
    from then on all processes push the same value (so even faulty later
    objects cannot introduce disagreement).

    Theorem 18 shows f + 1 objects are necessary: this very protocol run
    with only f objects is a standard counterexample input for the E4
    impossibility experiment. *)

val protocol : Protocol.t
(** Envelope: any n, any t, f ≥ 0 faulty objects among the f + 1 used. *)

val with_objects : int -> Protocol.t
(** [with_objects m] is the same sweep over exactly [m] objects,
    {e ignoring} [params.f] for object allocation. Used to run the
    under-provisioned variants (m ≤ f) that the impossibility experiments
    defeat; its envelope is [m >= f + 1]. *)
