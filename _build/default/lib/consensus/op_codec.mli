(** Encoding of shared-object operations as {!Ffault_objects.Value.t}, so
    they can travel through consensus objects (the universal construction
    agrees on {e operations}). *)

open Ffault_objects

val encode : Op.t -> Value.t

val decode : Value.t -> Op.t option
(** Inverse of {!encode}; [None] on values that are not encoded
    operations. *)

val decode_exn : Value.t -> Op.t
(** @raise Invalid_argument when {!decode} returns [None]. *)
