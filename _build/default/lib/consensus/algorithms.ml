module type SUBSTRATE = sig
  type value

  val bottom : value
  val equal : value -> value -> bool
  val mk_staged : value -> int -> value
  val stage_of : value -> int
  val unstage : value -> value
  val cas : int -> expected:value -> desired:value -> value
end

module Make (S : SUBSTRATE) = struct
  (* Fig. 1: decide(val) = let old = CAS(O, ⊥, val) in
     if old ≠ ⊥ then old else val *)
  let single_cas_decide ~input =
    let old = S.cas 0 ~expected:S.bottom ~desired:input in
    if S.equal old S.bottom then input else old

  (* Fig. 2: sweep the objects in order, installing the current estimate
     and adopting any non-⊥ content found. *)
  let sweep_decide ~objects ~input =
    let output = ref input in
    for i = 0 to objects - 1 do
      let old = S.cas i ~expected:S.bottom ~desired:!output in
      if not (S.equal old S.bottom) then output := old
    done;
    !output

  (* Fig. 3, line by line (line numbers in comments refer to the paper's
     figure). The paper's [exp.stage ← s] (line 17) on a non-staged exp —
     only possible right after a stage-0 success — guesses ⟨output, s⟩;
     guesses are self-correcting via line 15, so only performance, not
     correctness, depends on them. *)
  let staged_decide ~f ~max_stage ~input =
    let output = ref input in
    let exp = ref S.bottom in
    let s = ref 0 in
    let result = ref None in
    (* lines 3-18: the first maxStage stages *)
    while !result = None && !s < max_stage do
      let i = ref 0 in
      while !result = None && !i < f do
        let inner = ref true in
        while !result = None && !inner do
          (* line 6 *)
          let old = S.cas !i ~expected:!exp ~desired:(S.mk_staged !output !s) in
          if not (S.equal old !exp) then begin
            (* line 7: failed, or "succeeded" via an overriding fault *)
            if S.stage_of old >= !s then begin
              (* lines 8-14: someone got here at our stage or later *)
              output := S.unstage old;
              s := S.stage_of old;
              if !s = max_stage then result := Some !output (* lines 11-12 *)
              else begin
                exp := S.mk_staged (S.unstage old) (S.stage_of old - 1) (* line 13 *);
                inner := false (* line 14: no need to update O_i *)
              end
            end
            else exp := old (* line 15: still needs to update O_i *)
          end
          else inner := false (* line 16: a successful CAS execution *)
        done;
        if !result = None then begin
          (* line 17: exp.stage ← s *)
          let base = if S.stage_of !exp >= 0 then S.unstage !exp else !output in
          exp := S.mk_staged base !s;
          incr i
        end
      done;
      if !result = None then incr s (* line 18 *)
    done;
    match !result with
    | Some v -> v
    | None ->
        (* lines 19-23: the final stage, on O_0 *)
        let continue_final = ref true in
        while !continue_final do
          let old = S.cas 0 ~expected:!exp ~desired:(S.mk_staged !output max_stage) in
          if (not (S.equal old !exp)) && S.stage_of old < max_stage then exp := old
            (* line 22 *)
          else continue_final := false (* line 23 *)
        done;
        !output (* line 24 *)

  (* §3.4: while the object holds ⊥, every CAS either installs a value or
     burns one silent fault from the budget; the winner's own success is
     invisible, so it too loops until it reads back a value. *)
  let silent_retry_decide ~input =
    let rec loop () =
      let old = S.cas 0 ~expected:S.bottom ~desired:input in
      if S.equal old S.bottom then loop () else old
    in
    loop ()
end
