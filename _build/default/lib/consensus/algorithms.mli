(** The paper's protocol logic, written once over an abstract substrate.

    Both execution substrates — the deterministic simulator
    ({!Ffault_sim}) and the real-multicore runtime ([Ffault_runtime]) —
    instantiate this functor, so the algorithm text that is model-checked
    is the very text that runs on hardware atomics. A substrate supplies
    the value domain (⊥, plain values, ⟨value, stage⟩ pairs) and the CAS
    operation over an indexed family of objects. *)

module type SUBSTRATE = sig
  type value

  val bottom : value
  (** ⊥, the initial content; never a process input. *)

  val equal : value -> value -> bool
  (** The comparison CAS performs; also how a process detects "my CAS
      appears to have succeeded" ([old = exp]). *)

  val mk_staged : value -> int -> value
  (** ⟨v, s⟩ construction (Fig. 3 values). [v] must be a plain value. *)

  val stage_of : value -> int
  (** Stage of a ⟨v, s⟩ pair; [-1] for ⊥ and plain values. *)

  val unstage : value -> value
  (** The v of ⟨v, s⟩; identity on plain values and ⊥. *)

  val cas : int -> expected:value -> desired:value -> value
  (** [cas i ~expected ~desired] performs CAS on object i and returns the
      {e original} content (paper §2). May be faulty. *)
end

module Make (S : SUBSTRATE) : sig
  val single_cas_decide : input:S.value -> S.value
  (** Fig. 1 (= Herlihy's protocol): one CAS on object 0, adopt a non-⊥
      old value, else decide own input. *)

  val sweep_decide : objects:int -> input:S.value -> S.value
  (** Fig. 2 over [objects] objects (Theorem 5 uses objects = f + 1). *)

  val staged_decide : f:int -> max_stage:int -> input:S.value -> S.value
  (** Fig. 3 over f objects with the given stage bound (Theorem 6 uses
      max_stage = t·(4f + f²)). *)

  val silent_retry_decide : input:S.value -> S.value
  (** §3.4 retry loop on object 0 (tolerates bounded silent faults). *)
end
