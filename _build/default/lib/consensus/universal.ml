open Ffault_objects
open Ffault_sim

type config = { kind : Kind.t; init : Value.t; slots : int; f : int }

let config ?(f = 1) ?(slots = 64) ~kind ~init () =
  if f < 0 then invalid_arg "Universal.config: f < 0";
  if slots < 1 then invalid_arg "Universal.config: slots < 1";
  { kind; init; slots; f }

let world_objects cfg =
  List.init
    (cfg.slots * (cfg.f + 1))
    (fun i ->
      World.obj
        ~label:(Fmt.str "slot%d.O%d" (i / (cfg.f + 1)) (i mod (cfg.f + 1)))
        Kind.Cas_only)

type handle = {
  cfg : config;
  me : int;
  mutable next_slot : int;
  mutable state : Value.t;
  mutable seq : int;  (* per-process proposal counter, makes proposals unique *)
  mutable log_rev : (int * Op.t) list;
}

let create cfg ~me = { cfg; me; next_slot = 0; state = cfg.init; seq = 0; log_rev = [] }

(* The Fig. 2 sweep over slot k's own f + 1 objects. Latecomers re-running
   an already-decided instance adopt its settled value (the Theorem 5
   consistency argument does not depend on when deciders arrive). *)
let slot_decide cfg ~slot ~proposal =
  let base = slot * (cfg.f + 1) in
  let output = ref proposal in
  for i = 0 to cfg.f do
    let old =
      Proc.cas (Obj_id.of_int (base + i)) ~expected:Value.Bottom ~desired:!output
    in
    if not (Value.is_bottom old) then output := old
  done;
  !output

let encode_proposal ~me ~seq op = Value.Pair (Pair (Int me, Int seq), Op_codec.encode op)

let decode_proposal v =
  match v with
  | Value.Pair (Pair (Int me, Int _seq), op_v) -> (me, Op_codec.decode_exn op_v)
  | _ -> invalid_arg (Fmt.str "Universal: undecodable slot winner %a" Value.pp v)

let apply h op =
  let proposal = encode_proposal ~me:h.me ~seq:h.seq op in
  h.seq <- h.seq + 1;
  let rec go () =
    if h.next_slot >= h.cfg.slots then failwith "Universal.apply: log capacity exhausted";
    let winner = slot_decide h.cfg ~slot:h.next_slot ~proposal in
    h.next_slot <- h.next_slot + 1;
    let proposer, winner_op = decode_proposal winner in
    let outcome = Semantics.apply_exn h.cfg.kind ~state:h.state winner_op in
    h.state <- outcome.Semantics.post_state;
    h.log_rev <- (proposer, winner_op) :: h.log_rev;
    if Value.equal winner proposal then outcome.Semantics.response else go ()
  in
  go ()

let local_state h = h.state
let log h = List.rev h.log_rev
