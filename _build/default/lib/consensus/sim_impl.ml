open Ffault_objects
open Ffault_sim

module Substrate = struct
  type value = Value.t

  let bottom = Value.Bottom
  let equal = Value.equal
  let mk_staged value stage = Value.Staged { value; stage }
  let stage_of = function Value.Staged { stage; _ } -> stage | _ -> -1
  let unstage = function Value.Staged { value; _ } -> value | v -> v
  let cas i ~expected ~desired = Proc.cas (Obj_id.of_int i) ~expected ~desired
end

include Algorithms.Make (Substrate)
