lib/consensus/universal.ml: Ffault_objects Ffault_sim Fmt Kind List Obj_id Op Op_codec Proc Semantics Value World
