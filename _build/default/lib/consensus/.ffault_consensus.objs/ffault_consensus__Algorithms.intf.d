lib/consensus/algorithms.mli:
