lib/consensus/sim_impl.ml: Algorithms Ffault_objects Ffault_sim Obj_id Proc Value
