lib/consensus/single_cas.ml: Ffault_objects Ffault_sim Kind Protocol Sim_impl World
