lib/consensus/f_tolerant.ml: Ffault_objects Ffault_sim Fmt Kind List Protocol Sim_impl World
