lib/consensus/bounded_faults.mli: Ffault_sim Protocol
