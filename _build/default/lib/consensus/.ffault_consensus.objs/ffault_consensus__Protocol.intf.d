lib/consensus/protocol.mli: Ffault_objects Ffault_sim Format Value World
