lib/consensus/algorithms.ml:
