lib/consensus/sim_impl.mli: Ffault_objects Value
