lib/consensus/op_codec.mli: Ffault_objects Op Value
