lib/consensus/silent_retry.mli: Protocol
