lib/consensus/protocol.ml: Array Ffault_objects Ffault_sim Fmt Value World
