lib/consensus/tas_consensus.mli: Ffault_objects Protocol
