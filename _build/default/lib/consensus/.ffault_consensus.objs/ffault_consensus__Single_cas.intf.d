lib/consensus/single_cas.mli: Protocol
