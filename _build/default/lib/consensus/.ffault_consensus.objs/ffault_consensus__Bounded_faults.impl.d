lib/consensus/bounded_faults.ml: Ffault_objects Ffault_sim Fmt Kind List Op Protocol Sim_impl Trace Value World
