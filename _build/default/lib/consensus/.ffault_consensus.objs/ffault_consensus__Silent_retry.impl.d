lib/consensus/silent_retry.ml: Ffault_objects Ffault_sim Kind Protocol Sim_impl World
