lib/consensus/op_codec.ml: Ffault_objects Fmt Op Value
