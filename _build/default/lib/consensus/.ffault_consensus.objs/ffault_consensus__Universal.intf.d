lib/consensus/universal.mli: Ffault_objects Ffault_sim Kind Op Value World
