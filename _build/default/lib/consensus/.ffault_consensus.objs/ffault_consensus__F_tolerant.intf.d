lib/consensus/f_tolerant.mli: Protocol
