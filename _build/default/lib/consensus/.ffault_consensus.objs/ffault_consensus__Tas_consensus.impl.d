lib/consensus/tas_consensus.ml: Ffault_objects Ffault_sim Kind Obj_id Proc Protocol World
