open Ffault_objects

let encode (op : Op.t) : Value.t =
  match op with
  | Cas { expected; desired } -> Pair (Str "cas", Pair (expected, desired))
  | Read -> Pair (Str "read", Bottom)
  | Write v -> Pair (Str "write", v)
  | Test_and_set -> Pair (Str "tas", Bottom)
  | Reset -> Pair (Str "reset", Bottom)
  | Fetch_and_add n -> Pair (Str "faa", Int n)
  | Enqueue v -> Pair (Str "enq", v)
  | Dequeue -> Pair (Str "deq", Bottom)

let decode (v : Value.t) : Op.t option =
  match v with
  | Pair (Str "cas", Pair (expected, desired)) -> Some (Op.Cas { expected; desired })
  | Pair (Str "read", Bottom) -> Some Op.Read
  | Pair (Str "write", v) -> Some (Op.Write v)
  | Pair (Str "tas", Bottom) -> Some Op.Test_and_set
  | Pair (Str "reset", Bottom) -> Some Op.Reset
  | Pair (Str "faa", Int n) -> Some (Op.Fetch_and_add n)
  | Pair (Str "enq", v) when not (Value.is_bottom v) -> Some (Op.Enqueue v)
  | Pair (Str "deq", Bottom) -> Some Op.Dequeue
  | _ -> None

let decode_exn v =
  match decode v with
  | Some op -> op
  | None -> invalid_arg (Fmt.str "Op_codec.decode_exn: %a is not an encoded operation" Value.pp v)
