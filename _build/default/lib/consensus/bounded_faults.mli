(** The bounded-faults construction (paper Fig. 3 / Theorem 6).

    Uses only f CAS objects O₀ … O₍f₋₁₎ — {e all} of which may suffer
    overriding faults, at most t each — and tolerates up to f + 1
    processes. The execution proceeds in maxStage + 1 stages with
    maxStage = t·(4f + f²): in each stage every process tries to install
    ⟨output, stage⟩ into each object in order, adopting the value of any
    object it finds at a later-or-equal stage; the final stage installs
    ⟨output, maxStage⟩ into O₀.

    Because a CAS object offers no read, the only success signal is
    [old = exp]; on a mismatch a process cannot distinguish "my CAS
    failed" from "my CAS overrode the content" — both are handled by
    adopting or retrying, and the stage machinery guarantees (Observation
    10) a long-enough fault-free window for one value to sweep all
    objects and win.

    Theorem 19 shows this is tight: with n = f + 2 processes, f objects
    do not suffice (see the covering adversary in
    [Ffault_impossibility.Covering]). *)

val protocol : Protocol.t
(** Envelope: f ≥ 1, bounded t, n ≤ f + 1. *)

val max_stage : f:int -> t:int -> int
(** t·(4f + f²), the paper's stage bound (line 2 of Fig. 3). *)

val with_max_stage : int -> Protocol.t
(** [with_max_stage m] runs the protocol with an explicit stage bound
    instead of the paper's t·(4f + f²) — used by the ablation experiment
    that probes how small the bound can get before consistency breaks. Its
    envelope requires [m >= max_stage ~f ~t]. *)

val stages_reached : Ffault_sim.Trace.t -> int
(** The largest stage value appearing in any CAS desired-value across the
    trace — measured against the maxStage bound in experiment E3. *)
