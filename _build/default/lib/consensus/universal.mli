(** A universal construction over fault-tolerant consensus (paper §1/§2:
    consensus is universal — it implements any wait-free object).

    This is a slot-log universal object in the style of Herlihy's
    construction, adapted to one-shot consensus instances: the object's
    history is a log of operations, one per slot, and slot k's operation
    is agreed through a dedicated f-tolerant consensus instance (the
    Fig. 2 sweep over f + 1 CAS objects, which remains correct for
    latecomers re-deciding an already-settled instance). To apply an
    operation, a process proposes it for the next slot it has not yet
    replayed; if another operation wins the slot, the process applies that
    winner to its replica and retries at the next slot. Every lost slot
    carries someone else's operation, so with a bounded number of
    operations in flight every apply terminates.

    Because the base objects are only overriding-faulty CAS objects within
    an (f, t) budget, the whole object inherits the construction's fault
    tolerance: at most f of any slot's f + 1 objects can be faulty.

    Runs under the simulator engine (bodies perform {!Ffault_sim.Proc}
    effects). Experiment E9 builds a fetch-and-add counter on top and
    checks linearizability. *)

open Ffault_objects
open Ffault_sim

type config = {
  kind : Kind.t;  (** sequential type of the implemented object *)
  init : Value.t;  (** its initial state *)
  slots : int;  (** log capacity ≥ total operations ever applied *)
  f : int;  (** fault budget per Definition 3; each slot uses f + 1 CAS objects *)
}

val config : ?f:int -> ?slots:int -> kind:Kind.t -> init:Value.t -> unit -> config
(** Defaults: f = 1, slots = 64. *)

val world_objects : config -> World.obj_decl list
(** The flat base-object declarations: [slots × (f + 1)] CAS objects. *)

type handle
(** A process's view of the universal object: its replica state and log
    position. Create one per process, inside its body. *)

val create : config -> me:int -> handle

val apply : handle -> Op.t -> Value.t
(** Agree on a slot for the operation, replay intervening winners, and
    return the operation's response at its agreed position.
    @raise Failure if the log capacity is exhausted. *)

val local_state : handle -> Value.t
(** The replica state after everything this handle has replayed. *)

val log : handle -> (int * Op.t) list
(** The (proposer, operation) log this handle has replayed, oldest
    first. *)
