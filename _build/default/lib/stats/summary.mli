(** Streaming summary statistics (Welford) and percentile estimation.

    Used by the experiment driver and benches to aggregate per-run
    measurements (step counts, stage counts, latencies). *)

type t
(** A mutable accumulator. *)

val create : unit -> t
val add : t -> float -> unit
val add_int : t -> int -> unit

val count : t -> int
val mean : t -> float
(** 0 when empty. *)

val variance : t -> float
(** Sample variance (n - 1 denominator); 0 for fewer than two samples. *)

val stddev : t -> float
val min_value : t -> float
(** [infinity] when empty. *)

val max_value : t -> float
(** [neg_infinity] when empty. *)

val percentile : t -> float -> float
(** [percentile s p] for p in [\[0, 100\]], by linear interpolation over
    the retained samples. The accumulator retains all samples for this
    purpose (fine for the 10³–10⁶ sample counts we use).
    @raise Invalid_argument if empty or p out of range. *)

val pp : Format.formatter -> t -> unit
(** "n=…, mean=…, sd=…, min=…, p50=…, p99=…, max=…". *)
