(** Plain-text table rendering for experiment reports.

    Produces aligned, pipe-separated tables (also valid Markdown) from a
    header row and string cells. The experiment driver uses this for every
    table in EXPERIMENTS.md. *)

type t

val create : columns:string list -> t
(** @raise Invalid_argument on an empty column list. *)

val add_row : t -> string list -> unit
(** @raise Invalid_argument if the row width differs from the header. *)

val add_rows : t -> string list list -> unit

val pp : Format.formatter -> t -> unit
(** Render with a header separator, columns padded to their widest cell. *)

val to_string : t -> string

(** Cell formatting helpers. *)

val cell_int : int -> string
val cell_bool : bool -> string
(** "yes" / "no". *)

val cell_float : ?decimals:int -> float -> string
val cell_opt : ('a -> string) -> 'a option -> string
(** "-" for [None]. *)
