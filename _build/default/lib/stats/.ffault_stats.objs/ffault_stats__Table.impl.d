lib/stats/table.ml: Char Fmt List Printf String
