type t = { columns : string list; mutable rows : string list list (* reversed *) }

let create ~columns =
  if columns = [] then invalid_arg "Table.create: empty column list";
  { columns; rows = [] }

let add_row t row =
  if List.length row <> List.length t.columns then
    invalid_arg "Table.add_row: row width differs from header";
  t.rows <- row :: t.rows

let add_rows t rows = List.iter (add_row t) rows

(* Display width in characters, counting UTF-8 multibyte sequences as one
   column (good enough for the symbols we use: ⊥, ⟨⟩, ∞). *)
let display_width s =
  let n = ref 0 in
  String.iter (fun c -> if Char.code c land 0xC0 <> 0x80 then incr n) s;
  !n

let pp ppf t =
  let rows = List.rev t.rows in
  let widths =
    List.fold_left
      (fun acc row -> List.map2 (fun w cell -> max w (display_width cell)) acc row)
      (List.map display_width t.columns)
      rows
  in
  let pad s w =
    let d = w - display_width s in
    if d <= 0 then s else s ^ String.make d ' '
  in
  let render_row row =
    "| " ^ String.concat " | " (List.map2 pad row widths) ^ " |"
  in
  let sep = "|" ^ String.concat "|" (List.map (fun w -> String.make (w + 2) '-') widths) ^ "|" in
  Fmt.pf ppf "%s@.%s@." (render_row t.columns) sep;
  List.iter (fun row -> Fmt.pf ppf "%s@." (render_row row)) rows

let to_string t = Fmt.str "%a" pp t

let cell_int = string_of_int
let cell_bool b = if b then "yes" else "no"
let cell_float ?(decimals = 2) x = Printf.sprintf "%.*f" decimals x
let cell_opt f = function None -> "-" | Some x -> f x
