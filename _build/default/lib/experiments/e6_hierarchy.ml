module Table = Ffault_stats.Table
module Hierarchy = Ffault_impossibility.Hierarchy

let run ?(quick = false) ?(seed = 0xE6L) () =
  let runs = if quick then 150 else 500 in
  let max_f = if quick then 3 else 5 in
  let table =
    Table.create
      ~columns:
        [ "f (objects)"; "t"; "n = f+1 construction"; "n = f+2 witness"; "consensus number" ]
  in
  let ok = ref true in
  let emit rows =
    List.iter
      (fun (r : Hierarchy.row) ->
        if r.Hierarchy.consensus_number = None then ok := false;
        Table.add_row table
          [
            Table.cell_int r.Hierarchy.f;
            Table.cell_int r.Hierarchy.t;
            Fmt.str "%d/%d runs clean"
              (r.Hierarchy.construction_runs - r.Hierarchy.construction_failures)
              r.Hierarchy.construction_runs;
            Table.cell_bool r.Hierarchy.witness_found;
            Table.cell_opt Table.cell_int r.Hierarchy.consensus_number;
          ])
      rows
  in
  emit (Hierarchy.table ~runs ~seed ~t:1 ~max_f ());
  emit (Hierarchy.table ~runs ~seed:(Int64.add seed 1L) ~t:2 ~max_f:(min 3 max_f) ());
  Report.make ~id:"E6" ~title:"The faulty-CAS consensus hierarchy (\xc2\xa75.2 corollary)"
    ~claim:
      "A set of f overriding-faulty CAS objects with bounded t has consensus number exactly \
       f + 1 \xe2\x80\x94 every Herlihy level is realized by some faulty setting."
    ~passed:!ok
    ~tables:[ ("Consensus numbers", table) ]
    ~notes:
      [
        "A correct CAS object has consensus number \xe2\x88\x9e; a single overriding fault \
         already collapses it to a finite level.";
      ]
    ()
