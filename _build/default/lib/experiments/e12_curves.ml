open Common
module Protocol = Consensus.Protocol
module Table = Ffault_stats.Table
module Mass = Ffault_verify.Mass
module Summary = Ffault_stats.Summary
module Engine = Ffault_sim.Engine

let failure_rate ~runs ~seed ~p setup =
  let s = mass ~injector:(probabilistic_overriding ~p) ~runs ~seed setup in
  float_of_int s.Mass.failure_count /. float_of_int s.Mass.runs

let run ?(quick = false) ?(seed = 0xE12L) () =
  let runs = if quick then 400 else 2000 in
  (* Curve 1: single-CAS consensus at n = 3 vs fault rate. *)
  let curve1 = Table.create ~columns:[ "fault rate p"; "runs"; "failure rate" ] in
  let setup1 = Check.setup Consensus.Single_cas.herlihy (Protocol.params ~n_procs:3 ~f:1 ()) in
  let rates =
    List.map
      (fun p -> (p, failure_rate ~runs ~seed:(Int64.add seed (Int64.of_float (p *. 100.))) ~p setup1))
      [ 0.05; 0.1; 0.2; 0.4; 0.6; 0.9 ]
  in
  List.iter
    (fun (p, r) ->
      Table.add_row curve1
        [ Table.cell_float ~decimals:2 p; Table.cell_int runs; Table.cell_float ~decimals:3 r ])
    rates;
  let monotone_ish =
    (* allow small sampling wiggles: compare first and last *)
    match rates with
    | (_, first) :: _ ->
        let _, last = List.nth rates (List.length rates - 1) in
        last > first
    | [] -> false
  in
  (* Curve 2: the sweep over m all-faulty objects at p = 0.5, n = 3. *)
  let curve2 = Table.create ~columns:[ "objects (all faulty)"; "runs"; "failure rate" ] in
  let m_rates =
    List.map
      (fun m ->
        let setup =
          Check.setup (Consensus.F_tolerant.with_objects m)
            (Protocol.params ~n_procs:3 ~f:m ())
        in
        (m, failure_rate ~runs ~seed:(Int64.add seed (Int64.of_int (1000 + m))) ~p:0.5 setup))
      [ 1; 2; 3; 4 ]
  in
  List.iter
    (fun (m, r) ->
      Table.add_row curve2
        [ Table.cell_int m; Table.cell_int runs; Table.cell_float ~decimals:3 r ])
    m_rates;
  let decaying =
    match m_rates with
    | (_, r1) :: _ ->
        let _, r4 = List.nth m_rates (List.length m_rates - 1) in
        r4 < r1
    | [] -> false
  in
  (* Curve 3: Fig. 3 cost scaling. *)
  let curve3 =
    Table.create
      ~columns:
        [ "f"; "t"; "n"; "maxStage"; "mean ops/proc"; "p99 ops/proc"; "max ops/proc" ]
  in
  let cost_runs = if quick then 100 else 400 in
  let cost ~f ~t =
    let n = f + 1 in
    let setup =
      Check.setup Consensus.Bounded_faults.protocol (Protocol.params ~t ~n_procs:n ~f ())
    in
    let ops = Summary.create () in
    let on_report ~seed:_ (report : Check.report) =
      Array.iter (Summary.add_int ops) report.Check.result.Engine.steps_taken
    in
    let _ =
      mass
        ~injector:(probabilistic_overriding ~p:0.4)
        ~on_report ~runs:cost_runs
        ~seed:(Int64.add seed (Int64.of_int ((f * 17) + t)))
        setup
    in
    Table.add_row curve3
      [
        Table.cell_int f; Table.cell_int t; Table.cell_int n;
        Table.cell_int (Consensus.Bounded_faults.max_stage ~f ~t);
        Table.cell_float ~decimals:1 (Summary.mean ops);
        Table.cell_float ~decimals:0 (Summary.percentile ops 99.0);
        Table.cell_float ~decimals:0 (Summary.max_value ops);
      ];
    Summary.mean ops
  in
  let c_f1 = cost ~f:1 ~t:1 in
  let _ = cost ~f:2 ~t:1 in
  let c_f3 = cost ~f:3 ~t:1 in
  let c_t1 = cost ~f:2 ~t:2 in
  let c_t3 = cost ~f:2 ~t:3 in
  let _ = if quick then 0.0 else cost ~f:4 ~t:1 in
  let cost_shapes = c_f3 > c_f1 && c_t3 > c_t1 in
  Report.make ~id:"E12" ~title:"Failure-probability and cost curves"
    ~claim:
      "Average-case shapes bracket the worst-case theorems: violation probability of the \
       unprotected protocol rises with the fault rate; adding (even all-faulty) objects \
       drives random failure rates down although no finite count is safe (Thm 18); Fig. 3's \
       cost grows superlinearly in f and linearly in t, tracking its t(4f + f\xc2\xb2) stage \
       budget."
    ~passed:(monotone_ish && decaying && cost_shapes)
    ~tables:
      [
        ("Single-CAS consensus, n = 3, one faulty object: failure rate vs p", curve1);
        ("Sweep protocol, n = 3, all m objects faulty, p = 0.5", curve2);
        ("Fig. 3 operations per process (p = 0.4 overriding)", curve3);
      ]
    ()
