(** E8 — the §3.4 CAS fault taxonomy, each case exercised:

    - {e silent}, bounded t: the retry protocol decides within t + O(1)
      steps per process;
    - {e silent}, unbounded: non-termination (every process exhausts its
      step budget while the object stays ⊥) — matching the paper's remark
      that the unbounded case is as hard as nonresponsive faults;
    - {e invisible}: the executable reduction to data faults — the trace
      is rewritten into corrupt/correct-CAS/corrupt and checked
      indistinguishable;
    - {e arbitrary}: defeats even the Fig. 2 construction (validity
      breaks — arbitrary faults can inject non-input values); the paper
      defers to Jayanti et al.'s O(f log f) construction for this class;
    - {e nonresponsive}: a single such fault removes wait-freedom
      (reducing to the impossibility of [30]). *)

val run : ?quick:bool -> ?seed:int64 -> unit -> Report.t
