(** Shared helpers for the experiment modules. *)

module Fault = Ffault_fault
module Consensus = Ffault_consensus
module Check = Ffault_verify.Consensus_check

val always_overriding : Ffault_prng.Rng.t -> Fault.Injector.t
val probabilistic_overriding : p:float -> Ffault_prng.Rng.t -> Fault.Injector.t

val mass :
  ?injector:(Ffault_prng.Rng.t -> Fault.Injector.t) ->
  ?on_report:(seed:int64 -> Check.report -> unit) ->
  runs:int ->
  seed:int64 ->
  Check.setup ->
  Ffault_verify.Mass.summary
(** Mass randomized testing with the always-overriding adversary by
    default. *)

val violation_cell : Ffault_verify.Mass.summary -> string
(** "0" or "N (!!)". *)

val first_witness_trace : Ffault_verify.Dfs.stats -> Check.setup -> string option
(** Render the first witness's trace, if any, for a report note. *)

val trace_note : Check.setup -> Check.report -> string
(** Render a report's trace with its violations for a note. *)
