(** E6 — §5.2 corollary: the consensus number of f bounded-fault
    overriding CAS objects is exactly f + 1, populating every level of
    Herlihy's hierarchy with a faulty setting.

    For each f, the construction half (Fig. 3 at n = f + 1, randomized
    adversaries) and the impossibility half (covering adversary at
    n = f + 2) are both exercised; the diagonal of the resulting table is
    the hierarchy. *)

val run : ?quick:bool -> ?seed:int64 -> unit -> Report.t
