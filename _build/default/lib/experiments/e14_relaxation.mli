(** E14 — beyond the paper (§6): relaxed data structures are a special
    case of functional faults.

    A k-relaxed dequeue (it may remove any of the first k elements) is
    exactly an ⟨O, Φ′ₖ⟩-fault of the Dequeue operation, so the entire
    Definition-1 machinery applies unchanged: the engine injects
    relaxations under an (f, t) budget, the Hoare layer classifies every
    relaxed step as a structured fault, and the trace auditor verifies
    the bookkeeping. A producer/consumer workload measures the semantic
    damage: element conservation (nothing lost, nothing duplicated)
    survives arbitrary relaxation — only FIFO order degrades, and the
    measured dequeue distance stays within the injected k. *)

val run : ?quick:bool -> ?seed:int64 -> unit -> Report.t
