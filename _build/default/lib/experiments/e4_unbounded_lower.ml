open Common
module Protocol = Consensus.Protocol
module Table = Ffault_stats.Table
module Dfs = Ffault_verify.Dfs
module Impossibility = Ffault_impossibility

let run ?(quick = false) ?(seed = 0xE4L) () =
  ignore seed;
  let table =
    Table.create
      ~columns:[ "objects"; "f"; "n"; "adversary"; "executions"; "witness"; "conclusive" ]
  in
  let ok = ref true in
  let witness_notes = ref [] in
  let add_dfs_row ~label ~expect_witness setup stats =
    let found = stats.Dfs.witnesses <> [] in
    let conclusive = found || not stats.Dfs.truncated in
    if expect_witness <> found || not conclusive then ok := false;
    if found && expect_witness && List.length !witness_notes < 2 then
      Option.iter
        (fun t -> witness_notes := (label ^ ": " ^ t) :: !witness_notes)
        (first_witness_trace stats setup)
  in
  (* Under-provisioned: the Fig. 2 sweep over only m = f objects. *)
  let under = if quick then [ 1; 2 ] else [ 1; 2; 3 ] in
  List.iter
    (fun m ->
      let params = Protocol.params ~n_procs:3 ~f:m () in
      let setup = Check.setup (Consensus.F_tolerant.with_objects m) params in
      let stats = Dfs.explore ~max_executions:(if quick then 100_000 else 1_000_000) setup in
      add_dfs_row ~label:(Fmt.str "sweep-%d" m) ~expect_witness:true setup stats;
      Table.add_row table
        [
          Table.cell_int m;
          Table.cell_int m;
          "3";
          "full DFS";
          Table.cell_int stats.Dfs.executions;
          Table.cell_bool (stats.Dfs.witnesses <> []);
          Table.cell_bool true;
        ])
    under;
  (* The proof's reduced model, where it directly yields a witness. *)
  let params1 = Protocol.params ~n_procs:3 ~f:1 () in
  let setup1 = Check.setup (Consensus.F_tolerant.with_objects 1) params1 in
  let reduced = Impossibility.Reduced_model.explore ~faulty_proc:0 setup1 in
  if reduced.Dfs.witnesses = [] then ok := false;
  Table.add_row table
    [
      "1"; "1"; "3"; "reduced model (p0 always faulty)";
      Table.cell_int reduced.Dfs.executions;
      Table.cell_bool (reduced.Dfs.witnesses <> []);
      Table.cell_bool (not reduced.Dfs.truncated);
    ];
  (* Controls: f + 1 objects, exhaustively clean. *)
  let controls = if quick then [ 1 ] else [ 1; 2 ] in
  List.iter
    (fun f ->
      let params = Protocol.params ~n_procs:3 ~f () in
      let setup = Check.setup Consensus.F_tolerant.protocol params in
      let stats =
        Dfs.explore ~max_executions:(if quick then 200_000 else 2_000_000)
          ~max_branch_depth:(if quick then 48 else 64)
          setup
      in
      add_dfs_row ~label:(Fmt.str "fig2 f=%d" f) ~expect_witness:false setup stats;
      Table.add_row table
        [
          Table.cell_int (f + 1);
          Table.cell_int f;
          "3";
          "full DFS (control)";
          Table.cell_int stats.Dfs.executions;
          Table.cell_bool (stats.Dfs.witnesses <> []);
          Table.cell_bool (not stats.Dfs.truncated);
        ])
    controls;
  (* Valency: the proof's starting point. *)
  let setup_val = Check.setup (Consensus.F_tolerant.with_objects 1) params1 in
  let valency = Impossibility.Valency.analyze ~prefix:[||] setup_val in
  let valency_note =
    Fmt.str "initial state of the 1-object n=3 instance: %a (the Theorem 18 argument starts \
             from exactly this multivalence)"
      Impossibility.Valency.pp_verdict valency
  in
  (match valency with Impossibility.Valency.Multivalent _ -> () | _ -> ok := false);
  (* The proof walk itself: against the under-provisioned protocol the
     multivalent descent bottoms out in a disagreement; against the
     properly provisioned control it reaches a genuine critical state. *)
  let walk_bad = Impossibility.Critical.find ~reduced_faulty_proc:0 setup_val in
  (match walk_bad with Impossibility.Critical.Disagreement _ -> () | _ -> ok := false);
  let setup_good = Check.setup Consensus.F_tolerant.protocol params1 in
  let walk_good = Impossibility.Critical.find setup_good in
  (match walk_good with Impossibility.Critical.Critical _ -> () | _ -> ok := false);
  let walk_notes =
    [
      Fmt.str "valency walk, 1 object (reduced model): %a" Impossibility.Critical.pp_result
        walk_bad;
      Fmt.str "valency walk, f+1 objects (control): %a" Impossibility.Critical.pp_result
        walk_good;
    ]
  in
  Report.make ~id:"E4" ~title:"f objects cannot survive unbounded faults, n > 2 (Thm 18)"
    ~claim:
      "No (f, \xe2\x88\x9e, n)-tolerant consensus exists from f CAS objects for n > 2: \
       under-provisioned protocols yield concrete disagreement witnesses, while f + 1 \
       objects are exhaustively clean."
    ~passed:!ok
    ~tables:[ ("Model checking (t = \xe2\x88\x9e)", table) ]
    ~notes:((valency_note :: walk_notes) @ List.rev !witness_notes)
    ()
