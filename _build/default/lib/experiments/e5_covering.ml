open Common
module Protocol = Consensus.Protocol
module Table = Ffault_stats.Table
module Covering = Ffault_impossibility.Covering
module Budget = Ffault_fault.Budget
module Engine = Ffault_sim.Engine

let run ?(quick = false) ?(seed = 0xE5L) () =
  ignore seed;
  let table =
    Table.create
      ~columns:
        [ "protocol"; "objects"; "f"; "t"; "n"; "violation"; "faults"; "max faults/object" ]
  in
  let ok = ref true in
  let note = ref [] in
  let fs = if quick then [ 1; 2; 3 ] else [ 1; 2; 3; 4 ] in
  List.iter
    (fun f ->
      let params = Protocol.params ~t:1 ~n_procs:(f + 2) ~f () in
      let setup = Check.setup Consensus.Bounded_faults.protocol params in
      let o = Covering.run setup in
      let budget = o.Covering.report.Check.result.Engine.budget in
      let per_object =
        List.fold_left
          (fun acc obj -> max acc (Budget.faults_on budget obj))
          0 (Budget.faulty_objects budget)
      in
      let faults = Budget.total_faults budget in
      if (not o.Covering.violation_found) || faults <> f || per_object > 1 then ok := false;
      if f = 1 && o.Covering.violation_found then
        note := [ trace_note setup o.Covering.report ];
      Table.add_row table
        [
          "fig3 (under-provisioned n)";
          Table.cell_int f;
          Table.cell_int f;
          "1";
          Table.cell_int (f + 2);
          Table.cell_bool o.Covering.violation_found;
          Table.cell_int faults;
          Table.cell_int per_object;
        ])
    fs;
  (* Control: the adversary cannot defeat a properly provisioned Fig. 2. *)
  List.iter
    (fun f ->
      let params = Protocol.params ~t:1 ~n_procs:(f + 2) ~f () in
      let setup = Check.setup Consensus.F_tolerant.protocol params in
      let o = Covering.run setup in
      if o.Covering.violation_found then ok := false;
      let budget = o.Covering.report.Check.result.Engine.budget in
      Table.add_row table
        [
          "fig2 (control, f+1 objects)";
          Table.cell_int (f + 1);
          Table.cell_int f;
          "1";
          Table.cell_int (f + 2);
          Table.cell_bool o.Covering.violation_found;
          Table.cell_int (Budget.total_faults budget);
          "-";
        ])
    (if quick then [ 1; 2 ] else [ 1; 2; 3 ]);
  Report.make ~id:"E5" ~title:"The covering adversary defeats f objects at n = f + 2 (Thm 19)"
    ~claim:
      "For any f, t \xe2\x89\xa5 1, no (f, t, f + 2)-tolerant consensus exists from f CAS \
       objects: the staged covering execution (one overriding fault per object, erasing \
       p\xe2\x82\x80's traces) forces disagreement."
    ~passed:!ok
    ~tables:[ ("Covering executions", table) ]
    ~notes:!note ()
