open Common
module Protocol = Consensus.Protocol
module Table = Ffault_stats.Table
module Dfs = Ffault_verify.Dfs
module Mass = Ffault_verify.Mass

let run ?(quick = false) ?(seed = 0xE2L) () =
  let runs = if quick then 200 else 1000 in
  let fs = if quick then [ 1; 2; 3 ] else [ 1; 2; 3; 4; 6; 8 ] in
  let ns = if quick then [ 2; 4 ] else [ 2; 4; 8 ] in
  let table =
    Table.create
      ~columns:[ "f"; "objects"; "n"; "runs"; "violations"; "steps/proc (= f+1?)" ]
  in
  let ok = ref true in
  List.iter
    (fun f ->
      List.iter
        (fun n ->
          let params = Protocol.params ~n_procs:n ~f () in
          let setup = Check.setup Consensus.F_tolerant.protocol params in
          let s = mass ~runs ~seed setup in
          let steps_exact = s.Mass.max_steps_one_proc = f + 1 in
          if s.Mass.failure_count > 0 || not steps_exact then ok := false;
          Table.add_row table
            [
              Table.cell_int f;
              Table.cell_int (f + 1);
              Table.cell_int n;
              Table.cell_int s.Mass.runs;
              violation_cell s;
              Fmt.str "%d (%s)" s.Mass.max_steps_one_proc (if steps_exact then "yes" else "NO");
            ])
        ns)
    fs;
  (* Exhaustive small instance: f = 1, n = 3, unbounded faults. *)
  let setup_dfs =
    Check.setup Consensus.F_tolerant.protocol (Protocol.params ~n_procs:3 ~f:1 ())
  in
  let dfs = Dfs.explore ~max_executions:500_000 ~max_witnesses:5 setup_dfs in
  let dfs_ok = dfs.Dfs.witnesses = [] && not dfs.Dfs.truncated in
  Report.make ~id:"E2" ~title:"f-tolerant consensus from f+1 CAS objects (Fig. 2, Thm 5)"
    ~claim:
      "With at most f faulty objects (unbounded faults each) among f + 1, the sweep protocol \
       is a correct consensus for any number of processes, in exactly f + 1 CAS steps per \
       process."
    ~passed:(!ok && dfs_ok)
    ~tables:[ ("Worst-case (always-overriding) adversary", table) ]
    ~notes:
      [
        Fmt.str "exhaustive DFS at f=1, n=3 over schedules \xc3\x97 fault choices: %a"
          Dfs.pp_stats dfs;
      ]
    ()
