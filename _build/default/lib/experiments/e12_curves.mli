(** E12 — figure-style quantitative series (the paper proves worst-case
    statements; these curves chart the average case the theory brackets):

    - {e failure-probability curves}: Monte-Carlo rate of consensus
      violation for the unprotected single-CAS protocol as the
      overriding-fault rate p sweeps 0 → 0.9, and as the number of sweep
      objects grows at a fixed fault rate (all objects faulty — the
      Theorem 18 regime, where no object count is ever fully safe but
      random failure probability falls geometrically);
    - {e cost scaling}: operations per process of the Fig. 3 protocol as
      f and t grow, against its O(t·f²)-stage budget.

    Shapes expected: monotone-increasing failure rate in p; geometric
    decay in the object count; superlinear growth of Fig. 3's cost in f
    and linear growth in t. *)

val run : ?quick:bool -> ?seed:int64 -> unit -> Report.t
