type t = {
  id : string;
  title : string;
  claim : string;
  passed : bool;
  tables : (string * Ffault_stats.Table.t) list;
  notes : string list;
}

let make ~id ~title ~claim ~passed ?(tables = []) ?(notes = []) () =
  { id; title; claim; passed; tables; notes }

let pp ppf r =
  Fmt.pf ppf "@.## %s — %s@." r.id r.title;
  Fmt.pf ppf "@.Claim: %s@." r.claim;
  Fmt.pf ppf "Verdict: %s@." (if r.passed then "REPRODUCED" else "NOT REPRODUCED");
  List.iter
    (fun (caption, table) -> Fmt.pf ppf "@.%s@.@.%a" caption Ffault_stats.Table.pp table)
    r.tables;
  if r.notes <> [] then begin
    Fmt.pf ppf "@.Notes:@.";
    List.iter (fun n -> Fmt.pf ppf "- %s@." n) r.notes
  end
