(** E9 — universality (§1, §2): consensus built from faulty CAS objects
    is still universal. A wait-free fetch-and-add counter is constructed
    over the slot-log universal object (each slot agreed by an f-tolerant
    consensus instance running on overriding-faulty CAS), and checked
    three ways: FAA(1) responses must be a permutation of 0..K−1 (a
    complete linearizability criterion for increment-only histories),
    all replicas' logs must be prefix-consistent, and a small recorded
    history is run through the Wing–Gong linearizability checker. *)

val run : ?quick:bool -> ?seed:int64 -> unit -> Report.t
