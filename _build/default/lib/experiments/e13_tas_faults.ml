open Common
module Protocol = Consensus.Protocol
module Table = Ffault_stats.Table
module Dfs = Ffault_verify.Dfs
module Fault_kind = Fault.Fault_kind
open Ffault_objects

let setup ~f ~t ~allowed ~palette =
  let victims = if f > 0 then Some [ Consensus.Tas_consensus.tas_object ] else None in
  Check.setup ~allowed_faults:allowed ~payload_palette:palette ?victims
    Consensus.Tas_consensus.protocol
    (Protocol.params ?t ~n_procs:2 ~f ())

let run ?(quick = false) ?(seed = 0xE13L) () =
  ignore quick;
  ignore seed;
  let table =
    Table.create
      ~columns:[ "TAS fault"; "budget"; "executions"; "witness"; "violation kind" ]
  in
  let ok = ref true in
  let notes = ref [] in
  let row ~label ~budget ~expect_witness ~allowed ~palette ~f ~t =
    let s = setup ~f ~t ~allowed ~palette in
    let stats = Dfs.explore ~max_executions:200_000 s in
    let found = stats.Dfs.witnesses <> [] in
    if found <> expect_witness || stats.Dfs.truncated then ok := false;
    let violation_kind =
      match stats.Dfs.witnesses with
      | [] -> "-"
      | w :: _ ->
          String.concat "+"
            (List.sort_uniq String.compare
               (List.map
                  (function
                    | Check.Consistency _ -> "consistency"
                    | Check.Validity _ -> "validity"
                    | Check.Wait_freedom _ -> "wait-freedom")
                  w.Dfs.report.Check.violations))
    in
    if found && List.length !notes < 1 then
      Option.iter (fun tr -> notes := [ label ^ ": " ^ tr ]) (first_witness_trace stats s);
    Table.add_row table
      [
        label; budget; Table.cell_int stats.Dfs.executions; Table.cell_bool found;
        violation_kind;
      ]
  in
  row ~label:"none (control)" ~budget:"f=0" ~expect_witness:false ~allowed:[] ~palette:[]
    ~f:0 ~t:None;
  row ~label:"silent-set" ~budget:"f=1, t=1" ~expect_witness:true
    ~allowed:[ Fault_kind.Silent ] ~palette:[] ~f:1 ~t:(Some 1);
  row ~label:"phantom-win" ~budget:"f=1, t=1" ~expect_witness:true
    ~allowed:[ Fault_kind.Invisible ]
    ~palette:[ Value.Bool false; Value.Bool true ]
    ~f:1 ~t:(Some 1);
  row ~label:"nonresponsive" ~budget:"f=1, t=1" ~expect_witness:true
    ~allowed:[ Fault_kind.Nonresponsive ] ~palette:[] ~f:1 ~t:(Some 1);
  Report.make ~id:"E13" ~title:"Structured faults of a second primitive: test-and-set (\xc2\xa77)"
    ~claim:
      "The functional-fault framework transfers beyond CAS: natural structured TAS faults \
       are expressible as \xce\xa6' formulas, and a single silent-set or phantom-win fault \
       collapses the classic 2-process TAS consensus \xe2\x80\x94 TAS falls from consensus \
       number 2 to 1, mirroring CAS falling from \xe2\x88\x9e (E6)."
    ~passed:!ok
    ~tables:[ ("Model checking 2-process TAS consensus (victim: the TAS bit)", table) ]
    ~notes:!notes ()
