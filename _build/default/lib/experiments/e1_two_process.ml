open Common
module Protocol = Consensus.Protocol
module Table = Ffault_stats.Table
module Dfs = Ffault_verify.Dfs
module Mass = Ffault_verify.Mass

let run ?(quick = false) ?(seed = 0xE1L) () =
  let runs = if quick then 500 else 5000 in
  let table =
    Table.create ~columns:[ "adversary"; "n"; "runs"; "violations"; "max steps/proc"; "faults" ]
  in
  let params2 = Protocol.params ~n_procs:2 ~f:1 () in
  let setup2 = Check.setup Consensus.Single_cas.two_process params2 in
  let adversaries =
    [
      ("always-overriding", always_overriding);
      ("p=0.5 overriding", probabilistic_overriding ~p:0.5);
      ("p=0.1 overriding", probabilistic_overriding ~p:0.1);
    ]
  in
  let mass_ok = ref true in
  List.iter
    (fun (name, injector) ->
      let s = mass ~injector ~runs ~seed setup2 in
      if s.Mass.failure_count > 0 then mass_ok := false;
      Table.add_row table
        [
          name;
          "2";
          Table.cell_int s.Mass.runs;
          violation_cell s;
          Table.cell_int s.Mass.max_steps_one_proc;
          Table.cell_int s.Mass.total_faults;
        ])
    adversaries;
  (* Exhaustive exploration of the two-process world. *)
  let dfs = Dfs.explore ~max_executions:100_000 ~max_witnesses:10 setup2 in
  let dfs_ok = dfs.Dfs.witnesses = [] && not dfs.Dfs.truncated in
  (* Control: the same single-object protocol breaks with three processes. *)
  let params3 = Protocol.params ~n_procs:3 ~f:1 () in
  let setup3 = Check.setup Consensus.Single_cas.herlihy params3 in
  let dfs3 = Dfs.explore ~max_executions:100_000 setup3 in
  let control_ok = dfs3.Dfs.witnesses <> [] in
  let notes =
    [
      Fmt.str "exhaustive DFS at n=2: %a — the anomaly is complete, not sampled"
        Dfs.pp_stats dfs;
      Fmt.str "control at n=3 (same protocol): %a — the two-process anomaly does not extend"
        Dfs.pp_stats dfs3;
    ]
    @ (match first_witness_trace dfs3 setup3 with
      | Some t -> [ "n=3 " ^ t ]
      | None -> [])
  in
  Report.make ~id:"E1" ~title:"Two-process consensus from one faulty CAS (Fig. 1, Thm 4)"
    ~claim:
      "A single CAS object with unboundedly many overriding faults implements consensus for \
       two processes; with three processes the same object fails."
    ~passed:(!mass_ok && dfs_ok && control_ok)
    ~tables:[ ("Randomized adversaries (t = \xe2\x88\x9e, f = 1)", table) ]
    ~notes ()
