open Common
module Protocol = Consensus.Protocol
module Bounded = Consensus.Bounded_faults
module Table = Ffault_stats.Table
module Mass = Ffault_verify.Mass
module Engine = Ffault_sim.Engine

let run ?(quick = false) ?(seed = 0xE3L) () =
  let runs = if quick then 200 else 1000 in
  let settings =
    if quick then [ (1, 1); (1, 2); (2, 1); (2, 2) ]
    else [ (1, 1); (1, 2); (1, 4); (2, 1); (2, 2); (2, 3); (3, 1); (3, 2); (4, 1) ]
  in
  let table =
    Table.create
      ~columns:
        [ "f"; "t"; "n"; "maxStage bound"; "max stage seen"; "runs"; "violations";
          "max steps/proc" ]
  in
  let ok = ref true in
  List.iter
    (fun (f, t) ->
      let n = f + 1 in
      let params = Protocol.params ~t ~n_procs:n ~f () in
      let setup = Check.setup Consensus.Bounded_faults.protocol params in
      let max_stage_seen = ref (-1) in
      let on_report ~seed:_ (report : Check.report) =
        let s = Bounded.stages_reached report.Check.result.Engine.trace in
        if s > !max_stage_seen then max_stage_seen := s
      in
      let s = mass ~on_report ~runs ~seed setup in
      let bound = Bounded.max_stage ~f ~t in
      if s.Mass.failure_count > 0 || !max_stage_seen > bound then ok := false;
      Table.add_row table
        [
          Table.cell_int f;
          Table.cell_int t;
          Table.cell_int n;
          Table.cell_int bound;
          Table.cell_int !max_stage_seen;
          Table.cell_int s.Mass.runs;
          violation_cell s;
          Table.cell_int s.Mass.max_steps_one_proc;
        ])
    settings;
  (* Exhaustive verification of the smallest instance: every schedule and
     every budget-permitted fault pattern of Fig. 3 at f = 1, t = 1,
     n = 2. *)
  let setup_dfs =
    Check.setup Consensus.Bounded_faults.protocol (Protocol.params ~t:1 ~n_procs:2 ~f:1 ())
  in
  let dfs =
    Ffault_verify.Dfs.explore ~max_executions:100_000 ~max_branch_depth:128 ~max_witnesses:5
      setup_dfs
  in
  let dfs_ok = dfs.Ffault_verify.Dfs.witnesses = [] && not dfs.Ffault_verify.Dfs.truncated in
  if not dfs_ok then ok := false;
  (* Ablation: how small can maxStage get before randomized adversaries
     break consistency? (f = 2, t = 1, bound = 12.) *)
  let ablation =
    Table.create ~columns:[ "maxStage"; "runs"; "violations"; "max steps/proc" ]
  in
  let ablation_runs = if quick then 300 else 2000 in
  List.iter
    (fun m ->
      let params = Protocol.params ~t:1 ~n_procs:3 ~f:2 () in
      let setup = Check.setup (Bounded.with_max_stage m) params in
      let s = mass ~runs:ablation_runs ~seed:(Int64.add seed (Int64.of_int m)) setup in
      Table.add_row ablation
        [
          Table.cell_int m;
          Table.cell_int s.Mass.runs;
          violation_cell s;
          Table.cell_int s.Mass.max_steps_one_proc;
        ])
    [ 1; 2; 4; 8; 12 ];
  Report.make ~id:"E3"
    ~title:"(f, t, f+1)-tolerant consensus from f all-faulty CAS objects (Fig. 3, Thm 6)"
    ~claim:
      "With f CAS objects (all possibly faulty, at most t overriding faults each) and at most \
       f + 1 processes, the staged protocol with maxStage = t(4f + f\xc2\xb2) is a correct \
       consensus, and no execution exceeds the stage bound."
    ~passed:!ok
    ~tables:
      [
        ("Adversarial runs at n = f + 1 (always-overriding within budget)", table);
        ("Ablation at f=2, t=1 (paper bound: maxStage = 12)", ablation);
      ]
    ~notes:
      [
        Fmt.str
          "exhaustive model check of the smallest instance (f=1, t=1, n=2, every schedule \
           \xc3\x97 every fault pattern): %a"
          Ffault_verify.Dfs.pp_stats dfs;
        "The paper picks maxStage = t(4f + f\xc2\xb2) for provability and notes an earlier \
         maximal stage might work; the ablation reports what randomized adversaries find at \
         smaller bounds (absence of violations there is sampling, not proof).";
      ]
    ()
