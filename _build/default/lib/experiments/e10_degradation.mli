(** E10 — beyond the paper (§6/§7 future work): fault severity and
    graceful degradation of the overriding-CAS constructions.

    Two artifacts. First, the severity matrix: the semantic order between
    the taxonomy's deviating postconditions, decided exhaustively over a
    finite value universe (arbitrary strictly dominates standard Φ,
    overriding and silent; invisible is incomparable with everything).
    Second, degradation profiles: each construction is pushed {e past}
    its design budget (an extra faulty object, or more faults per object
    than maxStage was sized for) under worst-case overriding adversaries,
    and every failure is classified. The signature of graceful
    degradation: consistency may fall, but validity and wait-freedom
    never do — overriding faults return truthful values and only write
    values some process actually proposed, so the construction degrades
    into a weaker-but-sane agreement object rather than producing
    garbage. *)

val run : ?quick:bool -> ?seed:int64 -> unit -> Report.t
