open Common
module Protocol = Consensus.Protocol
module Table = Ffault_stats.Table
module Mass = Ffault_verify.Mass
module Falsify = Ffault_verify.Falsify
module Fault_kind = Fault.Fault_kind
module Injector = Fault.Injector
module Rng = Ffault_prng.Rng

let mixed_injector mix rng = Injector.mixed ~seed:(Rng.next_seed rng) mix

let run ?(quick = false) ?(seed = 0xE11L) () =
  let runs = if quick then 400 else 2000 in
  let table =
    Table.create
      ~columns:[ "protocol"; "fault mix"; "budget"; "n"; "runs"; "violations"; "expected" ]
  in
  let ok = ref true in
  let notes = ref [] in
  let mass_row ~label ~mix_label ~mix ~setup ~budget_label ~n ~expect_clean =
    let s =
      mass ~injector:(mixed_injector mix) ~runs ~seed setup
    in
    let clean = s.Mass.failure_count = 0 in
    if expect_clean && not clean then ok := false;
    Table.add_row table
      [
        label; mix_label; budget_label; Table.cell_int n; Table.cell_int s.Mass.runs;
        violation_cell s;
        (if expect_clean then "clean" else "informational");
      ];
    s
  in
  (* Fig. 2 under overriding+silent mixes. *)
  ignore
    (mass_row ~label:"fig2 (f+1 objects)" ~mix_label:"override 0.3 / silent 0.3"
       ~mix:[ (Fault_kind.Overriding, 0.3); (Fault_kind.Silent, 0.3) ]
       ~setup:(Check.setup
                 ~allowed_faults:[ Fault_kind.Overriding; Fault_kind.Silent ]
                 Consensus.F_tolerant.protocol
                 (Protocol.params ~n_procs:4 ~f:2 ()))
       ~budget_label:"f=2, t=\xe2\x88\x9e" ~n:4 ~expect_clean:true);
  ignore
    (mass_row ~label:"fig2 (f+1 objects)" ~mix_label:"override 0.6 / silent 0.4"
       ~mix:[ (Fault_kind.Overriding, 0.6); (Fault_kind.Silent, 0.4) ]
       ~setup:(Check.setup
                 ~allowed_faults:[ Fault_kind.Overriding; Fault_kind.Silent ]
                 Consensus.F_tolerant.protocol
                 (Protocol.params ~n_procs:3 ~f:1 ()))
       ~budget_label:"f=1, t=\xe2\x88\x9e" ~n:3 ~expect_clean:true);
  (* Fig. 1 at n = 2 under the same mix. *)
  ignore
    (mass_row ~label:"fig1 (one object)" ~mix_label:"override 0.4 / silent 0.4"
       ~mix:[ (Fault_kind.Overriding, 0.4); (Fault_kind.Silent, 0.4) ]
       ~setup:(Check.setup
                 ~allowed_faults:[ Fault_kind.Overriding; Fault_kind.Silent ]
                 Consensus.Single_cas.two_process
                 (Protocol.params ~t:4 ~n_procs:2 ~f:1 ()))
       ~budget_label:"f=1, t=4" ~n:2 ~expect_clean:false);
  (* Exploratory: Fig. 3 with silent faults in the mix; also attack it
     with the portfolio falsifier over silent-only faults. *)
  let fig3_setup =
    Check.setup
      ~allowed_faults:[ Fault_kind.Overriding; Fault_kind.Silent ]
      Consensus.Bounded_faults.protocol
      (Protocol.params ~t:2 ~n_procs:3 ~f:2 ())
  in
  let s_fig3 =
    mass_row ~label:"fig3 (f objects)" ~mix_label:"override 0.3 / silent 0.3"
      ~mix:[ (Fault_kind.Overriding, 0.3); (Fault_kind.Silent, 0.3) ]
      ~setup:fig3_setup ~budget_label:"f=2, t=2" ~n:3 ~expect_clean:false
  in
  let silent_portfolio =
    List.map
      (fun (st : Falsify.strategy) ->
        {
          st with
          Falsify.injector =
            (fun rng ->
              Injector.probabilistic ~seed:(Rng.next_seed rng) ~p:0.5 Fault_kind.Silent);
          strategy_name = st.Falsify.strategy_name ^ "+silent";
        })
      (Falsify.default_portfolio ~n_procs:3)
  in
  let fals =
    Falsify.falsify ~max_attempts:(if quick then 2000 else 10_000)
      ~portfolio:silent_portfolio ~seed fig3_setup
  in
  notes :=
    [
      Fmt.str
        "fig3 under mixed faults: %d/%d randomized runs violated; silent-only portfolio \
         falsifier: %a. The Fig. 3 guarantees are proved for overriding faults only \
         (Theorem 6); these rows chart the terrain beyond the theorem."
        s_fig3.Mass.failure_count s_fig3.Mass.runs Falsify.pp_outcome fals;
    ];
  Report.make ~id:"E11" ~title:"Mixed functional faults (\xc2\xa73.2, Definition 3 remark)"
    ~claim:
      "The fault model composes: Fig. 2 (and Fig. 1 at n = 2) remain correct under any mix \
       of overriding and silent faults within budget, since both kinds keep responses \
       truthful and never inject non-input values."
    ~passed:!ok
    ~tables:[ ("Mixed-fault adversaries", table) ]
    ~notes:!notes ()
