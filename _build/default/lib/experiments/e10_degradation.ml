open Common
module Protocol = Consensus.Protocol
module Table = Ffault_stats.Table
module Degradation = Ffault_verify.Degradation
module Severity = Ffault_hoare.Severity

let run ?(quick = false) ?(seed = 0xE10L) () =
  let runs = if quick then 300 else 1500 in
  (* Severity matrix. *)
  let names = [ "standard"; "overriding"; "silent"; "invisible"; "arbitrary" ] in
  let matrix = Severity.taxonomy_matrix () in
  let sev_table = Table.create ~columns:("\xce\xa6 \\ \xce\xa6'" :: names) in
  List.iter
    (fun row_name ->
      let cells =
        List.map
          (fun col_name ->
            let _, _, r =
              List.find (fun (a, b, _) -> a = row_name && b = col_name) matrix
            in
            Fmt.str "%a" Severity.pp_relation r)
          names
      in
      Table.add_row sev_table (row_name :: cells))
    names;
  let sev_ok =
    List.for_all
      (fun (a, b, r) ->
        if a = b then Severity.equal_relation r Severity.Equivalent
        else if a = "arbitrary" && b <> "invisible" then
          Severity.equal_relation r Severity.More_severe
        else true)
      matrix
  in
  (* Degradation profiles: push each construction past its budget. *)
  let table =
    Table.create
      ~columns:
        [ "protocol"; "designed for"; "driven at"; "runs"; "clean"; "consistency";
          "validity"; "wait-freedom"; "graceful" ]
  in
  let all_graceful = ref true in
  let profile_row ~label ~designed ~driven ~setup ~injector =
    let p = Degradation.measure ~runs ~seed ~injector setup in
    let g = Degradation.graceful p in
    if not g then all_graceful := false;
    Table.add_row table
      [
        label; designed; driven;
        Table.cell_int p.Degradation.runs;
        Table.cell_int p.Degradation.clean;
        Table.cell_int p.Degradation.consistency_broken;
        Table.cell_int p.Degradation.validity_broken;
        Table.cell_int p.Degradation.wait_freedom_broken;
        Table.cell_bool g;
      ]
  in
  (* Herlihy's protocol was designed for zero faults. *)
  profile_row ~label:"herlihy" ~designed:"f=0" ~driven:"f=1, t=\xe2\x88\x9e"
    ~setup:(Check.setup Consensus.Single_cas.herlihy (Protocol.params ~n_procs:3 ~f:1 ()))
    ~injector:always_overriding;
  (* Fig. 2 sized for f=1 (2 objects) but both objects go bad. *)
  profile_row ~label:"fig2 (2 objects)" ~designed:"f=1" ~driven:"f=2, t=\xe2\x88\x9e"
    ~setup:
      (Check.setup (Consensus.F_tolerant.with_objects 2) (Protocol.params ~n_procs:3 ~f:2 ()))
    ~injector:(probabilistic_overriding ~p:0.5);
  (* Fig. 3 with maxStage sized for t=1 but three faults per object. *)
  let f = 2 in
  let ms_for_t1 = Consensus.Bounded_faults.max_stage ~f ~t:1 in
  profile_row ~label:"fig3 (maxStage for t=1)" ~designed:"t=1" ~driven:"t=3"
    ~setup:
      (Check.setup
         (Consensus.Bounded_faults.with_max_stage ms_for_t1)
         (Protocol.params ~t:3 ~n_procs:(f + 1) ~f ()))
    ~injector:always_overriding;
  (* Fig. 3 with one process more than Theorem 6 allows. *)
  profile_row ~label:"fig3 (n over envelope)" ~designed:"n=f+1" ~driven:"n=f+2"
    ~setup:
      (Check.setup Consensus.Bounded_faults.protocol
         (Protocol.params ~t:1 ~n_procs:(f + 2) ~f ()))
    ~injector:(probabilistic_overriding ~p:0.5);
  Report.make ~id:"E10" ~title:"Severity and graceful degradation (\xc2\xa76/\xc2\xa77 future work)"
    ~claim:
      "Overriding faults sit strictly below arbitrary faults in the semantic severity order, \
       and the paper's constructions degrade gracefully past their budgets: over-budget \
       overriding adversaries can break consistency but never validity or wait-freedom."
    ~passed:(sev_ok && !all_graceful)
    ~tables:
      [
        ("Severity relations between postconditions (row vs column)", sev_table);
        ("Over-budget degradation profiles (overriding adversaries)", table);
      ]
    ~notes:
      [
        "Graceful degradation here is the functional-fault analogue of Jayanti et al.'s \
         notion: beyond budget, failures stay within the base objects' fault class \
         (truthful responses, input-only values) instead of becoming arbitrary.";
      ]
    ()
