(** E13 — beyond the paper (§7 future work): the framework applied to a
    second primitive. Structured test-and-set faults — silent-set (the
    bit is not set), phantom-win (correct transition, forged old value) —
    are defined as Φ′ formulas, injected by the same engine, audited by
    the same Hoare layer, and the classic 2-process TAS consensus is
    model-checked under each:

    - fault-free: exhaustively correct (consensus number of TAS is 2);
    - one silent-set fault: disagreement witness (both processes flip
      "successfully");
    - one phantom-win fault: disagreement witness (a loser is told it
      won);
    - one nonresponsive fault: wait-freedom lost.

    The TAS mirror of the paper's headline: a single natural structured
    fault collapses a primitive's consensus number — CAS falls from ∞ to
    a finite level (E6), TAS falls from 2 to 1. *)

val run : ?quick:bool -> ?seed:int64 -> unit -> Report.t
