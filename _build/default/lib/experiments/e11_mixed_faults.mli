(** E11 — beyond the paper (§3.2 remark): Definition 3 "allows us to
    present a discussion about a mix of object types and a mix of
    functional faults". This experiment runs the constructions under
    adversaries that mix fault kinds per invocation.

    The claim tested: Fig. 2 tolerates any mix of {e overriding and
    silent} faults within its budget — its consistency argument only
    needs one correct object and truthful [old] responses, both of which
    survive either kind; silent faults never write at all, so they cannot
    introduce foreign values either. The Fig. 3 row is exploratory: its
    stage machinery was proved for overriding faults only, and the
    portfolio falsifier reports what actually happens under a mix
    (silent faults can make a process believe an installation succeeded
    when nothing was written, invalidating Claim 9's write-ordering) —
    the experiment records the finding either way. *)

val run : ?quick:bool -> ?seed:int64 -> unit -> Report.t
