(** E3 — Fig. 3 / Theorem 6: (f, t, f + 1)-tolerant consensus from f CAS
    objects, all possibly faulty, with maxStage = t·(4f + f²).

    Sweeps (f, t) at n = f + 1 under adversarial injection, measuring the
    highest stage any execution actually reaches against the paper's
    bound, and the worst per-process operation count. A second, ablation
    table shrinks maxStage below the bound and reports whether randomized
    adversaries can then break consistency (the paper chose the bound for
    provability, noting "an earlier maximal stage might work"). *)

val run : ?quick:bool -> ?seed:int64 -> unit -> Report.t
