(** E1 — Fig. 1 / Theorem 4: a single (possibly overriding-faulty) CAS
    object solves consensus for two processes, for any number of faults.

    Randomized adversaries at several fault rates, plus a fully exhaustive
    DFS over all schedules and fault choices (the two-process state space
    is tiny), plus a control showing the same protocol breaking at
    n = 3. *)

val run : ?quick:bool -> ?seed:int64 -> unit -> Report.t
