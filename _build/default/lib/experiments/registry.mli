(** The experiment registry: every paper artifact, runnable by id. *)

type entry = {
  id : string;
  title : string;
  run : quick:bool -> seed:int64 -> Report.t;
}

val all : entry list
(** E1 … E12, in order: E1–E9 reproduce the paper's figures and theorems,
    E10–E12 are the extension studies from DESIGN.md (severity /
    degradation, mixed faults, quantitative curves). *)

val find : string -> entry option
(** Case-insensitive lookup by id. *)

val run_all : ?quick:bool -> ?seed:int64 -> unit -> Report.t list
