(** E5 — Theorem 19 / Claim 20: with a bounded number of faults per
    object, f CAS objects cannot serve f + 2 processes — one overriding
    fault per object suffices to defeat any protocol.

    Runs the paper's covering adversary against Fig. 3 instances at
    n = f + 2 (outside the theorem-6 envelope) and verifies a consistency
    violation using exactly one fault per object; the same adversary run
    against properly provisioned Fig. 2 (f + 1 objects) is the control
    that finds nothing. *)

val run : ?quick:bool -> ?seed:int64 -> unit -> Report.t
