(** Structured experiment reports: what the CLI prints and what
    EXPERIMENTS.md records.

    Every experiment produces one report: a pass/fail verdict (measured
    outcome vs. the paper's claim), one or more tables, and free-form
    notes (witness traces, caveats). *)

type t = {
  id : string;  (** "E1" … "E9" *)
  title : string;
  claim : string;  (** the paper statement under test *)
  passed : bool;  (** measured outcome matches the claim *)
  tables : (string * Ffault_stats.Table.t) list;  (** (caption, table) *)
  notes : string list;
}

val make :
  id:string ->
  title:string ->
  claim:string ->
  passed:bool ->
  ?tables:(string * Ffault_stats.Table.t) list ->
  ?notes:string list ->
  unit ->
  t

val pp : Format.formatter -> t -> unit
(** Render for the terminal / EXPERIMENTS.md: header with verdict,
    captioned tables, notes. *)
