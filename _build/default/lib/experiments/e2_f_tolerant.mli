(** E2 — Fig. 2 / Theorem 5: f-tolerant consensus from f + 1 CAS objects,
    with an unbounded number of overriding faults per faulty object, for
    any number of processes.

    Sweeps f and n under the worst-case (always-fault) adversary; checks
    the protocol's exact step complexity (each process performs exactly
    f + 1 CAS operations) alongside correctness; adds an exhaustive DFS
    at a small instance. *)

val run : ?quick:bool -> ?seed:int64 -> unit -> Report.t
