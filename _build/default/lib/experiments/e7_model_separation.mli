(** E7 — functional faults are more expressive than data faults (§1, §4):
    the same (f, t) budget that the Fig. 3 construction tolerates in the
    functional-fault model is fatal in the data-fault model of Afek et
    al., because a data fault can forge values (e.g. a ⟨v, maxStage⟩ pair
    or a non-input junk value) that no overriding CAS fault can produce —
    an overriding fault only ever writes a value some process actually
    passed to CAS.

    Three measurements under identical budgets: (1) Fig. 3 survives the
    worst-case functional adversary; (2) a data-fault adversary that
    forges a final-stage pair breaks Fig. 3's consistency with a single
    corruption; (3) a data-fault adversary that injects junk breaks even
    Fig. 2's validity. *)

val run : ?quick:bool -> ?seed:int64 -> unit -> Report.t
