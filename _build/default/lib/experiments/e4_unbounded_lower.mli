(** E4 — Theorem 18: with unboundedly many faults per faulty object and
    n > 2 processes, f CAS objects cannot implement consensus; f + 1 are
    necessary (Fig. 2 is tight).

    Under-provisioned sweep protocols (m objects, all m possibly faulty)
    are defeated by the bounded-exhaustive model checker, which produces
    concrete disagreement witnesses; the reduced model of the proof (one
    designated process whose CASes always override) is run where it
    yields a witness directly; properly provisioned controls (m = f + 1)
    are exhaustively verified clean. A valency note exhibits the initial
    state's multivalence — the launching point of the proof. *)

val run : ?quick:bool -> ?seed:int64 -> unit -> Report.t
