open Common
module Protocol = Consensus.Protocol
module Bounded = Consensus.Bounded_faults
module Table = Ffault_stats.Table
module Mass = Ffault_verify.Mass
module Data_fault = Ffault_fault.Data_fault
module Scheduler = Ffault_sim.Scheduler
module Value = Ffault_objects.Value
module Obj_id = Ffault_objects.Obj_id

(* Wait for any object to hold a final-stage pair with a value other than
   [target], then forge ⟨target, max_stage⟩ into object 0 — a value no
   overriding CAS fault could produce at that point. *)
let stage_forger ~target ~max_stage =
  let fired = ref false in
  Data_fault.custom ~name:"stage-forger" (fun ctx ->
      if !fired then []
      else
        match ctx.Data_fault.state_of (Obj_id.of_int 0) with
        | Value.Staged { stage; value } when stage = max_stage && not (Value.equal value target)
          ->
            fired := true;
            [
              {
                Data_fault.obj = Obj_id.of_int 0;
                value = Value.Staged { value = target; stage = max_stage };
              };
            ]
        | _ -> [])

let junk_injector ~at_step ~obj ~junk =
  Data_fault.scripted [ (at_step, [ { Data_fault.obj; value = junk } ]) ]

let run ?(quick = false) ?(seed = 0xE7L) () =
  let runs = if quick then 300 else 1500 in
  let table =
    Table.create ~columns:[ "model"; "protocol"; "f"; "t"; "n"; "objects"; "outcome" ]
  in
  let ok = ref true in
  let notes = ref [] in
  (* (1) Functional model: Fig. 3 tolerates the budget. *)
  let params = Protocol.params ~t:1 ~n_procs:3 ~f:2 () in
  let setup_fn = Check.setup Consensus.Bounded_faults.protocol params in
  let s = mass ~runs ~seed setup_fn in
  if s.Mass.failure_count > 0 then ok := false;
  Table.add_row table
    [
      "functional (overriding)"; "fig3"; "2"; "1"; "3"; "2";
      Fmt.str "%d/%d runs clean" (s.Mass.runs - s.Mass.failure_count) s.Mass.runs;
    ];
  (* (2) Data model, same budget: one forged corruption breaks Fig. 3. *)
  let max_stage = Bounded.max_stage ~f:2 ~t:1 in
  let target = Value.Int 101 (* p1's input *) in
  let report_forge =
    Check.run setup_fn
      ~scheduler:(Scheduler.solo_runs ~order:[ 0; 1; 2 ])
      ~injector:Ffault_fault.Injector.never
      ~data_faults:(stage_forger ~target ~max_stage)
      ()
  in
  let forged_violation = not (Check.ok report_forge) in
  if not forged_violation then ok := false
  else notes := trace_note setup_fn report_forge :: !notes;
  Table.add_row table
    [
      "data (Afek et al.)"; "fig3"; "2"; "1"; "3"; "2";
      (if forged_violation then "broken by 1 forged corruption" else "UNEXPECTEDLY SURVIVED");
    ];
  (* (3) Data model: junk corruption breaks even Fig. 2's validity. *)
  let params2 = Protocol.params ~t:1 ~n_procs:3 ~f:1 () in
  let setup2 = Check.setup Consensus.F_tolerant.protocol params2 in
  let report_junk =
    Check.run setup2
      ~scheduler:(Scheduler.round_robin ())
      ~injector:Ffault_fault.Injector.never
      ~data_faults:(junk_injector ~at_step:1 ~obj:(Obj_id.of_int 1) ~junk:(Value.Int 999))
      ()
  in
  let junk_violation =
    List.exists
      (function Check.Validity _ -> true | _ -> false)
      report_junk.Check.violations
  in
  if not junk_violation then ok := false;
  Table.add_row table
    [
      "data (Afek et al.)"; "fig2"; "1"; "1"; "3"; "2";
      (if junk_violation then "validity broken by junk corruption"
       else "UNEXPECTEDLY SURVIVED");
    ];
  Report.make ~id:"E7" ~title:"Functional faults beat the data-fault lower bound (\xc2\xa71, \xc2\xa74)"
    ~claim:
      "Under identical (f, t) budgets, consensus from f all-faulty objects is possible with \
       overriding functional faults (Fig. 3) but impossible with data faults: corruptions can \
       forge stage pairs and non-input values that no overriding CAS can produce."
    ~passed:!ok
    ~tables:[ ("Same budget, two fault models", table) ]
    ~notes:(List.rev !notes) ()
