open Common
module Universal = Consensus.Universal
module Table = Ffault_stats.Table
module Engine = Ffault_sim.Engine
module World = Ffault_sim.World
module Scheduler = Ffault_sim.Scheduler
module Budget = Ffault_fault.Budget
module Fault_kind = Ffault_fault.Fault_kind
open Ffault_objects

type run_outcome = {
  counter_ok : bool;  (** FAA responses are a permutation of 0..K-1 *)
  prefixes_ok : bool;  (** replica logs are prefix-consistent *)
  linearizable : bool option;  (** [None] when the history was too big to check *)
  faults : int;
  all_decided : bool;
}

let prefix_consistent logs =
  let rec is_prefix a b =
    match a, b with
    | [], _ -> true
    | _, [] -> false
    | (p1, o1) :: ta, (p2, o2) :: tb -> p1 = p2 && Op.equal o1 o2 && is_prefix ta tb
  in
  List.for_all
    (fun a -> List.for_all (fun b -> is_prefix a b || is_prefix b a) logs)
    logs

let run_universal ~n ~ops_per_proc ~f ~seed ~fault_p ~check_lin =
  let cfg =
    Universal.config ~f
      ~slots:((n * ops_per_proc) + 4)
      ~kind:Kind.Fetch_and_add ~init:(Value.Int 0) ()
  in
  let world = World.make ~n_procs:n (Universal.world_objects cfg) in
  let responses = Array.make n [] in
  let logs = Array.make n [] in
  (* A logical clock for the recorded history: every record advances it,
     and records happen in engine execution order. *)
  let clock = ref 0 in
  let tick () =
    incr clock;
    !clock
  in
  let history_ops = ref [] in
  let body me () =
    let h = Universal.create cfg ~me in
    for _ = 1 to ops_per_proc do
      let call = tick () in
      let r = Universal.apply h (Op.Fetch_and_add 1) in
      let return = tick () in
      history_ops :=
        { History.proc = me; op = Op.Fetch_and_add 1; response = r; call; return }
        :: !history_ops;
      responses.(me) <- r :: responses.(me)
    done;
    logs.(me) <- Universal.log h;
    Value.Int 0
  in
  let budget = Budget.create ~max_faulty_objects:f ~max_faults_per_object:None () in
  let config =
    Engine.config ~allowed_faults:[ Fault_kind.Overriding ] ~max_steps_per_proc:100_000
      ~max_total_steps:1_000_000 ~world ~budget ()
  in
  let injector =
    if fault_p >= 1.0 then Ffault_fault.Injector.always Fault_kind.Overriding
    else if fault_p <= 0.0 then Ffault_fault.Injector.never
    else Ffault_fault.Injector.probabilistic ~seed ~p:fault_p Fault_kind.Overriding
  in
  let result =
    Engine.run config
      ~scheduler:(Scheduler.random ~seed:(Int64.add seed 17L))
      ~injector
      ~bodies:(Array.init n body)
      ()
  in
  let k = n * ops_per_proc in
  let all_responses =
    Array.to_list responses |> List.concat
    |> List.filter_map (function Value.Int i -> Some i | _ -> None)
    |> List.sort Int.compare
  in
  let counter_ok = all_responses = List.init k (fun i -> i) in
  let prefixes_ok = prefix_consistent (Array.to_list logs) in
  let linearizable =
    if not check_lin then None
    else
      let h = History.make ~kind:Kind.Fetch_and_add ~init:(Value.Int 0) !history_ops in
      Some (Linearizability.is_linearizable h)
  in
  {
    counter_ok;
    prefixes_ok;
    linearizable;
    faults = Budget.total_faults result.Engine.budget;
    all_decided = Engine.all_decided result;
  }

let run ?(quick = false) ?(seed = 0xE9L) () =
  let table =
    Table.create
      ~columns:
        [ "n"; "ops/proc"; "f"; "fault rate"; "trials"; "counter ok"; "logs consistent";
          "linearizable"; "faults" ]
  in
  let ok = ref true in
  let scenarios =
    [ (3, 2, 1, 0.0, true); (3, 2, 1, 1.0, true); (3, 3, 2, 0.5, true) ]
    @ (if quick then [] else [ (4, 4, 2, 0.5, false); (5, 3, 3, 1.0, false) ])
  in
  let trials = if quick then 20 else 100 in
  List.iter
    (fun (n, ops, f, p, check_lin) ->
      let faults_total = ref 0 in
      let counter_all = ref true and prefix_all = ref true and lin_all = ref true in
      let decided_all = ref true in
      for i = 1 to trials do
        let o =
          run_universal ~n ~ops_per_proc:ops ~f
            ~seed:(Int64.add seed (Int64.of_int (i * 7919)))
            ~fault_p:p ~check_lin:(check_lin && i <= 10)
        in
        faults_total := !faults_total + o.faults;
        if not o.counter_ok then counter_all := false;
        if not o.prefixes_ok then prefix_all := false;
        if o.linearizable = Some false then lin_all := false;
        if not o.all_decided then decided_all := false
      done;
      if not (!counter_all && !prefix_all && !lin_all && !decided_all) then ok := false;
      Table.add_row table
        [
          Table.cell_int n;
          Table.cell_int ops;
          Table.cell_int f;
          Table.cell_float ~decimals:1 p;
          Table.cell_int trials;
          Table.cell_bool !counter_all;
          Table.cell_bool !prefix_all;
          (if check_lin then Table.cell_bool !lin_all else "-");
          Table.cell_int !faults_total;
        ])
    scenarios;
  Report.make ~id:"E9" ~title:"Universality over faulty CAS (\xc2\xa71, \xc2\xa72)"
    ~claim:
      "Consensus objects built from overriding-faulty CAS are universal: a wait-free \
       linearizable fetch-and-add counter constructed over them behaves atomically under \
       adversarial faults within budget."
    ~passed:!ok
    ~tables:[ ("Slot-log universal counter", table) ]
    ()
