module Fault = Ffault_fault
module Consensus = Ffault_consensus
module Check = Ffault_verify.Consensus_check
module Mass = Ffault_verify.Mass
module Dfs = Ffault_verify.Dfs
module Rng = Ffault_prng.Rng
module Engine = Ffault_sim.Engine
module Trace = Ffault_sim.Trace

let always_overriding _rng = Fault.Injector.always Fault.Fault_kind.Overriding

let probabilistic_overriding ~p rng =
  Fault.Injector.probabilistic ~seed:(Rng.next_seed rng) ~p Fault.Fault_kind.Overriding

let mass ?(injector = always_overriding) ?on_report ~runs ~seed setup =
  Mass.run ~injector ?on_report ~n_runs:runs ~base_seed:seed setup

let violation_cell (s : Mass.summary) =
  if s.Mass.failure_count = 0 then "0" else Fmt.str "%d (!!)" s.Mass.failure_count

let render_trace setup (report : Check.report) =
  let world = Check.world setup in
  Fmt.str "%a" (Trace.pp ~world) report.Check.result.Engine.trace

let trace_note setup report =
  let violations =
    String.concat "; "
      (List.map (Fmt.str "%a" Check.pp_violation) report.Check.violations)
  in
  Fmt.str "%s — witness trace:@.%s" violations (render_trace setup report)

let first_witness_trace (stats : Dfs.stats) setup =
  match stats.Dfs.witnesses with
  | [] -> None
  | w :: _ -> Some (trace_note setup w.Dfs.report)
