lib/experiments/e14_relaxation.ml: Array Common Fault Ffault_hoare Ffault_objects Ffault_prng Ffault_sim Ffault_stats Fmt Int64 Kind List Obj_id Op Option Report Value
