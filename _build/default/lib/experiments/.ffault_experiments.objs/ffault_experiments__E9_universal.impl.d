lib/experiments/e9_universal.ml: Array Common Consensus Ffault_fault Ffault_objects Ffault_sim Ffault_stats History Int Int64 Kind Linearizability List Op Report Value
