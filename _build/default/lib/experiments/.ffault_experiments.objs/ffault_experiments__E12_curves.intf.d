lib/experiments/e12_curves.mli: Report
