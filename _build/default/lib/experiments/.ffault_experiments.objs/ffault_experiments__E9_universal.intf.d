lib/experiments/e9_universal.mli: Report
