lib/experiments/report.ml: Ffault_stats Fmt List
