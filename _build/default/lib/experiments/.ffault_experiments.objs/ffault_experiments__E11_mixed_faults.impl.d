lib/experiments/e11_mixed_faults.ml: Check Common Consensus Fault Ffault_prng Ffault_stats Ffault_verify Fmt List Report
