lib/experiments/e13_tas_faults.ml: Check Common Consensus Fault Ffault_objects Ffault_stats Ffault_verify List Option Report String Value
