lib/experiments/e2_f_tolerant.mli: Report
