lib/experiments/e3_bounded_faults.ml: Check Common Consensus Ffault_sim Ffault_stats Ffault_verify Fmt Int64 List Report
