lib/experiments/e12_curves.ml: Array Check Common Consensus Ffault_sim Ffault_stats Ffault_verify Int64 List Report
