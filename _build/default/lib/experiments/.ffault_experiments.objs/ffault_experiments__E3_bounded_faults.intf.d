lib/experiments/e3_bounded_faults.mli: Report
