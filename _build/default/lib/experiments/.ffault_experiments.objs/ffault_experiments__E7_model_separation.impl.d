lib/experiments/e7_model_separation.ml: Check Common Consensus Ffault_fault Ffault_objects Ffault_sim Ffault_stats Ffault_verify Fmt List Report
