lib/experiments/e7_model_separation.mli: Report
