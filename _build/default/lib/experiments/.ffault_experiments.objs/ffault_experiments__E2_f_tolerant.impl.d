lib/experiments/e2_f_tolerant.ml: Check Common Consensus Ffault_stats Ffault_verify Fmt List Report
