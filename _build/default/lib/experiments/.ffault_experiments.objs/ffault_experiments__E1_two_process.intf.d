lib/experiments/e1_two_process.mli: Report
