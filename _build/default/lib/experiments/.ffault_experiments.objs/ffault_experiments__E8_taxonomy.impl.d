lib/experiments/e8_taxonomy.ml: Check Common Consensus Ffault_fault Ffault_sim Ffault_stats Ffault_verify Fmt List Report
