lib/experiments/e8_taxonomy.mli: Report
