lib/experiments/e10_degradation.mli: Report
