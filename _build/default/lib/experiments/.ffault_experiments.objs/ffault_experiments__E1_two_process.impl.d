lib/experiments/e1_two_process.ml: Check Common Consensus Ffault_stats Ffault_verify Fmt List Report
