lib/experiments/e6_hierarchy.ml: Ffault_impossibility Ffault_stats Fmt Int64 List Report
