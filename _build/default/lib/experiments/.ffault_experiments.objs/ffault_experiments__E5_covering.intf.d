lib/experiments/e5_covering.mli: Report
