lib/experiments/e5_covering.ml: Check Common Consensus Ffault_fault Ffault_impossibility Ffault_sim Ffault_stats List Report
