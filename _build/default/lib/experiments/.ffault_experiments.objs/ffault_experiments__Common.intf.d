lib/experiments/common.mli: Ffault_consensus Ffault_fault Ffault_prng Ffault_verify
