lib/experiments/report.mli: Ffault_stats Format
