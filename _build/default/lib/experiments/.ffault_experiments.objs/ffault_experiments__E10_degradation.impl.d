lib/experiments/e10_degradation.ml: Check Common Consensus Ffault_hoare Ffault_stats Ffault_verify Fmt List Report
