lib/experiments/e4_unbounded_lower.ml: Check Common Consensus Ffault_impossibility Ffault_stats Ffault_verify Fmt List Option Report
