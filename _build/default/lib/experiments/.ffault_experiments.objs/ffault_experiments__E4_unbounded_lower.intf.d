lib/experiments/e4_unbounded_lower.mli: Report
