lib/experiments/e13_tas_faults.mli: Report
