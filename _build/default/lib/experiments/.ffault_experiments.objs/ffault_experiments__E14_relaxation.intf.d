lib/experiments/e14_relaxation.mli: Report
