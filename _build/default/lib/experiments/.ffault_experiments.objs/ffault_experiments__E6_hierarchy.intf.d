lib/experiments/e6_hierarchy.mli: Report
