lib/experiments/common.ml: Ffault_consensus Ffault_fault Ffault_prng Ffault_sim Ffault_verify Fmt List String
