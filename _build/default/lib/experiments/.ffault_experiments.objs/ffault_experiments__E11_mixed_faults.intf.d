lib/experiments/e11_mixed_faults.mli: Report
