(** Relaxed queue semantics as functional faults (paper §6: relaxed data
    structures "form a special case of the general functional faults
    model").

    A k-relaxed dequeue (SprayList / quasi-linearizability style) may
    return any of the first k elements instead of the head. In this
    framework that is simply an ⟨O, Φ′⟩-fault of the Dequeue operation:
    Φ requires the head to be removed; Φ′ₖ permits removal of any element
    among the first k. The machinery of Definition 1 — injection,
    budgets, trace classification — applies unchanged; experiment E14
    exercises it. *)

val standard_dequeue : Triple.post
(** Φ: the head is returned and removed ([Bottom] and no change on an
    empty queue). *)

val standard_enqueue : Triple.post
(** Φ: the element is appended at the tail; response [Bottom]. *)

val relaxed_dequeue : k:int -> Triple.post
(** Φ′ₖ: some element among the first [k] is returned and removed (the
    head included — Φ implies Φ′ₖ for k ≥ 1). *)

val relaxed_any : Triple.post
(** Φ′_∞: some element of the queue is returned and removed. Used by the
    trace auditor for [Relaxation]-labeled steps. *)

val dequeue_distance : Triple.step -> int option
(** For a dequeue step satisfying {!relaxed_any}: the position of the
    removed element in the pre-state queue (0 = head = FIFO-correct).
    [None] for non-dequeue or malformed steps. *)

val queue_alternatives : (string * Triple.post) list
(** For {!Classify.classify}: just ["relaxation"] ↦ {!relaxed_any}. *)
