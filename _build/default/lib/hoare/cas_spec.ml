open Ffault_objects

let on_cas f (step : Triple.step) =
  match step.op with
  | Op.Cas { expected; desired } ->
      f ~expected ~desired ~pre:step.pre_state ~post:step.post_state ~old:step.response
  | Op.Read | Op.Write _ | Op.Test_and_set | Op.Reset | Op.Fetch_and_add _ | Op.Enqueue _
  | Op.Dequeue ->
      false

let standard =
  on_cas (fun ~expected ~desired ~pre ~post ~old ->
      if Value.equal pre expected then Value.equal post desired && Value.equal old pre
      else Value.equal post pre && Value.equal old pre)

let overriding =
  on_cas (fun ~expected:_ ~desired ~pre ~post ~old ->
      Value.equal post desired && Value.equal old pre)

let silent =
  on_cas (fun ~expected:_ ~desired:_ ~pre ~post ~old ->
      Value.equal post pre && Value.equal old pre)

let invisible =
  on_cas (fun ~expected ~desired ~pre ~post ~old ->
      let state_ok =
        if Value.equal pre expected then Value.equal post desired else Value.equal post pre
      in
      state_ok && not (Value.equal old pre))

let arbitrary = on_cas (fun ~expected:_ ~desired:_ ~pre ~post:_ ~old -> Value.equal old pre)

let strictly_faulty phi' step = phi' step && not (standard step)

let cas_pre kind ~state:_ (op : Op.t) =
  match op with Op.Cas _ -> Kind.allows kind op | _ -> false

let triple ~name post = { Triple.name; pre = cas_pre; post }
