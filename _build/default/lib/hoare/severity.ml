open Ffault_objects

type relation = Equivalent | Less_severe | More_severe | Incomparable

let pp_relation ppf = function
  | Equivalent -> Fmt.string ppf "\xe2\x89\xa1"
  | Less_severe -> Fmt.string ppf "<"
  | More_severe -> Fmt.string ppf ">"
  | Incomparable -> Fmt.string ppf "\xe2\x88\xa5"

let equal_relation (a : relation) b = a = b

let default_universe =
  [ Value.Bottom; Value.Int 1; Value.Int 2; Value.Int 3; Value.Int 4; Value.Int 5 ]

(* Enumerate every CAS step shape over the universe and fold [f] over the
   accepted/rejected verdicts of both predicates. *)
let fold_steps universe f init =
  List.fold_left
    (fun acc pre ->
      List.fold_left
        (fun acc expected ->
          List.fold_left
            (fun acc desired ->
              List.fold_left
                (fun acc post ->
                  List.fold_left
                    (fun acc response ->
                      let step =
                        {
                          Triple.kind = Kind.Cas_only;
                          pre_state = pre;
                          op = Op.Cas { expected; desired };
                          post_state = post;
                          response;
                        }
                      in
                      f acc step)
                    acc universe)
                acc universe)
            acc universe)
        acc universe)
    init universe

let compare_post ?(universe = default_universe) phi_a phi_b =
  let a_only, b_only =
    fold_steps universe
      (fun (a_only, b_only) step ->
        let a = phi_a step and b = phi_b step in
        ((a_only || (a && not b)), (b_only || (b && not a))))
      (false, false)
  in
  match a_only, b_only with
  | false, false -> Equivalent
  | false, true -> Less_severe
  | true, false -> More_severe
  | true, true -> Incomparable

let implies ?universe phi_a phi_b =
  match compare_post ?universe phi_a phi_b with
  | Equivalent | Less_severe -> true
  | More_severe | Incomparable -> false

let matrix ?universe named =
  List.concat_map
    (fun (na, pa) ->
      List.map (fun (nb, pb) -> (na, nb, compare_post ?universe pa pb)) named)
    named

let taxonomy_matrix () =
  matrix
    [
      ("standard", Cas_spec.standard);
      ("overriding", Cas_spec.overriding);
      ("silent", Cas_spec.silent);
      ("invisible", Cas_spec.invisible);
      ("arbitrary", Cas_spec.arbitrary);
    ]
