open Ffault_objects

let on_tas f (step : Triple.step) =
  match step.op, step.pre_state, step.post_state, step.response with
  | Op.Test_and_set, Value.Bool pre, Value.Bool post, Value.Bool old ->
      f ~pre ~post ~old
  | _ -> false

let on_reset f (step : Triple.step) =
  match step.op, step.pre_state, step.post_state with
  | Op.Reset, Value.Bool pre, Value.Bool post -> f ~pre ~post
  | _ -> false

let standard_tas = on_tas (fun ~pre ~post ~old -> post && old = pre)

let standard_reset = on_reset (fun ~pre:_ ~post -> not post)

let silent_set = on_tas (fun ~pre ~post ~old -> post = pre && old = pre)

let phantom_win = on_tas (fun ~pre ~post ~old -> post && old <> pre)

let sticky_bit = on_reset (fun ~pre ~post -> pre && post)

let arbitrary (step : Triple.step) =
  match step.op with
  | Op.Test_and_set | Op.Reset -> (
      match Semantics.apply step.kind ~state:step.pre_state step.op with
      | Ok o -> Value.equal step.response o.Semantics.response
      | Error _ -> false)
  | Op.Cas _ | Op.Read | Op.Write _ | Op.Fetch_and_add _ | Op.Enqueue _ | Op.Dequeue -> false

let tas_alternatives =
  [
    ("silent-set", silent_set);
    ("phantom-win", phantom_win);
    ("sticky-bit", sticky_bit);
    ("arbitrary", arbitrary);
  ]
