(** Executable Hoare triples Ψ{O}Φ over shared-object operations.

    The paper (Def. 1) characterizes a functional fault of operation [O] as
    a step where the preconditions Ψ held on entry but the postconditions Φ
    do not hold on return — while some deviating postconditions Φ′ do.
    This module makes Ψ and Φ executable so that traces can be audited:
    every response step in a simulator trace is checked against the
    object's correct triple and against the registered deviating
    postconditions. *)

open Ffault_objects

type step = {
  kind : Kind.t;
  pre_state : Value.t;  (** object state s₀, before the invocation *)
  op : Op.t;
  post_state : Value.t;  (** object state s₁, after the response *)
  response : Value.t;
}
(** One operation execution, as observed in a trace. *)

val pp_step : Format.formatter -> step -> unit

type pre = Kind.t -> state:Value.t -> Op.t -> bool
(** Precondition Ψ: judged on the pre-state and the invocation. *)

type post = step -> bool
(** Postcondition Φ (or Φ′): judged on the whole step. *)

type t = { name : string; pre : pre; post : post }

val holds : t -> step -> bool
(** [holds tr step] is [tr.post step], provided the precondition holds; a
    step whose precondition fails is vacuously accepted (total-correctness
    triples say nothing about invalid invocations). *)

val precondition_met : t -> step -> bool

val correct : t
(** The triple whose postcondition is exactly the sequential specification:
    the post-state and response must equal {!Semantics.apply} of the
    pre-state. Its precondition is [Kind.allows] plus state
    well-typedness. *)

val respects_sequential_spec : step -> bool
(** [holds correct step], the Φ of the paper for every kind. *)
