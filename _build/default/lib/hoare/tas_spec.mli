(** Deviating postconditions for the test-and-set primitive — the
    framework of §3 applied to a second widely-used function (the §7
    future-work direction "examine other widely used functions with
    natural faults").

    With B′ the bit on entry and B on return, correct TAS satisfies
    Φ = [B = true ∧ old = B′]; correct Reset satisfies [B = false].
    Natural structured deviations:

    - {e silent set}: the bit is not set ([B = B′ ∧ old = B′]) — the
      write-suppression analogue of the silent CAS fault;
    - {e phantom win}: the bit transitions correctly but the returned old
      value is wrong ([B = true ∧ old ≠ B′]) — the invisible-fault
      analogue; with B′ = true it makes a loser believe it won, the TAS
      counterpart of the overriding CAS's "both sides think they
      succeeded" ambiguity;
    - {e sticky bit}: a Reset that leaves the bit set ([B = B′ = true]).

    All predicates are vacuously false on non-TAS/Reset steps. *)

val standard_tas : Triple.post
(** Φ of a correct test-and-set. *)

val standard_reset : Triple.post
(** Φ of a correct reset. *)

val silent_set : Triple.post
(** Φ′: the set is suppressed; the response stays truthful. *)

val phantom_win : Triple.post
(** Φ′: correct state transition, forged response. *)

val sticky_bit : Triple.post
(** Φ′: a reset that does not clear the bit. *)

val arbitrary : Triple.post
(** Φ′: any post-state, truthful response — the TAS/Reset analogue of the
    arbitrary CAS fault. *)

val tas_alternatives : (string * Triple.post) list
(** For {!Classify.classify}, in specificity order: silent-set,
    phantom-win, sticky-bit, arbitrary. *)
