lib/hoare/queue_spec.mli: Triple
