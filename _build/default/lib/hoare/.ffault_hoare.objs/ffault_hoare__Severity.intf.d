lib/hoare/severity.mli: Ffault_objects Format Triple
