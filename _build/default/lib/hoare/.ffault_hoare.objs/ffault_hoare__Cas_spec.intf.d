lib/hoare/cas_spec.mli: Triple
