lib/hoare/triple.mli: Ffault_objects Format Kind Op Value
