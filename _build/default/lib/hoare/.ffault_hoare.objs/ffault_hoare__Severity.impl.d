lib/hoare/severity.ml: Cas_spec Ffault_objects Fmt Kind List Op Triple Value
