lib/hoare/tas_spec.mli: Triple
