lib/hoare/queue_spec.ml: Ffault_objects List Op Triple Value Vqueue
