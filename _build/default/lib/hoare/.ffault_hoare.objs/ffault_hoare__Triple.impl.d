lib/hoare/triple.ml: Ffault_objects Fmt Kind Op Semantics Value
