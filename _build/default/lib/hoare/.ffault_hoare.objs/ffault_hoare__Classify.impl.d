lib/hoare/classify.ml: Cas_spec Ffault_objects Fmt List Queue_spec String Tas_spec Triple
