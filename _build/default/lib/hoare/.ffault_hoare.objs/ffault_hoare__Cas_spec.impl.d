lib/hoare/cas_spec.ml: Ffault_objects Kind Op Triple Value
