lib/hoare/tas_spec.ml: Ffault_objects Op Semantics Triple Value
