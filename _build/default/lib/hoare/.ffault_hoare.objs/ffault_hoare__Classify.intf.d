lib/hoare/classify.mli: Format Triple
