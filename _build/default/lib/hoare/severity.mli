(** A severity order on CAS functional faults (paper §6/§7: Jayanti et
    al. classify fault severity and study graceful degradation; the paper
    poses severity levels for functional faults as future work).

    We order deviating postconditions semantically: Φ′ₐ is {e at most as
    severe} as Φ′ᵦ when every step permitted by Φ′ₐ is also permitted by
    Φ′ᵦ — the weaker (more permissive) postcondition is the more severe
    fault, since an adversary gets strictly more behaviours. The
    comparison is decided {e exhaustively} over a finite value universe:
    all CAS steps (pre-state, expected, desired, post-state, response)
    drawn from a small closed set of values. Because every predicate in
    {!Cas_spec} only tests equalities between these five components, a
    universe with enough distinct values (≥ 5, so that "all distinct"
    configurations exist) decides the implication for the full value
    domain.

    The computed order for the paper's taxonomy: {e arbitrary} (old = R′,
    any post-state) strictly dominates the standard Φ, {e overriding} and
    {e silent} formulas, which are pairwise incomparable (each constrains
    the post-state differently); {e invisible} is incomparable with every
    other formula, being the only one that requires old ≠ R′. This
    matches the paper's informal reading that the arbitrary fault is the
    worst-case responsive fault (§3.4 defers it to the data-fault
    machinery of Jayanti et al.). *)

type relation =
  | Equivalent  (** the predicates accept exactly the same steps *)
  | Less_severe  (** strictly fewer behaviours than the right-hand side *)
  | More_severe  (** strictly more behaviours *)
  | Incomparable

val pp_relation : Format.formatter -> relation -> unit
val equal_relation : relation -> relation -> bool

val compare_post :
  ?universe:Ffault_objects.Value.t list -> Triple.post -> Triple.post -> relation
(** [compare_post phi_a phi_b] decides the inclusion of accepted-step sets
    over the given universe (default: ⊥ and five distinct ints, which is
    exhaustive for equality-based predicates — see above). *)

val implies :
  ?universe:Ffault_objects.Value.t list -> Triple.post -> Triple.post -> bool
(** [implies phi_a phi_b]: every step accepted by [phi_a] is accepted by
    [phi_b]. *)

val default_universe : Ffault_objects.Value.t list

val matrix :
  ?universe:Ffault_objects.Value.t list ->
  (string * Triple.post) list ->
  (string * string * relation) list
(** All pairwise relations, row-major. *)

val taxonomy_matrix : unit -> (string * string * relation) list
(** The matrix over the paper's named CAS postconditions: standard Φ,
    overriding, silent, invisible, arbitrary. *)
