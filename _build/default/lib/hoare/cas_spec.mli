(** The paper's CAS postcondition formulas, as executable predicates.

    With R′ the register value on entry and R on return (paper §3.3):

    - standard Φ:   [R′ = exp ? (R = val ∧ old = R′) : (R = R′ ∧ old = R′)]
    - overriding Φ′: [R = val ∧ old = R′]
    - silent Φ′:     [R = R′ ∧ old = R′]  (new value never written)
    - invisible Φ′:  [R′ = exp ? R = val : R = R′] with [old ≠ R′]
      (state transitions correctly but the returned old value is wrong)
    - arbitrary Φ′:  [old = R′] (some value, possibly unrelated to the
      inputs, was written)

    All predicates are vacuously false on non-CAS steps. *)

val standard : Triple.post
(** Φ of a correct CAS. Identical to the CAS case of {!Triple.correct}. *)

val overriding : Triple.post
(** Φ′ of the overriding fault: the new value is written unconditionally;
    the returned [old] is still correct. *)

val silent : Triple.post
(** Φ′ of the silent fault: the register is left unchanged even on a match;
    the returned [old] is still correct. *)

val invisible : Triple.post
(** Φ′ of the invisible fault: state transitions per Φ, but the response
    differs from the true original content. *)

val arbitrary : Triple.post
(** Φ′ of the arbitrary fault: any post-state, correct [old] response. *)

val strictly_faulty : Triple.post -> Triple.step -> bool
(** [strictly_faulty phi' step]: Φ′ holds and Φ does {e not} — i.e. the
    step is a genuine ⟨CAS, Φ′⟩-fault per Definition 1 (a successful
    correct CAS also satisfies the overriding formula; it is not a
    fault). *)

val triple : name:string -> Triple.post -> Triple.t
(** Wrap a Φ′ into a triple with the standard CAS precondition (the object
    supports CAS). *)
