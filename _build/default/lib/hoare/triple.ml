open Ffault_objects

type step = {
  kind : Kind.t;
  pre_state : Value.t;
  op : Op.t;
  post_state : Value.t;
  response : Value.t;
}

let pp_step ppf s =
  Fmt.pf ppf "@[%a: %a / %a \xe2\x87\x92 %a / %a@]" Kind.pp s.kind Value.pp s.pre_state Op.pp
    s.op Value.pp s.post_state Value.pp s.response

type pre = Kind.t -> state:Value.t -> Op.t -> bool
type post = step -> bool
type t = { name : string; pre : pre; post : post }

let precondition_met tr step = tr.pre step.kind ~state:step.pre_state step.op

let holds tr step = (not (precondition_met tr step)) || tr.post step

let correct_pre kind ~state op =
  match Semantics.apply kind ~state op with Ok _ -> true | Error _ -> false

let correct_post step =
  match Semantics.apply step.kind ~state:step.pre_state step.op with
  | Error _ -> false
  | Ok { post_state; response } ->
      Value.equal post_state step.post_state && Value.equal response step.response

let correct = { name = "sequential-spec"; pre = correct_pre; post = correct_post }

let respects_sequential_spec step = holds correct step
