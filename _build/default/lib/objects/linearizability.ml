type verdict = Linearizable of History.operation list | Not_linearizable

(* Wing & Gong style search: repeatedly pick a "minimal" remaining operation
   (one whose call precedes every remaining operation's return — i.e. no
   remaining op ends before it begins), check that the sequential semantics
   yields its recorded response, and recurse. Memoize failed (state,
   remaining-set) configurations. *)

module Memo_key = struct
  type t = int * int (* Value.hash of state, bitmask of remaining ops *)

  let equal (h1, m1) (h2, m2) = h1 = h2 && m1 = m2
  let hash (h, m) = (h * 31) + m
end

module Memo = Hashtbl.Make (Memo_key)

let check (h : History.t) =
  let ops = h.ops in
  let n = Array.length ops in
  if n > 62 then invalid_arg "Linearizability.check: history too large (> 62 ops)";
  let failed = Memo.create 64 in
  (* visited set keyed by state hash + mask; collisions on the state hash
     are resolved by storing the states themselves. *)
  let seen_states : (int, (Value.t * int) list) Hashtbl.t = Hashtbl.create 64 in
  let already_failed state mask =
    let key = (Value.hash state, mask) in
    Memo.mem failed key
    &&
    match Hashtbl.find_opt seen_states (Value.hash state) with
    | None -> false
    | Some l -> List.exists (fun (s, m) -> m = mask && Value.equal s state) l
  in
  let record_failure state mask =
    let hk = Value.hash state in
    Memo.replace failed (hk, mask) ();
    let prev = Option.value ~default:[] (Hashtbl.find_opt seen_states hk) in
    Hashtbl.replace seen_states hk ((state, mask) :: prev)
  in
  let minimal mask i =
    (* op i is minimal if no remaining op returns before op i's call *)
    let rec go j =
      if j = n then true
      else if j <> i && mask land (1 lsl j) <> 0 && ops.(j).return < ops.(i).call then false
      else go (j + 1)
    in
    go 0
  in
  let rec search state mask acc =
    if mask = 0 then Some (List.rev acc)
    else if already_failed state mask then None
    else begin
      let result = ref None in
      let i = ref 0 in
      while !result = None && !i < n do
        let idx = !i in
        if mask land (1 lsl idx) <> 0 && minimal mask idx then begin
          let o = ops.(idx) in
          match Semantics.apply h.kind ~state o.op with
          | Error _ -> ()
          | Ok { post_state; response } ->
              if Value.equal response o.response then
                result := search post_state (mask land lnot (1 lsl idx)) (o :: acc)
        end;
        incr i
      done;
      if !result = None then record_failure state mask;
      !result
    end
  in
  match search h.init ((1 lsl n) - 1) [] with
  | Some order -> Linearizable order
  | None -> Not_linearizable

let is_linearizable h = match check h with Linearizable _ -> true | Not_linearizable -> false
