(** FIFO queue states encoded in the {!Value} domain.

    A queue is a [Pair] chain terminated by [Bottom]:
    [Pair (x, Pair (y, Bottom))] is the queue ⟨x, y⟩ with head x; the
    empty queue is [Bottom]. Elements may be any value except — by
    convention — [Bottom] itself, since a [Dequeue] signals emptiness by
    returning [Bottom]. *)

val empty : Value.t
val is_empty : Value.t -> bool

val of_list : Value.t list -> Value.t
(** Head first. @raise Invalid_argument if an element is [Bottom]. *)

val to_list : Value.t -> Value.t list option
(** [None] if the value is not a well-formed queue encoding. *)

val to_list_exn : Value.t -> Value.t list

val enqueue : Value.t -> Value.t -> Value.t
(** [enqueue q v] appends [v] at the tail.
    @raise Invalid_argument on [Bottom] elements or malformed queues. *)

val dequeue_at : Value.t -> int -> (Value.t * Value.t) option
(** [dequeue_at q i] removes the element at position [i] (0 = head) and
    returns [(element, remaining queue)]; [None] if out of range or
    malformed. [dequeue_at q 0] is the correct FIFO dequeue. *)

val length : Value.t -> int
(** 0 for malformed values. *)
