let empty = Value.Bottom

let is_empty = Value.is_bottom

let rec of_list = function
  | [] -> Value.Bottom
  | v :: rest ->
      if Value.is_bottom v then invalid_arg "Vqueue.of_list: Bottom element";
      Value.Pair (v, of_list rest)

let rec to_list = function
  | Value.Bottom -> Some []
  | Value.Pair (v, rest) when not (Value.is_bottom v) ->
      Option.map (fun tl -> v :: tl) (to_list rest)
  | Value.Pair _ | Value.Bool _ | Value.Int _ | Value.Str _ | Value.Staged _ -> None

let to_list_exn v =
  match to_list v with
  | Some l -> l
  | None -> invalid_arg (Fmt.str "Vqueue.to_list_exn: %a is not a queue" Value.pp v)

let enqueue q v =
  if Value.is_bottom v then invalid_arg "Vqueue.enqueue: Bottom element";
  of_list (to_list_exn q @ [ v ])

let dequeue_at q i =
  match to_list q with
  | None -> None
  | Some l ->
      if i < 0 || i >= List.length l then None
      else
        let element = List.nth l i in
        let remaining = List.filteri (fun j _ -> j <> i) l in
        Some (element, of_list remaining)

let length q = match to_list q with Some l -> List.length l | None -> 0
