(** Sequential (correct) semantics of each object kind.

    [apply] is the object's sequential specification: given the current
    state and an operation, it produces the post-state and the response a
    {e correct} execution must yield. Faulty semantics live in the fault
    library; the Hoare layer checks traces against both. *)

type outcome = { post_state : Value.t; response : Value.t }

type error =
  | Op_not_supported of { kind : Kind.t; op : Op.t }
  | Type_error of { op : Op.t; state : Value.t; expected : string }

val pp_error : Format.formatter -> error -> unit

val apply : Kind.t -> state:Value.t -> Op.t -> (outcome, error) result
(** [apply kind ~state op] is the unique correct outcome (object types here
    are deterministic in the paper's sense, §2). *)

val apply_exn : Kind.t -> state:Value.t -> Op.t -> outcome
(** Like {!apply}; @raise Invalid_argument on error. *)

val cas_success : state:Value.t -> expected:Value.t -> bool
(** The comparison a correct CAS performs: [Value.equal state expected].
    This is the exact branch the overriding fault flips. *)
