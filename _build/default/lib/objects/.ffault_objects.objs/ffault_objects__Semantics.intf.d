lib/objects/semantics.mli: Format Kind Op Value
