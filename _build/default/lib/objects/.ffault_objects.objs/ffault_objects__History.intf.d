lib/objects/history.mli: Format Kind Op Value
