lib/objects/value.mli: Format
