lib/objects/value.ml: Bool Fmt Hashtbl Int String
