lib/objects/linearizability.mli: History
