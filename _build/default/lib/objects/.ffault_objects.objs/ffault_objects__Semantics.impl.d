lib/objects/semantics.ml: Fmt Kind Op Value Vqueue
