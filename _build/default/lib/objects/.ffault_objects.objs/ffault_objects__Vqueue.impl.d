lib/objects/vqueue.ml: Fmt List Option Value
