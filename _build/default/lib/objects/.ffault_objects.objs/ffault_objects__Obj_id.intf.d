lib/objects/obj_id.mli: Format
