lib/objects/linearizability.ml: Array Hashtbl History List Option Semantics Value
