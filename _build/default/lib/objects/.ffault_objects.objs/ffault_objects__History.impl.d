lib/objects/history.ml: Array Fmt Hashtbl Int Kind List Op Value
