lib/objects/obj_id.ml: Fmt Int
