lib/objects/kind.ml: Fmt Op Value
