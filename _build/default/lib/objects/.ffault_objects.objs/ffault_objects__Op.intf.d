lib/objects/op.mli: Format Value
