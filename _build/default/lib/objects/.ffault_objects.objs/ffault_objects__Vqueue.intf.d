lib/objects/vqueue.mli: Value
