lib/objects/kind.mli: Format Op Value
