lib/objects/op.ml: Fmt Int Value
