(** Concurrent histories of operations on a single object.

    A history records, for each completed operation, its invoking process,
    the operation, the observed response, and the (global, totally ordered)
    timestamps of its call and return events. Histories are the input to
    the {!Linearizability} checker and are produced from engine traces.

    Only {e complete} histories are represented: every call has a matching
    return. Pending operations at the end of a run should be dropped or
    completed by the caller before checking. *)

type operation = {
  proc : int;
  op : Op.t;
  response : Value.t;
  call : int;  (** timestamp of the invocation event *)
  return : int;  (** timestamp of the response event; [call < return] *)
}

type t = { kind : Kind.t; init : Value.t; ops : operation array }

val pp : Format.formatter -> t -> unit

val make : kind:Kind.t -> init:Value.t -> operation list -> t
(** Validates timestamps: each op has [call < return], all timestamps are
    distinct, and no process has two overlapping operations.
    @raise Invalid_argument on violation. *)

val precedes : operation -> operation -> bool
(** Real-time order: [precedes a b] iff [a.return < b.call]. *)

val is_sequential : t -> bool
(** No two operations overlap. *)

module Builder : sig
  (** Incremental construction from an event stream. *)

  type history = t
  type t

  val create : kind:Kind.t -> init:Value.t -> t

  val call : t -> proc:int -> op:Op.t -> unit
  (** @raise Invalid_argument if [proc] already has a pending call. *)

  val return : t -> proc:int -> response:Value.t -> unit
  (** @raise Invalid_argument if [proc] has no pending call. *)

  val finish : t -> history
  (** Completed operations only; pending calls are discarded. *)
end
