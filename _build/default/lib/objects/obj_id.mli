(** Identifiers of shared objects in a world.

    An id is a dense small integer assigned at world-construction time, so
    engine state can live in arrays. Ids carry an optional name for trace
    rendering (e.g. ["O2"]). *)

type t = private int

val of_int : int -> t
(** @raise Invalid_argument on negative input. *)

val to_int : t -> int
val equal : t -> t -> bool
val compare : t -> t -> int
val pp : Format.formatter -> t -> unit
(** Renders as [O<i>], matching the paper's O₀ … O₍f₋₁₎ notation. *)
