type operation = { proc : int; op : Op.t; response : Value.t; call : int; return : int }

type t = { kind : Kind.t; init : Value.t; ops : operation array }

let pp_operation ppf o =
  Fmt.pf ppf "p%d: %a -> %a @[%d,%d]" o.proc Op.pp o.op Value.pp o.response o.call o.return

let pp ppf h =
  Fmt.pf ppf "@[<v>history on %a (init %a):@,%a@]" Kind.pp h.kind Value.pp h.init
    (Fmt.list ~sep:Fmt.cut pp_operation)
    (Array.to_list h.ops)

let precedes a b = a.return < b.call

let overlap a b = not (precedes a b) && not (precedes b a)

let make ~kind ~init ops =
  let stamps = List.concat_map (fun o -> [ o.call; o.return ]) ops in
  let sorted = List.sort_uniq Int.compare stamps in
  if List.length sorted <> List.length stamps then
    invalid_arg "History.make: duplicate timestamps";
  List.iter
    (fun o -> if o.call >= o.return then invalid_arg "History.make: call must precede return")
    ops;
  let rec check_pairs = function
    | [] -> ()
    | o :: rest ->
        List.iter
          (fun o' ->
            if o.proc = o'.proc && overlap o o' then
              invalid_arg "History.make: overlapping operations on one process")
          rest;
        check_pairs rest
  in
  check_pairs ops;
  let arr = Array.of_list ops in
  Array.sort (fun a b -> Int.compare a.call b.call) arr;
  { kind; init; ops = arr }

let is_sequential h =
  let n = Array.length h.ops in
  let ok = ref true in
  for i = 0 to n - 2 do
    (* sorted by call time; sequential iff each returns before the next call *)
    if h.ops.(i).return > h.ops.(i + 1).call then ok := false
  done;
  !ok

module Builder = struct
  type history = t

  type pending = { p_op : Op.t; p_call : int }

  type t = {
    kind : Kind.t;
    init : Value.t;
    mutable clock : int;
    pending : (int, pending) Hashtbl.t;
    mutable done_ : operation list;
  }

  let create ~kind ~init = { kind; init; clock = 0; pending = Hashtbl.create 8; done_ = [] }

  let tick b =
    let t = b.clock in
    b.clock <- t + 1;
    t

  let call b ~proc ~op =
    if Hashtbl.mem b.pending proc then
      invalid_arg "History.Builder.call: process already has a pending operation";
    Hashtbl.replace b.pending proc { p_op = op; p_call = tick b }

  let return b ~proc ~response =
    match Hashtbl.find_opt b.pending proc with
    | None -> invalid_arg "History.Builder.return: no pending operation for process"
    | Some { p_op; p_call } ->
        Hashtbl.remove b.pending proc;
        b.done_ <- { proc; op = p_op; response; call = p_call; return = tick b } :: b.done_

  let finish b = make ~kind:b.kind ~init:b.init (List.rev b.done_)
end
