(** Universal value domain for shared objects.

    Every shared object in the simulator holds a [Value.t] and every
    operation response is a [Value.t]. A single closed domain (rather than
    polymorphic objects) keeps the object registry, trace rendering and
    structural CAS comparison straightforward.

    [Bottom] is the distinguished initial value ⊥ used throughout the paper
    (it differs from every process input by construction). [Staged] is the
    ⟨value, stage⟩ pair written by the bounded-faults protocol (paper
    Fig. 3). *)

type t =
  | Bottom  (** the paper's ⊥; initial content of consensus CAS objects *)
  | Bool of bool
  | Int of int
  | Str of string
  | Pair of t * t
  | Staged of { value : t; stage : int }
      (** ⟨value, stage⟩ as written by the Fig. 3 protocol *)

val equal : t -> t -> bool
(** Structural equality; this is the comparison the CAS primitive runs. *)

val compare : t -> t -> int
(** Total structural order (for use in sets/maps and canonical sorting). *)

val hash : t -> int
(** Structural hash consistent with {!equal}. *)

val pp : Format.formatter -> t -> unit
(** Human-readable rendering: [⊥], [42], ["s"], [⟨v,3⟩], [(a, b)]. *)

val to_string : t -> string

val is_bottom : t -> bool

val stage : t -> int option
(** [stage v] is [Some n] iff [v] is [Staged {stage = n; _}]. *)

val staged_value : t -> t option
(** [staged_value v] is [Some x] iff [v] is [Staged {value = x; _}]. *)

val int_exn : t -> int
(** Project an [Int]; @raise Invalid_argument otherwise. *)
