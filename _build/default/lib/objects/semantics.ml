type outcome = { post_state : Value.t; response : Value.t }

type error =
  | Op_not_supported of { kind : Kind.t; op : Op.t }
  | Type_error of { op : Op.t; state : Value.t; expected : string }

let pp_error ppf = function
  | Op_not_supported { kind; op } ->
      Fmt.pf ppf "operation %a not supported by %a objects" Op.pp op Kind.pp kind
  | Type_error { op; state; expected } ->
      Fmt.pf ppf "operation %a on state %a: expected %s" Op.pp op Value.pp state expected

let cas_success ~state ~expected = Value.equal state expected

let apply kind ~state (op : Op.t) : (outcome, error) result =
  if not (Kind.allows kind op) then Error (Op_not_supported { kind; op })
  else
    match op with
    | Cas { expected; desired } ->
        (* Returns the original content regardless of success (paper §2). *)
        if cas_success ~state ~expected then Ok { post_state = desired; response = state }
        else Ok { post_state = state; response = state }
    | Read -> Ok { post_state = state; response = state }
    | Write v -> Ok { post_state = v; response = Value.Bottom }
    | Test_and_set -> (
        match state with
        | Bool b -> Ok { post_state = Bool true; response = Bool b }
        | _ -> Error (Type_error { op; state; expected = "Bool state" }))
    | Reset -> (
        match state with
        | Bool _ -> Ok { post_state = Bool false; response = Value.Bottom }
        | _ -> Error (Type_error { op; state; expected = "Bool state" }))
    | Fetch_and_add n -> (
        match state with
        | Int i -> Ok { post_state = Int (i + n); response = Int i }
        | _ -> Error (Type_error { op; state; expected = "Int state" }))
    | Enqueue v -> (
        if Value.is_bottom v then
          Error (Type_error { op; state; expected = "non-Bottom element" })
        else
          match Vqueue.to_list state with
          | Some _ -> Ok { post_state = Vqueue.enqueue state v; response = Value.Bottom }
          | None -> Error (Type_error { op; state; expected = "queue state" }))
    | Dequeue -> (
        match Vqueue.to_list state with
        | None -> Error (Type_error { op; state; expected = "queue state" })
        | Some [] -> Ok { post_state = state; response = Value.Bottom }
        | Some _ -> (
            match Vqueue.dequeue_at state 0 with
            | Some (element, remaining) -> Ok { post_state = remaining; response = element }
            | None -> Error (Type_error { op; state; expected = "queue state" })))

let apply_exn kind ~state op =
  match apply kind ~state op with
  | Ok o -> o
  | Error e -> invalid_arg (Fmt.str "Semantics.apply_exn: %a" pp_error e)
