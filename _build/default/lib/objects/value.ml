type t =
  | Bottom
  | Bool of bool
  | Int of int
  | Str of string
  | Pair of t * t
  | Staged of { value : t; stage : int }

let rec equal a b =
  match a, b with
  | Bottom, Bottom -> true
  | Bool x, Bool y -> x = y
  | Int x, Int y -> x = y
  | Str x, Str y -> String.equal x y
  | Pair (x1, y1), Pair (x2, y2) -> equal x1 x2 && equal y1 y2
  | Staged a, Staged b -> a.stage = b.stage && equal a.value b.value
  | (Bottom | Bool _ | Int _ | Str _ | Pair _ | Staged _), _ -> false

let tag = function
  | Bottom -> 0
  | Bool _ -> 1
  | Int _ -> 2
  | Str _ -> 3
  | Pair _ -> 4
  | Staged _ -> 5

let rec compare a b =
  match a, b with
  | Bottom, Bottom -> 0
  | Bool x, Bool y -> Bool.compare x y
  | Int x, Int y -> Int.compare x y
  | Str x, Str y -> String.compare x y
  | Pair (x1, y1), Pair (x2, y2) ->
      let c = compare x1 x2 in
      if c <> 0 then c else compare y1 y2
  | Staged a, Staged b ->
      let c = Int.compare a.stage b.stage in
      if c <> 0 then c else compare a.value b.value
  | _, _ -> Int.compare (tag a) (tag b)

let rec hash v =
  match v with
  | Bottom -> 17
  | Bool b -> if b then 31 else 37
  | Int i -> (i * 0x9E3779B1) lxor 41
  | Str s -> Hashtbl.hash s lxor 43
  | Pair (a, b) -> (hash a * 31) + hash b + 47
  | Staged { value; stage } -> (hash value * 31) + (stage * 131) + 53

let rec pp ppf = function
  | Bottom -> Fmt.string ppf "\xe2\x8a\xa5" (* ⊥ *)
  | Bool b -> Fmt.bool ppf b
  | Int i -> Fmt.int ppf i
  | Str s -> Fmt.pf ppf "%S" s
  | Pair (a, b) -> Fmt.pf ppf "(%a, %a)" pp a pp b
  | Staged { value; stage } -> Fmt.pf ppf "\xe2\x9f\xa8%a,%d\xe2\x9f\xa9" pp value stage

let to_string v = Fmt.str "%a" pp v

let is_bottom = function Bottom -> true | _ -> false

let stage = function Staged { stage; _ } -> Some stage | _ -> None

let staged_value = function Staged { value; _ } -> Some value | _ -> None

let int_exn = function
  | Int i -> i
  | v -> invalid_arg (Fmt.str "Value.int_exn: %a is not an Int" pp v)
