(** Linearizability checking for small histories (Wing–Gong search with
    memoization).

    Used by the universal-construction experiments (E9) to spot-check that
    objects built on top of fault-tolerant consensus behave atomically, and
    by tests as an independent oracle for the sequential semantics.

    Complexity is exponential in the number of overlapping operations;
    intended for histories of up to a few dozen operations. *)

type verdict =
  | Linearizable of History.operation list
      (** a witness linearization order, respecting real-time order and the
          object's sequential semantics *)
  | Not_linearizable

val check : History.t -> verdict
(** [check h] decides whether [h] is linearizable with respect to the
    sequential semantics of [h.kind] starting from [h.init]. *)

val is_linearizable : History.t -> bool
