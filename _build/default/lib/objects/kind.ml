type t = Cas_only | Register | Cas_register | Test_and_set | Fetch_and_add | Queue

let equal (a : t) b = a = b

let to_string = function
  | Cas_only -> "cas-only"
  | Register -> "register"
  | Cas_register -> "cas-register"
  | Test_and_set -> "test-and-set"
  | Fetch_and_add -> "fetch-and-add"
  | Queue -> "queue"

let pp ppf k = Fmt.string ppf (to_string k)

let allows kind (op : Op.t) =
  match kind, op with
  | Cas_only, Cas _ -> true
  | Cas_only, (Read | Write _ | Test_and_set | Reset | Fetch_and_add _ | Enqueue _ | Dequeue)
    ->
      false
  | Register, (Read | Write _) -> true
  | Register, (Cas _ | Test_and_set | Reset | Fetch_and_add _ | Enqueue _ | Dequeue) -> false
  | Cas_register, (Read | Write _ | Cas _) -> true
  | Cas_register, (Test_and_set | Reset | Fetch_and_add _ | Enqueue _ | Dequeue) -> false
  | Test_and_set, (Test_and_set | Reset | Read) -> true
  | Test_and_set, (Cas _ | Write _ | Fetch_and_add _ | Enqueue _ | Dequeue) -> false
  | Fetch_and_add, (Fetch_and_add _ | Read) -> true
  | Fetch_and_add, (Cas _ | Write _ | Test_and_set | Reset | Enqueue _ | Dequeue) -> false
  | Queue, (Enqueue _ | Dequeue) -> true
  | Queue, (Cas _ | Read | Write _ | Test_and_set | Reset | Fetch_and_add _) -> false

let default_init = function
  | Cas_only | Register | Cas_register | Queue -> Value.Bottom
  | Test_and_set -> Value.Bool false
  | Fetch_and_add -> Value.Int 0

let all = [ Cas_only; Register; Cas_register; Test_and_set; Fetch_and_add; Queue ]
