(** Operations on shared objects.

    Response conventions (the value returned by a correct execution):
    - [Cas] returns the {e original} register content, whether or not the
      swap happened (paper §2, "The CAS primitive").
    - [Read] returns the content; [Write] returns {!Value.Bottom}.
    - [Test_and_set] returns the previous bit as [Bool]; [Reset] returns
      [Bottom].
    - [Fetch_and_add] returns the previous content as [Int].
    - [Enqueue] returns [Bottom]; [Dequeue] returns the removed element,
      or [Bottom] on an empty queue. *)

type t =
  | Cas of { expected : Value.t; desired : Value.t }
  | Read
  | Write of Value.t
  | Test_and_set
  | Reset
  | Fetch_and_add of int
  | Enqueue of Value.t
  | Dequeue

val equal : t -> t -> bool
val compare : t -> t -> int
val pp : Format.formatter -> t -> unit
val to_string : t -> string

val is_cas : t -> bool

val writes : t -> bool
(** [writes op] is [true] if a correct execution of [op] can modify the
    object state (CAS, write, test-and-set, reset, fetch-and-add). *)
