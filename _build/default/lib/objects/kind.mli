(** Object kinds (types in the paper's sense, §2).

    A kind fixes the set of operations an object supports and its default
    initial state. [Cas_only] matches the paper's CAS object exactly: it
    supports {e only} the CAS operation — in particular no read (paper
    §3.3), which is what makes fault detection subtle. *)

type t =
  | Cas_only  (** the paper's CAS object: CAS is the only operation *)
  | Register  (** atomic read/write register *)
  | Cas_register  (** register with read, write and CAS (used by baselines) *)
  | Test_and_set  (** test-and-set bit with reset *)
  | Fetch_and_add  (** integer fetch-and-add cell with read *)
  | Queue  (** FIFO queue with enqueue/dequeue (the Â§6 relaxation case study) *)

val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
val to_string : t -> string

val allows : t -> Op.t -> bool
(** [allows kind op] is whether an object of [kind] supports [op]. *)

val default_init : t -> Value.t
(** Default initial state: [Bottom] for CAS/registers (and the empty
    queue, encoded as [Bottom] — see {!Vqueue}), [Bool false] for
    test-and-set, [Int 0] for fetch-and-add. *)

val all : t list
(** Every kind, for exhaustive tests. *)
