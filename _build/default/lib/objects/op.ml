type t =
  | Cas of { expected : Value.t; desired : Value.t }
  | Read
  | Write of Value.t
  | Test_and_set
  | Reset
  | Fetch_and_add of int
  | Enqueue of Value.t
  | Dequeue

let equal a b =
  match a, b with
  | Cas x, Cas y -> Value.equal x.expected y.expected && Value.equal x.desired y.desired
  | Read, Read | Test_and_set, Test_and_set | Reset, Reset -> true
  | Write x, Write y -> Value.equal x y
  | Fetch_and_add x, Fetch_and_add y -> x = y
  | Enqueue x, Enqueue y -> Value.equal x y
  | Dequeue, Dequeue -> true
  | (Cas _ | Read | Write _ | Test_and_set | Reset | Fetch_and_add _ | Enqueue _ | Dequeue), _
    ->
      false

let tag = function
  | Cas _ -> 0
  | Read -> 1
  | Write _ -> 2
  | Test_and_set -> 3
  | Reset -> 4
  | Fetch_and_add _ -> 5
  | Enqueue _ -> 6
  | Dequeue -> 7

let compare a b =
  match a, b with
  | Cas x, Cas y ->
      let c = Value.compare x.expected y.expected in
      if c <> 0 then c else Value.compare x.desired y.desired
  | Write x, Write y -> Value.compare x y
  | Fetch_and_add x, Fetch_and_add y -> Int.compare x y
  | Enqueue x, Enqueue y -> Value.compare x y
  | _, _ -> Int.compare (tag a) (tag b)

let pp ppf = function
  | Cas { expected; desired } -> Fmt.pf ppf "CAS(%a \xe2\x86\x92 %a)" Value.pp expected Value.pp desired
  | Read -> Fmt.string ppf "Read"
  | Write v -> Fmt.pf ppf "Write(%a)" Value.pp v
  | Test_and_set -> Fmt.string ppf "TAS"
  | Reset -> Fmt.string ppf "Reset"
  | Fetch_and_add n -> Fmt.pf ppf "FAA(%d)" n
  | Enqueue v -> Fmt.pf ppf "Enq(%a)" Value.pp v
  | Dequeue -> Fmt.string ppf "Deq"

let to_string op = Fmt.str "%a" pp op

let is_cas = function Cas _ -> true | _ -> false

let writes = function
  | Cas _ | Write _ | Test_and_set | Reset | Fetch_and_add _ | Enqueue _ | Dequeue -> true
  | Read -> false
