type t = int

let of_int i =
  if i < 0 then invalid_arg "Obj_id.of_int: negative id";
  i

let to_int i = i
let equal = Int.equal
let compare = Int.compare
let pp ppf i = Fmt.pf ppf "O%d" i
