(** The critical-state analysis at the heart of the Theorem 18 proof,
    executable.

    The FLP/Herlihy argument the paper adapts walks a protocol to a
    {e critical} configuration: a multivalent state every one of whose
    immediate extensions is univalent — so the very next step decides the
    outcome, and the case analysis on what those pending steps are (reads,
    writes to distinct objects, CASes on the same faulty object) yields
    the indistinguishability contradiction.

    This module performs that walk on a concrete protocol instance:
    starting from the (multivalent) initial state it descends through the
    decision tree of {!Ffault_verify.Dfs}, keeping to multivalent
    branches, until it reaches a state where every available choice is
    univalent — and reports the choices with their valencies and
    descriptions (which process steps, or which fault fires). Against a
    protocol that does {e not} solve consensus, the multivalent walk
    instead bottoms out in a disagreeing execution ({!Disagreement}) —
    the proof's contradiction, materialized. Experiment E4 prints both
    shapes. *)

open Ffault_verify

type choice_desc =
  | Schedule of int  (** this decision schedules process i *)
  | Outcome of Ffault_sim.Engine.outcome_choice
      (** this decision picks a step outcome (correct or a fault) *)

val pp_choice_desc : Format.formatter -> choice_desc -> unit

type child = {
  decision : int;  (** the branch index taken at the critical point *)
  desc : choice_desc;
  verdict : Valency.verdict;
}

type result =
  | Critical of {
      prefix : int array;  (** decisions reaching the critical state *)
      depth : int;
      children : child list;  (** all immediate extensions, each univalent *)
    }
  | Disagreement of {
      prefix : int array;
      depth : int;
      values : Ffault_objects.Value.t list;  (** the conflicting decisions *)
    }
      (** the multivalent walk bottomed out in a completed execution whose
          processes decided differently — for an incorrect protocol the
          descent does not find a critical state, it finds the
          contradiction itself (the executable form of the proof's
          conclusion) *)
  | Not_found of { reason : string }

val pp_result : Format.formatter -> result -> unit

val find :
  ?reduced_faulty_proc:int ->
  ?max_depth:int ->
  ?valency_budget:int ->
  Consensus_check.setup ->
  result
(** Defaults: full fault model, depth 32, 50_000 executions per valency
    query. Assumes the initial state is multivalent (distinct inputs). *)
