module Consensus = Ffault_consensus
module Protocol = Consensus.Protocol
module Check = Ffault_verify.Consensus_check
module Mass = Ffault_verify.Mass
module Fault_kind = Ffault_fault.Fault_kind
module Injector = Ffault_fault.Injector
module Rng = Ffault_prng.Rng

type row = {
  f : int;
  t : int;
  n_ok : int;
  construction_runs : int;
  construction_failures : int;
  witness_found : bool;
  consensus_number : int option;
}

let pp_row ppf r =
  Fmt.pf ppf "f=%d t=%d: n=%d ok (%d/%d runs clean), n=%d witness %s -> consensus number %a"
    r.f r.t r.n_ok
    (r.construction_runs - r.construction_failures)
    r.construction_runs (r.f + 2)
    (if r.witness_found then "found" else "NOT FOUND")
    (Fmt.option ~none:(Fmt.any "?") Fmt.int)
    r.consensus_number

let compute_row ?(runs = 300) ?(seed = 0x5EEDL) ~t ~f () =
  (* Construction half: Fig. 3 at n = f + 1 under randomized overriding
     adversaries within budget (f, t). *)
  let params_ok = Protocol.params ~t ~n_procs:(f + 1) ~f () in
  let setup_ok = Check.setup Consensus.Bounded_faults.protocol params_ok in
  let summary =
    Mass.run
      ~injector:(fun rng ->
        Injector.probabilistic ~seed:(Rng.next_seed rng) ~p:0.4 Fault_kind.Overriding)
      ~n_runs:runs ~base_seed:seed setup_ok
  in
  (* Impossibility half: covering adversary at n = f + 2 against the same
     protocol instance (now outside its envelope). *)
  let params_bad = Protocol.params ~t ~n_procs:(f + 2) ~f () in
  let setup_bad = Check.setup Consensus.Bounded_faults.protocol params_bad in
  let covering = Covering.run setup_bad in
  let construction_ok = summary.Mass.failure_count = 0 in
  {
    f;
    t;
    n_ok = f + 1;
    construction_runs = summary.Mass.runs;
    construction_failures = summary.Mass.failure_count;
    witness_found = covering.Covering.violation_found;
    consensus_number =
      (if construction_ok && covering.Covering.violation_found then Some (f + 1) else None);
  }

let table ?runs ?seed ?(t = 1) ~max_f () =
  List.init max_f (fun i -> compute_row ?runs ?seed ~t ~f:(i + 1) ())
