(** The faulty-CAS consensus hierarchy (§5.2 corollary).

    A set of f overriding-faulty CAS objects with a bounded number t of
    faults per object has consensus number exactly f + 1: the Fig. 3
    construction works for n = f + 1 processes, and the Theorem 19
    covering adversary defeats any protocol (we exercise Fig. 3 itself)
    for n = f + 2. Sweeping f therefore places a faulty setting at every
    level of Herlihy's consensus hierarchy — experiment E6's table. *)

type row = {
  f : int;  (** objects (all possibly faulty) *)
  t : int;  (** fault bound per object *)
  n_ok : int;  (** f + 1: largest n the construction handles *)
  construction_runs : int;  (** randomized adversarial runs performed at n_ok *)
  construction_failures : int;  (** must be 0 *)
  witness_found : bool;  (** covering adversary violation at n = f + 2 *)
  consensus_number : int option;
      (** [Some (f + 1)] when both halves confirm, [None] otherwise *)
}

val pp_row : Format.formatter -> row -> unit

val compute_row : ?runs:int -> ?seed:int64 -> t:int -> f:int -> unit -> row
(** Verify both halves for one f: mass randomized adversarial testing of
    Fig. 3 at n = f + 1 (within budget (f, t)), and the covering adversary
    at n = f + 2. *)

val table : ?runs:int -> ?seed:int64 -> ?t:int -> max_f:int -> unit -> row list
(** Rows for f = 1 … max_f. Defaults: 300 runs per row, t = 1. *)
