(** Valency analysis (§5.1): classify execution states as univalent or
    multivalent by bounded exhaustive lookahead.

    A state — identified here by the decision prefix that reaches it in
    the {!Ffault_verify.Dfs} search tree — is x-valent if every extension
    decides x, and multivalent if at least two different decision values
    are reachable. This makes the vocabulary of the Theorem 18 proof
    executable: experiment E4 exhibits the initial state's multivalence
    and tracks how adversarial steps steer valency. *)

open Ffault_objects

type verdict =
  | Univalent of Value.t  (** every explored extension decides this value *)
  | Multivalent of Value.t list
      (** at least two reachable decision values (sorted, deduplicated) *)
  | Indeterminate
      (** exploration truncated before any decision, or no extension
          decided (e.g. all hit step limits) *)

val pp_verdict : Format.formatter -> verdict -> unit

val analyze :
  ?max_executions:int ->
  ?max_branch_depth:int ->
  ?reduced_faulty_proc:int ->
  prefix:int array ->
  Ffault_verify.Consensus_check.setup ->
  verdict
(** Explore all extensions of [prefix] (in the full fault model, or the
    reduced model if [reduced_faulty_proc] is given) and collect the
    decision values reached. A verdict of [Univalent] is exact only if the
    exploration was exhaustive within the bounds; callers compare
    [max_executions] against their expected tree size. *)
