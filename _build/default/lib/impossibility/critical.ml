module Engine = Ffault_sim.Engine
module Check = Ffault_verify.Consensus_check
module Injector = Ffault_fault.Injector

type choice_desc = Schedule of int | Outcome of Engine.outcome_choice

let pp_choice_desc ppf = function
  | Schedule p -> Fmt.pf ppf "schedule p%d" p
  | Outcome c -> Fmt.pf ppf "outcome %a" Engine.pp_outcome_choice c

type child = { decision : int; desc : choice_desc; verdict : Valency.verdict }

type result =
  | Critical of { prefix : int array; depth : int; children : child list }
  | Disagreement of { prefix : int array; depth : int; values : Ffault_objects.Value.t list }
  | Not_found of { reason : string }

let pp_result ppf = function
  | Critical { prefix; depth; children } ->
      Fmt.pf ppf "@[<v>critical state at depth %d (prefix %a):@,%a@]" depth
        (Fmt.array ~sep:Fmt.comma Fmt.int)
        prefix
        (Fmt.list ~sep:Fmt.cut (fun ppf c ->
             Fmt.pf ppf "  choice %d (%a) \xe2\x86\x92 %a" c.decision pp_choice_desc c.desc
               Valency.pp_verdict c.verdict))
        children
  | Disagreement { prefix; depth; values } ->
      Fmt.pf ppf
        "multivalent walk bottomed out in a disagreeing execution at depth %d (prefix %a): \
         decided {%a}"
        depth
        (Fmt.array ~sep:Fmt.comma Fmt.int)
        prefix
        (Fmt.list ~sep:Fmt.comma Ffault_objects.Value.pp)
        values
  | Not_found { reason } -> Fmt.pf ppf "no critical state found: %s" reason

(* Instrumented replay: follow [decisions], recording at each branchable
   point its option count and the description of the option taken. The
   recording mirrors Dfs.run_once's decision discipline exactly (points
   with a single option consume no slot; forced outcomes are not
   branchable). *)
let replay_describe setup ~forced_outcome decisions =
  let records = ref [] in
  let idx = ref 0 in
  let next n describe =
    if n <= 1 then describe 0
    else begin
      let d = if !idx < Array.length decisions then decisions.(!idx) else 0 in
      let d = if d < n then d else 0 in
      let desc = describe d in
      records := (n, desc) :: !records;
      incr idx;
      desc
    end
  in
  let driver =
    {
      Engine.choose_proc =
        (fun ~enabled ~step:_ ->
          match next (List.length enabled) (fun c -> Schedule (List.nth enabled c)) with
          | Schedule p -> p
          | Outcome _ -> assert false);
      choose_outcome =
        (fun ctx ~options ->
          match forced_outcome with
          | Some policy -> policy ctx ~options
          | None -> (
              match next (List.length options) (fun c -> Outcome (List.nth options c)) with
              | Outcome o -> o
              | Schedule _ -> assert false));
      after_step = (fun _ -> []);
    }
  in
  let report = Check.run_with_driver setup driver in
  (report, Array.of_list (List.rev !records))

let find ?reduced_faulty_proc ?(max_depth = 32) ?(valency_budget = 50_000) setup =
  let forced_outcome =
    Option.map (fun p -> Reduced_model.forced ~faulty_proc:p) reduced_faulty_proc
  in
  let valency prefix =
    Valency.analyze ~max_executions:valency_budget ?reduced_faulty_proc ~prefix setup
  in
  (* Option count and per-option description at the frontier of [prefix]. *)
  let frontier prefix =
    let _, records = replay_describe setup ~forced_outcome prefix in
    if Array.length records <= Array.length prefix then None
    else begin
      let n, _ = records.(Array.length prefix) in
      let describe c =
        let _, records' =
          replay_describe setup ~forced_outcome (Array.append prefix [| c |])
        in
        snd records'.(Array.length prefix)
      in
      Some (List.init n (fun c -> (c, describe c)))
    end
  in
  let rec descend prefix depth =
    if depth > max_depth then Not_found { reason = Fmt.str "max depth %d reached" max_depth }
    else
      match frontier prefix with
      | None -> (
          (* The default continuation of [prefix] has no further branch
             points: the walk bottomed out in one completed execution. If
             it disagrees, that is the contradiction itself. *)
          let report, _ = replay_describe setup ~forced_outcome prefix in
          let values =
            List.sort_uniq Ffault_objects.Value.compare
              (List.map snd (Engine.decided_values report.Check.result))
          in
          match values with
          | _ :: _ :: _ -> Disagreement { prefix; depth; values }
          | _ ->
              Not_found
                { reason = "execution completed while still multivalent (budget artifact)" })
      | Some options -> (
          let children =
            List.map
              (fun (c, desc) ->
                { decision = c; desc; verdict = valency (Array.append prefix [| c |]) })
              options
          in
          let multivalent_child =
            List.find_opt
              (fun ch ->
                match ch.verdict with Valency.Multivalent _ -> true | _ -> false)
              children
          in
          match multivalent_child with
          | Some ch -> descend (Array.append prefix [| ch.decision |]) (depth + 1)
          | None ->
              if
                List.exists
                  (fun ch ->
                    match ch.verdict with Valency.Indeterminate -> true | _ -> false)
                  children
              then Not_found { reason = "a child's valency was indeterminate (budget)" }
              else Critical { prefix; depth; children })
  in
  match valency [||] with
  | Valency.Multivalent _ -> descend [||] 0
  | v ->
      Not_found
        { reason = Fmt.str "initial state is not multivalent (%a)" Valency.pp_verdict v }
