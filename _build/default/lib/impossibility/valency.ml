open Ffault_objects
module Dfs = Ffault_verify.Dfs
module Check = Ffault_verify.Consensus_check
module Engine = Ffault_sim.Engine

type verdict = Univalent of Value.t | Multivalent of Value.t list | Indeterminate

let pp_verdict ppf = function
  | Univalent v -> Fmt.pf ppf "univalent(%a)" Value.pp v
  | Multivalent vs ->
      Fmt.pf ppf "multivalent{%a}" (Fmt.list ~sep:Fmt.comma Value.pp) vs
  | Indeterminate -> Fmt.string ppf "indeterminate"

let analyze ?(max_executions = 100_000) ?(max_branch_depth = 64) ?reduced_faulty_proc ~prefix
    setup =
  let values = ref [] in
  let add v = if not (List.exists (Value.equal v) !values) then values := v :: !values in
  let on_report _decisions (report : Check.report) =
    List.iter (fun (_, v) -> add v) (Engine.decided_values report.Check.result)
  in
  let forced_outcome =
    Option.map (fun p -> Reduced_model.forced ~faulty_proc:p) reduced_faulty_proc
  in
  let stats =
    Dfs.explore ~max_executions ~max_branch_depth ~max_witnesses:max_int ?forced_outcome
      ~initial_prefix:prefix ~on_report setup
  in
  match List.sort_uniq Value.compare !values with
  | [] -> Indeterminate
  | [ v ] -> if stats.Dfs.truncated then Indeterminate else Univalent v
  | vs -> Multivalent vs
