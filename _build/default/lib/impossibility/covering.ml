open Ffault_objects
module Engine = Ffault_sim.Engine
module Injector = Ffault_fault.Injector
module Fault_kind = Ffault_fault.Fault_kind
module Check = Ffault_verify.Consensus_check

type outcome = {
  report : Check.report;
  faults_committed : (int * Obj_id.t) list;
  violation_found : bool;
}

(* Driver state machine. [stage] is the current soloist: 0, then 1..f
   (each halted after its covering fault), then f+1, then cleanup (the
   halted processes are released and finish correctly). *)
let run (setup : Check.setup) =
  let f = setup.Check.params.f in
  let n = setup.Check.params.n_procs in
  if f < 1 then invalid_arg "Covering.run: requires f >= 1";
  if n < f + 2 then invalid_arg "Covering.run: requires n >= f + 2";
  let n_objects = List.length (setup.Check.protocol.objects setup.Check.params) in
  let written = Array.make n_objects false in
  let halted = Array.make n false in
  let stage = ref 0 in
  let faults = ref [] in
  let choose_proc ~enabled ~step:_ =
    let rec target () =
      if !stage > f + 1 then List.hd enabled (* cleanup: release everyone *)
      else
        let p = !stage in
        if (p >= 1 && p <= f && halted.(p)) || not (List.mem p enabled) then begin
          incr stage;
          target ()
        end
        else p
    in
    target ()
  in
  let choose_outcome (ctx : Injector.ctx) ~options =
    let p = ctx.proc in
    let oid = Obj_id.to_int ctx.obj in
    if p >= 1 && p <= f && !stage = p && Op.is_cas ctx.op && not written.(oid) then begin
      (* pᵢ's first CAS on an object untouched by p₁..pᵢ₋₁: commit the
         covering fault and halt pᵢ. *)
      written.(oid) <- true;
      halted.(p) <- true;
      let inject = Engine.Inject (Fault_kind.Overriding, None) in
      if List.exists (Engine.equal_outcome_choice inject) options then begin
        faults := (p, ctx.obj) :: !faults;
        inject
      end
      else
        (* The fault is unobservable here (the CAS succeeds anyway, or
           writes the value already present): the write lands regardless,
           which is all the construction needs. *)
        Engine.Correct_outcome
    end
    else Engine.Correct_outcome
  in
  let driver =
    { Engine.choose_proc; choose_outcome; after_step = (fun _ -> []) }
  in
  let report = Check.run_with_driver setup driver in
  {
    report;
    faults_committed = List.rev !faults;
    violation_found = not (Check.ok report);
  }
