module Engine = Ffault_sim.Engine
module Fault_kind = Ffault_fault.Fault_kind
module Injector = Ffault_fault.Injector
module Dfs = Ffault_verify.Dfs

let injector ~faulty_proc = Injector.by_process ~procs:[ faulty_proc ] Fault_kind.Overriding

let forced ~faulty_proc (ctx : Injector.ctx) ~options =
  let inject = Engine.Inject (Fault_kind.Overriding, None) in
  if ctx.Injector.proc = faulty_proc && List.exists (Engine.equal_outcome_choice inject) options
  then inject
  else Engine.Correct_outcome

let explore ?max_executions ?max_branch_depth ?max_witnesses ~faulty_proc setup =
  Dfs.explore ?max_executions ?max_branch_depth ?max_witnesses
    ~forced_outcome:(forced ~faulty_proc) setup
