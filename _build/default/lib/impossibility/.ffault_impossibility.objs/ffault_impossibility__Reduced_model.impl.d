lib/impossibility/reduced_model.ml: Ffault_fault Ffault_sim Ffault_verify List
