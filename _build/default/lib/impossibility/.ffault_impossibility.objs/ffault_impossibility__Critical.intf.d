lib/impossibility/critical.mli: Consensus_check Ffault_objects Ffault_sim Ffault_verify Format Valency
