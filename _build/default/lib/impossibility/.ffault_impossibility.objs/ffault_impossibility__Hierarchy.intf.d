lib/impossibility/hierarchy.mli: Format
