lib/impossibility/reduced_model.mli: Ffault_fault Ffault_sim Ffault_verify
