lib/impossibility/hierarchy.ml: Covering Ffault_consensus Ffault_fault Ffault_prng Ffault_verify Fmt List
