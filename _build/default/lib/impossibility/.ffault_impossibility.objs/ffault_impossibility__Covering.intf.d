lib/impossibility/covering.mli: Ffault_objects Ffault_verify Obj_id
