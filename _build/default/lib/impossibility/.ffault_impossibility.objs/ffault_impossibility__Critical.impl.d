lib/impossibility/critical.ml: Array Ffault_fault Ffault_objects Ffault_sim Ffault_verify Fmt List Option Reduced_model Valency
