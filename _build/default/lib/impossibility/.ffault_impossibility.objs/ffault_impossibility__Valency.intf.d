lib/impossibility/valency.mli: Ffault_objects Ffault_verify Format Value
