lib/impossibility/covering.ml: Array Ffault_fault Ffault_objects Ffault_sim Ffault_verify List Obj_id Op
