lib/impossibility/valency.ml: Ffault_objects Ffault_sim Ffault_verify Fmt List Option Reduced_model Value
