(** The covering adversary of Theorem 19 / Claim 20, executable.

    Against any consensus protocol over f CAS objects with n ≥ f + 2
    processes, the adversary builds the paper's staged execution:

    + p₀ runs solo until it decides (say v₀).
    + For i = 1 … f: pᵢ runs solo until it is about to CAS an object not
      yet written by p₁ … pᵢ₋₁; that CAS suffers an overriding fault
      (erasing whatever p₀ left there), and pᵢ is halted.
    + p₍f₊₁₎ runs solo. Every trace p₀ left in the objects has been
      overridden, so this run is indistinguishable from one in which p₀
      never took a step — by validity and wait-freedom, p₍f₊₁₎ must decide
      some value in {v₁ … v₍f₊₁₎} ≠ v₀. Consistency is violated with
      exactly one fault per object (t = 1).
    + (Beyond the proof: the halted processes are then released and run
      correctly to completion, so the engine result is a complete
      execution.)

    The adversary is protocol-agnostic: it only watches which objects have
    been CASed. Running it against a protocol {e inside} its envelope
    (n ≤ f + 1) simply fails to produce a violation — which is itself a
    datum the E5 experiment reports. *)

open Ffault_objects

type outcome = {
  report : Ffault_verify.Consensus_check.report;
  faults_committed : (int * Obj_id.t) list;
      (** (process, object) pairs of the staged overriding faults *)
  violation_found : bool;
}

val run : Ffault_verify.Consensus_check.setup -> outcome
(** The setup's params must have n ≥ f + 2 and f ≥ 1 for the classic
    construction; other settings are allowed (see above).
    The setup's budget should permit overriding faults on f objects
    (t ≥ 1). *)
