(** The reduced model of Theorem 18: a designated process whose CAS
    executions are {e always} faulty (overriding), all other processes
    correct.

    The paper uses this restricted adversary to port the FLP/Herlihy
    valency argument to a nondeterministic fault setting: since faults in
    the reduced model are deterministic (they always happen, and only via
    one process), a decision step is well-defined and the classic
    indistinguishability contradiction goes through. Impossibility in the
    reduced model implies impossibility in the full functional-fault
    model, because the reduced adversary is one of the full model's
    adversaries.

    Operationally this module explores all schedules of a protocol under
    the reduced-model fault rule. Note the asymmetry with the proof: the
    proof shows {e no} protocol survives the reduced model, via a
    non-constructive valency argument; replaying the reduced rule against
    one {e specific} protocol may or may not yield a concrete violation —
    some protocols (e.g. the Fig. 2 sweep with f objects, f ≥ 2) are
    breakable only by faults spread over several processes, which the
    full-model explorer ({!Ffault_verify.Dfs} with fault branching) finds.
    Experiment E4 reports both. *)

val injector : faulty_proc:int -> Ffault_fault.Injector.t
(** Strategy-mode injector implementing the reduced rule. *)

val forced :
  faulty_proc:int ->
  Ffault_fault.Injector.ctx ->
  options:Ffault_sim.Engine.outcome_choice list ->
  Ffault_sim.Engine.outcome_choice
(** The reduced rule as a forced-outcome policy for
    {!Ffault_verify.Dfs.explore} (also used by {!Valency}). *)

val explore :
  ?max_executions:int ->
  ?max_branch_depth:int ->
  ?max_witnesses:int ->
  faulty_proc:int ->
  Ffault_verify.Consensus_check.setup ->
  Ffault_verify.Dfs.stats
(** Exhaustive schedule exploration with the reduced fault rule forced
    (fault choices are not branch points). *)
