type t = { mutable state : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

let create seed = { state = seed }

let copy g = { state = g.state }

(* The standard splitmix64 finalizer: two xor-shift-multiply rounds. *)
let mix z =
  let z = Int64.(mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L) in
  let z = Int64.(mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL) in
  Int64.(logxor z (shift_right_logical z 31))

let next g =
  g.state <- Int64.add g.state golden_gamma;
  mix g.state

let next_int g ~bound =
  if bound <= 0 then invalid_arg "Splitmix.next_int: bound must be positive";
  (* Keep 62 bits so the value fits OCaml's 63-bit native int without
     wrapping negative; modulo bias is negligible for our bounds (all far
     below 2^62). *)
  let v = Int64.to_int (Int64.shift_right_logical (next g) 2) in
  v mod bound

let next_float g =
  (* 53 random bits into the mantissa range. *)
  let bits = Int64.to_int (Int64.shift_right_logical (next g) 11) in
  float_of_int bits *. (1.0 /. 9007199254740992.0)

let next_bool g = Int64.logand (next g) 1L = 1L

let hash z = mix (Int64.add z golden_gamma)

let split g = { state = next g }

let state g = g.state

let of_state s = { state = s }
