(** Sampling helpers over a SplitMix64 generator.

    This is the generator handed around inside the simulator: everything an
    injector, scheduler or workload generator needs, with explicit state and
    cheap {!split} for independent sub-streams. *)

type t

val make : seed:int64 -> t
(** [make ~seed] creates a generator. Equal seeds give equal behaviour. *)

val split : t -> t
(** [split g] is a statistically independent sub-generator; useful to give
    each process or object its own stream while keeping one root seed. *)

val copy : t -> t
(** [copy g] continues independently from [g]'s current state. *)

val next_seed : t -> int64
(** [next_seed g] draws a fresh 64-bit seed, for deriving per-run child
    generators identified by their seed alone. *)

val int : t -> int -> int
(** [int g bound] is uniform in [\[0, bound)].
    @raise Invalid_argument if [bound <= 0]. *)

val int_in : t -> lo:int -> hi:int -> int
(** [int_in g ~lo ~hi] is uniform in [\[lo, hi\]] inclusive.
    @raise Invalid_argument if [hi < lo]. *)

val float : t -> float
(** Uniform in [\[0, 1)]. *)

val bool : t -> bool
(** Uniform boolean. *)

val bernoulli : t -> p:float -> bool
(** [bernoulli g ~p] is [true] with probability [p] (clamped to [\[0,1\]]). *)

val pick : t -> 'a array -> 'a
(** [pick g a] is a uniform element of [a].
    @raise Invalid_argument on an empty array. *)

val pick_list : t -> 'a list -> 'a
(** [pick_list g l] is a uniform element of [l].
    @raise Invalid_argument on an empty list. *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher–Yates shuffle. *)

val shuffled_list : t -> 'a list -> 'a list
(** [shuffled_list g l] is a fresh uniformly shuffled copy of [l]. *)

val sample_without_replacement : t -> k:int -> n:int -> int list
(** [sample_without_replacement g ~k ~n] is a uniformly chosen size-[k]
    subset of [\[0, n)], in increasing order.
    @raise Invalid_argument if [k < 0 || k > n]. *)

val weighted_index : t -> float array -> int
(** [weighted_index g w] samples index [i] with probability proportional to
    [w.(i)]. @raise Invalid_argument if weights are empty, negative, or sum
    to zero. *)

val seed_of_string : string -> int64
(** Deterministic 64-bit seed derived from a string label (FNV-1a), so
    experiments can be named rather than numbered. *)
