(** SplitMix64 pseudo-random number generator.

    A small, fast, splittable generator (Steele, Lea, Flood 2014) used both
    directly for reproducible simulation randomness and to seed
    {!Ffault_prng.Xoshiro}. All state is explicit: there is no global
    generator, so concurrent experiments never interfere and every run is
    replayable from its seed. *)

type t
(** Mutable generator state. *)

val create : int64 -> t
(** [create seed] makes a fresh generator. Equal seeds yield equal
    streams. *)

val copy : t -> t
(** [copy g] is an independent generator that continues from [g]'s current
    state; advancing one does not affect the other. *)

val next : t -> int64
(** [next g] advances [g] and returns the next 64-bit output. *)

val next_int : t -> bound:int -> int
(** [next_int g ~bound] is a uniform integer in [\[0, bound)].
    @raise Invalid_argument if [bound <= 0]. *)

val next_float : t -> float
(** [next_float g] is a uniform float in [\[0, 1)]. *)

val next_bool : t -> bool
(** [next_bool g] is a uniform boolean. *)

val split : t -> t
(** [split g] advances [g] and returns a new generator whose stream is
    (statistically) independent of [g]'s subsequent outputs. *)

val hash : int64 -> int64
(** The stateless SplitMix64 finalizer: a high-quality 64-bit mixer, used
    for per-index deterministic decisions that must be computable from
    several domains without shared generator state. *)

val state : t -> int64
(** [state g] exposes the current internal state, for checkpointing. *)

val of_state : int64 -> t
(** [of_state s] resumes a generator from a state captured by {!state}. *)
