lib/prng/rng.mli:
