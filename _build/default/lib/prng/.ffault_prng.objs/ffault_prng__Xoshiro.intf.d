lib/prng/xoshiro.mli:
