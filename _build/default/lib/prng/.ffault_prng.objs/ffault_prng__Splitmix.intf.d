lib/prng/splitmix.mli:
