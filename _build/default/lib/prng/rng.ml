type t = Splitmix.t

let make ~seed = Splitmix.create seed

let split = Splitmix.split

let copy = Splitmix.copy

let next_seed = Splitmix.next

let int g bound = Splitmix.next_int g ~bound

let int_in g ~lo ~hi =
  if hi < lo then invalid_arg "Rng.int_in: hi < lo";
  lo + int g (hi - lo + 1)

let float = Splitmix.next_float

let bool = Splitmix.next_bool

let bernoulli g ~p =
  if p <= 0.0 then false else if p >= 1.0 then true else float g < p

let pick g a =
  if Array.length a = 0 then invalid_arg "Rng.pick: empty array";
  a.(int g (Array.length a))

let pick_list g l =
  match l with
  | [] -> invalid_arg "Rng.pick_list: empty list"
  | _ -> List.nth l (int g (List.length l))

let shuffle g a =
  for i = Array.length a - 1 downto 1 do
    let j = int g (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done

let shuffled_list g l =
  let a = Array.of_list l in
  shuffle g a;
  Array.to_list a

let sample_without_replacement g ~k ~n =
  if k < 0 || k > n then invalid_arg "Rng.sample_without_replacement";
  (* Reservoir-free selection sampling (Knuth algorithm S). *)
  let rec go i remaining acc =
    if remaining = 0 then List.rev acc
    else if int g (n - i) < remaining then go (i + 1) (remaining - 1) (i :: acc)
    else go (i + 1) remaining acc
  in
  go 0 k []

let weighted_index g w =
  let n = Array.length w in
  if n = 0 then invalid_arg "Rng.weighted_index: empty weights";
  let total = Array.fold_left (fun acc x ->
      if x < 0.0 then invalid_arg "Rng.weighted_index: negative weight";
      acc +. x) 0.0 w
  in
  if total <= 0.0 then invalid_arg "Rng.weighted_index: zero total weight";
  let target = float g *. total in
  let rec scan i acc =
    if i = n - 1 then i
    else
      let acc = acc +. w.(i) in
      if target < acc then i else scan (i + 1) acc
  in
  scan 0 0.0

let seed_of_string s =
  let h = ref 0xCBF29CE484222325L in
  String.iter
    (fun c ->
      h := Int64.logxor !h (Int64.of_int (Char.code c));
      h := Int64.mul !h 0x100000001B3L)
    s;
  !h
