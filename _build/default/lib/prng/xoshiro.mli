(** Xoshiro256** pseudo-random number generator.

    Blackman & Vigna's general-purpose 256-bit-state generator. Used where
    long non-overlapping streams matter (per-domain generators in the
    multicore runtime). Seeded from a single [int64] via SplitMix64, per the
    authors' recommendation. *)

type t
(** Mutable generator state. *)

val create : int64 -> t
(** [create seed] expands [seed] through SplitMix64 into the 256-bit
    state. *)

val copy : t -> t
(** [copy g] is an independent continuation of [g]'s current state. *)

val next : t -> int64
(** [next g] advances [g] and returns the next 64-bit output. *)

val next_int : t -> bound:int -> int
(** [next_int g ~bound] is a uniform integer in [\[0, bound)].
    @raise Invalid_argument if [bound <= 0]. *)

val next_float : t -> float
(** [next_float g] is a uniform float in [\[0, 1)]. *)

val jump : t -> unit
(** [jump g] advances [g] by 2{^128} steps; calling it [k] times on copies
    yields [k] non-overlapping subsequences for parallel use. *)
