type t = int

let tag_bottom = 0
let tag_plain = 1
let tag_staged = 2
let staged_bits = 24
let staged_limit = 1 lsl staged_bits
let plain_limit = 1 lsl 56

let bottom = tag_bottom

let of_int v =
  if v < 0 || v >= plain_limit then invalid_arg "Packed.of_int: out of range";
  (v lsl 2) lor tag_plain

(* Stages are stored offset by one so the protocol's ⟨v, −1⟩ expectation
   values (Fig. 3 line 13) are representable. *)
let staged ~value ~stage =
  if value < 0 || value >= staged_limit then invalid_arg "Packed.staged: value out of range";
  if stage < -1 || stage >= staged_limit - 1 then
    invalid_arg "Packed.staged: stage out of range";
  ((((stage + 1) lsl staged_bits) lor value) lsl 2) lor tag_staged

let tag x = x land 3
let payload x = x lsr 2

let is_bottom x = tag x = tag_bottom
let is_staged x = tag x = tag_staged

let stage_of x = if is_staged x then (payload x lsr staged_bits) - 1 else -1

let unstage x =
  if is_staged x then (payload x land (staged_limit - 1)) lsl 2 lor tag_plain else x

let to_int x =
  if tag x <> tag_plain then invalid_arg "Packed.to_int: not a plain value";
  payload x

let equal (a : t) b = a = b

let pp ppf x =
  match tag x with
  | 0 -> Fmt.string ppf "\xe2\x8a\xa5"
  | 1 -> Fmt.int ppf (payload x)
  | 2 ->
      Fmt.pf ppf "\xe2\x9f\xa8%d,%d\xe2\x9f\xa9"
        (payload x land (staged_limit - 1))
        ((payload x lsr staged_bits) - 1)
  | _ -> Fmt.pf ppf "<invalid:%d>" x

let to_value x =
  let open Ffault_objects.Value in
  match tag x with
  | 0 -> Bottom
  | 1 -> Int (payload x)
  | 2 ->
      Staged
        {
          value = Int (payload x land (staged_limit - 1));
          stage = (payload x lsr staged_bits) - 1;
        }
  | _ -> invalid_arg "Packed.to_value: corrupt representation"

let of_value v =
  let open Ffault_objects.Value in
  match v with
  | Bottom -> Some bottom
  | Int i when i >= 0 && i < plain_limit -> Some (of_int i)
  | Staged { value = Int i; stage }
    when i >= 0 && i < staged_limit && stage >= -1 && stage < staged_limit - 1 ->
      Some (staged ~value:i ~stage)
  | Int _ | Staged _ | Bool _ | Str _ | Pair _ -> None
