lib/runtime/runner.ml: Array Atomic Domain
