lib/runtime/packed.mli: Ffault_objects Format
