lib/runtime/faulty_cas.mli: Packed
