lib/runtime/runner.mli:
