lib/runtime/packed.ml: Ffault_objects Fmt
