lib/runtime/consensus_mc.mli: Faulty_cas Format Packed
