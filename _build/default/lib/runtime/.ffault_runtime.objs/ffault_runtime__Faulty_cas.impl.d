lib/runtime/faulty_cas.ml: Atomic Ffault_prng Int64 Packed Printf
