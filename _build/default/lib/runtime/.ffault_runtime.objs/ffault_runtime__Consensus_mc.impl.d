lib/runtime/consensus_mc.ml: Array Faulty_cas Ffault_consensus Fmt Option Packed Runner
