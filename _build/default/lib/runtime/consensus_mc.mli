(** The paper's consensus protocols on the real-multicore substrate.

    The algorithm code is shared with the simulator — the
    {!Ffault_consensus.Algorithms} functor instantiated over
    {!Faulty_cas} cells — so what runs on hardware atomics is the very
    text that was model-checked. Used by experiment B3 and the multicore
    integration tests. *)

type protocol =
  | Single_cas  (** Fig. 1 / Herlihy: one object *)
  | Sweep of int  (** Fig. 2 over the given number of objects *)
  | Staged of { f : int; t : int }
      (** Fig. 3: f objects, maxStage = t·(4f + f²) *)
  | Silent_retry  (** §3.4 retry loop; pair with a bounded fault plan *)

val pp_protocol : Format.formatter -> protocol -> unit

val objects_needed : protocol -> int

type config = {
  protocol : protocol;
  n_domains : int;
  inputs : int array;  (** plain non-negative inputs, one per domain *)
  plan_for : int -> Faulty_cas.plan;  (** fault plan per object index *)
  style : Faulty_cas.style;  (** overriding or silent injections *)
  t_bound : int option;  (** per-object observable-fault cap *)
}

val config :
  ?plan_for:(int -> Faulty_cas.plan) ->
  ?style:Faulty_cas.style ->
  ?t_bound:int ->
  ?inputs:int array ->
  n_domains:int ->
  protocol ->
  config
(** Defaults: no faults, overriding style, unbounded t, inputs 100, 101,
    …. For [Staged] protocols [t_bound] defaults to the protocol's t. *)

type result = {
  decisions : Packed.t array;
  faults_per_object : int array;  (** observable faults committed *)
  ops_per_object : int array;
  agreed : bool;  (** all decisions equal *)
  valid : bool;  (** every decision is some domain's input *)
}

val execute : config -> result
(** One full parallel consensus: spawn the domains, decide, audit. *)
