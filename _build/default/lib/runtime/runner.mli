(** Parallel execution over OCaml 5 domains.

    [run_parallel] spawns one domain per process, releases them through a
    spin barrier (so they hit the shared objects together, maximizing real
    contention), and joins the results. *)

val run_parallel : domains:int -> (int -> 'a) -> 'a array
(** [run_parallel ~domains f] runs [f i] on domain i for i in
    [\[0, domains)]. Exceptions in a worker propagate on join.
    @raise Invalid_argument if [domains < 1]. *)

val recommended_domains : unit -> int
(** [Domain.recommended_domain_count], capped at 8 — a sensible default
    for the benches. *)
