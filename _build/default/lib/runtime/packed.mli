(** Protocol values packed into OCaml immediates.

    On the multicore substrate, object contents live in [int Atomic.t]:
    immediates make [Atomic.compare_and_set]'s physical equality coincide
    with value equality and keep the hot path allocation-free. The domain
    mirrors the simulator's: ⊥, plain values, and ⟨value, stage⟩ pairs.

    Layout (in a 63-bit OCaml int): 2 tag bits (0 = ⊥, 1 = plain,
    2 = staged), then for staged values 24 bits of stage over 24 bits of
    payload. Plain payloads up to 2⁵⁶ are representable; stages and staged
    payloads up to 2²⁴ − 1, far beyond any protocol's range (maxStage for
    f = t = 100 is 1.04 × 10⁶ < 2²⁴). *)

type t = private int

val bottom : t
val of_int : int -> t
(** A plain value. @raise Invalid_argument if negative or ≥ 2⁵⁶. *)

val staged : value:int -> stage:int -> t
(** ⟨value, stage⟩. @raise Invalid_argument if either is negative or
    ≥ 2²⁴. *)

val is_bottom : t -> bool
val is_staged : t -> bool

val stage_of : t -> int
(** Stage of a staged value; [-1] otherwise. *)

val unstage : t -> t
(** ⟨v, s⟩ ↦ plain v; identity on ⊥ and plain values. *)

val to_int : t -> int
(** Payload of a plain value. @raise Invalid_argument on ⊥ or staged. *)

val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit

val to_value : t -> Ffault_objects.Value.t
(** Round-trip into the simulator's domain (for reuse of its checkers). *)

val of_value : Ffault_objects.Value.t -> t option
(** [None] for values outside the packable subset. *)
