type plan = { plan_name : string; fire : op_index:int -> bool }

let plan_never = { plan_name = "never"; fire = (fun ~op_index:_ -> false) }
let plan_always = { plan_name = "always"; fire = (fun ~op_index:_ -> true) }

let plan_probabilistic ~seed ~p =
  let threshold = Int64.of_float (p *. 9.223372036854775807e18) in
  {
    plan_name = Printf.sprintf "p=%.3f" p;
    fire =
      (fun ~op_index ->
        let h = Ffault_prng.Splitmix.hash (Int64.add seed (Int64.of_int op_index)) in
        (* use the low 63 bits as a uniform non-negative draw *)
        Int64.shift_right_logical h 1 < threshold);
  }

let plan_first_n n = { plan_name = Printf.sprintf "first-%d" n; fire = (fun ~op_index -> op_index < n) }

let plan_every_kth k =
  if k < 1 then invalid_arg "Faulty_cas.plan_every_kth: k < 1";
  { plan_name = Printf.sprintf "every-%dth" k; fire = (fun ~op_index -> op_index mod k = 0) }

type style = Override | Suppress

type t = {
  cell : Packed.t Atomic.t;
  plan : plan;
  style : style;
  t_bound : int option;
  charged : int Atomic.t;
  ops : int Atomic.t;
}

let make ?(plan = plan_never) ?(style = Override) ?t_bound ~init () =
  {
    cell = Atomic.make init;
    plan;
    style;
    t_bound;
    charged = Atomic.make 0;
    ops = Atomic.make 0;
  }

(* Reserve one fault from the budget; refunded if the injection turns out
   unobservable. *)
let try_reserve c =
  match c.t_bound with
  | None ->
      Atomic.incr c.charged;
      true
  | Some t ->
      let rec go () =
        let cur = Atomic.get c.charged in
        if cur >= t then false
        else if Atomic.compare_and_set c.charged cur (cur + 1) then true
        else go ()
      in
      go ()

let refund c = ignore (Atomic.fetch_and_add c.charged (-1))

let correct_cas cell ~expected ~desired =
  let rec go () =
    let cur = Atomic.get cell in
    if Packed.equal cur expected then
      if Atomic.compare_and_set cell expected desired then cur else go ()
    else cur
  in
  go ()

let cas c ~expected ~desired =
  let op_index = Atomic.fetch_and_add c.ops 1 in
  if c.plan.fire ~op_index && try_reserve c then begin
    match c.style with
    | Override ->
        let old = Atomic.exchange c.cell desired in
        (* Unobservable injections (Φ still holds) are not faults: refund. *)
        if Packed.equal old expected || Packed.equal old desired then refund c;
        old
    | Suppress ->
        (* The write is dropped: the operation linearizes at this read.
           Observable only if a correct CAS would have changed the value. *)
        let old = Atomic.get c.cell in
        if not (Packed.equal old expected && not (Packed.equal old desired)) then refund c;
        old
  end
  else correct_cas c.cell ~expected ~desired

let observable_faults c = Atomic.get c.charged
let ops_performed c = Atomic.get c.ops
let peek c = Atomic.get c.cell
