module Algorithms = Ffault_consensus.Algorithms
module Bounded_faults = Ffault_consensus.Bounded_faults

type protocol = Single_cas | Sweep of int | Staged of { f : int; t : int } | Silent_retry

let pp_protocol ppf = function
  | Single_cas -> Fmt.string ppf "single-cas"
  | Sweep m -> Fmt.pf ppf "sweep-%d" m
  | Staged { f; t } -> Fmt.pf ppf "staged(f=%d,t=%d)" f t
  | Silent_retry -> Fmt.string ppf "silent-retry"

let objects_needed = function
  | Single_cas | Silent_retry -> 1
  | Sweep m -> m
  | Staged { f; _ } -> f

type config = {
  protocol : protocol;
  n_domains : int;
  inputs : int array;
  plan_for : int -> Faulty_cas.plan;
  style : Faulty_cas.style;
  t_bound : int option;
}

let config ?plan_for ?(style = Faulty_cas.Override) ?t_bound ?inputs ~n_domains protocol =
  if n_domains < 1 then invalid_arg "Consensus_mc.config: n_domains < 1";
  let inputs =
    match inputs with Some i -> i | None -> Array.init n_domains (fun i -> 100 + i)
  in
  if Array.length inputs <> n_domains then
    invalid_arg "Consensus_mc.config: inputs count differs from n_domains";
  let t_bound =
    match t_bound, protocol with
    | Some t, _ -> Some t
    | None, Staged { t; _ } -> Some t
    | None, (Single_cas | Sweep _ | Silent_retry) -> None
  in
  let plan_for = Option.value plan_for ~default:(fun _ -> Faulty_cas.plan_never) in
  { protocol; n_domains; inputs; plan_for; style; t_bound }

type result = {
  decisions : Packed.t array;
  faults_per_object : int array;
  ops_per_object : int array;
  agreed : bool;
  valid : bool;
}

module type DECIDERS = sig
  val single_cas_decide : input:Packed.t -> Packed.t
  val sweep_decide : objects:int -> input:Packed.t -> Packed.t
  val staged_decide : f:int -> max_stage:int -> input:Packed.t -> Packed.t
  val silent_retry_decide : input:Packed.t -> Packed.t
end

let deciders cells : (module DECIDERS) =
  (module Algorithms.Make (struct
    type value = Packed.t

    let bottom = Packed.bottom
    let equal = Packed.equal
    let mk_staged v s = Packed.staged ~value:(Packed.to_int v) ~stage:s
    let stage_of = Packed.stage_of
    let unstage = Packed.unstage
    let cas i ~expected ~desired = Faulty_cas.cas cells.(i) ~expected ~desired
  end))

let execute cfg =
  let n_objects = objects_needed cfg.protocol in
  let cells =
    Array.init n_objects (fun i ->
        Faulty_cas.make ~plan:(cfg.plan_for i) ~style:cfg.style ?t_bound:cfg.t_bound
          ~init:Packed.bottom ())
  in
  let (module D) = deciders cells in
  let decide me =
    let input = Packed.of_int cfg.inputs.(me) in
    match cfg.protocol with
    | Single_cas -> D.single_cas_decide ~input
    | Sweep m -> D.sweep_decide ~objects:m ~input
    | Staged { f; t } ->
        D.staged_decide ~f ~max_stage:(Bounded_faults.max_stage ~f ~t) ~input
    | Silent_retry -> D.silent_retry_decide ~input
  in
  let decisions = Runner.run_parallel ~domains:cfg.n_domains decide in
  let agreed =
    Array.for_all (fun d -> Packed.equal d decisions.(0)) decisions
  in
  let valid =
    Array.for_all
      (fun d ->
        (not (Packed.is_staged d))
        && (not (Packed.is_bottom d))
        && Array.exists (fun i -> i = Packed.to_int d) cfg.inputs)
      decisions
  in
  {
    decisions;
    faults_per_object = Array.map Faulty_cas.observable_faults cells;
    ops_per_object = Array.map Faulty_cas.ops_performed cells;
    agreed;
    valid;
  }
