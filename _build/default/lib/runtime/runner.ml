let run_parallel ~domains f =
  if domains < 1 then invalid_arg "Runner.run_parallel: domains < 1";
  if domains = 1 then [| f 0 |]
  else begin
    let arrived = Atomic.make 0 in
    let work i () =
      (* spin barrier: start all workers as simultaneously as possible *)
      Atomic.incr arrived;
      while Atomic.get arrived < domains do
        Domain.cpu_relax ()
      done;
      f i
    in
    let handles = Array.init (domains - 1) (fun i -> Domain.spawn (work (i + 1))) in
    let r0 = work 0 () in
    let results = Array.make domains r0 in
    Array.iteri (fun i h -> results.(i + 1) <- Domain.join h) handles;
    results
  end

let recommended_domains () = min 8 (Domain.recommended_domain_count ())
