open Ffault_objects

type event = { obj : Obj_id.t; value : Value.t }

let pp_event ppf e = Fmt.pf ppf "%a := %a" Obj_id.pp e.obj Value.pp e.value

type ctx = { step : int; state_of : Obj_id.t -> Value.t; budget : Budget.t }

type t = { name : string; decide : ctx -> event list }

let never = { name = "never"; decide = (fun _ -> []) }

let scripted plan =
  {
    name = "scripted";
    decide =
      (fun ctx -> match List.assoc_opt ctx.step plan with Some evs -> evs | None -> []);
  }

let probabilistic ~seed ~p ~objects ~values =
  let rng = Ffault_prng.Rng.make ~seed in
  let objects = Array.of_list objects in
  let values = Array.of_list values in
  {
    name = Fmt.str "p=%.3f-random-corruption" p;
    decide =
      (fun _ctx ->
        if
          Array.length objects > 0
          && Array.length values > 0
          && Ffault_prng.Rng.bernoulli rng ~p
        then
          [ { obj = Ffault_prng.Rng.pick rng objects; value = Ffault_prng.Rng.pick rng values } ]
        else []);
  }

let custom ~name decide = { name; decide }
