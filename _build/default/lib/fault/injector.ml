open Ffault_objects

type ctx = {
  obj : Obj_id.t;
  op : Op.t;
  state : Value.t;
  proc : int;
  step : int;
  op_index : int;
  budget : Budget.t;
}

type decision = No_fault | Fault of { kind : Fault_kind.t; payload : Value.t option }

let pp_decision ppf = function
  | No_fault -> Fmt.string ppf "no-fault"
  | Fault { kind; payload } ->
      Fmt.pf ppf "fault:%a%a" Fault_kind.pp kind
        (Fmt.option (fun ppf v -> Fmt.pf ppf "(%a)" Value.pp v))
        payload

type t = { name : string; decide : ctx -> decision }

let arbitrary_payload_default ctx = Value.Pair (Str "junk", Int ctx.op_index)

let invisible_payload_default ctx =
  (* Any value different from the true old value violates Φ's [old = R′]. *)
  let candidate = Value.Pair (Str "ghost", Int ctx.op_index) in
  if Value.equal candidate ctx.state then Value.Pair (Str "ghost'", Int ctx.op_index)
  else candidate

let payload_for kind payload ctx =
  match payload with
  | Some f -> Some (f ctx)
  | None -> (
      match kind with
      | Fault_kind.Invisible -> Some (invisible_payload_default ctx)
      | Arbitrary -> Some (arbitrary_payload_default ctx)
      | Relaxation -> Some (Value.Int 1) (* skip the head by default *)
      | Overriding | Silent | Nonresponsive -> None)

let fault_decision kind payload ctx = Fault { kind; payload = payload_for kind payload ctx }

let never = { name = "never"; decide = (fun _ -> No_fault) }

let always ?payload kind =
  {
    name = Fmt.str "always-%a" Fault_kind.pp kind;
    decide = (fun ctx -> fault_decision kind payload ctx);
  }

let probabilistic ~seed ~p ?payload kind =
  let rng = Ffault_prng.Rng.make ~seed in
  {
    name = Fmt.str "p=%.3f-%a" p Fault_kind.pp kind;
    decide =
      (fun ctx ->
        if Ffault_prng.Rng.bernoulli rng ~p then fault_decision kind payload ctx else No_fault);
  }

let by_process ~procs ?payload kind =
  {
    name = Fmt.str "by-process-%a" Fault_kind.pp kind;
    decide =
      (fun ctx ->
        if List.mem ctx.proc procs && Op.is_cas ctx.op then fault_decision kind payload ctx
        else No_fault);
  }

let on_invocations plan =
  {
    name = "scripted";
    decide =
      (fun ctx ->
        match List.assoc_opt ctx.op_index plan with Some d -> d | None -> No_fault);
  }

let on_object_invocations ?(kind = Fault_kind.Overriding) script =
  let counters : (int, int) Hashtbl.t = Hashtbl.create 8 in
  {
    name = "per-object-scripted";
    decide =
      (fun ctx ->
        let id = Obj_id.to_int ctx.obj in
        let k = Option.value ~default:0 (Hashtbl.find_opt counters id) in
        Hashtbl.replace counters id (k + 1);
        match List.assoc_opt id script with
        | Some ks when List.mem k ks -> fault_decision kind None ctx
        | Some _ | None -> No_fault);
  }

let first_on_each_object ?payload kind =
  let seen : (int, unit) Hashtbl.t = Hashtbl.create 8 in
  {
    name = Fmt.str "first-per-object-%a" Fault_kind.pp kind;
    decide =
      (fun ctx ->
        let id = Obj_id.to_int ctx.obj in
        if Op.writes ctx.op && not (Hashtbl.mem seen id) then begin
          Hashtbl.replace seen id ();
          fault_decision kind payload ctx
        end
        else No_fault);
  }

let mixed ~seed ?payload weighted =
  let total = List.fold_left (fun acc (_, p) -> acc +. p) 0.0 weighted in
  if List.exists (fun (_, p) -> p < 0.0) weighted || total > 1.0 +. 1e-9 then
    invalid_arg "Injector.mixed: probabilities must be non-negative and sum to at most 1";
  let rng = Ffault_prng.Rng.make ~seed in
  let name =
    Fmt.str "mixed(%a)"
      (Fmt.list ~sep:Fmt.comma (fun ppf (k, p) -> Fmt.pf ppf "%a:%.2f" Fault_kind.pp k p))
      weighted
  in
  {
    name;
    decide =
      (fun ctx ->
        let draw = Ffault_prng.Rng.float rng in
        let rec pick acc = function
          | [] -> No_fault
          | (kind, p) :: rest ->
              if draw < acc +. p then fault_decision kind payload ctx else pick (acc +. p) rest
        in
        pick 0.0 weighted);
  }

let custom ~name decide = { name; decide }
