open Ffault_objects

type t = {
  max_faulty_objects : int;
  max_faults_per_object : int option;
  victims : int list option; (* sorted object ids allowed to fault *)
  counts : (int, int) Hashtbl.t; (* object id -> observable faults charged *)
}

let create ?victims ~max_faulty_objects ~max_faults_per_object () =
  if max_faulty_objects < 0 then invalid_arg "Budget.create: max_faulty_objects < 0";
  (match max_faults_per_object with
  | Some t when t < 1 -> invalid_arg "Budget.create: max_faults_per_object < 1"
  | _ -> ());
  let victims =
    Option.map
      (fun l ->
        let ids = List.sort_uniq Int.compare (List.map Obj_id.to_int l) in
        if List.length ids > max_faulty_objects then
          invalid_arg "Budget.create: more victims than max_faulty_objects";
        ids)
      victims
  in
  { max_faulty_objects; max_faults_per_object; victims; counts = Hashtbl.create 8 }

let unlimited () =
  { max_faulty_objects = max_int; max_faults_per_object = None; victims = None;
    counts = Hashtbl.create 8 }

let none () = create ~max_faulty_objects:0 ~max_faults_per_object:None ()

let copy b = { b with counts = Hashtbl.copy b.counts }

let f b = b.max_faulty_objects
let t_bound b = b.max_faults_per_object

let faults_on b o = Option.value ~default:0 (Hashtbl.find_opt b.counts (Obj_id.to_int o))

let num_faulty b = Hashtbl.length b.counts

let victim_ok b o =
  match b.victims with None -> true | Some ids -> List.mem (Obj_id.to_int o) ids

let can_fault b o =
  victim_ok b o
  &&
  let n = faults_on b o in
  let per_object_ok = match b.max_faults_per_object with None -> true | Some t -> n < t in
  per_object_ok && (n > 0 || num_faulty b < b.max_faulty_objects)

let charge b o =
  if not (can_fault b o) then
    invalid_arg (Fmt.str "Budget.charge: fault on %a exceeds budget" Obj_id.pp o);
  Hashtbl.replace b.counts (Obj_id.to_int o) (faults_on b o + 1)

let faulty_objects b =
  Hashtbl.fold (fun id _ acc -> id :: acc) b.counts []
  |> List.sort Int.compare
  |> List.map Obj_id.of_int

let total_faults b = Hashtbl.fold (fun _ n acc -> acc + n) b.counts 0

let pp ppf b =
  let t_str = match b.max_faults_per_object with None -> "\xe2\x88\x9e" | Some t -> string_of_int t in
  let f_str = if b.max_faulty_objects = max_int then "\xe2\x88\x9e" else string_of_int b.max_faulty_objects in
  Fmt.pf ppf "budget(f=%s, t=%s; charged %d faults on %d objects)" f_str t_str (total_faults b)
    (num_faulty b)
