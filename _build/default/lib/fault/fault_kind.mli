(** The CAS functional-fault taxonomy of the paper (§3.3–3.4).

    Each kind names a deviating postcondition Φ′; the executable semantics
    live in {!Faulty_semantics} and the matching predicates in
    {!Ffault_hoare.Cas_spec}. *)

type t =
  | Overriding
      (** the paper's case study: the new value is written even when the
          register content differs from the expected value; the returned
          old value is correct (Φ′ = [R = val ∧ old = R′]) *)
  | Silent
      (** the new value is not written even on a match; the returned old
          value is correct *)
  | Invisible
      (** the state transitions correctly but the returned old value is
          wrong (reducible to a data fault, §3.4) *)
  | Arbitrary
      (** an arbitrary value is written regardless of the inputs
          (equivalent in power to responsive-arbitrary data faults) *)
  | Nonresponsive
      (** the operation never returns (strictly: outside the paper's
          total-correctness faults; kept for the §3.4 discussion and the
          impossibility cross-checks) *)
  | Relaxation
      (** a dequeue that removes a non-head element (paper §6: relaxed
          data structures as a special case of functional faults); the
          payload selects the removed position *)

val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
val to_string : t -> string
val of_string : string -> t option
val all : t list

val is_responsive : t -> bool
(** All kinds except [Nonresponsive]. *)

val phi' : t -> Ffault_hoare.Triple.post option
(** The deviating postcondition recognized by the Hoare layer for CAS
    operations, or [None] for [Nonresponsive] (no response step exists to
    judge). *)

val phi'_for : t -> Ffault_objects.Op.t -> Ffault_hoare.Triple.post option
(** The deviating postcondition this kind denotes on the given operation:
    the §3.3–3.4 formulas for CAS, their {!Ffault_hoare.Tas_spec}
    analogues for test-and-set/reset (silent ↦ silent-set / sticky-bit,
    invisible ↦ phantom-win), [None] where no faulty semantics is
    defined. Used by the trace auditor to check every engine label
    against Definition 1. *)
