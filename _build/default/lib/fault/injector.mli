(** Fault-injection strategies: the adversary that decides, at each
    operation invocation, whether a functional fault fires.

    The engine consults the injector, then independently enforces the
    (f, t) budget and discards "faults" whose outcome coincides with the
    correct one (such steps satisfy Φ and are no faults per Definition 1).
    Strategies therefore never need to track budgets themselves.

    All strategies are deterministic given their inputs (including the
    seeded generator captured at construction), so runs replay exactly.

    Some strategies ({!probabilistic}, {!first_on_each_object}) carry
    internal state that advances during a run: construct a fresh injector
    per execution (the verification harnesses take injector factories for
    this reason). *)

open Ffault_objects

type ctx = {
  obj : Obj_id.t;
  op : Op.t;
  state : Value.t;  (** object state on entry to the invocation *)
  proc : int;  (** invoking process *)
  step : int;  (** global scheduler step counter *)
  op_index : int;  (** 0-based global index of this invocation *)
  budget : Budget.t;  (** current accounting, read-only by convention *)
}

type decision =
  | No_fault
  | Fault of { kind : Fault_kind.t; payload : Value.t option }

val pp_decision : Format.formatter -> decision -> unit

type t = { name : string; decide : ctx -> decision }

val never : t
(** The fault-free world. *)

val always : ?payload:(ctx -> Value.t) -> Fault_kind.t -> t
(** Fault on every invocation the budget allows (worst-case adversary for
    the given kind). *)

val probabilistic : seed:int64 -> p:float -> ?payload:(ctx -> Value.t) -> Fault_kind.t -> t
(** Fault each invocation independently with probability [p]. *)

val by_process : procs:int list -> ?payload:(ctx -> Value.t) -> Fault_kind.t -> t
(** The reduced model of Theorem 18: every CAS executed by a process in
    [procs] is faulty; all other processes' operations are correct. *)

val on_invocations : (int * decision) list -> t
(** Scripted adversary: [on_invocations plan] faults exactly at the listed
    global invocation indices (see [ctx.op_index]). *)

val on_object_invocations :
  ?kind:Fault_kind.t -> (int * int list) list -> t
(** [on_object_invocations script] faults object [o]'s k-th invocation
    (0-based, counted per object) whenever [(o, ks)] is in the script and
    [k ∈ ks] — the simulator mirror of the runtime's per-object fault
    plans ([Faulty_cas.plan_first_n] etc.), used by the cross-substrate
    conformance tests. Default kind: overriding. Stateful: construct a
    fresh injector per run. *)

val first_on_each_object : ?payload:(ctx -> Value.t) -> Fault_kind.t -> t
(** Fault the first write-capable invocation on each object (one fault per
    object — the t = 1 shape used by the Theorem 19 covering argument). *)

val mixed :
  seed:int64 -> ?payload:(ctx -> Value.t) -> (Fault_kind.t * float) list -> t
(** [mixed ~seed weighted] draws, independently per invocation, either no
    fault (with the residual probability) or one of the listed kinds with
    its probability. Definition 3 explicitly allows a mix of functional
    faults; experiment E11 uses this adversary.
    @raise Invalid_argument if any probability is negative or the sum
    exceeds 1. *)

val custom : name:string -> (ctx -> decision) -> t

val arbitrary_payload_default : ctx -> Value.t
(** A payload for [Arbitrary] faults guaranteed to differ from the correct
    post-state: an [Int] derived from the invocation index, tagged far
    outside protocol value ranges. *)

val invisible_payload_default : ctx -> Value.t
(** A payload for [Invisible] faults guaranteed to differ from the true old
    value. *)
