lib/fault/fault_kind.mli: Ffault_hoare Ffault_objects Format
