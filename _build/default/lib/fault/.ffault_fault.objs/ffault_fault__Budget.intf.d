lib/fault/budget.mli: Ffault_objects Format Obj_id
