lib/fault/faulty_semantics.ml: Fault_kind Ffault_objects Fmt Op Semantics Value Vqueue
