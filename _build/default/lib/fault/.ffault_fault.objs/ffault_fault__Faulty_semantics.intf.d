lib/fault/faulty_semantics.mli: Fault_kind Ffault_objects Format Kind Op Semantics Value
