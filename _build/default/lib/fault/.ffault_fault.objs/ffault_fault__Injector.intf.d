lib/fault/injector.mli: Budget Fault_kind Ffault_objects Format Obj_id Op Value
