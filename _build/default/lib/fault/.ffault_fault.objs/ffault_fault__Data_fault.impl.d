lib/fault/data_fault.ml: Array Budget Ffault_objects Ffault_prng Fmt List Obj_id Value
