lib/fault/fault_kind.ml: Ffault_hoare Ffault_objects Fmt
