lib/fault/data_fault.mli: Budget Ffault_objects Format Obj_id Value
