lib/fault/budget.ml: Ffault_objects Fmt Hashtbl Int List Obj_id Option
