lib/fault/injector.ml: Budget Fault_kind Ffault_objects Ffault_prng Fmt Hashtbl List Obj_id Op Option Value
