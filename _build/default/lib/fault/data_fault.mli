(** The memory data-fault model (Afek et al. 1995; Jayanti et al. 1998,
    responsive-arbitrary), as a comparison baseline (paper §3.1, and the
    model-separation experiment E7).

    A data fault is a spontaneous replacement of an object's content,
    occurring at an arbitrary point between steps, independent of the
    executing processes. The engine polls the adversary after every
    scheduler step and applies the returned corruption events, charging
    them to the same (f, t) budget machinery as functional faults — which
    lets us run both models under identical budgets and compare. *)

open Ffault_objects

type event = { obj : Obj_id.t; value : Value.t }
(** "Replace the content of [obj] by [value] now." *)

val pp_event : Format.formatter -> event -> unit

type ctx = {
  step : int;
      (** the number of scheduler steps executed so far — the poll after
          the first step sees [step = 1] *)
  state_of : Obj_id.t -> Value.t;  (** current object contents *)
  budget : Budget.t;  (** read-only by convention *)
}

type t = { name : string; decide : ctx -> event list }

val never : t

val scripted : (int * event list) list -> t
(** [scripted plan] corrupts exactly at the listed step counters. *)

val probabilistic :
  seed:int64 -> p:float -> objects:Obj_id.t list -> values:Value.t list -> t
(** After each step, with probability [p], corrupt one uniformly chosen
    object to one uniformly chosen value. *)

val custom : name:string -> (ctx -> event list) -> t
