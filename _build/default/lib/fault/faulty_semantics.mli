(** Executable faulty semantics: what actually happens when a functional
    fault fires during an operation.

    These are the Φ′-realizations: given the pre-state and the operation,
    produce the (deterministic, except where a payload supplies the
    adversarial choice) post-state and response of the faulty execution.
    The Hoare layer can then re-derive the classification from the
    resulting trace step — engine bookkeeping and trace evidence must
    agree. *)

open Ffault_objects

type application =
  | Outcome of Semantics.outcome  (** the faulty step's post-state and response *)
  | Hangs  (** nonresponsive: the invocation never returns *)

type error =
  | Not_applicable of { fault : Fault_kind.t; op : Op.t }
      (** this fault kind has no semantics for this operation (overriding
          is CAS-specific; reads and writes have no structured faults
          defined here) *)
  | Payload_required of Fault_kind.t
      (** [Invisible] and [Arbitrary] need an adversarial payload value *)
  | Invalid_payload of { fault : Fault_kind.t; payload : Value.t; reason : string }

val pp_error : Format.formatter -> error -> unit

val apply :
  Fault_kind.t ->
  ?payload:Value.t ->
  kind:Kind.t ->
  state:Value.t ->
  Op.t ->
  (application, error) result
(** [apply fault ?payload ~kind ~state op]:

    - [Overriding] on [Cas]: post-state = desired, response = state —
      regardless of the comparison.
    - [Silent] on [Cas]: post-state = state, response = state — regardless
      of the comparison.
    - [Invisible] on [Cas]: state transitions per the correct semantics;
      response = [payload], which must differ from [state] (otherwise the
      step would satisfy Φ and be no fault at all).
    - [Arbitrary] on [Cas]: post-state = [payload]; response = state.
    - [Nonresponsive]: [Hangs], for any operation.

    Test-and-set analogues (§7's "other widely used functions"; the Φ′
    predicates live in {!Ffault_hoare.Tas_spec}):
    - [Silent] on [Test_and_set]/[Reset]: the transition is suppressed
      (silent set / sticky bit); the response stays truthful.
    - [Invisible] on [Test_and_set]: correct transition, forged response
      — the "phantom win" when the payload is [Bool false] on a set bit.
    - [Arbitrary] on [Test_and_set]/[Reset]: post-state = [payload],
      truthful response. *)

val is_observable : Fault_kind.t -> state:Value.t -> Op.t -> bool
(** Whether firing this fault on this invocation can produce a step that
    violates Φ — e.g. an overriding fault on a CAS whose comparison would
    succeed anyway is a no-op (the step satisfies Φ), hence unobservable.
    Budget accounting only charges observable faults. *)
