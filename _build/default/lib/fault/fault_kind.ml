type t = Overriding | Silent | Invisible | Arbitrary | Nonresponsive | Relaxation

let equal (a : t) b = a = b

let to_string = function
  | Overriding -> "overriding"
  | Silent -> "silent"
  | Invisible -> "invisible"
  | Arbitrary -> "arbitrary"
  | Nonresponsive -> "nonresponsive"
  | Relaxation -> "relaxation"

let of_string = function
  | "overriding" -> Some Overriding
  | "silent" -> Some Silent
  | "invisible" -> Some Invisible
  | "arbitrary" -> Some Arbitrary
  | "nonresponsive" -> Some Nonresponsive
  | "relaxation" -> Some Relaxation
  | _ -> None

let pp ppf k = Fmt.string ppf (to_string k)

let all = [ Overriding; Silent; Invisible; Arbitrary; Nonresponsive; Relaxation ]

let is_responsive = function
  | Overriding | Silent | Invisible | Arbitrary | Relaxation -> true
  | Nonresponsive -> false

let phi' = function
  | Overriding -> Some Ffault_hoare.Cas_spec.overriding
  | Silent -> Some Ffault_hoare.Cas_spec.silent
  | Invisible -> Some Ffault_hoare.Cas_spec.invisible
  | Arbitrary -> Some Ffault_hoare.Cas_spec.arbitrary
  | Nonresponsive | Relaxation -> None

let phi'_for kind (op : Ffault_objects.Op.t) =
  match kind, op with
  | _, Cas _ -> phi' kind
  | Silent, Test_and_set -> Some Ffault_hoare.Tas_spec.silent_set
  | Silent, Reset -> Some Ffault_hoare.Tas_spec.sticky_bit
  | Invisible, Test_and_set -> Some Ffault_hoare.Tas_spec.phantom_win
  | Arbitrary, (Test_and_set | Reset) -> Some Ffault_hoare.Tas_spec.arbitrary
  | Relaxation, Dequeue -> Some Ffault_hoare.Queue_spec.relaxed_any
  | (Overriding | Silent | Invisible | Arbitrary | Nonresponsive | Relaxation),
    (Test_and_set | Reset | Read | Write _ | Fetch_and_add _ | Enqueue _ | Dequeue) ->
      None
