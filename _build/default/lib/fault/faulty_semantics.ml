open Ffault_objects

type application = Outcome of Semantics.outcome | Hangs

type error =
  | Not_applicable of { fault : Fault_kind.t; op : Op.t }
  | Payload_required of Fault_kind.t
  | Invalid_payload of { fault : Fault_kind.t; payload : Value.t; reason : string }

let pp_error ppf = function
  | Not_applicable { fault; op } ->
      Fmt.pf ppf "fault %a not applicable to operation %a" Fault_kind.pp fault Op.pp op
  | Payload_required fault -> Fmt.pf ppf "fault %a requires a payload value" Fault_kind.pp fault
  | Invalid_payload { fault; payload; reason } ->
      Fmt.pf ppf "invalid payload %a for fault %a: %s" Value.pp payload Fault_kind.pp fault
        reason

let invisible ~fault ~payload ~kind ~state op =
  match payload with
  | None -> Error (Payload_required fault)
  | Some wrong_old ->
      if Value.equal wrong_old state then
        Error
          (Invalid_payload
             { fault; payload = wrong_old; reason = "response equal to true old value" })
      else
        let correct = Semantics.apply_exn kind ~state op in
        Ok (Outcome { correct with response = wrong_old })

let apply fault ?payload ~kind ~state (op : Op.t) =
  match fault, op with
  | Fault_kind.Nonresponsive, _ -> Ok Hangs
  (* --- CAS: the paper's §3.3-3.4 taxonomy --- *)
  | Overriding, Cas { desired; _ } ->
      Ok (Outcome { Semantics.post_state = desired; response = state })
  | Silent, Cas _ -> Ok (Outcome { Semantics.post_state = state; response = state })
  | Invisible, Cas _ -> invisible ~fault ~payload ~kind ~state op
  | Arbitrary, Cas _ -> (
      match payload with
      | None -> Error (Payload_required fault)
      | Some written -> Ok (Outcome { Semantics.post_state = written; response = state }))
  (* --- test-and-set analogues (§7: other primitives) ---
     silent = suppressed set / suppressed reset ("sticky bit");
     invisible = correct transition, forged response ("phantom win");
     arbitrary = arbitrary post-state, truthful response. *)
  | Silent, (Test_and_set | Reset) ->
      let response =
        match (Semantics.apply_exn kind ~state op).Semantics.response with r -> r
      in
      Ok (Outcome { Semantics.post_state = state; response })
  | Invisible, Test_and_set -> invisible ~fault ~payload ~kind ~state op
  | Arbitrary, (Test_and_set | Reset) -> (
      match payload with
      | None -> Error (Payload_required fault)
      | Some written ->
          let correct = Semantics.apply_exn kind ~state op in
          Ok (Outcome { Semantics.post_state = written; response = correct.Semantics.response }))
  (* --- k-relaxed dequeue (§6: relaxation as a functional fault) --- *)
  | Relaxation, Dequeue -> (
      match payload with
      | None -> Error (Payload_required fault)
      | Some (Value.Int i) -> (
          match Vqueue.dequeue_at state i with
          | Some (element, remaining) ->
              Ok (Outcome { Semantics.post_state = remaining; response = element })
          | None ->
              Error
                (Invalid_payload
                   { fault; payload = Value.Int i; reason = "index out of queue range" }))
      | Some payload ->
          Error (Invalid_payload { fault; payload; reason = "index payload must be an Int" }))
  | Overriding, (Test_and_set | Reset)
  | Invisible, Reset
  | Relaxation, (Test_and_set | Reset | Enqueue _)
  | (Overriding | Silent | Invisible | Arbitrary), (Enqueue _ | Dequeue)
  | (Overriding | Silent | Invisible | Arbitrary | Relaxation),
    (Read | Write _ | Fetch_and_add _)
  | Relaxation, Cas _ ->
      Error (Not_applicable { fault; op })

let is_observable fault ~state (op : Op.t) =
  match fault, op with
  | Fault_kind.Nonresponsive, _ -> true
  | Overriding, Cas { expected; desired } ->
      (* A successful CAS already writes [desired]; flipping the comparison
         changes nothing unless the comparison would have failed — and even
         then only if writing [desired] changes the state. *)
      (not (Semantics.cas_success ~state ~expected)) && not (Value.equal state desired)
  | Silent, Cas { expected; desired } ->
      (* Suppressing the write only matters if the write would happen and
         would change the state. *)
      Semantics.cas_success ~state ~expected && not (Value.equal state desired)
  | Silent, Test_and_set -> Value.equal state (Bool false)
  | Silent, Reset -> Value.equal state (Bool true)
  | Invisible, (Cas _ | Test_and_set) -> true
  | Arbitrary, (Cas _ | Test_and_set | Reset) ->
      (* Observable unless the payload coincides with the correct
         post-state; the engine compares actual outcomes at injection
         time, so stay conservative here. *)
      true
  | Relaxation, Dequeue -> true
  | Overriding, (Test_and_set | Reset)
  | Invisible, Reset
  | Relaxation, (Test_and_set | Reset | Enqueue _ | Cas _)
  | (Overriding | Silent | Invisible | Arbitrary), (Enqueue _ | Dequeue)
  | (Overriding | Silent | Invisible | Arbitrary | Relaxation),
    (Read | Write _ | Fetch_and_add _) ->
      false
