module Fault = Ffault_fault
module Rng = Ffault_prng.Rng
module Engine = Ffault_sim.Engine

type summary = {
  runs : int;
  failures : (int64 * Consensus_check.report) list;
  failure_count : int;
  max_steps_one_proc : int;
  max_total_steps : int;
  total_faults : int;
}

let pp_summary ppf s =
  Fmt.pf ppf "%d runs, %d failures, max steps/proc %d, max total steps %d, %d faults" s.runs
    s.failure_count s.max_steps_one_proc s.max_total_steps s.total_faults

let default_scheduler rng = Ffault_sim.Scheduler.random ~seed:(Rng.next_seed rng)

let run ?(max_kept_failures = 5) ?(scheduler = default_scheduler) ?on_report ~injector ~n_runs
    ~base_seed setup =
  let root = Rng.make ~seed:base_seed in
  let failures = ref [] in
  let failure_count = ref 0 in
  let max_steps_one_proc = ref 0 in
  let max_total_steps = ref 0 in
  let total_faults = ref 0 in
  for _ = 1 to n_runs do
    (* Each run replays from (setup, its seed) alone. *)
    let seed = Rng.next_seed root in
    let rng = Rng.make ~seed in
    let sched = scheduler (Rng.split rng) in
    let inj = injector (Rng.split rng) in
    let report = Consensus_check.run setup ~scheduler:sched ~injector:inj () in
    (match on_report with Some f -> f ~seed report | None -> ());
    let result = report.Consensus_check.result in
    Array.iter
      (fun st -> if st > !max_steps_one_proc then max_steps_one_proc := st)
      result.Engine.steps_taken;
    if result.Engine.total_steps > !max_total_steps then
      max_total_steps := result.Engine.total_steps;
    total_faults := !total_faults + Fault.Budget.total_faults result.Engine.budget;
    if not (Consensus_check.ok report) then begin
      incr failure_count;
      if List.length !failures < max_kept_failures then failures := (seed, report) :: !failures
    end
  done;
  {
    runs = n_runs;
    failures = List.rev !failures;
    failure_count = !failure_count;
    max_steps_one_proc = !max_steps_one_proc;
    max_total_steps = !max_total_steps;
    total_faults = !total_faults;
  }
