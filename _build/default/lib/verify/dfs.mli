(** Bounded-exhaustive exploration of schedule × fault nondeterminism
    (stateless model checking by re-execution).

    Every scheduler decision and every fault decision is a branch point.
    A run is replayed from a decision prefix; choices beyond the prefix
    take the default (first) option — the lowest-numbered enabled process,
    the correct outcome — and each such point spawns sibling prefixes for
    its alternatives. Exploration is depth-first in prefix order, so the
    search is exhaustive up to [max_branch_depth] branch points (schedule
    and fault choices combined) and [max_executions] total runs.

    Used by the impossibility experiments: a violation witness is a
    decision vector whose replay produces a trace breaking a consensus
    property; exhaustive exhaustion without witnesses (not truncated) is
    evidence of correctness within the bound. *)

type witness = {
  decisions : int array;  (** the branch choices that produce the violation *)
  report : Consensus_check.report;
}

type stats = {
  executions : int;  (** runs performed *)
  max_choice_points : int;  (** longest branchable decision vector seen *)
  witnesses : witness list;  (** at most [max_witnesses], in discovery order *)
  truncated : bool;
      (** true if the execution cap was hit or some run had more branch
          points than [max_branch_depth] — in which case an empty witness
          list is inconclusive *)
}

val pp_stats : Format.formatter -> stats -> unit

val explore :
  ?max_executions:int ->
  ?max_branch_depth:int ->
  ?max_witnesses:int ->
  ?explore_schedules:bool ->
  ?explore_faults:bool ->
  ?forced_outcome:
    (Ffault_fault.Injector.ctx ->
    options:Ffault_sim.Engine.outcome_choice list ->
    Ffault_sim.Engine.outcome_choice) ->
  ?initial_prefix:int array ->
  ?on_report:(int array -> Consensus_check.report -> unit) ->
  Consensus_check.setup ->
  stats
(** Defaults: 200_000 executions, depth 64, 1 witness, both dimensions
    explored. Fault options are drawn from the setup's [allowed_faults]
    and [payload_palette], subject to the (f, t) budget — exactly the
    adversary of the paper's model.

    [forced_outcome] replaces fault branching with a fixed adversary
    policy: fault choices stop being branch points and instead follow the
    policy (used by the Theorem 18 reduced model, where one process's
    CASes are always faulty). Implies fault choices are not explored.

    [initial_prefix] roots the search at the subtree below a given
    decision vector (used by the valency analysis).

    [on_report] observes every completed execution. *)

val replay : Consensus_check.setup -> int array -> Consensus_check.report
(** Re-execute one decision vector (e.g. a stored witness) and return its
    report, for rendering traces. *)
