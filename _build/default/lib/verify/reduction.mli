(** The §3.4 reduction: an invisible CAS fault is a data fault in
    disguise.

    The paper argues that an execution containing an invisible fault (the
    CAS returns a wrong [old] value) is indistinguishable from a data-
    fault execution in which the register is corrupted to the returned
    value just before the CAS and restored just after. This module
    performs that trace rewriting and checks the indistinguishability
    claims, making the reduction executable (experiment E8). *)

open Ffault_sim

val invisible_to_data : Trace.t -> Trace.t
(** Replace every invisible-fault step by corrupt-before / correct-CAS /
    corrupt-after. All other events are preserved. *)

type check = {
  responses_preserved : bool;
      (** every process observes the same response sequence in both traces *)
  steps_all_correct : bool;
      (** every operation step of the rewritten trace satisfies Φ *)
  corruptions_added : int;
}

val pp_check : Format.formatter -> check -> unit

val verify : world:World.t -> original:Trace.t -> rewritten:Trace.t -> check
