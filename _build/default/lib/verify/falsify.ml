module Rng = Ffault_prng.Rng
module Scheduler = Ffault_sim.Scheduler
module Injector = Ffault_fault.Injector
module Fault_kind = Ffault_fault.Fault_kind

type strategy = {
  strategy_name : string;
  scheduler : Rng.t -> Scheduler.t;
  injector : Rng.t -> Injector.t;
}

let default_portfolio ~n_procs =
  let random_sched rng = Scheduler.random ~seed:(Rng.next_seed rng) in
  let rr_sched _ = Scheduler.round_robin () in
  let solo_sched rng =
    Scheduler.solo_runs ~order:(Rng.shuffled_list rng (List.init n_procs (fun i -> i)))
  in
  let always _ = Injector.always Fault_kind.Overriding in
  let prob p rng = Injector.probabilistic ~seed:(Rng.next_seed rng) ~p Fault_kind.Overriding in
  let first _ = Injector.first_on_each_object Fault_kind.Overriding in
  [
    { strategy_name = "random/always"; scheduler = random_sched; injector = always };
    { strategy_name = "random/p=0.5"; scheduler = random_sched; injector = prob 0.5 };
    { strategy_name = "random/p=0.15"; scheduler = random_sched; injector = prob 0.15 };
    { strategy_name = "round-robin/always"; scheduler = rr_sched; injector = always };
    { strategy_name = "solo-runs/first-per-object"; scheduler = solo_sched; injector = first };
    { strategy_name = "solo-runs/always"; scheduler = solo_sched; injector = always };
  ]

type outcome = {
  attempts : int;
  witness : (string * int64 * Consensus_check.report) option;
}

let pp_outcome ppf o =
  match o.witness with
  | None -> Fmt.pf ppf "no violation in %d attempts" o.attempts
  | Some (name, seed, _) ->
      Fmt.pf ppf "violation at attempt %d (strategy %s, seed %Ld)" o.attempts name seed

let run_attempt setup strategy ~seed =
  let rng = Rng.make ~seed in
  let scheduler = strategy.scheduler (Rng.split rng) in
  let injector = strategy.injector (Rng.split rng) in
  Consensus_check.run setup ~scheduler ~injector ()

let falsify ?(max_attempts = 10_000) ?portfolio ~seed setup =
  let portfolio =
    match portfolio with
    | Some p -> p
    | None -> default_portfolio ~n_procs:setup.Consensus_check.params.n_procs
  in
  let portfolio = Array.of_list portfolio in
  if Array.length portfolio = 0 then invalid_arg "Falsify.falsify: empty portfolio";
  let root = Rng.make ~seed in
  let rec go attempt =
    if attempt >= max_attempts then { attempts = attempt; witness = None }
    else begin
      let strategy = portfolio.(attempt mod Array.length portfolio) in
      let attempt_seed = Rng.next_seed root in
      let report = run_attempt setup strategy ~seed:attempt_seed in
      if Consensus_check.ok report then go (attempt + 1)
      else
        {
          attempts = attempt + 1;
          witness = Some (strategy.strategy_name, attempt_seed, report);
        }
    end
  in
  go 0

let replay_witness ?portfolio setup ~strategy_name ~seed =
  let portfolio =
    match portfolio with
    | Some p -> p
    | None -> default_portfolio ~n_procs:setup.Consensus_check.params.n_procs
  in
  match List.find_opt (fun s -> String.equal s.strategy_name strategy_name) portfolio with
  | None -> invalid_arg (Fmt.str "Falsify.replay_witness: unknown strategy %S" strategy_name)
  | Some strategy -> run_attempt setup strategy ~seed
