module Engine = Ffault_sim.Engine

type witness = { decisions : int array; report : Consensus_check.report }

type stats = {
  executions : int;
  max_choice_points : int;
  witnesses : witness list;
  truncated : bool;
}

let pp_stats ppf s =
  Fmt.pf ppf "%d executions, %d max choice points, %d witnesses%s" s.executions
    s.max_choice_points (List.length s.witnesses)
    (if s.truncated then " (truncated)" else "")

(* Replay one decision vector. Points with a single option are not
   branchable and consume no decision slot; disabled dimensions always
   take the default (or the forced policy, for fault points). Returns the
   report, the branch factors of the branchable points visited, and
   whether any branchable point fell past [max_branch_depth]. *)
let run_once setup ~explore_schedules ~explore_faults ~forced_outcome ~max_branch_depth
    decisions =
  let counts_rev = ref [] in
  let idx = ref 0 in
  let deep = ref false in
  let choose n =
    if n <= 1 then 0
    else if !idx >= max_branch_depth then begin
      deep := true;
      0
    end
    else begin
      let d = if !idx < Array.length decisions then decisions.(!idx) else 0 in
      counts_rev := n :: !counts_rev;
      incr idx;
      if d < n then d else 0
    end
  in
  let driver =
    {
      Engine.choose_proc =
        (fun ~enabled ~step:_ ->
          let c = if explore_schedules then choose (List.length enabled) else 0 in
          List.nth enabled c);
      choose_outcome =
        (fun ctx ~options ->
          match forced_outcome with
          | Some policy -> policy ctx ~options
          | None ->
              let c = if explore_faults then choose (List.length options) else 0 in
              List.nth options c);
      after_step = (fun _ -> []);
    }
  in
  let report = Consensus_check.run_with_driver setup driver in
  (report, Array.of_list (List.rev !counts_rev), !deep)

let explore ?(max_executions = 200_000) ?(max_branch_depth = 64) ?(max_witnesses = 1)
    ?(explore_schedules = true) ?(explore_faults = true) ?forced_outcome
    ?(initial_prefix = [||]) ?on_report setup =
  let explore_faults = explore_faults && forced_outcome = None in
  let executions = ref 0 in
  let max_cp = ref 0 in
  let witnesses = ref [] in
  let n_witnesses = ref 0 in
  let truncated = ref false in
  let stack = ref [ initial_prefix ] in
  let continue_search () =
    !stack <> [] && !executions < max_executions && !n_witnesses < max_witnesses
  in
  while continue_search () do
    match !stack with
    | [] -> ()
    | prefix :: rest ->
        stack := rest;
        incr executions;
        let report, counts, deep =
          run_once setup ~explore_schedules ~explore_faults ~forced_outcome ~max_branch_depth
            prefix
        in
        if deep then truncated := true;
        if Array.length counts > !max_cp then max_cp := Array.length counts;
        (match on_report with Some f -> f prefix report | None -> ());
        if not (Consensus_check.ok report) then begin
          incr n_witnesses;
          witnesses := { decisions = prefix; report } :: !witnesses
        end;
        (* Spawn siblings of every default choice beyond the prefix; push
           in reverse so exploration stays lexicographic. *)
        let base = Array.length prefix in
        for i = Array.length counts - 1 downto base do
          for alt = counts.(i) - 1 downto 1 do
            let child = Array.make (i + 1) 0 in
            Array.blit prefix 0 child 0 base;
            child.(i) <- alt;
            stack := child :: !stack
          done
        done
  done;
  if !stack <> [] && !executions >= max_executions then truncated := true;
  {
    executions = !executions;
    max_choice_points = !max_cp;
    witnesses = List.rev !witnesses;
    truncated = !truncated;
  }

let replay setup decisions =
  let report, _, _ =
    run_once setup ~explore_schedules:true ~explore_faults:true ~forced_outcome:None
      ~max_branch_depth:max_int decisions
  in
  report
