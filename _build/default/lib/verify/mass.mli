(** Mass randomized testing: many seeded runs of a protocol setup under
    randomized schedules and fault injection, aggregating violations and
    cost statistics.

    Every run is reproducible from its seed: the injector and scheduler
    are rebuilt per run from sub-streams of the base seed. *)

module Fault = Ffault_fault

type summary = {
  runs : int;
  failures : (int64 * Consensus_check.report) list;
      (** (seed, report) for runs with violations; at most
          [max_kept_failures], in discovery order *)
  failure_count : int;  (** total number of failing runs *)
  max_steps_one_proc : int;  (** worst per-process operation count seen *)
  max_total_steps : int;
  total_faults : int;  (** observable faults charged across all runs *)
}

val pp_summary : Format.formatter -> summary -> unit

val run :
  ?max_kept_failures:int ->
  ?scheduler:(Ffault_prng.Rng.t -> Ffault_sim.Scheduler.t) ->
  ?on_report:(seed:int64 -> Consensus_check.report -> unit) ->
  injector:(Ffault_prng.Rng.t -> Fault.Injector.t) ->
  n_runs:int ->
  base_seed:int64 ->
  Consensus_check.setup ->
  summary
(** Defaults: keep up to 5 failures, uniform random scheduler. [on_report]
    observes every run (for experiment-specific measurements such as the
    Fig. 3 stage counter). *)
