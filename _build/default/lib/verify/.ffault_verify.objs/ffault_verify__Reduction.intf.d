lib/verify/reduction.mli: Ffault_sim Format Trace World
