lib/verify/shrink.mli: Consensus_check
