lib/verify/dfs.mli: Consensus_check Ffault_fault Ffault_sim Format
