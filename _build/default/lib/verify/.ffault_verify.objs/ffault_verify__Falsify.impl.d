lib/verify/falsify.ml: Array Consensus_check Ffault_fault Ffault_prng Ffault_sim Fmt List String
