lib/verify/degradation.mli: Consensus_check Ffault_fault Ffault_prng Format
