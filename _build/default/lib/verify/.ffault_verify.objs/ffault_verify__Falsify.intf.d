lib/verify/falsify.mli: Consensus_check Ffault_fault Ffault_prng Ffault_sim Format
