lib/verify/consensus_check.mli: Engine Ffault_consensus Ffault_fault Ffault_objects Ffault_sim Format Obj_id Scheduler Value World
