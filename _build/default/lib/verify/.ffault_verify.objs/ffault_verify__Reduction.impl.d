lib/verify/reduction.ml: Ffault_fault Ffault_objects Ffault_sim Fmt Kind List Op Semantics Trace Value
