lib/verify/consensus_check.ml: Array Engine Ffault_consensus Ffault_fault Ffault_objects Ffault_sim Fmt List Obj_id Value
