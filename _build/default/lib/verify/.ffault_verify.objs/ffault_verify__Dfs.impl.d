lib/verify/dfs.ml: Array Consensus_check Ffault_sim Fmt List
