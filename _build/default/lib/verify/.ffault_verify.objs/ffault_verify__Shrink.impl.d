lib/verify/shrink.ml: Array Consensus_check Dfs
