lib/verify/degradation.ml: Consensus_check Fmt List Mass
