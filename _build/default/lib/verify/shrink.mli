(** Witness minimization.

    A DFS witness is a decision vector; smaller vectors (shorter, and with
    smaller entries) replay into shorter, more readable violation traces —
    entries beyond the vector take the default choice (lowest-numbered
    process, correct outcome), and entry 0 is the default at its point.
    The shrinker greedily (1) drops trailing entries, (2) zeroes
    individual entries, and (3) decrements entries, re-replaying after
    each candidate change and keeping it only if the violation
    persists. The result is locally minimal: no single such edit
    preserves the violation. *)

val witness : Consensus_check.setup -> int array -> int array
(** [witness setup decisions] assumes [decisions] replays to a violating
    report (raises [Invalid_argument] otherwise) and returns a locally
    minimal violating vector. *)

val witness_report :
  Consensus_check.setup -> int array -> int array * Consensus_check.report
(** The shrunk vector together with its replayed report. *)
