(** A portfolio falsifier: randomized counterexample search for
    configurations too large for exhaustive DFS.

    Rotates through a portfolio of (scheduler, injector) adversary
    strategies — uniform random scheduling, round-robin, staged solo
    runs, combined with worst-case / probabilistic / first-per-object
    overriding injection — drawing fresh seeds each round, and stops at
    the first consensus violation. Complements {!Dfs}: no exhaustiveness
    guarantee, but scales to instances whose branching DFS cannot cover,
    and every found witness is replayable from its (strategy, seed)
    pair. *)

type strategy = {
  strategy_name : string;
  scheduler : Ffault_prng.Rng.t -> Ffault_sim.Scheduler.t;
  injector : Ffault_prng.Rng.t -> Ffault_fault.Injector.t;
}

val default_portfolio : n_procs:int -> strategy list

type outcome = {
  attempts : int;
  witness : (string * int64 * Consensus_check.report) option;
      (** (strategy name, seed, violating report) *)
}

val pp_outcome : Format.formatter -> outcome -> unit

val falsify :
  ?max_attempts:int ->
  ?portfolio:strategy list ->
  seed:int64 ->
  Consensus_check.setup ->
  outcome
(** Defaults: 10_000 attempts, {!default_portfolio}. *)

val replay_witness :
  ?portfolio:strategy list ->
  Consensus_check.setup ->
  strategy_name:string ->
  seed:int64 ->
  Consensus_check.report
(** Re-run one attempt from its strategy name and seed.
    @raise Invalid_argument on an unknown strategy name. *)
