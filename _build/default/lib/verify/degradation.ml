type profile = {
  runs : int;
  clean : int;
  consistency_broken : int;
  validity_broken : int;
  wait_freedom_broken : int;
}

let empty = { runs = 0; clean = 0; consistency_broken = 0; validity_broken = 0; wait_freedom_broken = 0 }

let pp_profile ppf p =
  Fmt.pf ppf "%d runs: %d clean, %d consistency-broken, %d validity-broken, %d wf-broken"
    p.runs p.clean p.consistency_broken p.validity_broken p.wait_freedom_broken

let graceful p = p.validity_broken = 0 && p.wait_freedom_broken = 0

let classify (report : Consensus_check.report) p =
  let has pred = List.exists pred report.Consensus_check.violations in
  let consistency = has (function Consensus_check.Consistency _ -> true | _ -> false) in
  let validity = has (function Consensus_check.Validity _ -> true | _ -> false) in
  let wait_freedom = has (function Consensus_check.Wait_freedom _ -> true | _ -> false) in
  {
    runs = p.runs + 1;
    clean = (p.clean + if Consensus_check.ok report then 1 else 0);
    consistency_broken = (p.consistency_broken + if consistency then 1 else 0);
    validity_broken = (p.validity_broken + if validity then 1 else 0);
    wait_freedom_broken = (p.wait_freedom_broken + if wait_freedom then 1 else 0);
  }

let measure ?(runs = 500) ~seed ~injector setup =
  let acc = ref empty in
  ignore
    (Mass.run
       ~on_report:(fun ~seed:_ report -> acc := classify report !acc)
       ~injector ~n_runs:runs ~base_seed:seed setup);
  !acc
