(** Graceful degradation beyond the fault budget (paper §6 — Jayanti et
    al.'s notion — posed for functional faults as future work in §7).

    A construction degrades gracefully if, when {e more} faults occur than
    it was designed for, the damage stays within the fault class of its
    base objects rather than becoming arbitrary. For the overriding-CAS
    constructions there is a sharp empirical signature: overriding faults
    return truthful [old] values and only ever write values that some
    process passed to CAS, so every adopted value still traces back to
    some process's input — {e validity survives any number of overriding
    faults}; only consistency (and never by more than the adversary's
    choice among real inputs) is lost. This module measures that profile:
    run a setup whose budget exceeds the protocol's design point many
    times and classify each failure. *)

type profile = {
  runs : int;
  clean : int;  (** all three consensus properties held *)
  consistency_broken : int;
  validity_broken : int;  (** expected 0 under overriding faults *)
  wait_freedom_broken : int;
}

val pp_profile : Format.formatter -> profile -> unit

val graceful : profile -> bool
(** Validity and wait-freedom intact in every run (consistency may have
    broken — that is the degradation being graceful). *)

val classify : Consensus_check.report -> profile -> profile
(** Fold one report into a profile (each violated property counts once
    per run). *)

val measure :
  ?runs:int ->
  seed:int64 ->
  injector:(Ffault_prng.Rng.t -> Ffault_fault.Injector.t) ->
  Consensus_check.setup ->
  profile
(** Randomized schedules; defaults to 500 runs. The setup's (f, t) budget
    is taken as given — build it {e above} the protocol's design point
    (e.g. [F_tolerant.with_objects m] with [params.f = m], or
    [Bounded_faults.with_max_stage] at a stage bound below t·(4f + f²))
    to study over-budget behaviour. *)
