test/test_fault.ml: Alcotest Ffault_fault Ffault_objects Kind List Obj_id Op Semantics Test_objects Value
