test/test_experiments.ml: Alcotest Ffault_consensus Ffault_experiments Ffault_fault Ffault_prng Ffault_verify Fmt Int64 List
