test/test_impossibility.ml: Alcotest Ffault_consensus Ffault_fault Ffault_impossibility Ffault_objects Ffault_sim Ffault_verify Fmt Int List Obj_id Test_objects Value
