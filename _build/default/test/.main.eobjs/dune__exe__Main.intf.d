test/main.mli:
