test/test_runtime.ml: Alcotest Array Atomic Ffault_objects Ffault_runtime Fmt Int64 List QCheck QCheck_alcotest Value
