test/test_history.ml: Alcotest Array Ffault_objects History Kind Linearizability List Op QCheck QCheck_alcotest Semantics Value
