test/test_extensions.ml: Alcotest Array Ffault_consensus Ffault_fault Ffault_hoare Ffault_objects Ffault_sim Ffault_verify Hashtbl List Obj_id Op Option Value
