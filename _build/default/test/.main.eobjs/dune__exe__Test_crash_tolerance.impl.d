test/test_crash_tolerance.ml: Alcotest Array Ffault_consensus Ffault_fault Ffault_objects Ffault_sim Ffault_verify Fmt List Test_objects Value
