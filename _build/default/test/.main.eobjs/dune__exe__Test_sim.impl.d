test/test_sim.ml: Alcotest Array Ffault_fault Ffault_objects Ffault_sim Fmt Kind List Obj_id String Test_objects Value
