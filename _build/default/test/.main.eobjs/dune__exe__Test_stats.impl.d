test/test_stats.ml: Alcotest Ffault_stats Gen List QCheck QCheck_alcotest
