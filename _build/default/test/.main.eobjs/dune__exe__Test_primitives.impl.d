test/test_primitives.ml: Alcotest Ffault_consensus Ffault_fault Ffault_hoare Ffault_objects Ffault_sim Ffault_verify Gen Kind List Op QCheck QCheck_alcotest Semantics Test_objects Value Vqueue
