test/test_verify.ml: Alcotest Ffault_consensus Ffault_fault Ffault_objects Ffault_prng Ffault_sim Ffault_verify List Obj_id Value
