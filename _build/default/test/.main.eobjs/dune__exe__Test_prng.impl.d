test/test_prng.ml: Alcotest Array Ffault_prng Int64 List QCheck QCheck_alcotest
