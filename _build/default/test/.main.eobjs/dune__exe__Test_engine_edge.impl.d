test/test_engine_edge.ml: Alcotest Array Ffault_consensus Ffault_fault Ffault_objects Ffault_sim Ffault_verify Fmt Int64 List Obj_id Op QCheck QCheck_alcotest String Test_objects Value
