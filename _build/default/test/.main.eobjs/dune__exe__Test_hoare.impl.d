test/test_hoare.ml: Alcotest Ffault_fault Ffault_hoare Ffault_objects Kind List Op QCheck QCheck_alcotest Semantics Test_objects Value
