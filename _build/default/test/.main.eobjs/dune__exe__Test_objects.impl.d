test/test_objects.ml: Alcotest Ffault_objects Kind List Op QCheck QCheck_alcotest Semantics Value
