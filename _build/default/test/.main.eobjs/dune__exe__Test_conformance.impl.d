test/test_conformance.ml: Alcotest Array Ffault_consensus Ffault_fault Ffault_objects Ffault_runtime Ffault_sim Ffault_verify Gen List Option QCheck QCheck_alcotest Value
