test/test_consensus.ml: Alcotest Array Ffault_consensus Ffault_fault Ffault_objects Ffault_sim Int Int64 Kind List Op QCheck QCheck_alcotest String Test_objects Value
