(* Tests for the second-primitive extensions: queue values and semantics,
   the relaxation fault, TAS Φ′ formulas, and the TAS consensus
   protocol. *)

open Ffault_objects
module Tas_spec = Ffault_hoare.Tas_spec
module Queue_spec = Ffault_hoare.Queue_spec
module Classify = Ffault_hoare.Classify
module Triple = Ffault_hoare.Triple
module FS = Ffault_fault.Faulty_semantics
module Fault_kind = Ffault_fault.Fault_kind
module Consensus = Ffault_consensus
module Protocol = Consensus.Protocol
module Check = Ffault_verify.Consensus_check
module Dfs = Ffault_verify.Dfs

let check = Alcotest.check
let qcheck = QCheck_alcotest.to_alcotest
let value_testable = Test_objects.value_testable_for_reuse
let i n = Value.Int n

(* ---- Vqueue ---- *)

let test_vqueue_roundtrip () =
  let q = Vqueue.of_list [ i 1; i 2; i 3 ] in
  check (Alcotest.list value_testable) "to_list" [ i 1; i 2; i 3 ] (Vqueue.to_list_exn q);
  check Alcotest.int "length" 3 (Vqueue.length q);
  check Alcotest.bool "empty" true (Vqueue.is_empty Vqueue.empty);
  check Alcotest.bool "nonempty" false (Vqueue.is_empty q)

let test_vqueue_enqueue_dequeue () =
  let q = Vqueue.enqueue (Vqueue.enqueue Vqueue.empty (i 1)) (i 2) in
  check (Alcotest.list value_testable) "fifo order" [ i 1; i 2 ] (Vqueue.to_list_exn q);
  (match Vqueue.dequeue_at q 0 with
  | Some (v, rest) ->
      check value_testable "head" (i 1) v;
      check (Alcotest.list value_testable) "rest" [ i 2 ] (Vqueue.to_list_exn rest)
  | None -> Alcotest.fail "dequeue_at 0");
  match Vqueue.dequeue_at q 1 with
  | Some (v, rest) ->
      check value_testable "second" (i 2) v;
      check (Alcotest.list value_testable) "rest" [ i 1 ] (Vqueue.to_list_exn rest)
  | None -> Alcotest.fail "dequeue_at 1"

let test_vqueue_bounds () =
  let q = Vqueue.of_list [ i 1 ] in
  check Alcotest.bool "out of range" true (Vqueue.dequeue_at q 1 = None);
  check Alcotest.bool "negative" true (Vqueue.dequeue_at q (-1) = None);
  check Alcotest.bool "malformed" true (Vqueue.to_list (Value.Int 5) = None);
  Alcotest.check_raises "bottom element" (Invalid_argument "Vqueue.of_list: Bottom element")
    (fun () -> ignore (Vqueue.of_list [ Value.Bottom ]))

let prop_vqueue_of_to =
  QCheck.Test.make ~name:"Vqueue of_list/to_list roundtrip" ~count:200
    QCheck.(list_of_size (Gen.int_range 0 10) (map (fun n -> Value.Int n) small_int))
    (fun l ->
      match Vqueue.to_list (Vqueue.of_list l) with
      | Some l' -> List.length l = List.length l' && List.for_all2 Value.equal l l'
      | None -> false)

(* ---- Queue semantics ---- *)

let test_queue_semantics () =
  let q0 = Vqueue.empty in
  let o = Semantics.apply_exn Kind.Queue ~state:q0 (Op.Enqueue (i 7)) in
  check value_testable "enqueue response" Value.Bottom o.Semantics.response;
  let o2 = Semantics.apply_exn Kind.Queue ~state:o.Semantics.post_state Op.Dequeue in
  check value_testable "dequeue head" (i 7) o2.Semantics.response;
  check Alcotest.bool "now empty" true (Vqueue.is_empty o2.Semantics.post_state);
  let o3 = Semantics.apply_exn Kind.Queue ~state:q0 Op.Dequeue in
  check value_testable "empty dequeue" Value.Bottom o3.Semantics.response

let test_queue_semantics_errors () =
  (match Semantics.apply Kind.Queue ~state:(Value.Int 5) Op.Dequeue with
  | Error (Semantics.Type_error _) -> ()
  | _ -> Alcotest.fail "malformed state");
  match Semantics.apply Kind.Queue ~state:Vqueue.empty (Op.Enqueue Value.Bottom) with
  | Error (Semantics.Type_error _) -> ()
  | _ -> Alcotest.fail "bottom element"

(* ---- Relaxation fault ---- *)

let test_relaxation_semantics () =
  let q = Vqueue.of_list [ i 1; i 2; i 3 ] in
  match FS.apply Fault_kind.Relaxation ~payload:(i 1) ~kind:Kind.Queue ~state:q Op.Dequeue with
  | Ok (FS.Outcome o) ->
      check value_testable "removed second" (i 2) o.Semantics.response;
      check (Alcotest.list value_testable) "remaining" [ i 1; i 3 ]
        (Vqueue.to_list_exn o.Semantics.post_state)
  | _ -> Alcotest.fail "expected outcome"

let test_relaxation_payload_errors () =
  let q = Vqueue.of_list [ i 1 ] in
  (match FS.apply Fault_kind.Relaxation ~kind:Kind.Queue ~state:q Op.Dequeue with
  | Error (FS.Payload_required _) -> ()
  | _ -> Alcotest.fail "payload required");
  (match FS.apply Fault_kind.Relaxation ~payload:(i 5) ~kind:Kind.Queue ~state:q Op.Dequeue with
  | Error (FS.Invalid_payload _) -> ()
  | _ -> Alcotest.fail "out of range");
  match
    FS.apply Fault_kind.Relaxation ~payload:(Value.Str "x") ~kind:Kind.Queue ~state:q
      Op.Dequeue
  with
  | Error (FS.Invalid_payload _) -> ()
  | _ -> Alcotest.fail "non-int payload"

let queue_step ~pre ~post ~response =
  { Triple.kind = Kind.Queue; pre_state = pre; op = Op.Dequeue; post_state = post; response }

let test_queue_spec () =
  let q = Vqueue.of_list [ i 1; i 2; i 3 ] in
  let fifo = queue_step ~pre:q ~post:(Vqueue.of_list [ i 2; i 3 ]) ~response:(i 1) in
  let relaxed1 = queue_step ~pre:q ~post:(Vqueue.of_list [ i 1; i 3 ]) ~response:(i 2) in
  let relaxed2 = queue_step ~pre:q ~post:(Vqueue.of_list [ i 1; i 2 ]) ~response:(i 3) in
  let broken = queue_step ~pre:q ~post:(Vqueue.of_list [ i 1 ]) ~response:(i 9) in
  check Alcotest.bool "fifo satisfies \xce\xa6" true (Queue_spec.standard_dequeue fifo);
  check Alcotest.bool "relaxed violates \xce\xa6" false (Queue_spec.standard_dequeue relaxed1);
  check Alcotest.bool "fifo within k=1" true (Queue_spec.relaxed_dequeue ~k:1 fifo);
  check Alcotest.bool "distance 1 within k=2" true (Queue_spec.relaxed_dequeue ~k:2 relaxed1);
  check Alcotest.bool "distance 2 not within k=2" false
    (Queue_spec.relaxed_dequeue ~k:2 relaxed2);
  check Alcotest.bool "distance 2 within k=3" true (Queue_spec.relaxed_dequeue ~k:3 relaxed2);
  check Alcotest.bool "any accepts both" true
    (Queue_spec.relaxed_any relaxed1 && Queue_spec.relaxed_any relaxed2);
  check Alcotest.bool "foreign element rejected" false (Queue_spec.relaxed_any broken);
  check (Alcotest.option Alcotest.int) "distance of fifo" (Some 0)
    (Queue_spec.dequeue_distance fifo);
  check (Alcotest.option Alcotest.int) "distance of relaxed" (Some 2)
    (Queue_spec.dequeue_distance relaxed2)

let verdict = Alcotest.testable Classify.pp_verdict Classify.equal_verdict

let test_queue_classification () =
  let q = Vqueue.of_list [ i 1; i 2 ] in
  let relaxed = queue_step ~pre:q ~post:(Vqueue.of_list [ i 1 ]) ~response:(i 2) in
  check verdict "relaxation recognized" (Classify.Structured_fault "relaxation")
    (Classify.classify_step relaxed);
  let fifo = queue_step ~pre:q ~post:(Vqueue.of_list [ i 2 ]) ~response:(i 1) in
  check verdict "fifo correct" Classify.Correct (Classify.classify_step fifo)

(* ---- TAS Φ′ formulas ---- *)

let tas_step ~pre ~post ~response =
  {
    Triple.kind = Kind.Test_and_set;
    pre_state = Value.Bool pre;
    op = Op.Test_and_set;
    post_state = Value.Bool post;
    response = Value.Bool response;
  }

let test_tas_spec () =
  let correct_win = tas_step ~pre:false ~post:true ~response:false in
  let correct_lose = tas_step ~pre:true ~post:true ~response:true in
  let silent = tas_step ~pre:false ~post:false ~response:false in
  let phantom = tas_step ~pre:true ~post:true ~response:false in
  check Alcotest.bool "win satisfies \xce\xa6" true (Tas_spec.standard_tas correct_win);
  check Alcotest.bool "lose satisfies \xce\xa6" true (Tas_spec.standard_tas correct_lose);
  check Alcotest.bool "silent violates \xce\xa6" false (Tas_spec.standard_tas silent);
  check Alcotest.bool "silent-set shape" true (Tas_spec.silent_set silent);
  check Alcotest.bool "phantom violates \xce\xa6" false (Tas_spec.standard_tas phantom);
  check Alcotest.bool "phantom-win shape" true (Tas_spec.phantom_win phantom);
  check verdict "silent classified" (Classify.Structured_fault "silent-set")
    (Classify.classify_step silent);
  check verdict "phantom classified" (Classify.Structured_fault "phantom-win")
    (Classify.classify_step phantom)

let test_sticky_bit () =
  let sticky =
    {
      Triple.kind = Kind.Test_and_set;
      pre_state = Value.Bool true;
      op = Op.Reset;
      post_state = Value.Bool true;
      response = Value.Bottom;
    }
  in
  check Alcotest.bool "sticky shape" true (Tas_spec.sticky_bit sticky);
  check verdict "sticky classified" (Classify.Structured_fault "sticky-bit")
    (Classify.classify_step sticky)

let test_tas_faulty_semantics () =
  (match FS.apply Fault_kind.Silent ~kind:Kind.Test_and_set ~state:(Value.Bool false)
           Op.Test_and_set with
  | Ok (FS.Outcome o) ->
      check value_testable "bit unchanged" (Value.Bool false) o.Semantics.post_state;
      check value_testable "truthful old" (Value.Bool false) o.Semantics.response
  | _ -> Alcotest.fail "silent tas");
  match
    FS.apply Fault_kind.Invisible ~payload:(Value.Bool false) ~kind:Kind.Test_and_set
      ~state:(Value.Bool true) Op.Test_and_set
  with
  | Ok (FS.Outcome o) ->
      check value_testable "bit stays set" (Value.Bool true) o.Semantics.post_state;
      check value_testable "forged win" (Value.Bool false) o.Semantics.response
  | _ -> Alcotest.fail "phantom win"

(* ---- TAS consensus protocol ---- *)

let test_tas_consensus_fault_free () =
  let setup =
    Check.setup Consensus.Tas_consensus.protocol (Protocol.params ~n_procs:2 ~f:0 ())
  in
  let stats = Dfs.explore ~max_executions:1_000 setup in
  check Alcotest.bool "exhaustively clean" true
    (stats.Dfs.witnesses = [] && not stats.Dfs.truncated)

let test_tas_consensus_silent_breaks () =
  let setup =
    Check.setup
      ~allowed_faults:[ Fault_kind.Silent ]
      ~victims:[ Consensus.Tas_consensus.tas_object ]
      Consensus.Tas_consensus.protocol
      (Protocol.params ~t:1 ~n_procs:2 ~f:1 ())
  in
  let stats = Dfs.explore ~max_executions:10_000 setup in
  check Alcotest.bool "witness found" true (stats.Dfs.witnesses <> [])

let test_tas_consensus_rejects_n3 () =
  let setup =
    Check.setup Consensus.Tas_consensus.protocol (Protocol.params ~n_procs:3 ~f:0 ())
  in
  let report =
    Check.run setup
      ~scheduler:(Ffault_sim.Scheduler.round_robin ())
      ~injector:Ffault_fault.Injector.never ()
  in
  (* the construction is 2-process; a third process crashes its body *)
  check Alcotest.bool "some process crashed" true
    (List.exists
       (function Check.Wait_freedom _ -> true | _ -> false)
       report.Check.violations)

let suites =
  [
    ( "objects.vqueue",
      [
        Alcotest.test_case "roundtrip" `Quick test_vqueue_roundtrip;
        Alcotest.test_case "enqueue/dequeue" `Quick test_vqueue_enqueue_dequeue;
        Alcotest.test_case "bounds" `Quick test_vqueue_bounds;
        qcheck prop_vqueue_of_to;
      ] );
    ( "objects.queue-semantics",
      [
        Alcotest.test_case "fifo" `Quick test_queue_semantics;
        Alcotest.test_case "errors" `Quick test_queue_semantics_errors;
      ] );
    ( "fault.relaxation",
      [
        Alcotest.test_case "semantics" `Quick test_relaxation_semantics;
        Alcotest.test_case "payload errors" `Quick test_relaxation_payload_errors;
        Alcotest.test_case "queue \xce\xa6' formulas" `Quick test_queue_spec;
        Alcotest.test_case "classification" `Quick test_queue_classification;
      ] );
    ( "hoare.tas",
      [
        Alcotest.test_case "\xce\xa6' formulas" `Quick test_tas_spec;
        Alcotest.test_case "sticky bit" `Quick test_sticky_bit;
        Alcotest.test_case "faulty semantics" `Quick test_tas_faulty_semantics;
      ] );
    ( "consensus.tas",
      [
        Alcotest.test_case "fault-free exhaustive" `Quick test_tas_consensus_fault_free;
        Alcotest.test_case "silent fault breaks" `Quick test_tas_consensus_silent_breaks;
        Alcotest.test_case "n=3 rejected" `Quick test_tas_consensus_rejects_n3;
      ] );
  ]
