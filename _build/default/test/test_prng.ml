(* Tests for Ffault_prng: determinism, ranges, stream independence, and
   distribution sanity of the sampling helpers. *)

module Splitmix = Ffault_prng.Splitmix
module Xoshiro = Ffault_prng.Xoshiro
module Rng = Ffault_prng.Rng

let check = Alcotest.check
let qcheck = QCheck_alcotest.to_alcotest

let test_splitmix_deterministic () =
  let a = Splitmix.create 42L and b = Splitmix.create 42L in
  for _ = 1 to 100 do
    check Alcotest.int64 "same stream" (Splitmix.next a) (Splitmix.next b)
  done

let test_splitmix_seed_sensitivity () =
  let a = Splitmix.create 1L and b = Splitmix.create 2L in
  let differs = ref false in
  for _ = 1 to 10 do
    if not (Int64.equal (Splitmix.next a) (Splitmix.next b)) then differs := true
  done;
  check Alcotest.bool "different seeds diverge" true !differs

let test_splitmix_copy_independent () =
  let a = Splitmix.create 7L in
  ignore (Splitmix.next a);
  let b = Splitmix.copy a in
  let xa = Splitmix.next a in
  let xb = Splitmix.next b in
  check Alcotest.int64 "copy continues identically" xa xb;
  ignore (Splitmix.next a);
  (* advancing a does not advance b *)
  let xa2 = Splitmix.next a and xb2 = Splitmix.next b in
  check Alcotest.bool "streams advance independently" false
    (Int64.equal xa2 xb2 && Int64.equal xa2 0L)

let test_splitmix_state_roundtrip () =
  let a = Splitmix.create 11L in
  ignore (Splitmix.next a);
  let b = Splitmix.of_state (Splitmix.state a) in
  check Alcotest.int64 "resume from state" (Splitmix.next a) (Splitmix.next b)

let test_split_independence () =
  let a = Splitmix.create 3L in
  let b = Splitmix.split a in
  let xs = List.init 50 (fun _ -> Splitmix.next a) in
  let ys = List.init 50 (fun _ -> Splitmix.next b) in
  check Alcotest.bool "split streams differ" true (xs <> ys)

let test_hash_stateless () =
  check Alcotest.int64 "hash is a pure function" (Splitmix.hash 123L) (Splitmix.hash 123L);
  check Alcotest.bool "hash separates close inputs" true
    (not (Int64.equal (Splitmix.hash 123L) (Splitmix.hash 124L)))

let test_xoshiro_deterministic () =
  let a = Xoshiro.create 5L and b = Xoshiro.create 5L in
  for _ = 1 to 100 do
    check Alcotest.int64 "same stream" (Xoshiro.next a) (Xoshiro.next b)
  done

let test_xoshiro_jump () =
  let a = Xoshiro.create 5L in
  let b = Xoshiro.copy a in
  Xoshiro.jump b;
  let xs = List.init 20 (fun _ -> Xoshiro.next a) in
  let ys = List.init 20 (fun _ -> Xoshiro.next b) in
  check Alcotest.bool "jumped stream differs" true (xs <> ys)

let prop_next_int_in_range =
  QCheck.Test.make ~name:"Splitmix.next_int stays in [0, bound)" ~count:500
    QCheck.(pair int64 (int_range 1 1_000_000))
    (fun (seed, bound) ->
      let g = Splitmix.create seed in
      let v = Splitmix.next_int g ~bound in
      v >= 0 && v < bound)

let prop_next_float_in_range =
  QCheck.Test.make ~name:"next_float in [0, 1)" ~count:500 QCheck.int64 (fun seed ->
      let g = Splitmix.create seed in
      let f = Splitmix.next_float g in
      f >= 0.0 && f < 1.0)

let test_next_int_rejects_bad_bound () =
  let g = Splitmix.create 0L in
  Alcotest.check_raises "bound 0" (Invalid_argument "Splitmix.next_int: bound must be positive")
    (fun () -> ignore (Splitmix.next_int g ~bound:0))

let test_rng_int_in () =
  let g = Rng.make ~seed:9L in
  for _ = 1 to 200 do
    let v = Rng.int_in g ~lo:5 ~hi:7 in
    check Alcotest.bool "in [5,7]" true (v >= 5 && v <= 7)
  done

let test_rng_bernoulli_extremes () =
  let g = Rng.make ~seed:1L in
  check Alcotest.bool "p=0 never" false (Rng.bernoulli g ~p:0.0);
  check Alcotest.bool "p=1 always" true (Rng.bernoulli g ~p:1.0)

let test_rng_bernoulli_rate () =
  let g = Rng.make ~seed:77L in
  let hits = ref 0 in
  let n = 10_000 in
  for _ = 1 to n do
    if Rng.bernoulli g ~p:0.3 then incr hits
  done;
  let rate = float_of_int !hits /. float_of_int n in
  check Alcotest.bool "rate near 0.3" true (rate > 0.27 && rate < 0.33)

let test_pick_empty () =
  let g = Rng.make ~seed:0L in
  Alcotest.check_raises "empty array" (Invalid_argument "Rng.pick: empty array") (fun () ->
      ignore (Rng.pick g [||]));
  Alcotest.check_raises "empty list" (Invalid_argument "Rng.pick_list: empty list") (fun () ->
      ignore (Rng.pick_list g []))

let prop_shuffle_is_permutation =
  QCheck.Test.make ~name:"shuffle preserves the multiset" ~count:200
    QCheck.(pair int64 (list small_int))
    (fun (seed, l) ->
      let g = Rng.make ~seed in
      let a = Array.of_list l in
      Rng.shuffle g a;
      List.sort compare (Array.to_list a) = List.sort compare l)

let prop_sample_without_replacement =
  QCheck.Test.make ~name:"sample_without_replacement: sorted distinct subset" ~count:200
    QCheck.(triple int64 (int_range 0 20) (int_range 0 30))
    (fun (seed, k, extra) ->
      let n = k + extra in
      let g = Rng.make ~seed in
      let s = Rng.sample_without_replacement g ~k ~n in
      List.length s = k
      && List.for_all (fun x -> x >= 0 && x < n) s
      && List.sort_uniq compare s = s)

let test_weighted_index () =
  let g = Rng.make ~seed:13L in
  for _ = 1 to 100 do
    check Alcotest.int "all weight on index 2" 2 (Rng.weighted_index g [| 0.0; 0.0; 5.0 |])
  done;
  Alcotest.check_raises "empty" (Invalid_argument "Rng.weighted_index: empty weights")
    (fun () -> ignore (Rng.weighted_index g [||]));
  Alcotest.check_raises "zero total"
    (Invalid_argument "Rng.weighted_index: zero total weight") (fun () ->
      ignore (Rng.weighted_index g [| 0.0; 0.0 |]))

let test_weighted_index_distribution () =
  let g = Rng.make ~seed:21L in
  let counts = [| 0; 0 |] in
  let n = 10_000 in
  for _ = 1 to n do
    let i = Rng.weighted_index g [| 1.0; 3.0 |] in
    counts.(i) <- counts.(i) + 1
  done;
  let rate1 = float_of_int counts.(1) /. float_of_int n in
  check Alcotest.bool "index 1 near 3/4" true (rate1 > 0.72 && rate1 < 0.78)

let test_seed_of_string () =
  check Alcotest.int64 "stable" (Rng.seed_of_string "e1") (Rng.seed_of_string "e1");
  check Alcotest.bool "labels separate" true
    (not (Int64.equal (Rng.seed_of_string "e1") (Rng.seed_of_string "e2")))

let suites =
  [
    ( "prng",
      [
        Alcotest.test_case "splitmix deterministic" `Quick test_splitmix_deterministic;
        Alcotest.test_case "splitmix seed sensitivity" `Quick test_splitmix_seed_sensitivity;
        Alcotest.test_case "splitmix copy independent" `Quick test_splitmix_copy_independent;
        Alcotest.test_case "splitmix state roundtrip" `Quick test_splitmix_state_roundtrip;
        Alcotest.test_case "split independence" `Quick test_split_independence;
        Alcotest.test_case "hash stateless" `Quick test_hash_stateless;
        Alcotest.test_case "xoshiro deterministic" `Quick test_xoshiro_deterministic;
        Alcotest.test_case "xoshiro jump" `Quick test_xoshiro_jump;
        Alcotest.test_case "next_int rejects bad bound" `Quick test_next_int_rejects_bad_bound;
        Alcotest.test_case "rng int_in range" `Quick test_rng_int_in;
        Alcotest.test_case "bernoulli extremes" `Quick test_rng_bernoulli_extremes;
        Alcotest.test_case "bernoulli rate" `Quick test_rng_bernoulli_rate;
        Alcotest.test_case "pick empty raises" `Quick test_pick_empty;
        Alcotest.test_case "weighted_index" `Quick test_weighted_index;
        Alcotest.test_case "weighted_index distribution" `Quick
          test_weighted_index_distribution;
        Alcotest.test_case "seed_of_string" `Quick test_seed_of_string;
        qcheck prop_next_int_in_range;
        qcheck prop_next_float_in_range;
        qcheck prop_shuffle_is_permutation;
        qcheck prop_sample_without_replacement;
      ] );
  ]
