(* Tests for the verification layer: consensus oracles, mass testing, the
   DFS model checker, and the invisible-fault reduction. *)

open Ffault_objects
module Consensus = Ffault_consensus
module Protocol = Consensus.Protocol
module Check = Ffault_verify.Consensus_check
module Mass = Ffault_verify.Mass
module Dfs = Ffault_verify.Dfs
module Reduction = Ffault_verify.Reduction
module Sim = Ffault_sim
module Fault = Ffault_fault

let check = Alcotest.check
let i n = Value.Int n

let herlihy_setup ?allowed_faults ~n ~f () =
  Check.setup ?allowed_faults Consensus.Single_cas.herlihy (Protocol.params ~n_procs:n ~f ())

(* ---- Consensus_check ---- *)

let test_clean_run_ok () =
  let setup = herlihy_setup ~n:3 ~f:0 () in
  let report =
    Check.run setup ~scheduler:(Sim.Scheduler.round_robin ())
      ~injector:Fault.Injector.never ()
  in
  check Alcotest.bool "ok" true (Check.ok report)

let test_consistency_violation_detected () =
  let setup = herlihy_setup ~n:3 ~f:1 () in
  (* round robin + always-fault: p1 and p2 both "succeed" *)
  let report =
    Check.run setup ~scheduler:(Sim.Scheduler.round_robin ())
      ~injector:(Fault.Injector.always Fault.Fault_kind.Overriding) ()
  in
  check Alcotest.bool "violation found" false (Check.ok report);
  check Alcotest.bool "it is a consistency violation" true
    (List.exists (function Check.Consistency _ -> true | _ -> false) report.Check.violations)

let test_validity_violation_detected () =
  let setup = herlihy_setup ~allowed_faults:[ Fault.Fault_kind.Arbitrary ] ~n:2 ~f:1 () in
  let report =
    Check.run setup ~scheduler:(Sim.Scheduler.round_robin ())
      ~injector:(Fault.Injector.always Fault.Fault_kind.Arbitrary) ()
  in
  check Alcotest.bool "validity violation" true
    (List.exists (function Check.Validity _ -> true | _ -> false) report.Check.violations)

let test_wait_freedom_violation_detected () =
  let setup = herlihy_setup ~allowed_faults:[ Fault.Fault_kind.Nonresponsive ] ~n:2 ~f:1 () in
  let report =
    Check.run setup ~scheduler:(Sim.Scheduler.round_robin ())
      ~injector:
        (Fault.Injector.on_invocations
           [ (0, Fault.Injector.Fault { kind = Fault.Fault_kind.Nonresponsive; payload = None }) ])
      ()
  in
  check Alcotest.bool "wait-freedom violation" true
    (List.exists
       (function Check.Wait_freedom _ -> true | _ -> false)
       report.Check.violations)

let test_setup_rejects_bad_inputs () =
  Alcotest.check_raises "inputs mismatch"
    (Invalid_argument "Consensus_check.setup: inputs count differs from n_procs") (fun () ->
      ignore
        (Check.setup ~inputs:[| i 1 |] Consensus.Single_cas.herlihy
           (Protocol.params ~n_procs:2 ~f:0 ())))

let test_victims_restrict_faults () =
  (* Fig. 2 with f = 1 and the victim pinned to O1: O0 is then the
     guaranteed-correct object. *)
  let setup =
    Check.setup
      ~victims:[ Obj_id.of_int 1 ]
      Consensus.F_tolerant.protocol
      (Protocol.params ~n_procs:3 ~f:1 ())
  in
  let report =
    Check.run setup ~scheduler:(Sim.Scheduler.round_robin ())
      ~injector:(Fault.Injector.always Fault.Fault_kind.Overriding) ()
  in
  check Alcotest.bool "ok" true (Check.ok report);
  List.iter
    (fun obj -> check Alcotest.int "only the victim faulted" 1 (Obj_id.to_int obj))
    (Fault.Budget.faulty_objects report.Check.result.Sim.Engine.budget)

(* ---- Mass ---- *)

let test_mass_counts_failures () =
  let setup = herlihy_setup ~n:3 ~f:1 () in
  let summary =
    Mass.run
      ~injector:(fun _ -> Fault.Injector.always Fault.Fault_kind.Overriding)
      ~n_runs:100 ~base_seed:3L setup
  in
  check Alcotest.int "runs" 100 summary.Mass.runs;
  check Alcotest.bool "some failures" true (summary.Mass.failure_count > 0);
  check Alcotest.bool "kept at most 5" true (List.length summary.Mass.failures <= 5)

let test_mass_reproducible () =
  let setup () = herlihy_setup ~n:3 ~f:1 () in
  let run () =
    Mass.run
      ~injector:(fun rng ->
        Fault.Injector.probabilistic
          ~seed:(Ffault_prng.Rng.next_seed rng)
          ~p:0.5 Fault.Fault_kind.Overriding)
      ~n_runs:200 ~base_seed:11L (setup ())
  in
  let a = run () and b = run () in
  check Alcotest.int "same failure count" a.Mass.failure_count b.Mass.failure_count;
  check Alcotest.int "same fault total" a.Mass.total_faults b.Mass.total_faults

let test_mass_on_report_called () =
  let setup = herlihy_setup ~n:2 ~f:0 () in
  let calls = ref 0 in
  ignore
    (Mass.run
       ~on_report:(fun ~seed:_ _ -> incr calls)
       ~injector:(fun _ -> Fault.Injector.never)
       ~n_runs:17 ~base_seed:1L setup);
  check Alcotest.int "observer called per run" 17 !calls

(* ---- Dfs ---- *)

let test_dfs_finds_known_witness () =
  let setup =
    Check.setup (Consensus.F_tolerant.with_objects 1) (Protocol.params ~n_procs:3 ~f:1 ())
  in
  let stats = Dfs.explore ~max_executions:10_000 setup in
  check Alcotest.bool "witness" true (stats.Dfs.witnesses <> [])

let test_dfs_clean_on_correct_protocol () =
  let setup =
    Check.setup Consensus.F_tolerant.protocol (Protocol.params ~n_procs:3 ~f:1 ())
  in
  let stats = Dfs.explore ~max_executions:100_000 setup in
  check Alcotest.bool "no witness" true (stats.Dfs.witnesses = []);
  check Alcotest.bool "not truncated" false stats.Dfs.truncated

let test_dfs_schedule_only_fault_free () =
  (* Without fault exploration, a correct protocol has only schedule
     nondeterminism; Fig. 1 with two processes has exactly 2 schedules. *)
  let setup =
    Check.setup Consensus.Single_cas.two_process (Protocol.params ~n_procs:2 ~f:0 ())
  in
  let stats = Dfs.explore ~explore_faults:false ~max_executions:1_000 setup in
  check Alcotest.int "two interleavings" 2 stats.Dfs.executions;
  check Alcotest.bool "clean" true (stats.Dfs.witnesses = [])

let test_dfs_replay_reproduces_witness () =
  let setup =
    Check.setup (Consensus.F_tolerant.with_objects 1) (Protocol.params ~n_procs:3 ~f:1 ())
  in
  let stats = Dfs.explore ~max_executions:10_000 setup in
  match stats.Dfs.witnesses with
  | [] -> Alcotest.fail "no witness"
  | w :: _ ->
      let report = Dfs.replay setup w.Dfs.decisions in
      check Alcotest.bool "replay violates too" false (Check.ok report);
      check Alcotest.int "same violation count"
        (List.length w.Dfs.report.Check.violations)
        (List.length report.Check.violations)

let test_dfs_fig3_smallest_exhaustive () =
  (* Every schedule × fault pattern of Fig. 3 at f = 1, t = 1, n = 2: the
     theorem instance is fully model-checked, not sampled. *)
  let setup =
    Check.setup Consensus.Bounded_faults.protocol
      (Protocol.params ~t:1 ~n_procs:2 ~f:1 ())
  in
  let stats = Dfs.explore ~max_executions:100_000 ~max_branch_depth:128 setup in
  check Alcotest.bool "clean" true (stats.Dfs.witnesses = []);
  check Alcotest.bool "exhaustive" false stats.Dfs.truncated;
  check Alcotest.bool "thousands of executions" true (stats.Dfs.executions > 1000)

let test_dfs_execution_cap_truncates () =
  let setup =
    Check.setup Consensus.F_tolerant.protocol (Protocol.params ~n_procs:3 ~f:2 ())
  in
  let stats = Dfs.explore ~max_executions:10 setup in
  check Alcotest.bool "truncated" true stats.Dfs.truncated;
  check Alcotest.int "capped" 10 stats.Dfs.executions

let test_dfs_on_report_observer () =
  let setup =
    Check.setup Consensus.Single_cas.two_process (Protocol.params ~n_procs:2 ~f:0 ())
  in
  let seen = ref 0 in
  ignore
    (Dfs.explore ~explore_faults:false ~max_executions:100
       ~on_report:(fun _ _ -> incr seen)
       setup);
  check Alcotest.int "observer saw both runs" 2 !seen

(* ---- Reduction ---- *)

let invisible_trace () =
  let setup = herlihy_setup ~allowed_faults:[ Fault.Fault_kind.Invisible ] ~n:3 ~f:1 () in
  let report =
    Check.run setup ~scheduler:(Sim.Scheduler.round_robin ())
      ~injector:(Fault.Injector.always Fault.Fault_kind.Invisible) ()
  in
  (Check.world setup, report.Check.result.Sim.Engine.trace)

let test_reduction_rewrites_invisible () =
  let world, original = invisible_trace () in
  let rewritten = Reduction.invisible_to_data original in
  let c = Reduction.verify ~world ~original ~rewritten in
  check Alcotest.bool "responses preserved" true c.Reduction.responses_preserved;
  check Alcotest.bool "steps all correct" true c.Reduction.steps_all_correct;
  check Alcotest.bool "corruptions added" true (c.Reduction.corruptions_added > 0)

let test_reduction_identity_on_fault_free () =
  let setup = herlihy_setup ~n:2 ~f:0 () in
  let report =
    Check.run setup ~scheduler:(Sim.Scheduler.round_robin ())
      ~injector:Fault.Injector.never ()
  in
  let original = report.Check.result.Sim.Engine.trace in
  let rewritten = Reduction.invisible_to_data original in
  check Alcotest.int "no change" (List.length original) (List.length rewritten)

let suites =
  [
    ( "verify.check",
      [
        Alcotest.test_case "clean run" `Quick test_clean_run_ok;
        Alcotest.test_case "consistency violation" `Quick test_consistency_violation_detected;
        Alcotest.test_case "validity violation" `Quick test_validity_violation_detected;
        Alcotest.test_case "wait-freedom violation" `Quick
          test_wait_freedom_violation_detected;
        Alcotest.test_case "setup validation" `Quick test_setup_rejects_bad_inputs;
        Alcotest.test_case "victims restriction" `Quick test_victims_restrict_faults;
      ] );
    ( "verify.mass",
      [
        Alcotest.test_case "counts failures" `Quick test_mass_counts_failures;
        Alcotest.test_case "reproducible" `Quick test_mass_reproducible;
        Alcotest.test_case "observer" `Quick test_mass_on_report_called;
      ] );
    ( "verify.dfs",
      [
        Alcotest.test_case "finds witness" `Quick test_dfs_finds_known_witness;
        Alcotest.test_case "clean on correct protocol" `Quick
          test_dfs_clean_on_correct_protocol;
        Alcotest.test_case "schedule-only count" `Quick test_dfs_schedule_only_fault_free;
        Alcotest.test_case "replay reproduces" `Quick test_dfs_replay_reproduces_witness;
        Alcotest.test_case "fig3 smallest exhaustive" `Quick test_dfs_fig3_smallest_exhaustive;
        Alcotest.test_case "cap truncates" `Quick test_dfs_execution_cap_truncates;
        Alcotest.test_case "observer" `Quick test_dfs_on_report_observer;
      ] );
    ( "verify.reduction",
      [
        Alcotest.test_case "rewrites invisible" `Quick test_reduction_rewrites_invisible;
        Alcotest.test_case "identity on fault-free" `Quick test_reduction_identity_on_fault_free;
      ] );
  ]
