(* Tests for histories and the Wing–Gong linearizability checker. *)

open Ffault_objects

let check = Alcotest.check

let op_faa n = Op.Fetch_and_add n

let mk ~proc ~op ~response ~call ~return =
  { History.proc; op; response; call; return }

let test_builder_roundtrip () =
  let b = History.Builder.create ~kind:Kind.Fetch_and_add ~init:(Value.Int 0) in
  History.Builder.call b ~proc:0 ~op:(op_faa 1);
  History.Builder.return b ~proc:0 ~response:(Value.Int 0);
  History.Builder.call b ~proc:1 ~op:(op_faa 1);
  History.Builder.return b ~proc:1 ~response:(Value.Int 1);
  let h = History.Builder.finish b in
  check Alcotest.int "two ops" 2 (Array.length h.History.ops);
  check Alcotest.bool "sequential" true (History.is_sequential h)

let test_builder_rejects_double_call () =
  let b = History.Builder.create ~kind:Kind.Register ~init:Value.Bottom in
  History.Builder.call b ~proc:0 ~op:Op.Read;
  Alcotest.check_raises "double call"
    (Invalid_argument "History.Builder.call: process already has a pending operation")
    (fun () -> History.Builder.call b ~proc:0 ~op:Op.Read)

let test_builder_rejects_orphan_return () =
  let b = History.Builder.create ~kind:Kind.Register ~init:Value.Bottom in
  Alcotest.check_raises "orphan return"
    (Invalid_argument "History.Builder.return: no pending operation for process") (fun () ->
      History.Builder.return b ~proc:0 ~response:Value.Bottom)

let test_builder_drops_pending () =
  let b = History.Builder.create ~kind:Kind.Register ~init:Value.Bottom in
  History.Builder.call b ~proc:0 ~op:Op.Read;
  let h = History.Builder.finish b in
  check Alcotest.int "pending dropped" 0 (Array.length h.History.ops)

let test_make_validation () =
  Alcotest.check_raises "call after return"
    (Invalid_argument "History.make: call must precede return") (fun () ->
      ignore
        (History.make ~kind:Kind.Register ~init:Value.Bottom
           [ mk ~proc:0 ~op:Op.Read ~response:Value.Bottom ~call:2 ~return:1 ]));
  Alcotest.check_raises "duplicate timestamps"
    (Invalid_argument "History.make: duplicate timestamps") (fun () ->
      ignore
        (History.make ~kind:Kind.Register ~init:Value.Bottom
           [
             mk ~proc:0 ~op:Op.Read ~response:Value.Bottom ~call:1 ~return:2;
             mk ~proc:1 ~op:Op.Read ~response:Value.Bottom ~call:2 ~return:3;
           ]))

let test_sequential_faa_linearizable () =
  let h =
    History.make ~kind:Kind.Fetch_and_add ~init:(Value.Int 0)
      [
        mk ~proc:0 ~op:(op_faa 1) ~response:(Value.Int 0) ~call:1 ~return:2;
        mk ~proc:1 ~op:(op_faa 1) ~response:(Value.Int 1) ~call:3 ~return:4;
      ]
  in
  check Alcotest.bool "linearizable" true (Linearizability.is_linearizable h)

let test_sequential_wrong_response () =
  let h =
    History.make ~kind:Kind.Fetch_and_add ~init:(Value.Int 0)
      [
        mk ~proc:0 ~op:(op_faa 1) ~response:(Value.Int 0) ~call:1 ~return:2;
        mk ~proc:1 ~op:(op_faa 1) ~response:(Value.Int 0) ~call:3 ~return:4;
      ]
  in
  check Alcotest.bool "duplicate FAA response is not linearizable" false
    (Linearizability.is_linearizable h)

let test_concurrent_reorder_needed () =
  (* Two overlapping FAAs whose responses force the later-called one to
     linearize first. *)
  let h =
    History.make ~kind:Kind.Fetch_and_add ~init:(Value.Int 0)
      [
        mk ~proc:0 ~op:(op_faa 1) ~response:(Value.Int 1) ~call:1 ~return:5;
        mk ~proc:1 ~op:(op_faa 1) ~response:(Value.Int 0) ~call:2 ~return:4;
      ]
  in
  check Alcotest.bool "overlap allows reordering" true (Linearizability.is_linearizable h)

let test_realtime_order_enforced () =
  (* p0's op returns before p1's is called, so p0 must linearize first —
     but the responses claim the opposite. *)
  let h =
    History.make ~kind:Kind.Fetch_and_add ~init:(Value.Int 0)
      [
        mk ~proc:0 ~op:(op_faa 1) ~response:(Value.Int 1) ~call:1 ~return:2;
        mk ~proc:1 ~op:(op_faa 1) ~response:(Value.Int 0) ~call:3 ~return:4;
      ]
  in
  check Alcotest.bool "real-time order enforced" false (Linearizability.is_linearizable h)

let test_register_linearizable () =
  let h =
    History.make ~kind:Kind.Register ~init:(Value.Int 0)
      [
        mk ~proc:0 ~op:(Op.Write (Value.Int 7)) ~response:Value.Bottom ~call:1 ~return:4;
        mk ~proc:1 ~op:Op.Read ~response:(Value.Int 7) ~call:2 ~return:3;
      ]
  in
  check Alcotest.bool "read sees concurrent write" true (Linearizability.is_linearizable h)

let test_register_stale_read () =
  let h =
    History.make ~kind:Kind.Register ~init:(Value.Int 0)
      [
        mk ~proc:0 ~op:(Op.Write (Value.Int 7)) ~response:Value.Bottom ~call:1 ~return:2;
        mk ~proc:1 ~op:Op.Read ~response:(Value.Int 0) ~call:3 ~return:4;
      ]
  in
  check Alcotest.bool "stale read after write completes" false
    (Linearizability.is_linearizable h)

let test_witness_order () =
  let h =
    History.make ~kind:Kind.Fetch_and_add ~init:(Value.Int 0)
      [
        mk ~proc:0 ~op:(op_faa 1) ~response:(Value.Int 1) ~call:1 ~return:5;
        mk ~proc:1 ~op:(op_faa 1) ~response:(Value.Int 0) ~call:2 ~return:4;
      ]
  in
  match Linearizability.check h with
  | Linearizability.Linearizable order ->
      check Alcotest.int "witness covers all ops" 2 (List.length order);
      check Alcotest.int "p1 first" 1 (List.hd order).History.proc
  | Linearizability.Not_linearizable -> Alcotest.fail "expected linearizable"

let test_larger_faa_history () =
  (* Ten concurrent FAA(1)s with responses forming a permutation — always
     linearizable when all overlap. *)
  let n = 10 in
  let ops =
    List.init n (fun i ->
        mk ~proc:i ~op:(op_faa 1)
          ~response:(Value.Int ((i * 3) mod n))
          ~call:(i + 1)
          ~return:(100 + i))
  in
  let h = History.make ~kind:Kind.Fetch_and_add ~init:(Value.Int 0) ops in
  check Alcotest.bool "permutation responses linearizable" true
    (Linearizability.is_linearizable h)

(* Brute-force reference checker: enumerate every permutation that
   respects the real-time order and simulate it. Exponential — only for
   tiny histories — but obviously correct; the Wing–Gong checker must
   agree on random inputs. *)
let reference_linearizable (h : History.t) =
  let ops = Array.to_list h.History.ops in
  let rec permutations_ok state remaining =
    match remaining with
    | [] -> true
    | _ ->
        List.exists
          (fun (o : History.operation) ->
            (* o may go first only if no remaining op must precede it *)
            let minimal =
              List.for_all
                (fun (o' : History.operation) -> o == o' || not (History.precedes o' o))
                remaining
            in
            minimal
            &&
            match Semantics.apply h.History.kind ~state o.History.op with
            | Ok { post_state; response } ->
                Value.equal response o.History.response
                && permutations_ok post_state
                     (List.filter (fun o' -> not (o == o')) remaining)
            | Error _ -> false)
          remaining
  in
  permutations_ok h.History.init ops

let small_history_gen =
  let open QCheck.Gen in
  (* up to 5 FAA(1) ops with random responses and random (possibly
     overlapping) intervals over a small timestamp space *)
  let* n = int_range 1 5 in
  let* responses = list_size (return n) (int_bound 6) in
  let* starts = list_size (return n) (int_bound 20) in
  let* lens = list_size (return n) (int_range 1 8) in
  (* assign distinct timestamps by spreading: call = 3*start + i, return =
     call + 3*len + 1 — distinctness enforced by construction below *)
  let ops =
    List.mapi
      (fun i ((r, s), l) ->
        let call = (6 * s) + (2 * i) in
        let return = call + (6 * l) + 1 in
        { History.proc = i; op = Op.Fetch_and_add 1; response = Value.Int r; call; return })
      (List.combine (List.combine responses starts) lens)
  in
  return ops

let prop_wing_gong_matches_reference =
  QCheck.Test.make ~name:"Wing-Gong agrees with brute force on small histories" ~count:500
    (QCheck.make small_history_gen)
    (fun ops ->
      match History.make ~kind:Kind.Fetch_and_add ~init:(Value.Int 0) ops with
      | exception Invalid_argument _ -> QCheck.assume_fail ()
      | h -> Linearizability.is_linearizable h = reference_linearizable h)

let suites =
  [
    ( "objects.history",
      [
        Alcotest.test_case "builder roundtrip" `Quick test_builder_roundtrip;
        Alcotest.test_case "builder rejects double call" `Quick
          test_builder_rejects_double_call;
        Alcotest.test_case "builder rejects orphan return" `Quick
          test_builder_rejects_orphan_return;
        Alcotest.test_case "builder drops pending" `Quick test_builder_drops_pending;
        Alcotest.test_case "make validation" `Quick test_make_validation;
      ] );
    ( "objects.linearizability",
      [
        Alcotest.test_case "sequential faa" `Quick test_sequential_faa_linearizable;
        Alcotest.test_case "wrong response" `Quick test_sequential_wrong_response;
        Alcotest.test_case "concurrent reorder" `Quick test_concurrent_reorder_needed;
        Alcotest.test_case "real-time order" `Quick test_realtime_order_enforced;
        Alcotest.test_case "register ok" `Quick test_register_linearizable;
        Alcotest.test_case "register stale read" `Quick test_register_stale_read;
        Alcotest.test_case "witness order" `Quick test_witness_order;
        Alcotest.test_case "larger history" `Quick test_larger_faa_history;
        QCheck_alcotest.to_alcotest prop_wing_gong_matches_reference;
      ] );
  ]
