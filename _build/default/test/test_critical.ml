(* Tests for the executable valency walk (the Theorem 18 proof device). *)

open Ffault_objects
module Consensus = Ffault_consensus
module Protocol = Consensus.Protocol
module Check = Ffault_verify.Consensus_check
module Critical = Ffault_impossibility.Critical
module Valency = Ffault_impossibility.Valency

let check = Alcotest.check

let test_fig1_initial_state_is_critical () =
  (* Fault-free Fig. 1 at n = 2: the very first scheduling decision is the
     decision step. *)
  let setup =
    Check.setup Consensus.Single_cas.two_process (Protocol.params ~n_procs:2 ~f:0 ())
  in
  match Critical.find setup with
  | Critical.Critical { depth; children; _ } ->
      check Alcotest.int "critical at the initial state" 0 depth;
      check Alcotest.int "two children" 2 (List.length children);
      let values =
        List.filter_map
          (fun c ->
            match c.Critical.verdict with Valency.Univalent v -> Some v | _ -> None)
          children
      in
      check Alcotest.int "both univalent" 2 (List.length values);
      check Alcotest.bool "with different values" false
        (Value.equal (List.nth values 0) (List.nth values 1));
      (* and both are schedule decisions *)
      List.iter
        (fun c ->
          match c.Critical.desc with
          | Critical.Schedule _ -> ()
          | Critical.Outcome _ -> Alcotest.fail "expected schedule decisions")
        children
  | r -> Alcotest.failf "expected a critical state, got %a" Critical.pp_result r

let test_under_provisioned_reaches_disagreement () =
  let setup =
    Check.setup (Consensus.F_tolerant.with_objects 1) (Protocol.params ~n_procs:3 ~f:1 ())
  in
  (match Critical.find ~reduced_faulty_proc:0 setup with
  | Critical.Disagreement { values; _ } ->
      check Alcotest.bool "at least two values" true (List.length values >= 2)
  | r -> Alcotest.failf "expected disagreement (reduced model), got %a" Critical.pp_result r);
  match Critical.find setup with
  | Critical.Disagreement _ -> ()
  | r -> Alcotest.failf "expected disagreement (full model), got %a" Critical.pp_result r

let test_correct_protocol_has_critical_state () =
  let setup =
    Check.setup Consensus.F_tolerant.protocol (Protocol.params ~n_procs:3 ~f:1 ())
  in
  match Critical.find setup with
  | Critical.Critical { children; _ } ->
      (* every child univalent, and at least two distinct values *)
      let values =
        List.filter_map
          (fun c ->
            match c.Critical.verdict with Valency.Univalent v -> Some v | _ -> None)
          children
      in
      check Alcotest.int "all univalent" (List.length children) (List.length values);
      check Alcotest.bool "two valencies present" true
        (List.length (List.sort_uniq Value.compare values) >= 2)
  | r -> Alcotest.failf "expected a critical state, got %a" Critical.pp_result r

let test_univalent_start_reported () =
  (* A single process: only its own value is ever decided. *)
  let setup =
    Check.setup Consensus.Single_cas.herlihy (Protocol.params ~n_procs:1 ~f:0 ())
  in
  match Critical.find setup with
  | Critical.Not_found _ -> ()
  | r -> Alcotest.failf "expected not-found on a univalent start, got %a" Critical.pp_result r

let suites =
  [
    ( "impossibility.critical",
      [
        Alcotest.test_case "fig1 initial critical" `Quick test_fig1_initial_state_is_critical;
        Alcotest.test_case "under-provisioned disagreement" `Quick
          test_under_provisioned_reaches_disagreement;
        Alcotest.test_case "correct protocol critical" `Slow
          test_correct_protocol_has_critical_state;
        Alcotest.test_case "univalent start" `Quick test_univalent_start_reported;
      ] );
  ]
