(* Tests for the fault model: kinds, faulty semantics, budgets, injectors
   and the data-fault baseline. *)

open Ffault_objects
module Fault_kind = Ffault_fault.Fault_kind
module FS = Ffault_fault.Faulty_semantics
module Budget = Ffault_fault.Budget
module Injector = Ffault_fault.Injector
module Data_fault = Ffault_fault.Data_fault

let check = Alcotest.check
let value_testable = Test_objects.value_testable_for_reuse
let i n = Value.Int n
let bot = Value.Bottom
let cas ~expected ~desired = Op.Cas { expected; desired }

(* ---- Fault_kind ---- *)

let test_kind_string_roundtrip () =
  List.iter
    (fun k ->
      check Alcotest.bool (Fault_kind.to_string k) true
        (Fault_kind.of_string (Fault_kind.to_string k) = Some k))
    Fault_kind.all;
  check Alcotest.bool "unknown" true (Fault_kind.of_string "zap" = None)

let test_kind_responsive () =
  check Alcotest.bool "overriding responsive" true (Fault_kind.is_responsive Overriding);
  check Alcotest.bool "nonresponsive not" false (Fault_kind.is_responsive Nonresponsive)

let test_kind_phi' () =
  check Alcotest.bool "nonresponsive has no \xce\xa6'" true
    (Fault_kind.phi' Nonresponsive = None);
  List.iter
    (fun k -> check Alcotest.bool (Fault_kind.to_string k) true (Fault_kind.phi' k <> None))
    [ Fault_kind.Overriding; Silent; Invisible; Arbitrary ]

(* ---- Faulty_semantics ---- *)

let outcome_exn = function
  | Ok (FS.Outcome o) -> o
  | Ok FS.Hangs -> Alcotest.fail "unexpected hang"
  | Error e -> Alcotest.failf "unexpected error: %a" FS.pp_error e

let test_overriding_semantics () =
  let o =
    outcome_exn
      (FS.apply Overriding ~kind:Kind.Cas_only ~state:(i 3)
         (cas ~expected:bot ~desired:(i 5)))
  in
  check value_testable "writes desired regardless" (i 5) o.Semantics.post_state;
  check value_testable "old is truthful" (i 3) o.Semantics.response

let test_silent_semantics () =
  let o =
    outcome_exn
      (FS.apply Silent ~kind:Kind.Cas_only ~state:bot (cas ~expected:bot ~desired:(i 5)))
  in
  check value_testable "suppresses the write" bot o.Semantics.post_state;
  check value_testable "old is truthful" bot o.Semantics.response

let test_invisible_semantics () =
  let o =
    outcome_exn
      (FS.apply Invisible ~payload:(i 9) ~kind:Kind.Cas_only ~state:(i 3)
         (cas ~expected:(i 3) ~desired:(i 5)))
  in
  check value_testable "state transitions correctly" (i 5) o.Semantics.post_state;
  check value_testable "response is the forged value" (i 9) o.Semantics.response

let test_invisible_payload_required () =
  match FS.apply Invisible ~kind:Kind.Cas_only ~state:(i 3) (cas ~expected:bot ~desired:(i 5)) with
  | Error (FS.Payload_required Invisible) -> ()
  | _ -> Alcotest.fail "expected Payload_required"

let test_invisible_payload_must_differ () =
  match
    FS.apply Invisible ~payload:(i 3) ~kind:Kind.Cas_only ~state:(i 3)
      (cas ~expected:bot ~desired:(i 5))
  with
  | Error (FS.Invalid_payload _) -> ()
  | _ -> Alcotest.fail "expected Invalid_payload"

let test_arbitrary_semantics () =
  let o =
    outcome_exn
      (FS.apply Arbitrary ~payload:(i 42) ~kind:Kind.Cas_only ~state:(i 3)
         (cas ~expected:(i 3) ~desired:(i 5)))
  in
  check value_testable "writes the payload" (i 42) o.Semantics.post_state;
  check value_testable "old is truthful" (i 3) o.Semantics.response

let test_nonresponsive_hangs () =
  match FS.apply Nonresponsive ~kind:Kind.Cas_only ~state:bot (cas ~expected:bot ~desired:(i 1)) with
  | Ok FS.Hangs -> ()
  | _ -> Alcotest.fail "expected Hangs"

let test_fault_on_non_cas () =
  match FS.apply Overriding ~kind:Kind.Register ~state:(i 1) Op.Read with
  | Error (FS.Not_applicable _) -> ()
  | _ -> Alcotest.fail "expected Not_applicable"

let test_observability () =
  (* overriding on a matching CAS is a no-op *)
  check Alcotest.bool "override on success unobservable" false
    (FS.is_observable Overriding ~state:bot (cas ~expected:bot ~desired:(i 1)));
  check Alcotest.bool "override on failure observable" true
    (FS.is_observable Overriding ~state:(i 2) (cas ~expected:bot ~desired:(i 1)));
  check Alcotest.bool "override writing the same value unobservable" false
    (FS.is_observable Overriding ~state:(i 1) (cas ~expected:bot ~desired:(i 1)));
  check Alcotest.bool "silent on failure unobservable" false
    (FS.is_observable Silent ~state:(i 2) (cas ~expected:bot ~desired:(i 1)));
  check Alcotest.bool "silent on success observable" true
    (FS.is_observable Silent ~state:bot (cas ~expected:bot ~desired:(i 1)))

(* ---- Budget ---- *)

let oid = Obj_id.of_int

let test_budget_basic () =
  let b = Budget.create ~max_faulty_objects:2 ~max_faults_per_object:(Some 2) () in
  check Alcotest.bool "fresh object can fault" true (Budget.can_fault b (oid 0));
  Budget.charge b (oid 0);
  Budget.charge b (oid 0);
  check Alcotest.bool "per-object cap" false (Budget.can_fault b (oid 0));
  Budget.charge b (oid 1);
  check Alcotest.bool "second object ok" true (Budget.can_fault b (oid 1));
  check Alcotest.bool "third object exceeds f" false (Budget.can_fault b (oid 2));
  check Alcotest.int "total" 3 (Budget.total_faults b);
  check (Alcotest.list Alcotest.int) "faulty objects" [ 0; 1 ]
    (List.map Obj_id.to_int (Budget.faulty_objects b))

let test_budget_unbounded_t () =
  let b = Budget.create ~max_faulty_objects:1 ~max_faults_per_object:None () in
  for _ = 1 to 100 do
    Budget.charge b (oid 3)
  done;
  check Alcotest.int "100 faults on one object" 100 (Budget.faults_on b (oid 3));
  check Alcotest.bool "other objects blocked" false (Budget.can_fault b (oid 4))

let test_budget_victims () =
  let b =
    Budget.create ~victims:[ oid 1 ] ~max_faulty_objects:2 ~max_faults_per_object:None ()
  in
  check Alcotest.bool "victim can fault" true (Budget.can_fault b (oid 1));
  check Alcotest.bool "non-victim cannot" false (Budget.can_fault b (oid 0))

let test_budget_none () =
  let b = Budget.none () in
  check Alcotest.bool "f=0 blocks all" false (Budget.can_fault b (oid 0))

let test_budget_charge_over () =
  let b = Budget.none () in
  Alcotest.check_raises "over-charge raises"
    (Invalid_argument "Budget.charge: fault on O0 exceeds budget") (fun () ->
      Budget.charge b (oid 0))

let test_budget_copy () =
  let b = Budget.create ~max_faulty_objects:1 ~max_faults_per_object:(Some 1) () in
  let c = Budget.copy b in
  Budget.charge b (oid 0);
  check Alcotest.int "copy unaffected" 0 (Budget.total_faults c);
  check Alcotest.bool "copy can still fault" true (Budget.can_fault c (oid 0))

let test_budget_validation () =
  Alcotest.check_raises "negative f" (Invalid_argument "Budget.create: max_faulty_objects < 0")
    (fun () -> ignore (Budget.create ~max_faulty_objects:(-1) ~max_faults_per_object:None ()));
  Alcotest.check_raises "t < 1" (Invalid_argument "Budget.create: max_faults_per_object < 1")
    (fun () ->
      ignore (Budget.create ~max_faulty_objects:1 ~max_faults_per_object:(Some 0) ()));
  Alcotest.check_raises "too many victims"
    (Invalid_argument "Budget.create: more victims than max_faulty_objects") (fun () ->
      ignore
        (Budget.create ~victims:[ oid 0; oid 1 ] ~max_faulty_objects:1
           ~max_faults_per_object:None ()))

(* ---- Injector ---- *)

let ctx ?(proc = 0) ?(op_index = 0) ?(state = bot) ?(obj = oid 0) () =
  {
    Injector.obj;
    op = cas ~expected:bot ~desired:(i 1);
    state;
    proc;
    step = 0;
    op_index;
    budget = Budget.unlimited ();
  }

let is_fault kind = function
  | Injector.Fault { kind = k; _ } -> Fault_kind.equal k kind
  | Injector.No_fault -> false

let test_injector_never_always () =
  check Alcotest.bool "never" true (Injector.never.Injector.decide (ctx ()) = Injector.No_fault);
  check Alcotest.bool "always overrides" true
    (is_fault Overriding ((Injector.always Overriding).Injector.decide (ctx ())))

let test_injector_probabilistic_deterministic () =
  let mk () = Injector.probabilistic ~seed:4L ~p:0.5 Fault_kind.Overriding in
  let a = mk () and b = mk () in
  for k = 0 to 50 do
    check Alcotest.bool "same seed, same decisions" true
      (a.Injector.decide (ctx ~op_index:k ()) = b.Injector.decide (ctx ~op_index:k ()))
  done

let test_injector_by_process () =
  let inj = Injector.by_process ~procs:[ 1 ] Fault_kind.Overriding in
  check Alcotest.bool "proc 1 faults" true (is_fault Overriding (inj.Injector.decide (ctx ~proc:1 ())));
  check Alcotest.bool "proc 0 does not" true
    (inj.Injector.decide (ctx ~proc:0 ()) = Injector.No_fault)

let test_injector_scripted () =
  let inj =
    Injector.on_invocations
      [ (2, Injector.Fault { kind = Fault_kind.Silent; payload = None }) ]
  in
  check Alcotest.bool "op 0 clean" true (inj.Injector.decide (ctx ~op_index:0 ()) = Injector.No_fault);
  check Alcotest.bool "op 2 faults" true
    (is_fault Silent (inj.Injector.decide (ctx ~op_index:2 ())))

let test_injector_first_per_object () =
  let inj = Injector.first_on_each_object Fault_kind.Overriding in
  check Alcotest.bool "first on O0" true
    (is_fault Overriding (inj.Injector.decide (ctx ~obj:(oid 0) ())));
  check Alcotest.bool "second on O0 clean" true
    (inj.Injector.decide (ctx ~obj:(oid 0) ()) = Injector.No_fault);
  check Alcotest.bool "first on O1" true
    (is_fault Overriding (inj.Injector.decide (ctx ~obj:(oid 1) ())))

let test_injector_payload_defaults () =
  (match (Injector.always Fault_kind.Arbitrary).Injector.decide (ctx ()) with
  | Injector.Fault { kind = Arbitrary; payload = Some _ } -> ()
  | _ -> Alcotest.fail "arbitrary needs a default payload");
  match (Injector.always Fault_kind.Invisible).Injector.decide (ctx ~state:(i 1) ()) with
  | Injector.Fault { kind = Invisible; payload = Some p } ->
      check Alcotest.bool "payload differs from state" false (Value.equal p (i 1))
  | _ -> Alcotest.fail "invisible needs a default payload"

(* ---- Data_fault ---- *)

let dctx ?(step = 0) states =
  {
    Data_fault.step;
    state_of = (fun o -> List.assoc (Obj_id.to_int o) states);
    budget = Budget.unlimited ();
  }

let test_data_fault_scripted () =
  let df = Data_fault.scripted [ (3, [ { Data_fault.obj = oid 0; value = i 9 } ]) ] in
  check Alcotest.int "nothing at step 0" 0 (List.length (df.Data_fault.decide (dctx [ (0, bot) ])));
  check Alcotest.int "fires at step 3" 1
    (List.length (df.Data_fault.decide (dctx ~step:3 [ (0, bot) ])))

let test_data_fault_probabilistic_bounds () =
  let df =
    Data_fault.probabilistic ~seed:5L ~p:1.0 ~objects:[ oid 0; oid 1 ] ~values:[ i 7 ]
  in
  let events = df.Data_fault.decide (dctx [ (0, bot); (1, bot) ]) in
  check Alcotest.int "one event at p=1" 1 (List.length events);
  List.iter
    (fun e -> check value_testable "value from palette" (i 7) e.Data_fault.value)
    events

let suites =
  [
    ( "fault.kind",
      [
        Alcotest.test_case "string roundtrip" `Quick test_kind_string_roundtrip;
        Alcotest.test_case "responsiveness" `Quick test_kind_responsive;
        Alcotest.test_case "\xce\xa6' mapping" `Quick test_kind_phi';
      ] );
    ( "fault.semantics",
      [
        Alcotest.test_case "overriding" `Quick test_overriding_semantics;
        Alcotest.test_case "silent" `Quick test_silent_semantics;
        Alcotest.test_case "invisible" `Quick test_invisible_semantics;
        Alcotest.test_case "invisible payload required" `Quick test_invisible_payload_required;
        Alcotest.test_case "invisible payload differs" `Quick test_invisible_payload_must_differ;
        Alcotest.test_case "arbitrary" `Quick test_arbitrary_semantics;
        Alcotest.test_case "nonresponsive hangs" `Quick test_nonresponsive_hangs;
        Alcotest.test_case "non-CAS rejected" `Quick test_fault_on_non_cas;
        Alcotest.test_case "observability" `Quick test_observability;
      ] );
    ( "fault.budget",
      [
        Alcotest.test_case "basic accounting" `Quick test_budget_basic;
        Alcotest.test_case "unbounded t" `Quick test_budget_unbounded_t;
        Alcotest.test_case "victims" `Quick test_budget_victims;
        Alcotest.test_case "none" `Quick test_budget_none;
        Alcotest.test_case "over-charge raises" `Quick test_budget_charge_over;
        Alcotest.test_case "copy isolation" `Quick test_budget_copy;
        Alcotest.test_case "validation" `Quick test_budget_validation;
      ] );
    ( "fault.injector",
      [
        Alcotest.test_case "never / always" `Quick test_injector_never_always;
        Alcotest.test_case "probabilistic determinism" `Quick
          test_injector_probabilistic_deterministic;
        Alcotest.test_case "by process" `Quick test_injector_by_process;
        Alcotest.test_case "scripted" `Quick test_injector_scripted;
        Alcotest.test_case "first per object" `Quick test_injector_first_per_object;
        Alcotest.test_case "payload defaults" `Quick test_injector_payload_defaults;
      ] );
    ( "fault.data",
      [
        Alcotest.test_case "scripted" `Quick test_data_fault_scripted;
        Alcotest.test_case "probabilistic" `Quick test_data_fault_probabilistic_bounds;
      ] );
  ]
