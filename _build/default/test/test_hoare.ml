(* Tests for the Hoare layer: the paper's Φ and Φ′ formulas as executable
   predicates, and the Definition-1 classifier. *)

open Ffault_objects
module Triple = Ffault_hoare.Triple
module Cas_spec = Ffault_hoare.Cas_spec
module Classify = Ffault_hoare.Classify

let check = Alcotest.check
let qcheck = QCheck_alcotest.to_alcotest

let cas_step ~pre ~expected ~desired ~post ~response =
  {
    Triple.kind = Kind.Cas_only;
    pre_state = pre;
    op = Op.Cas { expected; desired };
    post_state = post;
    response;
  }

let i n = Value.Int n
let bot = Value.Bottom

(* A correct successful CAS, a correct failed CAS, and each §3.3–3.4
   faulty shape. *)
let correct_success = cas_step ~pre:bot ~expected:bot ~desired:(i 5) ~post:(i 5) ~response:bot
let correct_failure =
  cas_step ~pre:(i 3) ~expected:bot ~desired:(i 5) ~post:(i 3) ~response:(i 3)
let overriding_step =
  cas_step ~pre:(i 3) ~expected:bot ~desired:(i 5) ~post:(i 5) ~response:(i 3)
let silent_step = cas_step ~pre:bot ~expected:bot ~desired:(i 5) ~post:bot ~response:bot
let invisible_step =
  cas_step ~pre:(i 3) ~expected:bot ~desired:(i 5) ~post:(i 3) ~response:(i 9)
let arbitrary_step =
  cas_step ~pre:(i 3) ~expected:bot ~desired:(i 5) ~post:(i 77) ~response:(i 3)

let test_standard_phi () =
  check Alcotest.bool "success satisfies \xce\xa6" true (Cas_spec.standard correct_success);
  check Alcotest.bool "failure satisfies \xce\xa6" true (Cas_spec.standard correct_failure);
  List.iter
    (fun (name, step) ->
      check Alcotest.bool (name ^ " violates \xce\xa6") false (Cas_spec.standard step))
    [
      ("overriding", overriding_step);
      ("silent", silent_step);
      ("invisible", invisible_step);
      ("arbitrary", arbitrary_step);
    ]

let test_overriding_phi' () =
  check Alcotest.bool "overriding shape" true (Cas_spec.overriding overriding_step);
  (* a correct successful CAS also satisfies the overriding formula *)
  check Alcotest.bool "correct success also satisfies it" true
    (Cas_spec.overriding correct_success);
  check Alcotest.bool "correct failure does not" false (Cas_spec.overriding correct_failure);
  check Alcotest.bool "silent does not" false (Cas_spec.overriding silent_step)

let test_strictly_faulty () =
  check Alcotest.bool "overriding step strictly faulty" true
    (Cas_spec.strictly_faulty Cas_spec.overriding overriding_step);
  check Alcotest.bool "correct success is no fault" false
    (Cas_spec.strictly_faulty Cas_spec.overriding correct_success)

let test_silent_phi' () =
  check Alcotest.bool "silent shape" true (Cas_spec.silent silent_step);
  check Alcotest.bool "correct failure also matches silent formula" true
    (Cas_spec.silent correct_failure);
  check Alcotest.bool "strictly faulty only on suppressed success" true
    (Cas_spec.strictly_faulty Cas_spec.silent silent_step);
  check Alcotest.bool "correct failure not strictly faulty" false
    (Cas_spec.strictly_faulty Cas_spec.silent correct_failure)

let test_invisible_phi' () =
  check Alcotest.bool "invisible shape" true (Cas_spec.invisible invisible_step);
  check Alcotest.bool "correct steps excluded (old = R')" false
    (Cas_spec.invisible correct_failure)

let test_arbitrary_phi' () =
  check Alcotest.bool "arbitrary shape" true (Cas_spec.arbitrary arbitrary_step);
  check Alcotest.bool "overriding also satisfies arbitrary" true
    (Cas_spec.arbitrary overriding_step);
  check Alcotest.bool "invisible does not (old wrong)" false
    (Cas_spec.arbitrary invisible_step)

let test_non_cas_steps_rejected () =
  let read_step =
    {
      Triple.kind = Kind.Register;
      pre_state = i 1;
      op = Op.Read;
      post_state = i 1;
      response = i 1;
    }
  in
  List.iter
    (fun (name, phi) -> check Alcotest.bool name false (phi read_step))
    [
      ("standard", Cas_spec.standard);
      ("overriding", Cas_spec.overriding);
      ("silent", Cas_spec.silent);
      ("invisible", Cas_spec.invisible);
      ("arbitrary", Cas_spec.arbitrary);
    ]

let test_correct_triple () =
  check Alcotest.bool "success" true (Triple.respects_sequential_spec correct_success);
  check Alcotest.bool "failure" true (Triple.respects_sequential_spec correct_failure);
  check Alcotest.bool "overriding rejected" false
    (Triple.respects_sequential_spec overriding_step);
  (* precondition violation: read on a cas-only object — vacuously holds *)
  let bad_pre =
    {
      Triple.kind = Kind.Cas_only;
      pre_state = bot;
      op = Op.Read;
      post_state = i 1;
      response = i 1;
    }
  in
  check Alcotest.bool "vacuous on precondition violation" true
    (Triple.respects_sequential_spec bad_pre)

let verdict = Alcotest.testable Classify.pp_verdict Classify.equal_verdict

let test_classify () =
  check verdict "correct" Classify.Correct (Classify.classify_cas correct_success);
  check verdict "overriding" (Classify.Structured_fault "overriding")
    (Classify.classify_cas overriding_step);
  check verdict "silent" (Classify.Structured_fault "silent")
    (Classify.classify_cas silent_step);
  check verdict "invisible" (Classify.Structured_fault "invisible")
    (Classify.classify_cas invisible_step);
  check verdict "arbitrary" (Classify.Structured_fault "arbitrary")
    (Classify.classify_cas arbitrary_step)

let test_classify_unstructured () =
  (* wrong response AND wrong state transition: matches no registered Φ′ *)
  let weird = cas_step ~pre:(i 3) ~expected:bot ~desired:(i 5) ~post:(i 77) ~response:(i 9) in
  check verdict "unstructured" Classify.Unstructured (Classify.classify_cas weird)

let test_classify_precondition () =
  let bad =
    {
      Triple.kind = Kind.Cas_only;
      pre_state = bot;
      op = Op.Read;
      post_state = bot;
      response = bot;
    }
  in
  check verdict "precondition" Classify.Precondition_violated (Classify.classify_cas bad)

let test_classify_order () =
  (* The overriding step also satisfies the arbitrary formula; the
     classifier must report the most specific (first) match. *)
  check verdict "specificity order" (Classify.Structured_fault "overriding")
    (Classify.classify ~alternatives:Classify.cas_alternatives overriding_step)

(* Property: for random (state, expected, desired), the classifier agrees
   with the faulty semantics that generated the step. *)
let value_arb = Test_objects.value_arb_for_reuse

let prop_classifier_agrees_with_faulty_semantics =
  QCheck.Test.make ~name:"classifier recognizes generated overriding faults" ~count:500
    (QCheck.triple value_arb value_arb value_arb)
    (fun (state, expected, desired) ->
      let op = Op.Cas { expected; desired } in
      match
        Ffault_fault.Faulty_semantics.apply Ffault_fault.Fault_kind.Overriding
          ~kind:Kind.Cas_only ~state op
      with
      | Ok (Ffault_fault.Faulty_semantics.Outcome o) ->
          let step =
            cas_step ~pre:state ~expected ~desired ~post:o.Semantics.post_state
              ~response:o.Semantics.response
          in
          let v = Classify.classify_cas step in
          (* either the fault is unobservable (step is correct) or it is
             recognized as overriding *)
          Classify.equal_verdict v Classify.Correct
          || Classify.equal_verdict v (Classify.Structured_fault "overriding")
      | Ok Ffault_fault.Faulty_semantics.Hangs | Error _ -> false)

let suites =
  [
    ( "hoare",
      [
        Alcotest.test_case "standard \xce\xa6" `Quick test_standard_phi;
        Alcotest.test_case "overriding \xce\xa6'" `Quick test_overriding_phi';
        Alcotest.test_case "strictly faulty" `Quick test_strictly_faulty;
        Alcotest.test_case "silent \xce\xa6'" `Quick test_silent_phi';
        Alcotest.test_case "invisible \xce\xa6'" `Quick test_invisible_phi';
        Alcotest.test_case "arbitrary \xce\xa6'" `Quick test_arbitrary_phi';
        Alcotest.test_case "non-CAS rejected" `Quick test_non_cas_steps_rejected;
        Alcotest.test_case "correct triple" `Quick test_correct_triple;
        Alcotest.test_case "classify kinds" `Quick test_classify;
        Alcotest.test_case "classify unstructured" `Quick test_classify_unstructured;
        Alcotest.test_case "classify precondition" `Quick test_classify_precondition;
        Alcotest.test_case "classification specificity" `Quick test_classify_order;
        qcheck prop_classifier_agrees_with_faulty_semantics;
      ] );
  ]
