(* Tests for the consensus library: protocol metadata, the Algorithms
   functor on a deterministic local substrate, the op codec, and the
   universal construction. *)

open Ffault_objects
module Consensus = Ffault_consensus
module Protocol = Consensus.Protocol
module Algorithms = Consensus.Algorithms
module Op_codec = Consensus.Op_codec
module Universal = Consensus.Universal
module Sim = Ffault_sim
module Fault = Ffault_fault

let check = Alcotest.check
let qcheck = QCheck_alcotest.to_alcotest
let i n = Value.Int n
let value_testable = Test_objects.value_testable_for_reuse

(* ---- Protocol metadata ---- *)

let test_params_validation () =
  Alcotest.check_raises "n < 1" (Invalid_argument "Protocol.params: n_procs < 1") (fun () ->
      ignore (Protocol.params ~n_procs:0 ~f:1 ()));
  Alcotest.check_raises "f < 0" (Invalid_argument "Protocol.params: f < 0") (fun () ->
      ignore (Protocol.params ~n_procs:1 ~f:(-1) ()));
  Alcotest.check_raises "t < 1" (Invalid_argument "Protocol.params: t < 1") (fun () ->
      ignore (Protocol.params ~t:0 ~n_procs:1 ~f:1 ()))

let test_default_inputs_distinct () =
  let inputs = Protocol.default_inputs (Protocol.params ~n_procs:5 ~f:1 ()) in
  let as_list = Array.to_list inputs in
  check Alcotest.int "distinct" 5 (List.length (List.sort_uniq Value.compare as_list));
  check Alcotest.bool "no bottom" true (List.for_all (fun v -> not (Value.is_bottom v)) as_list)

let test_envelopes () =
  let p ~n ?t ~f () = Protocol.params ?t ~n_procs:n ~f () in
  check Alcotest.bool "herlihy f=0" true
    (Consensus.Single_cas.herlihy.Protocol.in_envelope (p ~n:10 ~f:0 ()));
  check Alcotest.bool "herlihy f=1" false
    (Consensus.Single_cas.herlihy.Protocol.in_envelope (p ~n:10 ~f:1 ()));
  check Alcotest.bool "fig1 n=2" true
    (Consensus.Single_cas.two_process.Protocol.in_envelope (p ~n:2 ~f:1 ()));
  check Alcotest.bool "fig1 n=3" false
    (Consensus.Single_cas.two_process.Protocol.in_envelope (p ~n:3 ~f:1 ()));
  check Alcotest.bool "fig2 any" true
    (Consensus.F_tolerant.protocol.Protocol.in_envelope (p ~n:9 ~f:4 ()));
  check Alcotest.bool "fig3 in" true
    (Consensus.Bounded_faults.protocol.Protocol.in_envelope (p ~n:3 ~t:2 ~f:2 ()));
  check Alcotest.bool "fig3 n too big" false
    (Consensus.Bounded_faults.protocol.Protocol.in_envelope (p ~n:4 ~t:2 ~f:2 ()));
  check Alcotest.bool "fig3 needs bounded t" false
    (Consensus.Bounded_faults.protocol.Protocol.in_envelope (p ~n:3 ~f:2 ()));
  check Alcotest.bool "silent retry needs bounded t" false
    (Consensus.Silent_retry.protocol.Protocol.in_envelope (p ~n:3 ~f:1 ()))

let test_objects_counts () =
  let count proto params = List.length (proto.Protocol.objects params) in
  check Alcotest.int "fig1 one object" 1
    (count Consensus.Single_cas.two_process (Protocol.params ~n_procs:2 ~f:3 ()));
  check Alcotest.int "fig2 f+1 objects" 4
    (count Consensus.F_tolerant.protocol (Protocol.params ~n_procs:2 ~f:3 ()));
  check Alcotest.int "fig3 f objects" 3
    (count Consensus.Bounded_faults.protocol (Protocol.params ~t:1 ~n_procs:2 ~f:3 ()));
  check Alcotest.int "sweep-m" 5
    (count (Consensus.F_tolerant.with_objects 5) (Protocol.params ~n_procs:2 ~f:1 ()))

let test_max_stage_formula () =
  check Alcotest.int "t(4f+f\xc2\xb2) f=2 t=1" 12 (Consensus.Bounded_faults.max_stage ~f:2 ~t:1);
  check Alcotest.int "f=3 t=2" 42 (Consensus.Bounded_faults.max_stage ~f:3 ~t:2);
  check Alcotest.int "f=1 t=1" 5 (Consensus.Bounded_faults.max_stage ~f:1 ~t:1)

(* ---- The Algorithms functor on a local, deterministic substrate ----

   The substrate is a plain array of cells with a scripted fault plan:
   operation k is faulty iff k appears in the plan. This isolates the
   protocol logic from the engine. *)

module Local = struct
  type t = { cells : Value.t array; mutable op_count : int; faulty_ops : int list }

  let make ~objects ~faulty_ops =
    { cells = Array.make objects Value.Bottom; op_count = 0; faulty_ops }

  let substrate box : (module Algorithms.SUBSTRATE with type value = Value.t) =
    (module struct
      type value = Value.t

      let bottom = Value.Bottom
      let equal = Value.equal
      let mk_staged value stage = Value.Staged { value; stage }
      let stage_of = function Value.Staged { stage; _ } -> stage | _ -> -1
      let unstage = function Value.Staged { value; _ } -> value | v -> v

      let cas idx ~expected ~desired =
        let k = box.op_count in
        box.op_count <- k + 1;
        let old = box.cells.(idx) in
        if List.mem k box.faulty_ops then box.cells.(idx) <- desired (* overriding *)
        else if Value.equal old expected then box.cells.(idx) <- desired;
        old
    end)
end

let test_single_cas_logic () =
  let box = Local.make ~objects:1 ~faulty_ops:[] in
  let (module S) = Local.substrate box in
  let module A = Algorithms.Make ((val Local.substrate box)) in
  check value_testable "first decides own" (i 1) (A.single_cas_decide ~input:(i 1));
  check value_testable "second adopts" (i 1) (A.single_cas_decide ~input:(i 2))

let test_sweep_logic_adoption () =
  let box = Local.make ~objects:3 ~faulty_ops:[] in
  let module A = Algorithms.Make ((val Local.substrate box)) in
  check value_testable "winner" (i 1) (A.sweep_decide ~objects:3 ~input:(i 1));
  check value_testable "latecomer adopts" (i 1) (A.sweep_decide ~objects:3 ~input:(i 2));
  check value_testable "third adopts too" (i 1) (A.sweep_decide ~objects:3 ~input:(i 3))

let test_sweep_logic_with_faults () =
  (* ops 3,4,5 are p2's sweep; make its first CAS faulty: it overrides O_0
     but still adopts the truthful old value. *)
  let box = Local.make ~objects:3 ~faulty_ops:[ 3 ] in
  let module A = Algorithms.Make ((val Local.substrate box)) in
  check value_testable "winner" (i 1) (A.sweep_decide ~objects:3 ~input:(i 1));
  check value_testable "faulty sweeper still adopts" (i 1)
    (A.sweep_decide ~objects:3 ~input:(i 2))

let test_staged_logic_solo () =
  (* One process, no faults: must terminate and decide its own input. *)
  let box = Local.make ~objects:2 ~faulty_ops:[] in
  let module A = Algorithms.Make ((val Local.substrate box)) in
  let ms = Consensus.Bounded_faults.max_stage ~f:2 ~t:1 in
  check value_testable "solo decides own input" (i 7)
    (A.staged_decide ~f:2 ~max_stage:ms ~input:(i 7));
  (* A latecomer adopts the settled value. *)
  check value_testable "latecomer adopts" (i 7)
    (A.staged_decide ~f:2 ~max_stage:ms ~input:(i 8))

let test_staged_logic_sequential_many () =
  let box = Local.make ~objects:3 ~faulty_ops:[] in
  let module A = Algorithms.Make ((val Local.substrate box)) in
  let ms = Consensus.Bounded_faults.max_stage ~f:3 ~t:2 in
  let d1 = A.staged_decide ~f:3 ~max_stage:ms ~input:(i 1) in
  let d2 = A.staged_decide ~f:3 ~max_stage:ms ~input:(i 2) in
  let d3 = A.staged_decide ~f:3 ~max_stage:ms ~input:(i 3) in
  check value_testable "agree 1" d1 d2;
  check value_testable "agree 2" d1 d3

let test_silent_retry_logic () =
  (* A silent fault would leave the cell at ⊥; here the substrate's fault
     is overriding, so model silence with an explicit two-step check:
     without faults, winner needs two CASes (its success is invisible). *)
  let box = Local.make ~objects:1 ~faulty_ops:[] in
  let module A = Algorithms.Make ((val Local.substrate box)) in
  check value_testable "winner reads back own value" (i 4)
    (A.silent_retry_decide ~input:(i 4));
  check Alcotest.int "took two CASes" 2 box.Local.op_count;
  check value_testable "latecomer adopts" (i 4) (A.silent_retry_decide ~input:(i 5))

(* ---- Op codec ---- *)

let op_gen =
  let open QCheck.Gen in
  let value_gen = QCheck.gen Test_objects.value_arb_for_reuse in
  oneof
    [
      map2 (fun expected desired -> Op.Cas { expected; desired }) value_gen value_gen;
      return Op.Read;
      map (fun v -> Op.Write v) value_gen;
      return Op.Test_and_set;
      return Op.Reset;
      map (fun n -> Op.Fetch_and_add n) small_signed_int;
    ]

let prop_op_codec_roundtrip =
  QCheck.Test.make ~name:"Op_codec roundtrip" ~count:300
    (QCheck.make ~print:Op.to_string op_gen) (fun op ->
      match Op_codec.decode (Op_codec.encode op) with
      | Some op' -> Op.equal op op'
      | None -> false)

let test_op_codec_rejects_junk () =
  check Alcotest.bool "junk" true (Op_codec.decode (Value.Int 5) = None);
  check Alcotest.bool "bad tag" true (Op_codec.decode (Value.Pair (Str "nope", Bottom)) = None)

(* ---- Universal construction (under the engine) ---- *)

let run_universal_counter ~n ~ops_per_proc ~f ~fault_p ~seed =
  let cfg =
    Universal.config ~f
      ~slots:((n * ops_per_proc) + 2)
      ~kind:Kind.Fetch_and_add ~init:(Value.Int 0) ()
  in
  let world = Sim.World.make ~n_procs:n (Universal.world_objects cfg) in
  let responses = Array.make n [] in
  let states = Array.make n Value.Bottom in
  let body me () =
    let h = Universal.create cfg ~me in
    for _ = 1 to ops_per_proc do
      responses.(me) <- Universal.apply h (Op.Fetch_and_add 1) :: responses.(me)
    done;
    states.(me) <- Universal.local_state h;
    Value.Int 0
  in
  let budget = Fault.Budget.create ~max_faulty_objects:f ~max_faults_per_object:None () in
  let engine_cfg = Sim.Engine.config ~max_steps_per_proc:50_000 ~world ~budget () in
  let injector =
    if fault_p <= 0.0 then Fault.Injector.never
    else Fault.Injector.probabilistic ~seed ~p:fault_p Fault.Fault_kind.Overriding
  in
  let result =
    Sim.Engine.run engine_cfg
      ~scheduler:(Sim.Scheduler.random ~seed:(Int64.add seed 3L))
      ~injector ~bodies:(Array.init n body) ()
  in
  (result, responses, states)

let counter_responses_ok responses ~expected_total =
  let all =
    Array.to_list responses |> List.concat
    |> List.filter_map (function Value.Int i -> Some i | _ -> None)
    |> List.sort Int.compare
  in
  all = List.init expected_total (fun i -> i)

let test_universal_counter_fault_free () =
  let result, responses, _ = run_universal_counter ~n:3 ~ops_per_proc:2 ~f:1 ~fault_p:0.0 ~seed:1L in
  check Alcotest.bool "all decided" true (Sim.Engine.all_decided result);
  check Alcotest.bool "responses are 0..5" true (counter_responses_ok responses ~expected_total:6)

let test_universal_counter_with_faults () =
  for k = 1 to 10 do
    let result, responses, _ =
      run_universal_counter ~n:3 ~ops_per_proc:2 ~f:2 ~fault_p:0.6
        ~seed:(Int64.of_int (1000 + k))
    in
    check Alcotest.bool "all decided" true (Sim.Engine.all_decided result);
    check Alcotest.bool "responses are 0..5" true
      (counter_responses_ok responses ~expected_total:6)
  done

let test_universal_log_capacity () =
  let cfg = Universal.config ~f:0 ~slots:1 ~kind:Kind.Fetch_and_add ~init:(Value.Int 0) () in
  let world = Sim.World.make ~n_procs:1 (Universal.world_objects cfg) in
  let body () =
    let h = Universal.create cfg ~me:0 in
    ignore (Universal.apply h (Op.Fetch_and_add 1));
    ignore (Universal.apply h (Op.Fetch_and_add 1));
    Value.Int 0
  in
  let engine_cfg = Sim.Engine.config ~world ~budget:(Fault.Budget.none ()) () in
  let r =
    Sim.Engine.run engine_cfg
      ~scheduler:(Sim.Scheduler.round_robin ())
      ~injector:Fault.Injector.never ~bodies:[| body |] ()
  in
  match r.Sim.Engine.outcomes.(0) with
  | Sim.Engine.Crashed msg ->
      check Alcotest.bool "capacity failure" true
        (String.length msg > 0)
  | o -> Alcotest.failf "expected Crashed, got %a" Sim.Engine.pp_proc_outcome o

let test_universal_config_validation () =
  Alcotest.check_raises "bad f" (Invalid_argument "Universal.config: f < 0") (fun () ->
      ignore (Universal.config ~f:(-1) ~kind:Kind.Register ~init:Value.Bottom ()));
  Alcotest.check_raises "bad slots" (Invalid_argument "Universal.config: slots < 1") (fun () ->
      ignore (Universal.config ~slots:0 ~kind:Kind.Register ~init:Value.Bottom ()))

let suites =
  [
    ( "consensus.protocol",
      [
        Alcotest.test_case "params validation" `Quick test_params_validation;
        Alcotest.test_case "default inputs" `Quick test_default_inputs_distinct;
        Alcotest.test_case "envelopes" `Quick test_envelopes;
        Alcotest.test_case "object counts" `Quick test_objects_counts;
        Alcotest.test_case "maxStage formula" `Quick test_max_stage_formula;
      ] );
    ( "consensus.algorithms",
      [
        Alcotest.test_case "single cas" `Quick test_single_cas_logic;
        Alcotest.test_case "sweep adoption" `Quick test_sweep_logic_adoption;
        Alcotest.test_case "sweep with faults" `Quick test_sweep_logic_with_faults;
        Alcotest.test_case "staged solo + latecomer" `Quick test_staged_logic_solo;
        Alcotest.test_case "staged sequential agreement" `Quick
          test_staged_logic_sequential_many;
        Alcotest.test_case "silent retry" `Quick test_silent_retry_logic;
      ] );
    ( "consensus.op_codec",
      [
        Alcotest.test_case "rejects junk" `Quick test_op_codec_rejects_junk;
        qcheck prop_op_codec_roundtrip;
      ] );
    ( "consensus.universal",
      [
        Alcotest.test_case "counter fault-free" `Quick test_universal_counter_fault_free;
        Alcotest.test_case "counter with faults" `Quick test_universal_counter_with_faults;
        Alcotest.test_case "log capacity" `Quick test_universal_log_capacity;
        Alcotest.test_case "config validation" `Quick test_universal_config_validation;
      ] );
  ]
