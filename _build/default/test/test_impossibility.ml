(* Tests for the impossibility harness: covering adversary, reduced
   model, valency analysis, and the hierarchy table. *)

open Ffault_objects
module Consensus = Ffault_consensus
module Protocol = Consensus.Protocol
module Check = Ffault_verify.Consensus_check
module Dfs = Ffault_verify.Dfs
module Covering = Ffault_impossibility.Covering
module Reduced = Ffault_impossibility.Reduced_model
module Valency = Ffault_impossibility.Valency
module Hierarchy = Ffault_impossibility.Hierarchy
module Budget = Ffault_fault.Budget
module Engine = Ffault_sim.Engine

let check = Alcotest.check

let fig3_setup ~f ~n = Check.setup Consensus.Bounded_faults.protocol (Protocol.params ~t:1 ~n_procs:n ~f ())

let test_covering_defeats_fig3 () =
  List.iter
    (fun f ->
      let o = Covering.run (fig3_setup ~f ~n:(f + 2)) in
      check Alcotest.bool (Fmt.str "violation at f=%d" f) true o.Covering.violation_found;
      check Alcotest.int (Fmt.str "f faults at f=%d" f) f
        (List.length o.Covering.faults_committed))
    [ 1; 2; 3 ]

let test_covering_one_fault_per_object () =
  let o = Covering.run (fig3_setup ~f:3 ~n:5) in
  let budget = o.Covering.report.Check.result.Engine.budget in
  List.iter
    (fun obj ->
      check Alcotest.bool "at most one fault" true (Budget.faults_on budget obj <= 1))
    (Budget.faulty_objects budget);
  (* the faulted objects are distinct *)
  let objs = List.map (fun (_, o) -> Obj_id.to_int o) o.Covering.faults_committed in
  check Alcotest.int "distinct objects" (List.length objs)
    (List.length (List.sort_uniq Int.compare objs))

let test_covering_spares_fig2 () =
  List.iter
    (fun f ->
      let setup =
        Check.setup Consensus.F_tolerant.protocol (Protocol.params ~t:1 ~n_procs:(f + 2) ~f ())
      in
      let o = Covering.run setup in
      check Alcotest.bool (Fmt.str "fig2 survives at f=%d" f) false o.Covering.violation_found)
    [ 1; 2 ]

let test_covering_p0_disagrees_with_last () =
  (* The structure of the witness: p0 decides its own value, p_{f+1}
     decides someone else's. *)
  let o = Covering.run (fig3_setup ~f:1 ~n:3) in
  match Engine.decided_values o.Covering.report.Check.result with
  | (0, v0) :: _ ->
      check Test_objects.value_testable_for_reuse "p0 decided its own input" (Value.Int 100) v0;
      let _, vlast =
        List.find (fun (p, _) -> p = 2) (Engine.decided_values o.Covering.report.Check.result)
      in
      check Alcotest.bool "p2 decided differently" false (Value.equal v0 vlast)
  | _ -> Alcotest.fail "p0 should decide first"

let test_covering_validation () =
  Alcotest.check_raises "needs n >= f+2" (Invalid_argument "Covering.run: requires n >= f + 2")
    (fun () -> ignore (Covering.run (fig3_setup ~f:2 ~n:3)))

let test_reduced_model_witness () =
  let setup =
    Check.setup (Consensus.F_tolerant.with_objects 1) (Protocol.params ~n_procs:3 ~f:1 ())
  in
  let stats = Reduced.explore ~faulty_proc:0 setup in
  check Alcotest.bool "witness found" true (stats.Dfs.witnesses <> [])

let test_reduced_model_fault_attribution () =
  (* In the reduced model every injected fault belongs to the designated
     process. *)
  let setup =
    Check.setup (Consensus.F_tolerant.with_objects 1) (Protocol.params ~n_procs:3 ~f:1 ())
  in
  let stats = Reduced.explore ~faulty_proc:0 ~max_witnesses:5 setup in
  List.iter
    (fun w ->
      List.iter
        (function
          | Ffault_sim.Trace.Op_step { injected = Some _; proc; _ } ->
              check Alcotest.int "fault by p0" 0 proc
          | _ -> ())
        w.Dfs.report.Check.result.Engine.trace)
    stats.Dfs.witnesses

let test_valency_initial_multivalent () =
  let setup =
    Check.setup Consensus.Single_cas.two_process (Protocol.params ~n_procs:2 ~f:1 ())
  in
  match Valency.analyze ~prefix:[||] setup with
  | Valency.Multivalent vs -> check Alcotest.bool "two values" true (List.length vs >= 2)
  | v -> Alcotest.failf "expected multivalent, got %a" Valency.pp_verdict v

let test_valency_after_decision_univalent () =
  (* After the first process's successful CAS (schedule choice 0, outcome
     choice 0), only its value remains reachable. *)
  let setup =
    Check.setup Consensus.Single_cas.two_process (Protocol.params ~n_procs:2 ~f:0 ())
  in
  match Valency.analyze ~prefix:[| 0 |] setup with
  | Valency.Univalent v ->
      check Test_objects.value_testable_for_reuse "p0's value" (Value.Int 100) v
  | v -> Alcotest.failf "expected univalent, got %a" Valency.pp_verdict v

let test_hierarchy_rows () =
  let rows = Hierarchy.table ~runs:50 ~t:1 ~max_f:3 () in
  check Alcotest.int "three rows" 3 (List.length rows);
  List.iteri
    (fun idx row ->
      let f = idx + 1 in
      check Alcotest.int "f" f row.Hierarchy.f;
      check (Alcotest.option Alcotest.int) "consensus number" (Some (f + 1))
        row.Hierarchy.consensus_number)
    rows

let suites =
  [
    ( "impossibility.covering",
      [
        Alcotest.test_case "defeats fig3 at n=f+2" `Quick test_covering_defeats_fig3;
        Alcotest.test_case "one fault per object" `Quick test_covering_one_fault_per_object;
        Alcotest.test_case "spares fig2" `Quick test_covering_spares_fig2;
        Alcotest.test_case "witness structure" `Quick test_covering_p0_disagrees_with_last;
        Alcotest.test_case "validation" `Quick test_covering_validation;
      ] );
    ( "impossibility.reduced",
      [
        Alcotest.test_case "witness" `Quick test_reduced_model_witness;
        Alcotest.test_case "fault attribution" `Quick test_reduced_model_fault_attribution;
      ] );
    ( "impossibility.valency",
      [
        Alcotest.test_case "initial multivalent" `Quick test_valency_initial_multivalent;
        Alcotest.test_case "post-decision univalent" `Quick
          test_valency_after_decision_univalent;
      ] );
    ( "impossibility.hierarchy",
      [ Alcotest.test_case "rows" `Quick test_hierarchy_rows ] );
  ]
