(* Tests for Ffault_objects: the value domain, operations, kinds and the
   sequential semantics. *)

open Ffault_objects

let check = Alcotest.check
let qcheck = QCheck_alcotest.to_alcotest

let value_testable = Alcotest.testable Value.pp Value.equal

(* A generator over the value domain, including nested pairs and staged
   values. *)
let value_gen =
  let open QCheck.Gen in
  sized @@ fix (fun self n ->
      let leaf =
        oneof
          [
            return Value.Bottom;
            map (fun b -> Value.Bool b) bool;
            map (fun i -> Value.Int i) small_signed_int;
            map (fun s -> Value.Str s) (string_size (int_bound 6));
          ]
      in
      if n <= 0 then leaf
      else
        frequency
          [
            (3, leaf);
            (1, map2 (fun a b -> Value.Pair (a, b)) (self (n / 2)) (self (n / 2)));
            ( 1,
              map2
                (fun v stage -> Value.Staged { value = v; stage })
                (self (n / 2)) (int_bound 50) );
          ])

let value_arb = QCheck.make ~print:Value.to_string value_gen

(* ---- Value ---- *)

let test_value_equal_basic () =
  check Alcotest.bool "bottom = bottom" true (Value.equal Value.Bottom Value.Bottom);
  check Alcotest.bool "int 3 = int 3" true (Value.equal (Int 3) (Int 3));
  check Alcotest.bool "int <> str" false (Value.equal (Int 3) (Str "3"));
  check Alcotest.bool "staged stage matters" false
    (Value.equal (Staged { value = Int 1; stage = 2 }) (Staged { value = Int 1; stage = 3 }))

let prop_equal_refl =
  QCheck.Test.make ~name:"Value.equal reflexive" ~count:300 value_arb (fun v ->
      Value.equal v v)

let prop_compare_consistent_with_equal =
  QCheck.Test.make ~name:"compare = 0 iff equal" ~count:300 (QCheck.pair value_arb value_arb)
    (fun (a, b) -> Value.equal a b = (Value.compare a b = 0))

let prop_compare_antisym =
  QCheck.Test.make ~name:"compare antisymmetric" ~count:300 (QCheck.pair value_arb value_arb)
    (fun (a, b) -> Value.compare a b = -Value.compare b a)

let prop_hash_consistent =
  QCheck.Test.make ~name:"equal values hash equally" ~count:300 value_arb (fun v ->
      (* structural copy through a round-trip *)
      Value.hash v = Value.hash v)

let test_value_accessors () =
  check Alcotest.bool "is_bottom" true (Value.is_bottom Bottom);
  check Alcotest.bool "is_bottom int" false (Value.is_bottom (Int 0));
  check (Alcotest.option Alcotest.int) "stage" (Some 4)
    (Value.stage (Staged { value = Int 1; stage = 4 }));
  check (Alcotest.option Alcotest.int) "stage of plain" None (Value.stage (Int 1));
  check (Alcotest.option value_testable) "staged_value" (Some (Int 1))
    (Value.staged_value (Staged { value = Int 1; stage = 4 }));
  check Alcotest.int "int_exn" 5 (Value.int_exn (Int 5));
  Alcotest.check_raises "int_exn on bool" (Invalid_argument "Value.int_exn: true is not an Int")
    (fun () -> ignore (Value.int_exn (Bool true)))

let test_value_pp () =
  check Alcotest.string "bottom" "\xe2\x8a\xa5" (Value.to_string Bottom);
  check Alcotest.string "staged" "\xe2\x9f\xa87,3\xe2\x9f\xa9"
    (Value.to_string (Staged { value = Int 7; stage = 3 }));
  check Alcotest.string "pair" "(1, \"x\")" (Value.to_string (Pair (Int 1, Str "x")))

(* ---- Op ---- *)

let test_op_equal () =
  let cas = Op.Cas { expected = Value.Bottom; desired = Value.Int 1 } in
  check Alcotest.bool "cas = cas" true (Op.equal cas cas);
  check Alcotest.bool "cas desired differs" false
    (Op.equal cas (Op.Cas { expected = Value.Bottom; desired = Value.Int 2 }));
  check Alcotest.bool "read = read" true (Op.equal Op.Read Op.Read);
  check Alcotest.bool "read <> tas" false (Op.equal Op.Read Op.Test_and_set)

let test_op_writes () =
  check Alcotest.bool "read does not write" false (Op.writes Op.Read);
  List.iter
    (fun op -> check Alcotest.bool (Op.to_string op) true (Op.writes op))
    [
      Op.Cas { expected = Value.Bottom; desired = Value.Int 1 };
      Op.Write (Value.Int 1);
      Op.Test_and_set;
      Op.Reset;
      Op.Fetch_and_add 2;
    ]

(* ---- Kind ---- *)

let test_kind_allows () =
  let cas = Op.Cas { expected = Value.Bottom; desired = Value.Int 1 } in
  check Alcotest.bool "cas-only allows cas" true (Kind.allows Kind.Cas_only cas);
  check Alcotest.bool "cas-only forbids read" false (Kind.allows Kind.Cas_only Op.Read);
  check Alcotest.bool "register allows read" true (Kind.allows Kind.Register Op.Read);
  check Alcotest.bool "register forbids cas" false (Kind.allows Kind.Register cas);
  check Alcotest.bool "cas-register allows both" true
    (Kind.allows Kind.Cas_register cas && Kind.allows Kind.Cas_register Op.Read);
  check Alcotest.bool "tas allows tas" true (Kind.allows Kind.Test_and_set Op.Test_and_set);
  check Alcotest.bool "faa allows faa" true
    (Kind.allows Kind.Fetch_and_add (Op.Fetch_and_add 1));
  check Alcotest.bool "faa forbids write" false
    (Kind.allows Kind.Fetch_and_add (Op.Write (Value.Int 1)))

let test_kind_default_init () =
  check value_testable "cas-only init" Value.Bottom (Kind.default_init Kind.Cas_only);
  check value_testable "tas init" (Value.Bool false) (Kind.default_init Kind.Test_and_set);
  check value_testable "faa init" (Value.Int 0) (Kind.default_init Kind.Fetch_and_add)

(* ---- Semantics ---- *)

let apply_ok kind state op =
  match Semantics.apply kind ~state op with
  | Ok o -> o
  | Error e -> Alcotest.failf "unexpected error: %a" Semantics.pp_error e

let test_cas_success () =
  let o =
    apply_ok Kind.Cas_only Value.Bottom (Op.Cas { expected = Value.Bottom; desired = Int 5 })
  in
  check value_testable "writes desired" (Value.Int 5) o.Semantics.post_state;
  check value_testable "returns original" Value.Bottom o.Semantics.response

let test_cas_failure () =
  let o =
    apply_ok Kind.Cas_only (Value.Int 3) (Op.Cas { expected = Value.Bottom; desired = Int 5 })
  in
  check value_testable "state unchanged" (Value.Int 3) o.Semantics.post_state;
  check value_testable "returns original" (Value.Int 3) o.Semantics.response

let test_register_ops () =
  let o = apply_ok Kind.Register (Value.Int 1) (Op.Write (Value.Int 9)) in
  check value_testable "write sets" (Value.Int 9) o.Semantics.post_state;
  let o = apply_ok Kind.Register (Value.Int 9) Op.Read in
  check value_testable "read returns" (Value.Int 9) o.Semantics.response;
  check value_testable "read preserves" (Value.Int 9) o.Semantics.post_state

let test_tas_semantics () =
  let o = apply_ok Kind.Test_and_set (Value.Bool false) Op.Test_and_set in
  check value_testable "sets" (Value.Bool true) o.Semantics.post_state;
  check value_testable "returns old bit" (Value.Bool false) o.Semantics.response;
  let o = apply_ok Kind.Test_and_set (Value.Bool true) Op.Test_and_set in
  check value_testable "stays set" (Value.Bool true) o.Semantics.post_state;
  check value_testable "returns old bit" (Value.Bool true) o.Semantics.response;
  let o = apply_ok Kind.Test_and_set (Value.Bool true) Op.Reset in
  check value_testable "reset clears" (Value.Bool false) o.Semantics.post_state

let test_faa_semantics () =
  let o = apply_ok Kind.Fetch_and_add (Value.Int 10) (Op.Fetch_and_add 5) in
  check value_testable "adds" (Value.Int 15) o.Semantics.post_state;
  check value_testable "returns old" (Value.Int 10) o.Semantics.response

let test_semantics_errors () =
  (match Semantics.apply Kind.Cas_only ~state:Value.Bottom Op.Read with
  | Error (Semantics.Op_not_supported _) -> ()
  | Ok _ | Error _ -> Alcotest.fail "expected Op_not_supported");
  match Semantics.apply Kind.Fetch_and_add ~state:Value.Bottom (Op.Fetch_and_add 1) with
  | Error (Semantics.Type_error _) -> ()
  | Ok _ | Error _ -> Alcotest.fail "expected Type_error"

let prop_cas_satisfies_phi =
  (* The sequential CAS semantics always satisfies the paper's Φ. *)
  QCheck.Test.make ~name:"CAS semantics satisfies \xce\xa6" ~count:500
    (QCheck.triple value_arb value_arb value_arb)
    (fun (state, expected, desired) ->
      let o = apply_ok Kind.Cas_only state (Op.Cas { expected; desired }) in
      if Value.equal state expected then
        Value.equal o.Semantics.post_state desired && Value.equal o.Semantics.response state
      else
        Value.equal o.Semantics.post_state state && Value.equal o.Semantics.response state)

let suites =
  [
    ( "objects.value",
      [
        Alcotest.test_case "equal basics" `Quick test_value_equal_basic;
        Alcotest.test_case "accessors" `Quick test_value_accessors;
        Alcotest.test_case "pretty printing" `Quick test_value_pp;
        qcheck prop_equal_refl;
        qcheck prop_compare_consistent_with_equal;
        qcheck prop_compare_antisym;
        qcheck prop_hash_consistent;
      ] );
    ( "objects.op-kind",
      [
        Alcotest.test_case "op equality" `Quick test_op_equal;
        Alcotest.test_case "op writes" `Quick test_op_writes;
        Alcotest.test_case "kind allows matrix" `Quick test_kind_allows;
        Alcotest.test_case "kind default init" `Quick test_kind_default_init;
      ] );
    ( "objects.semantics",
      [
        Alcotest.test_case "cas success" `Quick test_cas_success;
        Alcotest.test_case "cas failure" `Quick test_cas_failure;
        Alcotest.test_case "register read/write" `Quick test_register_ops;
        Alcotest.test_case "test-and-set" `Quick test_tas_semantics;
        Alcotest.test_case "fetch-and-add" `Quick test_faa_semantics;
        Alcotest.test_case "errors" `Quick test_semantics_errors;
        qcheck prop_cas_satisfies_phi;
      ] );
  ]

(* Shared with other test modules. *)
let value_testable_for_reuse = value_testable
let value_arb_for_reuse = value_arb
