(* Cross-substrate conformance: the same algorithm text (the Algorithms
   functor), the same per-object fault script, the same sequential
   execution order — run once on the simulator and once on real atomics —
   must produce identical decisions. This is the "one algorithm, two
   substrates" design commitment, tested. *)

open Ffault_objects
module Sim = Ffault_sim
module Fault = Ffault_fault
module Consensus = Ffault_consensus
module Protocol = Consensus.Protocol
module Check = Ffault_verify.Consensus_check
module R = Ffault_runtime
module Algorithms = Consensus.Algorithms

let check = Alcotest.check
let qcheck = QCheck_alcotest.to_alcotest

module type DECIDERS = sig
  val single_cas_decide : input:R.Packed.t -> R.Packed.t
  val sweep_decide : objects:int -> input:R.Packed.t -> R.Packed.t
  val staged_decide : f:int -> max_stage:int -> input:R.Packed.t -> R.Packed.t
  val silent_retry_decide : input:R.Packed.t -> R.Packed.t
end

(* Runtime side: single-threaded sequential decides over Faulty_cas cells
   with per-object plans. *)
let runtime_decide ~objects ~script ~style ~(decide_all : (module DECIDERS) -> int list) =
  let plan_of o =
    match List.assoc_opt o script with
    | Some ks ->
        {
          R.Faulty_cas.plan_name = "scripted";
          fire = (fun ~op_index -> List.mem op_index ks);
        }
    | None -> R.Faulty_cas.plan_never
  in
  let cells =
    Array.init objects (fun o ->
        R.Faulty_cas.make ~plan:(plan_of o) ~style ~init:R.Packed.bottom ())
  in
  let module S = struct
    type value = R.Packed.t

    let bottom = R.Packed.bottom
    let equal = R.Packed.equal
    let mk_staged v s = R.Packed.staged ~value:(R.Packed.to_int v) ~stage:s
    let stage_of = R.Packed.stage_of
    let unstage = R.Packed.unstage
    let cas i ~expected ~desired = R.Faulty_cas.cas cells.(i) ~expected ~desired
  end in
  let module A = Algorithms.Make (S) in
  decide_all (module A : DECIDERS)

(* Simulator side: solo-runs scheduler = the same sequential order. *)
let sim_decide ~protocol ~params ~script ~allowed =
  let setup = Check.setup ~allowed_faults:allowed protocol params in
  let n = params.Protocol.n_procs in
  let report =
    Check.run setup
      ~scheduler:(Sim.Scheduler.solo_runs ~order:(List.init n (fun i -> i)))
      ~injector:(Fault.Injector.on_object_invocations script)
      ()
  in
  List.map
    (fun (_, v) -> match v with Value.Int i -> i | _ -> -1)
    (Ffault_sim.Engine.decided_values report.Check.result)

let test_sweep_conformance_scripts () =
  (* several per-object fault scripts over the 3-object sweep, 3 procs *)
  let scripts =
    [
      [];
      [ (0, [ 0 ]) ];
      [ (0, [ 1 ]); (1, [ 0 ]) ];
      [ (0, [ 0; 1; 2 ]); (2, [ 1 ]) ];
      [ (1, [ 2 ]); (2, [ 0; 2 ]) ];
    ]
  in
  List.iter
    (fun script ->
      let params = Protocol.params ~n_procs:3 ~f:3 () in
      let sim_result =
        sim_decide ~protocol:(Consensus.F_tolerant.with_objects 3) ~params ~script
          ~allowed:[ Fault.Fault_kind.Overriding ]
      in
      let rt_result =
        runtime_decide ~objects:3 ~script ~style:R.Faulty_cas.Override
          ~decide_all:(fun (module A) ->
            List.map
              (fun me ->
                R.Packed.to_int
                  (A.sweep_decide ~objects:3 ~input:(R.Packed.of_int (100 + me))))
              [ 0; 1; 2 ])
      in
      check (Alcotest.list Alcotest.int) "identical decisions" sim_result rt_result)
    scripts

let test_staged_conformance () =
  let f = 2 and t = 1 in
  let ms = Consensus.Bounded_faults.max_stage ~f ~t in
  List.iter
    (fun script ->
      let params = Protocol.params ~t ~n_procs:3 ~f () in
      let sim_result =
        sim_decide ~protocol:Consensus.Bounded_faults.protocol ~params ~script
          ~allowed:[ Fault.Fault_kind.Overriding ]
      in
      let rt_result =
        runtime_decide ~objects:f ~script ~style:R.Faulty_cas.Override
          ~decide_all:(fun (module A) ->
            List.map
              (fun me ->
                R.Packed.to_int
                  (A.staged_decide ~f ~max_stage:ms ~input:(R.Packed.of_int (100 + me))))
              [ 0; 1; 2 ])
      in
      check (Alcotest.list Alcotest.int) "identical decisions" sim_result rt_result)
    [ []; [ (0, [ 0 ]) ]; [ (1, [ 3 ]) ] ]

let test_silent_conformance () =
  (* the retry protocol under suppressed writes, scripted identically *)
  let script = [ (0, [ 0; 2 ]) ] in
  let params = Protocol.params ~t:4 ~n_procs:3 ~f:1 () in
  let setup =
    Check.setup ~allowed_faults:[ Fault.Fault_kind.Silent ] Consensus.Silent_retry.protocol
      params
  in
  let report =
    Check.run setup
      ~scheduler:(Sim.Scheduler.solo_runs ~order:[ 0; 1; 2 ])
      ~injector:(Fault.Injector.on_object_invocations ~kind:Fault.Fault_kind.Silent script)
      ()
  in
  let sim_result =
    List.map
      (fun (_, v) -> match v with Value.Int i -> i | _ -> -1)
      (Ffault_sim.Engine.decided_values report.Check.result)
  in
  let rt_result =
    runtime_decide ~objects:1 ~script ~style:R.Faulty_cas.Suppress
      ~decide_all:(fun (module A) ->
        List.map
          (fun me -> R.Packed.to_int (A.silent_retry_decide ~input:(R.Packed.of_int (100 + me))))
          [ 0; 1; 2 ])
  in
  check (Alcotest.list Alcotest.int) "identical decisions" sim_result rt_result

let prop_random_scripts_conform =
  QCheck.Test.make ~name:"random per-object fault scripts conform across substrates"
    ~count:100
    QCheck.(pair (list_of_size (Gen.int_range 0 4) (pair (int_bound 2) (int_bound 5))) unit)
    (fun (raw, ()) ->
      (* normalize to a per-object script *)
      let script =
        List.sort_uniq compare raw
        |> List.fold_left
             (fun acc (o, k) ->
               let prev = Option.value ~default:[] (List.assoc_opt o acc) in
               (o, k :: prev) :: List.remove_assoc o acc)
             []
      in
      let params = Protocol.params ~n_procs:3 ~f:3 () in
      let sim_result =
        sim_decide ~protocol:(Consensus.F_tolerant.with_objects 3) ~params ~script
          ~allowed:[ Fault.Fault_kind.Overriding ]
      in
      let rt_result =
        runtime_decide ~objects:3 ~script ~style:R.Faulty_cas.Override
          ~decide_all:(fun (module A) ->
            List.map
              (fun me ->
                R.Packed.to_int
                  (A.sweep_decide ~objects:3 ~input:(R.Packed.of_int (100 + me))))
              [ 0; 1; 2 ])
      in
      sim_result = rt_result)

(* Runtime silent-fault unit checks. *)
let test_runtime_suppress_semantics () =
  let c =
    R.Faulty_cas.make ~plan:R.Faulty_cas.plan_always ~style:R.Faulty_cas.Suppress
      ~init:R.Packed.bottom ()
  in
  let old = R.Faulty_cas.cas c ~expected:R.Packed.bottom ~desired:(R.Packed.of_int 5) in
  check Alcotest.bool "truthful old" true (R.Packed.is_bottom old);
  check Alcotest.bool "write suppressed" true (R.Packed.is_bottom (R.Faulty_cas.peek c));
  check Alcotest.int "charged" 1 (R.Faulty_cas.observable_faults c)

let test_runtime_suppress_unobservable_refund () =
  (* comparison fails anyway: suppression changes nothing *)
  let c =
    R.Faulty_cas.make ~plan:R.Faulty_cas.plan_always ~style:R.Faulty_cas.Suppress
      ~init:(R.Packed.of_int 3) ()
  in
  let old = R.Faulty_cas.cas c ~expected:R.Packed.bottom ~desired:(R.Packed.of_int 5) in
  check Alcotest.int "old is 3" 3 (R.Packed.to_int old);
  check Alcotest.int "refunded" 0 (R.Faulty_cas.observable_faults c)

let test_runtime_silent_retry_protocol () =
  (* bounded silent faults on domains: retry decides consistently *)
  for k = 1 to 20 do
    let cfg =
      R.Consensus_mc.config
        ~plan_for:(fun _ -> R.Faulty_cas.plan_first_n 3)
        ~style:R.Faulty_cas.Suppress ~t_bound:3 ~n_domains:3 R.Consensus_mc.Silent_retry
    in
    ignore k;
    let r = R.Consensus_mc.execute cfg in
    check Alcotest.bool "agreed and valid" true (r.R.Consensus_mc.agreed && r.R.Consensus_mc.valid)
  done

let suites =
  [
    ( "conformance",
      [
        Alcotest.test_case "sweep scripts" `Quick test_sweep_conformance_scripts;
        Alcotest.test_case "staged scripts" `Quick test_staged_conformance;
        Alcotest.test_case "silent retry" `Quick test_silent_conformance;
        qcheck prop_random_scripts_conform;
      ] );
    ( "runtime.silent",
      [
        Alcotest.test_case "suppress semantics" `Quick test_runtime_suppress_semantics;
        Alcotest.test_case "suppress refund" `Quick test_runtime_suppress_unobservable_refund;
        Alcotest.test_case "silent retry on domains" `Slow test_runtime_silent_retry_protocol;
      ] );
  ]
