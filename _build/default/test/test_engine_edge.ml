(* Additional engine, scheduler and harness edge cases, plus cross-cutting
   determinism and agreement properties. *)

open Ffault_objects
module Sim = Ffault_sim
module World = Sim.World
module Scheduler = Sim.Scheduler
module Engine = Sim.Engine
module Proc = Sim.Proc
module Trace = Sim.Trace
module Fault = Ffault_fault
module Fault_kind = Fault.Fault_kind
module Budget = Fault.Budget
module Injector = Fault.Injector
module Consensus = Ffault_consensus
module Protocol = Consensus.Protocol
module Check = Ffault_verify.Consensus_check

let check = Alcotest.check
let qcheck = QCheck_alcotest.to_alcotest
let i n = Value.Int n
let oid = Obj_id.of_int

let herlihy_body input () =
  let old = Proc.cas (oid 0) ~expected:Value.Bottom ~desired:input in
  if Value.is_bottom old then input else old

(* ---- engine edges ---- *)

let test_max_total_steps_flag () =
  (* Two processes spinning forever; total budget runs out first. *)
  let world = World.cas_world ~n_procs:2 ~objects:1 in
  let cfg =
    Engine.config ~max_steps_per_proc:1000 ~max_total_steps:40 ~world
      ~budget:(Budget.none ()) ()
  in
  let spin () =
    let rec loop () =
      ignore (Proc.cas (oid 0) ~expected:(i 999) ~desired:(i 1));
      loop ()
    in
    loop ()
  in
  let r =
    Engine.run cfg ~scheduler:(Scheduler.round_robin ()) ~injector:Injector.never
      ~bodies:[| spin; spin |] ()
  in
  check Alcotest.bool "total limit flagged" true r.Engine.total_limit_hit;
  check Alcotest.int "stopped at the cap" 40 r.Engine.total_steps;
  Array.iter
    (fun o ->
      match o with
      | Engine.Step_limited -> ()
      | o -> Alcotest.failf "expected Step_limited, got %a" Engine.pp_proc_outcome o)
    r.Engine.outcomes

let test_final_states_reported () =
  let world = World.cas_world ~n_procs:1 ~objects:2 in
  let body () =
    ignore (Proc.cas (oid 1) ~expected:Value.Bottom ~desired:(i 9));
    i 0
  in
  let cfg = Engine.config ~world ~budget:(Budget.none ()) () in
  let r =
    Engine.run cfg ~scheduler:(Scheduler.round_robin ()) ~injector:Injector.never
      ~bodies:[| body |] ()
  in
  check Test_objects.value_testable_for_reuse "untouched object" Value.Bottom
    r.Engine.final_states.(0);
  check Test_objects.value_testable_for_reuse "written object" (i 9) r.Engine.final_states.(1)

let test_decided_values_in_proc_order () =
  let world = World.cas_world ~n_procs:3 ~objects:1 in
  let cfg = Engine.config ~world ~budget:(Budget.none ()) () in
  let r =
    Engine.run cfg ~scheduler:(Scheduler.round_robin ()) ~injector:Injector.never
      ~bodies:(Array.init 3 (fun p -> herlihy_body (i (100 + p)))) ()
  in
  check (Alcotest.list Alcotest.int) "proc order" [ 0; 1; 2 ]
    (List.map fst (Engine.decided_values r))

let test_immediate_completion_body () =
  (* A body that performs no shared operation at all. *)
  let world = World.cas_world ~n_procs:2 ~objects:1 in
  let cfg = Engine.config ~world ~budget:(Budget.none ()) () in
  let r =
    Engine.run cfg ~scheduler:(Scheduler.round_robin ()) ~injector:Injector.never
      ~bodies:[| (fun () -> i 42); herlihy_body (i 101) |] ()
  in
  (match r.Engine.outcomes.(0) with
  | Engine.Decided v -> check Test_objects.value_testable_for_reuse "own value" (i 42) v
  | o -> Alcotest.failf "expected Decided, got %a" Engine.pp_proc_outcome o);
  check Alcotest.int "no steps charged to it" 0 r.Engine.steps_taken.(0)

let test_trace_pp_smoke () =
  (* Rendering every event variant must not raise. *)
  let world = World.cas_world ~n_procs:2 ~objects:1 in
  let events =
    [
      Trace.Op_step
        {
          step = 0; proc = 0; obj = oid 0;
          op = Op.Cas { expected = Value.Bottom; desired = i 1 };
          pre_state = Value.Bottom; post_state = i 1; response = Value.Bottom;
          injected = Some Fault_kind.Overriding;
        };
      Trace.Hang { step = 1; proc = 1; obj = oid 0; op = Op.Read };
      Trace.Corruption { step = 2; obj = oid 0; before = i 1; after = i 2 };
      Trace.Decided { step = 3; proc = 0; value = i 1 };
      Trace.Step_limit_hit { step = 4; proc = 1 };
      Trace.Crashed { step = 5; proc = 1; error = "boom" };
    ]
  in
  let rendered = Fmt.str "%a" (Trace.pp ~world) events in
  check Alcotest.bool "non-empty" true (String.length rendered > 50)

let test_obj_id_validation () =
  Alcotest.check_raises "negative id" (Invalid_argument "Obj_id.of_int: negative id")
    (fun () -> ignore (oid (-1)))

let test_world_unknown_object () =
  let world = World.cas_world ~n_procs:1 ~objects:1 in
  Alcotest.check_raises "unknown object" (Invalid_argument "World: unknown object O5")
    (fun () -> ignore (World.kind_of world (oid 5)))

(* ---- properties ---- *)

let prop_engine_deterministic =
  QCheck.Test.make ~name:"identical seeds give identical runs" ~count:60 QCheck.int64
    (fun seed ->
      let go () =
        let world = World.cas_world ~n_procs:3 ~objects:2 in
        let budget = Budget.create ~max_faulty_objects:2 ~max_faults_per_object:(Some 2) () in
        let cfg = Engine.config ~world ~budget () in
        let body p () =
          let v = i (100 + p) in
          let old0 = Proc.cas (oid 0) ~expected:Value.Bottom ~desired:v in
          let est = if Value.is_bottom old0 then v else old0 in
          let old1 = Proc.cas (oid 1) ~expected:Value.Bottom ~desired:est in
          if Value.is_bottom old1 then est else old1
        in
        let r =
          Engine.run cfg
            ~scheduler:(Scheduler.random ~seed)
            ~injector:
              (Injector.probabilistic ~seed:(Int64.add seed 1L) ~p:0.5 Fault_kind.Overriding)
            ~bodies:(Array.init 3 body) ()
        in
        (Engine.decided_values r, r.Engine.total_steps,
         Fault.Budget.total_faults r.Engine.budget)
      in
      go () = go ())

let prop_fig2_agreement_random_settings =
  QCheck.Test.make ~name:"fig2 agrees across random (f, n, seed)" ~count:60
    QCheck.(triple (int_range 1 4) (int_range 2 6) int64)
    (fun (f, n, seed) ->
      let setup = Check.setup Consensus.F_tolerant.protocol (Protocol.params ~n_procs:n ~f ()) in
      let report =
        Check.run setup
          ~scheduler:(Scheduler.random ~seed)
          ~injector:(Injector.probabilistic ~seed:(Int64.add seed 7L) ~p:0.6 Fault_kind.Overriding)
          ()
      in
      Check.ok report)

let prop_fig3_agreement_random_settings =
  QCheck.Test.make ~name:"fig3 agrees across random (f, t, seed)" ~count:40
    QCheck.(triple (int_range 1 3) (int_range 1 2) int64)
    (fun (f, t, seed) ->
      let setup =
        Check.setup Consensus.Bounded_faults.protocol
          (Protocol.params ~t ~n_procs:(f + 1) ~f ())
      in
      let report =
        Check.run setup
          ~scheduler:(Scheduler.random ~seed)
          ~injector:(Injector.probabilistic ~seed:(Int64.add seed 3L) ~p:0.5 Fault_kind.Overriding)
          ()
      in
      Check.ok report)

let prop_audit_always_clean =
  (* Whatever the engine does within its rules, the Definition-1 audit of
     the produced trace must be clean. *)
  QCheck.Test.make ~name:"engine traces always pass the \xce\xa6/\xce\xa6' audit" ~count:60
    QCheck.int64 (fun seed ->
      let world = World.cas_world ~n_procs:3 ~objects:2 in
      let budget = Budget.create ~max_faulty_objects:2 ~max_faults_per_object:None () in
      let cfg = Engine.config ~world ~budget () in
      let r =
        Engine.run cfg
          ~scheduler:(Scheduler.random ~seed)
          ~injector:(Injector.always Fault_kind.Overriding)
          ~bodies:(Array.init 3 (fun p -> herlihy_body (i (100 + p)))) ()
      in
      Trace.audit ~world r.Engine.trace = [])

let suites =
  [
    ( "sim.engine-edge",
      [
        Alcotest.test_case "max total steps" `Quick test_max_total_steps_flag;
        Alcotest.test_case "final states" `Quick test_final_states_reported;
        Alcotest.test_case "decided values order" `Quick test_decided_values_in_proc_order;
        Alcotest.test_case "immediate completion" `Quick test_immediate_completion_body;
        Alcotest.test_case "trace pp smoke" `Quick test_trace_pp_smoke;
        Alcotest.test_case "obj id validation" `Quick test_obj_id_validation;
        Alcotest.test_case "world unknown object" `Quick test_world_unknown_object;
        qcheck prop_engine_deterministic;
        qcheck prop_audit_always_clean;
      ] );
    ( "consensus.properties",
      [ qcheck prop_fig2_agreement_random_settings; qcheck prop_fig3_agreement_random_settings ]
    );
  ]
