(* Wait-freedom means crash tolerance (paper §1: "a crash of a process
   holding a lock can prevent all other processes from … completing their
   tasks"; wait-free implementations are the fix). Demonstrated
   operationally: schedule the other processes to completion before a
   "crashed" process takes a single step — they must all decide without
   it, consistently, even under faults. *)

open Ffault_objects
module Sim = Ffault_sim
module Fault = Ffault_fault
module Consensus = Ffault_consensus
module Protocol = Consensus.Protocol
module Check = Ffault_verify.Consensus_check
module Engine = Sim.Engine
module Trace = Sim.Trace

let check = Alcotest.check

(* The trace position of p's first operation, and of each Decided event. *)
let first_op_position trace proc =
  let rec go i = function
    | [] -> None
    | Trace.Op_step { proc = p; _ } :: _ when p = proc -> Some i
    | _ :: rest -> go (i + 1) rest
  in
  go 0 trace

let decided_position trace proc =
  let rec go i = function
    | [] -> None
    | Trace.Decided { proc = p; _ } :: _ when p = proc -> Some i
    | _ :: rest -> go (i + 1) rest
  in
  go 0 trace

let run_with_stalled_p0 protocol params ~injector =
  let setup = Check.setup protocol params in
  let n = params.Protocol.n_procs in
  Check.run setup
    ~scheduler:(Sim.Scheduler.solo_runs ~order:(List.init (n - 1) (fun i -> i + 1)))
    ~injector ()

let assert_others_decide_before_p0 report =
  let trace = report.Check.result.Engine.trace in
  let p0_first = first_op_position trace 0 in
  let n = Array.length report.Check.result.Engine.outcomes in
  for p = 1 to n - 1 do
    match decided_position trace p, p0_first with
    | Some d, Some f ->
        check Alcotest.bool (Fmt.str "p%d decided before p0's first step" p) true (d < f)
    | Some _, None -> () (* p0 never even stepped *)
    | None, _ -> Alcotest.failf "p%d did not decide" p
  done;
  (* and the full run (p0 included) is still a correct consensus *)
  check Alcotest.bool "run is clean overall" true (Check.ok report)

let test_fig2_progress_without_p0 () =
  let params = Protocol.params ~n_procs:4 ~f:2 () in
  let report =
    run_with_stalled_p0 Consensus.F_tolerant.protocol params
      ~injector:(Fault.Injector.always Fault.Fault_kind.Overriding)
  in
  assert_others_decide_before_p0 report

let test_fig3_progress_without_p0 () =
  let params = Protocol.params ~t:2 ~n_procs:3 ~f:2 () in
  let report =
    run_with_stalled_p0 Consensus.Bounded_faults.protocol params
      ~injector:(Fault.Injector.probabilistic ~seed:3L ~p:0.5 Fault.Fault_kind.Overriding)
  in
  assert_others_decide_before_p0 report

let test_fig1_progress_without_p0 () =
  let params = Protocol.params ~n_procs:2 ~f:1 () in
  let report =
    run_with_stalled_p0 Consensus.Single_cas.two_process params
      ~injector:(Fault.Injector.always Fault.Fault_kind.Overriding)
  in
  assert_others_decide_before_p0 report

let test_late_riser_adopts () =
  (* When p0 finally runs after everyone else decided, it must adopt the
     settled value — even though its own input is different. *)
  let params = Protocol.params ~n_procs:3 ~f:1 () in
  let report =
    run_with_stalled_p0 Consensus.F_tolerant.protocol params
      ~injector:(Fault.Injector.always Fault.Fault_kind.Overriding)
  in
  match Engine.decided_values report.Check.result with
  | (0, v0) :: rest ->
      check Alcotest.bool "p0 adopted, not its own input" false
        (Value.equal v0 (Value.Int 100));
      List.iter
        (fun (_, v) -> check Test_objects.value_testable_for_reuse "all equal" v0 v)
        rest
  | _ -> Alcotest.fail "p0 missing from decisions"

let suites =
  [
    ( "consensus.crash-tolerance",
      [
        Alcotest.test_case "fig2 progresses without p0" `Quick test_fig2_progress_without_p0;
        Alcotest.test_case "fig3 progresses without p0" `Quick test_fig3_progress_without_p0;
        Alcotest.test_case "fig1 progresses without p0" `Quick test_fig1_progress_without_p0;
        Alcotest.test_case "late riser adopts" `Quick test_late_riser_adopts;
      ] );
  ]
