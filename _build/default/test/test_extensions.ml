(* Tests for the extension layer: severity lattice, mixed injector,
   degradation profiling, witness shrinking, and the portfolio
   falsifier. *)

open Ffault_objects
module Severity = Ffault_hoare.Severity
module Cas_spec = Ffault_hoare.Cas_spec
module Consensus = Ffault_consensus
module Protocol = Consensus.Protocol
module Check = Ffault_verify.Consensus_check
module Dfs = Ffault_verify.Dfs
module Shrink = Ffault_verify.Shrink
module Falsify = Ffault_verify.Falsify
module Degradation = Ffault_verify.Degradation
module Fault = Ffault_fault
module Injector = Fault.Injector
module Fault_kind = Fault.Fault_kind

let check = Alcotest.check
let relation = Alcotest.testable Severity.pp_relation Severity.equal_relation

(* ---- Severity ---- *)

let test_severity_reflexive () =
  List.iter
    (fun (name, p) ->
      check relation name Severity.Equivalent (Severity.compare_post p p))
    [
      ("standard", Cas_spec.standard);
      ("overriding", Cas_spec.overriding);
      ("silent", Cas_spec.silent);
      ("invisible", Cas_spec.invisible);
      ("arbitrary", Cas_spec.arbitrary);
    ]

let test_severity_arbitrary_dominates () =
  List.iter
    (fun (name, p) ->
      check relation ("arbitrary > " ^ name) Severity.More_severe
        (Severity.compare_post Cas_spec.arbitrary p);
      check relation (name ^ " < arbitrary") Severity.Less_severe
        (Severity.compare_post p Cas_spec.arbitrary))
    [
      ("standard", Cas_spec.standard);
      ("overriding", Cas_spec.overriding);
      ("silent", Cas_spec.silent);
    ]

let test_severity_invisible_incomparable () =
  List.iter
    (fun (name, p) ->
      check relation ("invisible vs " ^ name) Severity.Incomparable
        (Severity.compare_post Cas_spec.invisible p))
    [
      ("standard", Cas_spec.standard);
      ("overriding", Cas_spec.overriding);
      ("silent", Cas_spec.silent);
      ("arbitrary", Cas_spec.arbitrary);
    ]

let test_severity_antisymmetric_matrix () =
  let m = Severity.taxonomy_matrix () in
  List.iter
    (fun (a, b, r) ->
      let _, _, r' = List.find (fun (x, y, _) -> x = b && y = a) m in
      let expected =
        match r with
        | Severity.Less_severe -> Severity.More_severe
        | Severity.More_severe -> Severity.Less_severe
        | (Severity.Equivalent | Severity.Incomparable) as same -> same
      in
      check relation (a ^ "/" ^ b ^ " transposed") expected r')
    m

let test_severity_implies () =
  check Alcotest.bool "overriding implies arbitrary" true
    (Severity.implies Cas_spec.overriding Cas_spec.arbitrary);
  check Alcotest.bool "arbitrary does not imply overriding" false
    (Severity.implies Cas_spec.arbitrary Cas_spec.overriding)

(* ---- Injector.mixed ---- *)

let mixed_ctx ?(op_index = 0) () =
  {
    Injector.obj = Obj_id.of_int 0;
    op = Op.Cas { expected = Value.Bottom; desired = Value.Int 1 };
    state = Value.Bottom;
    proc = 0;
    step = 0;
    op_index;
    budget = Fault.Budget.unlimited ();
  }

let test_mixed_validation () =
  Alcotest.check_raises "over 1"
    (Invalid_argument "Injector.mixed: probabilities must be non-negative and sum to at most 1")
    (fun () ->
      ignore (Injector.mixed ~seed:1L [ (Fault_kind.Overriding, 0.8); (Fault_kind.Silent, 0.8) ]));
  Alcotest.check_raises "negative"
    (Invalid_argument "Injector.mixed: probabilities must be non-negative and sum to at most 1")
    (fun () -> ignore (Injector.mixed ~seed:1L [ (Fault_kind.Overriding, -0.1) ]))

let test_mixed_distribution () =
  let inj =
    Injector.mixed ~seed:33L [ (Fault_kind.Overriding, 0.3); (Fault_kind.Silent, 0.2) ]
  in
  let counts = Hashtbl.create 4 in
  let n = 20_000 in
  for k = 0 to n - 1 do
    let key =
      match inj.Injector.decide (mixed_ctx ~op_index:k ()) with
      | Injector.No_fault -> "none"
      | Injector.Fault { kind; _ } -> Fault_kind.to_string kind
    in
    Hashtbl.replace counts key (1 + Option.value ~default:0 (Hashtbl.find_opt counts key))
  done;
  let rate key = float_of_int (Option.value ~default:0 (Hashtbl.find_opt counts key)) /. float_of_int n in
  check Alcotest.bool "override near 0.3" true (rate "overriding" > 0.27 && rate "overriding" < 0.33);
  check Alcotest.bool "silent near 0.2" true (rate "silent" > 0.17 && rate "silent" < 0.23);
  check Alcotest.bool "none near 0.5" true (rate "none" > 0.46 && rate "none" < 0.54)

(* ---- Degradation ---- *)

let test_degradation_classify () =
  let base =
    { Degradation.runs = 0; clean = 0; consistency_broken = 0; validity_broken = 0;
      wait_freedom_broken = 0 }
  in
  (* drive a real clean report and a real violating report through it *)
  let setup = Check.setup Consensus.Single_cas.herlihy (Protocol.params ~n_procs:3 ~f:1 ()) in
  let clean_report =
    Check.run setup ~scheduler:(Ffault_sim.Scheduler.round_robin ())
      ~injector:Injector.never ()
  in
  let bad_report =
    Check.run setup ~scheduler:(Ffault_sim.Scheduler.round_robin ())
      ~injector:(Injector.always Fault_kind.Overriding) ()
  in
  let p = Degradation.classify clean_report base in
  let p = Degradation.classify bad_report p in
  check Alcotest.int "runs" 2 p.Degradation.runs;
  check Alcotest.int "clean" 1 p.Degradation.clean;
  check Alcotest.int "consistency" 1 p.Degradation.consistency_broken;
  check Alcotest.int "validity" 0 p.Degradation.validity_broken;
  check Alcotest.bool "graceful" true (Degradation.graceful p)

let test_degradation_overriding_preserves_validity () =
  (* 200 over-budget overriding runs on the naive protocol: validity and
     wait-freedom must never break. *)
  let setup = Check.setup Consensus.Single_cas.herlihy (Protocol.params ~n_procs:4 ~f:1 ()) in
  let p =
    Degradation.measure ~runs:200 ~seed:5L
      ~injector:(fun _ -> Injector.always Fault_kind.Overriding)
      setup
  in
  check Alcotest.bool "consistency does break" true (p.Degradation.consistency_broken > 0);
  check Alcotest.int "validity intact" 0 p.Degradation.validity_broken;
  check Alcotest.int "wait-freedom intact" 0 p.Degradation.wait_freedom_broken

(* ---- Shrink ---- *)

let breakable_setup () =
  Check.setup (Consensus.F_tolerant.with_objects 1) (Protocol.params ~n_procs:3 ~f:1 ())

let test_shrink_preserves_violation () =
  let setup = breakable_setup () in
  let stats = Dfs.explore ~max_executions:10_000 ~max_witnesses:3 setup in
  List.iter
    (fun w ->
      let shrunk, report = Shrink.witness_report setup w.Dfs.decisions in
      check Alcotest.bool "still violates" false (Check.ok report);
      check Alcotest.bool "not longer" true
        (Array.length shrunk <= Array.length w.Dfs.decisions))
    stats.Dfs.witnesses

let test_shrink_rejects_clean_vector () =
  let setup = breakable_setup () in
  Alcotest.check_raises "clean input"
    (Invalid_argument "Shrink.witness: input vector does not violate") (fun () ->
      (* all-defaults replay of this world is a clean round-robin run *)
      ignore (Shrink.witness setup [||]))

let test_shrink_local_minimality () =
  let setup = breakable_setup () in
  let stats = Dfs.explore ~max_executions:10_000 setup in
  match stats.Dfs.witnesses with
  | [] -> Alcotest.fail "no witness"
  | w :: _ ->
      let shrunk = Shrink.witness setup w.Dfs.decisions in
      (* no single chop or zero preserves the violation *)
      let n = Array.length shrunk in
      if n > 0 then begin
        let chopped = Array.sub shrunk 0 (n - 1) in
        check Alcotest.bool "chop breaks it" true (Check.ok (Dfs.replay setup chopped));
        Array.iteri
          (fun idx v ->
            if v > 0 then begin
              let zeroed = Array.copy shrunk in
              zeroed.(idx) <- 0;
              check Alcotest.bool "zeroing breaks it" true (Check.ok (Dfs.replay setup zeroed))
            end)
          shrunk
      end

(* ---- Falsify ---- *)

let test_falsify_finds_known_break () =
  let setup = breakable_setup () in
  let o = Falsify.falsify ~max_attempts:2000 ~seed:3L setup in
  check Alcotest.bool "witness found" true (o.Falsify.witness <> None)

let test_falsify_clean_on_correct () =
  let setup =
    Check.setup Consensus.F_tolerant.protocol (Protocol.params ~n_procs:3 ~f:1 ())
  in
  let o = Falsify.falsify ~max_attempts:300 ~seed:3L setup in
  check Alcotest.bool "no witness" true (o.Falsify.witness = None);
  check Alcotest.int "all attempts used" 300 o.Falsify.attempts

let test_falsify_witness_replayable () =
  let setup = breakable_setup () in
  let o = Falsify.falsify ~max_attempts:2000 ~seed:4L setup in
  match o.Falsify.witness with
  | None -> Alcotest.fail "no witness"
  | Some (name, seed, report) ->
      let replayed = Falsify.replay_witness setup ~strategy_name:name ~seed in
      check Alcotest.bool "replay violates" false (Check.ok replayed);
      check Alcotest.int "same violations"
        (List.length report.Check.violations)
        (List.length replayed.Check.violations)

let test_falsify_unknown_strategy () =
  let setup = breakable_setup () in
  Alcotest.check_raises "unknown strategy"
    (Invalid_argument "Falsify.replay_witness: unknown strategy \"nope\"") (fun () ->
      ignore (Falsify.replay_witness setup ~strategy_name:"nope" ~seed:1L))

let suites =
  [
    ( "hoare.severity",
      [
        Alcotest.test_case "reflexive" `Quick test_severity_reflexive;
        Alcotest.test_case "arbitrary dominates" `Quick test_severity_arbitrary_dominates;
        Alcotest.test_case "invisible incomparable" `Quick test_severity_invisible_incomparable;
        Alcotest.test_case "matrix antisymmetric" `Quick test_severity_antisymmetric_matrix;
        Alcotest.test_case "implies" `Quick test_severity_implies;
      ] );
    ( "fault.mixed",
      [
        Alcotest.test_case "validation" `Quick test_mixed_validation;
        Alcotest.test_case "distribution" `Quick test_mixed_distribution;
      ] );
    ( "verify.degradation",
      [
        Alcotest.test_case "classify" `Quick test_degradation_classify;
        Alcotest.test_case "overriding preserves validity" `Quick
          test_degradation_overriding_preserves_validity;
      ] );
    ( "verify.shrink",
      [
        Alcotest.test_case "preserves violation" `Quick test_shrink_preserves_violation;
        Alcotest.test_case "rejects clean vector" `Quick test_shrink_rejects_clean_vector;
        Alcotest.test_case "local minimality" `Quick test_shrink_local_minimality;
      ] );
    ( "verify.falsify",
      [
        Alcotest.test_case "finds known break" `Quick test_falsify_finds_known_break;
        Alcotest.test_case "clean on correct" `Quick test_falsify_clean_on_correct;
        Alcotest.test_case "witness replayable" `Quick test_falsify_witness_replayable;
        Alcotest.test_case "unknown strategy" `Quick test_falsify_unknown_strategy;
      ] );
  ]
