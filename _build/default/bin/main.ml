(* ffault — command-line driver for the Functional Faults reproduction.

   Subcommands: experiment (run E1..E14 and print their report tables),
   list, trace (render one adversarial execution), explore (bounded
   exhaustive model checking, with witness shrinking), replay (re-run a
   witness decision vector), falsify (portfolio search), critical (the
   executable valency walk), severity (fault order), hierarchy
   (consensus-number table), and multicore (domains + atomics runs). *)

open Cmdliner
module Experiments = Ffault_experiments
module Consensus = Ffault_consensus
module Protocol = Consensus.Protocol
module Check = Ffault_verify.Consensus_check
module Dfs = Ffault_verify.Dfs
module Fault = Ffault_fault
module Sim = Ffault_sim

(* ---- shared options ---- *)

let seed_arg =
  let doc = "Root seed for randomized schedules and fault plans." in
  Arg.(value & opt int 0xF417 & info [ "seed" ] ~docv:"SEED" ~doc)

let quick_arg =
  let doc = "Smaller sweeps and fewer runs (CI-friendly)." in
  Arg.(value & flag & info [ "quick" ] ~doc)

let f_arg =
  let doc = "Fault budget f (maximum number of faulty objects)." in
  Arg.(value & opt int 2 & info [ "f" ] ~docv:"F" ~doc)

let t_arg =
  let doc = "Fault bound t per faulty object (omit for unbounded)." in
  Arg.(value & opt (some int) None & info [ "t" ] ~docv:"T" ~doc)

let n_arg =
  let doc = "Number of processes." in
  Arg.(value & opt int 3 & info [ "n" ] ~docv:"N" ~doc)

let protocol_arg =
  let doc =
    "Protocol under test: fig1 (two-process single CAS), fig2 (f-tolerant sweep, f+1 \
     objects), fig3 (bounded-faults staged, f objects), herlihy (fault-free baseline), \
     silent-retry, tas (2-process test-and-set consensus), or sweepN (the Fig. 2 sweep \
     over exactly N objects, e.g. sweep2)."
  in
  Arg.(value & opt string "fig2" & info [ "protocol"; "p" ] ~docv:"PROTO" ~doc)

let resolve_protocol name =
  match String.lowercase_ascii name with
  | "fig1" -> Ok Consensus.Single_cas.two_process
  | "fig2" -> Ok Consensus.F_tolerant.protocol
  | "fig3" -> Ok Consensus.Bounded_faults.protocol
  | "herlihy" -> Ok Consensus.Single_cas.herlihy
  | "silent-retry" -> Ok Consensus.Silent_retry.protocol
  | "tas" -> Ok Consensus.Tas_consensus.protocol
  | s when String.length s > 5 && String.sub s 0 5 = "sweep" -> (
      match int_of_string_opt (String.sub s 5 (String.length s - 5)) with
      | Some m when m >= 1 -> Ok (Consensus.F_tolerant.with_objects m)
      | Some _ | None -> Error (`Msg (Fmt.str "bad sweep object count in %S" s)))
  | _ -> Error (`Msg (Fmt.str "unknown protocol %S" name))

let with_protocol name k =
  match resolve_protocol name with
  | Ok p -> k p
  | Error (`Msg m) ->
      Fmt.epr "error: %s@." m;
      1

(* ---- experiment ---- *)

let experiment_cmd =
  let ids_arg =
    let doc = "Experiment ids to run (e.g. E3 E5); all when omitted." in
    Arg.(value & pos_all string [] & info [] ~docv:"ID" ~doc)
  in
  let run ids quick seed =
    let seed = Int64.of_int seed in
    let entries =
      if ids = [] then Experiments.Registry.all
      else
        List.filter_map
          (fun id ->
            match Experiments.Registry.find id with
            | Some e -> Some e
            | None ->
                Fmt.epr "warning: unknown experiment %S (try `ffault list')@." id;
                None)
          ids
    in
    let reports = List.map (fun e -> e.Experiments.Registry.run ~quick ~seed) entries in
    List.iter (fun r -> Fmt.pr "%a@." Experiments.Report.pp r) reports;
    let failed =
      List.filter (fun r -> not r.Experiments.Report.passed) reports
    in
    if failed = [] then begin
      Fmt.pr "@.All %d experiments reproduced.@." (List.length reports);
      0
    end
    else begin
      Fmt.pr "@.%d experiment(s) NOT reproduced: %s@." (List.length failed)
        (String.concat ", " (List.map (fun r -> r.Experiments.Report.id) failed));
      1
    end
  in
  let doc = "Run the paper-reproduction and extension experiments (E1..E14)." in
  Cmd.v (Cmd.info "experiment" ~doc) Term.(const run $ ids_arg $ quick_arg $ seed_arg)

(* ---- list ---- *)

let list_cmd =
  let run () =
    List.iter
      (fun e -> Fmt.pr "%-4s %s@." e.Experiments.Registry.id e.Experiments.Registry.title)
      Experiments.Registry.all;
    0
  in
  let doc = "List the available experiments." in
  Cmd.v (Cmd.info "list" ~doc) Term.(const run $ const ())

(* ---- trace ---- *)

let trace_cmd =
  let rate_arg =
    let doc = "Overriding-fault rate in [0,1]; 1.0 = worst case." in
    Arg.(value & opt float 1.0 & info [ "rate" ] ~docv:"P" ~doc)
  in
  let run proto f t n rate seed =
    with_protocol proto (fun protocol ->
        let params = Protocol.params ?t ~n_procs:n ~f () in
        let setup = Check.setup protocol params in
        let seed64 = Int64.of_int seed in
        let injector =
          if rate >= 1.0 then Fault.Injector.always Fault.Fault_kind.Overriding
          else if rate <= 0.0 then Fault.Injector.never
          else Fault.Injector.probabilistic ~seed:seed64 ~p:rate Fault.Fault_kind.Overriding
        in
        let report =
          Check.run setup ~scheduler:(Sim.Scheduler.random ~seed:seed64) ~injector ()
        in
        let world = Check.world setup in
        Fmt.pr "%s under %a, seed %d:@.@.%a@." report.Check.setup_name Protocol.pp_params
          params seed (Sim.Trace.pp ~world)
          report.Check.result.Sim.Engine.trace;
        if Check.ok report then begin
          Fmt.pr "@.No violations: all processes decided consistently.@.";
          0
        end
        else begin
          Fmt.pr "@.Violations:@.";
          List.iter (fun v -> Fmt.pr "  %a@." Check.pp_violation v) report.Check.violations;
          1
        end)
  in
  let doc = "Run one adversarial execution and print its trace." in
  Cmd.v (Cmd.info "trace" ~doc)
    Term.(const run $ protocol_arg $ f_arg $ t_arg $ n_arg $ rate_arg $ seed_arg)

(* ---- explore ---- *)

let explore_cmd =
  let max_exec_arg =
    let doc = "Execution cap for the exhaustive search." in
    Arg.(value & opt int 500_000 & info [ "max-executions" ] ~docv:"N" ~doc)
  in
  let shrink_arg =
    let doc = "Minimize the witness decision vector before printing its trace." in
    Arg.(value & flag & info [ "shrink" ] ~doc)
  in
  let run proto f t n max_exec shrink =
    with_protocol proto (fun protocol ->
        let params = Protocol.params ?t ~n_procs:n ~f () in
        let setup = Check.setup protocol params in
        let stats = Dfs.explore ~max_executions:max_exec ~max_witnesses:3 setup in
        Fmt.pr "%s %a: %a@." protocol.Protocol.name Protocol.pp_params params Dfs.pp_stats
          stats;
        (match stats.Dfs.witnesses with
        | [] ->
            if stats.Dfs.truncated then
              Fmt.pr "No witness found, but the search was truncated (inconclusive).@."
            else Fmt.pr "Exhaustively verified: no consensus violation exists in this model.@."
        | w :: _ ->
            let decisions, report =
              if shrink then Ffault_verify.Shrink.witness_report setup w.Dfs.decisions
              else (w.Dfs.decisions, w.Dfs.report)
            in
            let world = Check.world setup in
            Fmt.pr
              "@.%s witness (decisions [%a] \xe2\x80\x94 replay with `ffault \
               replay'):@.%a@.@.Violations:@."
              (if shrink then "Shrunk" else "First")
              (Fmt.array ~sep:Fmt.comma Fmt.int)
              decisions (Sim.Trace.pp ~world) report.Check.result.Sim.Engine.trace;
            List.iter (fun v -> Fmt.pr "  %a@." Check.pp_violation v) report.Check.violations);
        if stats.Dfs.witnesses = [] then 0 else 1)
  in
  let doc = "Bounded-exhaustive model checking over schedules and fault choices." in
  Cmd.v (Cmd.info "explore" ~doc)
    Term.(const run $ protocol_arg $ f_arg $ t_arg $ n_arg $ max_exec_arg $ shrink_arg)

(* ---- replay ---- *)

let replay_cmd =
  let decisions_arg =
    let doc = "Comma-separated decision vector from a previous `explore' witness." in
    Arg.(value & opt string "" & info [ "decisions" ] ~docv:"D,D,..." ~doc)
  in
  let run proto f t n decisions =
    with_protocol proto (fun protocol ->
        let params = Protocol.params ?t ~n_procs:n ~f () in
        let setup = Check.setup protocol params in
        match
          if decisions = "" then Ok [||]
          else
            try
              Ok
                (String.split_on_char ',' decisions
                |> List.map (fun s -> int_of_string (String.trim s))
                |> Array.of_list)
            with Failure _ -> Error ()
        with
        | Error () ->
            Fmt.epr "error: --decisions expects a comma-separated list of integers@.";
            1
        | Ok vector ->
            let report = Dfs.replay setup vector in
            let world = Check.world setup in
            Fmt.pr "%a@." (Sim.Trace.pp ~world) report.Check.result.Sim.Engine.trace;
            if Check.ok report then begin
              Fmt.pr "@.No violations.@.";
              0
            end
            else begin
              Fmt.pr "@.Violations:@.";
              List.iter (fun v -> Fmt.pr "  %a@." Check.pp_violation v) report.Check.violations;
              1
            end)
  in
  let doc = "Replay a decision vector (an `explore' witness) and print its trace." in
  Cmd.v (Cmd.info "replay" ~doc)
    Term.(const run $ protocol_arg $ f_arg $ t_arg $ n_arg $ decisions_arg)

(* ---- falsify ---- *)

let falsify_cmd =
  let attempts_arg =
    let doc = "Attempt cap for the portfolio search." in
    Arg.(value & opt int 10_000 & info [ "max-attempts" ] ~docv:"N" ~doc)
  in
  let run proto f t n attempts seed =
    with_protocol proto (fun protocol ->
        let params = Protocol.params ?t ~n_procs:n ~f () in
        let setup = Check.setup protocol params in
        let o =
          Ffault_verify.Falsify.falsify ~max_attempts:attempts ~seed:(Int64.of_int seed)
            setup
        in
        Fmt.pr "%s %a: %a@." protocol.Protocol.name Protocol.pp_params params
          Ffault_verify.Falsify.pp_outcome o;
        match o.Ffault_verify.Falsify.witness with
        | None -> 0
        | Some (_, _, report) ->
            let world = Check.world setup in
            Fmt.pr "@.%a@.@.Violations:@." (Sim.Trace.pp ~world)
              report.Check.result.Sim.Engine.trace;
            List.iter (fun v -> Fmt.pr "  %a@." Check.pp_violation v) report.Check.violations;
            1)
  in
  let doc = "Randomized portfolio falsification (for instances too large for `explore')." in
  Cmd.v (Cmd.info "falsify" ~doc)
    Term.(const run $ protocol_arg $ f_arg $ t_arg $ n_arg $ attempts_arg $ seed_arg)

(* ---- critical ---- *)

let critical_cmd =
  let reduced_arg =
    let doc = "Run in the reduced model with this process always faulty." in
    Arg.(value & opt (some int) None & info [ "reduced" ] ~docv:"PROC" ~doc)
  in
  let run proto f t n reduced =
    with_protocol proto (fun protocol ->
        let params = Protocol.params ?t ~n_procs:n ~f () in
        let setup = Check.setup protocol params in
        let result =
          Ffault_impossibility.Critical.find ?reduced_faulty_proc:reduced setup
        in
        Fmt.pr "%s %a:@.%a@." protocol.Protocol.name Protocol.pp_params params
          Ffault_impossibility.Critical.pp_result result;
        match result with
        | Ffault_impossibility.Critical.Critical _
        | Ffault_impossibility.Critical.Disagreement _ ->
            0
        | Ffault_impossibility.Critical.Not_found _ -> 1)
  in
  let doc =
    "Walk the valency tree to a critical state (or to a disagreeing execution) \xe2\x80\x94 \
     the Theorem 18 proof, executable."
  in
  Cmd.v (Cmd.info "critical" ~doc)
    Term.(const run $ protocol_arg $ f_arg $ t_arg $ n_arg $ reduced_arg)

(* ---- severity ---- *)

let severity_cmd =
  let run () =
    let module Severity = Ffault_hoare.Severity in
    let names = [ "standard"; "overriding"; "silent"; "invisible"; "arbitrary" ] in
    let matrix = Severity.taxonomy_matrix () in
    Fmt.pr "Semantic severity relations between the CAS postconditions@.";
    Fmt.pr "(row vs column: < less severe, > more severe, \xe2\x89\xa1 equivalent, \xe2\x88\xa5 \
            incomparable)@.@.";
    (* pad by display width: the relation glyphs are multibyte UTF-8 *)
    let pad w s =
      let display =
        let n = ref 0 in
        String.iter (fun c -> if Char.code c land 0xC0 <> 0x80 then incr n) s;
        !n
      in
      s ^ String.make (max 0 (w - display)) ' '
    in
    Fmt.pr "%s" (pad 12 "");
    List.iter (fun n -> Fmt.pr "%s" (pad 12 n)) names;
    Fmt.pr "@.";
    List.iter
      (fun a ->
        Fmt.pr "%s" (pad 12 a);
        List.iter
          (fun b ->
            let _, _, r = List.find (fun (x, y, _) -> x = a && y = b) matrix in
            Fmt.pr "%s" (pad 12 (Fmt.str "%a" Severity.pp_relation r)))
          names;
        Fmt.pr "@.")
      names;
    0
  in
  let doc = "Print the fault-severity matrix (decided exhaustively over a finite universe)." in
  Cmd.v (Cmd.info "severity" ~doc) Term.(const run $ const ())

(* ---- hierarchy ---- *)

let hierarchy_cmd =
  let max_f_arg =
    let doc = "Largest f to tabulate." in
    Arg.(value & opt int 4 & info [ "max-f" ] ~docv:"F" ~doc)
  in
  let runs_arg =
    let doc = "Randomized runs per construction check." in
    Arg.(value & opt int 300 & info [ "runs" ] ~docv:"N" ~doc)
  in
  let run max_f runs t seed =
    let t = Option.value t ~default:1 in
    let rows =
      Ffault_impossibility.Hierarchy.table ~runs ~seed:(Int64.of_int seed) ~t ~max_f ()
    in
    List.iter (fun r -> Fmt.pr "%a@." Ffault_impossibility.Hierarchy.pp_row r) rows;
    if List.for_all (fun r -> r.Ffault_impossibility.Hierarchy.consensus_number <> None) rows
    then 0
    else 1
  in
  let doc = "Compute the faulty-CAS consensus hierarchy table." in
  Cmd.v (Cmd.info "hierarchy" ~doc)
    Term.(const run $ max_f_arg $ runs_arg $ t_arg $ seed_arg)

(* ---- multicore ---- *)

let multicore_cmd =
  let domains_arg =
    let doc = "Number of domains (hardware threads)." in
    Arg.(value & opt int 4 & info [ "domains" ] ~docv:"D" ~doc)
  in
  let runs_arg =
    let doc = "Parallel consensus instances to execute." in
    Arg.(value & opt int 1000 & info [ "runs" ] ~docv:"N" ~doc)
  in
  let rate_arg =
    let doc = "Per-CAS overriding-fault probability." in
    Arg.(value & opt float 0.3 & info [ "rate" ] ~docv:"P" ~doc)
  in
  let run f t domains runs rate seed =
    let module R = Ffault_runtime in
    let t = Option.value t ~default:1 in
    let protocol = R.Consensus_mc.Staged { f; t } in
    let violations = ref 0 in
    let faults = ref 0 in
    let started = Unix.gettimeofday () in
    for i = 1 to runs do
      let cfg =
        R.Consensus_mc.config
          ~plan_for:(fun o ->
            R.Faulty_cas.plan_probabilistic
              ~seed:(Int64.of_int ((seed * 1_000_003) + (i * 31) + o))
              ~p:rate)
          ~n_domains:domains protocol
      in
      let r = R.Consensus_mc.execute cfg in
      if not (r.R.Consensus_mc.agreed && r.R.Consensus_mc.valid) then incr violations;
      faults := !faults + Array.fold_left ( + ) 0 r.R.Consensus_mc.faults_per_object
    done;
    let elapsed = Unix.gettimeofday () -. started in
    Fmt.pr
      "%a on %d domains: %d runs, %d violations, %d observable faults, %.2f s (%.0f \
       decides/s)@."
      R.Consensus_mc.pp_protocol protocol domains runs !violations !faults elapsed
      (float_of_int runs /. elapsed);
    if !violations = 0 then 0 else 1
  in
  let doc = "Run the Fig. 3 protocol on real domains with injected overriding faults." in
  Cmd.v (Cmd.info "multicore" ~doc)
    Term.(const run $ f_arg $ t_arg $ domains_arg $ runs_arg $ rate_arg $ seed_arg)

let main_cmd =
  let doc = "reproduction of \"Functional Faults\" (Sheffi & Petrank, 2020)" in
  let info = Cmd.info "ffault" ~version:"1.0.0" ~doc in
  Cmd.group info
    [
      experiment_cmd; list_cmd; trace_cmd; explore_cmd; replay_cmd; falsify_cmd; critical_cmd;
      severity_cmd; hierarchy_cmd; multicore_cmd;
    ]

let () = exit (Cmd.eval' main_cmd)
