(** Discovery and freshness-checking of the .cmt files behind the typed
    rules.

    Dune emits a cmt for every compiled module under
    [_build/default/**/.objs/byte] (libraries) and [**.eobjs/byte]
    (executables). {!create} indexes them by (logical directory, unit
    name) from filenames alone; {!for_source} maps a source path to its
    cmt, reads it, and verifies the cmt's recorded source digest against
    the file on disk. Every failure mode is a {!status} — never an
    exception — so the driver can degrade per file: a note under
    [--typed=auto], a [cmt-missing] finding under [--typed=on]. *)

type status =
  | Typed of Cmt_format.cmt_infos  (** fresh: typedtree available *)
  | No_cmt  (** no cmt indexed for this source *)
  | Stale of string  (** cmt exists but the source changed since the build *)
  | Unreadable of string  (** cmt or source cannot be read/digested *)

type t

val default_build_dir : string
(** ["_build/default"]. *)

val create : ?build_dir:string -> unit -> t option
(** Scan [build_dir] for cmt files. [None] when the directory does not
    exist or holds no cmts — the signal [--typed=auto] uses to skip the
    typed pass entirely. *)

val for_source : t -> string -> status
(** Resolve, read and freshness-check the cmt for a [.ml] source path.
    Non-[.ml] paths are [No_cmt]. *)

val describe : build_dir:string -> status -> string option
(** Human-readable note for a degraded status; [None] for [Typed]. *)

val build_dir : t -> string
