(** One lint finding: a rule violation at a precise source location. *)

type severity = Error | Warning

val severity_to_string : severity -> string
val severity_of_string : string -> severity option

type t = {
  rule : string;  (** rule name, e.g. ["raw-atomic"] *)
  severity : severity;
  file : string;  (** path as given to the driver (repo-relative in CI) *)
  line : int;  (** 1-based *)
  col : int;  (** 0-based, as compilers print it *)
  message : string;
}

val v :
  rule:string -> severity:severity -> file:string -> line:int -> col:int -> string -> t

val of_location :
  rule:string -> severity:severity -> file:string -> Location.t -> string -> t
(** Build a finding at the start of a compiler-libs location. *)

val compare : t -> t -> int
(** Source order: file, then line, then column, then rule. *)

val pp : Format.formatter -> t -> unit
(** [file:line:col: severity rule: message] — the grep-able text form. *)
