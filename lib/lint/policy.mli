(** Per-directory policy: where each rule is active, and the audited
    allowlist that carves specific directories or files out of a rule,
    each with a recorded justification. *)

type allow = { prefix : string; rules : string list; why : string }

type t = {
  active : (string * string list) list;
      (** rule name -> path prefixes (repo-relative) where it applies *)
  allows : allow list;
}

val normalize : string -> string
(** Repo-relativize a path: drop ["./"] segments and any temp/absolute
    ancestors before a known top-level dir ([lib/], [bin/], ...). *)

val has_prefix : prefix:string -> string -> bool
(** Component-wise prefix test on normalized paths ([lib/sim] matches
    [lib/sim/engine.ml] but not [lib/simulator.ml]). *)

val in_scope : t -> rule:string -> file:string -> bool
(** Is the rule active for this file (before allowlisting)? Meta rules
    ({!Rule.is_meta}) are always in scope. *)

val allow_reason : t -> rule:string -> file:string -> string option
(** The allowlist justification covering this file, if any. *)

val applies : t -> rule:string -> file:string -> bool
(** [in_scope] and not allowlisted: a finding for this rule at this file
    should be reported. *)

val deterministic_dirs : string list
(** Directories whose behavior must be a pure function of the seed. *)

val default : t
(** This repository's committed policy (see doc/LINT.md). *)
