type t = { name : string; severity : Finding.severity; summary : string }

let v name severity summary = { name; severity; summary }

(* The eight substantive rules, in the order they are documented. *)
let substantive =
  [
    v "raw-atomic" Finding.Error
      "raw Atomic CAS/exchange/set outside the faulty-CAS substrate silently disables \
       fault injection (the overriding fault of \xc2\xa73.3), invalidating E1\xe2\x80\x93E8";
    v "nondeterminism" Finding.Error
      "wall clocks, Random and randomized hashing under the simulator break seeded \
       reproducibility, journal replay and campaign resume";
    v "toplevel-mutable" Finding.Error
      "module-level mutable state in deterministic libraries leaks between campaign \
       trials that share a process";
    v "io-in-lib" Finding.Error
      "direct stdout/stderr printing or exit in library code bypasses the telemetry \
       and report layers and corrupts machine-read output";
    v "catch-all" Finding.Error
      "a wildcard exception handler can swallow fault-budget and cancellation \
       exceptions in pool/runner paths";
    v "mli-required" Finding.Error
      "every library module must commit to an interface: an .ml without its .mli \
       exposes internals the lint and the design cannot see";
    v "obj-magic" Finding.Error
      "Obj.* defeats the type system; unsafe representation tricks need an explicit, \
       justified suppression";
    v "effect-discipline" Finding.Error
      "simulator effect handlers must run the full Step/Decide protocol: \
       Effect.Deep.try_with (no retc/exnc) lets a returning or raising process escape \
       the scheduler's status bookkeeping";
  ]

(* Meta rules: produced by the machinery itself, not subject to policy
   scoping (a broken parse or suppression is a problem wherever it is). *)
let meta =
  [
    v "parse-error" Finding.Error "the file does not parse with the repo's compiler";
    v "suppression" Finding.Error
      "malformed [@@@ffault.lint.allow] attribute (unknown rule or missing \
       justification)";
  ]

let all = substantive @ meta
let find name = List.find_opt (fun r -> r.name = name) all
let is_meta name = List.exists (fun r -> r.name = name) meta
let names = List.map (fun r -> r.name) all

let severity name =
  match find name with Some r -> r.severity | None -> Finding.Error
