type layer = Ast | Typed | Fs

let layer_to_string = function Ast -> "ast" | Typed -> "typed" | Fs -> "fs"

type t = {
  name : string;
  severity : Finding.severity;
  summary : string;
  layer : layer;
  rationale : string;
  example : string;
}

let v ?(layer = Ast) ~rationale ~example name severity summary =
  { name; severity; summary; layer; rationale; example }

(* The substantive rules, in the order they are documented. The
   [rationale] and [example] fields feed `ffault lint --explain RULE`;
   the summary feeds `--list-rules`. *)
let substantive =
  [
    v "raw-atomic" Finding.Error
      "raw Atomic CAS/exchange/set outside the faulty-CAS substrate silently disables \
       fault injection (the overriding fault of \xc2\xa73.3), invalidating E1\xe2\x80\x93E8"
      ~rationale:
        "Every CAS executed by protocol code must flow through \
         Ffault_runtime.Faulty_cas, because that wrapper is where the fault \
         injector lives: an overriding fault replaces the value a successful CAS \
         installs, a silent fault lies about the outcome. A raw \
         Atomic.compare_and_set (or exchange/set/fetch_and_add/incr/decr) \
         executes against the real primitive, so the experiment verifies a \
         protocol against a fault model it never actually faces. Reads \
         (Atomic.get) and allocation (Atomic.make) carry no fault semantics and \
         are fine."
      ~example:
        "lib/consensus/protocol.ml:42:10: error raw-atomic: raw Atomic.set \
         bypasses the injectable faulty-CAS substrate; route the operation \
         through Ffault_runtime.Faulty_cas";
    v "nondeterminism" Finding.Error
      "wall clocks, Random and randomized hashing under the simulator break seeded \
       reproducibility, journal replay and campaign resume"
      ~rationale:
        "Everything under the simulator must be a pure function of the seed: \
         journal replay, campaign resume and the shrinker all re-execute trials \
         and require bit-identical outcomes. Wall-clock reads (Sys.time, \
         Unix.gettimeofday), the global Random state and randomized hashing \
         (Hashtbl.create ~random:true, Hashtbl.randomize) all vary across runs. \
         Seeded randomness comes from Ffault_prng, split per trial."
      ~example:
        "lib/sim/scheduler.ml:17:8: error nondeterminism: Random.int draws from \
         the global, seed-unstable PRNG; deterministic code must use Ffault_prng \
         (splittable, seeded per trial)";
    v "toplevel-mutable" Finding.Error
      "module-level mutable state in deterministic libraries leaks between campaign \
       trials that share a process"
      ~rationale:
        "A module-level ref/Hashtbl/Buffer/array is allocated once per process \
         and shared by every trial the process runs, so trial N's state leaks \
         into trial N+1 and outcomes depend on execution order — exactly what \
         the domain-count invariance of the pool forbids. Allocate per run and \
         pass it in; allocation inside a function or under lazy is fine."
      ~example:
        "lib/verify/checker.ml:3:12: error toplevel-mutable: module-level \
         Hashtbl.create creates mutable state shared across every trial in the \
         process; allocate it per run (pass it in)";
    v "io-in-lib" Finding.Error
      "direct stdout/stderr printing or exit in library code bypasses the telemetry \
       and report layers and corrupts machine-read output"
      ~rationale:
        "Library code that prints to the terminal (print_*, Printf.printf, \
         Fmt.pr, ...) or calls exit competes with the progress line, corrupts \
         JSON emitted on stdout for CI, and makes outcomes unobservable to the \
         report layer. Socket-level Unix syscalls are the same discipline one \
         level down: transport work belongs in the allowlisted dist driver \
         modules. Return data, print to a caller-supplied formatter, or go \
         through Ffault_telemetry."
      ~example:
        "lib/objects/vqueue.ml:88:2: error io-in-lib: print_endline performs \
         direct terminal IO/exit from library code; return data, or go through \
         Ffault_telemetry / the report layer";
    v "catch-all" Finding.Error
      "a wildcard exception handler can swallow fault-budget and cancellation \
       exceptions in pool/runner paths"
      ~rationale:
        "try ... with _ -> and match ... with exception _ -> swallow every \
         exception, including Budget.Exhausted and Cancel.Cancelled — the \
         control-flow exceptions the pool and runner use to stop work. A \
         swallowed cancellation turns a supervised timeout into a silent wrong \
         answer. Match the exceptions you mean to handle, or bind and re-raise \
         the rest."
      ~example:
        "lib/campaign/runner_glue.ml:61:29: error catch-all: wildcard exception \
         handler swallows every exception, including budget exhaustion and \
         cancellation; match the exceptions you mean to handle";
    v "mli-required" Finding.Error ~layer:Fs
      "every library module must commit to an interface: an .ml without its .mli \
       exposes internals the lint and the design cannot see"
      ~rationale:
        "An .ml without a committed .mli exposes every internal as public \
         surface: callers couple to representation details, and interface drift \
         is invisible in review. The check is filesystem-level — each lib/**.ml \
         must have a sibling .mli."
      ~example:
        "lib/stats/quantiles.ml:1:0: error mli-required: quantiles.ml has no \
         interface: add quantiles.mli so the module's surface is committed and \
         reviewable";
    v "obj-magic" Finding.Error
      "Obj.* defeats the type system; unsafe representation tricks need an explicit, \
       justified suppression"
      ~rationale:
        "Obj.magic and friends bypass the type system entirely; a wrong \
         assumption about representation is a memory-safety bug the compiler \
         can no longer catch. Sound tricks exist (the telemetry cache-padding \
         copy is one) but each must carry an in-source justified suppression so \
         the audit trail survives."
      ~example:
        "lib/telemetry/metrics.ml:30:14: error obj-magic: Obj.repr defeats the \
         type system; if the representation trick is sound, suppress with \
         [@@@ffault.lint.allow \"obj-magic\", \"why it is safe\"]";
    v "effect-discipline" Finding.Error
      "simulator effect handlers must run the full Step/Decide protocol: \
       Effect.Deep.try_with (no retc/exnc) lets a returning or raising process escape \
       the scheduler's status bookkeeping"
      ~rationale:
        "The simulator's scheduler tracks each process through its effect \
         handler: a Step effect yields, a return becomes Decided, a raise \
         becomes Crashed. Effect.Deep.try_with installs only an effect handler, \
         so a body that returns or raises unwinds straight through the \
         scheduler; a match_with whose exnc merely re-raises drops the crash \
         half. Every exit must land in the scheduler's status array."
      ~example:
        "lib/sim/engine.ml:102:4: error effect-discipline: Effect.Deep.try_with \
         installs only an effect handler: a body that returns or raises \
         bypasses the scheduler's Step/Decide bookkeeping";
    (* ---- typed layer (require cmt files; see doc/LINT.md) ---- *)
    v "poly-compare-abstract" Finding.Error ~layer:Typed
      "structural =/compare/Hashtbl.hash/List.mem at a lib-owned semantic type \
       (Value.t, History.t) breaks the moment the type gains closures or mutable \
       internals"
      ~rationale:
        "Value.t and History.t own their comparison semantics (Value.equal is \
         the comparison the CAS primitive runs). Polymorphic =, <>, compare, \
         Hashtbl.hash and List.mem compare representations instead: they raise \
         on closures, diverge from the semantic order on mutable internals, and \
         silently change meaning when the type grows a constructor. The typed \
         pass sees the instantiated type of each occurrence, so the check \
         survives aliases and type inference; it also descends into type \
         parameters (Value.t list = Value.t list is still structural). Use the \
         module's own equal/compare/hash."
      ~example:
        "lib/verify/oracle.ml:54:20: error poly-compare-abstract: polymorphic = \
         instantiated at Value.t; use Value.equal/compare instead of structural \
         comparison";
    v "alias-escape" Finding.Error ~layer:Typed
      "an alias, open, include or eta-reduced binding whose resolved identity lands \
       in the raw-atomic / nondeterminism / io-in-lib ident sets evaded the \
       parsetree rule"
      ~rationale:
        "The parsetree rules match surface syntax, so module A = Atomic, open \
         Atomic, include Atomic, or Atomic.(set r 1) all evade them. The typed \
         pass resolves every identifier to its definition site in the compiler's \
         typedtree, so an occurrence that is really Atomic.set (or \
         Unix.gettimeofday, or Printf.printf, ...) is flagged however it is \
         written. Occurrences the parsetree pass already reports are skipped — \
         this rule only surfaces the escapes. The underlying rule's \
         per-directory policy applies: an aliased clock read outside the \
         deterministic dirs is still fine."
      ~example:
        "lib/consensus/fig3.ml:9:14: error alias-escape: this identifier \
         resolves to Atomic.set (raw-atomic territory) though written as \
         `A.set'; aliasing does not evade the typed lint";
    v "domain-unsafe-capture" Finding.Warning ~layer:Typed
      "a ref, mutable field or non-atomic array allocated outside a Domain.spawn \
       closure and mutated inside it is a cross-domain data race (error in lib/sim)"
      ~rationale:
        "A closure passed to Domain.spawn runs on another domain: mutating a \
         captured ref, mutable record field or non-atomic array from inside it \
         is unsynchronized cross-domain shared-memory access — a data race \
         under the OCaml memory model, and in the multicore experiments a way \
         to corrupt measurements without any fault being injected. Use Atomic, \
         keep the state domain-local, or pass results back through Domain.join. \
         Heuristic: only literal closures are inspected, and only mutations of \
         identifiers bound outside the closure are flagged. A warning \
         elsewhere, an error under lib/sim (where nothing may share mutable \
         state with the simulated execution)."
      ~example:
        "lib/experiments/mc_sweep.ml:33:28: warning domain-unsafe-capture: ref \
         'hits' is allocated outside this Domain.spawn closure and mutated \
         inside it; use Atomic, per-domain state, or Domain.join";
  ]

(* Meta rules: produced by the machinery itself, not subject to policy
   scoping (a broken parse or suppression is a problem wherever it is). *)
let meta =
  [
    v "parse-error" Finding.Error "the file does not parse with the repo's compiler"
      ~rationale:
        "The lint parses every source with the repo's own compiler frontend; a \
         file that does not parse cannot be checked, which is itself a failure \
         (the build would fail too)."
      ~example:
        "lib/sim/broken.ml:3:8: error parse-error: syntax error";
    v "suppression" Finding.Error
      "malformed [@@@ffault.lint.allow] attribute (unknown rule or missing \
       justification)"
      ~rationale:
        "A suppression must name a known, suppressible rule and carry a \
         non-blank justification string — that is what makes the carve-out \
         auditable. A malformed one is reported and suppresses nothing."
      ~example:
        "lib/fault/injector.ml:1:0: error suppression: suppressing \
         \"raw-atomic\" requires a justification string";
    v "cmt-missing" Finding.Error ~layer:Typed
      "--typed=on requires a fresh cmt for every .ml; build first (dune build)"
      ~rationale:
        "The typed rules read the compiler's .cmt output. Under --typed=auto a \
         missing or stale cmt just downgrades that file to the parsetree pass \
         (reported as a note); under --typed=on — the CI mode — it is this \
         error, so a build-step regression cannot silently shrink lint \
         coverage."
      ~example:
        "lib/netsim/net.ml:1:0: error cmt-missing: no cmt found under \
         _build/default (build first: dune build)";
  ]

let all = substantive @ meta
let find name = List.find_opt (fun r -> r.name = name) all
let is_meta name = List.exists (fun r -> r.name = name) meta
let names = List.map (fun r -> r.name) all

let severity name =
  match find name with Some r -> r.severity | None -> Finding.Error

let layer name = match find name with Some r -> r.layer | None -> Ast
