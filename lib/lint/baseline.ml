(* The committed baseline: grandfathered findings that do not fail the
   lint. Matching is exact on (rule, file, line) — editing a baselined
   file past the recorded line surfaces the finding again, which is the
   intended pressure to fix rather than carry debt. *)

module Json = Ffault_campaign.Json

type entry = { rule : string; file : string; line : int; note : string }
type t = entry list

let empty = []

let entry_of_finding (f : Finding.t) =
  { rule = f.rule; file = Policy.normalize f.file; line = f.line; note = f.message }

let of_findings findings = List.map entry_of_finding findings

let matches e (f : Finding.t) =
  e.rule = f.rule && e.file = Policy.normalize f.file && e.line = f.line

type split = {
  fresh : Finding.t list;  (** not in the baseline: these fail the lint *)
  baselined : Finding.t list;  (** grandfathered *)
  expired : entry list;  (** baseline entries that no longer match anything *)
}

let apply t findings =
  let fresh, baselined =
    List.partition (fun f -> not (List.exists (fun e -> matches e f) t)) findings
  in
  let expired =
    List.filter (fun e -> not (List.exists (fun f -> matches e f) findings)) t
  in
  { fresh; baselined; expired }

(* ---- persistence ---- *)

let entry_to_json e =
  Json.Obj
    [
      ("rule", Json.Str e.rule);
      ("file", Json.Str e.file);
      ("line", Json.Int e.line);
      ("note", Json.Str e.note);
    ]

let to_json t = Json.Obj [ ("version", Json.Int 1); ("entries", Json.List (List.map entry_to_json t)) ]

let entry_of_json j =
  let ( let* ) = Option.bind in
  let* rule = Option.bind (Json.member "rule" j) Json.get_str in
  let* file = Option.bind (Json.member "file" j) Json.get_str in
  let* line = Option.bind (Json.member "line" j) Json.get_int in
  let note =
    Option.value ~default:"" (Option.bind (Json.member "note" j) Json.get_str)
  in
  Some { rule; file; line; note }

let of_json j =
  match Option.bind (Json.member "entries" j) Json.get_list with
  | None -> Error "baseline: missing \"entries\" list"
  | Some items ->
      let entries = List.filter_map entry_of_json items in
      if List.length entries = List.length items then Ok entries
      else Error "baseline: malformed entry (need rule, file, line)"

let load ~path =
  if not (Sys.file_exists path) then Error (Fmt.str "no baseline file at %s" path)
  else
    match In_channel.with_open_text path In_channel.input_all with
    | text -> Result.bind (Json.of_string (String.trim text)) of_json
    | exception Sys_error m -> Error m

let save ~path t =
  Out_channel.with_open_text path (fun oc ->
      output_string oc (Json.to_string (to_json t));
      output_char oc '\n')
