(* The committed baseline: grandfathered findings that do not fail the
   lint. Matching is fuzzy: (rule, normalized file, context hash of the
   ±2 surrounding lines), so a finding that merely moved — code added
   or removed elsewhere in the file — stays grandfathered, while
   editing the flagged region itself changes the context and surfaces
   the finding again (the intended pressure to fix rather than carry
   debt). Entries without a context hash — a v1 baseline, or a file
   that was unreadable when the baseline was written — fall back to
   exact (rule, file, line). *)

module Json = Ffault_campaign.Json

type entry = {
  rule : string;
  file : string;
  line : int;
  ctx : string option;
  note : string;
}

type t = entry list

let empty = []

(* 64-bit FNV-1a, rendered as 16 hex digits. [Hashtbl.hash] would be
   shorter but is not specified stable across OCaml versions — a
   committed baseline must hash identically on every machine. *)
let fnv_offset = 0xcbf29ce484222325L
let fnv_prime = 0x100000001b3L

let fnv1a s =
  let h = ref fnv_offset in
  String.iter
    (fun c -> h := Int64.mul (Int64.logxor !h (Int64.of_int (Char.code c))) fnv_prime)
    s;
  Fmt.str "%016Lx" !h

let read_lines path =
  if not (Sys.file_exists path) then None
  else
    match In_channel.with_open_text path In_channel.input_all with
    | text -> Some (Array.of_list (String.split_on_char '\n' text))
    | exception Sys_error _ -> None

let context_radius = 2

let context_of_lines lines ~line =
  let n = Array.length lines in
  if line < 1 || line > n then None
  else begin
    let lo = max 0 (line - 1 - context_radius) in
    let hi = min (n - 1) (line - 1 + context_radius) in
    let buf = Buffer.create 256 in
    for i = lo to hi do
      (* trimmed: reindentation is not an edit *)
      Buffer.add_string buf (String.trim lines.(i));
      Buffer.add_char buf '\n'
    done;
    Some (fnv1a (Buffer.contents buf))
  end

let context_hash ~path ~line =
  Option.bind (read_lines path) (fun lines -> context_of_lines lines ~line)

(* one file read per distinct path, however many findings it carries *)
let context_cache () =
  let files = Hashtbl.create 8 in
  fun ~path ~line ->
    let lines =
      match Hashtbl.find_opt files path with
      | Some l -> l
      | None ->
          let l = read_lines path in
          Hashtbl.add files path l;
          l
    in
    Option.bind lines (fun lines -> context_of_lines lines ~line)

let entry_of_finding ctx_of (f : Finding.t) =
  {
    rule = f.rule;
    file = Policy.normalize f.file;
    line = f.line;
    ctx = ctx_of ~path:f.file ~line:f.line;
    note = f.message;
  }

let of_findings findings = List.map (entry_of_finding (context_cache ())) findings

let matches_ctx e ~ctx (f : Finding.t) =
  e.rule = f.Finding.rule
  && e.file = Policy.normalize f.Finding.file
  &&
  match e.ctx, ctx with
  | Some ec, Some fc -> ec = fc
  | _ -> e.line = f.Finding.line

let matches e (f : Finding.t) =
  matches_ctx e ~ctx:(context_hash ~path:f.Finding.file ~line:f.Finding.line) f

type split = {
  fresh : Finding.t list;  (** not in the baseline: these fail the lint *)
  baselined : Finding.t list;  (** grandfathered *)
  expired : entry list;  (** baseline entries that no longer match anything *)
}

(* One entry absorbs one finding. Context hashes can collide honestly
   (copy-pasted code flagged in two places), so candidate pairs are
   assigned greedily by line distance — the recorded line is the
   tiebreaker, not the matcher. *)
let apply t findings =
  let ctx_of = context_cache () in
  let fa = Array.of_list findings in
  let fctx =
    Array.map (fun (f : Finding.t) -> ctx_of ~path:f.Finding.file ~line:f.Finding.line) fa
  in
  let ea = Array.of_list t in
  let pairs = ref [] in
  Array.iteri
    (fun ei e ->
      Array.iteri
        (fun fi f ->
          if matches_ctx e ~ctx:fctx.(fi) f then
            pairs := (abs (e.line - f.Finding.line), ei, fi) :: !pairs)
        fa)
    ea;
  let e_used = Array.make (Array.length ea) false in
  let f_used = Array.make (Array.length fa) false in
  List.iter
    (fun (_, ei, fi) ->
      if (not e_used.(ei)) && not f_used.(fi) then begin
        e_used.(ei) <- true;
        f_used.(fi) <- true
      end)
    (List.sort compare !pairs);
  let fresh = ref [] and baselined = ref [] in
  Array.iteri
    (fun fi f -> if f_used.(fi) then baselined := f :: !baselined else fresh := f :: !fresh)
    fa;
  let expired = ref [] in
  Array.iteri (fun ei e -> if not e_used.(ei) then expired := e :: !expired) ea;
  { fresh = List.rev !fresh; baselined = List.rev !baselined; expired = List.rev !expired }

(* Expired entries come out of [apply] physically equal to the input's,
   so dropping them is a [memq] filter — order and duplicates (distinct
   physical entries with equal fields) survive intact. *)
let prune t findings =
  let split = apply t findings in
  (List.filter (fun e -> not (List.memq e split.expired)) t, split.expired)

(* ---- persistence ---- *)

let entry_to_json e =
  Json.Obj
    ([
       ("rule", Json.Str e.rule);
       ("file", Json.Str e.file);
       ("line", Json.Int e.line);
     ]
    @ (match e.ctx with Some c -> [ ("ctx", Json.Str c) ] | None -> [])
    @ [ ("note", Json.Str e.note) ])

let to_json t =
  Json.Obj [ ("version", Json.Int 2); ("entries", Json.List (List.map entry_to_json t)) ]

let entry_of_json j =
  let ( let* ) = Option.bind in
  let* rule = Option.bind (Json.member "rule" j) Json.get_str in
  let* file = Option.bind (Json.member "file" j) Json.get_str in
  let* line = Option.bind (Json.member "line" j) Json.get_int in
  let ctx = Option.bind (Json.member "ctx" j) Json.get_str in
  let note =
    Option.value ~default:"" (Option.bind (Json.member "note" j) Json.get_str)
  in
  Some { rule; file; line; ctx; note }

(* v1 files (no "version", entries without "ctx") parse unchanged —
   their entries simply match exactly. *)
let of_json j =
  match Option.bind (Json.member "entries" j) Json.get_list with
  | None -> Error "baseline: missing \"entries\" list"
  | Some items ->
      let entries = List.filter_map entry_of_json items in
      if List.length entries = List.length items then Ok entries
      else Error "baseline: malformed entry (need rule, file, line)"

let load ~path =
  if not (Sys.file_exists path) then Error (Fmt.str "no baseline file at %s" path)
  else
    match In_channel.with_open_text path In_channel.input_all with
    | text -> Result.bind (Json.of_string (String.trim text)) of_json
    | exception Sys_error m -> Error m

let save ~path t =
  Out_channel.with_open_text path (fun oc ->
      output_string oc (Json.to_string (to_json t));
      output_char oc '\n')
