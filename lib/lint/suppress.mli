(** In-source suppressions: [@@@ffault.lint.allow "rule", "why"].

    A floating attribute suppresses the rule for the whole file; an
    attribute attached to a value binding or expression suppresses only
    within that item's line span. The justification string is mandatory
    and must be non-blank; malformed suppressions (missing
    justification, unknown or meta rule, wrong payload shape) are
    reported as findings under the [suppression] meta rule. *)

val attr_name : string
(** ["ffault.lint.allow"] *)

type scope = File | Lines of int * int  (** inclusive line span *)

type t = {
  rule : string;
  justification : string;
  scope : scope;
  file : string;
  line : int;  (** line of the attribute itself *)
}

val covers : t -> Finding.t -> bool

val apply : t list -> Finding.t list -> Finding.t list * (Finding.t * t) list
(** Partition findings into (surviving, suppressed-with-their-reason). *)

val of_structure :
  file:string -> Parsetree.structure -> t list * Finding.t list
(** Collect the suppressions declared in a parsed implementation, plus
    findings for any malformed ones. *)
