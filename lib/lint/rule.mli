(** The rule registry: names, default severities, layers, and the
    metadata behind [--list-rules] and [--explain]. *)

type layer =
  | Ast  (** parsetree pass: always available *)
  | Typed  (** typed-tree pass: needs a fresh .cmt (see {!Cmt_loader}) *)
  | Fs  (** filesystem-level (mli-required) *)

val layer_to_string : layer -> string
(** ["ast"], ["typed"], ["fs"] — the ["layer"] field of lint.json. *)

type t = {
  name : string;
  severity : Finding.severity;
  summary : string;  (** one line; feeds [--list-rules] *)
  layer : layer;
  rationale : string;  (** full description; feeds [--explain] *)
  example : string;  (** an example finding line; feeds [--explain] *)
}

val substantive : t list
(** The checked invariants: eight parsetree/filesystem rules
    (raw-atomic, nondeterminism, toplevel-mutable, io-in-lib,
    catch-all, mli-required, obj-magic, effect-discipline) and three
    typed rules (poly-compare-abstract, alias-escape,
    domain-unsafe-capture). *)

val meta : t list
(** Findings produced by the machinery itself ([parse-error],
    [suppression], [cmt-missing]); never policy-scoped and not
    suppressible. *)

val all : t list
val names : string list
val find : string -> t option
val is_meta : string -> bool

val severity : string -> Finding.severity
(** Default severity for a rule name ([Error] for unknown names). *)

val layer : string -> layer
(** Layer for a rule name ([Ast] for unknown names). *)
