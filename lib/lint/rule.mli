(** The rule registry: names, default severities, one-line rationales. *)

type t = { name : string; severity : Finding.severity; summary : string }

val substantive : t list
(** The seven checked invariants (raw-atomic, nondeterminism,
    toplevel-mutable, io-in-lib, catch-all, mli-required, obj-magic). *)

val meta : t list
(** Findings produced by the machinery itself ([parse-error],
    [suppression]); never policy-scoped and not suppressible. *)

val all : t list
val names : string list
val find : string -> t option
val is_meta : string -> bool

val severity : string -> Finding.severity
(** Default severity for a rule name ([Error] for unknown names). *)
