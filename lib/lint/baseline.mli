(** The committed baseline file: grandfathered findings that are
    reported but do not fail the lint.

    Matching is exact on (rule, normalized file, line): editing a
    baselined region surfaces its finding again — deliberate pressure to
    fix rather than carry debt. Entries no longer matching any current
    finding are {e expired} and should be pruned (regenerate with
    [ffault lint --write-baseline]). *)

type entry = { rule : string; file : string; line : int; note : string }
type t = entry list

val empty : t
val of_findings : Finding.t list -> t
val matches : entry -> Finding.t -> bool

type split = {
  fresh : Finding.t list;  (** not in the baseline: these fail the lint *)
  baselined : Finding.t list;  (** grandfathered *)
  expired : entry list;  (** entries that no longer match anything *)
}

val apply : t -> Finding.t list -> split

val to_json : t -> Ffault_campaign.Json.t
val of_json : Ffault_campaign.Json.t -> (t, string) result
val load : path:string -> (t, string) result
val save : path:string -> t -> unit
