(** The committed baseline file: grandfathered findings that are
    reported but do not fail the lint.

    Matching is fuzzy on (rule, normalized file, context hash): the
    hash covers the trimmed ±2 lines around the finding, so a finding
    that merely {e moved} (edits elsewhere in the file shifted its line
    number) stays grandfathered, while an edit to the flagged region
    itself changes the context and surfaces the finding again —
    deliberate pressure to fix rather than carry debt. The recorded
    line is the tiebreaker when context hashes collide (copy-pasted
    code), and the exact matcher when either side has no hash (a v1
    baseline, or an unreadable file). Entries no longer matching any
    current finding are {e expired} and should be pruned (regenerate
    with [ffault lint --write-baseline]). *)

type entry = {
  rule : string;
  file : string;
  line : int;  (** where the finding was when baselined; tiebreaker *)
  ctx : string option;  (** {!context_hash} at baseline time *)
  note : string;
}

type t = entry list

val empty : t

val of_findings : Finding.t list -> t
(** Reads each finding's file to record its context hash ([ctx = None]
    if unreadable — such entries match exactly by line). *)

val context_radius : int
(** 2 — lines hashed on each side of the finding. *)

val context_hash : path:string -> line:int -> string option
(** 64-bit FNV-1a (stable across machines, unlike [Hashtbl.hash]) of
    the trimmed lines [line ± context_radius], as 16 hex digits.
    [None] if the file is unreadable or the line out of range. *)

val matches : entry -> Finding.t -> bool
(** Reads the finding's file to compare contexts; {!apply} amortizes
    that read across findings. *)

type split = {
  fresh : Finding.t list;  (** not in the baseline: these fail the lint *)
  baselined : Finding.t list;  (** grandfathered *)
  expired : entry list;  (** entries that no longer match anything *)
}

val apply : t -> Finding.t list -> split
(** One-to-one: each entry absorbs at most one finding, candidate pairs
    assigned nearest-line first. *)

val prune : t -> Finding.t list -> t * entry list
(** [(kept, dropped)]: the baseline with entries expired against the
    given findings removed, preserving order; behind
    [ffault lint --prune-baseline]. *)

val to_json : t -> Ffault_campaign.Json.t
(** Version 2; version-1 files (entries without [ctx]) still load. *)

val of_json : Ffault_campaign.Json.t -> (t, string) result
val load : path:string -> (t, string) result
val save : path:string -> t -> unit
