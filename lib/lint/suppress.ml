(* [@@@ffault.lint.allow "rule", "justification"] handling.

   A floating attribute ([@@@...] as its own structure item) suppresses
   the rule for the whole file. An attribute attached to a value binding
   or an expression ([@@...] / [@...]) suppresses only within that
   item's source span. A justification string is mandatory: a
   suppression without one (or naming an unknown rule) is itself
   reported under the [suppression] meta rule. *)

open Parsetree

let attr_name = "ffault.lint.allow"

type scope = File | Lines of int * int

type t = {
  rule : string;
  justification : string;
  scope : scope;
  file : string;
  line : int;  (* where the attribute itself sits, for reporting *)
}

let covers s (f : Finding.t) =
  s.rule = f.rule
  && s.file = f.file
  &&
  match s.scope with
  | File -> true
  | Lines (lo, hi) -> f.line >= lo && f.line <= hi

let apply sups findings =
  List.partition_map
    (fun f ->
      match List.find_opt (fun s -> covers s f) sups with
      | Some s -> Right (f, s)
      | None -> Left f)
    findings

(* ---- payload decoding ---- *)

let string_const e =
  match e.pexp_desc with
  | Pexp_constant (Pconst_string (s, _, _)) -> Some s
  | _ -> None

(* Accepted payload shapes: "rule", "just" (tuple) and "rule" "just"
   (juxtaposition parses as application). A bare "rule" is a
   missing-justification error. *)
let decode_payload e =
  match e.pexp_desc with
  | Pexp_tuple [ a; b ] -> (
      match (string_const a, string_const b) with
      | Some rule, Some just -> Ok (rule, just)
      | _ -> Error "expected two string literals: a rule name and a justification")
  | Pexp_apply (fn, [ (Asttypes.Nolabel, arg) ]) -> (
      match (string_const fn, string_const arg) with
      | Some rule, Some just -> Ok (rule, just)
      | _ -> Error "expected two string literals: a rule name and a justification")
  | Pexp_constant (Pconst_string (rule, _, _)) ->
      Error
        (Fmt.str
           "suppressing %S requires a justification string: [@@@@@@%s %S, \"why\"]" rule
           attr_name rule)
  | _ -> Error "expected a rule name and a justification, both string literals"

let is_blank s = String.trim s = ""

let decode ~file ~scope (attr : attribute) =
  if attr.attr_name.txt <> attr_name then None
  else
    let line = attr.attr_loc.Location.loc_start.Lexing.pos_lnum in
    let fail msg =
      Some
        (Error
           (Finding.v ~rule:"suppression" ~severity:(Rule.severity "suppression") ~file
              ~line
              ~col:
                (attr.attr_loc.Location.loc_start.Lexing.pos_cnum
                - attr.attr_loc.Location.loc_start.Lexing.pos_bol)
              msg))
    in
    match attr.attr_payload with
    | PStr [ { pstr_desc = Pstr_eval (e, _); _ } ] -> (
        match decode_payload e with
        | Error msg -> fail msg
        | Ok (rule, just) ->
            if Rule.find rule = None then
              fail (Fmt.str "unknown rule %S (known: %s)" rule
                      (String.concat ", " Rule.names))
            else if Rule.is_meta rule then
              fail (Fmt.str "rule %S cannot be suppressed" rule)
            else if is_blank just then
              fail (Fmt.str "empty justification for rule %S" rule)
            else Some (Ok { rule; justification = just; scope; file; line }))
    | _ ->
        fail
          (Fmt.str "malformed payload: use [@@@@@@%s \"rule\", \"justification\"]"
             attr_name)

(* ---- collection over a parsetree ---- *)

let lines_of_loc (loc : Location.t) =
  (loc.loc_start.Lexing.pos_lnum, loc.loc_end.Lexing.pos_lnum)

let of_structure ~file structure =
  let sups = ref [] in
  let errs = ref [] in
  let record ~scope attr =
    match decode ~file ~scope attr with
    | None -> ()
    | Some (Ok s) -> sups := s :: !sups
    | Some (Error f) -> errs := f :: !errs
  in
  let it =
    {
      Ast_iterator.default_iterator with
      structure_item =
        (fun it item ->
          (match item.pstr_desc with
          | Pstr_attribute attr -> record ~scope:File attr
          | _ -> ());
          Ast_iterator.default_iterator.structure_item it item);
      value_binding =
        (fun it vb ->
          let lo, hi = lines_of_loc vb.pvb_loc in
          List.iter (record ~scope:(Lines (lo, hi))) vb.pvb_attributes;
          Ast_iterator.default_iterator.value_binding it vb);
      expr =
        (fun it e ->
          (if e.pexp_attributes <> [] then
             let lo, hi = lines_of_loc e.pexp_loc in
             List.iter (record ~scope:(Lines (lo, hi))) e.pexp_attributes);
          Ast_iterator.default_iterator.expr it e);
    }
  in
  it.structure it structure;
  (List.rev !sups, List.rev !errs)
