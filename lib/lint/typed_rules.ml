(* The Tast_iterator pass behind the three typed rules. Where the
   parsetree rules match surface syntax, this pass works on resolved
   identities: every [Texp_ident] carries the value description of the
   thing it denotes, and that description's [val_loc] names the .mli the
   value was declared in — the same for [Atomic.set], [A.set] after
   [module A = Atomic], a bare [set] after [open Atomic], and
   [W.set] after [include Atomic]. Matching on (declaration file, value
   name) is therefore alias-proof by construction.

   Like {!Ast_rules}, findings come back unfiltered except for one
   deliberate asymmetry: [alias-escape] consults the *underlying* rule's
   policy (an aliased clock read where nondeterminism is not active is
   not a finding), because the driver can only scope the alias-escape
   rule itself. *)

open Typedtree

(* ---- resolved-identity tables: (declaring .mli, value names) ---- *)

(* Names as in Ast_rules; the declaring interface replaces the path. *)
let atomic_mutators =
  [ "compare_and_set"; "exchange"; "set"; "fetch_and_add"; "incr"; "decr" ]

let io_stdlib =
  [
    "print_string"; "print_bytes"; "print_int"; "print_char"; "print_float";
    "print_endline"; "print_newline"; "prerr_string"; "prerr_bytes"; "prerr_int";
    "prerr_char"; "prerr_float"; "prerr_endline"; "prerr_newline"; "exit";
  ]

let io_unix_sockets =
  [
    "socket"; "bind"; "listen"; "accept"; "connect"; "select"; "read"; "write";
    "write_substring"; "single_write"; "sendto"; "recvfrom";
  ]

(* underlying rule, declaring interface, names ([None] = every value
   declared there). *)
let ident_sets =
  [
    ("raw-atomic", "atomic.mli", Some atomic_mutators);
    ("nondeterminism", "random.mli", None);
    ("nondeterminism", "sys.mli", Some [ "time" ]);
    ("nondeterminism", "unix.mli", Some [ "gettimeofday"; "time" ]);
    ("nondeterminism", "hashtbl.mli", Some [ "randomize" ]);
    ("io-in-lib", "stdlib.mli", Some io_stdlib);
    ("io-in-lib", "printf.mli", Some [ "printf"; "eprintf" ]);
    ("io-in-lib", "format.mli",
     Some [ "printf"; "eprintf"; "print_string"; "print_newline" ]);
    ("io-in-lib", "fmt.mli", Some [ "pr"; "epr" ]);
    ("io-in-lib", "unix.mli", Some io_unix_sockets);
  ]

(* Types that own their comparison semantics: structural compare on them
   is representational, not semantic, and breaks the moment they gain
   closures or mutable internals. Matched on the normalized head path of
   the instantiated type (module aliases local to the file are resolved
   first; "__"-mangled unit names are unmangled). *)
let semantic_types =
  [
    "Value.t"; "History.t";
    (* ops embed Value.t payloads, so structural compare inherits every
       hazard Value.t has *)
    "Op.t";
    (* identity types with their own compare — today ints, but the
       representation is theirs to change *)
    "Obj_id.t"; "Fault_kind.t";
    (* specs carry an int64 seed and kind lists; Spec.equal is the
       semantic (and boxing-aware) comparison *)
    "Spec.t";
    (* a private int whose equal is physical by design — spell it *)
    "Packed.t";
  ]

(* Polymorphic entry points whose first parameter type decides the
   hazard: (declaring interface, name). *)
let poly_compare_fns =
  [
    ("stdlib.mli", "="); ("stdlib.mli", "<>"); ("stdlib.mli", "compare");
    ("hashtbl.mli", "hash"); ("list.mli", "mem");
  ]

(* Mutations of a captured target inside a Domain.spawn closure:
   (declaring interface, name, what to call it). *)
let mutation_fns =
  [
    ("stdlib.mli", ":=", "ref");
    ("stdlib.mli", "incr", "ref");
    ("stdlib.mli", "decr", "ref");
    ("array.mli", "set", "array");
    ("array.mli", "unsafe_set", "array");
    ("array.mli", "fill", "array");
    ("array.mli", "blit", "array");
    ("bytes.mli", "set", "bytes");
    ("bytes.mli", "unsafe_set", "bytes");
  ]

(* ---- resolution helpers ---- *)

let decl_file (vd : Types.value_description) =
  Filename.basename vd.Types.val_loc.Location.loc_start.Lexing.pos_fname

let resolve path vd = (decl_file vd, Path.last path)

(* "Ffault_objects__Value.t" -> "Ffault_objects.Value.t" *)
let unmangle s =
  let buf = Buffer.create (String.length s) in
  let n = String.length s in
  let i = ref 0 in
  while !i < n do
    if !i + 1 < n && s.[!i] = '_' && s.[!i + 1] = '_' then begin
      Buffer.add_char buf '.';
      i := !i + 2
    end
    else begin
      Buffer.add_char buf s.[!i];
      incr i
    end
  done;
  Buffer.contents buf

let ends_with ~suffix s =
  let ls = String.length s and lx = String.length suffix in
  ls >= lx && String.sub s (ls - lx) lx = suffix

(* ---- the pass ---- *)

let check ?(policy = Policy.default) ~file (cmt : Cmt_format.cmt_infos) =
  match cmt.Cmt_format.cmt_annots with
  | Cmt_format.Implementation structure ->
      let findings = ref [] in
      let emit ?severity ~rule loc message =
        let severity = Option.value severity ~default:(Rule.severity rule) in
        findings := Finding.of_location ~rule ~severity ~file loc message :: !findings
      in

      (* Local module aliases (module V = Ffault_objects.Value), so a
         type written V.t still matches the semantic-type table. *)
      let aliases = Hashtbl.create 8 in
      let record_alias (mb : module_binding) =
        match (mb.mb_id, mb.mb_expr.mod_desc) with
        | Some id, Tmod_ident (p, _) -> Hashtbl.replace aliases (Ident.name id) (Path.name p)
        | _ -> ()
      in
      let rec resolve_head depth name =
        if depth > 8 then name
        else
          match String.index_opt name '.' with
          | None -> name
          | Some i -> (
              let head = String.sub name 0 i in
              let rest = String.sub name i (String.length name - i) in
              match Hashtbl.find_opt aliases head with
              | Some target -> resolve_head (depth + 1) (target ^ rest)
              | None -> name)
      in
      let semantic_match path =
        let n = unmangle (resolve_head 0 (Path.name path)) in
        List.find_opt
          (fun t -> n = t || ends_with ~suffix:("." ^ t) n)
          semantic_types
      in
      (* Walk the instantiated type: the hazard may sit in a parameter
         (Value.t list is still compared structurally). *)
      let rec scan_type depth ty =
        if depth <= 0 then None
        else
          match Types.get_desc ty with
          | Types.Tconstr (p, params, _) -> (
              match semantic_match p with
              | Some _ as hit -> hit
              | None -> List.find_map (scan_type (depth - 1)) params)
          | Types.Ttuple ts -> List.find_map (scan_type (depth - 1)) ts
          | _ -> None
      in
      let first_param ty =
        match Types.get_desc ty with
        | Types.Tarrow (_, a, _, _) -> Some a
        | _ -> None
      in

      (* canonical rendering of a resolved identity, for messages *)
      let canonical (decl, name) =
        match decl with
        | "stdlib.mli" -> name
        | d -> String.capitalize_ascii (Filename.remove_extension d) ^ "." ^ name
      in
      let surface_of lid =
        let rec flat = function
          | Longident.Lident s -> [ s ]
          | Longident.Ldot (l, s) -> flat l @ [ s ]
          | Longident.Lapply _ -> []
        in
        String.concat "." (flat lid)
      in

      let check_ident (e : expression) path lid vd =
        let decl = decl_file vd in
        let name = Path.last path in
        (* alias-escape: resolved identity in a guarded set, surface
           syntax invisible to the parsetree pass *)
        (match
           List.find_opt
             (fun (_, d, names) ->
               d = decl
               && match names with None -> true | Some ns -> List.mem name ns)
             ident_sets
         with
        | Some (rule, _, _)
          when (not (Ast_rules.flags_ident lid.Location.txt))
               && Policy.applies policy ~rule ~file ->
            emit ~rule:"alias-escape" e.exp_loc
              (Fmt.str
                 "this identifier resolves to %s (%s territory) though written as \
                  `%s': aliasing, open and include do not evade the typed lint \
                  \xe2\x80\x94 fix it as the %s rule directs, or allowlist with a \
                  justification"
                 (canonical (decl, name))
                 rule
                 (surface_of lid.Location.txt)
                 rule)
        | _ -> ());
        (* poly-compare-abstract: a polymorphic comparison entry point
           instantiated (applied or passed) at a semantic type *)
        if List.mem (decl, name) poly_compare_fns then
          match Option.bind (first_param e.exp_type) (scan_type 4) with
          | Some semantic ->
              let owner =
                match String.index_opt semantic '.' with
                | Some i -> String.sub semantic 0 i
                | None -> semantic
              in
              emit ~rule:"poly-compare-abstract" e.exp_loc
                (Fmt.str
                   "polymorphic %s instantiated at %s: structural comparison is \
                    representational and breaks the moment the type gains closures \
                    or mutable internals; use %s.equal/%s.compare (semantic, \
                    committed in the interface)"
                   (canonical (decl, name))
                   semantic owner owner)
          | None -> ()
      in

      (* domain-unsafe-capture: mutations of captured state inside a
         Domain.spawn closure — the literal [Domain.spawn (fun () -> ...)]
         and the named form [let work () = ... in Domain.spawn work]. The
         named form is resolved through the spawn argument's value
         description, whose [val_loc] points back at the binding site;
         the pre-pass below indexes every function-valued binding in the
         file by that site. *)
      let bound_closures = Hashtbl.create 16 in
      let pos_key (loc : Location.t) =
        (loc.Location.loc_start.Lexing.pos_fname, loc.Location.loc_start.Lexing.pos_cnum)
      in
      let record_closure (vb : value_binding) =
        match vb.vb_expr.exp_desc with
        | Texp_function _ ->
            Hashtbl.replace bound_closures (pos_key vb.vb_pat.pat_loc) vb.vb_expr
        | _ -> ()
      in
      let closure_contains (closure : expression) (loc : Location.t) =
        let c = closure.exp_loc in
        loc.Location.loc_start.Lexing.pos_fname = c.Location.loc_start.Lexing.pos_fname
        && loc.Location.loc_start.Lexing.pos_cnum >= c.Location.loc_start.Lexing.pos_cnum
        && loc.Location.loc_end.Lexing.pos_cnum <= c.Location.loc_end.Lexing.pos_cnum
      in
      let capture_severity =
        if Policy.has_prefix ~prefix:"lib/sim" file then Some Finding.Error else None
      in
      let flag_capture closure kind loc (target : expression) =
        match target.exp_desc with
        | Texp_ident (tp, _, tvd) ->
            if not (closure_contains closure tvd.Types.val_loc) then
              emit ?severity:capture_severity ~rule:"domain-unsafe-capture" loc
                (Fmt.str
                   "%s `%s' is allocated outside this Domain.spawn closure and \
                    mutated inside it: unsynchronized cross-domain mutation is a \
                    data race under the OCaml memory model; use Atomic, keep the \
                    state domain-local, or pass results through Domain.join"
                   kind (Path.last tp))
        | _ -> ()
      in
      let scan_closure (closure : expression) =
        let sub =
          {
            Tast_iterator.default_iterator with
            expr =
              (fun it e ->
                (match e.exp_desc with
                | Texp_apply
                    ( { exp_desc = Texp_ident (p, _, vd); _ },
                      (_, Some target) :: _ ) -> (
                    let key = (decl_file vd, Path.last p) in
                    match
                      List.find_opt (fun (d, n, _) -> (d, n) = key) mutation_fns
                    with
                    | Some (_, _, kind) -> flag_capture closure kind e.exp_loc target
                    | None -> ())
                | Texp_setfield (target, _, lbl, _) ->
                    flag_capture closure
                      (Fmt.str "mutable field `%s' of record" lbl.Types.lbl_name)
                      e.exp_loc target
                | _ -> ());
                Tast_iterator.default_iterator.expr it e);
          }
        in
        sub.expr sub closure
      in
      let check_spawn (e : expression) =
        match e.exp_desc with
        | Texp_apply ({ exp_desc = Texp_ident (p, _, vd); _ }, args)
          when resolve p vd = ("domain.mli", "spawn") -> (
            match
              List.find_map
                (function Asttypes.Nolabel, Some a -> Some a | _ -> None)
                args
            with
            | Some ({ exp_desc = Texp_function _; _ } as closure) ->
                scan_closure closure
            | Some { exp_desc = Texp_ident (_, _, avd); _ } -> (
                (* a closure bound to a name before the spawn does not
                   evade the rule: follow the name to its definition *)
                match Hashtbl.find_opt bound_closures (pos_key avd.Types.val_loc) with
                | Some closure -> scan_closure closure
                | None -> ())
            | _ -> ())
        | _ -> ()
      in

      let it =
        {
          Tast_iterator.default_iterator with
          module_binding =
            (fun it mb ->
              record_alias mb;
              Tast_iterator.default_iterator.module_binding it mb);
          expr =
            (fun it e ->
              (match e.exp_desc with
              | Texp_ident (path, lid, vd) -> check_ident e path lid vd
              | Texp_apply _ -> check_spawn e
              | _ -> ());
              Tast_iterator.default_iterator.expr it e);
        }
      in
      (* module aliases can appear after their uses in the iterator
         order only within mutually recursive modules; a first pass over
         top-level structure items keeps the common case exact *)
      List.iter
        (fun item ->
          match item.str_desc with
          | Tstr_module mb -> record_alias mb
          | Tstr_recmodule mbs -> List.iter record_alias mbs
          | _ -> ())
        structure.str_items;
      (* pre-pass for named closures: a binding may appear after the
         spawn that uses it (mutual recursion) and local lets are below
         the top level, so the whole tree is indexed first *)
      let collect =
        {
          Tast_iterator.default_iterator with
          value_binding =
            (fun it vb ->
              record_closure vb;
              Tast_iterator.default_iterator.value_binding it vb);
        }
      in
      collect.structure collect structure;
      it.structure it structure;
      List.rev !findings
  | _ -> []
