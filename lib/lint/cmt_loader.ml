(* Map source paths to the .cmt files dune left under _build, verify
   freshness against the source digest, and degrade gracefully: every
   failure mode is a [status] the driver turns into a note (--typed=auto)
   or a cmt-missing finding (--typed=on) — never an exception.

   The index is built from filenames alone (no cmt is read until a
   source asks for it): a cmt at
     _build/default/lib/runtime/.ffault_runtime.objs/byte/ffault_runtime__Cancel.cmt
   is keyed by the directory with the dot-dirs dropped (lib/runtime) and
   the unit name after the last "__" (Cancel) — which is exactly
   (dirname, capitalized basename) of lib/runtime/cancel.ml. Freshness
   is the cmt's recorded source digest against the file on disk, so a
   stale build can never smuggle findings for code that no longer
   exists, or silently bless code that was edited after the build. *)

type status =
  | Typed of Cmt_format.cmt_infos
  | No_cmt
  | Stale of string
  | Unreadable of string

type t = { index : (string * string, string) Hashtbl.t; build_dir : string }

let default_build_dir = Filename.concat "_build" "default"

(* lib/runtime/.ffault_runtime.objs/byte -> lib/runtime: a dot-segment
   is dune bookkeeping, and so is the byte/native flavour below it. *)
let logical_dir rel =
  String.split_on_char '/' rel
  |> List.filter (fun s ->
         s <> "" && s <> "." && s.[0] <> '.' && s <> "byte" && s <> "native")
  |> String.concat "/"

let unit_name_of_cmt path =
  let base = Filename.remove_extension (Filename.basename path) in
  let rec last = function [ x ] -> x | _ :: tl -> last tl | [] -> base in
  let segs =
    (* "ffault_runtime__Cancel" / "dune__exe__Main" -> last "__" segment *)
    let out = ref [] and buf = Buffer.create 16 in
    let flush () =
      if Buffer.length buf > 0 then out := Buffer.contents buf :: !out;
      Buffer.clear buf
    in
    let n = String.length base in
    let i = ref 0 in
    while !i < n do
      if !i + 1 < n && base.[!i] = '_' && base.[!i + 1] = '_' then begin
        flush ();
        i := !i + 2
      end
      else begin
        Buffer.add_char buf base.[!i];
        incr i
      end
    done;
    flush ();
    List.rev !out
  in
  String.capitalize_ascii (last segs)

let strip_prefix ~prefix s =
  let lp = String.length prefix and ls = String.length s in
  if lp <= ls && String.sub s 0 lp = prefix then String.sub s lp (ls - lp) else s

let create ?(build_dir = default_build_dir) () =
  if not (Sys.file_exists build_dir && Sys.is_directory build_dir) then None
  else begin
    let index = Hashtbl.create 64 in
    let rec walk path =
      match Sys.is_directory path with
      | true -> Array.iter (fun e -> walk (Filename.concat path e)) (Sys.readdir path)
      | false ->
          if Filename.check_suffix path ".cmt" then begin
            let rel = strip_prefix ~prefix:(build_dir ^ "/") path in
            let dir = Policy.normalize (logical_dir (Filename.dirname rel)) in
            let key = (dir, unit_name_of_cmt path) in
            (* first wins: with byte and native flavours both present the
               contents are equivalent *)
            if not (Hashtbl.mem index key) then Hashtbl.add index key path
          end
      | exception Sys_error _ -> ()
    in
    walk build_dir;
    if Hashtbl.length index = 0 then None else Some { index; build_dir }
  end

let lookup t source =
  let norm = Policy.normalize source in
  let dir = match Filename.dirname norm with "." -> "" | d -> d in
  let unit = String.capitalize_ascii (Filename.remove_extension (Filename.basename norm)) in
  Hashtbl.find_opt t.index (dir, unit)

let for_source t source =
  if not (Filename.check_suffix source ".ml") then No_cmt
  else
    match lookup t source with
    | None -> No_cmt
    | Some cmt_path -> (
        match Cmt_format.read_cmt cmt_path with
        | exception (Sys_error _ | End_of_file | Failure _) ->
            Unreadable (Fmt.str "unreadable cmt at %s" cmt_path)
        | exception (Cmt_format.Error _ | Cmi_format.Error _) ->
            Unreadable (Fmt.str "not a cmt (or wrong compiler version) at %s" cmt_path)
        | cmt -> (
            match cmt.Cmt_format.cmt_source_digest with
            | None -> Stale (Fmt.str "cmt at %s records no source digest" cmt_path)
            | Some recorded -> (
                match Digest.file source with
                | exception Sys_error m -> Unreadable (Fmt.str "cannot digest source: %s" m)
                | actual ->
                    if Digest.equal recorded actual then Typed cmt
                    else
                      Stale
                        (Fmt.str
                           "source changed since %s was built (rebuild: dune build)"
                           cmt_path))))

let describe ~build_dir = function
  | Typed _ -> None
  | No_cmt ->
      Some
        (Fmt.str "no cmt found under %s (build first: dune build); typed rules \
                  skipped for this file" build_dir)
  | Stale m | Unreadable m ->
      Some (Fmt.str "%s; typed rules skipped for this file" m)

let build_dir t = t.build_dir
