(** The typed-tree rules, as one {!Tast_iterator} pass over a cmt's
    typedtree.

    Covers [alias-escape] (resolved identities in the raw-atomic /
    nondeterminism / io-in-lib sets whose surface syntax evaded the
    parsetree pass), [poly-compare-abstract] (polymorphic [=]/[<>]/
    [compare]/[Hashtbl.hash]/[List.mem] instantiated at a lib-owned
    semantic type — seeded with [Value.t] and [History.t]), and
    [domain-unsafe-capture] (a ref, mutable field or non-atomic array
    allocated outside a [Domain.spawn] closure and mutated inside it;
    warning, escalated to error under [lib/sim]).

    Findings come back unfiltered like {!Ast_rules.check}, with one
    exception: [alias-escape] consults the {e underlying} rule's policy
    ([policy]), because only this pass knows which underlying rule an
    escape belongs to. The driver still scopes and suppresses the
    result as usual. *)

val check :
  ?policy:Policy.t -> file:string -> Cmt_format.cmt_infos -> Finding.t list
(** Findings in source order; [[]] when the cmt is not an
    implementation (packs, interfaces). [file] is the source path used
    for findings and policy decisions. *)

val semantic_types : string list
(** The seeded table behind [poly-compare-abstract] (["Value.t"],
    ["History.t"]), matched on the normalized head of the instantiated
    type with file-local module aliases resolved. *)
