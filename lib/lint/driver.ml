(* Parse every .ml/.mli, run the AST rules, apply policy and
   suppressions, and add the filesystem-level mli-required check. *)

type outcome = {
  findings : Finding.t list;
  suppressed : (Finding.t * Suppress.t) list;
}

let no_outcome = { findings = []; suppressed = [] }

(* ---- parsing ---- *)

let parse_finding ~file loc msg =
  Finding.of_location ~rule:"parse-error" ~severity:(Rule.severity "parse-error") ~file
    loc msg

let with_lexbuf ~file source k =
  let lexbuf = Lexing.from_string source in
  Lexing.set_filename lexbuf file;
  match k lexbuf with
  | v -> Ok v
  | exception Syntaxerr.Error err ->
      Error (parse_finding ~file (Syntaxerr.location_of_error err) "syntax error")
  | exception Lexer.Error (_, loc) -> Error (parse_finding ~file loc "lexing error")

let parse_impl ~file source = with_lexbuf ~file source Parse.implementation
let parse_intf ~file source = with_lexbuf ~file source Parse.interface

(* ---- linting one source ---- *)

let scoped policy file findings =
  List.filter (fun (f : Finding.t) -> Policy.applies policy ~rule:f.rule ~file) findings

let lint_impl_source ?(policy = Policy.default) ~file source =
  match parse_impl ~file source with
  | Error f -> { no_outcome with findings = [ f ] }
  | Ok structure ->
      let raw = Ast_rules.check ~file structure in
      let sups, sup_errors = Suppress.of_structure ~file structure in
      let raw = scoped policy file raw in
      let findings, suppressed = Suppress.apply sups raw in
      { findings = findings @ sup_errors; suppressed }

let lint_intf_source ?policy:(_ = Policy.default) ~file source =
  match parse_intf ~file source with
  | Error f -> { no_outcome with findings = [ f ] }
  | Ok _ -> no_outcome

(* ---- file collection ---- *)

let skip_dirs = [ "_build"; "_campaigns"; "_opam"; ".git" ]

let is_source f =
  Filename.check_suffix f ".ml" || Filename.check_suffix f ".mli"

let collect_files paths =
  let out = ref [] in
  let rec walk path =
    if Sys.file_exists path then
      if Sys.is_directory path then
        if not (List.mem (Filename.basename path) skip_dirs) then
          Array.iter
            (fun entry -> walk (Filename.concat path entry))
            (Sys.readdir path)
        else ()
      else if is_source path then out := path :: !out
  in
  List.iter walk paths;
  List.sort_uniq String.compare !out

(* ---- mli-required (filesystem-level) ---- *)

let mli_required ~policy files =
  List.filter_map
    (fun file ->
      if
        Filename.check_suffix file ".ml"
        && Policy.applies policy ~rule:"mli-required" ~file
        && not (List.mem (file ^ "i") files || Sys.file_exists (file ^ "i"))
      then
        Some
          (Finding.v ~rule:"mli-required" ~severity:(Rule.severity "mli-required")
             ~file ~line:1 ~col:0
             (Fmt.str
                "%s has no interface: add %si so the module's surface is committed \
                 and reviewable"
                (Filename.basename file) (Filename.basename file)))
      else None)
    files

(* ---- the whole run ---- *)

type result = {
  files : int;
  findings : Finding.t list;
  suppressed : (Finding.t * Suppress.t) list;
}

let read_file file =
  match In_channel.with_open_text file In_channel.input_all with
  | source -> Ok source
  | exception Sys_error m -> Error m

let rule_enabled rules (f : Finding.t) =
  match rules with
  | None -> true
  | Some rs -> List.mem f.rule rs || Rule.is_meta f.rule

let run ?rules ?(policy = Policy.default) paths =
  let files = collect_files paths in
  let outcomes =
    List.map
      (fun file ->
        match read_file file with
        | Error m ->
            {
              no_outcome with
              findings =
                [
                  Finding.v ~rule:"parse-error" ~severity:Finding.Error ~file ~line:1
                    ~col:0 (Fmt.str "cannot read: %s" m);
                ];
            }
        | Ok source ->
            if Filename.check_suffix file ".ml" then
              lint_impl_source ~policy ~file source
            else lint_intf_source ~policy ~file source)
      files
  in
  let findings =
    List.concat_map (fun (o : outcome) -> o.findings) outcomes
    @ mli_required ~policy files
  in
  let suppressed = List.concat_map (fun (o : outcome) -> o.suppressed) outcomes in
  {
    files = List.length files;
    findings = List.sort Finding.compare (List.filter (rule_enabled rules) findings);
    suppressed;
  }
