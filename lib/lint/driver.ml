(* Parse every .ml/.mli, run the AST rules, merge the typed-tree rules
   for files whose cmt is fresh (Cmt_loader + Typed_rules), apply policy
   and suppressions, and add the filesystem-level mli-required check. *)

type outcome = {
  findings : Finding.t list;
  suppressed : (Finding.t * Suppress.t) list;
}

type typed_mode = Typed_off | Typed_auto | Typed_on

let no_outcome = { findings = []; suppressed = [] }

(* ---- parsing ---- *)

let parse_finding ~file loc msg =
  Finding.of_location ~rule:"parse-error" ~severity:(Rule.severity "parse-error") ~file
    loc msg

let with_lexbuf ~file source k =
  let lexbuf = Lexing.from_string source in
  Lexing.set_filename lexbuf file;
  match k lexbuf with
  | v -> Ok v
  | exception Syntaxerr.Error err ->
      Error (parse_finding ~file (Syntaxerr.location_of_error err) "syntax error")
  | exception Lexer.Error (_, loc) -> Error (parse_finding ~file loc "lexing error")

let parse_impl ~file source = with_lexbuf ~file source Parse.implementation
let parse_intf ~file source = with_lexbuf ~file source Parse.interface

(* ---- linting one source ---- *)

let scoped policy file findings =
  List.filter (fun (f : Finding.t) -> Policy.applies policy ~rule:f.rule ~file) findings

let lint_impl_source ?(policy = Policy.default) ?(typed = []) ~file source =
  match parse_impl ~file source with
  | Error f -> { no_outcome with findings = [ f ] }
  | Ok structure ->
      let raw = Ast_rules.check ~file structure @ typed in
      let sups, sup_errors = Suppress.of_structure ~file structure in
      let raw = scoped policy file raw in
      let findings, suppressed = Suppress.apply sups raw in
      { findings = findings @ sup_errors; suppressed }

let lint_intf_source ?policy:(_ = Policy.default) ~file source =
  match parse_intf ~file source with
  | Error f -> { no_outcome with findings = [ f ] }
  | Ok _ -> no_outcome

(* ---- file collection ---- *)

let skip_dirs = [ "_build"; "_campaigns"; "_opam"; ".git" ]

let is_source f =
  Filename.check_suffix f ".ml" || Filename.check_suffix f ".mli"

let collect_files paths =
  let out = ref [] in
  let rec walk path =
    if Sys.file_exists path then
      if Sys.is_directory path then
        if not (List.mem (Filename.basename path) skip_dirs) then
          Array.iter
            (fun entry -> walk (Filename.concat path entry))
            (Sys.readdir path)
        else ()
      else if is_source path then out := path :: !out
  in
  List.iter walk paths;
  List.sort_uniq String.compare !out

(* ---- mli-required (filesystem-level) ---- *)

let mli_required ~policy files =
  List.filter_map
    (fun file ->
      if
        Filename.check_suffix file ".ml"
        && Policy.applies policy ~rule:"mli-required" ~file
        && not (List.mem (file ^ "i") files || Sys.file_exists (file ^ "i"))
      then
        Some
          (Finding.v ~rule:"mli-required" ~severity:(Rule.severity "mli-required")
             ~file ~line:1 ~col:0
             (Fmt.str
                "%s has no interface: add %si so the module's surface is committed \
                 and reviewable"
                (Filename.basename file) (Filename.basename file)))
      else None)
    files

(* ---- the whole run ---- *)

type result = {
  files : int;
  typed_files : int;
  findings : Finding.t list;
  suppressed : (Finding.t * Suppress.t) list;
  notes : (string * string) list;
}

let read_file file =
  match In_channel.with_open_text file In_channel.input_all with
  | source -> Ok source
  | exception Sys_error m -> Error m

let rule_enabled rules (f : Finding.t) =
  match rules with
  | None -> true
  | Some rs -> List.mem f.rule rs || Rule.is_meta f.rule

(* The typed half of one file: its findings (merged into the outcome
   pre-policy, so scoping and suppressions treat both layers the same),
   or how it degraded. Under auto a degraded file is a note; under on it
   is a cmt-missing finding, so a build regression cannot silently
   shrink coverage in CI. *)
type typed_file =
  | T_skip
  | T_findings of Finding.t list
  | T_note of string
  | T_missing of Finding.t

let typed_for_file ~mode ~loader ~build_dir ~policy file =
  if mode = Typed_off || not (Filename.check_suffix file ".ml") then T_skip
  else
    let status =
      match loader with
      | Some l -> Cmt_loader.for_source l file
      | None -> Cmt_loader.No_cmt
    in
    match status with
    | Cmt_loader.Typed cmt -> T_findings (Typed_rules.check ~policy ~file cmt)
    | degraded -> (
        let msg =
          Option.value ~default:"typed rules skipped"
            (Cmt_loader.describe ~build_dir degraded)
        in
        match mode with
        | Typed_on ->
            T_missing
              (Finding.v ~rule:"cmt-missing" ~severity:(Rule.severity "cmt-missing")
                 ~file ~line:1 ~col:0 msg)
        | _ -> T_note msg)

let run ?rules ?(policy = Policy.default) ?(typed = Typed_auto)
    ?(build_dir = Cmt_loader.default_build_dir) paths =
  let files = collect_files paths in
  let loader = if typed = Typed_off then None else Cmt_loader.create ~build_dir () in
  (* auto: the typed layer exists only when a built tree does *)
  let mode = if typed = Typed_auto && loader = None then Typed_off else typed in
  let typed_files = ref 0 in
  let notes = ref [] in
  let outcomes =
    List.map
      (fun file ->
        let typed_findings =
          match typed_for_file ~mode ~loader ~build_dir ~policy file with
          | T_skip -> []
          | T_findings fs ->
              incr typed_files;
              fs
          | T_note msg ->
              notes := (file, msg) :: !notes;
              []
          | T_missing f -> [ f ]
        in
        match read_file file with
        | Error m ->
            {
              no_outcome with
              findings =
                [
                  Finding.v ~rule:"parse-error" ~severity:Finding.Error ~file ~line:1
                    ~col:0 (Fmt.str "cannot read: %s" m);
                ];
            }
        | Ok source ->
            if Filename.check_suffix file ".ml" then
              lint_impl_source ~policy ~typed:typed_findings ~file source
            else lint_intf_source ~policy ~file source)
      files
  in
  let findings =
    List.concat_map (fun (o : outcome) -> o.findings) outcomes
    @ mli_required ~policy files
  in
  let suppressed = List.concat_map (fun (o : outcome) -> o.suppressed) outcomes in
  {
    files = List.length files;
    typed_files = !typed_files;
    findings = List.sort Finding.compare (List.filter (rule_enabled rules) findings);
    suppressed;
    notes = List.rev !notes;
  }
