(* The Ast_iterator pass behind the six syntax-level rules. Findings
   come back unfiltered: the driver applies {!Policy} scoping and
   {!Suppress} afterwards, so this module stays a pure function of the
   parsetree. *)

open Parsetree

(* Longident.flatten raises on functor applications; be total. *)
let rec flatten = function
  | Longident.Lident s -> [ s ]
  | Longident.Ldot (l, s) -> flatten l @ [ s ]
  | Longident.Lapply _ -> []

(* [Stdlib.Atomic.set] and [Atomic.set] are the same primitive. *)
let strip_stdlib = function "Stdlib" :: rest -> rest | path -> path

(* ---- rule tables ---- *)

let atomic_mutators =
  [ "compare_and_set"; "exchange"; "set"; "fetch_and_add"; "incr"; "decr" ]

let nondet_idents =
  [
    [ "Sys"; "time" ];
    [ "Unix"; "gettimeofday" ];
    [ "Unix"; "time" ];
    [ "Hashtbl"; "randomize" ];
    [ "Random"; "self_init" ];
  ]

let io_idents =
  [
    [ "print_string" ]; [ "print_bytes" ]; [ "print_int" ]; [ "print_char" ];
    [ "print_float" ]; [ "print_endline" ]; [ "print_newline" ];
    [ "prerr_string" ]; [ "prerr_bytes" ]; [ "prerr_int" ]; [ "prerr_char" ];
    [ "prerr_float" ]; [ "prerr_endline" ]; [ "prerr_newline" ]; [ "exit" ];
    [ "Printf"; "printf" ]; [ "Printf"; "eprintf" ];
    [ "Format"; "printf" ]; [ "Format"; "eprintf" ];
    [ "Format"; "print_string" ]; [ "Format"; "print_newline" ];
    [ "Fmt"; "pr" ]; [ "Fmt"; "epr" ];
  ]

(* Socket-level syscalls: driver-layer territory. Library code that
   opens, accepts or selects on sockets is doing transport work and
   must live behind an allowlisted driver module (lib/dist). *)
let socket_idents =
  [
    [ "Unix"; "socket" ]; [ "Unix"; "bind" ]; [ "Unix"; "listen" ];
    [ "Unix"; "accept" ]; [ "Unix"; "connect" ]; [ "Unix"; "select" ];
    [ "Unix"; "read" ]; [ "Unix"; "write" ]; [ "Unix"; "write_substring" ];
    [ "Unix"; "single_write" ]; [ "Unix"; "sendto" ]; [ "Unix"; "recvfrom" ];
  ]

(* Constructors whose result at module level is cross-run shared state. *)
let mutable_makers =
  [
    [ "ref" ];
    [ "Hashtbl"; "create" ];
    [ "Atomic"; "make" ];
    [ "Queue"; "create" ];
    [ "Stack"; "create" ];
    [ "Buffer"; "create" ];
    [ "Bytes"; "create" ]; [ "Bytes"; "make" ];
    [ "Array"; "make" ]; [ "Array"; "init" ]; [ "Array"; "create_float" ];
    [ "Mutex"; "create" ]; [ "Condition"; "create" ];
  ]

(* Would the parsetree pass flag this longident as written? Used by
   Typed_rules to report only the occurrences that *evade* this pass
   (aliases, opens, includes) rather than double-reporting. *)
let flags_ident lid =
  let path = strip_stdlib (flatten lid) in
  match path with
  | [ "Atomic"; op ] -> List.mem op atomic_mutators
  | "Random" :: _ -> path <> [ "Random" ]
  | "Obj" :: _ :: _ -> true
  | [ "Effect"; "Deep"; "try_with" ] | [ "Deep"; "try_with" ] -> true
  | _ ->
      List.mem path nondet_idents || List.mem path io_idents
      || List.mem path socket_idents

(* ---- the pass ---- *)

let check ~file structure =
  let findings = ref [] in
  let emit ~rule loc message =
    findings :=
      Finding.of_location ~rule ~severity:(Rule.severity rule) ~file loc message
      :: !findings
  in
  let dotted path = String.concat "." path in

  let check_ident loc lid =
    let path = strip_stdlib (flatten lid) in
    (match path with
    | [ "Atomic"; op ] when List.mem op atomic_mutators ->
        emit ~rule:"raw-atomic" loc
          (Fmt.str
             "raw Atomic.%s bypasses the injectable faulty-CAS substrate; route the \
              operation through Ffault_runtime.Faulty_cas (or allowlist this file in \
              the lint policy with a justification)"
             op)
    | "Random" :: _ when path <> [ "Random" ] ->
        emit ~rule:"nondeterminism" loc
          (Fmt.str
             "%s draws from the global, seed-unstable PRNG; deterministic code must \
              use Ffault_prng (splittable, seeded per trial)"
             (dotted path))
    | _ when List.mem path nondet_idents ->
        emit ~rule:"nondeterminism" loc
          (Fmt.str
             "%s is nondeterministic across runs; simulator-reachable code must be a \
              pure function of the seed (journal replay and campaign resume depend on \
              it)"
             (dotted path))
    | _ when List.mem path io_idents ->
        emit ~rule:"io-in-lib" loc
          (Fmt.str
             "%s performs direct terminal IO/exit from library code; return data, or \
              go through Ffault_telemetry / the report layer"
             (dotted path))
    | _ when List.mem path socket_idents ->
        emit ~rule:"io-in-lib" loc
          (Fmt.str
             "%s is socket-level IO from library code; transport work belongs in the \
              dist driver layer (Transport/Http), which is allowlisted with a \
              justification"
             (dotted path))
    | [ "Effect"; "Deep"; "try_with" ] | [ "Deep"; "try_with" ] ->
        emit ~rule:"effect-discipline" loc
          "Effect.Deep.try_with installs only an effect handler: a body that returns or \
           raises bypasses the scheduler's Step/Decide bookkeeping (no Decided/Crashed \
           status is recorded); use match_with with retc, exnc and effc all handling \
           the protocol"
    | "Obj" :: _ :: _ ->
        emit ~rule:"obj-magic" loc
          (Fmt.str
             "%s defeats the type system; if the representation trick is sound, \
              suppress with [@@@@@@%s \"obj-magic\", \"why it is safe\"]"
             (dotted path) Suppress.attr_name)
    | _ -> ());
    (* Bare [Random.<anything>] already matched above; nothing else. *)
    ()
  in

  (* toplevel-mutable: walk a binding's RHS, stopping at lambdas (a
     function body only allocates per call) and [lazy]. *)
  let rec rhs_mutable e =
    match e.pexp_desc with
    | Pexp_fun _ | Pexp_function _ | Pexp_lazy _ -> None
    | Pexp_apply ({ pexp_desc = Pexp_ident { txt; _ }; pexp_loc; _ }, args) -> (
        let path = strip_stdlib (flatten txt) in
        if List.mem path mutable_makers then Some (pexp_loc, dotted path)
        else
          List.find_map (fun (_, a) -> rhs_mutable a) args)
    | Pexp_tuple es | Pexp_array es ->
        List.find_map rhs_mutable es
    | Pexp_record (fields, base) -> (
        match List.find_map (fun (_, v) -> rhs_mutable v) fields with
        | Some _ as r -> r
        | None -> Option.bind base rhs_mutable)
    | Pexp_construct (_, Some a) | Pexp_variant (_, Some a) -> rhs_mutable a
    | Pexp_let (_, vbs, body) -> (
        match List.find_map (fun vb -> rhs_mutable vb.pvb_expr) vbs with
        | Some _ as r -> r
        | None -> rhs_mutable body)
    | Pexp_sequence (a, b) -> (
        match rhs_mutable a with Some _ as r -> r | None -> rhs_mutable b)
    | Pexp_constraint (a, _) | Pexp_coerce (a, _, _) | Pexp_open (_, a) ->
        rhs_mutable a
    | _ -> None
  in

  let check_toplevel_binding vb =
    match rhs_mutable vb.pvb_expr with
    | None -> ()
    | Some (loc, maker) ->
        emit ~rule:"toplevel-mutable" loc
          (Fmt.str
             "module-level %s creates mutable state shared across every trial in the \
              process; allocate it per run (pass it in), or allowlist the module with \
              a justification"
             maker)
  in

  let rec pat_catch_all p =
    match p.ppat_desc with
    | Ppat_any -> true
    | Ppat_alias (p, _) -> pat_catch_all p
    | Ppat_or (a, b) -> pat_catch_all a || pat_catch_all b
    | _ -> false
  in
  let check_cases ~what cases =
    List.iter
      (fun c ->
        let wild =
          match (what, c.pc_lhs.ppat_desc) with
          | `Try, _ -> pat_catch_all c.pc_lhs
          | `Match, Ppat_exception p -> pat_catch_all p
          | `Match, _ -> false
        in
        if wild && c.pc_guard = None then
          emit ~rule:"catch-all" c.pc_lhs.ppat_loc
            "wildcard exception handler swallows every exception, including budget \
             exhaustion and cancellation; match the exceptions you mean to handle (or \
             bind and re-raise the rest)")
      cases
  in

  (* effect-discipline, second half: a [match_with] handler record whose
     [exnc] merely re-raises drops the crash half of the Step/Decide
     protocol — a raising process must become a recorded status, not
     unwind the scheduler. Syntactic: catches [exnc = raise] and
     [exnc = (fun e -> raise e)]. *)
  let check_handler_record fields =
    List.iter
      (fun ((lbl : Longident.t Location.loc), (v : expression)) ->
        let reraises =
          match v.pexp_desc with
          | Pexp_ident { txt = Longident.Lident "raise"; _ } -> true
          | Pexp_fun
              ( _, _,
                { ppat_desc = Ppat_var { txt = x; _ }; _ },
                {
                  pexp_desc =
                    Pexp_apply
                      ( { pexp_desc = Pexp_ident { txt = Longident.Lident "raise"; _ }; _ },
                        [ (_, { pexp_desc = Pexp_ident { txt = Longident.Lident y; _ }; _ }) ] );
                  _;
                } ) ->
              x = y
          | _ -> false
        in
        let is_exnc =
          match List.rev (flatten lbl.Location.txt) with
          | "exnc" :: _ -> true
          | _ -> false
        in
        if is_exnc && reraises then
          emit ~rule:"effect-discipline" v.pexp_loc
            "this handler's exnc re-raises instead of recording the process as \
             crashed; a raising body must land in the scheduler's status array \
             (the Step/Decide protocol), not unwind through it")
      fields
  in

  let it =
    {
      Ast_iterator.default_iterator with
      expr =
        (fun it e ->
          (match e.pexp_desc with
          | Pexp_ident { txt; _ } -> check_ident e.pexp_loc txt
          | Pexp_try (_, cases) -> check_cases ~what:`Try cases
          | Pexp_match (_, cases) -> check_cases ~what:`Match cases
          | Pexp_record (fields, _) -> check_handler_record fields
          | Pexp_apply ({ pexp_desc = Pexp_ident { txt; _ }; _ }, args)
            when strip_stdlib (flatten txt) = [ "Hashtbl"; "create" ]
                 && List.exists
                      (fun (l, _) ->
                        match l with
                        | Asttypes.Labelled "random" | Asttypes.Optional "random" ->
                            true
                        | _ -> false)
                      args ->
              emit ~rule:"nondeterminism" e.pexp_loc
                "Hashtbl.create ~random:true randomizes iteration order across runs; \
                 deterministic code must not depend on randomized hashing"
          | _ -> ());
          Ast_iterator.default_iterator.expr it e);
      structure_item =
        (fun it item ->
          (match item.pstr_desc with
          | Pstr_value (_, vbs) -> List.iter check_toplevel_binding vbs
          | _ -> ());
          Ast_iterator.default_iterator.structure_item it item);
    }
  in
  it.structure it structure;
  List.rev !findings
