(** Human and machine reporters over a lint run. *)

type t = {
  files : int;
  typed_files : int;  (** .ml files the typed pass covered *)
  fresh : Finding.t list;  (** unsuppressed, unbaselined: these fail *)
  baselined : Finding.t list;
  suppressed : (Finding.t * Suppress.t) list;
  expired : Baseline.entry list;
  notes : (string * string) list;
      (** typed-pass degradations under auto; informational *)
}

val make : ?baseline:Baseline.t -> Driver.result -> t

val exit_code : t -> int
(** 0 when there are no fresh findings, 1 otherwise. Baselined and
    suppressed findings, and expired baseline entries, do not fail. *)

val to_text : t -> string
(** file:line:col lines (grep-able) plus a one-line summary. *)

val to_json : t -> Ffault_campaign.Json.t
(** [{version; files; typed; findings; suppressed; expired_baseline;
    summary}] — the shape CI archives as lint.json. Findings carry a
    ["layer"] ([ast]/[typed]/[fs]) so the two passes stay
    distinguishable. *)
