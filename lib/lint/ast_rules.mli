(** The syntax-level rules, as one {!Ast_iterator} pass.

    Covers raw-atomic, nondeterminism, toplevel-mutable, io-in-lib,
    catch-all and obj-magic. Returns every match unfiltered — the driver
    applies {!Policy} scoping and {!Suppress} afterwards, keeping this a
    pure function of the parsetree. *)

val check : file:string -> Parsetree.structure -> Finding.t list
(** Findings in source order. *)

val flags_ident : Longident.t -> bool
(** Would this pass flag an identifier written exactly so? {!Typed_rules}
    uses it to report only resolved occurrences whose surface syntax
    evaded the parsetree tables (aliases, opens, includes). *)
