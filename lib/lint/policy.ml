(* Per-directory policy: where each rule is active, and which
   directories or files are allowlisted out of it (with a recorded
   justification, so the carve-out is auditable). *)

type allow = { prefix : string; rules : string list; why : string }

type t = {
  active : (string * string list) list;  (* rule -> path prefixes where it applies *)
  allows : allow list;
}

(* ---- path handling ---- *)

let top_level_dirs = [ "lib"; "bin"; "test"; "bench"; "examples"; "doc" ]

(* Normalize a path to be repo-relative: split on '/', drop leading "."
   segments, and if some ancestor directory carries the repo in a
   temp/abs path (e.g. /tmp/x/lib/sim/a.ml), start at the first segment
   that names a known top-level dir. Keeps `ffault lint /abs/repo/lib`
   and test fixtures under temp roots scoped correctly. *)
let normalize path =
  let segs = String.split_on_char '/' path |> List.filter (fun s -> s <> "" && s <> ".") in
  let rec from = function
    | [] -> segs
    | s :: _ as rest when List.mem s top_level_dirs -> rest
    | _ :: tl -> from tl
  in
  String.concat "/" (from segs)

let has_prefix ~prefix path =
  let path = normalize path and prefix = normalize prefix in
  path = prefix
  || String.length path > String.length prefix
     && String.sub path 0 (String.length prefix) = prefix
     && path.[String.length prefix] = '/'

(* ---- queries ---- *)

let in_scope t ~rule ~file =
  if Rule.is_meta rule then true
  else
    match List.assoc_opt rule t.active with
    | None -> false (* unknown rule: active nowhere *)
    | Some prefixes -> List.exists (fun p -> has_prefix ~prefix:p file) prefixes

let allow_reason t ~rule ~file =
  if Rule.is_meta rule then None
  else
    List.find_map
      (fun a ->
        if List.mem rule a.rules && has_prefix ~prefix:a.prefix file then Some a.why
        else None)
      t.allows

let applies t ~rule ~file =
  in_scope t ~rule ~file && allow_reason t ~rule ~file = None

(* ---- the repo's default policy ---- *)

(* The dirs whose behavior must be a pure function of the seed: the
   simulator, the protocols under test, the checkers over them, and the
   network simulation (whose whole contract is determinism). *)
let deterministic_dirs =
  [ "lib/sim"; "lib/consensus"; "lib/verify"; "lib/impossibility"; "lib/netsim" ]

let pure_lib_dirs =
  deterministic_dirs
  @ [
      "lib/objects"; "lib/hoare"; "lib/fault"; "lib/prng"; "lib/stats";
      "lib/experiments"; "lib/campaign"; "lib/lint";
    ]

let default =
  {
    active =
      [
        ("raw-atomic", [ "lib" ]);
        ("nondeterminism", deterministic_dirs);
        ("toplevel-mutable", pure_lib_dirs);
        ("io-in-lib", [ "lib" ]);
        ("catch-all", [ "lib" ]);
        ("mli-required", [ "lib" ]);
        ("obj-magic", [ "lib" ]);
        ("effect-discipline", [ "lib/sim" ]);
        (* typed layer: see doc/LINT.md "Typed rules". alias-escape is
           additionally gated on the underlying rule's policy inside
           Typed_rules, so an aliased clock read outside the
           deterministic dirs still passes. *)
        ("poly-compare-abstract", [ "lib" ]);
        ("alias-escape", [ "lib" ]);
        ("domain-unsafe-capture", [ "lib" ]);
      ];
    allows =
      [
        {
          prefix = "lib/runtime";
          rules = [ "raw-atomic" ];
          why =
            "the faulty-CAS substrate itself: Faulty_cas wraps the raw primitive, \
             Runner's work-stealing cursor is infrastructure, not protocol state";
        };
        {
          prefix = "lib/telemetry";
          rules = [ "raw-atomic"; "io-in-lib"; "toplevel-mutable" ];
          why =
            "the designated observability layer: allocation-free sharded counters \
             (atomics by design), a process-wide metric registry, and the progress \
             line that owns the terminal";
        };
        {
          prefix = "lib/supervise";
          rules = [ "raw-atomic" ];
          why =
            "the supervision layer's own shared state: heartbeat beacons, watchdog \
             flags and quarantine strike counters are cross-domain infrastructure, \
             never part of a simulated execution";
        };
        {
          prefix = "lib/campaign/pool.ml";
          rules = [ "raw-atomic" ];
          why =
            "audited: shrink-budget and shrunk counters are orchestration tallies \
             outside any simulated execution; trials themselves only touch CAS \
             through Faulty_cas";
        };
        {
          prefix = "lib/dist/worker.ml";
          rules = [ "raw-atomic" ];
          why =
            "audited: the heartbeat thread's stop flag is cross-thread control \
             state of the transport layer; trials themselves only touch CAS \
             through Faulty_cas";
        };
        {
          prefix = "lib/dist/transport.ml";
          rules = [ "io-in-lib" ];
          why =
            "the socket driver itself: framing over Unix fds is this module's whole \
             job; everything above it exchanges Codec.msg values";
        };
        {
          prefix = "lib/dist/http.ml";
          rules = [ "io-in-lib" ];
          why =
            "the status endpoint's socket shim: accept/read/write confined to the \
             dist driver layer; all response-building stays in the pure Dist.Status, \
             which is golden-tested under netsim and must remain lint-clean";
        };
        {
          prefix = "lib/dist/coordinator.ml";
          rules = [ "io-in-lib" ];
          why =
            "the blocking driver's select loop multiplexes transport and status \
             sockets; protocol decisions stay in the pure Dist.Core";
        };
        {
          prefix = "lib/campaign/live.ml";
          rules = [ "raw-atomic" ];
          why =
            "audited: cross-domain progress tallies read by the reporter thread; \
             never part of a simulated execution";
        };
      ];
  }
