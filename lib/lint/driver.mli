(** The lint driver: parse sources, run {!Ast_rules}, merge
    {!Typed_rules} for files with a fresh cmt, apply {!Policy} and
    {!Suppress}, add the filesystem-level mli-required check. *)

type outcome = {
  findings : Finding.t list;
  suppressed : (Finding.t * Suppress.t) list;
}

type typed_mode =
  | Typed_off  (** parsetree pass only *)
  | Typed_auto
      (** typed pass when a built tree exists; degraded files become
          notes (never failures) *)
  | Typed_on
      (** typed pass required: a missing/stale cmt is a [cmt-missing]
          finding — the CI mode *)

val parse_impl :
  file:string -> string -> (Parsetree.structure, Finding.t) result
(** Parse an implementation; a syntax/lexing failure becomes a
    [parse-error] finding at its location. *)

val parse_intf :
  file:string -> string -> (Parsetree.signature, Finding.t) result

val lint_impl_source :
  ?policy:Policy.t -> ?typed:Finding.t list -> file:string -> string -> outcome
(** Lint one implementation given as a string — the unit the fixture
    tests drive. [file] determines policy scoping. [typed] merges
    pre-computed typed-layer findings (see {!Typed_rules.check}) before
    policy scoping and suppression, so both layers share the same
    [@@@ffault.lint.allow] machinery. *)

val lint_intf_source : ?policy:Policy.t -> file:string -> string -> outcome
(** Interfaces only get the parse check (no expressions to inspect). *)

val collect_files : string list -> string list
(** Expand files/directories to a sorted list of [.ml]/[.mli] paths,
    skipping [_build], [_campaigns] and [.git]. *)

val mli_required : policy:Policy.t -> string list -> Finding.t list
(** The one filesystem-level rule: every in-scope [.ml] needs a sibling
    [.mli] (checked against the collected list, then the disk). *)

type result = {
  files : int;  (** sources inspected *)
  typed_files : int;  (** .ml files that got the typed pass *)
  findings : Finding.t list;  (** post policy + suppression, sorted *)
  suppressed : (Finding.t * Suppress.t) list;
  notes : (string * string) list;
      (** (file, message) for files the typed pass skipped under
          [Typed_auto]; informational, never failing *)
}

val run :
  ?rules:string list ->
  ?policy:Policy.t ->
  ?typed:typed_mode ->
  ?build_dir:string ->
  string list ->
  result
(** Lint the given paths. [rules] restricts reporting to that subset
    (meta rules always pass through). [typed] defaults to [Typed_auto];
    [build_dir] (default [_build/default]) is where cmts are looked
    up. *)
