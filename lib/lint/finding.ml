type severity = Error | Warning

let severity_to_string = function Error -> "error" | Warning -> "warning"

let severity_of_string = function
  | "error" -> Some Error
  | "warning" -> Some Warning
  | _ -> None

type t = {
  rule : string;
  severity : severity;
  file : string;
  line : int;
  col : int;
  message : string;
}

let v ~rule ~severity ~file ~line ~col message =
  { rule; severity; file; line; col; message }

let of_location ~rule ~severity ~file (loc : Location.t) message =
  let p = loc.Location.loc_start in
  {
    rule;
    severity;
    file;
    line = p.Lexing.pos_lnum;
    col = p.Lexing.pos_cnum - p.Lexing.pos_bol;
    message;
  }

let compare a b =
  let c = String.compare a.file b.file in
  if c <> 0 then c
  else
    let c = Int.compare a.line b.line in
    if c <> 0 then c
    else
      let c = Int.compare a.col b.col in
      if c <> 0 then c else String.compare a.rule b.rule

let pp ppf f =
  Fmt.pf ppf "%s:%d:%d: %s %s: %s" f.file f.line f.col
    (severity_to_string f.severity)
    f.rule f.message
