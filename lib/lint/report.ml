module Json = Ffault_campaign.Json

type t = {
  files : int;
  typed_files : int;
  fresh : Finding.t list;  (** unsuppressed, unbaselined: these fail *)
  baselined : Finding.t list;
  suppressed : (Finding.t * Suppress.t) list;
  expired : Baseline.entry list;
  notes : (string * string) list;
}

let make ?(baseline = Baseline.empty) (r : Driver.result) =
  let split = Baseline.apply baseline r.Driver.findings in
  {
    files = r.Driver.files;
    typed_files = r.Driver.typed_files;
    fresh = split.Baseline.fresh;
    baselined = split.Baseline.baselined;
    suppressed = r.Driver.suppressed;
    expired = split.Baseline.expired;
    notes = r.Driver.notes;
  }

let exit_code t = if t.fresh = [] then 0 else 1

(* ---- text ---- *)

let by_rule findings =
  List.fold_left
    (fun acc (f : Finding.t) ->
      match List.assoc_opt f.rule acc with
      | Some n -> (f.rule, n + 1) :: List.remove_assoc f.rule acc
      | None -> (f.rule, 1) :: acc)
    [] findings
  |> List.sort compare

let to_text t =
  let buf = Buffer.create 1024 in
  let line fmt = Fmt.kstr (fun s -> Buffer.add_string buf s; Buffer.add_char buf '\n') fmt in
  List.iter (fun f -> line "%a" Finding.pp f) t.fresh;
  List.iter (fun f -> line "%a [baselined]" Finding.pp f) t.baselined;
  List.iter
    (fun (e : Baseline.entry) ->
      line "%s:%d: note: expired baseline entry for %s (fixed or moved) — regenerate \
            the baseline" e.Baseline.file e.Baseline.line e.Baseline.rule)
    t.expired;
  List.iter (fun (file, msg) -> line "%s:1: note: %s" file msg) t.notes;
  if t.fresh <> [] then line "";
  (match by_rule t.fresh with
  | [] -> ()
  | counts ->
      line "findings by rule: %s"
        (String.concat ", " (List.map (fun (r, n) -> Fmt.str "%s=%d" r n) counts)));
  line "%d file%s checked (%d typed): %d finding%s, %d baselined, %d suppressed, %d \
        expired baseline entr%s"
    t.files
    (if t.files = 1 then "" else "s")
    t.typed_files
    (List.length t.fresh)
    (if List.length t.fresh = 1 then "" else "s")
    (List.length t.baselined)
    (List.length t.suppressed)
    (List.length t.expired)
    (if List.length t.expired = 1 then "y" else "ies");
  Buffer.contents buf

(* ---- json ---- *)

let finding_to_json ?(extra = []) (f : Finding.t) =
  Json.Obj
    ([
       ("rule", Json.Str f.rule);
       ("layer", Json.Str (Rule.layer_to_string (Rule.layer f.rule)));
       ("severity", Json.Str (Finding.severity_to_string f.severity));
       ("file", Json.Str (Policy.normalize f.file));
       ("line", Json.Int f.line);
       ("col", Json.Int f.col);
       ("message", Json.Str f.message);
     ]
    @ extra)

let to_json t =
  let counts = by_rule t.fresh in
  Json.Obj
    [
      ("version", Json.Int 1);
      ("files", Json.Int t.files);
      ( "typed",
        Json.Obj
          [
            ("files", Json.Int t.typed_files);
            ( "notes",
              Json.List
                (List.map
                   (fun (file, msg) ->
                     Json.Obj [ ("file", Json.Str file); ("message", Json.Str msg) ])
                   t.notes) );
          ] );
      ( "findings",
        Json.List
          (List.map (finding_to_json ~extra:[ ("baselined", Json.Bool false) ]) t.fresh
          @ List.map
              (finding_to_json ~extra:[ ("baselined", Json.Bool true) ])
              t.baselined) );
      ( "suppressed",
        Json.List
          (List.map
             (fun ((f : Finding.t), (s : Suppress.t)) ->
               finding_to_json
                 ~extra:[ ("justification", Json.Str s.Suppress.justification) ]
                 f)
             t.suppressed) );
      ( "expired_baseline",
        Json.List
          (List.map
             (fun (e : Baseline.entry) ->
               Json.Obj
                 [
                   ("rule", Json.Str e.Baseline.rule);
                   ("file", Json.Str e.Baseline.file);
                   ("line", Json.Int e.Baseline.line);
                 ])
             t.expired) );
      ( "summary",
        Json.Obj
          [
            ("fresh", Json.Int (List.length t.fresh));
            ("baselined", Json.Int (List.length t.baselined));
            ("suppressed", Json.Int (List.length t.suppressed));
            ("expired", Json.Int (List.length t.expired));
            ( "by_rule",
              Json.Obj (List.map (fun (r, n) -> (r, Json.Int n)) counts) );
          ] );
    ]
