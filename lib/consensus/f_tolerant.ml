open Ffault_objects
open Ffault_sim

let sweep_body m ~input () = Sim_impl.sweep_decide ~objects:m ~input

let objects_n m _params = List.init m (fun _ -> World.obj Kind.Cas_only)

let protocol =
  {
    Protocol.name = "fig2-f-tolerant";
    description =
      "Paper Fig. 2 / Theorem 5: f-tolerant consensus from f+1 CAS objects, unbounded \
       overriding faults per faulty object";
    objects = (fun ps -> objects_n (ps.Protocol.f + 1) ps);
    body = (fun ps ~me:_ ~input -> sweep_body (ps.Protocol.f + 1) ~input);
    recovery = None;
    in_envelope = (fun _ -> true);
    max_steps_hint = (fun ps -> ps.Protocol.f + 1);
  }

let with_objects m =
  if m < 1 then invalid_arg "F_tolerant.with_objects: need at least one object";
  {
    Protocol.name = Fmt.str "fig2-sweep-%d-objects" m;
    description =
      Fmt.str
        "the Fig. 2 sweep over exactly %d objects (under-provisioned when f >= %d; used as \
         impossibility-experiment prey)"
        m m;
    objects = objects_n m;
    body = (fun _ps ~me:_ ~input -> sweep_body m ~input);
    recovery = None;
    in_envelope = (fun ps -> m >= ps.Protocol.f + 1);
    max_steps_hint = (fun _ -> m);
  }
