open Ffault_objects
open Ffault_sim

type params = { n_procs : int; f : int; t : int option }

let params ?t ~n_procs ~f () =
  if n_procs < 1 then invalid_arg "Protocol.params: n_procs < 1";
  if f < 0 then invalid_arg "Protocol.params: f < 0";
  (match t with Some t when t < 1 -> invalid_arg "Protocol.params: t < 1" | _ -> ());
  { n_procs; f; t }

let pp_params ppf p =
  let t_str = match p.t with None -> "\xe2\x88\x9e" | Some t -> string_of_int t in
  Fmt.pf ppf "(f=%d, t=%s, n=%d)" p.f t_str p.n_procs

type t = {
  name : string;
  description : string;
  objects : params -> World.obj_decl list;
  body : params -> me:int -> input:Value.t -> unit -> Value.t;
  recovery : (params -> me:int -> input:Value.t -> unit -> Value.t) option;
  in_envelope : params -> bool;
  max_steps_hint : params -> int;
}

let world p ps = World.make ~n_procs:ps.n_procs (p.objects ps)

let bodies p ps ~inputs =
  if Array.length inputs <> ps.n_procs then
    invalid_arg "Protocol.bodies: inputs count differs from n_procs";
  Array.mapi (fun i input -> p.body ps ~me:i ~input) inputs

let default_inputs ps = Array.init ps.n_procs (fun i -> Value.Int (100 + i))

let recoverable p = Option.is_some p.recovery

let recovery_bodies p ps ~inputs =
  if Array.length inputs <> ps.n_procs then
    invalid_arg "Protocol.recovery_bodies: inputs count differs from n_procs";
  let entry = match p.recovery with Some r -> r | None -> p.body in
  fun i -> entry ps ~me:i ~input:inputs.(i)
