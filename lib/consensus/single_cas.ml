open Ffault_objects
open Ffault_sim

let body _params ~me:_ ~input () = Sim_impl.single_cas_decide ~input

let objects _params = [ World.obj ~label:"O" Kind.Cas_only ]

let herlihy =
  {
    Protocol.name = "herlihy-single-cas";
    description = "Herlihy's one-object CAS consensus; correct only without faults";
    objects;
    body;
    recovery = None;
    in_envelope = (fun ps -> ps.Protocol.f = 0);
    max_steps_hint = (fun _ -> 1);
  }

let two_process =
  {
    Protocol.name = "fig1-two-process";
    description =
      "Paper Fig. 1 / Theorem 4: (f, \xe2\x88\x9e, 2)-tolerant consensus from a single \
       possibly-overriding CAS object";
    objects;
    body;
    recovery = None;
    in_envelope = (fun ps -> ps.Protocol.n_procs <= 2);
    max_steps_hint = (fun _ -> 1);
  }
