(** Common shape of the paper's consensus constructions.

    A protocol is parameterized by the fault setting (f, t, n) of
    Definition 3 and provides: the shared objects it needs, a process body
    (to be run under the simulator engine), the envelope of settings its
    theorem covers, and a worst-case step bound used as the wait-freedom
    budget by the checkers. *)

open Ffault_objects
open Ffault_sim

type params = {
  n_procs : int;  (** n — number of participating processes *)
  f : int;  (** f — maximum number of faulty objects *)
  t : int option;  (** t — faults per faulty object; [None] is the paper's ∞ *)
}

val params : ?t:int -> n_procs:int -> f:int -> unit -> params
(** @raise Invalid_argument if [n_procs < 1], [f < 0] or [t < 1]. *)

val pp_params : Format.formatter -> params -> unit

type t = {
  name : string;
  description : string;
  objects : params -> World.obj_decl list;
      (** the base objects the construction consumes *)
  body : params -> me:int -> input:Value.t -> unit -> Value.t;
      (** process [me]'s program; returns its decision. Runs under the
          engine (performs {!Ffault_sim.Proc} effects). *)
  recovery : (params -> me:int -> input:Value.t -> unit -> Value.t) option;
      (** the {e recovery section}: where a crash-restarted process
          re-enters (its private state is gone; only shared state that the
          persistence mode kept is left to read). [None] means the
          protocol was not written for crash-restart faults — a restarted
          process naively re-runs [body] from the top, and no crash
          setting is inside its envelope. *)
  in_envelope : params -> bool;
      (** whether the construction's theorem guarantees correctness for
          these parameters (given overriding faults within budget) *)
  max_steps_hint : params -> int;
      (** an upper bound on any process's operation count in any covered
          execution; checkers use it as the wait-freedom budget *)
}

val world : t -> params -> World.t
(** The simulator world for this protocol instance. *)

val bodies : t -> params -> inputs:Value.t array -> (unit -> Value.t) array
(** One body per process with the given inputs.
    @raise Invalid_argument if [Array.length inputs <> n_procs]. *)

val default_inputs : params -> Value.t array
(** Distinct inputs [Int 100], [Int 101], … — distinct from ⊥ and from
    each other, as the theorems assume in the interesting case. *)

val recoverable : t -> bool
(** Whether the protocol declares a recovery section. *)

val recovery_bodies : t -> params -> inputs:Value.t array -> int -> unit -> Value.t
(** The restart entry point for each process — the recovery section when
    one is declared, else the naive re-run of [body] from the top. Shaped
    for {!Ffault_sim.Engine.run_with_driver}'s [recovery] argument.
    @raise Invalid_argument if [Array.length inputs <> n_procs]. *)
