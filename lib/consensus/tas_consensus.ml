open Ffault_objects
open Ffault_sim

let r0 = Obj_id.of_int 0
let r1 = Obj_id.of_int 1
let tas_object = Obj_id.of_int 2

let body ps ~me ~input () =
  if ps.Protocol.n_procs > 2 then
    invalid_arg "Tas_consensus: the construction is for two processes";
  Proc.write (if me = 0 then r0 else r1) input;
  let old_bit = Proc.test_and_set tas_object in
  if not old_bit then input (* flipped the bit: won *)
  else Proc.read (if me = 0 then r1 else r0)

let protocol =
  {
    Protocol.name = "tas-two-process";
    description =
      "classic 2-process consensus from registers + one test-and-set bit (consensus number \
       of TAS is 2); fault rows of E13 measure its collapse under structured TAS faults";
    objects =
      (fun _ ->
        [
          World.obj ~label:"R0" Kind.Register;
          World.obj ~label:"R1" Kind.Register;
          World.obj ~label:"T" Kind.Test_and_set;
        ]);
    body;
    recovery = None;
    in_envelope = (fun ps -> ps.Protocol.n_procs <= 2 && ps.Protocol.f = 0);
    max_steps_hint = (fun _ -> 3);
  }
