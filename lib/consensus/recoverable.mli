(** Recoverable consensus protocols (Golab, {e Recoverable Consensus in
    Shared Memory}; Delporte-Gallet et al.), plus the deliberately naive
    non-recoverable baseline they are measured against.

    All three share the crash-restart model of doc/RECOVERY.md: a crashed
    process loses its private state and re-enters at the protocol's
    recovery section (or, for [naive_tas], at the top of its body). *)

val rec_cas : Protocol.t
(** ["rec-cas"] — one CAS object whose installed proposal is tagged with
    its owner's id. The decide is idempotent, so body and recovery
    coincide: a process that crashed mid-CAS re-runs it and recognizes its
    own earlier win by the tag. Envelope: f = 0, any n, any crash
    schedule, all persistence modes. *)

val rec_tas : Protocol.t
(** ["rec-tas"] — two-process consensus from two registers and an
    owner-tagged CAS latch in place of the classic TAS bit; the recovery
    section re-reads the latch to learn whether its own claim linearized
    before the crash. Envelope: n ≤ 2, f = 0, any crash schedule, all
    persistence modes. *)

val naive_tas : Protocol.t
(** ["naive-tas"] — {!Tas_consensus.protocol} verbatim with no recovery
    section: the planted-violation baseline. Correct crash-free, but a
    crash that linearizes its test-and-set orphans the win, and the
    restarted process decides ⊥ or flips the decision — the
    recoverable-linearizability violations E15 and [make recover-smoke]
    exist to catch. Envelope: n ≤ 2, f = 0, {e no} crashes. *)
