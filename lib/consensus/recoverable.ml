open Ffault_objects
open Ffault_sim

(* ---- rec-cas: Golab-style recoverable CAS consensus ---- *)

let o = Obj_id.of_int 0

let tag ~me ~input = Value.Pair (Value.Int me, input)

(* The proposal installed by CAS carries its owner's id, so a process that
   crashed mid-CAS can tell, on recovery, whether the winning proposal is
   its own (its CAS linearized before the crash) or someone else's. The
   same code is body and recovery section: it is idempotent. *)
let rec_cas_decide ~me ~input () =
  let old = Proc.cas o ~expected:Value.Bottom ~desired:(tag ~me ~input) in
  if Value.is_bottom old then input
  else
    match old with
    | Value.Pair (Value.Int w, v) -> if w = me then input else v
    | v -> v (* corrupted latch (object fault): decide its payload *)

let rec_cas =
  {
    Protocol.name = "rec-cas";
    description =
      "recoverable CAS consensus (Golab): the proposal installed by CAS is tagged with its \
       owner's id, so the recovery section distinguishes own-win from foreign-win after a \
       crash; body and recovery are the same idempotent decide";
    objects = (fun _ -> [ World.obj ~label:"O" Kind.Cas_only ]);
    body = (fun _ ~me ~input -> rec_cas_decide ~me ~input);
    recovery = Some (fun _ ~me ~input -> rec_cas_decide ~me ~input);
    in_envelope = (fun ps -> ps.Protocol.f = 0);
    max_steps_hint = (fun _ -> 1);
  }

(* ---- rec-tas: tas_consensus with a recoverable owner-tagged latch ---- *)

let r0 = Obj_id.of_int 0
let r1 = Obj_id.of_int 1
let latch = Obj_id.of_int 2

let reg me = if me = 0 then r0 else r1

(* The classic TAS bit cannot support recovery: a restarted process that
   set it has no way to recognize its own win. Replacing it with a CAS
   register holding the winner's id keeps the two-process structure but
   makes the win self-identifying. *)
let claim ~me ~input () =
  let old = Proc.cas latch ~expected:Value.Bottom ~desired:(Value.Int me) in
  let winner = match old with Value.Bottom -> me | Value.Int w -> w | _ -> me in
  if winner = me then input else Proc.read (reg winner)

let rec_tas_body ps ~me ~input () =
  if ps.Protocol.n_procs > 2 then invalid_arg "Recoverable.rec_tas: two processes only";
  Proc.write (reg me) input;
  claim ~me ~input ()

(* Recovery: the latch is ground truth. Unclaimed — start over (rewriting
   our register first: a lossy crash may have dropped that write).
   Claimed by us — our CAS linearized before the crash; decide our input.
   Claimed by the other — its register was written before its CAS, so it
   is there to read. *)
let rec_tas_recovery ps ~me ~input () =
  match Proc.read latch with
  | Value.Bottom -> rec_tas_body ps ~me ~input ()
  | Value.Int w when w = me -> input
  | Value.Int w when w = 0 || w = 1 -> Proc.read (reg w)
  | _ -> rec_tas_body ps ~me ~input () (* corrupted latch: retry from the top *)

let rec_tas =
  {
    Protocol.name = "rec-tas";
    description =
      "recoverable two-process consensus: tas_consensus with the TAS bit replaced by an \
       owner-tagged CAS latch, plus a recovery section that re-reads the latch — correct \
       under crash-restarts in both the persist-all and lossy persistence modes";
    objects =
      (fun _ ->
        [
          World.obj ~label:"R0" Kind.Register;
          World.obj ~label:"R1" Kind.Register;
          World.obj ~label:"L" Kind.Cas_register;
        ]);
    body = rec_tas_body;
    recovery = Some rec_tas_recovery;
    in_envelope = (fun ps -> ps.Protocol.n_procs <= 2 && ps.Protocol.f = 0);
    max_steps_hint = (fun _ -> 4);
  }

(* ---- naive-tas: the deliberately non-recoverable baseline ---- *)

let naive_tas =
  {
    Tas_consensus.protocol with
    Protocol.name = "naive-tas";
    description =
      "deliberately naive baseline: classic TAS consensus with no recovery section, so a \
       restarted process re-runs the body from the top. A crash that linearizes the \
       test-and-set leaves a win nobody owns: the restarted winner sees the bit already \
       set, concludes it lost, and reads the other register \xe2\x80\x94 deciding \xe2\x8a\xa5 \
       or flipping the decision";
  }
