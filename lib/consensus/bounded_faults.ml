open Ffault_objects
open Ffault_sim

let max_stage ~f ~t = t * ((4 * f) + (f * f))

let body ~f ~ms ~input () = Sim_impl.staged_decide ~f ~max_stage:ms ~input

let require_bounded_t ps =
  match ps.Protocol.t with
  | Some t -> t
  | None -> invalid_arg "Bounded_faults: requires a bounded t (faults per object)"

let objects ps =
  if ps.Protocol.f < 1 then invalid_arg "Bounded_faults: requires f >= 1";
  List.init ps.Protocol.f (fun _ -> World.obj Kind.Cas_only)

(* Worst-case operations per process: each of its (maxStage + 2) ·
   f installation attempts can be retried once per interfering write, and
   total writes in the system are bounded by the same quantity summed over
   processes. The quadratic-in-n bound below is loose but safe; the
   checkers use it only as a cut-off for declaring non-termination. *)
let steps_hint ~f ~n ~ms = (4 * n * n * (ms + 2) * f) + 64

let make_protocol ~name ~description ~ms_of ~envelope =
  {
    Protocol.name;
    description;
    objects;
    body =
      (fun ps ~me:_ ~input ->
        let f = ps.Protocol.f in
        body ~f ~ms:(ms_of ps) ~input);
    recovery = None;
    in_envelope = envelope;
    max_steps_hint =
      (fun ps -> steps_hint ~f:ps.Protocol.f ~n:ps.Protocol.n_procs ~ms:(ms_of ps));
  }

let protocol =
  make_protocol ~name:"fig3-bounded-faults"
    ~description:
      "Paper Fig. 3 / Theorem 6: (f, t, f+1)-tolerant consensus from f CAS objects, all \
       possibly faulty, maxStage = t(4f+f\xc2\xb2)"
    ~ms_of:(fun ps -> max_stage ~f:ps.Protocol.f ~t:(require_bounded_t ps))
    ~envelope:(fun ps ->
      ps.Protocol.f >= 1 && ps.Protocol.t <> None
      && ps.Protocol.n_procs <= ps.Protocol.f + 1)

let with_max_stage m =
  if m < 1 then invalid_arg "Bounded_faults.with_max_stage: need m >= 1";
  make_protocol
    ~name:(Fmt.str "fig3-maxstage-%d" m)
    ~description:
      (Fmt.str "the Fig. 3 protocol with an explicit stage bound of %d (ablation)" m)
    ~ms_of:(fun _ -> m)
    ~envelope:(fun ps ->
      ps.Protocol.f >= 1
      && (match ps.Protocol.t with
         | None -> false
         | Some t -> m >= max_stage ~f:ps.Protocol.f ~t)
      && ps.Protocol.n_procs <= ps.Protocol.f + 1)

let stages_reached trace =
  List.fold_left
    (fun acc ev ->
      match ev with
      | Trace.Op_step { op = Op.Cas { desired = Value.Staged { stage; _ }; _ }; _ } ->
          max acc stage
      | _ -> acc)
    (-1) trace
