open Ffault_objects
open Ffault_sim

let body _ps ~me:_ ~input () = Sim_impl.silent_retry_decide ~input

let protocol =
  {
    Protocol.name = "silent-retry";
    description =
      "\xc2\xa73.4 retry protocol: one CAS object, tolerates any bounded number of silent \
       faults";
    objects = (fun _ -> [ World.obj ~label:"O" Kind.Cas_only ]);
    body;
    recovery = None;
    in_envelope = (fun ps -> ps.Protocol.t <> None);
    max_steps_hint =
      (fun ps ->
        (* While the object holds ⊥, each CAS either installs a value or
           burns one fault; afterwards one more CAS suffices. *)
        (match ps.Protocol.t with Some t -> t | None -> 0) + 4);
  }
