(** Seed-derived fault schedules, and their replay for shrinking.

    A schedule is a pure function of its seed: the directive applied to
    the [k]-th frame on a directed link, the per-link base latency, and
    the partition / crash windows are all derived by hashing
    [(seed, link, k)] through {!Ffault_prng} — no mutable sampling
    state, so any frame's fate can be recomputed independently and a
    re-run of the same seed replays the identical schedule.

    Every fault that actually fires during a run is recorded as an
    {!atom}. On a violation, the shrinker re-runs the schedule in
    {e replay} mode with a shrinking subset of those atoms enabled
    (everything outside the subset is forced benign); because
    generation is stateless, replaying the full fired set reproduces
    the original run exactly, and ddmin over the set yields a minimal
    reproducer.

    Links are numbered [2w] (worker [w] → coordinator) and [2w+1]
    (coordinator → worker [w]); frame indices count every frame ever
    sent on the link, across reconnections, so atoms stay stable under
    shrinking. *)

type directive =
  | Drop
  | Dup  (** delivered, then delivered again *)
  | Delay of int  (** extra ns, FIFO order preserved *)
  | Reorder of int  (** extra ns, FIFO clamp bypassed — later frames overtake *)

type atom =
  | Frame of { link : int; k : int; d : directive }
  | Partition of { at_ns : int; heal_ns : int; group : int list }
      (** the workers in [group] are cut off from the coordinator in
          both directions for the window *)
  | Crash of { worker : int; at_ns : int; restart_ns : int }
  | CoordCrash of { at_ns : int; restart_ns : int }
      (** the coordinator process dies — in-memory lease table and
          connections lost, the journal survives — and restarts as the
          next incarnation at [restart_ns] *)

val atom_to_string : atom -> string
val pp_atom : Format.formatter -> atom -> unit

type t

val generate : seed:int64 -> workers:int -> t
(** The full schedule of [seed]: frame faults sampled on demand,
    partitions and crashes precomputed (both bounded so every schedule
    keeps making progress — drop rates stay under ~0.25, partitions
    heal, crashed workers restart). *)

val replay : t -> atoms:atom list -> t
(** Same seed and topology, but only [atoms] fire; every other fault
    is suppressed. Window atoms (partitions, crashes) are taken
    verbatim, so a replay can also inject hand-written windows the
    seed never sampled — frame atoms still only fire where the seed's
    own sample matches. *)

val frame_fault : t -> link:int -> k:int -> directive option
(** The fate of frame [k] on [link]; records the atom as fired when
    [Some]. *)

val latency_ns : t -> link:int -> int
(** Base one-way latency of [link] — schedule-derived, never shrunk
    away (latency alone cannot break exactly-once). *)

val partitions : t -> (int * int * int list) list
(** [(at_ns, heal_ns, group)] windows, enabled ones only. *)

val crashes : t -> (int * int * int) list
(** [(worker, at_ns, restart_ns)], enabled ones only. *)

val coord_crashes : t -> (int * int) list
(** [(at_ns, restart_ns)] coordinator crash windows (at most one per
    schedule), enabled ones only. Derived under a label of their own,
    so a seed's partitions, worker crashes and frame fates are exactly
    what they were before coordinator crashes existed. *)

val fired : t -> atom list
(** Every atom that fired this run, in firing order (partitions and
    crashes count as fired up front). The shrinker's starting set. *)
