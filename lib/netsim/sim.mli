(** One simulated campaign: the real {!Ffault_dist.Core} coordinator
    engine plus [workers] simulated worker actors, on a {!Net} network
    under a {!Fault_plan} schedule, all inside a single {!Sched} run of
    virtual time.

    The worker actors speak the protocol through
    {!Ffault_dist.Worker.Protocol} (the same classification the socket
    worker uses) and synthesize deterministic trial records from the
    grid, so the journal a run produces is a pure function of
    [(config, seed)] — byte-identical across re-runs, which the tests
    pin.

    The coordinator itself is a crashable actor: a
    {!Fault_plan.atom.CoordCrash} window drops the engine — lease
    table, connections, epoch state, everything in memory — while the
    in-memory journal (the stand-in for the journal file) survives; the
    restart boots the next incarnation through the same
    journal-recovery path [serve --resume] runs, and the worker actors
    ride it out with bounded connect backoff plus an in-flight-lease
    replay, like the socket worker.

    Two invariants are checked: {e exactly-once} — when the run ends,
    the journal must hold every trial id exactly once and the
    coordinator must have declared completion within the virtual-time
    horizon — and the {e worker-side} rule that no worker executes the
    same trial twice without a reconcile (a lease requeue or a
    coordinator recovery) between. Anything else is a {!violation}. *)

type config = {
  workers : int;
  trials : int;
  lease_trials : int;  (** shard size *)
  verify_complete : bool;
      (** [false] plants the lease-retirement bug (a [Complete] retires
          its lease without checking the journal) — the mutation the
          schedule search must catch *)
  fence_epochs : bool;
      (** [false] plants the fencing bug (a [Complete] carrying a stale
          incarnation's grant epoch is trusted, retiring whatever live
          lease happens to reuse the id) — only coordinator-crash
          schedules can expose it *)
  horizon_ns : int;  (** virtual-time backstop for stalled schedules *)
}

val config :
  ?workers:int ->
  ?trials:int ->
  ?lease_trials:int ->
  ?verify_complete:bool ->
  ?fence_epochs:bool ->
  ?horizon_ns:int ->
  unit ->
  config
(** Defaults: 3 workers, 200 trials, shards of 32, verification on,
    fencing on, 60 s (virtual) horizon. *)

type violation =
  | Duplicate of int  (** this trial id journaled more than once *)
  | Hole of int  (** never journaled, yet the run ended *)
  | Stalled of string  (** horizon hit or events drained before completion *)
  | Reexec of { worker : string; trial : int }
      (** the worker-side checker: this worker executed the trial under
          two different leases of one coordinator incarnation with no
          reconcile between — the earlier lease was never requeued, so
          the range could only travel twice if a lease was retired on a
          stale incarnation's word (re-running a duplicated copy of one
          grant frame is {e not} a violation: dedup absorbs it) *)

val violation_to_string : violation -> string

type result = {
  violation : violation option;  (** first violation found, severity order *)
  fired : Fault_plan.atom list;  (** the schedule's fired atoms — shrinker input *)
  records : Ffault_campaign.Journal.record list;  (** append order *)
  journal_bytes : string;  (** the JSONL the journal file would hold *)
  trace : string list;  (** deterministic event trace, forward order *)
  events : int;  (** scheduler events executed *)
  end_ns : int;  (** virtual time at exit *)
  status_probes : (int * string * string) list;
      (** [(virtual_ns, path, body)] — the exact {!Ffault_dist.Status}
          responses the live endpoint would serve, scraped at 1 s of
          virtual time and again at completion for [/status],
          [/workers] and [/events]. Pure function of [(config, seed)],
          so the tests pin them byte-for-byte. *)
}

val run : ?atoms:Fault_plan.atom list -> config -> seed:int64 -> result
(** Simulate one schedule. Without [atoms] the full schedule of [seed]
    runs (generate mode); with [atoms] only those fire (replay mode —
    the shrinker's probe). Two calls with equal arguments return equal
    results. *)
