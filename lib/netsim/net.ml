module Wire = Ffault_dist.Wire
module Codec = Ffault_dist.Codec

type handler = {
  h_frames : Wire.frame list -> unit;
  h_closed : unit -> unit;
  h_error : string -> unit;
}

type state = Open | Dead | Closed

type conn = {
  e_worker : int;
  e_link : int; (* link id of frames sent FROM this endpoint *)
  e_name : string; (* what the peer sees as our address *)
  mutable e_state : state;
  mutable e_handler : handler option;
  e_dec : Wire.Decoder.t;
  mutable e_poisoned : bool;
  mutable e_peer : conn option; (* tied after pairing, then immutable *)
  net : t;
}

and t = {
  sched : Sched.t;
  plan : Fault_plan.t;
  trace : string -> unit;
  n_workers : int;
  mutable listener : (conn -> unit) option;
  k : int array; (* per-link frame counter, survives reconnections *)
  last_arrival : int array; (* per-link FIFO clamp *)
  partitioned : bool array;
  mutable endpoints : conn list; (* every endpoint ever created *)
}

let create ~sched ~plan ?(trace = ignore) ~workers () =
  {
    sched;
    plan;
    trace;
    n_workers = workers;
    listener = None;
    k = Array.make (2 * workers) 0;
    last_arrival = Array.make (2 * workers) 0;
    partitioned = Array.make workers false;
    endpoints = [];
  }

let set_listener t l = t.listener <- l

let tr t fmt =
  Printf.ksprintf
    (fun s -> t.trace (Printf.sprintf "%10.3fms net: %s" (float_of_int (Sched.now_ns t.sched) /. 1e6) s))
    fmt

let link_name link =
  if link land 1 = 0 then Printf.sprintf "w%d->c" (link / 2)
  else Printf.sprintf "c->w%d" (link / 2)

let peer e = match e.e_peer with Some p -> p.e_name | None -> "sim://unpaired"

let set_handler e h = e.e_handler <- Some h

(* Deliver [bytes] at [dst]: feed the real decoder, hand complete frames
   to the handler. A torn stream poisons the endpoint — exactly one
   [h_error], like the socket reader. *)
let deliver_bytes dst bytes =
  if dst.e_state = Open && not dst.e_poisoned then begin
    Wire.Decoder.feed dst.e_dec bytes;
    let rec drain acc =
      match Wire.Decoder.next dst.e_dec with
      | Ok (Some f) -> drain (f :: acc)
      | Ok None -> Ok (List.rev acc)
      | Error e -> Error (List.rev acc, e)
    in
    match drain [] with
    | Ok frames -> (
        match (frames, dst.e_handler) with
        | [], _ | _, None -> ()
        | frames, Some h -> h.h_frames frames)
    | Error (frames, err) ->
        dst.e_poisoned <- true;
        (match (frames, dst.e_handler) with
        | [], _ | _, None -> ()
        | frames, Some h -> h.h_frames frames);
        (match dst.e_handler with None -> () | Some h -> h.h_error err)
  end

let schedule_delivery t ~dst ~at_ns bytes =
  Sched.at t.sched ~ns:at_ns (fun () -> deliver_bytes dst bytes)

(* The send path: partition check, then the schedule decides this
   frame's fate. FIFO is enforced by clamping each arrival past the
   link's previous one; [Reorder] skips the clamp (and leaves the
   high-water mark alone) so later frames overtake it. *)
let send_bytes src bytes =
  let t = src.net in
  match src.e_peer with
  | None -> ()
  | Some dst ->
      if t.partitioned.(src.e_worker) then
        tr t "partition eats frame on %s" (link_name src.e_link)
      else begin
        let link = src.e_link in
        let k = t.k.(link) in
        t.k.(link) <- k + 1;
        let base = Sched.now_ns t.sched + Fault_plan.latency_ns t.plan ~link in
        let clamp ns =
          let ns = max ns (t.last_arrival.(link) + 1) in
          t.last_arrival.(link) <- ns;
          ns
        in
        match Fault_plan.frame_fault t.plan ~link ~k with
        | Some Fault_plan.Drop -> tr t "drop %s #%d" (link_name link) k
        | Some Fault_plan.Dup ->
            tr t "dup %s #%d" (link_name link) k;
            schedule_delivery t ~dst ~at_ns:(clamp base) bytes;
            schedule_delivery t ~dst ~at_ns:(clamp base) bytes
        | Some (Fault_plan.Delay extra) ->
            tr t "delay %s #%d +%dus" (link_name link) k (extra / 1_000);
            schedule_delivery t ~dst ~at_ns:(clamp (base + extra)) bytes
        | Some (Fault_plan.Reorder extra) ->
            tr t "reorder %s #%d +%dus" (link_name link) k (extra / 1_000);
            schedule_delivery t ~dst ~at_ns:(base + extra) bytes
        | None -> schedule_delivery t ~dst ~at_ns:(clamp base) bytes
      end

let send e msg =
  match e.e_state with
  | Closed -> Error "connection closed"
  | Dead | Open ->
      (* a crashed ([Dead]) endpoint belongs to a crashed worker whose
         actor is gone; tolerate stragglers by swallowing them *)
      if e.e_state = Open then send_bytes e (Wire.encode (Codec.to_frame msg));
      Ok ()

let send_raw e bytes = if e.e_state = Open then send_bytes e bytes

let close e =
  match e.e_state with
  | Closed | Dead -> ()
  | Open -> (
      e.e_state <- Closed;
      match e.e_peer with
      | None -> ()
      | Some p ->
          let t = e.net in
          let at_ns = Sched.now_ns t.sched + Fault_plan.latency_ns t.plan ~link:e.e_link in
          Sched.at t.sched ~ns:at_ns (fun () ->
              if p.e_state = Open then
                match p.e_handler with None -> () | Some h -> h.h_closed ()))

let connect t ~worker =
  if worker < 0 || worker >= t.n_workers then invalid_arg "Net.connect: bad worker index";
  match t.listener with
  | None -> Error "connection refused"
  | Some accept ->
      let mk ~link ~name =
        {
          e_worker = worker;
          e_link = link;
          e_name = name;
          e_state = Open;
          e_handler = None;
          e_dec = Wire.Decoder.create ();
          e_poisoned = false;
          e_peer = None;
          net = t;
        }
      in
      let wside = mk ~link:(2 * worker) ~name:(Printf.sprintf "sim://w%d" worker) in
      let cside = mk ~link:((2 * worker) + 1) ~name:"sim://coordinator" in
      wside.e_peer <- Some cside;
      cside.e_peer <- Some wside;
      t.endpoints <- wside :: cside :: t.endpoints;
      tr t "connect w%d" worker;
      accept cside;
      Ok wside

(* Only the worker-side endpoints die (even links): bytes already in
   flight toward the coordinator still arrive, like a real crash. The
   coordinator's side stays [Open] and silent — no EOF. *)
let crash_worker t ~worker =
  tr t "crash w%d" worker;
  List.iter
    (fun e ->
      if e.e_worker = worker && e.e_link land 1 = 0 && e.e_state = Open then e.e_state <- Dead)
    t.endpoints

(* The mirror image of [crash_worker]: the coordinator-side endpoints
   (odd links) die and the listener goes away, so worker frames black-
   hole and fresh connects are refused until the restarted incarnation
   installs a new listener. Worker sides stay [Open] and silent — the
   workers must notice by reply silence, exactly like a real SIGKILL'd
   coordinator whose host keeps the port unreachable. *)
let crash_coordinator t =
  tr t "crash coordinator";
  t.listener <- None;
  List.iter
    (fun e -> if e.e_link land 1 = 1 && e.e_state = Open then e.e_state <- Dead)
    t.endpoints

let set_partitioned t ~worker v =
  if t.partitioned.(worker) <> v then begin
    tr t "%s w%d" (if v then "partition" else "heal") worker;
    t.partitioned.(worker) <- v
  end
