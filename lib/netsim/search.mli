(** Fault-schedule search: sweep seed-derived schedules through
    {!Sim.run}, and shrink any violation to a minimal reproducer.

    Schedule [i] of a sweep rooted at [root] runs under
    [schedule_seed ~root i] — re-running a single index by its printed
    seed reproduces the identical event trace, which is how a violation
    found overnight is debugged in the morning.

    Shrinking is ddmin over the failing run's fired atoms: replaying
    the full fired set reproduces the violation exactly (fault
    generation is stateless — see {!Fault_plan}), so subsets are probed
    chunk-and-complement until 1-minimal. The shrunk schedule's
    violation may differ in kind from the original (a smaller fault set
    can surface the bug earlier); both are reported. *)

val schedule_seed : root:int64 -> int -> int64

val shrink :
  config:Sim.config ->
  seed:int64 ->
  atoms:Fault_plan.atom list ->
  violation:Sim.violation ->
  Fault_plan.atom list * Sim.violation * int
(** [(minimal_atoms, their_violation, probes_spent)]. Probes are capped
    (a few hundred); on cap the best subset so far is returned — still
    failing, maybe not 1-minimal. *)

type report = {
  s_index : int;  (** schedule index within the sweep *)
  s_seed : int64;  (** its derived seed — the reproducer handle *)
  s_violation : Sim.violation;  (** as first observed *)
  s_fired : int;  (** atoms fired by the full schedule *)
  s_shrunk : Fault_plan.atom list;  (** the minimal reproducer *)
  s_shrunk_violation : Sim.violation;
  s_probes : int;  (** sim runs spent shrinking *)
}

type sweep = {
  explored : int;  (** schedules actually run *)
  violations : report list;  (** in discovery order *)
  total_events : int;  (** scheduler events across all runs *)
}

val explore :
  ?on_progress:(int -> unit) ->
  ?max_violations:int ->
  config:Sim.config ->
  root:int64 ->
  schedules:int ->
  unit ->
  sweep
(** Run schedules [0 .. schedules-1], shrinking each violation as it is
    found; stop early after [max_violations] (default 1 — the usual CLI
    mode wants the first reproducer, not a catalogue). [on_progress]
    fires after each schedule with its index. *)
