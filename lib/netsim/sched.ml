module Clock = Ffault_runtime.Clock

module Key = struct
  type t = int * int (* (time_ns, seq) — seq breaks ties deterministically *)

  let compare = compare
end

module Q = Map.Make (Key)

type t = {
  v : Clock.Virtual.t;
  mutable q : (unit -> unit) Q.t;
  mutable seq : int;
  mutable executed : int;
}

let create ?(start_ns = 0) () =
  { v = Clock.Virtual.create ~start_ns (); q = Q.empty; seq = 0; executed = 0 }

let clock t = Clock.Virtual.clock t.v
let now_ns t = Clock.Virtual.now_ns t.v

let at t ~ns f =
  let ns = max ns (now_ns t) in
  t.q <- Q.add (ns, t.seq) f t.q;
  t.seq <- t.seq + 1

let after t ~ns f =
  if ns < 0 then invalid_arg "Sched.after: negative delay";
  at t ~ns:(now_ns t + ns) f

let pending t = Q.cardinal t.q

let rec run t ~until_ns =
  match Q.min_binding_opt t.q with
  | None -> `Drained
  | Some (((ns, _) as key), f) ->
      if ns > until_ns then begin
        if until_ns > now_ns t then Clock.Virtual.set t.v ~ns:until_ns;
        `Horizon
      end
      else begin
        t.q <- Q.remove key t.q;
        Clock.Virtual.set t.v ~ns;
        t.executed <- t.executed + 1;
        f ();
        run t ~until_ns
      end

let executed t = t.executed
