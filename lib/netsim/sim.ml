module Campaign = Ffault_campaign
module Spec = Campaign.Spec
module Grid = Campaign.Grid
module Json = Campaign.Json
module Journal = Campaign.Journal
module Checkpoint = Campaign.Checkpoint
module Codec = Ffault_dist.Codec
module Core = Ffault_dist.Core
module Status = Ffault_dist.Status
module Coordinator = Ffault_dist.Coordinator
module Protocol = Ffault_dist.Worker.Protocol
module Retry = Ffault_supervise.Retry
module Events = Ffault_telemetry.Events

type config = {
  workers : int;
  trials : int;
  lease_trials : int;
  verify_complete : bool;
  fence_epochs : bool;
  horizon_ns : int;
}

let config ?(workers = 3) ?(trials = 200) ?(lease_trials = 32)
    ?(verify_complete = true) ?(fence_epochs = true) ?(horizon_ns = 60_000_000_000) () =
  if workers < 1 then invalid_arg "Sim.config: workers must be >= 1";
  if trials < 1 then invalid_arg "Sim.config: trials must be >= 1";
  if lease_trials < 1 then invalid_arg "Sim.config: lease_trials must be >= 1";
  if horizon_ns < 1_000_000_000 then invalid_arg "Sim.config: horizon under 1s";
  { workers; trials; lease_trials; verify_complete; fence_epochs; horizon_ns }

type violation =
  | Duplicate of int
  | Hole of int
  | Stalled of string
  | Reexec of { worker : string; trial : int }

let violation_to_string = function
  | Duplicate id -> Printf.sprintf "trial %d journaled more than once" id
  | Hole id -> Printf.sprintf "trial %d never journaled" id
  | Stalled why -> "stalled: " ^ why
  | Reexec { worker; trial } ->
      Printf.sprintf "trial %d re-executed by %s without a reconcile between" trial
        worker

type result = {
  violation : violation option;
  fired : Fault_plan.atom list;
  records : Journal.record list;
  journal_bytes : string;
  trace : string list;
  events : int;
  end_ns : int;
  status_probes : (int * string * string) list;
}

let probe_ns = 1_000_000_000 (* mid-run status scrape, virtual *)

(* ---- virtual-time tuning (all deterministic constants) ---- *)

let tick_ns = 50_000_000 (* coordinator tick cadence *)
let hb_interval_s = 0.5 (* imposed on workers via Welcome *)
let lease_timeout_s = 2.0 (* silence budget before a lease is reclaimed *)
let silence_ns = 1_000_000_000 (* worker's reply deadline before reconnecting *)
let reconnect_ns = 25_000_000
let trial_cost_ns = 2_000_000 (* virtual compute per trial *)
let hb_ns = 500_000_000

(* Refused connects (coordinator down between crash and restart) back
   off under the same bounded Retry schedule the socket worker uses —
   enough budget to outlast any crash window the plan can derive. *)
let connect_retry =
  Retry.policy ~max_retries:20 ~base_backoff_ns:50_000_000
    ~max_backoff_ns:1_000_000_000 ()

(* The sim exercises the distribution layer, not the trial engine:
   every trial "runs" to the same synthetic pass record, a pure
   function of the grid — which is what makes the journal of a run a
   deterministic artifact worth diffing. *)
let record_of spec id =
  let tr = Grid.trial spec id in
  {
    Journal.trial = id;
    cell = tr.Grid.cell;
    seed = tr.Grid.seed;
    ok = true;
    outcome = Journal.Pass;
    retries = 0;
    violations = [];
    steps = 1;
    max_steps = 1;
    stage = -1;
    faults = 0;
    crash_faults = 0;
    wall_us = 1;
    witness = None;
  }

type wphase = Joining | Awaiting | Running | Stopped

(* The lease a worker is (or was last) working: enough to finish the
   range without a connection and to replay it — records plus the
   epoch-stamped [Complete] — to the next session, as the socket worker
   does. *)
type wlease = {
  wl_id : int;
  wl_epoch : int; (* the grant's fencing token, echoed on Complete *)
  wl_ids : int list;
  mutable wl_prod_rev : int list; (* executed so far, newest first *)
}

type wactor = {
  idx : int;
  wname : string;
  mutable inc : int; (* incarnation: bumped on reconnect/crash/restart *)
  mutable alive : bool;
  mutable wconn : Net.conn option;
  mutable phase : wphase;
  mutable seq : int; (* invalidates pending reply-deadline timers *)
  mutable sent : int; (* result frames streamed — the synthetic telemetry counter *)
  mutable wepoch : int; (* last coordinator epoch seen; 0 before any Welcome *)
  mutable wcur : wlease option;
  mutable conn_fails : int; (* consecutive refused connects *)
}

let run ?atoms cfg ~seed =
  let sched = Sched.create () in
  let trace_rev = ref [] in
  let push s = trace_rev := s :: !trace_rev in
  let tracef fmt =
    Printf.ksprintf
      (fun s ->
        push
          (Printf.sprintf "%10.3fms %s"
             (float_of_int (Sched.now_ns sched) /. 1e6)
             s))
      fmt
  in
  let plan =
    let full = Fault_plan.generate ~seed ~workers:cfg.workers in
    match atoms with None -> full | Some atoms -> Fault_plan.replay full ~atoms
  in
  let net = Net.create ~sched ~plan ~trace:push ~workers:cfg.workers () in
  let spec = Spec.v ~name:"netsim" ~protocol:"fig1" ~trials:cfg.trials () in
  let total = Grid.total_trials spec in
  let records_rev = ref [] in
  (* the coordinator's structured event log, on virtual time and graded
     by the real coordinator's classifier — /events is golden-testable.
     One log across incarnations, like the appended events.jsonl. *)
  let evlog = Events.create ~now:(fun () -> Sched.now_ns sched) () in
  let io = { Core.peer = Net.peer; send = Net.send; close = Net.close } in
  (* ---- the worker-side exactly-once log ----
     Every execution is recorded as (worker, trial, grant epoch, lease
     id, worker incarnation). The same worker executing the same trial
     twice is legitimate only when the coordinator reconciled in
     between — and because a shard lives in at most one lease at a
     time, that ordering is visible at the grants: the earlier lease
     must have been requeued (expiry, disconnect, reconcile-at-request,
     holey Complete) before the range could travel again, or the
     earlier grant belongs to a dead incarnation whose whole lease
     table was re-derived from the journal (epoch differs). A repeat
     under the {e same} lease id is the network duplicating a grant
     frame — the worker honestly re-ran what it was handed; dedup
     absorbs it. [Core.create]'s [on_requeue] records the requeues. *)
  let exec_rev = ref [] in
  let requeued : (int * int, unit) Hashtbl.t = Hashtbl.create 64 in
  (* ---- the restartable coordinator ----
     The engine and its lease table live in [core]; a CoordCrash drops
     them (private state dies with the process) and the restart boots a
     fresh incarnation whose only input is the journal — exactly the
     recovery the real [serve --resume] runs. *)
  let epoch = ref 0 in
  let core : Net.conn Core.t option ref = ref None in
  let finished = ref false in
  let install_listener () =
    Net.set_listener net
      (Some
         (fun conn ->
           match !core with
           | None -> ()
           | Some co ->
               let c = Core.add_client co conn in
               (* a connection accepted by one incarnation must never
                  poke a later one: guard every callback on the engine
                  it was registered with still being current *)
               let live () = match !core with Some co' -> co' == co | None -> false in
               Net.set_handler conn
                 {
                   Net.h_frames =
                     (fun frames ->
                       if live () then List.iter (Core.deliver co c) frames);
                   h_closed =
                     (fun () ->
                       if live () && not (Core.dropped c) then
                         Core.client_closed co c ~why:"eof");
                   h_error =
                     (fun e ->
                       if live () && not (Core.dropped c) then
                         Core.client_closed co c ~why:e);
                 }))
  in
  let boot () =
    incr epoch;
    let this_epoch = !epoch in
    let st = Checkpoint.fresh ~total in
    List.iter
      (fun (r : Journal.record) ->
        if not (Checkpoint.is_done st r.Journal.trial) then
          Checkpoint.mark st r.Journal.trial ~ok:r.Journal.ok)
      !records_rev;
    let co =
      Core.create ~clock:(Sched.clock sched) ~epoch:this_epoch
        ~fence_epochs:cfg.fence_epochs ~verify_complete:cfg.verify_complete
        ~on_event:(fun s ->
          Events.emit evlog ~severity:(Coordinator.classify s) ~scope:"dist" s;
          tracef "coord: %s" s)
        ~on_requeue:(fun _name lease -> Hashtbl.replace requeued (this_epoch, lease) ())
        ~io
        ~append:(fun r -> records_rev := r :: !records_rev)
        ~st ~spec ~lease_trials:cfg.lease_trials ~lease_timeout_s ~hb_interval_s
        ~max_workers:(cfg.workers * 4) ~supervision:Codec.no_supervision ()
    in
    core := Some co;
    install_listener ()
  in
  boot ();
  (* status probes: the very responses the live HTTP endpoint would
     serve, taken under virtual time. Process metrics are shared global
     state across a test binary, so /metrics is not probed here. *)
  let status_probes_rev = ref [] in
  let probe () =
    match !core with
    | None -> () (* coordinator down: nothing is serving /status *)
    | Some co ->
        let source =
          {
            Status.view = (fun () -> Core.view co);
            events = (fun ~limit -> Events.tail ~limit evlog);
            metrics = (fun () -> "");
          }
        in
        List.iter
          (fun path ->
            let r = Status.respond source path in
            status_probes_rev :=
              (Sched.now_ns sched, path, r.Status.body) :: !status_probes_rev)
          [ "/status"; "/workers"; "/events" ]
  in
  (* coordinator completion is observed on the tick timer; once done,
     finish + close the listener so restarting workers stop cleanly and
     the event queue can drain *)
  let rec tick () =
    if not !finished then begin
      (match !core with
      | None -> () (* down: the restart event re-enters via [boot] *)
      | Some co ->
          if Core.is_done co then begin
            finished := true;
            tracef "coord: campaign complete";
            Core.finish co;
            Net.set_listener net None;
            probe ()
          end
          else Core.tick co);
      if not !finished then Sched.after sched ~ns:tick_ns tick
    end
  in
  Sched.after sched ~ns:tick_ns tick;
  Sched.at sched ~ns:probe_ns (fun () -> if not !finished then probe ());

  (* ---- worker actors ---- *)
  let ws =
    Array.init cfg.workers (fun i ->
        {
          idx = i;
          wname = Printf.sprintf "w%d" i;
          inc = 0;
          alive = true;
          wconn = None;
          phase = Joining;
          seq = 0;
          sent = 0;
          wepoch = 0;
          wcur = None;
          conn_fails = 0;
        })
  in
  let bump w = w.seq <- w.seq + 1 in
  let send_msg w msg =
    match w.wconn with None -> () | Some c -> ignore (Net.send c msg)
  in
  let log_exec w ~epoch ~lease id =
    exec_rev := (w.idx, id, epoch, lease, w.inc) :: !exec_rev
  in
  let rec start w =
    match Net.connect net ~worker:w.idx with
    | Error why ->
        (* coordinator down (or campaign over and the listener closed):
           bounded backoff, like the socket worker — not instant death *)
        w.conn_fails <- w.conn_fails + 1;
        if w.conn_fails > connect_retry.Retry.max_retries then
          stop w ~why:(why ^ " — connect retries exhausted")
        else begin
          let ns =
            Retry.backoff_ns connect_retry ~seed:(Int64.of_int w.idx)
              ~attempt:w.conn_fails
          in
          tracef "%s: %s — connect retry %d in %dms" w.wname why w.conn_fails
            (ns / 1_000_000);
          bump w;
          let inc = w.inc in
          Sched.after sched ~ns (fun () -> if w.alive && w.inc = inc then start w)
        end
    | Ok conn ->
        w.conn_fails <- 0;
        w.wconn <- Some conn;
        w.phase <- Joining;
        bump w;
        let inc = w.inc in
        Net.set_handler conn
          {
            Net.h_frames =
              (fun frames ->
                List.iter
                  (fun f -> if w.alive && w.inc = inc then on_frame w f)
                  frames);
            h_closed =
              (fun () ->
                if w.alive && w.inc = inc then begin
                  tracef "%s: eof — reconnect" w.wname;
                  reconnect w
                end);
            h_error =
              (fun e ->
                if w.alive && w.inc = inc then begin
                  tracef "%s: stream error (%s) — reconnect" w.wname e;
                  reconnect w
                end);
          };
        tracef "%s: hello (last epoch %d)" w.wname w.wepoch;
        send_msg w (Protocol.hello ~name:w.wname ~domains:1 ~last_epoch:w.wepoch);
        arm_silence w;
        arm_heartbeat w
  and arm_silence w =
    (* reply deadline: an awaiting worker that hears nothing gives up on
       the connection — this (not any protocol message) is what recovers
       a dropped Welcome or Lease *)
    let inc = w.inc and seq = w.seq in
    Sched.after sched ~ns:silence_ns (fun () ->
        if w.alive && w.inc = inc && w.seq = seq then begin
          tracef "%s: no reply — reconnect" w.wname;
          reconnect w
        end)
  and arm_heartbeat w =
    let inc = w.inc in
    Sched.after sched ~ns:hb_ns (fun () ->
        if w.alive && w.inc = inc then begin
          (* beats piggyback a synthetic telemetry snapshot (results
             streamed so far) — deterministic, unlike real process
             metrics, so the merged fleet counters golden-test *)
          send_msg w
            (Codec.Heartbeat
               {
                 snapshot =
                   Some
                     (Json.Obj
                        [
                          ( "counters",
                            Json.Obj [ ("netsim.results_sent", Json.Int w.sent) ] );
                        ]);
                 spans = None;
               });
          arm_heartbeat w
        end)
  and request w =
    bump w;
    w.phase <- Awaiting;
    send_msg w Codec.Request;
    arm_silence w
  and resend w =
    (* replay the last lease to a fresh session: its records (the
       coordinator dedups them by trial id) and its Complete under the
       original grant epoch (fenced there if an incarnation has passed).
       Nothing is re-executed — this is retransmission, not rework. *)
    match w.wcur with
    | None -> ()
    | Some wl ->
        tracef "%s: resend lease #%d@%d — %d record(s)" w.wname wl.wl_id wl.wl_epoch
          (List.length wl.wl_prod_rev);
        List.iter
          (fun id ->
            w.sent <- w.sent + 1;
            send_msg w (Codec.Result (record_of spec id)))
          (List.rev wl.wl_prod_rev);
        send_msg w (Codec.Complete { lease = wl.wl_id; epoch = wl.wl_epoch })
  and run_lease w ~lease ~epoch ~ids =
    bump w;
    w.phase <- Running;
    tracef "%s: lease #%d@%d — %d trial(s)" w.wname lease epoch (List.length ids);
    let wl = { wl_id = lease; wl_epoch = epoch; wl_ids = ids; wl_prod_rev = [] } in
    w.wcur <- Some wl;
    let inc = w.inc in
    List.iteri
      (fun j id ->
        Sched.after sched ~ns:((j + 1) * trial_cost_ns) (fun () ->
            if w.alive && w.inc = inc then begin
              w.sent <- w.sent + 1;
              log_exec w ~epoch ~lease id;
              wl.wl_prod_rev <- id :: wl.wl_prod_rev;
              send_msg w (Codec.Result (record_of spec id))
            end))
      ids;
    Sched.after sched
      ~ns:((List.length ids + 1) * trial_cost_ns)
      (fun () ->
        if w.alive && w.inc = inc then begin
          send_msg w (Codec.Complete { lease; epoch });
          request w
        end)
  and finish_lease_offline w =
    (* a connection lost mid-lease cancels the production timers (they
       are incarnation-guarded), but the socket worker's bounded range
       still finishes without its coordinator — mirror that here so the
       resent Complete is honest *)
    match w.wcur with
    | Some wl when w.phase = Running ->
        let rec drop n l = if n <= 0 then l else match l with [] -> [] | _ :: tl -> drop (n - 1) tl in
        (match drop (List.length wl.wl_prod_rev) wl.wl_ids with
        | [] -> ()
        | remaining ->
            tracef "%s: finishing lease #%d offline — %d trial(s)" w.wname wl.wl_id
              (List.length remaining);
            List.iter
              (fun id ->
                log_exec w ~epoch:wl.wl_epoch ~lease:wl.wl_id id;
                wl.wl_prod_rev <- id :: wl.wl_prod_rev)
              remaining)
    | Some _ | None -> ()
  and stop w ~why =
    if w.phase <> Stopped then begin
      tracef "%s: stop (%s)" w.wname why;
      w.inc <- w.inc + 1;
      bump w;
      w.alive <- false;
      w.phase <- Stopped;
      (match w.wconn with Some c -> Net.close c | None -> ());
      w.wconn <- None
    end
  and reconnect w =
    finish_lease_offline w;
    w.inc <- w.inc + 1;
    bump w;
    (match w.wconn with Some c -> Net.close c | None -> ());
    w.wconn <- None;
    w.phase <- Joining;
    let inc = w.inc in
    Sched.after sched ~ns:reconnect_ns (fun () ->
        if w.alive && w.inc = inc then start w)
  and on_frame w frame =
    match Codec.of_frame frame with
    | Ok msg -> on_msg w msg
    | Error why ->
        tracef "%s: bad frame (%s) — reconnect" w.wname why;
        reconnect w
  and on_msg w msg =
    match w.phase with
    | Stopped -> ()
    | Joining -> (
        match msg with
        | Codec.Bye { reason } -> stop w ~why:("bye: " ^ reason)
        | _ -> (
            match Protocol.welcome_reply msg with
            | Ok welcome ->
                if w.wepoch > 0 && welcome.Protocol.epoch <> w.wepoch then
                  tracef "%s: coordinator is now epoch %d (was %d)" w.wname
                    welcome.Protocol.epoch w.wepoch;
                w.wepoch <- welcome.Protocol.epoch;
                resend w;
                request w
            | Error _ ->
                (* junk or a reordered stray — keep waiting for the
                   real Welcome, with a fresh reply deadline *)
                bump w;
                arm_silence w))
    | Awaiting -> (
        match Protocol.lease_reply msg with
        | Protocol.Granted { lease; epoch; lo; hi; done_ids } ->
            run_lease w ~lease ~epoch ~ids:(Protocol.ids_to_run ~lo ~hi ~done_ids)
        | Protocol.Backoff s ->
            bump w;
            let inc = w.inc and seq = w.seq in
            Sched.after sched
              ~ns:(int_of_float (s *. 1e9))
              (fun () ->
                if w.alive && w.inc = inc && w.seq = seq then request w)
        | Protocol.Stop reason -> stop w ~why:("bye: " ^ reason)
        | Protocol.Ignore | Protocol.Unexpected _ ->
            bump w;
            arm_silence w)
    | Running -> (
        (* progress is timer-driven; only a Bye matters here (dup'd or
           reordered old replies are ignored) *)
        match msg with
        | Codec.Bye { reason } -> stop w ~why:("bye: " ^ reason)
        | _ -> ())
  in
  Array.iter
    (fun w -> Sched.after sched ~ns:((w.idx + 1) * 1_000_000) (fun () -> start w))
    ws;

  (* ---- the schedule's partition and crash windows ---- *)
  List.iter
    (fun (at_ns, heal_ns, group) ->
      Sched.at sched ~ns:at_ns (fun () ->
          List.iter (fun wi -> Net.set_partitioned net ~worker:wi true) group);
      Sched.at sched ~ns:heal_ns (fun () ->
          List.iter (fun wi -> Net.set_partitioned net ~worker:wi false) group))
    (Fault_plan.partitions plan);
  List.iter
    (fun (wi, at_ns, restart_ns) ->
      let w = ws.(wi) in
      Sched.at sched ~ns:at_ns (fun () ->
          tracef "%s: crash" w.wname;
          w.inc <- w.inc + 1;
          bump w;
          w.alive <- false;
          w.phase <- Stopped;
          w.wconn <- None;
          (* a crashed process remembers nothing *)
          w.wepoch <- 0;
          w.wcur <- None;
          w.conn_fails <- 0;
          Net.crash_worker net ~worker:wi);
      Sched.at sched ~ns:restart_ns (fun () ->
          tracef "%s: restart" w.wname;
          w.inc <- w.inc + 1;
          bump w;
          (match w.wconn with Some c -> Net.close c | None -> ());
          w.wconn <- None;
          w.conn_fails <- 0;
          w.alive <- true;
          start w))
    (Fault_plan.crashes plan);
  List.iter
    (fun (at_ns, restart_ns) ->
      Sched.at sched ~ns:at_ns (fun () ->
          if (not !finished) && Option.is_some !core then begin
            tracef "coord: crash — epoch %d 's lease table and connections lost" !epoch;
            Net.crash_coordinator net;
            core := None
          end);
      Sched.at sched ~ns:restart_ns (fun () ->
          if (not !finished) && Option.is_none !core then begin
            boot ();
            tracef "coord: restarted as epoch %d" !epoch
          end))
    (Fault_plan.coord_crashes plan);

  (* ---- run to completion or the horizon ---- *)
  let ending = Sched.run sched ~until_ns:cfg.horizon_ns in
  let records = List.rev !records_rev in
  let counts = Array.make total 0 in
  List.iter
    (fun (r : Journal.record) ->
      if r.Journal.trial >= 0 && r.Journal.trial < total then
        counts.(r.Journal.trial) <- counts.(r.Journal.trial) + 1)
    records;
  let first p =
    let rec go i =
      if i >= total then None else if p counts.(i) then Some i else go (i + 1)
    in
    go 0
  in
  (* The worker-side checker. A repeat under the same (epoch, lease) is
     a duplicated grant frame — benign, dedup absorbs it. A repeat
     under a different epoch rode a coordinator recovery — the whole
     lease table was re-derived from the journal, which is a reconcile.
     A repeat within one epoch under two different leases is legitimate
     only if the earlier-granted lease was requeued: a shard lives in
     at most one lease at a time, so for the range to travel twice the
     first grant must have been settled, and a verified retire proves
     the trials journaled (they would not travel again). An un-requeued
     repeat means a lease was retired on a stale incarnation's word —
     the fencing bug. Grant order is by lease id (ids are issued
     monotonically within an incarnation), not by execution order: a
     reordered grant frame can arrive — and run — after its range was
     requeued and re-granted. *)
  let reexec () =
    let tbl : (int * int, int * int * int) Hashtbl.t = Hashtbl.create 256 in
    let rec scan = function
      | [] -> None
      | (widx, id, epoch, lease, inc) :: rest -> (
          match Hashtbl.find_opt tbl (widx, id) with
          | Some (epoch', lease', inc')
            when epoch = epoch' && lease <> lease' && inc = inc'
                 && not (Hashtbl.mem requeued (epoch, min lease lease')) ->
              Some (Reexec { worker = Printf.sprintf "w%d" widx; trial = id })
          | _ ->
              Hashtbl.replace tbl (widx, id) (epoch, lease, inc);
              scan rest)
    in
    scan (List.rev !exec_rev)
  in
  let violation =
    match first (fun c -> c > 1) with
    | Some id -> Some (Duplicate id)
    | None ->
        if not !finished then
          Some
            (Stalled
               (Printf.sprintf "%s at %dms with %d/%d trial(s) journaled"
                  (match ending with
                  | `Horizon -> "horizon"
                  | `Drained -> "events drained")
                  (Sched.now_ns sched / 1_000_000)
                  (List.length records) total))
        else (
          match first (fun c -> c = 0) with
          | Some id -> Some (Hole id)
          | None -> reexec ())
  in
  {
    violation;
    fired = Fault_plan.fired plan;
    records;
    journal_bytes =
      String.concat "" (List.map (fun r -> Journal.to_line r ^ "\n") records);
    trace = List.rev !trace_rev;
    events = Sched.executed sched;
    end_ns = Sched.now_ns sched;
    status_probes = List.rev !status_probes_rev;
  }
