module Rng = Ffault_prng.Rng

let schedule_seed ~root i = Rng.seed_of_string (Printf.sprintf "%Ld#%d" root i)

let max_probes = 400

(* split [l] into chunks of [size] (last may be short) *)
let chunks_of size l =
  let rec go acc cur n = function
    | [] -> List.rev (if cur = [] then acc else List.rev cur :: acc)
    | x :: rest ->
        if n = size then go (List.rev cur :: acc) [ x ] 1 rest
        else go acc (x :: cur) (n + 1) rest
  in
  go [] [] 0 l

let shrink ~config ~seed ~atoms ~violation =
  let probes = ref 0 in
  let check sub =
    if !probes >= max_probes then None
    else begin
      incr probes;
      (Sim.run ~atoms:sub config ~seed).Sim.violation
    end
  in
  (* ddmin (Zeller-Hildebrandt): probe chunks, then complements, at
     doubling granularity, keeping any failing subset *)
  let rec ddmin current cur_v n =
    let len = List.length current in
    if len <= 1 || !probes >= max_probes then (current, cur_v)
    else begin
      let n = min n len in
      let size = (len + n - 1) / n in
      let cs = chunks_of size current in
      let rec probe_chunks = function
        | [] -> None
        | c :: rest -> (
            match check c with Some v -> Some (c, v, 2) | None -> probe_chunks rest)
      in
      let rec probe_compls i =
        if i >= List.length cs then None
        else
          let compl = List.concat (List.filteri (fun j _ -> j <> i) cs) in
          match check compl with
          | Some v -> Some (compl, v, max (n - 1) 2)
          | None -> probe_compls (i + 1)
      in
      let reduced =
        match probe_chunks cs with Some r -> Some r | None -> probe_compls 0
      in
      match reduced with
      | Some (sub, v, n') -> ddmin sub v n'
      | None -> if n >= len then (current, cur_v) else ddmin current cur_v (2 * n)
    end
  in
  let minimal, v = ddmin atoms violation 2 in
  (minimal, v, !probes)

type report = {
  s_index : int;
  s_seed : int64;
  s_violation : Sim.violation;
  s_fired : int;
  s_shrunk : Fault_plan.atom list;
  s_shrunk_violation : Sim.violation;
  s_probes : int;
}

type sweep = { explored : int; violations : report list; total_events : int }

let explore ?(on_progress = fun _ -> ()) ?(max_violations = 1) ~config ~root
    ~schedules () =
  let viols = ref [] in
  let events = ref 0 in
  let explored = ref 0 in
  (try
     for i = 0 to schedules - 1 do
       let seed = schedule_seed ~root i in
       let r = Sim.run config ~seed in
       explored := i + 1;
       events := !events + r.Sim.events;
       (match r.Sim.violation with
       | None -> ()
       | Some v ->
           let shrunk, sv, probes =
             shrink ~config ~seed ~atoms:r.Sim.fired ~violation:v
           in
           viols :=
             {
               s_index = i;
               s_seed = seed;
               s_violation = v;
               s_fired = List.length r.Sim.fired;
               s_shrunk = shrunk;
               s_shrunk_violation = sv;
               s_probes = probes;
             }
             :: !viols;
           if List.length !viols >= max_violations then raise Exit);
       on_progress i
     done
   with Exit -> ());
  { explored = !explored; violations = List.rev !viols; total_events = !events }
