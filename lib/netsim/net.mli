(** The simulated network: {!Wire}-framed byte links with injected
    faults, delivered through the {!Sched} event queue.

    Semantics mirror the socket transport at frame granularity. A
    {!conn} is one end of a duplex connection; sends encode through the
    real {!Ffault_dist.Wire.encode} and deliveries feed the real
    {!Ffault_dist.Wire.Decoder} on the receiving end, so malformed
    bytes fail identically to the socket path (the conformance tests
    pin this). Delivery on a link is FIFO (arrival clamped past the
    previous frame's) unless a [Reorder] directive bypasses the clamp;
    [Drop]/[Dup]/[Delay] do what they say; a partitioned worker's
    frames (both directions) are dropped at send time; a {e crashed}
    worker's endpoints turn black holes — no EOF, the coordinator must
    notice by silence. A graceful {!close} propagates an EOF event to
    the peer.

    Like the socket layer, [send] never fails on a live conn — faults
    lose frames silently; only sending on a closed conn errors. *)

type t
type conn

type handler = {
  h_frames : Ffault_dist.Wire.frame list -> unit;
  h_closed : unit -> unit;  (** peer EOF *)
  h_error : string -> unit;  (** decode error — the stream is poisoned *)
}

val create :
  sched:Sched.t -> plan:Fault_plan.t -> ?trace:(string -> unit) -> workers:int -> unit -> t

val set_listener : t -> (conn -> unit) option -> unit
(** The coordinator's accept path: called synchronously with the
    coordinator-side conn of each new connection. [None] = listener
    closed; subsequent {!connect}s are refused. *)

val connect : t -> worker:int -> (conn, string) result
(** A new connection from worker [worker]; returns the worker-side
    conn. Refused once the listener is closed. *)

val set_handler : conn -> handler -> unit
(** Must be set before the first delivery can land; frames arriving at
    an endpoint with no handler are dropped. *)

val peer : conn -> string
val send : conn -> Ffault_dist.Codec.msg -> (unit, string) result

val send_raw : conn -> string -> unit
(** Put raw bytes on the wire (no framing) — the conformance fuzz
    tests drive the receiving decoder with arbitrary byte strings. *)

val close : conn -> unit
(** Graceful: peer gets [h_closed] after the usual link latency. *)

val crash_worker : t -> worker:int -> unit
(** Black-hole every conn of [worker]: undelivered and future frames to
    or from it vanish, no EOF anywhere. *)

val crash_coordinator : t -> unit
(** Black-hole every coordinator-side endpoint and drop the listener:
    worker frames vanish without EOF and new connects are refused until
    {!set_listener} installs the restarted incarnation's accept path.
    Worker-side endpoints stay open — they learn of the crash only by
    silence. *)

val set_partitioned : t -> worker:int -> bool -> unit
(** While set, frames to or from [worker] are dropped at send time
    (in-flight frames still arrive — the cut is a link cut, not a
    queue flush). *)
