(** The deterministic event scheduler: virtual time plus an ordered
    queue of thunks.

    Events execute in [(time, insertion-seq)] order — ties broken by
    who scheduled first — and the {!Ffault_runtime.Clock.Virtual} clock
    is set to each event's timestamp before it runs, so every timeout,
    lease expiry and watchdog decision made by code reading
    {!clock} is a pure function of the event sequence. Nothing here
    reads the wall clock. *)

type t

val create : ?start_ns:int -> unit -> t

val clock : t -> Ffault_runtime.Clock.t
(** The virtual clock, for injection into {!Ffault_dist.Core},
    {!Ffault_dist.Lease} and friends. *)

val now_ns : t -> int

val at : t -> ns:int -> (unit -> unit) -> unit
(** Schedule at absolute virtual time [ns] (clamped to now — the
    simulator never schedules into the past). *)

val after : t -> ns:int -> (unit -> unit) -> unit
(** Schedule [ns] from now.
    @raise Invalid_argument if [ns < 0]. *)

val pending : t -> int

val run : t -> until_ns:int -> [ `Drained | `Horizon ]
(** Execute events in order until the queue drains or the next event
    would fire past [until_ns] (the horizon — a stalled simulation's
    backstop). The clock is left at the last executed event's time
    ([`Drained]) or at [until_ns] ([`Horizon]). *)

val executed : t -> int
(** Events executed so far (for the harness's stats line). *)
