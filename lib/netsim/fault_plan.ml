module Rng = Ffault_prng.Rng

type directive =
  | Drop
  | Dup
  | Delay of int
  | Reorder of int

type atom =
  | Frame of { link : int; k : int; d : directive }
  | Partition of { at_ns : int; heal_ns : int; group : int list }
  | Crash of { worker : int; at_ns : int; restart_ns : int }
  | CoordCrash of { at_ns : int; restart_ns : int }

let directive_to_string = function
  | Drop -> "drop"
  | Dup -> "dup"
  | Delay ns -> Printf.sprintf "delay+%dus" (ns / 1_000)
  | Reorder ns -> Printf.sprintf "reorder+%dus" (ns / 1_000)

let atom_to_string = function
  | Frame { link; k; d } ->
      let dir = if link land 1 = 0 then Printf.sprintf "w%d->c" (link / 2)
        else Printf.sprintf "c->w%d" (link / 2)
      in
      Printf.sprintf "frame %s #%d %s" dir k (directive_to_string d)
  | Partition { at_ns; heal_ns; group } ->
      Printf.sprintf "partition {%s} @%dms heal@%dms"
        (String.concat "," (List.map string_of_int group))
        (at_ns / 1_000_000) (heal_ns / 1_000_000)
  | Crash { worker; at_ns; restart_ns } ->
      Printf.sprintf "crash w%d @%dms restart@%dms" worker (at_ns / 1_000_000)
        (restart_ns / 1_000_000)
  | CoordCrash { at_ns; restart_ns } ->
      Printf.sprintf "crash coord @%dms restart@%dms" (at_ns / 1_000_000)
        (restart_ns / 1_000_000)

let pp_atom ppf a = Fmt.string ppf (atom_to_string a)

type params = {
  drop_p : float;
  dup_p : float;
  delay_p : float;
  reorder_p : float;
  max_extra_ns : int;
}

type mode = Generate | Replay of (atom, unit) Hashtbl.t

type t = {
  seed : int64;
  params : params;
  mode : mode;
  all_partitions : (int * int * int list) list;
  all_crashes : (int * int * int) list;
  all_coord_crashes : (int * int) list;
  mutable fired_rev : atom list;
  seen : (int * int, unit) Hashtbl.t;  (* frame queries already recorded *)
}

(* Each decision gets its own generator keyed by a stable label, so any
   frame's fate is computable without replaying the stream before it. *)
let rng_of t label = Rng.make ~seed:(Rng.seed_of_string (Printf.sprintf "%Ld/%s" t.seed label))

let derive_params seed =
  let g = Rng.make ~seed:(Rng.seed_of_string (Printf.sprintf "%Ld/params" seed)) in
  {
    (* bounded so schedules stay live: the reconnect-on-silence worker
       and lease expiry recover from any loss rate under ~1 *)
    drop_p = Rng.float g *. 0.25;
    dup_p = Rng.float g *. 0.15;
    delay_p = Rng.float g *. 0.3;
    reorder_p = Rng.float g *. 0.2;
    max_extra_ns = 1_000_000 + Rng.int g 400_000_000 (* 1ms .. ~400ms *);
  }

let derive_partitions seed ~workers =
  let g = Rng.make ~seed:(Rng.seed_of_string (Printf.sprintf "%Ld/partitions" seed)) in
  let n = Rng.int g 3 in
  List.init n (fun _ ->
      let at_ns = Rng.int g 3_000_000_000 in
      let heal_ns = at_ns + 50_000_000 + Rng.int g 600_000_000 in
      let k = 1 + Rng.int g (max 1 workers) in
      let group = Rng.sample_without_replacement g ~k:(min k workers) ~n:workers in
      (at_ns, heal_ns, group))

let derive_crashes seed ~workers =
  let g = Rng.make ~seed:(Rng.seed_of_string (Printf.sprintf "%Ld/crashes" seed)) in
  let n = Rng.int g 3 in
  List.init n (fun _ ->
      let worker = Rng.int g workers in
      let at_ns = Rng.int g 3_000_000_000 in
      let restart_ns = at_ns + 20_000_000 + Rng.int g 400_000_000 in
      (worker, at_ns, restart_ns))

(* Coordinator crash windows use a fresh label so every pre-existing
   stream (params, partitions, crashes, frame fates) of a given seed is
   untouched — old regression seeds keep their schedules, they just may
   gain a coordinator crash on top. At most one window: a second crash
   of the same process adds no new interleaving class, only run time. *)
let derive_coord_crashes seed =
  let g = Rng.make ~seed:(Rng.seed_of_string (Printf.sprintf "%Ld/coordcrash" seed)) in
  let n = Rng.int g 2 in
  List.init n (fun _ ->
      let at_ns = Rng.int g 3_000_000_000 in
      let restart_ns = at_ns + 20_000_000 + Rng.int g 400_000_000 in
      (at_ns, restart_ns))

let generate ~seed ~workers =
  let t =
    {
      seed;
      params = derive_params seed;
      mode = Generate;
      all_partitions = derive_partitions seed ~workers;
      all_crashes = derive_crashes seed ~workers;
      all_coord_crashes = derive_coord_crashes seed;
      fired_rev = [];
      seen = Hashtbl.create 256;
    }
  in
  (* windows are part of the schedule whether or not traffic crosses
     them: seed the fired set so the shrinker can take them away *)
  List.iter
    (fun (at_ns, heal_ns, group) ->
      t.fired_rev <- Partition { at_ns; heal_ns; group } :: t.fired_rev)
    t.all_partitions;
  List.iter
    (fun (worker, at_ns, restart_ns) ->
      t.fired_rev <- Crash { worker; at_ns; restart_ns } :: t.fired_rev)
    t.all_crashes;
  List.iter
    (fun (at_ns, restart_ns) ->
      t.fired_rev <- CoordCrash { at_ns; restart_ns } :: t.fired_rev)
    t.all_coord_crashes;
  t

let replay t ~atoms =
  let tbl = Hashtbl.create (List.length atoms * 2 + 1) in
  List.iter (fun a -> Hashtbl.replace tbl a ()) atoms;
  (* window atoms are taken verbatim from [atoms] — a listed window
     fires, an unlisted one is suppressed. This is the subset semantics
     the shrinker needs, and it also admits hand-written crash windows
     (regression reproducers) that the seed never sampled. *)
  {
    t with
    mode = Replay tbl;
    all_partitions =
      List.filter_map
        (function Partition { at_ns; heal_ns; group } -> Some (at_ns, heal_ns, group) | _ -> None)
        atoms;
    all_crashes =
      List.filter_map
        (function Crash { worker; at_ns; restart_ns } -> Some (worker, at_ns, restart_ns) | _ -> None)
        atoms;
    all_coord_crashes =
      List.filter_map
        (function CoordCrash { at_ns; restart_ns } -> Some (at_ns, restart_ns) | _ -> None)
        atoms;
    fired_rev = [];
    seen = Hashtbl.create 256;
  }

let sample_directive t ~link ~k =
  let g = rng_of t (Printf.sprintf "frame/%d/%d" link k) in
  let p = t.params in
  if Rng.bernoulli g ~p:p.drop_p then Some Drop
  else if Rng.bernoulli g ~p:p.dup_p then Some Dup
  else if Rng.bernoulli g ~p:p.delay_p then Some (Delay (1 + Rng.int g p.max_extra_ns))
  else if Rng.bernoulli g ~p:p.reorder_p then Some (Reorder (1 + Rng.int g p.max_extra_ns))
  else None

let frame_fault t ~link ~k =
  match t.mode with
  | Generate -> (
      match sample_directive t ~link ~k with
      | None -> None
      | Some d ->
          if not (Hashtbl.mem t.seen (link, k)) then begin
            Hashtbl.replace t.seen (link, k) ();
            t.fired_rev <- Frame { link; k; d } :: t.fired_rev
          end;
          Some d)
  | Replay tbl -> (
      (* only an enabled atom fires; the directive itself is still the
         seed's — a disabled (link, k) is simply benign *)
      match sample_directive t ~link ~k with
      | Some d when Hashtbl.mem tbl (Frame { link; k; d }) -> Some d
      | Some _ | None -> None)

let latency_ns t ~link =
  let g = rng_of t (Printf.sprintf "latency/%d" link) in
  50_000 + Rng.int g 2_000_000 (* 50us .. ~2ms *)

let partitions t = t.all_partitions
let crashes t = t.all_crashes
let coord_crashes t = t.all_coord_crashes
let fired t = List.rev t.fired_rev
