open Ffault_objects
module Fault_kind = Ffault_fault.Fault_kind
module Classify = Ffault_hoare.Classify
module Triple = Ffault_hoare.Triple
module Recover_spec = Ffault_hoare.Recover_spec
module Crash_plan = Ffault_recover.Crash_plan

type event =
  | Op_step of {
      step : int;
      proc : int;
      obj : Obj_id.t;
      op : Op.t;
      pre_state : Value.t;
      post_state : Value.t;
      response : Value.t;
      injected : Fault_kind.t option;
    }
  | Hang of { step : int; proc : int; obj : Obj_id.t; op : Op.t }
  | Corruption of { step : int; obj : Obj_id.t; before : Value.t; after : Value.t }
  | Decided of { step : int; proc : int; value : Value.t }
  | Step_limit_hit of { step : int; proc : int }
  | Crashed of { step : int; proc : int; error : string }
  | Proc_crash of {
      step : int;
      proc : int;
      obj : Obj_id.t;
      op : Op.t;
      pre_state : Value.t;
      post_state : Value.t;
      effect : Crash_plan.crash_effect;
    }
  | Nvm_loss of { step : int; obj : Obj_id.t; before : Value.t; after : Value.t }
  | Restart of { step : int; proc : int }

type t = event list

let pp_event ~world ppf = function
  | Op_step { step; proc; obj; op; pre_state; post_state; response; injected } ->
      Fmt.pf ppf "[%4d] p%d %s.%a : %a \xe2\x86\x92 %a, returns %a%a" step proc
        (World.label_of world obj) Op.pp op Value.pp pre_state Value.pp post_state Value.pp
        response
        (Fmt.option (fun ppf k -> Fmt.pf ppf "   !! %a fault" Fault_kind.pp k))
        injected
  | Hang { step; proc; obj; op } ->
      Fmt.pf ppf "[%4d] p%d %s.%a : hangs (nonresponsive fault)" step proc
        (World.label_of world obj) Op.pp op
  | Corruption { step; obj; before; after } ->
      Fmt.pf ppf "[%4d] data fault: %s : %a \xe2\x86\x92 %a" step (World.label_of world obj)
        Value.pp before Value.pp after
  | Decided { step; proc; value } ->
      Fmt.pf ppf "[%4d] p%d decides %a" step proc Value.pp value
  | Step_limit_hit { step; proc } -> Fmt.pf ppf "[%4d] p%d exceeded its step budget" step proc
  | Crashed { step; proc; error } -> Fmt.pf ppf "[%4d] p%d crashed: %s" step proc error
  | Proc_crash { step; proc; obj; op; pre_state; post_state; effect } ->
      Fmt.pf ppf "[%4d] p%d crash-restarts in %s.%a : %a \xe2\x86\x92 %a (op %a)" step proc
        (World.label_of world obj) Op.pp op Value.pp pre_state Value.pp post_state
        Crash_plan.pp_crash_effect effect
  | Nvm_loss { step; obj; before; after } ->
      Fmt.pf ppf "[%4d] nvm loss: %s : %a \xe2\x86\x92 %a" step (World.label_of world obj)
        Value.pp before Value.pp after
  | Restart { step; proc } ->
      Fmt.pf ppf "[%4d] p%d restarts at its recovery section" step proc

let pp ~world ppf t = Fmt.pf ppf "@[<v>%a@]" (Fmt.list ~sep:Fmt.cut (pp_event ~world)) t

let op_steps t =
  List.fold_left (fun acc -> function Op_step _ -> acc + 1 | _ -> acc) 0 t

let injected_faults t =
  List.filter_map
    (function
      | Op_step { obj; injected = Some k; _ } -> Some (obj, k)
      | Hang { obj; _ } -> Some (obj, Fault_kind.Nonresponsive)
      | Op_step _ | Corruption _ | Decided _ | Step_limit_hit _ | Crashed _ | Proc_crash _
      | Nvm_loss _ | Restart _ ->
          None)
    t

let crash_count t =
  List.fold_left (fun acc -> function Proc_crash _ -> acc + 1 | _ -> acc) 0 t

let restart_count t =
  List.fold_left (fun acc -> function Restart _ -> acc + 1 | _ -> acc) 0 t

type audit_error = { at_step : int; reason : string }

let pp_audit_error ppf e = Fmt.pf ppf "step %d: %s" e.at_step e.reason

let audit ~world t =
  List.filter_map
    (function
      | Op_step { step; obj; op; pre_state; post_state; response; injected; _ } -> (
          let kind = World.kind_of world obj in
          let hstep = { Triple.kind; pre_state; op; post_state; response } in
          if not (Triple.precondition_met Triple.correct hstep) then
            Some { at_step = step; reason = "step violates the operation's precondition" }
          else
            let satisfies_phi = Triple.correct.Triple.post hstep in
            match injected with
            | None ->
                if satisfies_phi then None
                else
                  Some
                    {
                      at_step = step;
                      reason = "unlabeled step violates the sequential specification \xce\xa6";
                    }
            | Some k ->
                if satisfies_phi then
                  Some
                    {
                      at_step = step;
                      reason =
                        Fmt.str
                          "step labeled %a satisfies \xce\xa6 \xe2\x80\x94 not a fault per Definition 1"
                          Fault_kind.pp k;
                    }
                else (
                  match Fault_kind.phi'_for k op with
                  | Some phi' when phi' hstep -> None
                  | Some _ ->
                      Some
                        {
                          at_step = step;
                          reason =
                            Fmt.str "step does not satisfy the \xce\xa6' of its %a label"
                              Fault_kind.pp k;
                        }
                  | None ->
                      Some
                        {
                          at_step = step;
                          reason =
                            Fmt.str "no \xce\xa6' is defined for %a on this operation"
                              Fault_kind.pp k;
                        }))
      | Proc_crash { step; obj; op; pre_state; post_state; effect; _ } ->
          (* Recoverable linearizability at the step level: the crashed
             operation's state transition must match its label — vanished
             (no effect) or linearized (full sequential-spec effect), and
             never some third, half-applied shape. The response was lost
             with the process, so only states are compared. *)
          let kind = World.kind_of world obj in
          let hstep = { Triple.kind; pre_state; op; post_state; response = Value.Bottom } in
          let holds =
            match effect with
            | Crash_plan.Vanish -> Recover_spec.vanished hstep
            | Crash_plan.Linearize -> Recover_spec.linearized hstep
          in
          if holds then None
          else
            Some
              {
                at_step = step;
                reason =
                  Fmt.str
                    "crashed step labeled %a is neither a vanish nor a linearization of %a"
                    Crash_plan.pp_crash_effect effect Op.pp op;
              }
      | Hang _ | Corruption _ | Decided _ | Step_limit_hit _ | Crashed _ | Nvm_loss _
      | Restart _ ->
          None)
    t
