(** The execution engine: interleaves process steps over shared objects,
    injecting functional faults under (f, t) budget control.

    Model (paper §2): processes are coroutines whose shared-object
    operations are atomic steps; the scheduler adversarially picks which
    enabled process takes the next step; local computation between
    operations is free. A step executes one pending operation — correctly,
    or with a functional fault chosen by the adversary and permitted by
    the budget — and runs the process up to its next operation.

    Faults whose outcome coincides with the correct outcome are {e not}
    faults (they satisfy Φ, Definition 1): the engine silently executes
    them as correct steps and does not charge the budget.

    Two entry points: {!run} (strategy mode: a {!Scheduler.t} plus an
    {!Ffault_fault.Injector.t} drive the nondeterminism) and
    {!run_with_driver} (the model checker supplies every choice and sees
    every branch point). *)

open Ffault_objects
module Fault = Ffault_fault

type outcome_choice =
  | Correct_outcome
  | Inject of Fault.Fault_kind.t * Value.t option
      (** kind and payload (for invisible/arbitrary faults) *)
  | Crash_point of Ffault_recover.Crash_plan.crash_effect
      (** the invoking process crash-restarts at this step instead of
          completing the operation: the op vanishes or linearizes (its
          response lost either way), private state is wiped, and the
          process re-enters at its recovery section. Only offered when the
          run has a recovery entry ({!run_with_driver}'s [recovery]) and
          the crash budget has headroom; [Linearize] is only offered when
          the op has a state effect and the persistence mode is not
          lossy. *)

val pp_outcome_choice : Format.formatter -> outcome_choice -> unit
val equal_outcome_choice : outcome_choice -> outcome_choice -> bool

type driver = {
  choose_proc : enabled:int list -> step:int -> int;
      (** pick who steps next; must return a member of [enabled] *)
  choose_outcome : Fault.Injector.ctx -> options:outcome_choice list -> outcome_choice;
      (** pick this step's outcome. [options] is the engine-validated menu
          (head is always [Correct_outcome]; the rest are observable,
          budget-permitted faults). Returning a choice outside the menu
          falls back to [Correct_outcome]. *)
  after_step : Fault.Data_fault.ctx -> Fault.Data_fault.event list;
      (** data-fault (comparison model) corruptions to apply now; events
          that exceed the budget or do not change the state are dropped *)
}

type proc_outcome =
  | Decided of Value.t  (** the body returned this value *)
  | Hung  (** swallowed by a nonresponsive fault *)
  | Exhausted of { steps : int; budget : int }
      (** ran [steps] ≥ [budget] = [max_steps_per_proc] operation steps
          without deciding — the structured per-process step-budget
          outcome, turning silent non-termination (e.g. unbounded silent
          faults, §3.4) into a measured data point rather than a hang *)
  | Step_limited
      (** still runnable when [max_total_steps] ran out — the {e run}'s
          budget, not this process's; see [total_limit_hit] *)
  | Cancelled  (** still runnable when the [interrupt] hook tripped *)
  | Crashed of string  (** the body raised *)

val pp_proc_outcome : Format.formatter -> proc_outcome -> unit

type result = {
  outcomes : proc_outcome array;
  final_states : Value.t array;  (** object contents at the end *)
  steps_taken : int array;  (** operation steps executed per process *)
  total_steps : int;
  trace : Trace.t;
  budget : Fault.Budget.t;  (** final fault accounting *)
  total_limit_hit : bool;  (** [max_total_steps] exhausted with work left *)
  interrupted : bool;  (** the [interrupt] hook ended the run early *)
}

val decided_values : result -> (int * Value.t) list
(** [(proc, value)] for every process that decided. *)

val all_decided : result -> bool

type config = {
  world : World.t;
  budget : Fault.Budget.t;  (** consumed by the run; pass a fresh one *)
  allowed_faults : Fault.Fault_kind.t list;
      (** kinds the adversary may use at all (menu generation) *)
  payload_palette : Value.t list;
      (** candidate payloads enumerated for invisible/arbitrary faults in
          the options menu (exploration mode); strategy-mode injectors may
          propose payloads outside the palette *)
  max_steps_per_proc : int;
  max_total_steps : int;
  interrupt : unit -> bool;
      (** cooperative cancellation hook, polled every 256 steps from the
          main loop; once it returns [true] the run stops, marks runnable
          processes [Cancelled] and sets [interrupted]. Must be cheap and
          thread-safe (typically [Cancel.cancelled] on a token a watchdog
          may trip). *)
  persistence : Ffault_recover.Persistence.mode;
      (** what shared state survives a crash-restart (doc/RECOVERY.md);
          irrelevant when no crashes can occur *)
}

val config :
  ?allowed_faults:Fault.Fault_kind.t list ->
  ?payload_palette:Value.t list ->
  ?max_steps_per_proc:int ->
  ?max_total_steps:int ->
  ?interrupt:(unit -> bool) ->
  ?persistence:Ffault_recover.Persistence.mode ->
  world:World.t ->
  budget:Fault.Budget.t ->
  unit ->
  config
(** Defaults: [allowed_faults] = [[Overriding]], empty palette,
    [max_steps_per_proc] = 10_000, [max_total_steps] = 1_000_000,
    [interrupt] never fires, [persistence] = [Persist_all]. *)

val run_with_driver :
  ?recovery:(int -> unit -> Value.t) -> config -> driver -> bodies:(unit -> Value.t) array -> result
(** [bodies.(i)] is process i's program; it runs to its first operation at
    engine start.

    [recovery i] is process i's {e recovery section}: the program a
    crash-restarted process re-enters (its original continuation is gone
    with the crash). Supplying it arms crash-restart faults — the driver's
    outcome menus gain [Crash_point] entries wherever the budget's
    per-process crash cap ([Fault.Budget.crash_bound]) has headroom. Without
    it no crash is ever offered and behaviour is exactly as before.
    [steps_taken] accumulates across a process's incarnations, so size
    [max_steps_per_proc] for the whole lifetime, restarts included.

    @raise Invalid_argument if the number of bodies differs from [world]'s
    process count. *)

val run :
  config ->
  scheduler:Scheduler.t ->
  injector:Fault.Injector.t ->
  ?data_faults:Fault.Data_fault.t ->
  bodies:(unit -> Value.t) array ->
  unit ->
  result
(** Strategy mode: wrap the scheduler and injector into a driver. The
    injector's decisions are validated against the budget and
    observability; disallowed decisions execute correctly. *)
