open Ffault_objects
module Fault = Ffault_fault
module Fault_kind = Fault.Fault_kind
module Injector = Fault.Injector
module Budget = Fault.Budget
module Data_fault = Fault.Data_fault
module Faulty_semantics = Fault.Faulty_semantics
module Metrics = Ffault_telemetry.Metrics
module Persistence = Ffault_recover.Persistence
module Crash_plan = Ffault_recover.Crash_plan

(* Engine-level instruments: sharded counters (one atomic add on the
   domain's own slot), cheap enough for the per-step hot path. *)
let m_runs = Metrics.counter "sim.runs"
let m_steps = Metrics.counter "sim.steps"
let m_cas = Metrics.counter "sim.cas_attempts"
let m_corruptions = Metrics.counter "sim.corruptions"
let m_crashes = Metrics.counter "sim.crash_restarts"

let m_fault_of =
  let overriding = Metrics.counter "sim.faults.overriding"
  and silent = Metrics.counter "sim.faults.silent"
  and invisible = Metrics.counter "sim.faults.invisible"
  and arbitrary = Metrics.counter "sim.faults.arbitrary"
  and nonresponsive = Metrics.counter "sim.faults.nonresponsive"
  and relaxation = Metrics.counter "sim.faults.relaxation" in
  function
  | Fault_kind.Overriding -> overriding
  | Fault_kind.Silent -> silent
  | Fault_kind.Invisible -> invisible
  | Fault_kind.Arbitrary -> arbitrary
  | Fault_kind.Nonresponsive -> nonresponsive
  | Fault_kind.Relaxation -> relaxation

type outcome_choice =
  | Correct_outcome
  | Inject of Fault_kind.t * Value.t option
  | Crash_point of Crash_plan.crash_effect

let pp_outcome_choice ppf = function
  | Correct_outcome -> Fmt.string ppf "correct"
  | Inject (k, payload) ->
      Fmt.pf ppf "inject:%a%a" Fault_kind.pp k
        (Fmt.option (fun ppf v -> Fmt.pf ppf "(%a)" Value.pp v))
        payload
  | Crash_point e -> Fmt.pf ppf "crash:%a" Crash_plan.pp_crash_effect e

let equal_outcome_choice a b =
  match a, b with
  | Correct_outcome, Correct_outcome -> true
  | Inject (k1, p1), Inject (k2, p2) ->
      Fault_kind.equal k1 k2 && Option.equal Value.equal p1 p2
  | Crash_point e1, Crash_point e2 -> Crash_plan.equal_crash_effect e1 e2
  | (Correct_outcome | Inject _ | Crash_point _), _ -> false

type driver = {
  choose_proc : enabled:int list -> step:int -> int;
  choose_outcome : Injector.ctx -> options:outcome_choice list -> outcome_choice;
  after_step : Data_fault.ctx -> Data_fault.event list;
}

type proc_outcome =
  | Decided of Value.t
  | Hung
  | Exhausted of { steps : int; budget : int }
  | Step_limited
  | Cancelled
  | Crashed of string

let pp_proc_outcome ppf = function
  | Decided v -> Fmt.pf ppf "decided %a" Value.pp v
  | Hung -> Fmt.string ppf "hung"
  | Exhausted { steps; budget } -> Fmt.pf ppf "exhausted (%d steps, budget %d)" steps budget
  | Step_limited -> Fmt.string ppf "step-limited"
  | Cancelled -> Fmt.string ppf "cancelled"
  | Crashed msg -> Fmt.pf ppf "crashed: %s" msg

type result = {
  outcomes : proc_outcome array;
  final_states : Value.t array;
  steps_taken : int array;
  total_steps : int;
  trace : Trace.t;
  budget : Budget.t;
  total_limit_hit : bool;
  interrupted : bool;
}

let decided_values r =
  let acc = ref [] in
  Array.iteri
    (fun i o -> match o with Decided v -> acc := (i, v) :: !acc | _ -> ())
    r.outcomes;
  List.rev !acc

let all_decided r = Array.for_all (function Decided _ -> true | _ -> false) r.outcomes

type config = {
  world : World.t;
  budget : Budget.t;
  allowed_faults : Fault_kind.t list;
  payload_palette : Value.t list;
  max_steps_per_proc : int;
  max_total_steps : int;
  interrupt : unit -> bool;
  persistence : Persistence.mode;
}

let config ?(allowed_faults = [ Fault_kind.Overriding ]) ?(payload_palette = [])
    ?(max_steps_per_proc = 10_000) ?(max_total_steps = 1_000_000)
    ?(interrupt = fun () -> false) ?(persistence = Persistence.Persist_all) ~world ~budget () =
  {
    world;
    budget;
    allowed_faults;
    payload_palette;
    max_steps_per_proc;
    max_total_steps;
    interrupt;
    persistence;
  }

(* Per-process runtime status. *)
type status =
  | Pending of { obj : Obj_id.t; op : Op.t; k : (Value.t, unit) Effect.Deep.continuation }
  | Finished of Value.t
  | Hung_at of { obj : Obj_id.t; op : Op.t }
  | Limited
  | Failed of string

let outcome_differs (a : Semantics.outcome) (b : Semantics.outcome) =
  not (Value.equal a.post_state b.post_state && Value.equal a.response b.response)

let run_with_driver ?recovery cfg driver ~bodies =
  let world = cfg.world in
  let n = World.n_procs world in
  if Array.length bodies <> n then
    invalid_arg "Engine.run_with_driver: bodies count differs from world process count";
  Metrics.incr m_runs;
  let n_objs = World.n_objects world in
  let obj_states = Array.init n_objs (fun i -> World.init_of world (Obj_id.of_int i)) in
  let statuses = Array.make n (Failed "not started") in
  let steps_taken = Array.make n 0 in
  (* Per-process most recent completed state-changing op (object index,
     pre, post): the write the lossy persistence mode may drop when that
     process crashes. *)
  let last_write = Array.make n None in
  let trace_rev = ref [] in
  let step_counter = ref 0 in
  let op_counter = ref 0 in
  (* Step and CAS counts batch into locals and flush to the sharded
     counters once per run — a per-step [Metrics.incr] is cheap but not
     free, and the step loop is the innermost loop of every campaign. *)
  let cas_attempts = ref 0 in
  let emit ev = trace_rev := ev :: !trace_rev in

  (* Launch a body; it runs to its first operation (captured as Pending),
     to completion, or to an exception. Resumptions via
     [Effect.Deep.continue] re-enter the same handler. *)
  let start proc body =
    let open Effect.Deep in
    match_with body ()
      {
        retc = (fun v -> statuses.(proc) <- Finished v);
        exnc = (fun e -> statuses.(proc) <- Failed (Printexc.to_string e));
        effc =
          (fun (type a) (eff : a Effect.t) ->
            match eff with
            | Proc.Invoke (obj, op) ->
                Some
                  (fun (k : (a, unit) continuation) ->
                    statuses.(proc) <- Pending { obj; op; k })
            | _ -> None);
      }
  in
  Array.iteri
    (fun i body ->
      start i body;
      match statuses.(i) with
      | Finished v -> emit (Trace.Decided { step = !step_counter; proc = i; value = v })
      | Failed msg -> emit (Trace.Crashed { step = !step_counter; proc = i; error = msg })
      | Pending _ | Hung_at _ | Limited -> ())
    bodies;

  let enabled () =
    let acc = ref [] in
    for i = n - 1 downto 0 do
      match statuses.(i) with Pending _ -> acc := i :: !acc | _ -> ()
    done;
    !acc
  in

  (* Menu of observable, budget-permitted faulty outcomes for this step,
     headed by the correct outcome. Crash points ride the same menu: when
     a recovery entry exists and the crash budget has headroom, the
     invoking process may crash here instead of completing — vanishing
     the op, or (when the persistence mode keeps committed effects and
     the op has one) linearizing it with the response lost. *)
  let options_for proc obj op pre correct =
    let kind = World.kind_of world obj in
    let crash_options =
      match recovery with
      | None -> []
      | Some _ ->
          if not (Budget.can_crash cfg.budget ~proc) then []
          else if
            Persistence.lossy cfg.persistence
            || Value.equal correct.Semantics.post_state pre
          then [ Crash_point Crash_plan.Vanish ]
          else [ Crash_point Crash_plan.Vanish; Crash_point Crash_plan.Linearize ]
    in
    let fault_options =
      if not (Budget.can_fault cfg.budget obj) then []
      else
        let faulty_differs fk payload =
          match Faulty_semantics.apply fk ?payload ~kind ~state:pre op with
          | Ok (Faulty_semantics.Outcome o) -> outcome_differs o correct
          | Ok Faulty_semantics.Hangs -> true
          | Error _ -> false
        in
        let per_kind fk =
          match fk with
          | Fault_kind.Overriding | Fault_kind.Silent ->
              if faulty_differs fk None then [ Inject (fk, None) ] else []
          | Fault_kind.Nonresponsive -> [ Inject (fk, None) ]
          | Fault_kind.Invisible | Fault_kind.Arbitrary | Fault_kind.Relaxation ->
              List.filter_map
                (fun payload ->
                  if faulty_differs fk (Some payload) then Some (Inject (fk, Some payload))
                  else None)
                cfg.payload_palette
        in
        List.concat_map per_kind cfg.allowed_faults
    in
    (Correct_outcome :: fault_options) @ crash_options
  in

  (* A driver choice is honored if it is in the menu, or if it is a
     payload-carrying fault that the engine can validate directly (lets
     strategy-mode injectors use payloads outside the exploration
     palette). Anything else executes correctly. *)
  let validate_choice choice options obj op pre correct =
    match choice with
    | Correct_outcome -> Correct_outcome
    | Crash_point _ ->
        (* Crash points are never validated out of band: the menu already
           encodes the budget, recovery-entry, and persistence gates. *)
        if List.exists (equal_outcome_choice choice) options then choice else Correct_outcome
    | Inject (fk, payload) -> (
        if List.exists (equal_outcome_choice choice) options then choice
        else
          match fk with
          | Fault_kind.Invisible | Fault_kind.Arbitrary | Fault_kind.Relaxation
            when List.exists (Fault_kind.equal fk) cfg.allowed_faults
                 && Budget.can_fault cfg.budget obj -> (
              let kind = World.kind_of world obj in
              match Faulty_semantics.apply fk ?payload ~kind ~state:pre op with
              | Ok (Faulty_semantics.Outcome o) when outcome_differs o correct -> choice
              | Ok _ | Error _ -> Correct_outcome)
          | Fault_kind.Overriding | Fault_kind.Silent | Fault_kind.Nonresponsive
          | Fault_kind.Invisible | Fault_kind.Arbitrary | Fault_kind.Relaxation ->
              Correct_outcome)
  in

  let exec_step proc =
    match statuses.(proc) with
    | Pending { obj; op; k } -> (
        let oi = Obj_id.to_int obj in
        let pre = obj_states.(oi) in
        let kind = World.kind_of world obj in
        if Op.is_cas op then incr cas_attempts;
        match Semantics.apply kind ~state:pre op with
        | Error e ->
            let error = Fmt.str "illegal operation: %a" Semantics.pp_error e in
            statuses.(proc) <- Failed error;
            emit (Trace.Crashed { step = !step_counter; proc; error })
        | Ok correct ->
            let ctx =
              {
                Injector.obj;
                op;
                state = pre;
                proc;
                step = !step_counter;
                op_index = !op_counter;
                budget = cfg.budget;
              }
            in
            let options = options_for proc obj op pre correct in
            let choice = driver.choose_outcome ctx ~options in
            let choice = validate_choice choice options obj op pre correct in
            incr op_counter;
            let continue_with outcome injected =
              obj_states.(oi) <- outcome.Semantics.post_state;
              if not (Value.equal pre outcome.Semantics.post_state) then
                last_write.(proc) <- Some (oi, pre, outcome.Semantics.post_state);
              emit
                (Trace.Op_step
                   {
                     step = !step_counter;
                     proc;
                     obj;
                     op;
                     pre_state = pre;
                     post_state = outcome.Semantics.post_state;
                     response = outcome.Semantics.response;
                     injected;
                   });
              Effect.Deep.continue k outcome.Semantics.response;
              match statuses.(proc) with
              | Finished v -> emit (Trace.Decided { step = !step_counter; proc; value = v })
              | Failed msg -> emit (Trace.Crashed { step = !step_counter; proc; error = msg })
              | Pending _ | Hung_at _ | Limited -> ()
            in
            let crash_restart effect =
              Budget.charge_crash cfg.budget ~proc;
              Metrics.incr m_crashes;
              let post =
                match effect with
                | Crash_plan.Vanish -> pre
                | Crash_plan.Linearize -> correct.Semantics.post_state
              in
              obj_states.(oi) <- post;
              (* The captured continuation [k] is dropped, never resumed:
                 that IS the crash — program counter and locals are gone
                 (same mechanism as a nonresponsive hang, but the process
                 comes back below). *)
              emit
                (Trace.Proc_crash
                   { step = !step_counter; proc; obj; op; pre_state = pre; post_state = post;
                     effect });
              (* Lossy persistence: the crashing process's most recent
                 completed write may not have been flushed — roll it back
                 if the object still holds that exact value. *)
              (if Persistence.lossy cfg.persistence then
                 match last_write.(proc) with
                 | Some (wi, wpre, wpost)
                   when Value.equal obj_states.(wi) wpost && not (Value.equal wpre wpost) ->
                     obj_states.(wi) <- wpre;
                     emit
                       (Trace.Nvm_loss
                          { step = !step_counter; obj = Obj_id.of_int wi; before = wpost;
                            after = wpre })
                 | _ -> ());
              (* Volatile objects (not NVM-tagged) do not survive the
                 crash: they revert to their initial value. *)
              (match cfg.persistence with
              | Persistence.Persist_only _ ->
                  for i = 0 to n_objs - 1 do
                    let id = Obj_id.of_int i in
                    if not (Persistence.survives cfg.persistence id) then begin
                      let before = obj_states.(i) in
                      let init = World.init_of world id in
                      if not (Value.equal before init) then begin
                        obj_states.(i) <- init;
                        emit
                          (Trace.Nvm_loss
                             { step = !step_counter; obj = id; before; after = init })
                      end
                    end
                  done
              | Persistence.Persist_all | Persistence.Persist_lossy -> ());
              last_write.(proc) <- None;
              emit (Trace.Restart { step = !step_counter; proc });
              start proc ((Option.get recovery) proc);
              match statuses.(proc) with
              | Finished v -> emit (Trace.Decided { step = !step_counter; proc; value = v })
              | Failed msg -> emit (Trace.Crashed { step = !step_counter; proc; error = msg })
              | Pending _ | Hung_at _ | Limited -> ()
            in
            (match choice with
            | Correct_outcome -> continue_with correct None
            | Crash_point effect -> crash_restart effect
            | Inject (fk, payload) -> (
                match Faulty_semantics.apply fk ?payload ~kind ~state:pre op with
                | Error e ->
                    invalid_arg
                      (Fmt.str "Engine: validated fault failed to apply: %a"
                         Faulty_semantics.pp_error e)
                | Ok Faulty_semantics.Hangs ->
                    Budget.charge cfg.budget obj;
                    Metrics.incr (m_fault_of fk);
                    statuses.(proc) <- Hung_at { obj; op };
                    emit (Trace.Hang { step = !step_counter; proc; obj; op })
                | Ok (Faulty_semantics.Outcome o) ->
                    Budget.charge cfg.budget obj;
                    Metrics.incr (m_fault_of fk);
                    continue_with o (Some fk))))
    | Finished _ | Hung_at _ | Limited | Failed _ ->
        invalid_arg "Engine.exec_step: process not pending"
  in

  let apply_data_faults () =
    let ctx =
      {
        Data_fault.step = !step_counter;
        state_of = (fun id -> obj_states.(Obj_id.to_int id));
        budget = cfg.budget;
      }
    in
    List.iter
      (fun { Data_fault.obj; value } ->
        let oi = Obj_id.to_int obj in
        let before = obj_states.(oi) in
        (* No-op corruptions are unobservable; over-budget ones throttle. *)
        if (not (Value.equal before value)) && Budget.can_fault cfg.budget obj then begin
          Budget.charge cfg.budget obj;
          Metrics.incr m_corruptions;
          obj_states.(oi) <- value;
          emit (Trace.Corruption { step = !step_counter; obj; before; after = value })
        end)
      (driver.after_step ctx)
  in

  let total_limit_hit = ref false in
  let interrupted = ref false in
  (* Poll the interrupt hook every 2^8 steps: cheap enough to leave on in
     the innermost loop, fine-grained enough that a watchdog deadline
     lands within microseconds of tripping. Step 0 polls, so an
     already-tripped token cancels before any work. *)
  let poll_interrupt () =
    !step_counter land 0xff = 0 && cfg.interrupt () && begin
      interrupted := true;
      true
    end
  in
  let rec loop () =
    match enabled () with
    | [] -> ()
    | en ->
        if !step_counter >= cfg.max_total_steps then total_limit_hit := true
        else if poll_interrupt () then ()
        else begin
          let proc = driver.choose_proc ~enabled:en ~step:!step_counter in
          if not (List.mem proc en) then
            invalid_arg (Fmt.str "Engine: scheduler picked disabled process p%d" proc);
          steps_taken.(proc) <- steps_taken.(proc) + 1;
          if steps_taken.(proc) > cfg.max_steps_per_proc then begin
            statuses.(proc) <- Limited;
            emit (Trace.Step_limit_hit { step = !step_counter; proc })
          end
          else exec_step proc;
          incr step_counter;
          apply_data_faults ();
          loop ()
        end
  in
  Fun.protect
    ~finally:(fun () ->
      (* flush even when an injector/scheduler raises through the loop *)
      if !step_counter > 0 then Metrics.add m_steps !step_counter;
      if !cas_attempts > 0 then Metrics.add m_cas !cas_attempts)
    loop;

  let outcomes =
    Array.mapi
      (fun i st ->
        match st with
        | Finished v -> Decided v
        | Hung_at _ -> Hung
        | Limited -> Exhausted { steps = steps_taken.(i); budget = cfg.max_steps_per_proc }
        | Failed msg -> Crashed msg
        | Pending _ ->
            (* still runnable at loop exit: cancelled, or the total-step
               budget ran out with work left *)
            if !interrupted then Cancelled else Step_limited)
      statuses
  in
  {
    outcomes;
    final_states = obj_states;
    steps_taken;
    total_steps = !step_counter;
    trace = List.rev !trace_rev;
    budget = cfg.budget;
    total_limit_hit = !total_limit_hit;
    interrupted = !interrupted;
  }

let run cfg ~scheduler ~injector ?(data_faults = Data_fault.never) ~bodies () =
  let driver =
    {
      choose_proc = scheduler.Scheduler.pick;
      choose_outcome =
        (fun ctx ~options:_ ->
          match injector.Injector.decide ctx with
          | Injector.No_fault -> Correct_outcome
          | Injector.Fault { kind; payload } -> Inject (kind, payload));
      after_step = data_faults.Data_fault.decide;
    }
  in
  run_with_driver cfg driver ~bodies
