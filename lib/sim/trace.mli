(** Execution traces: the full observable record of a run.

    Every scheduler step appends one event. Traces serve three purposes:
    human-readable rendering of executions (including the adversarial
    witnesses from the impossibility experiments), programmatic inspection
    by the checkers, and independent auditing — {!audit} re-derives each
    step's fault classification from its state transition via the Hoare
    layer and cross-checks it against the engine's bookkeeping. *)

open Ffault_objects

type event =
  | Op_step of {
      step : int;
      proc : int;
      obj : Obj_id.t;
      op : Op.t;
      pre_state : Value.t;
      post_state : Value.t;
      response : Value.t;
      injected : Ffault_fault.Fault_kind.t option;
          (** what the engine says it did at this step *)
    }
  | Hang of { step : int; proc : int; obj : Obj_id.t; op : Op.t }
      (** a nonresponsive fault consumed the invocation *)
  | Corruption of { step : int; obj : Obj_id.t; before : Value.t; after : Value.t }
      (** a data fault (comparison model) fired between steps *)
  | Decided of { step : int; proc : int; value : Value.t }
  | Step_limit_hit of { step : int; proc : int }
  | Crashed of { step : int; proc : int; error : string }
      (** the process body raised — a programming error, not a model fault *)
  | Proc_crash of {
      step : int;
      proc : int;
      obj : Obj_id.t;
      op : Op.t;
      pre_state : Value.t;
      post_state : Value.t;
      effect : Ffault_recover.Crash_plan.crash_effect;
    }
      (** a crash-restart fault consumed the in-flight invocation: the
          operation vanished or linearized (see [post_state]), its
          response was lost, and the process's private state was wiped *)
  | Nvm_loss of { step : int; obj : Obj_id.t; before : Value.t; after : Value.t }
      (** shared state lost to the crash: a volatile object reverting to
          its initial value, or the lossy mode dropping the crashing
          process's last unpersisted write *)
  | Restart of { step : int; proc : int }
      (** the crashed process re-enters at its recovery section *)

type t = event list
(** In execution order. *)

val pp_event : world:World.t -> Format.formatter -> event -> unit
val pp : world:World.t -> Format.formatter -> t -> unit

val op_steps : t -> int
(** Number of [Op_step] events. *)

val injected_faults : t -> (Obj_id.t * Ffault_fault.Fault_kind.t) list
(** Primitive fault injections in order (from [Op_step.injected] and
    [Hang]); crash-restarts are a process fault and counted separately by
    {!crash_count}. *)

val crash_count : t -> int
(** Number of [Proc_crash] events. *)

val restart_count : t -> int
(** Number of [Restart] events (equal to {!crash_count} in engine-produced
    traces: every crash restarts). *)

type audit_error = { at_step : int; reason : string }

val pp_audit_error : Format.formatter -> audit_error -> unit

val audit : world:World.t -> t -> audit_error list
(** Check every [Op_step] against Definition 1, independently of the
    engine's execution path: an unlabeled step must satisfy Φ (the
    sequential specification); a step labeled with fault kind [k] must
    {e violate} Φ and satisfy the Φ′ that [k] denotes for its operation
    ({!Ffault_fault.Fault_kind.phi'_for}). Every [Proc_crash] is checked
    against the recoverable-linearizability step contract
    ({!Ffault_hoare.Recover_spec}): its state transition must match its
    vanish/linearize label. An empty list means the engine's bookkeeping
    and the trace evidence agree exactly. *)
