(** Seed-derived crash schedules.

    A plan is a pure function from (process, per-process operation index)
    to an optional crash decision, computed from per-atom keyed RNG
    streams (the same idiom as netsim's [Fault_plan]): the same seed and
    rate always yield the same schedule, independent of execution order,
    and two processes' schedules never share a stream.

    The plan only {e proposes} crash points; the per-process crash cap is
    enforced by [Fault.Budget], and the simulation engine only offers a
    crash at points where one is actually possible (a recovery entry
    exists and the budget has headroom). A proposed {!Linearize} degrades
    to {!Vanish} when the crashed operation has no state effect to
    linearize or the persistence mode forbids it. *)

type crash_effect =
  | Vanish  (** the in-flight operation never happened: shared state as before it *)
  | Linearize
      (** the in-flight operation took effect, but its response was lost
          with the crash *)

val equal_crash_effect : crash_effect -> crash_effect -> bool
val crash_effect_to_string : crash_effect -> string
val pp_crash_effect : Format.formatter -> crash_effect -> unit

type t

val make : seed:int64 -> rate:float -> t
(** @raise Invalid_argument if [rate] is outside [\[0, 1\]]. *)

val seed : t -> int64
val rate : t -> float

val decide : t -> proc:int -> k:int -> crash_effect option
(** Should [proc]'s [k]-th operation (0-based, counted across restarts)
    crash instead of completing, and with which effect? Deterministic in
    [(seed, rate, proc, k)]. *)

val pp : Format.formatter -> t -> unit
