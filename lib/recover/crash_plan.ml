open Ffault_prng

type crash_effect = Vanish | Linearize

let equal_crash_effect (a : crash_effect) b = a = b

let crash_effect_to_string = function Vanish -> "vanish" | Linearize -> "linearize"
let pp_crash_effect ppf e = Fmt.string ppf (crash_effect_to_string e)

type t = { seed : int64; rate : float }

let make ~seed ~rate =
  if not (Float.is_finite rate) || rate < 0.0 || rate > 1.0 then
    invalid_arg "Crash_plan.make: rate must be in [0, 1]";
  { seed; rate }

let seed t = t.seed
let rate t = t.rate

(* One stateless stream per (proc, op-index) atom, keyed exactly like
   netsim's Fault_plan: the label goes through an FNV mix of the plan
   seed, so neighbouring atoms are decorrelated and adding new labels
   later leaves every existing schedule untouched. *)
let rng_of t ~proc ~k = Rng.make ~seed:(Rng.seed_of_string (Printf.sprintf "%Ld/crash/%d/%d" t.seed proc k))

let decide t ~proc ~k =
  if t.rate <= 0.0 then None
  else
    let g = rng_of t ~proc ~k in
    if not (Rng.bernoulli g ~p:t.rate) then None
    else Some (if Rng.bernoulli g ~p:0.5 then Vanish else Linearize)

let pp ppf t = Fmt.pf ppf "crash-plan(seed=%Ld, rate=%.3f)" t.seed t.rate
