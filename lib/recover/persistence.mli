(** The memory split under crash-restart faults.

    A crash wipes the crashing process's {e private} state — its
    continuation, locals, and program counter — unconditionally. What
    happens to the {e shared} [Ffault_objects] state is the persistence
    mode:

    - {!Persist_all}: every shared object is NVM-persistent; crashes
      cannot lose committed shared writes (Golab's full-persistence
      model).
    - {!Persist_lossy}: shared objects persist, but the crashing
      process's most recent completed write may be rolled back if no one
      has overwritten it — the "lose the last unpersisted write" knob
      that models a missing flush before the crash point.
    - {!Persist_only ids}: only the listed objects are NVM-backed; every
      other object reverts to its initial value on any crash. *)

open Ffault_objects

type mode =
  | Persist_all
  | Persist_lossy
  | Persist_only of Obj_id.t list

val survives : mode -> Obj_id.t -> bool
(** Whether this object's state survives a crash at all (lossy rollback of
    the last write is accounted separately — see {!lossy}). *)

val lossy : mode -> bool
(** True iff the mode may drop the crashing process's last completed
    write. *)

val to_string : mode -> string
(** ["all"], ["lossy"], or ["only:<id>,<id>,..."] — round-trips through
    {!of_string}. *)

val of_string : string -> (mode, string) result
val equal : mode -> mode -> bool
val pp : Format.formatter -> mode -> unit
