open Ffault_objects

type mode =
  | Persist_all
  | Persist_lossy
  | Persist_only of Obj_id.t list

let survives mode obj =
  match mode with
  | Persist_all | Persist_lossy -> true
  | Persist_only ids -> List.exists (fun o -> Obj_id.to_int o = Obj_id.to_int obj) ids

let lossy = function Persist_lossy -> true | Persist_all | Persist_only _ -> false

let to_string = function
  | Persist_all -> "all"
  | Persist_lossy -> "lossy"
  | Persist_only ids ->
      "only:" ^ String.concat "," (List.map (fun o -> string_of_int (Obj_id.to_int o)) ids)

let of_string s =
  match s with
  | "all" -> Ok Persist_all
  | "lossy" -> Ok Persist_lossy
  | _ when String.length s > 5 && String.sub s 0 5 = "only:" -> (
      let body = String.sub s 5 (String.length s - 5) in
      try
        let ids =
          String.split_on_char ',' body
          |> List.map (fun x -> Obj_id.of_int (int_of_string (String.trim x)))
        in
        Ok (Persist_only ids)
      with Failure _ | Invalid_argument _ ->
        Error (Printf.sprintf "persistence: bad object list %S" body))
  | _ -> Error (Printf.sprintf "persistence: expected all|lossy|only:<ids>, got %S" s)

let equal a b = String.equal (to_string a) (to_string b)
let pp ppf m = Fmt.string ppf (to_string m)
