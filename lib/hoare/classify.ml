type verdict =
  | Correct
  | Structured_fault of string
  | Unstructured
  | Precondition_violated

let pp_verdict ppf = function
  | Correct -> Fmt.string ppf "correct"
  | Structured_fault name -> Fmt.pf ppf "fault:%s" name
  | Unstructured -> Fmt.string ppf "unstructured"
  | Precondition_violated -> Fmt.string ppf "precondition-violated"

let equal_verdict a b =
  match a, b with
  | Correct, Correct | Unstructured, Unstructured -> true
  | Precondition_violated, Precondition_violated -> true
  | Structured_fault x, Structured_fault y -> String.equal x y
  | (Correct | Structured_fault _ | Unstructured | Precondition_violated), _ -> false

let classify ~alternatives (step : Triple.step) =
  if not (Triple.precondition_met Triple.correct step) then Precondition_violated
  else if Triple.correct.post step then Correct
  else
    match List.find_opt (fun (_, phi') -> phi' step) alternatives with
    | Some (name, _) -> Structured_fault name
    | None -> Unstructured

let cas_alternatives =
  [
    ("overriding", Cas_spec.overriding);
    ("silent", Cas_spec.silent);
    ("invisible", Cas_spec.invisible);
    ("arbitrary", Cas_spec.arbitrary);
  ]

let classify_cas = classify ~alternatives:cas_alternatives

let tas_alternatives = Tas_spec.tas_alternatives

let classify_step (step : Triple.step) =
  match step.Triple.op with
  | Ffault_objects.Op.Cas _ -> classify ~alternatives:cas_alternatives step
  | Ffault_objects.Op.Test_and_set | Ffault_objects.Op.Reset ->
      classify ~alternatives:tas_alternatives step
  | Ffault_objects.Op.Enqueue _ | Ffault_objects.Op.Dequeue ->
      classify ~alternatives:Queue_spec.queue_alternatives step
  | Ffault_objects.Op.Read | Ffault_objects.Op.Write _ | Ffault_objects.Op.Fetch_and_add _ ->
      classify ~alternatives:[] step

type attribution = No_fault | Crash_only | Primitive_only | Mixed

let attribute ~crashes ~primitive =
  match (crashes > 0, primitive > 0) with
  | false, false -> No_fault
  | true, false -> Crash_only
  | false, true -> Primitive_only
  | true, true -> Mixed

let attribution_to_string = function
  | No_fault -> "none"
  | Crash_only -> "crash"
  | Primitive_only -> "primitive"
  | Mixed -> "mixed"

let pp_attribution ppf a = Fmt.string ppf (attribution_to_string a)

let equal_attribution (a : attribution) b = a = b
