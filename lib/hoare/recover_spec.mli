(** Recoverable-linearizability postconditions for crashed operations
    (Golab's recoverable consensus model, grafted onto the paper's
    executable-triple machinery).

    When a process crashes with an operation in flight, the operation's
    response is lost forever — but the {e state transition} must still be
    one of exactly two legal shapes: the operation {!vanished} (the shared
    state is as if it was never invoked) or it {!linearized} (the shared
    state reflects the complete sequential-spec effect). A step that is
    neither — a half-applied effect — breaks recoverable linearizability
    even before any decision value is compared.

    The [response] field of a crashed step is unconstrained (by
    convention the engine records [Value.Bottom]): the caller never saw
    one. *)

val vanished : Triple.post
(** Post-state equals pre-state: the crashed operation never took effect. *)

val linearized : Triple.post
(** Post-state equals the sequential-spec post-state of the invocation:
    the crashed operation took effect exactly once, its response lost. *)

val legal : Triple.post
(** [vanished || linearized] — the linearize-or-vanish disjunction. A
    crashed step may satisfy either, but must satisfy at least one, and a
    step satisfying {e both} is fine (an effect-free operation vacuously
    linearizes). *)

val crash_alternatives : (string * Triple.post) list
(** Named Φ′ family for {!Classify.classify}: ["crash-vanished"] and
    ["crash-linearized"], in that order. *)
