(** Classification of trace steps against Φ and a family of Φ′
    (Definition 1, executable).

    Given one operation execution (a {!Triple.step}) and a set of named
    deviating postconditions, decide whether the step was correct, a
    recognized structured fault, or an unstructured deviation (which would
    put us back in the arbitrary data-fault world). Used as an independent
    audit of the fault injector: the engine's claim "I injected an
    overriding fault here" must match what the state transition shows. *)

type verdict =
  | Correct  (** the step satisfies Φ (the sequential specification) *)
  | Structured_fault of string
      (** Φ fails but the named Φ′ holds — an ⟨O,Φ′⟩-fault per Def. 1 *)
  | Unstructured
      (** Φ fails and no registered Φ′ holds — outside the functional-fault
          model *)
  | Precondition_violated
      (** Ψ failed on entry; the triple asserts nothing about this step *)

val pp_verdict : Format.formatter -> verdict -> unit
val equal_verdict : verdict -> verdict -> bool

val classify : alternatives:(string * Triple.post) list -> Triple.step -> verdict
(** [classify ~alternatives step] checks Φ first, then each Φ′ in order and
    returns the first that holds. *)

val cas_alternatives : (string * Triple.post) list
(** The paper's §3.3–3.4 CAS fault taxonomy, in specificity order:
    overriding, silent, invisible, arbitrary. *)

val classify_cas : Triple.step -> verdict
(** [classify ~alternatives:cas_alternatives]. *)

val tas_alternatives : (string * Triple.post) list
(** The test-and-set deviations of {!Tas_spec}: silent-set, phantom-win,
    sticky-bit. *)

val classify_step : Triple.step -> verdict
(** Dispatch on the operation: CAS steps against {!cas_alternatives}, TAS
    and Reset steps against {!tas_alternatives}, queue steps against
    {!Queue_spec.queue_alternatives}, anything else against Φ alone. *)

type attribution = No_fault | Crash_only | Primitive_only | Mixed
(** What kinds of injected fault were live in an execution that produced a
    violation: crash-restarts, primitive (object) faults, both, or
    neither. A campaign report uses this to attribute each violating
    trial: a [Crash_only] violation implicates the recovery logic, a
    [Primitive_only] one the fault tolerance of the protocol, [Mixed]
    their interaction. *)

val attribute : crashes:int -> primitive:int -> attribution
(** From the counts of charged crashes and charged primitive faults. *)

val attribution_to_string : attribution -> string
(** ["none"], ["crash"], ["primitive"], ["mixed"]. *)

val pp_attribution : Format.formatter -> attribution -> unit
val equal_attribution : attribution -> attribution -> bool
