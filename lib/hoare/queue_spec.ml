open Ffault_objects

let on_dequeue f (step : Triple.step) =
  match step.op with
  | Op.Dequeue -> (
      match Vqueue.to_list step.pre_state, Vqueue.to_list step.post_state with
      | Some pre, Some post -> f ~pre ~post ~response:step.response
      | _ -> false)
  | _ -> false

let standard_dequeue =
  on_dequeue (fun ~pre ~post ~response ->
      match pre with
      | [] -> Value.is_bottom response && List.is_empty post
      | head :: tail ->
          Value.equal response head
          && List.length post = List.length tail
          && List.for_all2 Value.equal post tail)

let standard_enqueue (step : Triple.step) =
  match step.op with
  | Op.Enqueue v -> (
      match Vqueue.to_list step.pre_state, Vqueue.to_list step.post_state with
      | Some pre, Some post ->
          Value.is_bottom step.response
          && List.length post = List.length pre + 1
          && List.for_all2 Value.equal post (pre @ [ v ])
      | _ -> false)
  | _ -> false

(* The removed element's position, if the step removed exactly one
   occurrence of [response] from [pre] leaving [post]. *)
let removal_position ~pre ~post ~response =
  if Value.is_bottom response then None
  else
    let rec go i before = function
      | [] -> None
      | x :: rest ->
          if Value.equal x response then
            let candidate = List.rev_append before rest in
            if
              List.length candidate = List.length post
              && List.for_all2 Value.equal candidate post
            then Some i
            else go (i + 1) (x :: before) rest
          else go (i + 1) (x :: before) rest
    in
    go 0 [] pre

let dequeue_distance (step : Triple.step) =
  match step.op with
  | Op.Dequeue -> (
      match Vqueue.to_list step.pre_state, Vqueue.to_list step.post_state with
      | Some pre, Some post -> removal_position ~pre ~post ~response:step.response
      | _ -> None)
  | _ -> None

let relaxed_dequeue ~k =
  on_dequeue (fun ~pre ~post ~response ->
      match pre with
      | [] -> Value.is_bottom response && List.is_empty post
      | _ -> (
          match removal_position ~pre ~post ~response with
          | Some i -> i < k
          | None -> false))

let relaxed_any =
  on_dequeue (fun ~pre ~post ~response ->
      match pre with
      | [] -> Value.is_bottom response && List.is_empty post
      | _ -> removal_position ~pre ~post ~response <> None)

let queue_alternatives = [ ("relaxation", relaxed_any) ]
