open Ffault_objects

let vanished (step : Triple.step) = Value.equal step.post_state step.pre_state

let linearized (step : Triple.step) =
  match Semantics.apply step.kind ~state:step.pre_state step.op with
  | Ok { Semantics.post_state; response = _ } -> Value.equal step.post_state post_state
  | Error _ -> false

let legal step = vanished step || linearized step

let crash_alternatives : (string * Triple.post) list =
  [ ("crash-vanished", vanished); ("crash-linearized", linearized) ]
