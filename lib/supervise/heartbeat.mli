(** Per-worker liveness beacons.

    Each worker slot (a campaign pool domain, a multicore trial) calls
    {!beat} at natural progress points — trial boundaries, retry loops —
    and the {!Watchdog} judges staleness from the recorded timestamps.
    Beating is one atomic store on the slot's own word plus a sharded
    counter bump; it is safe from any domain or thread.

    Timestamps come from {!Ffault_runtime.Clock.monotonic} by default;
    tests and the netsim scheduler inject a
    {!Ffault_runtime.Clock.Virtual} clock instead. *)

type t

val create : ?clock:Ffault_runtime.Clock.t -> slots:int -> unit -> t
(** [slots] independent beacons, all initially silent. [clock] defaults
    to {!Ffault_runtime.Clock.monotonic}.
    @raise Invalid_argument if [slots < 1]. *)

val slots : t -> int

val clock : t -> Ffault_runtime.Clock.t
(** The clock beats are stamped with — a {!Watchdog} judging this
    heartbeat must read the same one. *)

val beat : t -> slot:int -> unit
(** Record that [slot] is alive now. Bumps the [supervise.heartbeats]
    counter. *)

val last_ns : t -> slot:int -> int option
(** Monotonic timestamp of [slot]'s last beat, or [None] if it never
    beat. *)

val age_ns : t -> slot:int -> int option
(** Nanoseconds since [slot]'s last beat ([None] if it never beat).
    Never negative. *)
