module Clock = Ffault_runtime.Clock
module Metrics = Ffault_telemetry.Metrics

let m_beats = Metrics.counter "supervise.heartbeats"

(* -1 = never beat. Plain int Atomics, one per slot: a beat is a single
   store on the slot's own word, so beacons never contend with each
   other. (No cache padding — beats are per-trial, not per-step.) *)
type t = { last : int Atomic.t array; clock : Clock.t }

let create ?(clock = Clock.monotonic) ~slots () =
  if slots < 1 then invalid_arg "Heartbeat.create: slots < 1";
  { last = Array.init slots (fun _ -> Atomic.make (-1)); clock }

let slots t = Array.length t.last

let clock t = t.clock

let beat t ~slot =
  Atomic.set t.last.(slot) (Clock.now_ns t.clock);
  Metrics.incr m_beats

let last_ns t ~slot =
  match Atomic.get t.last.(slot) with -1 -> None | ts -> Some ts

let age_ns t ~slot =
  match last_ns t ~slot with
  | None -> None
  | Some ts -> Some (max 0 (Clock.now_ns t.clock - ts))
